// Package pipeline implements the cycle-driven out-of-order processor model
// of Table 1: an 8-wide, deeply pipelined machine with a 128-entry issue
// window, 512-entry reorder buffer, 512 physical registers, a two-stage
// bypass network, and one of three register storage schemes — a multi-cycle
// monolithic register file, a register cache backed by a slower file, or a
// two-level register file.
//
// The model executes functionally at fetch (down predicted paths, with
// undo-log recovery) and times every mechanism the paper's evaluation
// depends on: speculative wakeup with load-hit and register-cache-miss
// replay (Alpha 21264 style), backing-file port arbitration and write
// interlocks, insertion-time bypass accounting, invalidate-on-free, and
// the 15-cycle minimum branch misprediction loop.
package pipeline

import (
	"regcache/internal/core"
	"regcache/internal/memsys"
	"regcache/internal/twolevel"
	"regcache/internal/usepred"
)

// Scheme selects the register storage organization under test.
type Scheme int

// Register storage schemes (Section 5).
const (
	SchemeMonolithic Scheme = iota // multi-cycle monolithic register file, no cache
	SchemeCache                    // register cache + backing file
	SchemeTwoLevel                 // two-level register file (Balasubramonian-style)
)

func (s Scheme) String() string {
	switch s {
	case SchemeMonolithic:
		return "monolithic"
	case SchemeCache:
		return "cache"
	case SchemeTwoLevel:
		return "two-level"
	}
	return "scheme?"
}

// Config is the full machine configuration. Zero values select Table 1.
type Config struct {
	// Widths.
	FetchWidth        int // 8
	IssueWidth        int // 8
	RetireWidth       int // 8
	MaxStoresPerCycle int // 2

	// Capacities.
	IQSize    int // 128
	ROBSize   int // 512
	NumPRegs  int // 512
	LQSize    int // 128
	SQSize    int // 128
	FrontQCap int // fetch-to-dispatch buffer

	// Depths.
	FrontEndDepth int // 11 = 4 fetch + 2 decode + 3 rename + 2 dispatch
	BypassStages  int // 2

	// Function units (Table 1).
	IntALU, BranchUnits, IntMul, FPALU, FPMulDiv, LoadUnits, StoreUnits int

	// Store execute-to-earliest-retirement distance.
	StoreRetireDelay int // 3

	// Hardware contexts. Threads <= 1 is the classic single-context
	// machine; Threads > 1 interleaves that many deterministic instruction
	// streams over one shared physical file, register cache, issue window,
	// and memory hierarchy, with per-context architectural spaces, ROB
	// partitions, and front-end predictors. InterleaveGranularity is the
	// round-robin fetch quantum in instructions (default 8).
	Threads               int
	InterleaveGranularity int

	// Register storage scheme.
	Scheme         Scheme
	RFLatency      int // monolithic read/write latency (baseline: 3)
	BackingLatency int // backing file latency behind a cache (default 2)
	CacheCfg       core.Config
	TwoLevelCfg    twolevel.Config

	// ReadPorts enables the port-filtering scheme family (cache scheme
	// only): the backing register file exposes this many read ports per
	// cycle and fills beyond that arbitrate through a queue, charging
	// port-conflict stalls. 0 keeps the legacy single-serialized-port
	// model (bit-identical to the pre-port pipeline).
	ReadPorts int

	// Memory system.
	Mem memsys.Config

	// Degree-of-use predictor overrides (zero values = Table 1 defaults).
	UsePred usepred.Config

	// OracleUses replaces the degree-of-use predictor with perfect
	// knowledge from a functional pre-pass (the paper's "perfect a priori
	// knowledge" motivation; see internal/pipeline/oracle.go).
	OracleUses bool

	// Instrumentation.
	TrackLifetimes  bool // Figure 1 phase histograms
	TrackLiveCounts bool // Figure 2 event streams (memory ~ retired insts)
}

// DefaultConfig returns the Table 1 machine with the given scheme.
func DefaultConfig() Config {
	return Config{
		FetchWidth: 8, IssueWidth: 8, RetireWidth: 8, MaxStoresPerCycle: 2,
		IQSize: 128, ROBSize: 512, NumPRegs: 512, LQSize: 128, SQSize: 128,
		FrontQCap:     96,
		FrontEndDepth: 11, BypassStages: 2,
		IntALU: 6, BranchUnits: 2, IntMul: 2, FPALU: 4, FPMulDiv: 2,
		LoadUnits: 4, StoreUnits: 2,
		StoreRetireDelay: 3,
		Scheme:           SchemeCache,
		RFLatency:        3,
		BackingLatency:   2,
		CacheCfg:         core.UseBasedConfig(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FetchWidth == 0 {
		c.FetchWidth = d.FetchWidth
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.RetireWidth == 0 {
		c.RetireWidth = d.RetireWidth
	}
	if c.MaxStoresPerCycle == 0 {
		c.MaxStoresPerCycle = d.MaxStoresPerCycle
	}
	if c.IQSize == 0 {
		c.IQSize = d.IQSize
	}
	if c.ROBSize == 0 {
		c.ROBSize = d.ROBSize
	}
	if c.NumPRegs == 0 {
		c.NumPRegs = d.NumPRegs
	}
	if c.LQSize == 0 {
		c.LQSize = d.LQSize
	}
	if c.SQSize == 0 {
		c.SQSize = d.SQSize
	}
	if c.FrontQCap == 0 {
		c.FrontQCap = d.FrontQCap
	}
	if c.FrontEndDepth == 0 {
		c.FrontEndDepth = d.FrontEndDepth
	}
	if c.BypassStages == 0 {
		c.BypassStages = d.BypassStages
	}
	if c.IntALU == 0 {
		c.IntALU = d.IntALU
	}
	if c.BranchUnits == 0 {
		c.BranchUnits = d.BranchUnits
	}
	if c.IntMul == 0 {
		c.IntMul = d.IntMul
	}
	if c.FPALU == 0 {
		c.FPALU = d.FPALU
	}
	if c.FPMulDiv == 0 {
		c.FPMulDiv = d.FPMulDiv
	}
	if c.LoadUnits == 0 {
		c.LoadUnits = d.LoadUnits
	}
	if c.StoreUnits == 0 {
		c.StoreUnits = d.StoreUnits
	}
	if c.StoreRetireDelay == 0 {
		c.StoreRetireDelay = d.StoreRetireDelay
	}
	if c.RFLatency == 0 {
		c.RFLatency = d.RFLatency
	}
	if c.BackingLatency == 0 {
		c.BackingLatency = d.BackingLatency
	}
	// Cache config: default the preg space to the machine's.
	if c.CacheCfg.MaxPRegs == 0 {
		c.CacheCfg.MaxPRegs = c.NumPRegs
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.InterleaveGranularity < 1 {
		c.InterleaveGranularity = 8
	}
	return c
}

// readLatency returns the register read latency between issue and execute
// for the configured scheme.
func (c *Config) readLatency() int {
	switch c.Scheme {
	case SchemeMonolithic:
		return c.RFLatency
	case SchemeTwoLevel:
		return 1 // single-cycle direct-mapped L1 file
	default:
		return 1 // single-cycle register cache
	}
}
