package pipeline

// Tests for the interval-parallel executor: the split arithmetic, the
// checkpoint capture pass, the K=1 bit-identity guarantee, determinism of
// the stitched K>1 results, and the zero-allocation gate on a pipeline
// resumed from a checkpoint.

import (
	"reflect"
	"testing"

	"regcache/internal/memsys"
	"regcache/internal/prog"
)

func TestIntervalStarts(t *testing.T) {
	cases := []struct {
		total uint64
		k     int
		want  []uint64
	}{
		{100, 1, []uint64{0}},
		{100, 4, []uint64{0, 25, 50, 75}},
		{10, 3, []uint64{0, 4, 7}}, // remainder spread over the leading intervals
		{100, 0, []uint64{0}},      // k clamped up to 1
		{100, -5, []uint64{0}},
		{3, 8, []uint64{0, 1, 2}}, // k clamped down to total
	}
	for _, c := range cases {
		got := IntervalStarts(c.total, c.k)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("IntervalStarts(%d, %d) = %v, want %v", c.total, c.k, got, c.want)
		}
	}
	// Every split must partition [0, total): starts strictly increasing
	// from 0, implied interval sizes all >= 1.
	for _, k := range []int{1, 2, 3, 7, 16} {
		starts := IntervalStarts(1000, k)
		if starts[0] != 0 {
			t.Fatalf("k=%d: first start %d, want 0", k, starts[0])
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] <= starts[i-1] {
				t.Fatalf("k=%d: starts not increasing: %v", k, starts)
			}
		}
	}
}

func TestCapturePoints(t *testing.T) {
	starts := []uint64{0, 250, 500, 750}
	got := CapturePoints(starts, 100)
	want := []uint64{0, 150, 400, 650}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CapturePoints(%v, 100) = %v, want %v", starts, got, want)
	}
	// Warm-up longer than the first boundary clamps at program entry.
	got = CapturePoints([]uint64{0, 50, 500}, 100)
	want = []uint64{0, 0, 400}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("clamped CapturePoints = %v, want %v", got, want)
	}
}

func TestCaptureCheckpointsAlignment(t *testing.T) {
	p := prog.MustGenerate(mustProfile(t, "gzip"))
	cks := CaptureCheckpoints(p, []uint64{0, 1_000, 5_000}, memsys.Config{})
	if len(cks) != 3 {
		t.Fatalf("%d checkpoints, want 3", len(cks))
	}
	if cks[0].Inst != 0 || cks[0].DefBase != 0 {
		t.Errorf("entry checkpoint at inst %d defs %d, want 0/0", cks[0].Inst, cks[0].DefBase)
	}
	for i, pt := range []uint64{0, 1_000, 5_000} {
		if cks[i].Inst != pt {
			t.Errorf("checkpoint %d at inst %d, want %d", i, cks[i].Inst, pt)
		}
	}
	if cks[2].DefBase <= cks[1].DefBase || cks[1].DefBase == 0 {
		t.Errorf("def bases not increasing: %d, %d", cks[1].DefBase, cks[2].DefBase)
	}
	// DefBase must count exactly the register-writing instructions the
	// oracle pre-pass counts: resuming the pre-pass from a checkpoint has
	// to land on the same def indices (the oracle-table alignment).
	e := prog.NewExec(p)
	var n, defs uint64
	for n < 5_000 {
		in := p.InstAt(e.PC())
		e.StepInst(in)
		if in.HasDest() {
			defs++
		}
		n++
	}
	if defs != cks[2].DefBase {
		t.Errorf("checkpoint def base %d, independent recount %d", cks[2].DefBase, defs)
	}
}

// TestRunIntervalsK1BitIdentical pins the guard mode: one interval with no
// warm-up must be the serial run, bit for bit, for every scheme kind.
func TestRunIntervalsK1BitIdentical(t *testing.T) {
	for name, cfg := range benchConfigs() {
		t.Run(name, func(t *testing.T) {
			p := prog.MustGenerate(mustProfile(t, "gzip"))
			serial := New(cfg, p).Run(20_000)
			interval := RunIntervals(cfg, p, 20_000, IntervalOptions{K: 1})
			if !reflect.DeepEqual(serial, interval) {
				t.Errorf("K=1 interval run diverged from serial:\nserial:   %+v\ninterval: %+v", serial, interval)
			}
			if interval.Intervals != nil {
				t.Errorf("K=1 result carries IntervalStats %+v, want nil (bit-identity includes the schema)", interval.Intervals)
			}
		})
	}
}

// TestRunIntervalsDeterministic pins that a stitched K>1 run is a pure
// function of its inputs: two identical invocations (including freshly
// captured checkpoints) must agree exactly.
func TestRunIntervalsDeterministic(t *testing.T) {
	for name, cfg := range benchConfigs() {
		t.Run(name, func(t *testing.T) {
			p := prog.MustGenerate(mustProfile(t, "gzip"))
			o := IntervalOptions{K: 4, Warmup: 2_000}
			a := RunIntervals(cfg, p, 20_000, o)
			b := RunIntervals(cfg, p, 20_000, o)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("repeated K=4 runs diverged:\na: %+v\nb: %+v", a, b)
			}
		})
	}
}

// TestRunIntervalsMergedInvariants checks the stitched result's structural
// guarantees: the architectural stream is complete (every instruction
// retired exactly once, modulo retire-width overshoot at window edges) and
// the interval metadata describes the run.
func TestRunIntervalsMergedInvariants(t *testing.T) {
	p := prog.MustGenerate(mustProfile(t, "gzip"))
	const total, k, warmup = 20_000, 4, 2_000
	r := RunIntervals(DefaultConfig(), p, total, IntervalOptions{K: k, Warmup: warmup})
	// Each window boundary (warm-up end and interval end) can overshoot
	// by at most retire width - 1 instructions in either direction of the
	// window sum.
	const slack = 8 * k
	if r.Stats.Retired < total-slack || r.Stats.Retired > total+slack {
		t.Errorf("merged Retired = %d, want within [%d, %d]", r.Stats.Retired, total-slack, total+slack)
	}
	iv := r.Intervals
	if iv == nil {
		t.Fatal("K>1 result has no IntervalStats")
	}
	if iv.K != k || len(iv.IntervalCycles) != k {
		t.Errorf("IntervalStats K=%d with %d cycle entries, want %d", iv.K, len(iv.IntervalCycles), k)
	}
	if iv.WarmupInsts != warmup {
		t.Errorf("WarmupInsts = %d, want %d", iv.WarmupInsts, warmup)
	}
	if iv.WarmupRetired == 0 || iv.WarmupCycles == 0 {
		t.Errorf("warm-up work not accounted: retired %d, cycles %d", iv.WarmupRetired, iv.WarmupCycles)
	}
	if s := iv.Skew(); s < 1 {
		t.Errorf("Skew() = %v, want >= 1", s)
	}
	if f := iv.WarmupFrac(); f <= 0 || f >= 1 {
		t.Errorf("WarmupFrac() = %v, want in (0, 1)", f)
	}
	var cyc uint64
	for _, c := range iv.IntervalCycles {
		cyc += c
	}
	if cyc != r.Stats.Cycles {
		t.Errorf("per-interval cycles sum to %d, merged Cycles = %d", cyc, r.Stats.Cycles)
	}
	if r.IPC <= 0 {
		t.Errorf("merged IPC = %v, want > 0", r.IPC)
	}
}

// TestStatsSubAddRoundTrip sanity-checks the reflection-based window
// arithmetic: (a + b) - b == a over every counter field.
func TestStatsSubAddRoundTrip(t *testing.T) {
	p := prog.MustGenerate(mustProfile(t, "gzip"))
	pl := New(DefaultConfig(), p)
	pl.Run(5_000)
	a := pl.Stats
	pl.Run(10_000) // continues; Stats now a+b
	b := pl.Stats.Sub(a)
	if got := b.Add(a); !reflect.DeepEqual(got, pl.Stats) {
		t.Errorf("Sub/Add round trip diverged:\ngot:  %+v\nwant: %+v", got, pl.Stats)
	}
	if b.Retired == 0 || b.Retired >= pl.Stats.Retired {
		t.Errorf("window Retired = %d, want in (0, %d)", b.Retired, pl.Stats.Retired)
	}
}

// TestCycleLoopZeroAllocInterval extends the steady-state allocation gate
// to pipelines resumed from a checkpoint: the interval executor must reuse
// the same pooled cycle loop, not introduce per-cycle garbage.
func TestCycleLoopZeroAllocInterval(t *testing.T) {
	p := prog.MustGenerate(mustProfile(t, "gzip"))
	cks := CaptureCheckpoints(p, []uint64{30_000}, memsys.Config{})
	for name, cfg := range benchConfigs() {
		t.Run(name, func(t *testing.T) {
			pl := NewAt(cfg, p, cks[0])
			pl.Run(40_000) // warm past the checkpoint transient, as the serial gate does
			const batch = 2000
			allocs := testing.AllocsPerRun(5, func() {
				for i := 0; i < batch; i++ {
					pl.Cycle()
				}
			})
			if allocs > 0 {
				t.Errorf("%s: checkpointed cycle loop allocates %.2f objects per %d cycles, want 0", name, allocs, batch)
			}
		})
	}
}

func mustProfile(t *testing.T, name string) prog.Profile {
	t.Helper()
	prof, ok := prog.ProfileByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return prof
}
