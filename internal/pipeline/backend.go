package pipeline

import (
	"regcache/internal/isa"
	"regcache/internal/obs"
)

// operandSource describes how a source operand will be obtained.
type operandSource int

const (
	srcNone        operandSource = iota // no register / zero register
	srcBypass1                          // bypass network, first stage (pre-cache-write)
	srcBypass2                          // bypass network, second stage
	srcStorage                          // register cache / register file read
	srcUnavailable                      // window violation: consumer must wait/replay
)

// operandPlan classifies how the operand of a uop issuing (or issued) at
// issueCycle obtains its value, given the producer completion time the
// scheduler may assume at cycle now.
func (pl *Pipeline) operandPlan(s *srcOp, issueCycle, now uint64) operandSource {
	if !s.isReal() {
		return srcNone
	}
	p := s.producer
	if p == nil || p.seq != s.prodSeq || p.state == uRetired {
		// Value committed before rename, or the producer retired (possibly
		// recycled for a newer instruction — detected by the seq mismatch).
		return srcStorage
	}
	if p.state != uExecuting && p.state != uDone {
		return srcUnavailable // producer not yet executing (or waiting a fill)
	}
	tP := p.effectiveResult(now)
	execStart := issueCycle + 1 + uint64(pl.readLat)
	if execStart == tP+1 {
		return srcBypass1
	}
	if execStart == tP+2 && pl.cfg.BypassStages >= 2 {
		return srcBypass2
	}
	// Storage window: a read may start only after the producer's write
	// completes (register files do not forward in-flight writes — covering
	// that gap is the bypass network's job, which is why its depth must
	// grow with the file latency, Section 2.2). The register cache and the
	// two-level L1 write in one cycle (during tP+1), so reads starting at
	// tP+2 (issue >= tP+1) see the value: no scheduling hole beyond the
	// two bypass stages. A monolithic file with latency L writes during
	// tP+1..tP+L, so reads legally start at tP+L+1 (issue >= tP+L),
	// leaving a 2L-2 cycle hole after the bypass window that delays any
	// consumer that missed it.
	switch pl.cfg.Scheme {
	case SchemeMonolithic:
		if issueCycle >= tP+uint64(pl.cfg.RFLatency) {
			return srcStorage
		}
	default:
		if issueCycle >= tP+1 {
			return srcStorage
		}
	}
	return srcUnavailable
}

// issuable reports whether every operand of u can be obtained if it issues
// at the current cycle (speculative wakeup: loads advertise hit timing).
func (pl *Pipeline) issuable(u *uop) bool {
	for i := range u.srcs {
		if pl.operandPlan(&u.srcs[i], pl.now, pl.now) == srcUnavailable {
			return false
		}
	}
	return true
}

// issue selects up to IssueWidth ready instructions, oldest first, subject
// to function-unit availability. Issue is suppressed entirely in a cycle
// that detected a register cache miss (the paper's replay rule: everything
// issued in the cycle after a missing instruction issues is replayed).
func (pl *Pipeline) issue() {
	if pl.suppressIssue {
		pl.Stats.SuppressedIssueCycles++
		return
	}
	pl.fuUsed = [numFUClasses]int{}
	issued := 0
	for _, e := range pl.iq {
		if issued >= pl.cfg.IssueWidth {
			break
		}
		u := e.u
		if u == nil || u.seq != e.seq || u.state != uInIQ {
			continue // stale slot: issued, squashed, or recycled
		}
		cls := classOf(u.inst.Op)
		if pl.fuUsed[cls] >= pl.fuCap[cls] {
			continue
		}
		if !pl.issuable(u) {
			continue
		}
		pl.fuUsed[cls]++
		u.state = uIssued
		u.issueCycle = pl.now
		pl.issuedNow = append(pl.issuedNow, u)
		if pl.tracer != nil {
			pl.tracePipe(u, obs.StageIssue, pl.now)
		}
		issued++
	}
	pl.Stats.Issued += uint64(issued)
	if len(pl.iq) > pl.iqCount*2+32 {
		pl.compactIQ()
	}
}

// compactIQ removes entries that left the window.
func (pl *Pipeline) compactIQ() {
	live := pl.iq[:0]
	for _, e := range pl.iq {
		if u := e.u; u != nil && u.seq == e.seq && (u.state == uInIQ || u.state == uIssued) {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(pl.iq); i++ {
		pl.iq[i] = uopRef{} // drop stale references
	}
	pl.iq = live
}

// readStage processes uops issued in the previous cycle: operands are
// validated against actual producer timing (load-hit and cache-miss
// shadows replay here), then acquired from the bypass network, the
// register cache (possibly missing), or the register file. It runs before
// this cycle's select so producers entering execution here wake their
// consumers for back-to-back (bypass stage 1) issue.
func (pl *Pipeline) readStage() {
	// Swap the two read-stage buffers instead of dropping the slice: the
	// buffer drained this cycle becomes next cycle's issue scratch.
	pending := pl.issuedNow
	pl.issuedNow = pl.readBuf[:0]
	pl.readBuf = pending
	for _, u := range pending {
		if u.state != uIssued {
			continue // squashed in the meantime
		}
		pl.resolveOperands(u)
	}
}

// resolveOperands validates and acquires u's operands at its register-read
// stage. Any operand whose availability window closed (its producer's real
// latency exceeded the speculative wakeup assumption) replays the uop.
func (pl *Pipeline) resolveOperands(u *uop) {
	execStart := u.issueCycle + 1 + uint64(pl.readLat)

	// Pass 1: validate every operand window against actual producer times.
	var plan [2]operandSource
	for i := range u.srcs {
		plan[i] = pl.operandPlan(&u.srcs[i], u.issueCycle, u.missKnownAtFloor())
		if plan[i] == srcUnavailable {
			u.state = uInIQ // replay: reissue once the producer is really done
			pl.Stats.Replays++
			return
		}
	}

	// Pass 2: acquire.
	misses := 0
	for i := range u.srcs {
		s := &u.srcs[i]
		switch plan[i] {
		case srcNone:
			continue
		case srcBypass1:
			pl.Stats.BypassReads++
			pl.Stats.BypassS1Reads++
			if s.producer != nil {
				s.producer.bypassS1++
				s.countedS1 = true
			}
			s.acquired = true
		case srcBypass2:
			pl.Stats.BypassReads++
			if pl.cache != nil {
				pl.cache.NoteBypassUse(s.preg, int(s.set))
			}
			s.acquired = true
		case srcStorage:
			switch pl.cfg.Scheme {
			case SchemeCache:
				tc := &pl.threads[u.tid]
				tc.stats.CacheReads++
				if pl.cache.Read(s.preg, int(s.set), pl.now) {
					tc.stats.CacheHits++
					s.acquired = true
				} else {
					tc.stats.CacheMisses++
					misses++
					pl.requestFill(u, s)
				}
			case SchemeMonolithic:
				pl.mono.NoteRead()
				pl.Stats.RFReads++
				s.acquired = true
			case SchemeTwoLevel:
				pl.Stats.RFReads++
				s.acquired = true
			}
		}
		if s.acquired {
			if pl.tlf != nil && s.counted {
				pl.tlf.ConsumerDone(s.preg)
				s.counted = false
			}
			if pl.life != nil {
				pl.life.Read(s.preg, execStart)
			}
		}
	}

	if misses > 0 {
		// Register cache miss: the missing instruction waits at the read
		// stage for its fill(s); everything selected this cycle is
		// squashed back to the window (suppressIssue implements the
		// replay since reads precede selection within the cycle).
		u.state = uWaitFill
		u.fillsLeft = misses
		pl.iqCount--
		pl.suppressIssue = true
		pl.Stats.RCMissEvents++
		if pl.tracer != nil {
			pl.tracePipe(u, obs.StageWaitFill, pl.now)
		}
		return
	}
	pl.beginExecution(u, execStart)
}

// missKnownAtFloor returns the observation cycle for operand validation:
// the read stage sees actual producer latencies (that is what creates the
// replay), so validation always uses real times.
func (u *uop) missKnownAtFloor() uint64 { return ^uint64(0) }

// requestFill queues a backing-file read for the missed operand, merging
// with an outstanding fill of the same register. Under the legacy model
// (ReadPorts == 0) the backing file itself serializes its single port;
// port-filtering schemes (ReadPorts > 0) arbitrate explicitly here — up
// to ReadPorts fills start per cycle, the rest queue and charge
// port-conflict stalls until granted.
func (pl *Pipeline) requestFill(u *uop, s *srcOp) {
	if req := pl.missQ[s.preg]; req != nil {
		req.addWaiter(u)
		return
	}
	req := pl.allocFillReq()
	req.preg, req.set, req.tid = s.preg, s.set, u.tid
	req.addWaiter(u)
	pl.missQ[s.preg] = req
	if pl.cfg.ReadPorts > 0 {
		if pl.portUsed < pl.cfg.ReadPorts {
			pl.startPortedRead(req)
		} else {
			pl.portQ = append(pl.portQ, req)
			pl.notePortStall(req, u)
		}
		return
	}
	ready := pl.backing.Read(s.preg, pl.now)
	req.readyAt = ready
	pl.fills.schedule(pl.now, ready, req)
}

// startPortedRead consumes one of this cycle's read-port grants for req.
func (pl *Pipeline) startPortedRead(req *fillReq) {
	pl.portUsed++
	ready := pl.backing.ReadPorted(req.preg, pl.now)
	req.readyAt = ready
	pl.fills.schedule(pl.now, ready, req)
}

// notePortStall charges one queued cycle to req (port-filtering schemes):
// the machine-level counter, the owning context's counter, and — when
// tracing and the deferral just happened at u's read stage — a stall event.
func (pl *Pipeline) notePortStall(req *fillReq, u *uop) {
	pl.Stats.PortConflictStalls++
	pl.threads[req.tid].stats.PortConflictStalls++
	if u != nil && pl.tracer != nil {
		pl.tracePipe(u, obs.StagePortStall, pl.now)
	}
}

// grantPorts starts queued backing-file reads at the top of the cycle, up
// to the port-filtering scheme's read-port count; requests still queued
// after the grants accumulate another stalled cycle each. A no-op (one
// branch) for every other scheme.
func (pl *Pipeline) grantPorts() {
	pl.portUsed = 0
	if len(pl.portQ) == 0 {
		return
	}
	n := 0
	for n < len(pl.portQ) && pl.portUsed < pl.cfg.ReadPorts {
		pl.startPortedRead(pl.portQ[n])
		n++
	}
	if n > 0 {
		m := copy(pl.portQ, pl.portQ[n:])
		for i := m; i < len(pl.portQ); i++ {
			pl.portQ[i] = nil
		}
		pl.portQ = pl.portQ[:m]
	}
	for _, req := range pl.portQ {
		pl.notePortStall(req, nil)
	}
}

// processFills completes backing-file reads whose data arrives this cycle:
// the value is written into the register cache and waiting instructions
// resume execution directly (the fill bypasses to them, Figure 3).
func (pl *Pipeline) processFills() {
	reqs := pl.fills.due(pl.now)
	if len(reqs) == 0 {
		return
	}
	for _, req := range reqs {
		pl.missQ[req.preg] = nil
		pl.cache.Fill(req.preg, int(req.set), pl.now)
		for i := range req.waiters {
			w := req.waiters[i].u
			if w.seq != req.waiters[i].seq || w.state != uWaitFill {
				continue // squashed (and possibly recycled)
			}
			w.fillsLeft--
			if w.fillsLeft == 0 {
				pl.beginExecution(w, pl.now+1)
			}
		}
		pl.freeFillReq(req)
	}
	pl.fills.clear(pl.now)
}

// beginExecution starts u's execution at execStart, computing its actual
// completion time (loads probe the data cache; store-to-load forwarding
// from in-flight stores applies).
func (pl *Pipeline) beginExecution(u *uop, execStart uint64) {
	if u.state == uInIQ || u.state == uIssued {
		pl.iqCount--
	}
	u.state = uExecuting
	u.execStart = execStart
	if pl.tracer != nil {
		pl.tracePipe(u, obs.StageExecute, execStart)
	}
	lat := u.inst.Op.Latency()
	u.specResult = execStart + uint64(lat) - 1
	u.resultAt = u.specResult
	u.missKnownAt = execStart
	if u.inst.Op == isa.OpLoad {
		extra := pl.loadExtra(u, execStart)
		u.resultAt += uint64(extra)
		// The scheduler sees the real latency only when the hit-assumed
		// data would have arrived — dependents issued before then ride the
		// load-hit speculation shadow and replay (Section 5.2 analogy).
		u.missKnownAt = u.specResult
		if extra > 0 {
			pl.Stats.LoadMisses++
		}
	}
	pl.comps.schedule(pl.now, u.resultAt+1, compEntry{u: u, seq: u.seq})
}

// loadExtra returns the cycles beyond the L1-hit load-to-use latency for
// u's load, honouring store-to-load forwarding from older in-flight stores
// of the same context (contexts never share data addresses).
func (pl *Pipeline) loadExtra(u *uop, execStart uint64) int {
	line := u.step.MemAddr >> 6
	for _, st := range pl.inflightStores {
		if st.tid == u.tid && st.seq < u.seq && st.state != uSquashed && st.step.MemAddr>>6 == line {
			return 0
		}
	}
	return pl.mem.LoadLatency(threadAddr(u.tid, u.step.MemAddr), execStart)
}

// processCompletions retires execution for uops whose results appeared at
// the end of the previous cycle: values are presented to the register
// cache (insertion policy) or register file, and resolving branches
// trigger misprediction recovery.
func (pl *Pipeline) processCompletions() {
	comps := pl.comps.due(pl.now)
	if len(comps) == 0 {
		return
	}
	sortCompEntries(comps)
	for _, e := range comps {
		u := e.u
		if u.seq != e.seq || u.state != uExecuting {
			continue // squashed while executing (and possibly recycled)
		}
		u.state = uDone
		if pl.tracer != nil {
			pl.tracePipe(u, obs.StageWriteback, pl.now)
		}
		pl.writeback(u)
		if u.inst.Op.IsBranch() && u.mispredicted {
			pl.recover(u)
		}
	}
	pl.comps.clear(pl.now)
}

// writeback presents u's produced value to the register storage. For the
// cache scheme the insertion decision sees the remaining-use count after
// bypass-stage-1 consumers (Section 3.1); every value is written to the
// backing file regardless.
func (pl *Pipeline) writeback(u *uop) {
	if !u.hasDest() {
		return
	}
	if pl.life != nil {
		pl.life.Write(u.destPreg, u.resultAt)
	}
	switch pl.cfg.Scheme {
	case SchemeCache:
		pl.backing.NoteWrite(u.destPreg, u.resultAt)
		remaining := u.predUses - u.bypassS1
		if remaining < 0 {
			remaining = 0
		}
		if u.pinned {
			remaining = u.predUses
		}
		pl.cache.Produce(u.destPreg, int(u.destSet), remaining, u.pinned, u.bypassS1 > 0, pl.now)
	case SchemeMonolithic:
		pl.mono.NoteWrite(u.destPreg, u.resultAt)
	case SchemeTwoLevel:
		pl.tlf.Produced(u.destPreg)
		pl.Stats.RFWrites++
	}
}

// recover squashes everything younger than the mispredicted branch b in
// its own context, restores that context's rename map, functional state,
// and predictor histories, and redirects its fetch down the correct path.
// Other contexts' in-flight instructions are untouched.
func (pl *Pipeline) recover(b *uop) {
	tc := &pl.threads[b.tid]
	pl.Stats.Mispredicts++
	tc.stats.Mispredicts++

	// Squash front-end uops of b's context (all fetched after b), keeping
	// other contexts' entries in their fetch order. Compaction into the
	// backing array's head is safe: the write index never passes the read
	// index (frontq is a suffix of frontqBuf).
	live := pl.frontqBuf[:0]
	for _, u := range pl.frontq {
		if u.tid == b.tid {
			pl.squash(u)
		} else {
			live = append(live, u)
		}
	}
	pl.frontq = live

	// Squash the context's ROB entries younger than b, youngest first.
	for tc.robCount > 0 {
		tail := (tc.robHead + tc.robCount - 1) % len(tc.rob)
		u := tc.rob[tail]
		if u.seq <= b.seq {
			break
		}
		pl.squash(u)
		tc.rob[tail] = nil
		tc.robCount--
	}

	// Restore rename and functional state to just after b.
	tc.maps.Rollback(b.mapTokAfter)
	tc.exec.Rollback(b.execTokAfter)
	// Rewind the definition counter so correct-path renames stay aligned
	// with the oracle pre-pass (defIdx is the post-uop counter state).
	tc.defCounter = b.defIdx

	// Restore predictor state (corrected with b's actual outcome).
	tc.yags.SetHistory(b.bhrBefore)
	if b.inst.Op.IsCond() {
		tc.yags.UpdateHistory(b.step.Taken)
	}
	tc.ind.SetPath(b.pathBefore)
	if b.step.Taken {
		tc.ind.UpdatePath(b.step.NextPC)
	}
	tc.ras.Restore(b.rasTop, b.rasDepth)

	// Two-level: values migrated to L2 that any context's restored map
	// exposes must be copied back; rename stalls for the uncovered portion.
	extraStall := 0
	if pl.tlf != nil {
		visible := pl.tlfVisible[:0]
		for t := range pl.threads {
			m := pl.threads[t].maps
			for i := 0; i < isa.NumArchRegs; i++ {
				visible = append(visible, m.Lookup(isa.Reg(i+1)).PReg)
			}
		}
		pl.tlfVisible = visible
		extraStall = pl.tlf.Recover(visible)
	}

	tc.fetchLost = false
	tc.lastFetchLine = 0
	restart := pl.now + 1 + uint64(extraStall)
	if restart > tc.fetchStallUntil {
		tc.fetchStallUntil = restart
	}
	pl.compactIQ()
}

// squash cancels one in-flight uop, releasing every resource it claimed.
func (pl *Pipeline) squash(u *uop) {
	switch u.state {
	case uInIQ, uIssued:
		pl.iqCount--
	}
	if u.state != uInFrontEnd {
		switch u.inst.Op {
		case isa.OpLoad:
			pl.lqCount--
		case isa.OpStore:
			pl.sqCount--
			pl.removeInflightStore(u)
		}
	}
	if pl.tlf != nil {
		for i := range u.srcs {
			s := &u.srcs[i]
			if s.counted {
				pl.tlf.ConsumerDone(s.preg)
				s.counted = false
			}
		}
		if u.oldPreg >= 0 {
			pl.tlf.Unremapped(u.oldPreg)
		}
	}
	for i := range u.srcs {
		s := &u.srcs[i]
		if s.countedS1 {
			pl.Stats.WrongPathS1Counts++
			if p := s.producer; p != nil && p.seq == s.prodSeq &&
				p.state != uDone && p.state != uRetired && p.bypassS1 > 0 {
				pl.Stats.WrongPathS1Undoable++
			}
		}
	}
	if u.hasDest() {
		if pl.cache != nil {
			pl.cache.Free(u.destPreg, pl.now)
		}
		if pl.tlf != nil {
			pl.tlf.Free(u.destPreg)
		}
		pl.producers[u.destPreg] = nil
		pl.freelist.Free(u.destPreg)
	}
	u.state = uSquashed
	pl.Stats.Squashed++
	pl.threads[u.tid].stats.Squashed++
	if pl.tracer != nil {
		pl.tracePipe(u, obs.StageSquash, pl.now)
	}
	// Recycle the uop. recover compacts the issue queue before fetch can
	// reuse it, and every longer-lived reference is seq-guarded.
	pl.freeUop(u)
}

// removeInflightStore deletes u from the in-flight store list by swapping
// the last element into its slot. Order does not matter: loadExtra scans
// the whole list for any older same-context store to the same line, so the
// result is independent of element order, and swap-remove makes deletion
// O(1) instead of an O(n) mid-slice copy.
func (pl *Pipeline) removeInflightStore(u *uop) {
	stores := pl.inflightStores
	for i, st := range stores {
		if st == u {
			last := len(stores) - 1
			stores[i] = stores[last]
			stores[last] = nil
			pl.inflightStores = stores[:last]
			return
		}
	}
}
