package pipeline

import (
	"testing"

	"regcache/internal/core"
	"regcache/internal/prog"
)

// run simulates n instructions of the named benchmark under cfg.
func run(t *testing.T, bench string, cfg Config, n uint64) Result {
	t.Helper()
	prof, ok := prog.ProfileByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	pl := New(cfg, prog.MustGenerate(prof))
	return pl.Run(n)
}

func TestMonolithicBaselineRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeMonolithic
	cfg.RFLatency = 3
	r := run(t, "gzip", cfg, 50_000)
	if r.Stats.Retired < 50_000 {
		t.Fatalf("retired %d, want >= 50000", r.Stats.Retired)
	}
	if r.IPC < 0.3 || r.IPC > 8 {
		t.Fatalf("IPC %.3f out of plausible range", r.IPC)
	}
	t.Logf("gzip monolithic L3: %s", r)
}

func TestCacheSchemeRuns(t *testing.T) {
	cfg := DefaultConfig()
	r := run(t, "gzip", cfg, 50_000)
	if r.Stats.Retired < 50_000 {
		t.Fatalf("retired %d", r.Stats.Retired)
	}
	if r.Cache.Reads == 0 {
		t.Fatal("register cache never read")
	}
	if r.Cache.HitRate() < 0.5 {
		t.Fatalf("cache hit rate %.3f implausibly low", r.Cache.HitRate())
	}
	if r.BypassFrac < 0.2 || r.BypassFrac > 0.95 {
		t.Fatalf("bypass fraction %.3f out of plausible range", r.BypassFrac)
	}
	t.Logf("gzip use-based cache: %s", r)
}

func TestTwoLevelSchemeRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeTwoLevel
	cfg.TwoLevelCfg.L1Entries = 96
	r := run(t, "gzip", cfg, 50_000)
	if r.Stats.Retired < 50_000 {
		t.Fatalf("retired %d", r.Stats.Retired)
	}
	t.Logf("gzip two-level: %s", r)
	t.Logf("  migrations=%d recoveryStalls=%d renameStalls=%d",
		r.TLMigrations, r.TLRecoveryStalls, r.TLRenameStalls)
}

func TestRegisterCacheMissPathExercised(t *testing.T) {
	// A tiny direct-mapped cache must miss and fill via the backing file.
	cfg := DefaultConfig()
	cfg.CacheCfg = core.Config{Entries: 8, Ways: 1, Insert: core.InsertAlways,
		Replace: core.ReplaceLRU, Index: core.IndexPReg}
	r := run(t, "gzip", cfg, 30_000)
	if r.Stats.RCMissEvents == 0 {
		t.Fatal("no register cache miss events on an 8-entry direct-mapped cache")
	}
	if r.BackingReads == 0 {
		t.Fatal("backing file never read despite misses")
	}
	if r.Cache.Fills == 0 {
		t.Fatal("no fills recorded")
	}
	t.Logf("8-entry DM: %s", r)
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	a := run(t, "vpr", cfg, 20_000)
	b := run(t, "vpr", cfg, 20_000)
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Retired != b.Stats.Retired ||
		a.Cache.Hits != b.Cache.Hits || a.Stats.Mispredicts != b.Stats.Mispredicts {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestAllBenchmarksAllSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, name := range prog.ProfileNames() {
		for _, scheme := range []Scheme{SchemeMonolithic, SchemeCache, SchemeTwoLevel} {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			r := run(t, name, cfg, 20_000)
			if r.Stats.Retired < 20_000 {
				t.Errorf("%s/%s: retired %d", name, scheme, r.Stats.Retired)
			}
			if r.IPC <= 0.05 || r.IPC > 8 {
				t.Errorf("%s/%s: IPC %.3f implausible", name, scheme, r.IPC)
			}
		}
	}
}
