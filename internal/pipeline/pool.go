package pipeline

// Object pooling for the cycle loop's two transient heap types, uops and
// fill requests. Both are recycled through per-pipeline free lists so the
// steady-state loop allocates nothing (see the AllocsPerRun gates in
// bench_stage_test.go); peak live objects are bounded by the machine's window
// (ROB + front-end queue) rather than the instruction budget, which also
// removes the dominant GC pressure of long runs.
//
// Recycling invariant: a uop pointer may be held across arbitrary
// distances (consumer srcOps, fill waiters, timing-wheel buckets), so
// every long-lived reference carries a seq snapshot taken when the
// reference was created. A recycled uop is reused for a *newer*
// instruction and therefore gets a larger seq; stale references detect
// the mismatch and treat the instruction as gone (retired/squashed),
// exactly the semantics the non-recycling implementation produced by
// leaving the object reachable in its terminal state.

// uopRef is a seq-guarded reference to a possibly-recycled uop.
type uopRef struct {
	u   *uop
	seq uint64
}

// addWaiter records u as waiting on this fill.
func (r *fillReq) addWaiter(u *uop) {
	r.waiters = append(r.waiters, uopRef{u: u, seq: u.seq})
}

// allocFillReq takes a fill request from the free list (or allocates one
// while the pool is still warming up).
func (pl *Pipeline) allocFillReq() *fillReq {
	if n := len(pl.fillFree); n > 0 {
		req := pl.fillFree[n-1]
		pl.fillFree[n-1] = nil
		pl.fillFree = pl.fillFree[:n-1]
		return req
	}
	return &fillReq{}
}

// freeFillReq recycles a completed fill request. Requests are enqueued on
// the fill wheel exactly once and recycled only after their bucket is
// processed, so no stale wheel reference can remain.
func (pl *Pipeline) freeFillReq(req *fillReq) {
	for i := range req.waiters {
		req.waiters[i] = uopRef{} // drop uop references
	}
	req.waiters = req.waiters[:0]
	pl.fillFree = append(pl.fillFree, req)
}

// allocUop takes a uop from the free list, falling back to the block
// allocator while the pool warms up. The returned uop is fully zeroed
// except for its new seq, assigned by the caller.
func (pl *Pipeline) allocUop() *uop {
	if n := len(pl.uopFree); n > 0 {
		u := pl.uopFree[n-1]
		pl.uopFree[n-1] = nil
		pl.uopFree = pl.uopFree[:n-1]
		return u
	}
	if pl.uopNext == len(pl.uopBlock) {
		pl.uopBlock = make([]uop, uopBlockSize)
		pl.uopNext = 0
	}
	u := &pl.uopBlock[pl.uopNext]
	pl.uopNext++
	return u
}

// freeUop recycles a uop that reached a terminal state (retired or
// squashed). The object stays valid memory — stale references elsewhere
// read its fields safely and reject it by seq once it is reused.
func (pl *Pipeline) freeUop(u *uop) {
	pl.uopFree = append(pl.uopFree, u)
}

// uopBlockSize is the block-allocator granularity backing the uop pool.
// Steady state recycles via the free list; blocks are only allocated
// while the in-flight window is still growing toward its maximum.
const uopBlockSize = 1024

// prewarmFillPool stocks the fill-request free list up front: n requests
// with waiterCap-capacity waiter slices carved from two bulk allocations.
// Peak outstanding fills are bounded by the backing file's port queue, so
// a modest pool covers steady state and allocFillReq's fallback (plus
// waiter-slice regrowth, both retained on recycle) absorbs the exceptions.
func (pl *Pipeline) prewarmFillPool(n, waiterCap int) {
	reqs := make([]fillReq, n)
	backing := make([]uopRef, n*waiterCap)
	pl.fillFree = make([]*fillReq, 0, n+8)
	for i := range reqs {
		reqs[i].waiters = backing[i*waiterCap : i*waiterCap : (i+1)*waiterCap]
		pl.fillFree = append(pl.fillFree, &reqs[i])
	}
}
