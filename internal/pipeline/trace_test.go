package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"regcache/internal/core"
	"regcache/internal/obs"
	"regcache/internal/prog"
)

// TestCacheLogMatchesStats runs a real benchmark with the NDJSON sink
// attached and checks that the log's aggregated event counts equal the
// cache's own statistics — the tracer hooks cover every counting site
// exactly once.
func TestCacheLogMatchesStats(t *testing.T) {
	prof, ok := prog.ProfileByName("gzip")
	if !ok {
		t.Fatal("no gzip profile")
	}
	pl := New(DefaultConfig(), prog.MustGenerate(prof))
	var buf bytes.Buffer
	log := obs.NewCacheLog(&buf)
	pl.SetTracer(log)
	r := pl.Run(20_000)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	cs := r.Cache
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"hits", log.Count(obs.CacheHit), cs.Hits},
		{"misses", log.Count(obs.CacheMiss), cs.Misses},
		{"writes", log.Count(obs.CacheWrite), cs.InitialWrites},
		{"fills", log.Count(obs.CacheFill), cs.Fills},
		{"filtered writes", log.Count(obs.CacheWriteFiltered), cs.WritesFiltered},
		{"evictions", log.Count(obs.CacheEvict), cs.Evictions},
		{"invalidations", log.Count(obs.CacheInvalidate), cs.Invalidations},
		{"filtered misses", log.MissCount(int8(core.MissFiltered)), cs.MissBy[core.MissFiltered]},
		{"capacity misses", log.MissCount(int8(core.MissCapacity)), cs.MissBy[core.MissCapacity]},
		{"conflict misses", log.MissCount(int8(core.MissConflict)), cs.MissBy[core.MissConflict]},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s: log aggregated %d, stats counted %d", ck.name, ck.got, ck.want)
		}
	}
	if log.EvictUses().N() != cs.Evictions {
		t.Errorf("evict-use histogram n = %d, want %d", log.EvictUses().N(), cs.Evictions)
	}
	// Every NDJSON line must parse.
	dec := json.NewDecoder(&buf)
	var lines int
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("empty cache log")
	}
}

// TestChromeTraceMatchesStats runs a benchmark with the timeline sink and
// checks the trace is valid JSON whose retire/squash slice counts equal the
// pipeline's counters.
func TestChromeTraceMatchesStats(t *testing.T) {
	prof, ok := prog.ProfileByName("gzip")
	if !ok {
		t.Fatal("no gzip profile")
	}
	pl := New(DefaultConfig(), prog.MustGenerate(prof))
	var buf bytes.Buffer
	ct := obs.NewChromeTrace(&buf, true)
	pl.SetTracer(ct)
	r := pl.Run(10_000)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	counts := map[string]uint64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			counts[e.Name]++
			if e.Dur < 0 {
				t.Fatalf("negative duration slice %+v", e)
			}
		}
	}
	if counts["retire"] != r.Stats.Retired {
		t.Errorf("retire slices %d, stats retired %d", counts["retire"], r.Stats.Retired)
	}
	if counts["squash"] != r.Stats.Squashed {
		t.Errorf("squash slices %d, stats squashed %d", counts["squash"], r.Stats.Squashed)
	}
	if counts["rename"] == 0 || counts["issue"] == 0 {
		t.Errorf("missing pipeline stages in trace: %v", counts)
	}
	if ct.Lanes() == 0 {
		t.Error("no lanes allocated")
	}
}

// TestTracerDeterminism checks tracing does not perturb simulation results:
// the same run with and without a tracer must retire in the same number of
// cycles with identical cache statistics.
func TestTracerDeterminism(t *testing.T) {
	prof, ok := prog.ProfileByName("mcf")
	if !ok {
		t.Fatal("no mcf profile")
	}
	base := New(DefaultConfig(), prog.MustGenerate(prof)).Run(10_000)

	pl := New(DefaultConfig(), prog.MustGenerate(prof))
	pl.SetTracer(obs.NewCacheLog(nopWriter{}))
	traced := pl.Run(10_000)

	if base.Stats.Cycles != traced.Stats.Cycles || base.Cache != traced.Cache {
		t.Errorf("tracing perturbed the simulation:\nbase   %+v\ntraced %+v", base.Stats, traced.Stats)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
