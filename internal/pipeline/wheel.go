package pipeline

// timingWheel is a calendar-queue scheduler for the cycle loop: a
// power-of-two ring of per-cycle buckets indexed by cycle&mask, with an
// overflow list for the rare event scheduled beyond the horizon. It
// replaces the map[uint64][]T structures the pipeline previously used for
// completion and fill scheduling, eliminating per-cycle map hashing and
// bucket churn: buckets are drained every cycle (Cycle calls due/clear
// unconditionally), so a bucket only ever holds events for one cycle, and
// clearing truncates in place so steady state allocates nothing.
//
// Ordering: within a bucket, events keep their scheduling order — the same
// order the map-based implementation produced for a given cycle — so the
// simulated results are bit-identical. Overflow events for a cycle are
// appended after that cycle's in-horizon events; with the default horizon
// no event in the modeled machine comes close (the longest latency chain
// is an L2-miss merge, ~200 cycles), so overflow exists only as a
// correctness backstop for exotic configurations.
type timingWheel[T any] struct {
	buckets  [][]T
	mask     uint64
	overflow []overflowEvt[T]
}

type overflowEvt[T any] struct {
	at uint64
	ev T
}

// wheelHorizon is the default wheel size in cycles. It must exceed the
// maximum schedule-ahead distance of the common machine configurations:
// the longest is a backing-file fill behind a full port-arbitration queue
// or an L2-miss load (~200 cycles); 1024 leaves a wide margin.
const wheelHorizon = 1024

// newTimingWheel builds a wheel with the given horizon rounded up to a
// power of two. Every bucket is pre-sized with bucketCap capacity carved
// from one contiguous backing array, so the wheel warms up in two
// allocations instead of growing each of its buckets from nil; a bucket
// that overflows its pre-size reallocates once and keeps the larger
// capacity (clear truncates, it never frees).
func newTimingWheel[T any](horizon, bucketCap int) *timingWheel[T] {
	size := 1
	for size < horizon {
		size <<= 1
	}
	w := &timingWheel[T]{
		buckets: make([][]T, size),
		mask:    uint64(size - 1),
	}
	backing := make([]T, size*bucketCap)
	for i := range w.buckets {
		w.buckets[i] = backing[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	return w
}

// schedule enqueues ev for cycle at (which must be strictly after now —
// the cycle loop has already drained this cycle's bucket).
func (w *timingWheel[T]) schedule(now, at uint64, ev T) {
	if at <= now {
		panic("pipeline: timing wheel schedule into the past")
	}
	if at-now > w.mask {
		w.overflow = append(w.overflow, overflowEvt[T]{at: at, ev: ev})
		return
	}
	idx := at & w.mask
	w.buckets[idx] = append(w.buckets[idx], ev)
}

// due returns the events scheduled for cycle now, merging in any due
// overflow events. The returned slice is owned by the wheel; callers
// iterate it and then call clear(now).
func (w *timingWheel[T]) due(now uint64) []T {
	b := w.buckets[now&w.mask]
	if len(w.overflow) > 0 {
		live := w.overflow[:0]
		for _, o := range w.overflow {
			if o.at == now {
				b = append(b, o.ev)
			} else {
				live = append(live, o)
			}
		}
		w.overflow = live
		w.buckets[now&w.mask] = b
	}
	return b
}

// clear empties cycle now's bucket, retaining its capacity.
func (w *timingWheel[T]) clear(now uint64) {
	var zero T
	b := w.buckets[now&w.mask]
	for i := range b {
		b[i] = zero // drop references so pooled objects are not pinned
	}
	w.buckets[now&w.mask] = b[:0]
}

// compEntry is one scheduled completion. The seq snapshot guards against
// uop recycling: a pooled uop reused for a newer instruction changes seq,
// so a stale wheel entry (its instruction squashed after scheduling) is
// detected and skipped rather than completing the wrong instruction.
type compEntry struct {
	u   *uop
	seq uint64
}

// sortCompEntries orders a completion bucket by instruction sequence
// number (oldest first), matching the deterministic order the previous
// sort.Slice produced — but with an allocation-free insertion sort, which
// is also faster at the bucket sizes the 8-wide machine produces.
func sortCompEntries(es []compEntry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].seq > e.seq {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}
