package pipeline

// Steady-state cycle-loop benchmarks and the zero-allocation gates the
// performance work is held to. One benchmark op is one simulated cycle on a
// warmed pipeline, so the standard ns/op and allocs/op columns read
// directly as ns/simulated-cycle and allocs/cycle; sim-insts/s is reported
// alongside from the instructions retired during the measured window.

import (
	"testing"
	"time"

	"regcache/internal/core"
	"regcache/internal/obs"
	"regcache/internal/prog"
)

// benchConfigs returns the scheme configurations the cycle-loop benchmarks
// and allocation gates sweep: each register-storage kind exercises a
// different set of hot paths (fill requests only exist behind a cache, the
// two-level file ticks its own copy engine, the oracle consults the
// pre-pass table at rename).
func benchConfigs() map[string]Config {
	cache := DefaultConfig()

	mono := DefaultConfig()
	mono.Scheme = SchemeMonolithic

	two := DefaultConfig()
	two.Scheme = SchemeTwoLevel

	oracle := DefaultConfig()
	oracle.OracleUses = true

	lru := DefaultConfig()
	lru.CacheCfg.Insert = core.InsertAlways
	lru.CacheCfg.Replace = core.ReplaceLRU
	lru.CacheCfg.Index = core.IndexRoundRobin

	return map[string]Config{
		"use-cache": cache,
		"lru-cache": lru,
		"mono":      mono,
		"twolevel":  two,
		"oracle":    oracle,
	}
}

// warmPipeline builds a pipeline on the given benchmark and runs it past
// the transient: pools populated, wheel buckets at their steady capacity,
// caches and predictors warm.
func warmPipeline(tb testing.TB, cfg Config, bench string, warmInsts uint64) *Pipeline {
	tb.Helper()
	prof, ok := prog.ProfileByName(bench)
	if !ok {
		tb.Fatalf("unknown benchmark %q", bench)
	}
	pl := New(cfg, prog.MustGenerate(prof))
	pl.Run(warmInsts)
	return pl
}

// BenchmarkCycleSteadyState measures the warmed cycle loop per scheme.
// ns/op is ns per simulated cycle and allocs/op is allocations per cycle
// (the gate below pins it to zero).
func BenchmarkCycleSteadyState(b *testing.B) {
	for name, cfg := range benchConfigs() {
		b.Run(name, func(b *testing.B) {
			pl := warmPipeline(b, cfg, "gzip", 10_000)
			startRetired := pl.Stats.Retired
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.Cycle()
			}
			b.StopTimer()
			retired := pl.Stats.Retired - startRetired
			b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// BenchmarkStageBreakdown attributes cycle time to the individual pipeline
// stages: it advances the machine exactly as Cycle does (keep the stage
// sequence in sync with Pipeline.Cycle) but brackets each stage with a
// timestamp, reporting per-stage ns/cycle metrics. Stage cost shares guide
// optimization; the absolute per-stage numbers carry the timestamping
// overhead (~tens of ns), which cancels out of comparisons across runs.
func BenchmarkStageBreakdown(b *testing.B) {
	pl := warmPipeline(b, DefaultConfig(), "gzip", 10_000)
	stages := [7]time.Duration{}
	names := [7]string{"retire", "fills", "completions", "read", "dispatch", "issue", "fetch"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.now++
		pl.suppressIssue = false
		t0 := time.Now()
		pl.retire()
		t1 := time.Now()
		pl.processFills()
		t2 := time.Now()
		pl.processCompletions()
		t3 := time.Now()
		pl.readStage()
		t4 := time.Now()
		pl.dispatch()
		t5 := time.Now()
		pl.issue()
		t6 := time.Now()
		pl.fetch()
		t7 := time.Now()
		pl.Stats.Cycles = pl.now
		stages[0] += t1.Sub(t0)
		stages[1] += t2.Sub(t1)
		stages[2] += t3.Sub(t2)
		stages[3] += t4.Sub(t3)
		stages[4] += t5.Sub(t4)
		stages[5] += t6.Sub(t5)
		stages[6] += t7.Sub(t6)
	}
	b.StopTimer()
	for i, n := range names {
		b.ReportMetric(float64(stages[i].Nanoseconds())/float64(b.N), n+"-ns/cycle")
	}
}

// TestCycleLoopZeroAlloc is the allocation gate for the steady-state cycle
// loop: after warmup, batches of cycles must allocate nothing, for every
// scheme. A failure here means an optimization regressed the pooling or
// scratch-reuse discipline (see DESIGN.md, performance engineering).
func TestCycleLoopZeroAlloc(t *testing.T) {
	for name, cfg := range benchConfigs() {
		t.Run(name, func(t *testing.T) {
			pl := warmPipeline(t, cfg, "gzip", 40_000)
			// Average over batches of cycles: a single cycle can legally hit
			// a rare amortized growth path (undo-log compaction keeps
			// capacity, but a deeper-than-ever speculative excursion may
			// still grow a buffer once), while the per-cycle average over
			// thousands of cycles must be exactly zero.
			const batch = 2000
			allocs := testing.AllocsPerRun(5, func() {
				for i := 0; i < batch; i++ {
					pl.Cycle()
				}
			})
			if allocs > 0 {
				t.Errorf("%s: steady-state cycle loop allocates %.2f objects per %d cycles, want 0", name, allocs, batch)
			}
		})
	}
}

// TestCycleLoopZeroAllocSpans extends the allocation gate to the
// tracing-disabled span hooks: RunWindowSpans with a nil *Span brackets
// the cycle loop with StartChild/SetInt/End calls that must all no-op
// without allocating. This is the exact sequence the interval executor
// runs per window when no request-scoped trace is active.
func TestCycleLoopZeroAllocSpans(t *testing.T) {
	pl := warmPipeline(t, DefaultConfig(), "gzip", 40_000)
	var sp *obs.Span // the disabled path
	const batch = 2000
	allocs := testing.AllocsPerRun(5, func() {
		wsp := sp.StartChild("warmup")
		for i := 0; i < batch/2; i++ {
			pl.Cycle()
		}
		if wsp != nil {
			wsp.SetInt("retired", int64(pl.Stats.Retired))
			wsp.End()
		}
		msp := sp.StartChild("measured")
		for i := 0; i < batch/2; i++ {
			pl.Cycle()
		}
		if msp != nil {
			msp.SetInt("retired", int64(pl.Stats.Retired))
			msp.End()
		}
	})
	if allocs > 0 {
		t.Errorf("nil-span window hooks allocate %.2f objects per %d cycles, want 0", allocs, batch)
	}
}
