package pipeline

import (
	"fmt"
	"reflect"
	"strings"

	"regcache/internal/core"
	"regcache/internal/obs"
)

// Stats accumulates pipeline-level counters during simulation.
type Stats struct {
	Cycles  uint64
	Fetched uint64
	Renamed uint64
	Issued  uint64
	Retired uint64

	SrcOperands   uint64 // renamed source operands (real registers)
	BypassReads   uint64 // operands supplied by the bypass network
	BypassS1Reads uint64 // first-stage (ALU feedback) bypasses
	RFReads       uint64 // operands read from the monolithic/two-level file

	Mispredicts    uint64 // recovered branch mispredictions
	PredictedWrong uint64 // fetched branches whose prediction was wrong
	Squashed       uint64

	Replays               uint64 // operand-window replays (load-hit shadows etc.)
	RCMissEvents          uint64 // register cache misses that stalled a reader
	SuppressedIssueCycles uint64 // cycles issue was suppressed by the replay rule
	LoadMisses            uint64

	UnknownPredictions uint64 // renames that used the unknown default

	WrongPathS1Counts   uint64 // squashed consumers that had counted a stage-1 bypass
	WrongPathS1Undoable uint64 // of those, producer had not yet written back at squash

	FreelistStalls    uint64
	DispatchStalls    uint64
	FrontQStalls      uint64
	StoreRetireStalls uint64
	ICacheStallCycles uint64
	FetchLostCycles   uint64

	// PortConflictStalls counts fill-request cycles spent queued for a
	// backing-file read port (port-filtering schemes only; always zero
	// when Config.ReadPorts == 0).
	PortConflictStalls uint64

	RFWrites uint64 // two-level scheme writeback count
}

// Sub returns the counter delta s - prev (the measured window of a run
// that discarded a warm-up prefix). Every field is a uint64 counter, so
// the delta is taken generically: a future field addition is subtracted
// automatically instead of silently leaking warm-up counts into windows.
func (s Stats) Sub(prev Stats) Stats {
	sv := reflect.ValueOf(&s).Elem()
	pv := reflect.ValueOf(prev)
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		f.SetUint(f.Uint() - pv.Field(i).Uint())
	}
	return s
}

// Add returns the counter sum s + o (the interval stitcher's aggregation;
// summed Cycles are per-core cycles, which approximate the serial cycle
// count when warm-up has converged each interval's state).
func (s Stats) Add(o Stats) Stats {
	sv := reflect.ValueOf(&s).Elem()
	ov := reflect.ValueOf(o)
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		f.SetUint(f.Uint() + ov.Field(i).Uint())
	}
	return s
}

// Register publishes the live pipeline counters and an IPC gauge into a
// metrics registry under prefix (e.g. "pipeline"). The snapshot func reads
// s at evaluation time, so /debug/vars shows the simulation advancing.
func (s *Stats) Register(r *obs.Registry, prefix string) {
	r.Func(prefix+".counters", func() any { return *s })
	r.Gauge(prefix+".ipc", func() float64 {
		if s.Cycles == 0 {
			return 0
		}
		return float64(s.Retired) / float64(s.Cycles)
	})
}

// ThreadStats is one hardware context's slice of the machine counters in
// a multithreaded run. Per-context cache reads/hits/misses are counted at
// the pipeline's read stage (the shared cache's own counters are context-
// blind), so reads = hits + misses holds per context and the per-context
// sums reconcile with the machine totals — the invariants the results
// validator pins.
type ThreadStats struct {
	Thread int `json:"thread"`

	Fetched     uint64 `json:"fetched"`
	Retired     uint64 `json:"retired"`
	Squashed    uint64 `json:"squashed"`
	Mispredicts uint64 `json:"mispredicts"`

	CacheReads  uint64 `json:"cache_reads"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	PortConflictStalls uint64 `json:"port_conflict_stalls"`
}

// Sub returns the counter delta s - prev (warm-up window removal).
func (s ThreadStats) Sub(prev ThreadStats) ThreadStats {
	return ThreadStats{
		Thread:             s.Thread,
		Fetched:            s.Fetched - prev.Fetched,
		Retired:            s.Retired - prev.Retired,
		Squashed:           s.Squashed - prev.Squashed,
		Mispredicts:        s.Mispredicts - prev.Mispredicts,
		CacheReads:         s.CacheReads - prev.CacheReads,
		CacheHits:          s.CacheHits - prev.CacheHits,
		CacheMisses:        s.CacheMisses - prev.CacheMisses,
		PortConflictStalls: s.PortConflictStalls - prev.PortConflictStalls,
	}
}

// Result bundles the outputs of one simulation run.
type Result struct {
	Config Config
	Stats  Stats

	IPC float64

	// Register cache metrics (zero value for non-cache schemes).
	Cache core.Stats

	// Bandwidths per cycle (Figure 9).
	CacheReadBW  float64
	CacheWriteBW float64
	RFReadBW     float64
	RFWriteBW    float64

	// Operand sourcing.
	BypassFrac float64 // fraction of operand reads served by bypass

	// Predictor quality.
	UsePredAccuracy float64
	UsePredCoverage float64

	// Use predictor raw counters behind the two ratios above (the interval
	// stitcher re-derives merged accuracy/coverage from their sums).
	UsePredLookups uint64
	UsePredHits    uint64
	UsePredTrains  uint64
	UsePredCorrect uint64

	// Backing file behaviour.
	BackingReads         uint64
	BackingWrites        uint64
	BackingPortConflicts uint64

	// Two-level file behaviour.
	TLMigrations     uint64
	TLRecoveryStalls uint64
	TLRenameStalls   uint64

	// How an interval-parallel run was assembled (nil for serial runs).
	Intervals *IntervalStats `json:",omitempty"`

	// Per-context counter blocks (nil for single-context runs, keeping
	// single-context results byte-identical to the pre-multithreading
	// pipeline).
	Threads []ThreadStats `json:",omitempty"`
}

// windowSnap freezes every counter feeding a Result at the warm-up/measure
// boundary so windowResult can report the measured window's deltas. The
// zero value is the start-of-run snapshot.
type windowSnap struct {
	stats   Stats
	cache   core.Stats
	threads []ThreadStats

	backingReads, backingWrites, backingConflicts  uint64
	monoReads, monoWrites                          uint64
	tlMigrations, tlRecoveryStalls, tlRenameStalls uint64
	upLookups, upHits, upTrains, upCorrect         uint64
}

// snapshotWindow captures the boundary snapshot. For the cache scheme it
// first closes the occupancy integral at the boundary, keeping the warm-up
// window's entries×cycles out of the measured delta; the piecewise
// integration then continues from here unperturbed.
func (pl *Pipeline) snapshotWindow() windowSnap {
	s := windowSnap{stats: pl.Stats}
	if len(pl.threads) > 1 {
		s.threads = make([]ThreadStats, len(pl.threads))
		for i := range pl.threads {
			s.threads[i] = pl.threads[i].stats
		}
	}
	if pl.cache != nil {
		pl.cache.FinishSampling(pl.now)
		s.cache = pl.cache.Stats
		s.backingReads, s.backingWrites, s.backingConflicts = pl.backing.Reads, pl.backing.Writes, pl.backing.PortConflicts
	}
	if pl.mono != nil {
		s.monoReads, s.monoWrites = pl.mono.Reads, pl.mono.Writes
	}
	if pl.tlf != nil {
		s.tlMigrations, s.tlRecoveryStalls, s.tlRenameStalls = pl.tlf.Migrations, pl.tlf.RecoveryStalls, pl.tlf.RenameStalls
	}
	s.upLookups, s.upHits = pl.upred.Lookups, pl.upred.Hits
	s.upTrains, s.upCorrect = pl.upred.TrainEvents, pl.upred.Correct
	return s
}

// result assembles the Result from the pipeline's final state.
func (pl *Pipeline) result() Result { return pl.windowResult(windowSnap{}) }

// windowResult assembles the Result for everything after snap. With a zero
// snapshot every delta is the raw counter and every formula reduces to the
// serial one, so a warm-up-free run is bit-identical to the pre-window
// implementation.
func (pl *Pipeline) windowResult(snap windowSnap) Result {
	st := pl.Stats.Sub(snap.stats)
	r := Result{Config: pl.cfg, Stats: st}
	if len(pl.threads) > 1 {
		r.Threads = make([]ThreadStats, len(pl.threads))
		for i := range pl.threads {
			ts := pl.threads[i].stats
			if snap.threads != nil {
				ts = ts.Sub(snap.threads[i])
			}
			ts.Thread = i
			r.Threads[i] = ts
		}
	}
	if st.Cycles > 0 {
		r.IPC = float64(st.Retired) / float64(st.Cycles)
	}
	cyc := float64(st.Cycles)
	if pl.cache != nil {
		r.Cache = pl.cache.Stats.Delta(snap.cache)
		r.CacheReadBW = float64(r.Cache.Reads) / cyc
		r.CacheWriteBW = float64(r.Cache.Writes) / cyc
		r.BackingReads = pl.backing.Reads - snap.backingReads
		r.BackingWrites = pl.backing.Writes - snap.backingWrites
		r.BackingPortConflicts = pl.backing.PortConflicts - snap.backingConflicts
		r.RFReadBW = float64(r.BackingReads) / cyc
		r.RFWriteBW = float64(r.BackingWrites) / cyc
	}
	if pl.mono != nil {
		r.RFReadBW = float64(pl.mono.Reads-snap.monoReads) / cyc
		r.RFWriteBW = float64(pl.mono.Writes-snap.monoWrites) / cyc
	}
	if pl.tlf != nil {
		r.RFReadBW = float64(st.RFReads) / cyc
		r.RFWriteBW = float64(st.RFWrites) / cyc
		r.TLMigrations = pl.tlf.Migrations - snap.tlMigrations
		r.TLRecoveryStalls = pl.tlf.RecoveryStalls - snap.tlRecoveryStalls
		r.TLRenameStalls = pl.tlf.RenameStalls - snap.tlRenameStalls
	}
	totalOperandReads := st.BypassReads + st.RFReads
	if pl.cache != nil {
		totalOperandReads += r.Cache.Reads
	}
	if totalOperandReads > 0 {
		r.BypassFrac = float64(st.BypassReads) / float64(totalOperandReads)
	}
	r.UsePredLookups = pl.upred.Lookups - snap.upLookups
	r.UsePredHits = pl.upred.Hits - snap.upHits
	r.UsePredTrains = pl.upred.TrainEvents - snap.upTrains
	r.UsePredCorrect = pl.upred.Correct - snap.upCorrect
	if r.UsePredTrains > 0 {
		r.UsePredAccuracy = float64(r.UsePredCorrect) / float64(r.UsePredTrains)
	}
	if r.UsePredLookups > 0 {
		r.UsePredCoverage = float64(r.UsePredHits) / float64(r.UsePredLookups)
	}
	return r
}

// String renders a human-readable run summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme=%s IPC=%.3f (%d insts / %d cycles)\n",
		r.Config.Scheme, r.IPC, r.Stats.Retired, r.Stats.Cycles)
	fmt.Fprintf(&b, "branches: %d mispredicts (%.2f/1k insts); replays %d; squashed %d\n",
		r.Stats.Mispredicts, 1000*float64(r.Stats.Mispredicts)/float64(max64(r.Stats.Retired, 1)),
		r.Stats.Replays, r.Stats.Squashed)
	fmt.Fprintf(&b, "operands: bypass %.1f%% (stage1 %.0f%% of bypasses)\n", 100*r.BypassFrac,
		100*float64(r.Stats.BypassS1Reads)/float64(max64(r.Stats.BypassReads, 1)))
	if r.Config.Scheme == SchemeCache {
		fmt.Fprintf(&b, "cache: miss rate %.4f (filtered %.4f capacity %.4f conflict %.4f); RC miss events %d\n",
			r.Cache.MissRate(), r.Cache.MissRateBy(core.MissFiltered),
			r.Cache.MissRateBy(core.MissCapacity), r.Cache.MissRateBy(core.MissConflict),
			r.Stats.RCMissEvents)
		fmt.Fprintf(&b, "bandwidth/cycle: cache r %.2f w %.2f; file r %.3f w %.2f\n",
			r.CacheReadBW, r.CacheWriteBW, r.RFReadBW, r.RFWriteBW)
		fmt.Fprintf(&b, "use predictor: accuracy %.3f coverage %.3f\n",
			r.UsePredAccuracy, r.UsePredCoverage)
	}
	return b.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
