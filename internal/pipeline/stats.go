package pipeline

import (
	"fmt"
	"strings"

	"regcache/internal/core"
	"regcache/internal/obs"
)

// Stats accumulates pipeline-level counters during simulation.
type Stats struct {
	Cycles  uint64
	Fetched uint64
	Renamed uint64
	Issued  uint64
	Retired uint64

	SrcOperands   uint64 // renamed source operands (real registers)
	BypassReads   uint64 // operands supplied by the bypass network
	BypassS1Reads uint64 // first-stage (ALU feedback) bypasses
	RFReads       uint64 // operands read from the monolithic/two-level file

	Mispredicts    uint64 // recovered branch mispredictions
	PredictedWrong uint64 // fetched branches whose prediction was wrong
	Squashed       uint64

	Replays               uint64 // operand-window replays (load-hit shadows etc.)
	RCMissEvents          uint64 // register cache misses that stalled a reader
	SuppressedIssueCycles uint64 // cycles issue was suppressed by the replay rule
	LoadMisses            uint64

	UnknownPredictions uint64 // renames that used the unknown default

	WrongPathS1Counts   uint64 // squashed consumers that had counted a stage-1 bypass
	WrongPathS1Undoable uint64 // of those, producer had not yet written back at squash

	FreelistStalls    uint64
	DispatchStalls    uint64
	FrontQStalls      uint64
	StoreRetireStalls uint64
	ICacheStallCycles uint64
	FetchLostCycles   uint64

	RFWrites uint64 // two-level scheme writeback count
}

// Register publishes the live pipeline counters and an IPC gauge into a
// metrics registry under prefix (e.g. "pipeline"). The snapshot func reads
// s at evaluation time, so /debug/vars shows the simulation advancing.
func (s *Stats) Register(r *obs.Registry, prefix string) {
	r.Func(prefix+".counters", func() any { return *s })
	r.Gauge(prefix+".ipc", func() float64 {
		if s.Cycles == 0 {
			return 0
		}
		return float64(s.Retired) / float64(s.Cycles)
	})
}

// Result bundles the outputs of one simulation run.
type Result struct {
	Config Config
	Stats  Stats

	IPC float64

	// Register cache metrics (zero value for non-cache schemes).
	Cache core.Stats

	// Bandwidths per cycle (Figure 9).
	CacheReadBW  float64
	CacheWriteBW float64
	RFReadBW     float64
	RFWriteBW    float64

	// Operand sourcing.
	BypassFrac float64 // fraction of operand reads served by bypass

	// Predictor quality.
	UsePredAccuracy float64
	UsePredCoverage float64

	// Backing file behaviour.
	BackingReads         uint64
	BackingWrites        uint64
	BackingPortConflicts uint64

	// Two-level file behaviour.
	TLMigrations     uint64
	TLRecoveryStalls uint64
	TLRenameStalls   uint64
}

// result assembles the Result from the pipeline's final state.
func (pl *Pipeline) result() Result {
	r := Result{Config: pl.cfg, Stats: pl.Stats}
	if pl.Stats.Cycles > 0 {
		r.IPC = float64(pl.Stats.Retired) / float64(pl.Stats.Cycles)
	}
	cyc := float64(pl.Stats.Cycles)
	if pl.cache != nil {
		r.Cache = pl.cache.Stats
		r.CacheReadBW = float64(pl.cache.Stats.Reads) / cyc
		r.CacheWriteBW = float64(pl.cache.Stats.Writes) / cyc
		r.RFReadBW = float64(pl.backing.Reads) / cyc
		r.RFWriteBW = float64(pl.backing.Writes) / cyc
		r.BackingReads = pl.backing.Reads
		r.BackingWrites = pl.backing.Writes
		r.BackingPortConflicts = pl.backing.PortConflicts
	}
	if pl.mono != nil {
		r.RFReadBW = float64(pl.mono.Reads) / cyc
		r.RFWriteBW = float64(pl.mono.Writes) / cyc
	}
	if pl.tlf != nil {
		r.RFReadBW = float64(pl.Stats.RFReads) / cyc
		r.RFWriteBW = float64(pl.Stats.RFWrites) / cyc
		r.TLMigrations = pl.tlf.Migrations
		r.TLRecoveryStalls = pl.tlf.RecoveryStalls
		r.TLRenameStalls = pl.tlf.RenameStalls
	}
	totalOperandReads := pl.Stats.BypassReads + pl.Stats.RFReads
	if pl.cache != nil {
		totalOperandReads += pl.cache.Stats.Reads
	}
	if totalOperandReads > 0 {
		r.BypassFrac = float64(pl.Stats.BypassReads) / float64(totalOperandReads)
	}
	r.UsePredAccuracy = pl.upred.Accuracy()
	r.UsePredCoverage = pl.upred.Coverage()
	return r
}

// String renders a human-readable run summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme=%s IPC=%.3f (%d insts / %d cycles)\n",
		r.Config.Scheme, r.IPC, r.Stats.Retired, r.Stats.Cycles)
	fmt.Fprintf(&b, "branches: %d mispredicts (%.2f/1k insts); replays %d; squashed %d\n",
		r.Stats.Mispredicts, 1000*float64(r.Stats.Mispredicts)/float64(max64(r.Stats.Retired, 1)),
		r.Stats.Replays, r.Stats.Squashed)
	fmt.Fprintf(&b, "operands: bypass %.1f%% (stage1 %.0f%% of bypasses)\n", 100*r.BypassFrac,
		100*float64(r.Stats.BypassS1Reads)/float64(max64(r.Stats.BypassReads, 1)))
	if r.Config.Scheme == SchemeCache {
		fmt.Fprintf(&b, "cache: miss rate %.4f (filtered %.4f capacity %.4f conflict %.4f); RC miss events %d\n",
			r.Cache.MissRate(), r.Cache.MissRateBy(core.MissFiltered),
			r.Cache.MissRateBy(core.MissCapacity), r.Cache.MissRateBy(core.MissConflict),
			r.Stats.RCMissEvents)
		fmt.Fprintf(&b, "bandwidth/cycle: cache r %.2f w %.2f; file r %.3f w %.2f\n",
			r.CacheReadBW, r.CacheWriteBW, r.RFReadBW, r.RFWriteBW)
		fmt.Fprintf(&b, "use predictor: accuracy %.3f coverage %.3f\n",
			r.UsePredAccuracy, r.UsePredCoverage)
	}
	return b.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
