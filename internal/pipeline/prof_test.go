package pipeline

import (
	"testing"

	"regcache/internal/prog"
)

func BenchmarkSimSpeed(b *testing.B) {
	prof, _ := prog.ProfileByName("gzip")
	p := prog.MustGenerate(prof)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := New(DefaultConfig(), p)
		pl.Run(100_000)
	}
}
