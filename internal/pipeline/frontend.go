package pipeline

import (
	"regcache/internal/isa"
	"regcache/internal/obs"
	"regcache/internal/regfile"
	"regcache/internal/usepred"
)

// fetchThread picks the context the front end serves this cycle. A
// single-context machine always serves context 0 (subject to its stall
// state — exactly the pre-multithreading behaviour). With multiple
// contexts the pointer round-robins every InterleaveGranularity fetched
// instructions, and a context that cannot fetch (redirect pending,
// I-cache stall) yields its slot to the next fetchable one immediately
// rather than idling the machine.
func (pl *Pipeline) fetchThread() *threadCtx {
	if len(pl.threads) == 1 {
		tc := &pl.threads[0]
		if tc.fetchLost || pl.now < tc.fetchStallUntil {
			return nil
		}
		return tc
	}
	if pl.threads[pl.fetchTC].fetchRun >= pl.cfg.InterleaveGranularity {
		pl.threads[pl.fetchTC].fetchRun = 0
		pl.fetchTC = (pl.fetchTC + 1) % len(pl.threads)
	}
	for i := 0; i < len(pl.threads); i++ {
		t := (pl.fetchTC + i) % len(pl.threads)
		tc := &pl.threads[t]
		if tc.fetchLost || pl.now < tc.fetchStallUntil {
			continue
		}
		pl.fetchTC = t
		return tc
	}
	return nil
}

// fetch runs the front end for one cycle: up to FetchWidth instructions
// are fetched along the selected context's predicted path, functionally
// executed, branch-predicted, and renamed. Renamed uops wait out the
// front-end depth in frontq before dispatch. Fetching stops at a taken
// branch (one taken branch per fetch block), an I-cache miss, or a
// resource stall.
func (pl *Pipeline) fetch() {
	tc := pl.fetchThread()
	if tc == nil {
		return
	}
	for n := 0; n < pl.cfg.FetchWidth; n++ {
		if len(pl.frontq) >= pl.cfg.FrontQCap {
			pl.Stats.FrontQStalls++
			return
		}
		pc := tc.exec.PC()
		inst := tc.prog.InstAt(pc)
		if inst == nil {
			// Wrong-path fetch into unmapped memory: stall for redirect.
			tc.fetchLost = true
			pl.Stats.FetchLostCycles++
			return
		}
		// I-cache: probe on line crossings.
		if line := pc >> 6; line != tc.lastFetchLine {
			if lat := pl.mem.FetchLatency(threadAddr(tc.id, pc), pl.now); lat > 0 {
				tc.fetchStallUntil = pl.now + uint64(lat)
				pl.Stats.ICacheStallCycles += uint64(lat)
				return
			}
			tc.lastFetchLine = line
		}
		// Resource checks that gate rename.
		if inst.HasDest() {
			if pl.freelist.Len() == 0 {
				pl.Stats.FreelistStalls++
				return
			}
			if pl.tlf != nil && !pl.tlf.CanAllocate() {
				pl.tlf.NoteRenameStall()
				return
			}
		}
		u := pl.renameOne(tc, inst)
		if len(pl.frontq) == cap(pl.frontq) {
			// Dispatch pops by re-slicing the head forward, so the queue
			// marches down the backing array; compact the live entries back
			// to its front rather than letting append reallocate.
			buf := pl.frontqBuf[:len(pl.frontq)]
			copy(buf, pl.frontq)
			pl.frontq = buf
		}
		pl.frontq = append(pl.frontq, u)
		pl.Stats.Fetched++
		tc.stats.Fetched++
		tc.fetchRun++
		if u.predTaken {
			return // one taken branch per fetch block
		}
	}
}

// renameOne functionally executes and renames the instruction at the
// context's current PC, steering its front end down the predicted path.
func (pl *Pipeline) renameOne(tc *threadCtx, inst *isa.Inst) *uop {
	pl.seq++
	u := pl.allocUop()
	*u = uop{
		seq:        pl.seq,
		tid:        tc.id,
		inst:       inst,
		destPreg:   -1,
		oldPreg:    -1,
		state:      uInFrontEnd,
		readyAt:    pl.now + uint64(pl.cfg.FrontEndDepth),
		bhrBefore:  tc.yags.History(),
		pathBefore: tc.ind.Path(),
	}
	// Functional execution (execute-at-fetch, undo-logged). The recovery
	// token is captured between the architectural step and any predicted-
	// path redirect so that rolling back to it restores the correct-path
	// PC while keeping the instruction's own effects.
	u.step = tc.exec.StepInst(inst)
	u.execTokAfter = tc.exec.Checkpoint()

	// Branch prediction decides the fetch path.
	pl.predictBranch(tc, u)

	// Rename sources: capture current mappings and in-flight producers.
	si := 0
	for _, r := range [...]isa.Reg{inst.Src1, inst.Src2} {
		s := srcOp{reg: r}
		if s.isReal() {
			m := tc.maps.Lookup(r)
			s.preg = m.PReg
			s.set = m.Set
			if p := pl.producers[m.PReg]; p != nil {
				s.producer = p
				s.prodSeq = p.seq
			}
			pl.Stats.SrcOperands++
			if pl.tlf != nil {
				pl.tlf.AddConsumer(m.PReg)
				s.counted = true
			}
		}
		u.srcs[si] = s
		si++
	}

	// Rename destination: allocate a physical register and a cache set.
	if inst.HasDest() {
		p, ok := pl.freelist.Alloc()
		if !ok {
			panic("pipeline: freelist exhausted after check")
		}
		u.destPreg = p
		pl.producers[p] = u
		// The predictor table is shared across contexts; per-context PC
		// signatures keep distinct threads' histories from aliasing while
		// context 0 trains on raw PCs (T=1 bit-identity).
		predPC := usepred.ThreadPC(inst.PC, int(tc.id))
		pl.prodPC[p] = predPC
		pl.prodSig[p] = u.bhrBefore
		pl.archReads[p] = 0

		// Degree-of-use prediction (or the oracle's perfect knowledge).
		var rawUses int
		if tc.oracle != nil {
			idx := tc.defCounter
			tc.defCounter++
			if n, ok := tc.oracle.lookup(idx); ok {
				rawUses = n
			} else {
				rawUses = -1
			}
		} else {
			pred, ok := pl.upred.Predict(predPC, u.bhrBefore)
			rawUses = int(pred)
			if !ok {
				rawUses = -1 // unknown
			}
		}
		set := 0
		if pl.cache != nil {
			if rawUses < 0 {
				rawUses = pl.cache.UnknownDefault()
				pl.Stats.UnknownPredictions++
			}
			u.predUses = pl.cache.ClampUses(rawUses)
			u.pinned = pl.cache.Pins(u.predUses)
			set = pl.cache.Allocate(p, u.predUses)
		}
		u.destSet = int16(set)
		old := tc.maps.Redefine(inst.Dest, regfile.Mapping{PReg: p, Set: int16(set)})
		u.oldPreg = old.PReg
		if pl.tlf != nil {
			pl.tlf.Allocate(p)
			if old.PReg >= 0 {
				pl.tlf.Remapped(old.PReg)
			}
		}
		if pl.life != nil {
			pl.life.Alloc(p, pl.now)
		}
		pl.Stats.Renamed++
	}

	u.mapTokAfter = tc.maps.Checkpoint()
	u.defIdx = tc.defCounter
	if pl.tracer != nil {
		pl.tracePipe(u, obs.StageRename, pl.now)
	}
	return u
}

// predictBranch applies the context's front-end predictors and redirects
// its functional executor down the predicted path when it disagrees with
// the just-computed actual outcome.
func (pl *Pipeline) predictBranch(tc *threadCtx, u *uop) {
	inst := u.inst
	actualNext := u.step.NextPC
	switch inst.Op {
	case isa.OpBranch:
		pred := tc.yags.Predict(inst.PC)
		tc.yags.UpdateHistory(pred)
		u.predTaken = pred
		predNext := inst.FallThrough()
		if pred {
			predNext = inst.Target
			tc.ind.UpdatePath(inst.Target)
		}
		if pred != u.step.Taken {
			u.mispredicted = true
			tc.exec.ForcePC(predNext)
		}
	case isa.OpJump:
		u.predTaken = true // perfect BTB: direct targets never mispredict
		tc.ind.UpdatePath(inst.Target)
	case isa.OpCall:
		u.predTaken = true
		tc.ras.Push(inst.FallThrough())
		tc.ind.UpdatePath(inst.Target)
	case isa.OpRet:
		u.predTaken = true
		predNext, ok := tc.ras.Pop()
		if !ok {
			predNext = inst.FallThrough()
		}
		tc.ind.UpdatePath(predNext)
		if predNext != actualNext {
			u.mispredicted = true
			tc.exec.ForcePC(predNext)
		}
	case isa.OpIndirect:
		u.predTaken = true
		predNext, ok := tc.ind.Predict(inst.PC)
		if !ok {
			predNext = inst.FallThrough()
		}
		tc.ind.UpdatePath(predNext)
		if predNext != actualNext {
			u.mispredicted = true
			tc.exec.ForcePC(predNext)
		}
	default:
		return
	}
	u.rasTop, u.rasDepth = tc.ras.Mark()
	if u.mispredicted {
		pl.Stats.PredictedWrong++
	}
}

// dispatch moves front-end uops that have waited out the pipeline depth
// into the issue window, reorder buffer, and load/store queues. The ROB is
// partitioned per context; a full partition blocks the (shared, in-order)
// front-end queue head just like a full load queue does.
func (pl *Pipeline) dispatch() {
	n := 0
	for len(pl.frontq) > 0 && n < pl.cfg.FetchWidth {
		u := pl.frontq[0]
		if u.readyAt > pl.now {
			break
		}
		tc := &pl.threads[u.tid]
		if tc.robCount >= len(tc.rob) || pl.iqCount >= pl.cfg.IQSize {
			pl.Stats.DispatchStalls++
			return
		}
		switch u.inst.Op {
		case isa.OpLoad:
			if pl.lqCount >= pl.cfg.LQSize {
				pl.Stats.DispatchStalls++
				return
			}
			pl.lqCount++
		case isa.OpStore:
			if pl.sqCount >= pl.cfg.SQSize {
				pl.Stats.DispatchStalls++
				return
			}
			pl.sqCount++
			pl.inflightStores = append(pl.inflightStores, u)
		}
		pl.frontq = pl.frontq[1:]
		if len(pl.frontq) == 0 {
			pl.frontq = pl.frontqBuf[:0] // rewind to the backing array head
		}
		u.state = uInIQ
		u.robIdx = (tc.robHead + tc.robCount) % len(tc.rob)
		tc.rob[u.robIdx] = u
		tc.robCount++
		pl.iq = append(pl.iq, uopRef{u: u, seq: u.seq})
		pl.iqCount++
		if pl.tracer != nil {
			pl.tracePipe(u, obs.StageDispatch, pl.now)
		}
		n++
	}
}
