package pipeline

import (
	"regcache/internal/isa"
	"regcache/internal/obs"
	"regcache/internal/regfile"
)

// fetch runs the front end for one cycle: up to FetchWidth instructions
// are fetched along the predicted path, functionally executed, branch-
// predicted, and renamed. Renamed uops wait out the front-end depth in
// frontq before dispatch. Fetching stops at a taken branch (one taken
// branch per fetch block), an I-cache miss, or a resource stall.
func (pl *Pipeline) fetch() {
	if pl.fetchLost || pl.now < pl.fetchStallUntil {
		return
	}
	for n := 0; n < pl.cfg.FetchWidth; n++ {
		if len(pl.frontq) >= pl.cfg.FrontQCap {
			pl.Stats.FrontQStalls++
			return
		}
		pc := pl.exec.PC()
		inst := pl.prog.InstAt(pc)
		if inst == nil {
			// Wrong-path fetch into unmapped memory: stall for redirect.
			pl.fetchLost = true
			pl.Stats.FetchLostCycles++
			return
		}
		// I-cache: probe on line crossings.
		if line := pc >> 6; line != pl.lastFetchLine {
			if lat := pl.mem.FetchLatency(pc, pl.now); lat > 0 {
				pl.fetchStallUntil = pl.now + uint64(lat)
				pl.Stats.ICacheStallCycles += uint64(lat)
				return
			}
			pl.lastFetchLine = line
		}
		// Resource checks that gate rename.
		if inst.HasDest() {
			if pl.freelist.Len() == 0 {
				pl.Stats.FreelistStalls++
				return
			}
			if pl.tlf != nil && !pl.tlf.CanAllocate() {
				pl.tlf.NoteRenameStall()
				return
			}
		}
		u := pl.renameOne(inst)
		if len(pl.frontq) == cap(pl.frontq) {
			// Dispatch pops by re-slicing the head forward, so the queue
			// marches down the backing array; compact the live entries back
			// to its front rather than letting append reallocate.
			buf := pl.frontqBuf[:len(pl.frontq)]
			copy(buf, pl.frontq)
			pl.frontq = buf
		}
		pl.frontq = append(pl.frontq, u)
		pl.Stats.Fetched++
		if u.predTaken {
			return // one taken branch per fetch block
		}
	}
}

// renameOne functionally executes and renames the instruction at the
// current PC, steering the front end down the predicted path.
func (pl *Pipeline) renameOne(inst *isa.Inst) *uop {
	pl.seq++
	u := pl.allocUop()
	*u = uop{
		seq:        pl.seq,
		inst:       inst,
		destPreg:   -1,
		oldPreg:    -1,
		state:      uInFrontEnd,
		readyAt:    pl.now + uint64(pl.cfg.FrontEndDepth),
		bhrBefore:  pl.yags.History(),
		pathBefore: pl.ind.Path(),
	}
	// Functional execution (execute-at-fetch, undo-logged). The recovery
	// token is captured between the architectural step and any predicted-
	// path redirect so that rolling back to it restores the correct-path
	// PC while keeping the instruction's own effects.
	u.step = pl.exec.StepInst(inst)
	u.execTokAfter = pl.exec.Checkpoint()

	// Branch prediction decides the fetch path.
	pl.predictBranch(u)

	// Rename sources: capture current mappings and in-flight producers.
	si := 0
	for _, r := range [...]isa.Reg{inst.Src1, inst.Src2} {
		s := srcOp{reg: r}
		if s.isReal() {
			m := pl.maps.Lookup(r)
			s.preg = m.PReg
			s.set = m.Set
			if p := pl.producers[m.PReg]; p != nil {
				s.producer = p
				s.prodSeq = p.seq
			}
			pl.Stats.SrcOperands++
			if pl.tlf != nil {
				pl.tlf.AddConsumer(m.PReg)
				s.counted = true
			}
		}
		u.srcs[si] = s
		si++
	}

	// Rename destination: allocate a physical register and a cache set.
	if inst.HasDest() {
		p, ok := pl.freelist.Alloc()
		if !ok {
			panic("pipeline: freelist exhausted after check")
		}
		u.destPreg = p
		pl.producers[p] = u
		pl.prodPC[p] = inst.PC
		pl.prodSig[p] = u.bhrBefore
		pl.archReads[p] = 0

		// Degree-of-use prediction (or the oracle's perfect knowledge).
		var rawUses int
		if pl.oracle != nil {
			idx := pl.defCounter
			pl.defCounter++
			if n, ok := pl.oracle.lookup(idx); ok {
				rawUses = n
			} else {
				rawUses = -1
			}
		} else {
			pred, ok := pl.upred.Predict(inst.PC, u.bhrBefore)
			rawUses = int(pred)
			if !ok {
				rawUses = -1 // unknown
			}
		}
		set := 0
		if pl.cache != nil {
			if rawUses < 0 {
				rawUses = pl.cache.UnknownDefault()
				pl.Stats.UnknownPredictions++
			}
			u.predUses = pl.cache.ClampUses(rawUses)
			u.pinned = pl.cache.Pins(u.predUses)
			set = pl.cache.Allocate(p, u.predUses)
		}
		u.destSet = int16(set)
		old := pl.maps.Redefine(inst.Dest, regfile.Mapping{PReg: p, Set: int16(set)})
		u.oldPreg = old.PReg
		if pl.tlf != nil {
			pl.tlf.Allocate(p)
			if old.PReg >= 0 {
				pl.tlf.Remapped(old.PReg)
			}
		}
		if pl.life != nil {
			pl.life.Alloc(p, pl.now)
		}
		pl.Stats.Renamed++
	}

	u.mapTokAfter = pl.maps.Checkpoint()
	u.defIdx = pl.defCounter
	if pl.tracer != nil {
		pl.tracePipe(u, obs.StageRename, pl.now)
	}
	return u
}

// predictBranch applies the front-end predictors and redirects the
// functional executor down the predicted path when it disagrees with the
// just-computed actual outcome.
func (pl *Pipeline) predictBranch(u *uop) {
	inst := u.inst
	actualNext := u.step.NextPC
	switch inst.Op {
	case isa.OpBranch:
		pred := pl.yags.Predict(inst.PC)
		pl.yags.UpdateHistory(pred)
		u.predTaken = pred
		predNext := inst.FallThrough()
		if pred {
			predNext = inst.Target
			pl.ind.UpdatePath(inst.Target)
		}
		if pred != u.step.Taken {
			u.mispredicted = true
			pl.exec.ForcePC(predNext)
		}
	case isa.OpJump:
		u.predTaken = true // perfect BTB: direct targets never mispredict
		pl.ind.UpdatePath(inst.Target)
	case isa.OpCall:
		u.predTaken = true
		pl.ras.Push(inst.FallThrough())
		pl.ind.UpdatePath(inst.Target)
	case isa.OpRet:
		u.predTaken = true
		predNext, ok := pl.ras.Pop()
		if !ok {
			predNext = inst.FallThrough()
		}
		pl.ind.UpdatePath(predNext)
		if predNext != actualNext {
			u.mispredicted = true
			pl.exec.ForcePC(predNext)
		}
	case isa.OpIndirect:
		u.predTaken = true
		predNext, ok := pl.ind.Predict(inst.PC)
		if !ok {
			predNext = inst.FallThrough()
		}
		pl.ind.UpdatePath(predNext)
		if predNext != actualNext {
			u.mispredicted = true
			pl.exec.ForcePC(predNext)
		}
	default:
		return
	}
	u.rasTop, u.rasDepth = pl.ras.Mark()
	if u.mispredicted {
		pl.Stats.PredictedWrong++
	}
}

// dispatch moves front-end uops that have waited out the pipeline depth
// into the issue window, reorder buffer, and load/store queues.
func (pl *Pipeline) dispatch() {
	n := 0
	for len(pl.frontq) > 0 && n < pl.cfg.FetchWidth {
		u := pl.frontq[0]
		if u.readyAt > pl.now {
			break
		}
		if pl.robCount >= pl.cfg.ROBSize || pl.iqCount >= pl.cfg.IQSize {
			pl.Stats.DispatchStalls++
			return
		}
		switch u.inst.Op {
		case isa.OpLoad:
			if pl.lqCount >= pl.cfg.LQSize {
				pl.Stats.DispatchStalls++
				return
			}
			pl.lqCount++
		case isa.OpStore:
			if pl.sqCount >= pl.cfg.SQSize {
				pl.Stats.DispatchStalls++
				return
			}
			pl.sqCount++
			pl.inflightStores = append(pl.inflightStores, u)
		}
		pl.frontq = pl.frontq[1:]
		if len(pl.frontq) == 0 {
			pl.frontq = pl.frontqBuf[:0] // rewind to the backing array head
		}
		u.state = uInIQ
		u.robIdx = (pl.robHead + pl.robCount) % pl.cfg.ROBSize
		pl.rob[u.robIdx] = u
		pl.robCount++
		pl.iq = append(pl.iq, uopRef{u: u, seq: u.seq})
		pl.iqCount++
		if pl.tracer != nil {
			pl.tracePipe(u, obs.StageDispatch, pl.now)
		}
		n++
	}
}
