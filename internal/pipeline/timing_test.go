package pipeline

import (
	"testing"

	"regcache/internal/core"
	"regcache/internal/isa"
	"regcache/internal/prog"
)

// buildChain assembles a pure serial dependence chain of adds inside an
// infinite loop: every instruction depends on the previous one, so IPC
// directly exposes per-link latency.
func buildChain(t *testing.T, links int) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("chain", 1)
	b.Label("L")
	for i := 0; i < links; i++ {
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: isa.IntR(1), Src1: isa.IntR(1), Imm: 1})
	}
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, "L")
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestChainBackToBackIssue: a serial chain of 1-cycle ALU ops must sustain
// ~1 IPC under every scheme — dependent instructions issue back-to-back
// through the first bypass stage regardless of register file latency.
func TestChainBackToBackIssue(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Config
	}{
		{"cache", func() Config { return DefaultConfig() }},
		{"mono-3cyc", func() Config {
			c := DefaultConfig()
			c.Scheme = SchemeMonolithic
			c.RFLatency = 3
			return c
		}},
		{"twolevel", func() Config {
			c := DefaultConfig()
			c.Scheme = SchemeTwoLevel
			return c
		}},
	} {
		pl := New(tc.mk(), buildChain(t, 64))
		r := pl.Run(30_000)
		// The unconditional jump adds ~1/65 of non-chain work.
		if r.IPC < 0.95 || r.IPC > 1.1 {
			t.Errorf("%s: serial chain IPC = %.3f, want ~1.0", tc.name, r.IPC)
		}
	}
}

// buildMispredictLoop: a branch whose outcome flips by iteration parity —
// strictly alternating, which YAGS learns perfectly — versus an LCG-driven
// coin flip, which it cannot. Used to measure the misprediction loop.
func buildCoin(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("coin", 7)
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: isa.IntR(1), Imm: 99991})
	b.Label("L")
	b.Emit(isa.Inst{Op: isa.OpIMul, Fn: isa.FnMul, Dest: isa.IntR(1), Src1: isa.IntR(1), Imm: 6364136223846793005})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: isa.IntR(1), Src1: isa.IntR(1), Imm: 1442695040888963407})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnShr, Dest: isa.IntR(2), Src1: isa.IntR(1), Imm: 40})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAnd, Dest: isa.IntR(3), Src1: isa.IntR(2), Imm: 1})
	b.EmitBranch(isa.Inst{Op: isa.OpBranch, Fn: isa.FnCmpEQ, Src1: isa.IntR(3)}, "S")
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: isa.IntR(4), Src1: isa.IntR(4), Imm: 1})
	b.Label("S")
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, "L")
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMispredictLoopLength: with a 50/50 branch, the cycles consumed per
// misprediction should be at least the 15-cycle minimum loop of Table 1.
func TestMispredictLoopLength(t *testing.T) {
	pl := New(DefaultConfig(), buildCoin(t))
	r := pl.Run(60_000)
	if r.Stats.Mispredicts < 1000 {
		t.Fatalf("coin flip mispredicted only %d times", r.Stats.Mispredicts)
	}
	// Ideal cycles without mispredicts: the serial LCG chain costs
	// ~4+1 cycles per iteration of ~7 instructions. Measure the extra
	// cycles per mispredict instead: total cycles minus the dataflow bound,
	// divided by mispredicts, must be >= ~10 (resolution overlaps fetch).
	iterations := r.Stats.Retired / 7
	dataflowBound := iterations * 5
	extra := float64(r.Stats.Cycles-dataflowBound) / float64(r.Stats.Mispredicts)
	if extra < 10 {
		t.Errorf("misprediction cost %.1f cycles, expected >= 10 (15-cycle loop overlapped with dataflow)", extra)
	}
	t.Logf("misprediction cost ~%.1f cycles over dataflow bound; %d mispredicts", extra, r.Stats.Mispredicts)
}

// TestRCMissReplayAndFill: force misses and verify the miss path invariants
// (fills equal backing reads; issue suppression cycles recorded; misses
// eventually satisfied).
func TestRCMissReplayAndFill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheCfg = core.Config{Entries: 4, Ways: 1, Insert: core.InsertAlways,
		Replace: core.ReplaceLRU, Index: core.IndexPReg}
	prof, _ := prog.ProfileByName("gzip")
	pl := New(cfg, prog.MustGenerate(prof))
	r := pl.Run(30_000)
	if r.Stats.RCMissEvents == 0 {
		t.Fatal("4-entry cache produced no miss events")
	}
	if r.Stats.SuppressedIssueCycles == 0 {
		t.Error("miss events must suppress issue cycles (replay rule)")
	}
	if r.BackingReads == 0 {
		t.Error("misses must read the backing file")
	}
	if r.Cache.Fills == 0 {
		t.Error("misses must fill the cache")
	}
	if r.Cache.Fills > r.BackingReads {
		t.Errorf("fills (%d) exceed backing reads (%d)", r.Cache.Fills, r.BackingReads)
	}
	if pl.Backing().PortConflicts == 0 {
		t.Error("a tiny cache should have produced backing port conflicts")
	}
}

// TestLoadMissReplays: with a large footprint workload, load-hit
// speculation must cause replays (dependents issued in the shadow of a
// missing load).
func TestLoadMissReplays(t *testing.T) {
	prof, _ := prog.ProfileByName("mcf")
	pl := New(DefaultConfig(), prog.MustGenerate(prof))
	r := pl.Run(60_000)
	if r.Stats.LoadMisses == 0 {
		t.Fatal("mcf must miss the data cache")
	}
	if r.Stats.Replays == 0 {
		t.Error("load misses must replay speculatively woken dependents")
	}
}

// TestWrongPathStatistics: recovery must restore architectural counts —
// retired instructions must equal the functional stream length regardless
// of squash volume.
func TestWrongPathStatistics(t *testing.T) {
	prof, _ := prog.ProfileByName("twolf")
	p := prog.MustGenerate(prof)
	pl := New(DefaultConfig(), p)
	const n = 50_000
	// Reference functional stream.
	e := prog.NewExec(p)
	refPCs := make([]uint64, n)
	for i := 0; i < n; i++ {
		refPCs[i] = e.PC()
		e.Step()
	}
	idx := 0
	mismatch := false
	pl.RetireHook = func(u *Uop) {
		if idx < n && u.inst.PC != refPCs[idx] {
			mismatch = true
		}
		idx++
	}
	r := pl.Run(n)
	if mismatch {
		t.Fatal("retired stream diverged from the functional reference")
	}
	if r.Stats.Mispredicts == 0 || r.Stats.Squashed == 0 {
		t.Fatal("twolf must mispredict and squash")
	}
}

// TestFreelistConservation: after any run, every physical register is
// either free or referenced by the map table / in-flight state; a leak
// would eventually deadlock rename.
func TestFreelistConservation(t *testing.T) {
	prof, _ := prog.ProfileByName("perlbmk")
	pl := New(DefaultConfig(), prog.MustGenerate(prof))
	pl.Run(50_000)
	// ROB empty would be ideal but the machine stops mid-flight; bound the
	// leak instead: free + in-flight (<= ROB) + architected (64) must
	// cover the whole space.
	free := pl.freelist.Len()
	if free+pl.robTotal()+len(pl.frontq)+64 < pl.cfg.NumPRegs {
		t.Errorf("possible preg leak: free=%d rob=%d frontq=%d of %d",
			free, pl.robTotal(), len(pl.frontq), pl.cfg.NumPRegs)
	}
}

// TestBypassWindows: operandPlan must classify availability windows per
// the two-stage bypass design.
func TestBypassWindows(t *testing.T) {
	cfg := DefaultConfig() // cache scheme: readLat 1
	pl := New(cfg, buildChain(t, 4))
	producer := &uop{state: uExecuting, resultAt: 100, specResult: 100}
	src := &srcOp{reg: isa.IntR(1), producer: producer}
	cases := []struct {
		issue uint64
		want  operandSource
	}{
		{98, srcBypass1},  // exec start 100 = tP... issue+2=100 < tP+1: unavailable
		{99, srcBypass1},  // exec start 101 = tP+1
		{100, srcBypass2}, // exec start 102 = tP+2
		{101, srcStorage}, // cache readable
		{150, srcStorage}, // long after
	}
	// Correct the first case: issue 98 -> exec start 100 = tP: no source.
	cases[0] = struct {
		issue uint64
		want  operandSource
	}{98, srcUnavailable}
	for _, c := range cases {
		if got := pl.operandPlan(src, c.issue, ^uint64(0)); got != c.want {
			t.Errorf("issue %d: plan = %v, want %v", c.issue, got, c.want)
		}
	}
	// Monolithic: hole between bypass and storage windows.
	cfgM := DefaultConfig()
	cfgM.Scheme = SchemeMonolithic
	cfgM.RFLatency = 3
	plM := New(cfgM, buildChain(t, 4))
	casesM := []struct {
		issue uint64
		want  operandSource
	}{
		{96, srcBypass1},     // exec start 100 = tP... issue+4: 96+4=100: unavailable
		{97, srcBypass1},     // 101 = tP+1
		{98, srcBypass2},     // 102 = tP+2
		{99, srcUnavailable}, // the hole
		{102, srcUnavailable},
		{103, srcStorage}, // issue >= tP + L = 103
	}
	casesM[0] = struct {
		issue uint64
		want  operandSource
	}{96, srcUnavailable}
	for _, c := range casesM {
		if got := plM.operandPlan(src, c.issue, ^uint64(0)); got != c.want {
			t.Errorf("mono issue %d: plan = %v, want %v", c.issue, got, c.want)
		}
	}
}
