package pipeline

import (
	"regcache/internal/isa"
	"regcache/internal/prog"
)

// Oracle degree-of-use: the paper motivates use-based management with
// "given perfect a priori knowledge of the upcoming uses of values, only
// live values need be maintained in the cache" (Section 3). The oracle
// mode supplies that perfect knowledge: a functional pre-pass records the
// true architectural read count of every correct-path definition, and
// rename consumes the table instead of the history-based predictor.
//
// Speculative paths are handled exactly: each uop records the def index at
// its rename, and misprediction recovery rewinds the index, so correct-path
// renames always line up with the pre-pass (wrong-path renames read
// arbitrary table slots, which mirrors a real oracle's ignorance of wrong
// paths and is harmless — those values are squashed).
//
// An OracleTable depends only on (program, instruction budget), never on
// the machine configuration, so one table serves every oracle scheme run
// against the same workload. The sim layer builds tables once per process
// through its workload cache (BuildOracle + SetOracle); a pipeline whose
// table was not injected builds its own on first Run.
type OracleTable struct {
	uses []uint8 // per correct-path definition, saturated at 255
}

// BuildOracle functionally executes maxInsts (plus slack for partial
// in-flight work) instructions and records each definition's true use
// count in definition order. The table is immutable after construction
// and safe to share across concurrently running pipelines.
func BuildOracle(p *prog.Program, maxInsts uint64) *OracleTable {
	total := maxInsts + maxInsts/4 + 4096
	e := prog.NewExec(p)
	t := &OracleTable{uses: make([]uint8, 0, total)}
	// defOf[r] is the table index of architectural register r's current
	// definition; -1 when the initial value is current.
	var defOf [isa.NumArchRegs]int
	for i := range defOf {
		defOf[i] = -1
	}
	for i := uint64(0); i < total; i++ {
		in := p.InstAt(e.PC())
		if in == nil {
			break
		}
		e.StepInst(in)
		for _, r := range [...]isa.Reg{in.Src1, in.Src2} {
			if r != isa.RegNone && !r.IsZeroReg() {
				if d := defOf[r.Index()]; d >= 0 && t.uses[d] < 255 {
					t.uses[d]++
				}
			}
		}
		if in.HasDest() {
			defOf[in.Dest.Index()] = len(t.uses)
			t.uses = append(t.uses, 0)
		}
	}
	return t
}

// lookup returns the true degree of use for the defIdx-th definition, or
// false when the index is beyond the pre-pass horizon.
func (t *OracleTable) lookup(defIdx uint64) (int, bool) {
	if defIdx >= uint64(len(t.uses)) {
		return 0, false
	}
	return int(t.uses[defIdx]), true
}
