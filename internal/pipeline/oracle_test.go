package pipeline

import (
	"testing"

	"regcache/internal/prog"
)

// TestOracleUses: perfect use knowledge must not be worse than the
// history-based predictor — fewer misses on the same cache.
func TestOracleUses(t *testing.T) {
	prof, _ := prog.ProfileByName("twolf")
	p := prog.MustGenerate(prof)
	cfg := DefaultConfig()
	pred := New(cfg, p).Run(60_000)
	cfg.OracleUses = true
	orac := New(cfg, p).Run(60_000)
	t.Logf("predicted: miss %.4f IPC %.3f; oracle: miss %.4f IPC %.3f",
		pred.Cache.MissRate(), pred.IPC, orac.Cache.MissRate(), orac.IPC)
	if orac.Cache.MissRate() > pred.Cache.MissRate()*1.1 {
		t.Errorf("oracle misses (%.4f) materially exceed predicted (%.4f)",
			orac.Cache.MissRate(), pred.Cache.MissRate())
	}
	// Determinism under the oracle too.
	orac2 := New(cfg, p).Run(60_000)
	if orac2.Stats.Cycles != orac.Stats.Cycles {
		t.Error("oracle mode not deterministic")
	}
}
