package pipeline

// Intra-run interval parallelism. A serial simulation is a chain of
// dependent cycles, but the *architectural* trajectory of the program is
// known in advance by the same functional pre-pass that powers the oracle
// degree-of-use mode: values live only in the functional executor (the
// register cache, backing file and two-level models are timing-only), so
// the complete state a pipeline needs to start mid-program is the
// executor's registers, store overlay and PC, plus the correct-path
// definition count that aligns oracle-table lookups.
//
// The interval runner cuts the instruction budget into K contiguous
// intervals, captures a checkpoint at (or a warm-up window before) each
// boundary in one functional pass, and simulates every interval on its own
// goroutine from its checkpoint. Architectural state is carried exactly.
// Microarchitectural state is split by how long its history is: the
// memory hierarchy's tag arrays (the slow-warming state — a 1 MB L2
// streams in over ~100k instructions) are functionally warmed during the
// capture pass and restored from the checkpoint, while the fast-warming
// remainder (branch and use predictors, register cache contents, fill
// timing) re-converges inside a warm-up window whose counters are
// discarded. The stitcher then sums the measured windows and re-derives
// the ratio metrics, reporting per-interval skew and warm-up overhead so
// the bounded error stays visible. One interval with no warm-up and no
// warm image is exactly the serial run — the K=1 bit-identity guarantee
// the tests pin.

import (
	"fmt"
	"sync"
	"time"

	"regcache/internal/isa"
	"regcache/internal/memsys"
	"regcache/internal/obs"
	"regcache/internal/prog"
)

// Checkpoint is one architectural boundary of the functional pre-pass: the
// executor state after Inst instructions, the number of correct-path
// definitions before it (the oracle table index base), and a functional
// warm image of the memory hierarchy's tag state at that point. Mem is
// nil for the program-entry checkpoint (a cold machine is exact there) —
// and for checkpoints captured without warming.
type Checkpoint struct {
	Inst    uint64 // instructions executed before this point
	DefBase uint64 // register-writing instructions among them
	State   prog.ExecState
	Mem     *memsys.WarmState
}

// IntervalStarts splits total instructions into k contiguous intervals and
// returns their start offsets (the first is always 0). k is clamped to
// [1, total] so every interval measures at least one instruction.
func IntervalStarts(total uint64, k int) []uint64 {
	if k < 1 {
		k = 1
	}
	if total > 0 && uint64(k) > total {
		k = int(total)
	}
	starts := make([]uint64, k)
	base, rem := total/uint64(k), total%uint64(k)
	var at uint64
	for i := range starts {
		starts[i] = at
		at += base
		if uint64(i) < rem {
			at++
		}
	}
	return starts
}

// CapturePoints returns the checkpoint instruction counts for the given
// interval starts: warmup instructions before each start, clamped at the
// program entry (interval 0 therefore has no warm-up window).
func CapturePoints(starts []uint64, warmup uint64) []uint64 {
	pts := make([]uint64, len(starts))
	for i, s := range starts {
		w := warmup
		if w > s {
			w = s
		}
		pts[i] = s - w
	}
	return pts
}

// CaptureCheckpoints functionally executes the program once and snapshots
// the architectural state at each requested instruction count, warming a
// memory-hierarchy image (configured by memCfg) with the correct-path
// fetch and data stream along the way. points must be non-decreasing. If
// the program ends before a point, the checkpoint rests at the final
// state (built-in benchmarks never terminate inside any realistic budget,
// matching the serial Run's assumption). The result is immutable and safe
// to share across concurrently constructed pipelines.
func CaptureCheckpoints(p *prog.Program, points []uint64, memCfg memsys.Config) []Checkpoint {
	e := prog.NewExec(p)
	warm := memsys.New(memCfg)
	out := make([]Checkpoint, 0, len(points))
	var n, defs uint64
	for _, pt := range points {
		for n < pt {
			in := p.InstAt(e.PC())
			if in == nil {
				break
			}
			pc := e.PC()
			s := e.StepInst(in)
			warm.WarmFetch(pc)
			switch in.Op {
			case isa.OpLoad:
				warm.WarmLoad(s.MemAddr)
			case isa.OpStore:
				warm.WarmStore(s.MemAddr)
			}
			if in.HasDest() {
				defs++
			}
			n++
		}
		// The pre-pass never speculates: commit the undo log so the
		// snapshot sees a clean architectural point (and the log stays
		// bounded across long captures).
		e.Commit(e.Checkpoint())
		ck := Checkpoint{Inst: n, DefBase: defs, State: e.State()}
		if n > 0 {
			// The entry checkpoint stays cold: starting cold there is
			// exact (it is what the serial machine does), and keeping Mem
			// nil preserves the K=1 bit-identity structurally.
			ck.Mem = warm.Snapshot()
		}
		out = append(out, ck)
	}
	return out
}

// NewAt builds a pipeline positioned at a checkpoint: the functional
// executor resumes from the captured architectural state, the oracle
// definition counter from the captured base, and the memory hierarchy's
// tag arrays from the functional warm image (when present). Everything
// else (predictors, register models, in-flight fill timing) starts cold,
// exactly as New leaves it — that is the state a warm-up window
// re-converges. NewAt with the entry checkpoint (Inst 0) is identical to
// New.
func NewAt(cfg Config, p *prog.Program, ck Checkpoint) *Pipeline {
	cfg = cfg.withDefaults()
	if cfg.Threads > 1 {
		panic("pipeline: interval checkpoints are single-context; Threads > 1 runs serially")
	}
	pl := newPipeline(cfg, []*prog.Program{p}, []*prog.Exec{prog.NewExecAt(p, ck.State)})
	pl.threads[0].defCounter = ck.DefBase
	pl.threads[0].instOffset = ck.Inst
	if ck.Mem != nil {
		pl.mem.Restore(ck.Mem)
	}
	return pl
}

// IntervalStats reports how an interval-parallel run was assembled: the
// split, the warm-up overhead paid for timing-state convergence, and the
// per-interval measured cycle counts (whose spread is the load imbalance).
type IntervalStats struct {
	K              int      // intervals simulated concurrently
	WarmupInsts    uint64   // configured per-interval warm-up budget
	WarmupRetired  uint64   // warm-up instructions retired and discarded, summed
	WarmupCycles   uint64   // cycles spent inside warm-up windows, summed
	IntervalCycles []uint64 // measured cycles per interval, in program order
}

// Skew returns the ratio of the longest to the shortest measured interval
// (1.0 = perfectly balanced; 0 when undefined).
func (s *IntervalStats) Skew() float64 {
	if len(s.IntervalCycles) == 0 {
		return 0
	}
	lo, hi := s.IntervalCycles[0], s.IntervalCycles[0]
	for _, c := range s.IntervalCycles[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// WarmupFrac returns warm-up cycles as a fraction of all simulated cycles
// — the throughput overhead paid for the bounded-error stitching.
func (s *IntervalStats) WarmupFrac() float64 {
	var measured uint64
	for _, c := range s.IntervalCycles {
		measured += c
	}
	if total := s.WarmupCycles + measured; total > 0 {
		return float64(s.WarmupCycles) / float64(total)
	}
	return 0
}

// IntervalTiming receives wall-clock phase measurements of one interval
// run when attached to IntervalOptions — the stitch component of the
// service's per-point timing breakdown. It is deliberately NOT part of
// Result: Results must stay a pure function of (config, program, budget)
// for the determinism and bit-identity gates.
type IntervalTiming struct {
	StitchNS int64 // wall time spent merging the per-interval results
}

// IntervalOptions configures RunIntervals.
type IntervalOptions struct {
	K           int          // interval count (clamped to [1, total])
	Warmup      uint64       // warm-up instructions before each interval after the first
	Oracle      *OracleTable // pre-built oracle table (OracleUses schemes)
	Checkpoints []Checkpoint // pre-captured checkpoints; nil captures here

	// Span, when non-nil, records one child span per interval (each with
	// warm-up and measured sub-spans) plus a stitch span — the request-
	// scoped trace of the daemon. Nil (the default everywhere outside the
	// service) is the zero-overhead disabled path.
	Span *obs.Span
	// Timing, when non-nil, receives phase wall-clock measurements.
	Timing *IntervalTiming
}

// RunIntervals simulates total instructions as K checkpointed intervals on
// K goroutines and stitches the per-interval results. With K=1 the result
// is bit-identical to New(cfg, p).Run(total); with K>1 the architectural
// stream is exact while timing counters carry a bounded warm-up error
// reported in Result.Intervals. Checkpoints, when supplied, must have been
// captured at CapturePoints(IntervalStarts(total, K), Warmup).
func RunIntervals(cfg Config, p *prog.Program, total uint64, o IntervalOptions) Result {
	starts := IntervalStarts(total, o.K)
	k := len(starts)
	cks := o.Checkpoints
	if cks == nil {
		cks = CaptureCheckpoints(p, CapturePoints(starts, o.Warmup), cfg.Mem)
	}
	if len(cks) != k {
		panic(fmt.Sprintf("pipeline: %d checkpoints for %d intervals", len(cks), k))
	}
	results := make([]Result, k)
	warmRet := make([]uint64, k)
	warmCyc := make([]uint64, k)
	panics := make([]any, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		end := total
		if i+1 < k {
			end = starts[i+1]
		}
		wg.Add(1)
		go func(i int, start, end uint64) {
			defer wg.Done()
			// Hold interval panics (deadlock backstop, config validation)
			// and re-raise on the caller, where the run layer's panic→error
			// conversion can see them.
			defer func() { panics[i] = recover() }()
			isp := o.Span.StartChild("interval")
			ck := cks[i]
			pl := NewAt(cfg, p, ck)
			if o.Oracle != nil {
				pl.SetOracle(o.Oracle)
			}
			results[i] = pl.RunWindowSpans(start-ck.Inst, end-start, isp)
			warmRet[i] = pl.Stats.Retired - results[i].Stats.Retired
			warmCyc[i] = pl.Stats.Cycles - results[i].Stats.Cycles
			if isp != nil {
				isp.SetInt("index", int64(i))
				isp.SetInt("start_inst", int64(start))
				isp.SetInt("warmup_retired", int64(warmRet[i]))
				isp.SetInt("measured_cycles", int64(results[i].Stats.Cycles))
				isp.End()
			}
		}(i, starts[i], end)
	}
	wg.Wait()
	for _, pv := range panics {
		if pv != nil {
			panic(pv)
		}
	}
	if k == 1 {
		// One interval from the entry with no warm-up is the serial run.
		return results[0]
	}
	ssp := o.Span.StartChild("stitch")
	stitchStart := time.Now()
	m := MergeResults(results)
	if o.Timing != nil {
		o.Timing.StitchNS = time.Since(stitchStart).Nanoseconds()
	}
	ssp.End()
	ist := &IntervalStats{K: k, WarmupInsts: o.Warmup, IntervalCycles: make([]uint64, k)}
	for i, r := range results {
		ist.WarmupRetired += warmRet[i]
		ist.WarmupCycles += warmCyc[i]
		ist.IntervalCycles[i] = r.Stats.Cycles
	}
	m.Intervals = ist
	return m
}

// MergeResults stitches per-interval window results into one run-level
// Result: counters are summed and the derived ratio metrics recomputed
// from the sums (summed Cycles are per-core cycles, so merged IPC is total
// retired work over total simulated time). The monolithic file's raw
// read/write counts are not part of Result, so its bandwidths recombine as
// cycle-weighted means of the per-interval rates; every other derived
// metric is exact in the summed counters.
func MergeResults(parts []Result) Result {
	if len(parts) == 0 {
		return Result{}
	}
	m := Result{Config: parts[0].Config}
	for _, p := range parts {
		m.Stats = m.Stats.Add(p.Stats)
		m.Cache = m.Cache.Merge(p.Cache)
		m.BackingReads += p.BackingReads
		m.BackingWrites += p.BackingWrites
		m.BackingPortConflicts += p.BackingPortConflicts
		m.TLMigrations += p.TLMigrations
		m.TLRecoveryStalls += p.TLRecoveryStalls
		m.TLRenameStalls += p.TLRenameStalls
		m.UsePredLookups += p.UsePredLookups
		m.UsePredHits += p.UsePredHits
		m.UsePredTrains += p.UsePredTrains
		m.UsePredCorrect += p.UsePredCorrect
	}
	if m.Stats.Cycles > 0 {
		m.IPC = float64(m.Stats.Retired) / float64(m.Stats.Cycles)
	}
	cyc := float64(m.Stats.Cycles)
	switch m.Config.Scheme {
	case SchemeCache:
		m.CacheReadBW = float64(m.Cache.Reads) / cyc
		m.CacheWriteBW = float64(m.Cache.Writes) / cyc
		m.RFReadBW = float64(m.BackingReads) / cyc
		m.RFWriteBW = float64(m.BackingWrites) / cyc
	case SchemeMonolithic:
		var rd, wr float64
		for _, p := range parts {
			rd += p.RFReadBW * float64(p.Stats.Cycles)
			wr += p.RFWriteBW * float64(p.Stats.Cycles)
		}
		m.RFReadBW, m.RFWriteBW = rd/cyc, wr/cyc
	case SchemeTwoLevel:
		m.RFReadBW = float64(m.Stats.RFReads) / cyc
		m.RFWriteBW = float64(m.Stats.RFWrites) / cyc
	}
	totalOperandReads := m.Stats.BypassReads + m.Stats.RFReads + m.Cache.Reads
	if totalOperandReads > 0 {
		m.BypassFrac = float64(m.Stats.BypassReads) / float64(totalOperandReads)
	}
	if m.UsePredTrains > 0 {
		m.UsePredAccuracy = float64(m.UsePredCorrect) / float64(m.UsePredTrains)
	}
	if m.UsePredLookups > 0 {
		m.UsePredCoverage = float64(m.UsePredHits) / float64(m.UsePredLookups)
	}
	return m
}
