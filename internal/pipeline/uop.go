package pipeline

import (
	"regcache/internal/core"
	"regcache/internal/isa"
	"regcache/internal/prog"
)

// uopState tracks an instruction's progress through the backend.
type uopState uint8

const (
	uInFrontEnd uopState = iota // fetched/renamed, waiting out the front-end depth
	uInIQ                       // dispatched, waiting for operands or selection
	uIssued                     // selected; register read next cycle
	uWaitFill                   // register cache miss: waiting for backing-file fill(s)
	uExecuting                  // operands acquired; completes at resultAt
	uDone                       // executed; waiting for retirement
	uRetired
	uSquashed
)

// srcOp is one source operand after rename.
type srcOp struct {
	reg       isa.Reg
	preg      core.PReg
	set       int16
	producer  *uop   // in-flight producer, nil when the value was committed before rename
	prodSeq   uint64 // producer's seq at rename; a mismatch means it retired and was recycled
	counted   bool   // two-level: pending-consumer count includes this operand
	acquired  bool   // operand latched (hit, bypass, or completed fill)
	countedS1 bool   // this operand incremented its producer's bypass-stage-1 count
}

// isReal reports whether the operand names a readable register.
func (s *srcOp) isReal() bool { return s.reg != isa.RegNone && !s.reg.IsZeroReg() }

// Uop is one in-flight instruction. Exported fields are read-only from
// outside the package; the RetireHook receives each retiring Uop.
type Uop = uop

// uop is one in-flight instruction.
type uop struct {
	seq  uint64
	tid  int32 // hardware context that fetched this instruction
	inst *isa.Inst
	step prog.Step

	// Rename results.
	destPreg core.PReg // -1 when no destination
	oldPreg  core.PReg // previous mapping of the destination archreg (-1 if none)
	destSet  int16
	predUses int  // clamped predicted degree of use
	pinned   bool // prediction saturated at MaxUse
	srcs     [2]srcOp

	// Speculation checkpoints (state after this instruction).
	execTokAfter int
	mapTokAfter  int
	rasTop       int
	rasDepth     int
	bhrBefore    uint64 // YAGS history when the prediction was made
	pathBefore   uint64 // indirect path history when the prediction was made

	// Branch prediction outcome.
	predTaken    bool
	mispredicted bool

	// Timing.
	state       uopState
	readyAt     uint64 // front end: earliest dispatch cycle
	issueCycle  uint64
	execStart   uint64
	resultAt    uint64 // last execution cycle (result available at its end)
	specResult  uint64 // hit-assumed resultAt used for speculative wakeup (loads)
	missKnownAt uint64 // cycle from which the scheduler sees the real latency
	latency     int

	// Register cache interactions.
	bypassS1   int // consumers issued for bypass-stage-1 delivery (pre-write)
	fillsLeft  int // outstanding backing-file fills for this uop's operands
	fillExecAt uint64

	defIdx uint64 // definition-counter state after this uop (oracle mode)

	robIdx int
}

// hasDest reports whether the uop allocates a physical register.
func (u *uop) hasDest() bool { return u.destPreg >= 0 }

// effectiveResult returns the producer completion time the scheduler may
// assume at cycle now: loads advertise their hit-assumed time until the
// miss becomes visible (load-hit speculation), everything else is exact.
func (u *uop) effectiveResult(now uint64) uint64 {
	if u.state == uExecuting && u.resultAt != u.specResult && now < u.missKnownAt {
		return u.specResult
	}
	return u.resultAt
}

// executedBy reports whether the value is available from storage from the
// perspective of a consumer (producer finished executing).
func (u *uop) completed() bool {
	return u.state == uDone || u.state == uRetired
}
