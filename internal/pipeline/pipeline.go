package pipeline

import (
	"fmt"

	"regcache/internal/bpred"
	"regcache/internal/core"
	"regcache/internal/isa"
	"regcache/internal/memsys"
	"regcache/internal/obs"
	"regcache/internal/prog"
	"regcache/internal/regfile"
	"regcache/internal/twolevel"
	"regcache/internal/usepred"
)

// fuClass indexes the function-unit pools.
type fuClass int

const (
	fuIALU fuClass = iota
	fuBR
	fuIMUL
	fuFALU
	fuFPMD
	fuLD
	fuST
	numFUClasses
)

func classOf(op isa.Op) fuClass {
	switch op {
	case isa.OpIAlu, isa.OpNop:
		return fuIALU
	case isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpRet, isa.OpIndirect:
		return fuBR
	case isa.OpIMul:
		return fuIMUL
	case isa.OpFAlu:
		return fuFALU
	case isa.OpFMul, isa.OpFDiv:
		return fuFPMD
	case isa.OpLoad:
		return fuLD
	case isa.OpStore:
		return fuST
	}
	return fuIALU
}

// fillReq is an outstanding backing-file read serving one or more register
// cache misses on the same physical register. Waiters are seq-guarded
// references because a waiter may be squashed (and its uop recycled)
// before the fill arrives. Requests themselves are pooled (pool.go).
type fillReq struct {
	preg    core.PReg
	set     int16
	tid     int32 // context whose miss opened the request (port-stall attribution)
	readyAt uint64
	waiters []uopRef
}

// threadCtx is the per-context slice of the machine: one hardware thread's
// instruction stream, architectural register space, control-flow state, and
// reorder-buffer partition. Everything speculative that misprediction
// recovery rolls back is thread-local; the physical register file, register
// cache, issue window, memory hierarchy, and degree-of-use predictor table
// are shared across contexts (the GPU-style contention this mode models).
// A single-context pipeline is exactly one threadCtx owning the whole ROB.
type threadCtx struct {
	id   int32
	prog *prog.Program
	exec *prog.Exec

	yags *bpred.YAGS
	ind  *bpred.Indirect
	ras  *bpred.RAS
	maps *regfile.MapTable

	rob      []*uop
	robHead  int
	robCount int

	fetchStallUntil uint64
	fetchLost       bool
	lastFetchLine   uint64
	fetchRun        int // instructions fetched in the current interleave turn

	oracle     *OracleTable
	defCounter uint64 // definitions renamed on this context's speculative path
	instOffset uint64 // retired instructions before this context's checkpoint

	stats ThreadStats
}

// Pipeline is one simulated processor core bound to one or more programs
// (one per hardware context).
type Pipeline struct {
	cfg Config

	threads  []threadCtx
	fetchTC  int // context the round-robin fetch pointer rests on
	retireTC int // context retirement starts from this cycle

	upred *usepred.Predictor
	mem   *memsys.Hierarchy

	cache    *core.Cache
	backing  *regfile.BackingFile
	mono     *regfile.Monolithic
	tlf      *twolevel.File
	freelist *regfile.FreeList
	life     *regfile.Lifetimes

	now     uint64
	seq     uint64
	readLat int

	producers []*uop
	prodPC    []uint64
	prodSig   []uint64
	archReads []int

	// iq entries are seq-guarded: uops leave the window logically at issue
	// or squash but their slots are only reclaimed by lazy compaction, and
	// a recycled uop must not be revived through its stale slot.
	iq      []uopRef
	iqCount int

	frontq    []*uop
	frontqBuf []*uop // backing array for frontq (reused to avoid churn)

	tlfVisible []core.PReg // recover() scratch: map-visible pregs (two-level only)

	lqCount, sqCount int
	inflightStores   []*uop // for store-to-load forward timing

	issuedNow []*uop // issued last cycle, in the register-read stage this cycle
	readBuf   []*uop // spare buffer swapped with issuedNow each cycle

	// Calendar-queue event scheduling: per-cycle buckets instead of
	// map[cycle] hashing (see wheel.go), and a PReg-indexed miss queue
	// instead of a map (at most one outstanding fill per register).
	comps *timingWheel[compEntry]
	fills *timingWheel[*fillReq]
	missQ []*fillReq

	// Explicit read-port arbitration for port-filtering schemes
	// (ReadPorts > 0): fills deferred past the cycle's port grants wait
	// here, charging PortConflictStalls per queued cycle. Empty and
	// untouched when ReadPorts == 0 (the legacy single-port model).
	portQ    []*fillReq
	portUsed int

	fuUsed [numFUClasses]int
	fuCap  [numFUClasses]int

	suppressIssue bool

	// uop and fillReq pools (pool.go): free lists recycled at retire,
	// squash, and fill completion keep the steady-state loop allocation-
	// free. Stale references to recycled uops are rejected by seq.
	uopBlock []uop
	uopNext  int
	uopFree  []*uop
	fillFree []*fillReq

	// RetireHook, when set, observes every retiring uop (tracing/tests).
	RetireHook func(u *Uop)

	// tracer receives structured stage-transition and cache events when
	// non-nil; every emission site is nil-guarded so the untraced hot loop
	// pays one branch and no allocation.
	tracer obs.Tracer

	Stats Stats
}

// SetTracer attaches (or with nil detaches) a structured event tracer to
// the pipeline and its register cache. Call it before Run.
func (pl *Pipeline) SetTracer(t obs.Tracer) {
	pl.tracer = t
	if pl.cache != nil {
		pl.cache.SetTracer(t)
	}
}

// tracePipe emits one stage-transition event (callers check pl.tracer).
func (pl *Pipeline) tracePipe(u *uop, stage obs.PipeStage, cycle uint64) {
	pl.tracer.TracePipe(obs.PipeEvent{
		Cycle: cycle, Stage: stage, Seq: u.seq, PC: u.inst.PC, Op: u.inst.Op.String(),
	})
}

// RegisterMetrics publishes the pipeline's live counters (and the register
// cache's, for the cache scheme) into a metrics registry under prefix.
func (pl *Pipeline) RegisterMetrics(r *obs.Registry, prefix string) {
	pl.Stats.Register(r, prefix)
	if pl.cache != nil {
		pl.cache.Stats.Register(r, prefix+".cache")
	}
}

// threadAddr maps a context-local address into the shared memory
// hierarchy: contexts run disjoint programs, so their address spaces are
// kept disjoint by folding the context id into high bits. Context 0 is the
// identity — a single-context machine probes exactly the addresses the
// pre-refactor pipeline did (the T=1 bit-identity guarantee).
func threadAddr(tid int32, addr uint64) uint64 {
	return addr ^ uint64(uint32(tid))<<44
}

// New builds a single-context pipeline for the given program and
// configuration. Multithreaded configurations use NewMulti.
func New(cfg Config, p *prog.Program) *Pipeline {
	cfg = cfg.withDefaults()
	if cfg.Threads > 1 {
		panic(fmt.Sprintf("pipeline: New is single-context; use NewMulti for Threads=%d", cfg.Threads))
	}
	return newPipeline(cfg, []*prog.Program{p}, []*prog.Exec{prog.NewExec(p)})
}

// NewMulti builds a pipeline with one hardware context per program:
// progs[t] is context t's instruction stream. len(progs) must equal the
// configured thread count.
func NewMulti(cfg Config, progs []*prog.Program) *Pipeline {
	cfg = cfg.withDefaults()
	if len(progs) != cfg.Threads {
		panic(fmt.Sprintf("pipeline: %d programs for Threads=%d", len(progs), cfg.Threads))
	}
	execs := make([]*prog.Exec, len(progs))
	for i, p := range progs {
		execs[i] = prog.NewExec(p)
	}
	return newPipeline(cfg, progs, execs)
}

// newPipeline builds a pipeline around already-positioned functional
// executors (New starts at the program entry; NewAt starts at a checkpoint).
func newPipeline(cfg Config, progs []*prog.Program, execs []*prog.Exec) *Pipeline {
	cfg = cfg.withDefaults()
	nt := cfg.Threads
	if nt*isa.NumArchRegs+isa.NumArchRegs > cfg.NumPRegs {
		panic(fmt.Sprintf("pipeline: %d physical registers cannot back %d contexts (%d identity + rename headroom)",
			cfg.NumPRegs, nt, nt*isa.NumArchRegs))
	}
	pl := &Pipeline{
		cfg:       cfg,
		threads:   make([]threadCtx, nt),
		upred:     usepred.New(cfg.UsePred),
		mem:       memsys.New(cfg.Mem),
		freelist:  regfile.NewFreeList(cfg.NumPRegs),
		readLat:   cfg.readLatency(),
		producers: make([]*uop, cfg.NumPRegs),
		prodPC:    make([]uint64, cfg.NumPRegs),
		prodSig:   make([]uint64, cfg.NumPRegs),
		archReads: make([]int, cfg.NumPRegs),
		frontqBuf: make([]*uop, 0, cfg.FrontQCap+8),
		comps:     newTimingWheel[compEntry](wheelHorizon, 2*cfg.IssueWidth),
		fills:     newTimingWheel[*fillReq](wheelHorizon, 4),
		missQ:     make([]*fillReq, cfg.NumPRegs),
	}
	pl.fuCap = [numFUClasses]int{cfg.IntALU, cfg.BranchUnits, cfg.IntMul, cfg.FPALU, cfg.FPMulDiv, cfg.LoadUnits, cfg.StoreUnits}
	if cfg.TrackLifetimes || cfg.TrackLiveCounts {
		pl.life = regfile.NewLifetimes(cfg.NumPRegs, cfg.TrackLiveCounts)
	}
	switch cfg.Scheme {
	case SchemeCache:
		pl.cache = core.New(cfg.CacheCfg)
		pl.backing = regfile.NewBackingFile(cfg.BackingLatency, cfg.NumPRegs)
	case SchemeMonolithic:
		pl.mono = regfile.NewMonolithic(cfg.RFLatency, cfg.NumPRegs)
	case SchemeTwoLevel:
		tl := cfg.TwoLevelCfg
		tl.L2Latency = max(tl.L2Latency, 1)
		pl.tlf = twolevel.New(tl, cfg.NumPRegs)
		pl.tlfVisible = make([]core.PReg, 0, len(progs)*isa.NumArchRegs)
	}
	if cfg.Scheme == SchemeCache {
		pl.prewarmFillPool(192, 8)
		if cfg.ReadPorts > 0 {
			pl.portQ = make([]*fillReq, 0, cfg.NumPRegs)
		}
	}
	// Each context's architectural register space occupies a dedicated
	// identity block: context t's architectural register i lives in preg
	// t*64+i. Allocate the blocks for real (cache set assignment included)
	// so reads of never-redefined architectural registers behave like any
	// other value. The freelist is FIFO from preg 0, so the blocks come out
	// in order.
	for t := 0; t < nt; t++ {
		tc := &pl.threads[t]
		tc.id = int32(t)
		tc.prog = progs[t]
		tc.exec = execs[t]
		tc.yags = bpred.NewYAGS(bpred.YAGSConfig{})
		tc.ind = bpred.NewIndirect(bpred.IndirectConfig{})
		tc.ras = bpred.NewRAS(64)
		tc.maps = regfile.NewMapTable()
		tc.rob = make([]*uop, cfg.ROBSize/nt)
		for i := 0; i < isa.NumArchRegs; i++ {
			pp, ok := pl.freelist.Alloc()
			if !ok || pp != core.PReg(t*isa.NumArchRegs+i) {
				panic("pipeline: freelist does not start at preg 0")
			}
			set := 0
			if pl.cache != nil {
				set = pl.cache.Allocate(pp, 0)
			}
			tc.maps.Redefine(isa.Reg(i+1), regfile.Mapping{PReg: pp, Set: int16(set)})
			if pl.tlf != nil {
				pl.tlf.Allocate(pp)
				pl.tlf.Produced(pp) // architected initial values exist
			}
		}
		tc.maps.Commit(tc.maps.Checkpoint())
	}
	pl.frontq = pl.frontqBuf
	return pl
}

// Cache exposes the register cache (nil for non-cache schemes).
func (pl *Pipeline) Cache() *core.Cache { return pl.cache }

// Backing exposes the backing file (nil for non-cache schemes).
func (pl *Pipeline) Backing() *regfile.BackingFile { return pl.backing }

// Mono exposes the monolithic register file model (nil otherwise).
func (pl *Pipeline) Mono() *regfile.Monolithic { return pl.mono }

// TwoLevel exposes the two-level file (nil otherwise).
func (pl *Pipeline) TwoLevel() *twolevel.File { return pl.tlf }

// UsePred exposes the degree-of-use predictor.
func (pl *Pipeline) UsePred() *usepred.Predictor { return pl.upred }

// Mem exposes the memory hierarchy.
func (pl *Pipeline) Mem() *memsys.Hierarchy { return pl.mem }

// Lifetimes exposes the register lifetime tracker (nil unless tracking).
func (pl *Pipeline) Lifetimes() *regfile.Lifetimes { return pl.life }

// Now returns the current cycle.
func (pl *Pipeline) Now() uint64 { return pl.now }

// SetOracle injects a pre-built oracle degree-of-use table for context 0
// (see BuildOracle). The table must have been built from that context's
// program with an instruction budget of at least the one passed to Run;
// the sim layer's workload cache guarantees both. A context without an
// injected table builds its own lazily.
func (pl *Pipeline) SetOracle(t *OracleTable) { pl.threads[0].oracle = t }

// SetThreadOracle injects a pre-built oracle table for one context.
func (pl *Pipeline) SetThreadOracle(tid int, t *OracleTable) { pl.threads[tid].oracle = t }

// robTotal returns in-flight ROB occupancy across all contexts.
func (pl *Pipeline) robTotal() int {
	n := 0
	for i := range pl.threads {
		n += pl.threads[i].robCount
	}
	return n
}

// Run simulates until maxInsts instructions retire (or maxCycles elapse as
// a deadlock backstop) and returns the results.
func (pl *Pipeline) Run(maxInsts uint64) Result { return pl.RunWindow(0, maxInsts) }

// RunWindow simulates warmup+measure retired instructions and reports only
// the measured window: counters accumulated while the first warmup
// instructions retire are snapshotted out of the Result. Interval pipelines
// use the warm-up to converge timing state (predictors, cache contents,
// in-flight memory behaviour) that their architectural checkpoint does not
// carry; a zero warmup takes no snapshot and is exactly Run.
func (pl *Pipeline) RunWindow(warmup, measure uint64) Result {
	return pl.RunWindowSpans(warmup, measure, nil)
}

// RunWindowSpans is RunWindow with request-scoped tracing: when sp is
// non-nil, the warm-up and measured phases each record a child span with
// their retired/cycle counts. A nil sp is the disabled path — the hooks
// sit at the two phase boundaries, never inside the cycle loop, and cost
// nothing (the alloc gate covers this).
func (pl *Pipeline) RunWindowSpans(warmup, measure uint64, sp *obs.Span) Result {
	total := warmup + measure
	if pl.cfg.OracleUses {
		// Every context retires at most the whole-machine budget, so a
		// per-context table built to total covers any interleaving.
		for i := range pl.threads {
			tc := &pl.threads[i]
			if tc.oracle == nil {
				tc.oracle = BuildOracle(tc.prog, tc.instOffset+total)
			}
		}
	}
	maxCycles := total*40 + 200_000
	var snap windowSnap
	if warmup > 0 {
		wsp := sp.StartChild("warmup")
		for pl.Stats.Retired < warmup && pl.now < maxCycles {
			pl.Cycle()
		}
		snap = pl.snapshotWindow()
		if wsp != nil {
			wsp.SetInt("retired", int64(pl.Stats.Retired))
			wsp.SetInt("cycles", int64(pl.now))
			wsp.End()
		}
	}
	msp := sp.StartChild("measured")
	for pl.Stats.Retired < total && pl.now < maxCycles {
		pl.Cycle()
	}
	if msp != nil {
		msp.SetInt("retired", int64(pl.Stats.Retired-snap.stats.Retired))
		msp.SetInt("cycles", int64(pl.now))
		msp.End()
	}
	if pl.now >= maxCycles {
		panic(fmt.Sprintf("pipeline: deadlock suspected at cycle %d (%d retired of %d; iq=%d rob=%d freelist=%d)",
			pl.now, pl.Stats.Retired, total, pl.iqCount, pl.robTotal(), pl.freelist.Len()))
	}
	if pl.cache != nil {
		pl.cache.FinishSampling(pl.now)
	}
	if pl.life != nil {
		pl.life.Finish(pl.now)
	}
	return pl.windowResult(snap)
}

// Cycle advances the machine by one clock.
func (pl *Pipeline) Cycle() {
	pl.now++
	pl.suppressIssue = false
	pl.retire()
	pl.grantPorts()
	pl.processFills()
	pl.processCompletions()
	pl.readStage()
	pl.dispatch()
	pl.issue()
	pl.fetch()
	if pl.tlf != nil {
		pl.tlf.Tick()
	}
	pl.Stats.Cycles = pl.now
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
