package pipeline

import (
	"fmt"

	"regcache/internal/bpred"
	"regcache/internal/core"
	"regcache/internal/isa"
	"regcache/internal/memsys"
	"regcache/internal/obs"
	"regcache/internal/prog"
	"regcache/internal/regfile"
	"regcache/internal/twolevel"
	"regcache/internal/usepred"
)

// fuClass indexes the function-unit pools.
type fuClass int

const (
	fuIALU fuClass = iota
	fuBR
	fuIMUL
	fuFALU
	fuFPMD
	fuLD
	fuST
	numFUClasses
)

func classOf(op isa.Op) fuClass {
	switch op {
	case isa.OpIAlu, isa.OpNop:
		return fuIALU
	case isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpRet, isa.OpIndirect:
		return fuBR
	case isa.OpIMul:
		return fuIMUL
	case isa.OpFAlu:
		return fuFALU
	case isa.OpFMul, isa.OpFDiv:
		return fuFPMD
	case isa.OpLoad:
		return fuLD
	case isa.OpStore:
		return fuST
	}
	return fuIALU
}

// fillReq is an outstanding backing-file read serving one or more register
// cache misses on the same physical register. Waiters are seq-guarded
// references because a waiter may be squashed (and its uop recycled)
// before the fill arrives. Requests themselves are pooled (pool.go).
type fillReq struct {
	preg    core.PReg
	set     int16
	readyAt uint64
	waiters []uopRef
}

// Pipeline is one simulated processor core bound to a program.
type Pipeline struct {
	cfg  Config
	prog *prog.Program
	exec *prog.Exec

	yags  *bpred.YAGS
	ind   *bpred.Indirect
	ras   *bpred.RAS
	upred *usepred.Predictor
	mem   *memsys.Hierarchy

	cache    *core.Cache
	backing  *regfile.BackingFile
	mono     *regfile.Monolithic
	tlf      *twolevel.File
	freelist *regfile.FreeList
	maps     *regfile.MapTable
	life     *regfile.Lifetimes

	now     uint64
	seq     uint64
	readLat int

	producers []*uop
	prodPC    []uint64
	prodSig   []uint64
	archReads []int

	rob      []*uop
	robHead  int
	robCount int

	// iq entries are seq-guarded: uops leave the window logically at issue
	// or squash but their slots are only reclaimed by lazy compaction, and
	// a recycled uop must not be revived through its stale slot.
	iq      []uopRef
	iqCount int

	frontq    []*uop
	frontqBuf []*uop // backing array for frontq (reused to avoid churn)

	lqCount, sqCount int
	inflightStores   []*uop // for store-to-load forward timing

	issuedNow []*uop // issued last cycle, in the register-read stage this cycle
	readBuf   []*uop // spare buffer swapped with issuedNow each cycle

	// Calendar-queue event scheduling: per-cycle buckets instead of
	// map[cycle] hashing (see wheel.go), and a PReg-indexed miss queue
	// instead of a map (at most one outstanding fill per register).
	comps *timingWheel[compEntry]
	fills *timingWheel[*fillReq]
	missQ []*fillReq

	fetchStallUntil uint64
	fetchLost       bool
	lastFetchLine   uint64

	fuUsed [numFUClasses]int
	fuCap  [numFUClasses]int

	suppressIssue bool

	oracle     *OracleTable // perfect use counts (OracleUses mode)
	defCounter uint64       // definitions renamed on the current speculative path
	instOffset uint64       // retired instructions before this pipeline's checkpoint (interval runs)

	// uop and fillReq pools (pool.go): free lists recycled at retire,
	// squash, and fill completion keep the steady-state loop allocation-
	// free. Stale references to recycled uops are rejected by seq.
	uopBlock []uop
	uopNext  int
	uopFree  []*uop
	fillFree []*fillReq

	// RetireHook, when set, observes every retiring uop (tracing/tests).
	RetireHook func(u *Uop)

	// tracer receives structured stage-transition and cache events when
	// non-nil; every emission site is nil-guarded so the untraced hot loop
	// pays one branch and no allocation.
	tracer obs.Tracer

	Stats Stats
}

// SetTracer attaches (or with nil detaches) a structured event tracer to
// the pipeline and its register cache. Call it before Run.
func (pl *Pipeline) SetTracer(t obs.Tracer) {
	pl.tracer = t
	if pl.cache != nil {
		pl.cache.SetTracer(t)
	}
}

// tracePipe emits one stage-transition event (callers check pl.tracer).
func (pl *Pipeline) tracePipe(u *uop, stage obs.PipeStage, cycle uint64) {
	pl.tracer.TracePipe(obs.PipeEvent{
		Cycle: cycle, Stage: stage, Seq: u.seq, PC: u.inst.PC, Op: u.inst.Op.String(),
	})
}

// RegisterMetrics publishes the pipeline's live counters (and the register
// cache's, for the cache scheme) into a metrics registry under prefix.
func (pl *Pipeline) RegisterMetrics(r *obs.Registry, prefix string) {
	pl.Stats.Register(r, prefix)
	if pl.cache != nil {
		pl.cache.Stats.Register(r, prefix+".cache")
	}
}

// New builds a pipeline for the given program and configuration.
func New(cfg Config, p *prog.Program) *Pipeline {
	return newPipeline(cfg, p, prog.NewExec(p))
}

// newPipeline builds a pipeline around an already-positioned functional
// executor (New starts at the program entry; NewAt starts at a checkpoint).
func newPipeline(cfg Config, p *prog.Program, ex *prog.Exec) *Pipeline {
	cfg = cfg.withDefaults()
	pl := &Pipeline{
		cfg:           cfg,
		prog:          p,
		exec:          ex,
		yags:          bpred.NewYAGS(bpred.YAGSConfig{}),
		ind:           bpred.NewIndirect(bpred.IndirectConfig{}),
		ras:           bpred.NewRAS(64),
		upred:         usepred.New(cfg.UsePred),
		mem:           memsys.New(cfg.Mem),
		freelist:      regfile.NewFreeList(cfg.NumPRegs),
		maps:          regfile.NewMapTable(),
		readLat:       cfg.readLatency(),
		producers:     make([]*uop, cfg.NumPRegs),
		prodPC:        make([]uint64, cfg.NumPRegs),
		prodSig:       make([]uint64, cfg.NumPRegs),
		archReads:     make([]int, cfg.NumPRegs),
		rob:       make([]*uop, cfg.ROBSize),
		frontqBuf: make([]*uop, 0, cfg.FrontQCap+8),
		comps:     newTimingWheel[compEntry](wheelHorizon, 2*cfg.IssueWidth),
		fills:     newTimingWheel[*fillReq](wheelHorizon, 4),
		missQ:     make([]*fillReq, cfg.NumPRegs),
	}
	pl.fuCap = [numFUClasses]int{cfg.IntALU, cfg.BranchUnits, cfg.IntMul, cfg.FPALU, cfg.FPMulDiv, cfg.LoadUnits, cfg.StoreUnits}
	if cfg.TrackLifetimes || cfg.TrackLiveCounts {
		pl.life = regfile.NewLifetimes(cfg.NumPRegs, cfg.TrackLiveCounts)
	}
	switch cfg.Scheme {
	case SchemeCache:
		pl.cache = core.New(cfg.CacheCfg)
		pl.backing = regfile.NewBackingFile(cfg.BackingLatency, cfg.NumPRegs)
	case SchemeMonolithic:
		pl.mono = regfile.NewMonolithic(cfg.RFLatency, cfg.NumPRegs)
	case SchemeTwoLevel:
		tl := cfg.TwoLevelCfg
		tl.L2Latency = max(tl.L2Latency, 1)
		pl.tlf = twolevel.New(tl, cfg.NumPRegs)
	}
	if cfg.Scheme == SchemeCache {
		pl.prewarmFillPool(192, 8)
	}
	// The identity mappings created by NewMapTable occupy pregs 0..63:
	// allocate them for real (cache set assignment included) so reads of
	// never-redefined architectural registers behave like any other value.
	for i := 0; i < isa.NumArchRegs; i++ {
		pp, ok := pl.freelist.Alloc()
		if !ok || pp != core.PReg(i) {
			panic("pipeline: freelist does not start at preg 0")
		}
		set := 0
		if pl.cache != nil {
			set = pl.cache.Allocate(pp, 0)
		}
		pl.maps.Redefine(isa.Reg(i+1), regfile.Mapping{PReg: pp, Set: int16(set)})
		if pl.tlf != nil {
			pl.tlf.Allocate(pp)
			pl.tlf.Produced(pp) // architected initial values exist
		}
	}
	pl.frontq = pl.frontqBuf
	pl.maps.Commit(pl.maps.Checkpoint())
	return pl
}

// Cache exposes the register cache (nil for non-cache schemes).
func (pl *Pipeline) Cache() *core.Cache { return pl.cache }

// Backing exposes the backing file (nil for non-cache schemes).
func (pl *Pipeline) Backing() *regfile.BackingFile { return pl.backing }

// Mono exposes the monolithic register file model (nil otherwise).
func (pl *Pipeline) Mono() *regfile.Monolithic { return pl.mono }

// TwoLevel exposes the two-level file (nil otherwise).
func (pl *Pipeline) TwoLevel() *twolevel.File { return pl.tlf }

// UsePred exposes the degree-of-use predictor.
func (pl *Pipeline) UsePred() *usepred.Predictor { return pl.upred }

// Mem exposes the memory hierarchy.
func (pl *Pipeline) Mem() *memsys.Hierarchy { return pl.mem }

// Lifetimes exposes the register lifetime tracker (nil unless tracking).
func (pl *Pipeline) Lifetimes() *regfile.Lifetimes { return pl.life }

// Now returns the current cycle.
func (pl *Pipeline) Now() uint64 { return pl.now }

// SetOracle injects a pre-built oracle degree-of-use table (see
// BuildOracle). The table must have been built from this pipeline's
// program with an instruction budget of at least the one passed to Run;
// the sim layer's workload cache guarantees both. A pipeline without an
// injected table builds its own lazily.
func (pl *Pipeline) SetOracle(t *OracleTable) { pl.oracle = t }

// Run simulates until maxInsts instructions retire (or maxCycles elapse as
// a deadlock backstop) and returns the results.
func (pl *Pipeline) Run(maxInsts uint64) Result { return pl.RunWindow(0, maxInsts) }

// RunWindow simulates warmup+measure retired instructions and reports only
// the measured window: counters accumulated while the first warmup
// instructions retire are snapshotted out of the Result. Interval pipelines
// use the warm-up to converge timing state (predictors, cache contents,
// in-flight memory behaviour) that their architectural checkpoint does not
// carry; a zero warmup takes no snapshot and is exactly Run.
func (pl *Pipeline) RunWindow(warmup, measure uint64) Result {
	return pl.RunWindowSpans(warmup, measure, nil)
}

// RunWindowSpans is RunWindow with request-scoped tracing: when sp is
// non-nil, the warm-up and measured phases each record a child span with
// their retired/cycle counts. A nil sp is the disabled path — the hooks
// sit at the two phase boundaries, never inside the cycle loop, and cost
// nothing (the alloc gate covers this).
func (pl *Pipeline) RunWindowSpans(warmup, measure uint64, sp *obs.Span) Result {
	total := warmup + measure
	if pl.cfg.OracleUses && pl.oracle == nil {
		pl.oracle = BuildOracle(pl.prog, pl.instOffset+total)
	}
	maxCycles := total*40 + 200_000
	var snap windowSnap
	if warmup > 0 {
		wsp := sp.StartChild("warmup")
		for pl.Stats.Retired < warmup && pl.now < maxCycles {
			pl.Cycle()
		}
		snap = pl.snapshotWindow()
		if wsp != nil {
			wsp.SetInt("retired", int64(pl.Stats.Retired))
			wsp.SetInt("cycles", int64(pl.now))
			wsp.End()
		}
	}
	msp := sp.StartChild("measured")
	for pl.Stats.Retired < total && pl.now < maxCycles {
		pl.Cycle()
	}
	if msp != nil {
		msp.SetInt("retired", int64(pl.Stats.Retired-snap.stats.Retired))
		msp.SetInt("cycles", int64(pl.now))
		msp.End()
	}
	if pl.now >= maxCycles {
		panic(fmt.Sprintf("pipeline: deadlock suspected at cycle %d (%d retired of %d; iq=%d rob=%d freelist=%d)",
			pl.now, pl.Stats.Retired, total, pl.iqCount, pl.robCount, pl.freelist.Len()))
	}
	if pl.cache != nil {
		pl.cache.FinishSampling(pl.now)
	}
	if pl.life != nil {
		pl.life.Finish(pl.now)
	}
	return pl.windowResult(snap)
}

// Cycle advances the machine by one clock.
func (pl *Pipeline) Cycle() {
	pl.now++
	pl.suppressIssue = false
	pl.retire()
	pl.processFills()
	pl.processCompletions()
	pl.readStage()
	pl.dispatch()
	pl.issue()
	pl.fetch()
	if pl.tlf != nil {
		pl.tlf.Tick()
	}
	pl.Stats.Cycles = pl.now
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
