package pipeline

import (
	"regcache/internal/isa"
	"regcache/internal/obs"
)

// retire commits up to RetireWidth completed instructions in order (at
// most MaxStoresPerCycle stores). Retirement trains the predictors, frees
// the previous mapping of each destination architectural register
// (invalidating its register cache entry), and releases speculative-state
// history.
func (pl *Pipeline) retire() {
	retired := 0
	stores := 0
	for pl.robCount > 0 && retired < pl.cfg.RetireWidth {
		u := pl.rob[pl.robHead]
		if u.state != uDone {
			return
		}
		if u.inst.Op == isa.OpStore {
			if stores >= pl.cfg.MaxStoresPerCycle {
				return
			}
			// Stores reach earliest retirement StoreRetireDelay cycles
			// after executing, and must find store-buffer space.
			if pl.now < u.resultAt+uint64(pl.cfg.StoreRetireDelay) {
				return
			}
			if !pl.mem.StoreRetire(u.step.MemAddr, pl.now) {
				pl.Stats.StoreRetireStalls++
				return
			}
			stores++
		}
		pl.retireOne(u)
		pl.rob[pl.robHead] = nil
		pl.robHead = (pl.robHead + 1) % pl.cfg.ROBSize
		pl.robCount--
		retired++
	}
}

// retireOne applies the architectural side effects of committing u.
func (pl *Pipeline) retireOne(u *uop) {
	u.state = uRetired
	pl.Stats.Retired++
	if pl.tracer != nil {
		pl.tracePipe(u, obs.StageRetire, pl.now)
	}
	if pl.RetireHook != nil {
		pl.RetireHook(u)
	}

	// Architectural read counting for degree-of-use training.
	for i := range u.srcs {
		s := &u.srcs[i]
		if s.isReal() {
			pl.archReads[s.preg]++
		}
	}

	// Queue releases.
	switch u.inst.Op {
	case isa.OpLoad:
		pl.lqCount--
	case isa.OpStore:
		pl.sqCount--
		pl.removeInflightStore(u)
	}

	// Branch predictor training (correct path only).
	switch u.inst.Op {
	case isa.OpBranch:
		pl.yags.Train(u.inst.PC, u.bhrBefore, u.step.Taken)
	case isa.OpRet:
		// The return address stack self-trains via push/pop.
	case isa.OpIndirect:
		pl.ind.Train(u.inst.PC, u.pathBefore, u.step.NextPC)
	}

	// Free the previous mapping of the destination register: train the
	// degree-of-use predictor with the true use count, invalidate the
	// register cache entry (correctness), and recycle the register.
	if u.hasDest() {
		pl.producers[u.destPreg] = nil
		if old := u.oldPreg; old >= 0 {
			if pc := pl.prodPC[old]; pc != 0 {
				pl.upred.Train(pc, pl.prodSig[old], pl.archReads[old])
			}
			if pl.cache != nil {
				pl.cache.Free(old, pl.now)
			}
			if pl.tlf != nil {
				pl.tlf.Free(old)
			}
			if pl.life != nil {
				pl.life.Free(old, pl.now)
			}
			pl.producers[old] = nil
			pl.freelist.Free(old)
		}
	}
	if pl.cache != nil && u.hasDest() {
		pl.cache.Retire(u.destPreg)
	}

	// Release checkpoint history.
	pl.maps.Commit(u.mapTokAfter)
	pl.exec.Commit(u.execTokAfter)

	// Recycle the uop. Remaining references (consumer srcOps, stale wheel
	// entries) are seq-guarded and will read it as retired.
	pl.freeUop(u)
}
