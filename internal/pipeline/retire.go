package pipeline

import (
	"regcache/internal/isa"
	"regcache/internal/obs"
)

// retire commits up to RetireWidth completed instructions in order (at
// most MaxStoresPerCycle stores). Each context retires in its own program
// order from its ROB partition; the shared retire bandwidth is offered to
// the contexts round-robin, rotating the starting context every cycle so
// no context is structurally favoured. A single-context machine reduces
// exactly to the classic single-ROB walk. Retirement trains the
// predictors, frees the previous mapping of each destination architectural
// register (invalidating its register cache entry), and releases
// speculative-state history.
func (pl *Pipeline) retire() {
	retired := 0
	stores := 0
	nt := len(pl.threads)
	for k := 0; k < nt && retired < pl.cfg.RetireWidth; k++ {
		tc := &pl.threads[(pl.retireTC+k)%nt]
		for tc.robCount > 0 && retired < pl.cfg.RetireWidth {
			u := tc.rob[tc.robHead]
			if u.state != uDone {
				break
			}
			if u.inst.Op == isa.OpStore {
				if stores >= pl.cfg.MaxStoresPerCycle {
					break
				}
				// Stores reach earliest retirement StoreRetireDelay cycles
				// after executing, and must find store-buffer space.
				if pl.now < u.resultAt+uint64(pl.cfg.StoreRetireDelay) {
					break
				}
				if !pl.mem.StoreRetire(threadAddr(u.tid, u.step.MemAddr), pl.now) {
					pl.Stats.StoreRetireStalls++
					break
				}
				stores++
			}
			pl.retireOne(tc, u)
			tc.rob[tc.robHead] = nil
			tc.robHead = (tc.robHead + 1) % len(tc.rob)
			tc.robCount--
			retired++
		}
	}
	if nt > 1 {
		pl.retireTC = (pl.retireTC + 1) % nt
	}
}

// retireOne applies the architectural side effects of committing u.
func (pl *Pipeline) retireOne(tc *threadCtx, u *uop) {
	u.state = uRetired
	pl.Stats.Retired++
	tc.stats.Retired++
	if pl.tracer != nil {
		pl.tracePipe(u, obs.StageRetire, pl.now)
	}
	if pl.RetireHook != nil {
		pl.RetireHook(u)
	}

	// Architectural read counting for degree-of-use training.
	for i := range u.srcs {
		s := &u.srcs[i]
		if s.isReal() {
			pl.archReads[s.preg]++
		}
	}

	// Queue releases.
	switch u.inst.Op {
	case isa.OpLoad:
		pl.lqCount--
	case isa.OpStore:
		pl.sqCount--
		pl.removeInflightStore(u)
	}

	// Branch predictor training (correct path only).
	switch u.inst.Op {
	case isa.OpBranch:
		tc.yags.Train(u.inst.PC, u.bhrBefore, u.step.Taken)
	case isa.OpRet:
		// The return address stack self-trains via push/pop.
	case isa.OpIndirect:
		tc.ind.Train(u.inst.PC, u.pathBefore, u.step.NextPC)
	}

	// Free the previous mapping of the destination register: train the
	// degree-of-use predictor with the true use count, invalidate the
	// register cache entry (correctness), and recycle the register.
	if u.hasDest() {
		pl.producers[u.destPreg] = nil
		if old := u.oldPreg; old >= 0 {
			if pc := pl.prodPC[old]; pc != 0 {
				pl.upred.Train(pc, pl.prodSig[old], pl.archReads[old])
			}
			if pl.cache != nil {
				pl.cache.Free(old, pl.now)
			}
			if pl.tlf != nil {
				pl.tlf.Free(old)
			}
			if pl.life != nil {
				pl.life.Free(old, pl.now)
			}
			pl.producers[old] = nil
			pl.freelist.Free(old)
		}
	}
	if pl.cache != nil && u.hasDest() {
		pl.cache.Retire(u.destPreg)
	}

	// Release checkpoint history.
	tc.maps.Commit(u.mapTokAfter)
	tc.exec.Commit(u.execTokAfter)

	// Recycle the uop. Remaining references (consumer srcOps, stale wheel
	// entries) are seq-guarded and will read it as retired.
	pl.freeUop(u)
}
