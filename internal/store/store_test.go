package store

// Crash-consistency and correctness tests for the segment store. The
// crash shapes are injected against real files: torn tails by truncating
// or appending partial frames, bit flips by rewriting single bytes on
// disk, failed appends through the writeHook test seam. Every test runs
// race-clean (the suite is part of `go test -race ./...` in CI).

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testKey(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[31] = 0xA5
	return k
}

func testVal(i, n int) []byte {
	v := make([]byte, n)
	for j := range v {
		v[j] = byte(i + j)
	}
	return v
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, i, n int) {
	t.Helper()
	if err := s.Put(testKey(i), testVal(i, n)); err != nil {
		t.Fatalf("Put(%d): %v", i, err)
	}
}

func checkGet(t *testing.T, s *Store, i, n int) {
	t.Helper()
	got, err := s.Get(testKey(i))
	if err != nil {
		t.Fatalf("Get(%d): %v", i, err)
	}
	if !bytes.Equal(got, testVal(i, n)) {
		t.Fatalf("Get(%d): wrong value (%d bytes)", i, len(got))
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()

	if _, err := s.Get(testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	for i := 0; i < 10; i++ {
		mustPut(t, s, i, 100+i)
	}
	for i := 0; i < 10; i++ {
		checkGet(t, s, i, 100+i)
	}
	// Supersede key 3 with a new value; the old record stays on disk but
	// the index serves only the newest.
	if err := s.Put(testKey(3), testVal(77, 50)); err != nil {
		t.Fatalf("supersede: %v", err)
	}
	got, err := s.Get(testKey(3))
	if err != nil || !bytes.Equal(got, testVal(77, 50)) {
		t.Fatalf("superseded Get: %v, %d bytes", err, len(got))
	}
	st := s.Stats()
	if st.Entries != 10 || st.Puts != 11 || st.Superseded != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LiveBytes >= st.SizeBytes {
		t.Fatalf("superseded record must leave dead bytes: live %d, size %d", st.LiveBytes, st.SizeBytes)
	}
}

func TestValueTooLarge(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Put(testKey(1), make([]byte, MaxValueBytes+1)); err == nil {
		t.Fatal("oversized Put must fail")
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 20; i++ {
		mustPut(t, s, i, 64)
	}
	mustPut(t, s, 5, 80) // supersede
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 20 {
		t.Fatalf("reopened Len = %d, want 20", s.Len())
	}
	for i := 0; i < 20; i++ {
		if i == 5 {
			checkGet(t, s, 5, 80)
			continue
		}
		checkGet(t, s, i, 64)
	}
	if st := s.Stats(); st.Superseded != 1 {
		t.Fatalf("reopen must observe the superseded record: %+v", st)
	}
	// The store stays writable after a reopen.
	mustPut(t, s, 100, 64)
	checkGet(t, s, 100, 64)
}

// newestSegment returns the path of the highest-numbered segment file.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.rcs"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return names[len(names)-1]
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		mustPut(t, s, i, 128)
	}
	s.Close()

	// A crash mid-append: the file ends in a frame header claiming more
	// bytes than follow.
	seg := newestSegment(t, dir)
	pre, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecord(nil, testKey(99), testVal(99, 500))
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir, Options{})
	if s.Len() != 5 {
		t.Fatalf("after torn tail: Len = %d, want 5 (torn record dropped)", s.Len())
	}
	if st := s.Stats(); st.TornRecords != 1 {
		t.Fatalf("torn record not counted: %+v", st)
	}
	post, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if post.Size() != pre.Size() {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", post.Size(), pre.Size())
	}
	for i := 0; i < 5; i++ {
		checkGet(t, s, i, 128)
	}
	// Appends resume at the clean boundary; a further reopen is clean.
	mustPut(t, s, 6, 128)
	s.Close()
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 6 {
		t.Fatalf("after append+reopen: Len = %d, want 6", s.Len())
	}
	if st := s.Stats(); st.TornRecords != 0 {
		t.Fatalf("clean reopen must see no torn records: %+v", st)
	}
}

func TestIndexRebuildEqualsPreCrashMinusTornRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 8; i++ {
		mustPut(t, s, i, 200)
	}
	pre := s.Entries()
	s.Close()

	// Crash during the last append: cut the final record in half.
	seg := newestSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := recordLen(200)
	if err := os.Truncate(seg, info.Size()-lastLen/2); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	post := s.Entries()
	if len(post) != len(pre)-1 {
		t.Fatalf("rebuilt index has %d entries, want %d", len(post), len(pre)-1)
	}
	for i, e := range post {
		if e.Key != pre[i].Key || e.Segment != pre[i].Segment || e.Offset != pre[i].Offset {
			t.Fatalf("entry %d diverged after rebuild: %+v vs %+v", i, e, pre[i])
		}
	}
}

func TestBitFlipSkippedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 6; i++ {
		mustPut(t, s, i, 150)
	}
	// Locate record 2's value region on disk.
	var victim EntryInfo
	for _, e := range s.Entries() {
		if e.Key == testKey(2) {
			victim = e
		}
	}
	s.Close()

	seg := filepath.Join(dir, fmt.Sprintf("seg-%08d.rcs", victim.Segment))
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := []byte{0xFF}
	if _, err := f.WriteAt(one, victim.Offset+frameLen+int64(keyLen)+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 5 {
		t.Fatalf("after bit flip: Len = %d, want 5 (flipped record skipped)", s.Len())
	}
	if st := s.Stats(); st.CorruptRecords != 1 {
		t.Fatalf("corrupt record not counted: %+v", st)
	}
	if _, err := s.Get(testKey(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("flipped key: %v, want ErrNotFound", err)
	}
	// Every record after the flipped one survives: corruption skips by
	// frame length instead of abandoning the segment.
	for _, i := range []int{0, 1, 3, 4, 5} {
		checkGet(t, s, i, 150)
	}
}

func TestBitFlipDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	mustPut(t, s, 1, 300)
	mustPut(t, s, 2, 300)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte under the open store's feet (the index still points at
	// the record): the read-time CRC check must catch it.
	var victim EntryInfo
	for _, e := range s.Entries() {
		if e.Key == testKey(1) {
			victim = e
		}
	}
	seg := filepath.Join(dir, fmt.Sprintf("seg-%08d.rcs", victim.Segment))
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := []byte{0xEE}
	if _, err := f.WriteAt(one, victim.Offset+frameLen+int64(keyLen)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := s.Get(testKey(1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on flipped record: %v, want ErrCorrupt", err)
	}
	// The entry is dropped, not retried forever.
	if _, err := s.Get(testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get: %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.CorruptRecords != 1 || st.Entries != 1 {
		t.Fatalf("stats after read-time corruption: %+v", st)
	}
	checkGet(t, s, 2, 300)
}

func TestShortWriteTruncatesBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	mustPut(t, s, 1, 100)
	preSize := s.Stats().SizeBytes

	// Inject a short write: half the frame lands, then the device "fails".
	s.writeHook = func(b []byte) (int, error) {
		n, err := s.active.Write(b[:len(b)/2])
		if err != nil {
			return n, err
		}
		return n, errors.New("injected: device failed mid-append")
	}
	if err := s.Put(testKey(2), testVal(2, 100)); err == nil {
		t.Fatal("Put through failing writer must error")
	}
	s.writeHook = nil

	st := s.Stats()
	if st.AppendErrors != 1 {
		t.Fatalf("append error not counted: %+v", st)
	}
	if st.SizeBytes != preSize {
		t.Fatalf("torn frame not truncated back: %d bytes, want %d", st.SizeBytes, preSize)
	}
	// The store self-heals: the same key can be written again and both
	// records survive a reopen.
	mustPut(t, s, 2, 100)
	checkGet(t, s, 1, 100)
	checkGet(t, s, 2, 100)
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopen after healed short write: Len = %d, want 2", s2.Len())
	}
	if st := s2.Stats(); st.TornRecords != 0 && st.CorruptRecords != 0 {
		t.Fatalf("healed store must reopen clean: %+v", st)
	}
	checkGet(t, s2, 1, 100)
	checkGet(t, s2, 2, 100)
}

func TestFailingWriterNothingWritten(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	s.writeHook = func(b []byte) (int, error) { return 0, errors.New("injected: EIO") }
	if err := s.Put(testKey(1), testVal(1, 100)); err == nil {
		t.Fatal("Put must surface the write error")
	}
	s.writeHook = nil
	mustPut(t, s, 1, 100)
	checkGet(t, s, 1, 100)
}

func TestRotationAndMultiSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	for i := 0; i < 30; i++ {
		mustPut(t, s, i, 128)
	}
	st := s.Stats()
	if st.Segments < 5 {
		t.Fatalf("expected many segments, got %d", st.Segments)
	}
	for i := 0; i < 30; i++ {
		checkGet(t, s, i, 128)
	}
	s.Close()

	s = mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	defer s.Close()
	if s.Len() != 30 {
		t.Fatalf("multi-segment reopen: Len = %d, want 30", s.Len())
	}
	for i := 0; i < 30; i++ {
		checkGet(t, s, i, 128)
	}
}

func TestCompactReclaims(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 1024})
	for i := 0; i < 10; i++ {
		mustPut(t, s, i, 200)
	}
	// Supersede everything once: half the on-disk bytes are now dead.
	for i := 0; i < 10; i++ {
		mustPut(t, s, i, 220)
	}
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.SizeBytes >= before.SizeBytes {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", before.SizeBytes, after.SizeBytes)
	}
	if after.Entries != 10 || after.Compactions != 1 {
		t.Fatalf("stats after compact: %+v", after)
	}
	for i := 0; i < 10; i++ {
		checkGet(t, s, i, 220)
	}
	s.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 10 {
		t.Fatalf("reopen after compact: Len = %d, want 10", s.Len())
	}
	if st := s.Stats(); st.Superseded != 0 {
		t.Fatalf("compacted store must hold no dead records: %+v", st)
	}
	for i := 0; i < 10; i++ {
		checkGet(t, s, i, 220)
	}
}

func TestGCEvictsLeastRecentlyReHit(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 10; i++ {
		mustPut(t, s, i, 100)
	}
	// Re-hit the first half: they become the protected hot set even though
	// they are the oldest inserts.
	for i := 0; i < 5; i++ {
		checkGet(t, s, i, 100)
	}
	per := recordLen(100)
	evicted, err := s.GC(6 * per)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if evicted != 4 {
		t.Fatalf("evicted %d entries, want 4", evicted)
	}
	// Victims are the never-re-hit entries, oldest first: 5, 6, 7, 8.
	for _, i := range []int{5, 6, 7, 8} {
		if _, err := s.Get(testKey(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("entry %d should be evicted: %v", i, err)
		}
	}
	for _, i := range []int{0, 1, 2, 3, 4, 9} {
		checkGet(t, s, i, 100)
	}
	if st := s.Stats(); st.GCEvicted != 4 || st.Compactions != 1 {
		t.Fatalf("stats after GC: %+v", st)
	}
}

func TestSizeCapAutoGC(t *testing.T) {
	per := recordLen(100)
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 10 * per, MaxSegmentBytes: 4 * per})
	defer s.Close()
	for i := 0; i < 40; i++ {
		mustPut(t, s, i, 100)
	}
	st := s.Stats()
	if st.LiveBytes > 10*per {
		t.Fatalf("live bytes %d exceed cap %d", st.LiveBytes, 10*per)
	}
	if st.GCEvicted == 0 {
		t.Fatal("size cap never triggered GC")
	}
	// The newest insert always survives its own Put.
	checkGet(t, s, 39, 100)
}

func TestHeaderlessNewestSegmentReplaced(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, 1, 100)
	s.Close()

	// Crash between segment creation and header write: an empty file with
	// the next id.
	if err := os.WriteFile(filepath.Join(dir, "seg-00000002.rcs"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	checkGet(t, s, 1, 100)
	mustPut(t, s, 2, 100)
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("after headerless recovery: Len = %d, want 2", s2.Len())
	}
	checkGet(t, s2, 2, 100)
}

func TestBadLengthStopsSegmentScan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		mustPut(t, s, i, 100)
	}
	entries := s.Entries()
	s.Close()

	// Smash record 1's length field with an implausible value. There is no
	// trustworthy frame boundary after it, so the scan must stop there and
	// the writable reopen truncates the segment back — records 1 and 2 are
	// lost, record 0 survives.
	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := f.WriteAt(bad, entries[1].Offset); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 1 {
		t.Fatalf("after bad length: Len = %d, want 1", s.Len())
	}
	checkGet(t, s, 0, 100)
	// And the store keeps working at the truncated boundary.
	mustPut(t, s, 9, 100)
	checkGet(t, s, 9, 100)
}

func TestLocking(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	mustPut(t, s, 1, 100)

	// A second writable open must be refused while the first holds the
	// exclusive lock.
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writable Open: %v, want ErrLocked", err)
	}
	// So must a read-only open (shared vs exclusive).
	if _, err := Open(dir, Options{ReadOnly: true}); !errors.Is(err, ErrLocked) {
		t.Fatalf("read-only Open against writer: %v, want ErrLocked", err)
	}
	s.Close()

	// Read-only openers share the lock with each other.
	r1 := mustOpen(t, dir, Options{ReadOnly: true})
	defer r1.Close()
	r2 := mustOpen(t, dir, Options{ReadOnly: true})
	defer r2.Close()
	checkGet(t, r1, 1, 100)
	checkGet(t, r2, 1, 100)
	if err := r1.Put(testKey(2), testVal(2, 10)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put: %v, want ErrReadOnly", err)
	}
	if err := r1.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Compact: %v, want ErrReadOnly", err)
	}
	// And a writer is excluded while readers hold the shared lock.
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("writable Open against readers: %v, want ErrLocked", err)
	}
}

func TestReadOnlyMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only Open of a missing directory must fail, not create it")
	}
}

func TestClosedErrors(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	mustPut(t, s, 1, 10)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Get(testKey(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	if err := s.Put(testKey(2), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
	if _, err := s.Verify(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Verify after Close: %v", err)
	}
}

func TestEntriesAndRangeOrder(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 5; i++ {
		mustPut(t, s, i, 50)
	}
	mustPut(t, s, 1, 60) // supersede: key 1 moves to the back

	want := []int{0, 2, 3, 4, 1}
	entries := s.Entries()
	if len(entries) != len(want) {
		t.Fatalf("Entries: %d, want %d", len(entries), len(want))
	}
	for i, w := range want {
		if entries[i].Key != testKey(w) {
			t.Fatalf("Entries[%d] = %x, want key %d", i, entries[i].Key[:4], w)
		}
	}
	var got []Key
	if err := s.Range(func(k Key, v []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != testKey(w) {
			t.Fatalf("Range[%d] = %x, want key %d", i, got[i][:4], w)
		}
	}
}

func TestVerifyReportsDamage(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		mustPut(t, s, i, 100)
	}
	entries := s.Entries()
	rep, err := s.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK != 4 || rep.Corrupt != 0 || rep.Torn != 0 {
		t.Fatalf("clean verify: %+v", rep)
	}
	s.Close()

	// Flip one byte in record 2's value, then verify read-only.
	seg := newestSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := []byte{0x01}
	if _, err := f.WriteAt(one, entries[2].Offset+frameLen+int64(keyLen)+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := mustOpen(t, dir, Options{ReadOnly: true})
	defer r.Close()
	rep, err = r.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK != 3 || rep.Corrupt != 1 {
		t.Fatalf("verify after flip: %+v", rep)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxSegmentBytes: 4096})
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = s.Put(testKey(i), testVal(i, 64))
		}
	}()
	for i := 0; i < 200; i++ {
		if v, err := s.Get(testKey(i)); err == nil && !bytes.Equal(v, testVal(i, 64)) {
			t.Errorf("Get(%d): wrong bytes", i)
		}
	}
	<-done
	for i := 0; i < 200; i++ {
		checkGet(t, s, i, 64)
	}
}
