package store

// Offline maintenance: full-scan verification, compaction (rewrite live
// records into fresh segments, then delete the old ones), and size-cap GC
// that victimizes the least-recently-re-hit entries oldest-first — the
// store's analogue of the paper's use-based replacement: entries whose
// observed re-hit recency predicts no further use go first.

import (
	"fmt"
	"os"
	"sort"
)

// VerifyReport summarizes a full CRC scan of every segment file.
type VerifyReport struct {
	Segments int
	Records  int // complete frames encountered (OK + Corrupt)
	OK       int
	Corrupt  int // complete frames with a CRC mismatch
	Torn     int // segments ending in a torn or unparseable tail
	Bytes    int64
}

func (r VerifyReport) String() string {
	return fmt.Sprintf("%d segments, %d bytes, %d records: %d ok, %d corrupt, %d torn tails",
		r.Segments, r.Bytes, r.Records, r.OK, r.Corrupt, r.Torn)
}

// Verify re-reads every segment from disk and CRC-checks every frame. It
// does not modify the store; writes are held off for the duration.
func (s *Store) Verify() (VerifyReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return VerifyReport{}, ErrClosed
	}
	ids, err := s.segIDs()
	if err != nil {
		return VerifyReport{}, err
	}
	var rep VerifyReport
	rep.Segments = len(ids)
	for _, id := range ids {
		data, err := os.ReadFile(s.segPath(id))
		if err != nil {
			return rep, fmt.Errorf("store: verify segment %d: %w", id, err)
		}
		rep.Bytes += int64(len(data))
		if len(data) < segMagicLen || [segMagicLen]byte(data[:segMagicLen]) != segMagic {
			if len(data) > 0 {
				rep.Torn++
			}
			continue
		}
		_, dirty := scanRecords(data[segMagicLen:], func(off int64, key Key, val []byte, st recStatus) {
			switch st {
			case recOK:
				rep.Records++
				rep.OK++
			case recCorrupt:
				rep.Records++
				rep.Corrupt++
			}
		})
		if dirty {
			rep.Torn++
		}
	}
	return rep, nil
}

// Compact rewrites every live record into fresh segments and deletes the
// old ones, reclaiming the space held by superseded, evicted, and corrupt
// records. Crash-safe by ordering: the new segments are fully written and
// fsynced before any old segment is removed, and a record's newest copy
// always lives in a higher-numbered segment, so a crash anywhere in
// between leaves at worst benign duplicates for the next open's
// last-write-wins scan.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	switch {
	case s.closed:
		return ErrClosed
	case s.opt.ReadOnly:
		return ErrReadOnly
	}
	type kv struct {
		k Key
		e entry
	}
	live := make([]kv, 0, len(s.index))
	for k, e := range s.index {
		live = append(live, kv{k, e})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].e.seq < live[j].e.seq })

	oldIDs := make([]uint32, 0, len(s.segSize))
	for id := range s.segSize {
		oldIDs = append(oldIDs, id)
	}

	// Open the first fresh segment; every live record is copied across,
	// reading from its old location (still on disk) and re-framing into
	// the new one.
	if err := s.rotateLocked(); err != nil {
		return err
	}
	firstNew := s.activeID
	for _, x := range live {
		val, err := s.readLocked(x.k, x.e)
		if err != nil {
			continue // corrupt at rest: counted and dropped by readLocked
		}
		if s.activeSize >= s.opt.MaxSegmentBytes {
			if err := s.rotateLocked(); err != nil {
				return err
			}
		}
		s.buf = appendRecord(s.buf[:0], x.k, val)
		off := s.activeSize
		if _, err := s.active.Write(s.buf); err != nil {
			return fmt.Errorf("store: compact append: %w", err)
		}
		s.activeSize += int64(len(s.buf))
		s.segSize[s.activeID] = s.activeSize
		// Relocate in place, preserving insertion order and hit recency.
		e := x.e
		e.seg, e.off, e.len = s.activeID, off, int64(len(s.buf))
		s.index[x.k] = e
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: compact sync: %w", err)
	}
	s.syncDir()

	for _, id := range oldIDs {
		if id >= firstNew {
			continue
		}
		if r, ok := s.readers[id]; ok {
			r.Close()
			delete(s.readers, id)
		}
		if err := os.Remove(s.segPath(id)); err != nil {
			return fmt.Errorf("store: remove compacted segment %d: %w", id, err)
		}
		delete(s.segSize, id)
	}
	s.syncDir()
	s.stats.Compactions++
	return nil
}

// GC evicts live entries — least-recently-re-hit first, oldest-first among
// never-re-hit ones — until the live data size is at most maxBytes, then
// compacts to reclaim the disk space. It returns the number of entries
// evicted. Hit recency is tracked per open store (it is not persisted), so
// immediately after a reopen GC degrades to pure oldest-first.
func (s *Store) GC(maxBytes int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked(maxBytes)
}

func (s *Store) gcLocked(target int64) (int, error) {
	switch {
	case s.closed:
		return 0, ErrClosed
	case s.opt.ReadOnly:
		return 0, ErrReadOnly
	}
	if target < 0 {
		target = 0
	}
	if s.stats.LiveBytes <= target {
		return 0, nil
	}
	type kv struct {
		k Key
		e entry
	}
	live := make([]kv, 0, len(s.index))
	for k, e := range s.index {
		live = append(live, kv{k, e})
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].e.lastHit != live[j].e.lastHit {
			return live[i].e.lastHit < live[j].e.lastHit
		}
		return live[i].e.seq < live[j].e.seq
	})
	evicted := 0
	for _, x := range live {
		if s.stats.LiveBytes <= target {
			break
		}
		delete(s.index, x.k)
		s.stats.LiveBytes -= x.e.len
		s.stats.GCEvicted++
		evicted++
	}
	return evicted, s.compactLocked()
}
