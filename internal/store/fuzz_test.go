package store

// FuzzStoreDecode drives the record decoder and segment scanner with
// arbitrary bytes: whatever a crashed, bit-flipped, or hostile segment
// file contains, decoding must never panic, never over-read, and must
// keep its framing invariants (progress on complete frames, termination
// on torn or unparseable tails). `make fuzz-smoke` runs the committed
// corpus plus a short randomized burst; CI runs the corpus as ordinary
// seed tests via `go test`.

import (
	"bytes"
	"testing"
)

func FuzzStoreDecode(f *testing.F) {
	// Seeds: empty, truncated header, a valid single record, a valid
	// record with a flipped payload byte, an implausible length field,
	// and a valid record followed by a torn one.
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	var k Key
	k[0], k[31] = 0xAB, 0xCD
	rec := appendRecord(nil, k, []byte("stored-value"))
	f.Add(append([]byte(nil), rec...))
	flipped := append([]byte(nil), rec...)
	flipped[frameLen+keyLen] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00})
	torn := append(append([]byte(nil), rec...), rec[:len(rec)/2]...)
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		// decodeRecord: advance and status must be consistent.
		key, val, n, st := decodeRecord(data)
		switch st {
		case recOK, recCorrupt:
			if n < frameLen+keyLen || n > len(data) {
				t.Fatalf("decode advance %d out of range (len %d, status %d)", n, len(data), st)
			}
		case recTorn, recBadLength:
			if n != 0 {
				t.Fatalf("terminal status %d must not advance (n=%d)", st, n)
			}
		default:
			t.Fatalf("unknown status %d", st)
		}
		if st == recOK {
			// A decoded record must re-encode to exactly the bytes scanned.
			if !bytes.Equal(appendRecord(nil, key, val), data[:n]) {
				t.Fatal("decode/encode round trip diverged")
			}
		}

		// scanRecords: offsets must be monotonic, in-bounds, and the
		// reported tail must be exactly where parsing stopped.
		prev := int64(-1)
		tail, dirty := scanRecords(data, func(off int64, _ Key, _ []byte, st recStatus) {
			if off <= prev || off > int64(len(data)) {
				t.Fatalf("scan offset %d not monotonic in-bounds (prev %d)", off, prev)
			}
			prev = off
		})
		if tail < 0 || tail > int64(len(data)) {
			t.Fatalf("scan tail %d out of bounds", tail)
		}
		if !dirty && tail != int64(len(data)) {
			t.Fatalf("clean scan stopped early at %d of %d", tail, len(data))
		}
	})
}
