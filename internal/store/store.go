// Package store implements a persistent, content-addressed result store:
// the L2 of the run layer's cache hierarchy (memo → store → simulate).
//
// Storage format: append-only segment files (seg-NNNNNNNN.rcs) of
// length-prefixed, CRC32C-framed records, each carrying a 32-byte key
// fingerprint and an opaque value. The in-memory index is rebuilt by
// scanning segments in id order on Open (last write per key wins); a torn
// final record — the signature of a crash mid-append — is detected,
// dropped, and truncated away, never fatal, while a bad CRC anywhere else
// (a bit flip at rest) skips just that record and counts it. A single
// writer is enforced with an exclusive flock on the LOCK file (read-only
// opens take a shared lock), segments rotate atomically (O_EXCL create,
// header, fsync, directory fsync), offline compaction rewrites live
// records into fresh segments before deleting the old ones, and an
// optional size cap garbage-collects the least-recently-re-hit entries
// oldest-first.
//
// The package is deliberately generic — keys are fingerprints, values are
// bytes — so it has no dependencies on the simulation packages;
// internal/sim supplies the key derivation and payload codec.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// Sentinel errors.
var (
	ErrNotFound = errors.New("store: key not found")
	ErrCorrupt  = errors.New("store: corrupt record")
	ErrClosed   = errors.New("store: closed")
	ErrReadOnly = errors.New("store: opened read-only")
	ErrLocked   = errors.New("store: locked by another process")
)

// Options configure Open. The zero value is a writable store with an 8 MiB
// segment size and no size cap.
type Options struct {
	// ReadOnly opens without the exclusive writer lock (a shared lock is
	// still taken, so a writer and a read-only opener exclude each other).
	ReadOnly bool

	// MaxSegmentBytes rotates the active segment once it grows past this
	// size. Default 8 MiB.
	MaxSegmentBytes int64

	// MaxBytes caps the live (indexed) data size; exceeding it on Put
	// triggers a GC of least-recently-re-hit entries down to 7/8 of the
	// cap, followed by a compaction. 0 = uncapped.
	MaxBytes int64

	// SyncEveryPut fsyncs the active segment after every append. Off by
	// default: the store is a cache of recomputable results, so the
	// durability contract is "whatever a crash tears off, reopen drops
	// cleanly", not "every append survives power loss".
	SyncEveryPut bool
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	return o
}

// entry locates one live record.
type entry struct {
	seg     uint32
	off     int64 // frame start within the segment file
	len     int64 // full framed length
	seq     uint64 // insertion order, monotonic within one open store
	lastHit uint64 // Get-hit ordinal; 0 = never re-hit since open
}

// Stats is a snapshot of the store counters.
type Stats struct {
	Entries   int   // live keys
	Segments  int   // segment files on disk
	SizeBytes int64 // on-disk bytes across all segments
	LiveBytes int64 // framed bytes of live (indexed) records

	Gets, Hits, Misses uint64
	Puts               uint64
	Superseded         uint64 // puts that replaced an existing key

	CorruptRecords uint64 // CRC failures skipped (open scans + reads)
	TornRecords    uint64 // incomplete tail records dropped on open
	AppendErrors   uint64 // failed or short appends (tail truncated back)

	GCEvicted   uint64 // entries dropped by size-cap GC
	Compactions uint64
}

// Store is an on-disk content-addressed cache. All methods are safe for
// concurrent use; writes are serialized internally (and across processes
// by the flock).
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	lock    *os.File
	index   map[Key]entry
	readers map[uint32]*os.File
	segSize map[uint32]int64 // on-disk size per segment

	active     *os.File
	activeID   uint32
	activeSize int64

	seq    uint64
	hitSeq uint64
	stats  Stats
	closed bool
	buf    []byte // scratch encode buffer

	// writeHook, when set (crash-consistency tests), replaces the active
	// segment write so short writes and mid-append failures can be
	// injected against a real file.
	writeHook func([]byte) (int, error)
}

// SetWriteHook replaces the active-segment write with h (nil restores the
// real file write). It exists for fault-injection tests — including those
// of packages layered above the store — that need to exercise the append
// failure paths against an otherwise real store; production code never
// calls it.
func (s *Store) SetWriteHook(h func([]byte) (int, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeHook = h
}

// Open opens (creating, unless read-only) the store in dir.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if opt.ReadOnly {
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		index:   make(map[Key]entry),
		readers: make(map[uint32]*os.File),
		segSize: make(map[uint32]int64),
	}
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	if err := s.load(); err != nil {
		s.releaseLock()
		return nil, err
	}
	return s, nil
}

// acquireLock takes the single-writer flock: exclusive for writable opens,
// shared for read-only ones.
func (s *Store) acquireLock() error {
	mode := os.O_RDONLY
	if !s.opt.ReadOnly {
		mode = os.O_RDWR | os.O_CREATE
	}
	f, err := os.OpenFile(filepath.Join(s.dir, "LOCK"), mode, 0o644)
	if err != nil {
		if s.opt.ReadOnly && os.IsNotExist(err) {
			// A store that was never written has no LOCK file; nothing to
			// exclude against.
			return nil
		}
		return fmt.Errorf("store: lock file: %w", err)
	}
	how := syscall.LOCK_EX
	if s.opt.ReadOnly {
		how = syscall.LOCK_SH
	}
	if err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB); err != nil {
		f.Close()
		return fmt.Errorf("store: %s: %w", s.dir, ErrLocked)
	}
	s.lock = f
	return nil
}

func (s *Store) releaseLock() {
	if s.lock != nil {
		_ = syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
		s.lock.Close()
		s.lock = nil
	}
}

// segPath returns the path of segment id.
func (s *Store) segPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.rcs", id))
}

// segIDs lists the segment ids present on disk, sorted ascending.
func (s *Store) segIDs() ([]uint32, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.rcs"))
	if err != nil {
		return nil, err
	}
	ids := make([]uint32, 0, len(names))
	for _, name := range names {
		var id uint32
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%08d.rcs", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// load rebuilds the index by scanning every segment in id order (the last
// record per key wins) and prepares the active segment for appends.
func (s *Store) load() error {
	ids, err := s.segIDs()
	if err != nil {
		return fmt.Errorf("store: list segments: %w", err)
	}
	for i, id := range ids {
		last := i == len(ids)-1
		if err := s.loadSegment(id, last); err != nil {
			return err
		}
	}
	if s.opt.ReadOnly {
		return nil
	}
	if len(ids) == 0 {
		return s.rotateLocked()
	}
	// Reopen the newest segment for appending (its torn tail, if any, was
	// truncated by loadSegment).
	id := ids[len(ids)-1]
	if s.segSize[id] < segMagicLen {
		// A crash between segment creation and its header write left a
		// headerless file; replace it wholesale.
		if err := os.Remove(s.segPath(id)); err != nil {
			return fmt.Errorf("store: remove headerless segment %d: %w", id, err)
		}
		delete(s.segSize, id)
		s.activeID = id - 1
		return s.rotateLocked()
	}
	f, err := os.OpenFile(s.segPath(id), os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen segment %d: %w", id, err)
	}
	if _, err := f.Seek(s.segSize[id], 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seek segment %d: %w", id, err)
	}
	s.active, s.activeID, s.activeSize = f, id, s.segSize[id]
	return nil
}

// loadSegment scans one segment into the index. A torn or unparseable tail
// is dropped (and truncated away when the segment is the newest one of a
// writable store, so appends resume at a clean frame boundary).
func (s *Store) loadSegment(id uint32, last bool) error {
	data, err := os.ReadFile(s.segPath(id))
	if err != nil {
		return fmt.Errorf("store: read segment %d: %w", id, err)
	}
	good := int64(0)
	if len(data) < segMagicLen || [segMagicLen]byte(data[:segMagicLen]) != segMagic {
		// A foreign or torn-at-birth file. An empty or partial header on
		// the newest segment is a crash between create and header write;
		// anything else is treated as one big corrupt record.
		if int64(len(data)) > 0 {
			if last {
				s.stats.TornRecords++
			} else {
				s.stats.CorruptRecords++
			}
		}
	} else {
		body := data[segMagicLen:]
		tail, dirty := scanRecords(body, func(off int64, key Key, val []byte, st recStatus) {
			switch st {
			case recOK:
				s.indexPut(key, entry{
					seg: id,
					off: segMagicLen + off,
					len: recordLen(len(val)),
				})
			case recCorrupt:
				s.stats.CorruptRecords++
			case recTorn:
				s.stats.TornRecords++
			case recBadLength:
				s.stats.CorruptRecords++
			}
		})
		good = segMagicLen + tail
		if dirty && !last {
			// Mid-chain segments are never appended to again; their dirty
			// tails stay on disk until compaction rewrites them.
			good = int64(len(data))
		}
	}
	if !s.opt.ReadOnly && last && good < int64(len(data)) {
		if err := os.Truncate(s.segPath(id), good); err != nil {
			return fmt.Errorf("store: truncate torn tail of segment %d: %w", id, err)
		}
	} else if good < int64(len(data)) {
		good = int64(len(data))
	}
	s.segSize[id] = good
	return nil
}

// indexPut records a live entry, assigning its insertion sequence and
// retiring any superseded predecessor.
func (s *Store) indexPut(k Key, e entry) {
	if old, ok := s.index[k]; ok {
		s.stats.Superseded++
		s.stats.LiveBytes -= old.len
	}
	s.seq++
	e.seq = s.seq
	s.index[k] = e
	s.stats.LiveBytes += e.len
}

// rotateLocked syncs and closes the active segment and atomically starts
// the next one: O_EXCL create, magic header, fsync, directory fsync.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: sync segment %d: %w", s.activeID, err)
		}
		s.active.Close()
		s.active = nil
	}
	id := s.activeID + 1
	f, err := os.OpenFile(s.segPath(id), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment %d: %w", id, err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: write segment %d header: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync segment %d header: %w", id, err)
	}
	s.syncDir()
	s.active, s.activeID, s.activeSize = f, id, segMagicLen
	s.segSize[id] = segMagicLen
	return nil
}

// syncDir fsyncs the store directory (best effort) so segment creations
// and deletions are durable.
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Get returns the value stored under k. The record's CRC is re-verified on
// every read, so a bit flip at rest surfaces as ErrCorrupt (counted, and
// the entry is dropped from the index) rather than as silently wrong
// bytes. A missing key returns ErrNotFound.
func (s *Store) Get(k Key) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.Gets++
	e, ok := s.index[k]
	if !ok {
		s.stats.Misses++
		return nil, ErrNotFound
	}
	val, err := s.readLocked(k, e)
	if err != nil {
		s.stats.Misses++
		return nil, err
	}
	s.stats.Hits++
	s.hitSeq++
	e.lastHit = s.hitSeq
	s.index[k] = e
	return val, nil
}

// readLocked reads and CRC-checks one record, evicting it on corruption.
func (s *Store) readLocked(k Key, e entry) ([]byte, error) {
	r, err := s.readerLocked(e.seg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, e.len)
	if _, err := r.ReadAt(buf, e.off); err != nil {
		s.dropCorrupt(k, e)
		return nil, fmt.Errorf("%w: segment %d offset %d: %v", ErrCorrupt, e.seg, e.off, err)
	}
	key, val, _, st := decodeRecord(buf)
	if st != recOK || key != k {
		s.dropCorrupt(k, e)
		return nil, fmt.Errorf("%w: segment %d offset %d", ErrCorrupt, e.seg, e.off)
	}
	out := make([]byte, len(val))
	copy(out, val)
	return out, nil
}

func (s *Store) dropCorrupt(k Key, e entry) {
	s.stats.CorruptRecords++
	delete(s.index, k)
	s.stats.LiveBytes -= e.len
}

// readerLocked returns (opening lazily) the read handle for a segment.
func (s *Store) readerLocked(id uint32) (*os.File, error) {
	if r, ok := s.readers[id]; ok {
		return r, nil
	}
	r, err := os.Open(s.segPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: open segment %d: %w", id, err)
	}
	s.readers[id] = r
	return r, nil
}

// Put appends (k, v), superseding any previous value for k. A failed or
// short append truncates the segment back to its pre-append size, so one
// bad write never leaves a torn frame in front of later appends.
func (s *Store) Put(k Key, v []byte) error {
	if len(v) > MaxValueBytes {
		return fmt.Errorf("store: value of %d bytes exceeds %d", len(v), MaxValueBytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.opt.ReadOnly:
		return ErrReadOnly
	}
	if s.activeSize >= s.opt.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	s.buf = appendRecord(s.buf[:0], k, v)
	off := s.activeSize
	write := s.active.Write
	if s.writeHook != nil {
		write = s.writeHook
	}
	n, err := write(s.buf)
	if err != nil || n < len(s.buf) {
		s.stats.AppendErrors++
		// Truncate alone is not enough: the file's write offset still sits
		// past the bytes that did land, so the next append would leave a
		// zero-filled hole. Seek back to the pre-append position too.
		terr := s.active.Truncate(off)
		if terr == nil {
			_, terr = s.active.Seek(off, 0)
		}
		if terr != nil {
			// The torn tail could not be cut back; abandon the segment so
			// later appends land on a clean one (reopen would drop the
			// tail anyway).
			_ = s.rotateLocked()
		}
		if err == nil {
			err = fmt.Errorf("short write: %d of %d bytes", n, len(s.buf))
		}
		return fmt.Errorf("store: append: %w", err)
	}
	s.activeSize += int64(n)
	s.segSize[s.activeID] = s.activeSize
	if s.opt.SyncEveryPut {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	s.indexPut(k, entry{seg: s.activeID, off: off, len: int64(len(s.buf))})
	s.stats.Puts++
	if s.opt.MaxBytes > 0 && s.stats.LiveBytes > s.opt.MaxBytes {
		// Evict below the cap with headroom so a hot store does not GC on
		// every append.
		target := s.opt.MaxBytes - s.opt.MaxBytes/8
		if _, err := s.gcLocked(target); err != nil {
			return fmt.Errorf("store: size-cap gc: %w", err)
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.active == nil {
		return nil
	}
	return s.active.Sync()
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Store) statsLocked() Stats {
	st := s.stats
	st.Entries = len(s.index)
	st.Segments = len(s.segSize)
	st.SizeBytes = 0
	for _, n := range s.segSize {
		st.SizeBytes += n
	}
	return st
}

// Close syncs the active segment and releases every handle and the lock.
// Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.active != nil {
		if serr := s.active.Sync(); serr != nil {
			err = serr
		}
		s.active.Close()
		s.active = nil
	}
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = nil
	s.releaseLock()
	return err
}

// EntryInfo describes one live entry for admin tooling.
type EntryInfo struct {
	Key     Key
	Segment uint32
	Offset  int64
	Len     int64 // framed record bytes
	LastHit uint64
}

// Entries returns the live entries in insertion order.
func (s *Store) Entries() []EntryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	type kv struct {
		k Key
		e entry
	}
	all := make([]kv, 0, len(s.index))
	for k, e := range s.index {
		all = append(all, kv{k, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.seq < all[j].e.seq })
	out := make([]EntryInfo, len(all))
	for i, x := range all {
		out[i] = EntryInfo{Key: x.k, Segment: x.e.seg, Offset: x.e.off, Len: x.e.len, LastHit: x.e.lastHit}
	}
	return out
}

// Range calls fn for every live entry in insertion order, stopping early
// if fn returns false. Entries that fail their read-time CRC check are
// skipped (and counted), not fatal.
func (s *Store) Range(fn func(k Key, v []byte) bool) error {
	s.mu.Lock()
	type kv struct {
		k Key
		e entry
	}
	all := make([]kv, 0, len(s.index))
	for k, e := range s.index {
		all = append(all, kv{k, e})
	}
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].e.seq < all[j].e.seq })
	for _, x := range all {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		cur, ok := s.index[x.k]
		var val []byte
		var err error
		if ok && cur.seq == x.e.seq {
			val, err = s.readLocked(x.k, cur)
		}
		s.mu.Unlock()
		if !ok || err != nil {
			continue
		}
		if !fn(x.k, val) {
			return nil
		}
	}
	return nil
}
