package store

// Record framing for the append-only segment files. Every record is a
// length-prefixed, CRC32C-protected frame:
//
//	offset  size  field
//	0       4     payload length (little endian): key + value bytes
//	4       4     CRC32C (Castagnoli) over the length field and the payload
//	8       32    key (content fingerprint)
//	40      n     value
//
// The CRC covers the length bytes too, so a bit flip in the length field is
// detected at the (mis-)parsed frame boundary instead of silently
// re-framing the rest of the segment. Decoding distinguishes three failure
// shapes, each with its own recovery rule:
//
//   - recCorrupt: the frame is complete but its CRC does not match — a bit
//     flip at rest. The record is skipped (its length field delimits the
//     frame) and counted; scanning continues at the next frame.
//   - recTorn: fewer bytes remain than the frame claims — the torn final
//     record of a crashed append. It is dropped, never fatal, and the
//     segment tail is truncated back to the last good frame on reopen.
//   - recBadLength: the length field itself is implausible, so there is no
//     trustworthy frame boundary to resync at; scanning the segment stops.

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
)

// Key is a content fingerprint addressing one stored value — for the run
// layer, a SHA-256 over the canonical (scheme, benchmark, options,
// simulator-version) encoding.
type Key [32]byte

// String renders the key as lowercase hex — the wire form used by the
// fleet's /v1/store/{key} peer-lookup endpoint.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex wire form back into a Key.
func ParseKey(s string) (Key, error) {
	var k Key
	if len(s) != hex.EncodedLen(len(k)) {
		return k, fmt.Errorf("store: key %q: want %d hex chars", s, hex.EncodedLen(len(k)))
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return k, fmt.Errorf("store: key %q: %w", s, err)
	}
	return k, nil
}

const (
	segMagicLen = 8
	frameLen    = 8 // 4-byte payload length + 4-byte CRC32C
	keyLen      = len(Key{})

	// MaxValueBytes bounds a single stored value. Results are a few KiB of
	// JSON; the bound exists so a corrupted length field cannot demand an
	// absurd allocation during a scan.
	MaxValueBytes = 16 << 20
)

// segMagic identifies a segment file and its format version; bump the
// trailing digits on any incompatible framing change.
var segMagic = [segMagicLen]byte{'R', 'C', 'S', 'T', 'O', 'R', '0', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends the framed encoding of (key, val) to buf and
// returns the extended slice.
func appendRecord(buf []byte, key Key, val []byte) []byte {
	plen := keyLen + len(val)
	var hdr [frameLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(plen))
	crc := crc32.Update(0, castagnoli, hdr[0:4])
	crc = crc32.Update(crc, castagnoli, key[:])
	crc = crc32.Update(crc, castagnoli, val)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, key[:]...)
	buf = append(buf, val...)
	return buf
}

// recordLen returns the framed size of a value.
func recordLen(valBytes int) int64 { return int64(frameLen + keyLen + valBytes) }

type recStatus int

const (
	recOK recStatus = iota
	recCorrupt
	recTorn
	recBadLength
)

// decodeRecord parses the first record in data. On recOK and recCorrupt, n
// is the full framed length to advance by; on recTorn and recBadLength, n
// is zero and the caller must stop scanning. The returned value slice
// aliases data.
func decodeRecord(data []byte) (key Key, val []byte, n int, st recStatus) {
	if len(data) < frameLen {
		return key, nil, 0, recTorn
	}
	plen := int(binary.LittleEndian.Uint32(data[0:4]))
	if plen < keyLen || plen > keyLen+MaxValueBytes {
		return key, nil, 0, recBadLength
	}
	if len(data) < frameLen+plen {
		return key, nil, 0, recTorn
	}
	want := binary.LittleEndian.Uint32(data[4:8])
	payload := data[frameLen : frameLen+plen]
	crc := crc32.Update(0, castagnoli, data[0:4])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return key, nil, frameLen + plen, recCorrupt
	}
	copy(key[:], payload[:keyLen])
	return key, payload[keyLen:], frameLen + plen, recOK
}

// scanRecords walks every frame in a segment buffer (magic header already
// stripped) and reports each to fn with its offset relative to the buffer
// start. It returns the offset of the first byte that could not be parsed
// as a complete frame — the truncation point for torn-tail recovery — and
// whether the scan ended on a torn or unparseable tail rather than cleanly.
func scanRecords(data []byte, fn func(off int64, key Key, val []byte, st recStatus)) (tail int64, dirty bool) {
	off := 0
	for off < len(data) {
		key, val, n, st := decodeRecord(data[off:])
		switch st {
		case recOK, recCorrupt:
			fn(int64(off), key, val, st)
			off += n
		default: // recTorn, recBadLength
			fn(int64(off), key, val, st)
			return int64(off), true
		}
	}
	return int64(off), false
}
