package usepred

import (
	"testing"

	"regcache/internal/isa"
	"regcache/internal/prog"
)

func TestColdPredictorDeclines(t *testing.T) {
	p := New(Config{})
	if _, ok := p.Predict(0x1000, 0); ok {
		t.Fatal("cold predictor should not supply a prediction")
	}
}

func TestLearnsStableDegree(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 5; i++ {
		p.Train(0x1000, 7, 2)
	}
	got, ok := p.Predict(0x1000, 7)
	if !ok || got != 2 {
		t.Fatalf("predict = %d,%v, want 2,true", got, ok)
	}
}

func TestSignatureDistinguishesPaths(t *testing.T) {
	// Same PC, two signatures with different degrees: both must be learned
	// independently (this is the point of the control-flow signature).
	p := New(Config{})
	for i := 0; i < 5; i++ {
		p.Train(0x2000, 1, 1)
		p.Train(0x2000, 2, 3)
	}
	if got, ok := p.Predict(0x2000, 1); !ok || got != 1 {
		t.Errorf("sig 1: predict = %d,%v, want 1", got, ok)
	}
	if got, ok := p.Predict(0x2000, 2); !ok || got != 3 {
		t.Errorf("sig 2: predict = %d,%v, want 3", got, ok)
	}
}

func TestConfidenceHysteresis(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 4; i++ {
		p.Train(0x3000, 0, 1) // confidence saturates at 3
	}
	// One contrary observation decays confidence but keeps the prediction.
	p.Train(0x3000, 0, 5)
	if got, ok := p.Predict(0x3000, 0); !ok || got != 1 {
		t.Fatalf("after one outlier: predict = %d,%v, want 1 (retained)", got, ok)
	}
	// Sustained contrary observations eventually replace it.
	for i := 0; i < 5; i++ {
		p.Train(0x3000, 0, 5)
	}
	if got, ok := p.Predict(0x3000, 0); !ok || got != 5 {
		t.Fatalf("after sustained change: predict = %d,%v, want 5", got, ok)
	}
}

func TestSaturatesAt4Bits(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 5; i++ {
		p.Train(0x4000, 0, 1000)
	}
	got, ok := p.Predict(0x4000, 0)
	if !ok || got != 15 {
		t.Fatalf("predict = %d,%v, want saturated 15", got, ok)
	}
}

func TestReplacementPrefersLRU(t *testing.T) {
	// Fill one set beyond capacity with distinct tags; the oldest entry is
	// evicted while recently touched ones survive.
	p := New(Config{Entries: 8, Ways: 4})
	// All these PCs map to set 0 of 2 sets (index = pc>>2 & 1).
	pcs := []uint64{0x0 << 13, 0x1 << 13, 0x2 << 13, 0x3 << 13} // distinct tag bits
	for i, pc := range pcs {
		for j := 0; j < 3; j++ {
			p.Train(pc<<0, 0, i+1)
		}
	}
	// Touch the first three, then insert a fifth mapping to the same set.
	for _, pc := range pcs[1:] {
		p.Predict(pc, 0)
	}
	p.Train(uint64(0x4<<13), 0, 9)
	if _, ok := p.Predict(pcs[0], 0); ok {
		t.Error("LRU entry should have been evicted")
	}
	if got, ok := p.Predict(pcs[1], 0); !ok || got != 2 {
		t.Errorf("recently used entry lost: %d,%v", got, ok)
	}
}

func TestAccuracyAndCoverageCounters(t *testing.T) {
	p := New(Config{})
	p.Train(0x5000, 0, 2)
	p.Train(0x5000, 0, 2) // matches prior prediction → Correct++
	if p.Accuracy() != 0.5 {
		t.Errorf("accuracy = %v, want 0.5 (1 of 2 trainings matched)", p.Accuracy())
	}
	p.Predict(0x5000, 0)
	p.Predict(0x9999000, 0)
	if p.Coverage() != 0.5 {
		t.Errorf("coverage = %v, want 0.5", p.Coverage())
	}
}

// End-to-end: on a generated workload, measure architectural degree-of-use
// predictability the same way the pipeline will use it (predict at def,
// train at redefinition). The paper reports ~97% average accuracy; the
// synthetic suite should be in that neighbourhood.
func TestAccuracyOnGeneratedWorkload(t *testing.T) {
	prof, _ := prog.ProfileByName("gzip")
	pg := prog.MustGenerate(prof)
	e := prog.NewExec(pg)
	p := New(Config{})

	type defInfo struct {
		pc    uint64
		sig   uint64
		reads int
		live  bool
	}
	var defs [isa.NumArchRegs]defInfo
	var hist uint64

	var predicted, correct uint64
	for i := 0; i < 300_000; i++ {
		in := pg.InstAt(e.PC())
		s := e.StepInst(in)
		for _, r := range [...]isa.Reg{in.Src1, in.Src2} {
			if r != isa.RegNone && !r.IsZeroReg() {
				defs[r.Index()].reads++
			}
		}
		if in.HasDest() {
			d := &defs[in.Dest.Index()]
			if d.live {
				// Redefinition: train, and score the prediction made at def.
				if pred, ok := p.Predict(d.pc, d.sig); ok {
					predicted++
					actual := d.reads
					if actual > 15 {
						actual = 15
					}
					if int(pred) == actual {
						correct++
					}
				}
				p.Train(d.pc, d.sig, d.reads)
			}
			*d = defInfo{pc: in.PC, sig: hist, reads: 0, live: true}
		}
		if in.Op.IsCond() {
			hist = (hist << 1) | b2u(s.Taken)
		}
	}
	if predicted < 1000 {
		t.Fatalf("too few predictions scored: %d", predicted)
	}
	acc := float64(correct) / float64(predicted)
	t.Logf("gzip: degree-of-use accuracy %.3f over %d predictions", acc, predicted)
	if acc < 0.85 {
		t.Errorf("accuracy %.3f too low (paper reports ~0.97)", acc)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
