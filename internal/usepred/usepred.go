// Package usepred implements the degree-of-use predictor of Butts & Sohi
// ("Characterizing and predicting value degree of use", MICRO 2002), the
// paper's reference [5], in the Table 1 configuration: 4K entries, 4-way
// set-associative, 6-bit tags, 4-bit predictions, 2-bit confidence, and a
// 6-bit control-flow signature qualifying each entry.
//
// The signature substitutes global branch history at the producing
// instruction's rename for the original's future-control-flow bits: in the
// loop-dominated regions where degree of use varies by path, the recent
// history determines the future path almost as sharply, and the pipeline
// has it available at rename time without delaying prediction. Because raw
// history is far less selective than the original's distilled
// future-control-flow encoding, the default matches only the low 3 bits —
// using all 6 fragments the training space across unrelated histories and
// costs ~15% accuracy on branchy workloads. Entries still reserve 6
// signature bits of storage, as in Table 1. (See DESIGN.md.)
package usepred

// Config sizes the predictor. Zero values select the Table 1 defaults.
type Config struct {
	Entries  int   // total entries (power of two); default 4096
	Ways     int   // associativity; default 4
	ConfMax  uint8 // confidence saturation; default 3 (2-bit)
	ConfMin  uint8 // confidence required to supply a prediction; default 1
	MaxCount uint8 // prediction saturation; default 15 (4-bit)
	SigBits  int   // control-flow signature bits matched per entry; default 3
}

func (c Config) withDefaults() Config {
	if c.Entries == 0 {
		c.Entries = 4096
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	if c.ConfMax == 0 {
		c.ConfMax = 3
	}
	if c.ConfMin == 0 {
		c.ConfMin = 1
	}
	if c.MaxCount == 0 {
		c.MaxCount = 15
	}
	if c.SigBits == 0 {
		c.SigBits = 3
	}
	return c
}

type entry struct {
	tag   uint8 // 6-bit partial PC
	sig   uint8 // 6-bit control-flow signature
	pred  uint8 // 4-bit degree-of-use prediction (saturating)
	conf  uint8 // 2-bit confidence
	valid bool
	lru   uint32
}

// Predictor is the degree-of-use predictor. It is looked up at rename for
// every register-writing instruction and trained when the corresponding
// physical register is freed (at which point the true use count is known).
type Predictor struct {
	cfg   Config
	sets  [][]entry
	clock uint32

	// Statistics.
	Lookups     uint64
	Hits        uint64 // confident prediction supplied
	TrainEvents uint64
	Correct     uint64 // trained value matched the prior prediction
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	nsets := cfg.Entries / cfg.Ways
	sets := make([][]entry, nsets)
	backing := make([]entry, cfg.Entries)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Predictor{cfg: cfg, sets: sets}
}

func (p *Predictor) index(pc uint64) int {
	return int((pc >> 2) & uint64(len(p.sets)-1))
}

func tag6(pc uint64) uint8 {
	nbits := 6
	return uint8((pc >> (2 + 10)) & ((1 << nbits) - 1))
}

func (p *Predictor) sigOf(sig uint64) uint8 { return uint8(sig & ((1 << uint(p.cfg.SigBits)) - 1)) }

// Predict returns the predicted degree of use for the value produced by
// the instruction at pc under control-flow signature sig. ok is false when
// the predictor has no confident entry (the pipeline then applies the
// unknown default).
func (p *Predictor) Predict(pc uint64, sig uint64) (count uint8, ok bool) {
	p.Lookups++
	set := p.sets[p.index(pc)]
	t, s := tag6(pc), p.sigOf(sig)
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == t && e.sig == s {
			p.clock++
			e.lru = p.clock
			if e.conf >= p.cfg.ConfMin {
				p.Hits++
				return e.pred, true
			}
			return 0, false
		}
	}
	return 0, false
}

// Train records the true degree of use for the value produced at pc under
// signature sig. Counts above the 4-bit maximum saturate.
func (p *Predictor) Train(pc uint64, sig uint64, actual int) {
	p.TrainEvents++
	if actual > int(p.cfg.MaxCount) {
		actual = int(p.cfg.MaxCount)
	}
	a := uint8(actual)
	set := p.sets[p.index(pc)]
	t, s := tag6(pc), p.sigOf(sig)
	p.clock++
	// Hit: reinforce or decay.
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == t && e.sig == s {
			e.lru = p.clock
			if e.pred == a {
				p.Correct++
				if e.conf < p.cfg.ConfMax {
					e.conf++
				}
			} else if e.conf > 1 {
				e.conf--
			} else {
				e.pred = a
				e.conf = 1
			}
			return
		}
	}
	// Miss: allocate, preferring invalid then LRU entries.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{tag: t, sig: s, pred: a, conf: 1, valid: true, lru: p.clock}
}

// Accuracy returns the fraction of training events whose value matched the
// previously stored prediction (the paper reports 97% on average).
func (p *Predictor) Accuracy() float64 {
	if p.TrainEvents == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.TrainEvents)
}

// Coverage returns the fraction of lookups that produced a confident
// prediction.
func (p *Predictor) Coverage() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Lookups)
}

// ThreadPC salts a program counter with the hardware context id, giving
// each context its own predictor signature space so interleaved threads
// running the same static code do not train each other's entries. Context
// 0 is the identity, keeping single-context runs bit-identical to the
// pre-multithreading pipeline. The salt lands above any generated PC
// (bits 48+) so it can never collide with a real address.
func ThreadPC(pc uint64, tid int) uint64 {
	return pc ^ uint64(uint32(tid))<<48
}
