package usepred

import (
	"fmt"
	"testing"
)

// TestTrainPredictRoundTrip trains every representable degree of use at a
// distinct PC and reads each back: one train establishes the entry at
// confidence 1, which meets the default ConfMin, so the prediction must be
// supplied and exact across the whole 4-bit range.
func TestTrainPredictRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{},                                // Table 1 defaults
		{Entries: 256, Ways: 2},           // small and shallow
		{Entries: 64, Ways: 1},            // direct-mapped
		{Entries: 4096, Ways: 4, SigBits: 6}, // full-signature variant
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("e%dw%d", cfg.Entries, cfg.Ways), func(t *testing.T) {
			p := New(cfg)
			const sig = 0x5
			// Distinct set per count: stride by one set (4 bytes << nothing;
			// index uses pc>>2, so stride 4 advances one set).
			pc := func(count int) uint64 { return 0x1000 + uint64(count)*4 }
			for c := 0; c <= 15; c++ {
				p.Train(pc(c), sig, c)
			}
			for c := 0; c <= 15; c++ {
				got, ok := p.Predict(pc(c), sig)
				if !ok {
					t.Errorf("count %d: no confident prediction after training", c)
					continue
				}
				if int(got) != c {
					t.Errorf("count %d: predicted %d", c, got)
				}
			}
		})
	}
}

// TestTrainSaturation checks that out-of-range training values clamp to the
// configured saturation point rather than wrapping the 4-bit counter.
func TestTrainSaturation(t *testing.T) {
	cases := []struct {
		cfg    Config
		actual int
		want   uint8
	}{
		{Config{}, 15, 15},
		{Config{}, 16, 15},
		{Config{}, 1000, 15},
		{Config{MaxCount: 7}, 8, 7},
		{Config{MaxCount: 7}, 7, 7},
		{Config{MaxCount: 3}, 200, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("max%d_actual%d", tc.cfg.withDefaults().MaxCount, tc.actual), func(t *testing.T) {
			p := New(tc.cfg)
			const pc, sig = 0x2000, 0x1
			p.Train(pc, sig, tc.actual)
			got, ok := p.Predict(pc, sig)
			if !ok {
				t.Fatalf("no prediction after training")
			}
			if got != tc.want {
				t.Errorf("Predict = %d, want %d (actual %d)", got, tc.want, tc.actual)
			}
		})
	}
}

// TestTagAliasing demonstrates the destructive aliasing the 6-bit partial
// tags admit: two producers whose PCs agree in the index and tag bits but
// differ above them are indistinguishable, so the second's training
// overwrites the first's entry. This is a modeled property of the Table 1
// configuration (finite tags), not a bug — the test pins the behaviour so
// an accidental change to the hash widths shows up.
func TestTagAliasing(t *testing.T) {
	p := New(Config{}) // 4096/4 = 1024 sets: index = pc[2..11], tag = pc[12..17]
	const sig = 0x3
	pcA := uint64(0x1000)
	pcB := pcA + (1 << 18) // differs only above the tag bits -> same entry
	pcC := pcA + (1 << 12) // differs inside the tag bits -> distinct entry

	p.Train(pcA, sig, 4)
	if got, ok := p.Predict(pcB, sig); !ok || got != 4 {
		t.Fatalf("aliased PC %#x: got (%d,%v), want pcA's entry (4,true)", pcB, got, ok)
	}

	// Retraining through the alias with a different count perturbs pcA's
	// entry (first mismatch decays confidence; second rewrites).
	p.Train(pcB, sig, 9)
	p.Train(pcB, sig, 9)
	if got, ok := p.Predict(pcA, sig); ok && got == 4 {
		t.Fatalf("pcA still predicts 4 after aliased retraining; tags wider than modeled?")
	}

	// A PC differing within the tag bits must NOT alias.
	p.Train(pcC, sig, 2)
	p.Train(pcA, sig, 4)
	p.Train(pcA, sig, 4)
	if got, ok := p.Predict(pcC, sig); !ok || got != 2 {
		t.Errorf("distinct-tag PC %#x: got (%d,%v), want (2,true)", pcC, got, ok)
	}
}

// TestSignatureBitsMask checks that only the configured low signature bits
// participate in matching: histories differing above SigBits share an
// entry, histories differing within it do not.
func TestSignatureBitsMask(t *testing.T) {
	p := New(Config{SigBits: 3})
	const pc = 0x3000
	p.Train(pc, 0b001, 5)
	if got, ok := p.Predict(pc, 0b111_001); !ok || got != 5 {
		t.Errorf("signature masked to 3 bits should match: got (%d,%v)", got, ok)
	}
	if _, ok := p.Predict(pc, 0b010); ok {
		t.Errorf("signature differing in low bits matched")
	}
}

// TestConfidenceThreshold drives the decay path: a mismatch first lowers
// confidence below a ConfMin=2 threshold (prediction withheld), and
// repeated agreement restores it.
func TestConfidenceThreshold(t *testing.T) {
	p := New(Config{ConfMin: 2, ConfMax: 3})
	const pc, sig = 0x4000, 0x0
	p.Train(pc, sig, 6)
	if _, ok := p.Predict(pc, sig); ok {
		t.Fatalf("conf=1 entry supplied a prediction with ConfMin=2")
	}
	p.Train(pc, sig, 6) // conf 2
	if got, ok := p.Predict(pc, sig); !ok || got != 6 {
		t.Fatalf("conf=2 entry withheld: got (%d,%v)", got, ok)
	}
	p.Train(pc, sig, 1) // mismatch: conf 2 -> 1
	if _, ok := p.Predict(pc, sig); ok {
		t.Fatalf("decayed entry still confident")
	}
	p.Train(pc, sig, 6) // conf 1 and pred still 6: mismatch path rewrites only at conf<=1
	p.Train(pc, sig, 6)
	if got, ok := p.Predict(pc, sig); !ok || got != 6 {
		t.Fatalf("entry did not recover: got (%d,%v)", got, ok)
	}
}

// TestStatsCounters pins the Lookups/Hits/TrainEvents/Correct bookkeeping
// the pipeline's Accuracy/Coverage results are computed from.
func TestStatsCounters(t *testing.T) {
	p := New(Config{})
	const pc, sig = 0x5000, 0x2
	p.Predict(pc, sig)   // miss
	p.Train(pc, sig, 3)  // allocate
	p.Predict(pc, sig)   // confident hit
	p.Train(pc, sig, 3)  // correct
	p.Train(pc, sig, 4)  // incorrect
	if p.Lookups != 2 || p.Hits != 1 {
		t.Errorf("Lookups/Hits = %d/%d, want 2/1", p.Lookups, p.Hits)
	}
	if p.TrainEvents != 3 || p.Correct != 1 {
		t.Errorf("TrainEvents/Correct = %d/%d, want 3/1", p.TrainEvents, p.Correct)
	}
	if acc := p.Accuracy(); acc <= 0.33 || acc >= 0.34 {
		t.Errorf("Accuracy = %v, want 1/3", acc)
	}
	if cov := p.Coverage(); cov != 0.5 {
		t.Errorf("Coverage = %v, want 0.5", cov)
	}
	empty := New(Config{})
	if empty.Accuracy() != 0 || empty.Coverage() != 0 {
		t.Errorf("empty predictor reports nonzero accuracy/coverage")
	}
}
