package explore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"regcache/internal/sim"
)

// evalCall records one rung evaluation the scripted backend served.
type evalCall struct {
	insts   uint64
	schemes []string
}

// scriptedEval returns an Evaluator that synthesizes a deterministic
// sweep document: every (scheme, bench) run reports IPC = score(scheme).
// Calls are recorded so tests can assert the exact rung schedule.
func scriptedEval(calls *[]evalCall, score func(sim.Scheme) float64) Evaluator {
	return func(ctx context.Context, cands []Candidate, insts uint64) (*sim.ResultsFile, error) {
		names := make([]string, len(cands))
		var runs []sim.RunRecord
		for i, c := range cands {
			sc := c.Scheme
			names[i] = sc.Name
			for _, b := range []string{"gzip", "mcf"} {
				runs = append(runs, sim.RunRecord{
					Scheme: sim.NewSchemeRecord(sc), Bench: b, Insts: insts,
					Cycles: 1, Retired: 1, IPC: score(sc),
				})
			}
		}
		*calls = append(*calls, evalCall{insts: insts, schemes: names})
		return &sim.ResultsFile{SchemaVersion: sim.ResultsSchemaVersion, Generator: "test", Runs: runs}, nil
	}
}

// entriesScore favors bigger caches, so halving's survivor set at every
// rung is predictable: the largest-entry candidates win.
func entriesScore(sc sim.Scheme) float64 { return float64(sc.Cache.Entries) }

func benches() []string { return []string{"gzip", "mcf"} }

// eightCandidates is a 8-candidate space: entries {8,16,32,64} × index
// {preg, filtered}.
func eightCandidates() Spec {
	return Spec{
		Space: Space{
			Entries: Axis{Values: []int{8, 16, 32, 64}},
			Ways:    Axis{Values: []int{1}},
			Index:   []string{"preg", "filtered"},
		},
	}
}

// TestHalvingScheduleExact pins the whole halving mechanism: budgets
// eta-spaced up to the full budget, survivor quotas applied exactly, the
// strongest candidates advancing, and elimination provenance recorded.
func TestHalvingScheduleExact(t *testing.T) {
	spec := eightCandidates()
	spec.Strategy = StrategyHalving
	spec.Insts = 8000
	spec.MinInsts = 1000
	spec.Eta = 2

	var calls []evalCall
	res, err := Run(context.Background(), Config{
		Spec: spec, Benches: benches(),
		Eval: scriptedEval(&calls, entriesScore),
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Generator = "test"

	wantRungs := []RungRecord{
		{Rung: 0, Insts: 1000, Candidates: 8, Survivors: 4},
		{Rung: 1, Insts: 2000, Candidates: 4, Survivors: 2},
		{Rung: 2, Insts: 4000, Candidates: 2, Survivors: 1},
		{Rung: 3, Insts: 8000, Candidates: 1, Survivors: 1},
	}
	if !reflect.DeepEqual(res.Rungs, wantRungs) {
		t.Fatalf("rungs %+v, want %+v", res.Rungs, wantRungs)
	}
	if len(calls) != 4 {
		t.Fatalf("%d evaluator calls, want 4", len(calls))
	}
	for r, c := range calls {
		if c.insts != wantRungs[r].Insts || len(c.schemes) != wantRungs[r].Candidates {
			t.Fatalf("call %d: %d schemes at %d insts, want %d at %d",
				r, len(c.schemes), c.insts, wantRungs[r].Candidates, wantRungs[r].Insts)
		}
	}
	// Rung 1 must be exactly the four 32/64-entry candidates (the top
	// half by objective), evaluated in candidate-index order.
	want1 := []string{"use-32x1-preg", "use-32x1-filtered", "use-64x1-preg", "use-64x1-filtered"}
	if !reflect.DeepEqual(calls[1].schemes, want1) {
		t.Fatalf("rung 1 evaluated %v, want %v", calls[1].schemes, want1)
	}

	// Elimination provenance: the 8-entry pair and 16-entry pair die at
	// rung 0, 32s at rung 1, one 64 at rung 2 (index tie-break), one wins.
	byName := make(map[string]PointRecord)
	for _, p := range res.Points {
		byName[p.Scheme.Name] = p
	}
	for name, rung := range map[string]int{
		"use-8x1-preg": 0, "use-16x1-filtered": 0,
		"use-32x1-preg": 1, "use-32x1-filtered": 1,
		"use-64x1-filtered": 2, // equal objective: lower index survives
	} {
		p := byName[name]
		if p.Status != StatusEliminated || p.EliminatedAtRung != rung || p.LastRung != rung {
			t.Errorf("%s: status %s eliminated@%d last@%d, want eliminated@%d",
				name, p.Status, p.EliminatedAtRung, p.LastRung, rung)
		}
	}
	if p := byName["use-64x1-preg"]; p.Status != StatusFrontier || p.LastRung != 3 || p.EliminatedAtRung != -1 {
		t.Errorf("winner: %+v", p)
	}
	if len(res.Frontier) != 1 {
		t.Errorf("frontier %v, want a single point", res.Frontier)
	}
	if err := ValidateResult(res); err != nil {
		t.Errorf("result fails its own validator: %v", err)
	}
}

// TestHalvingOneRungDegeneratesToGrid: with MinInsts >= Insts the halving
// schedule collapses to a single full-budget rung and the search result
// is identical to grid in everything but the strategy label.
func TestHalvingOneRungDegeneratesToGrid(t *testing.T) {
	run := func(strategy string, minInsts uint64) *Result {
		spec := eightCandidates()
		spec.Strategy = strategy
		spec.Insts = 4000
		spec.MinInsts = minInsts
		var calls []evalCall
		res, err := Run(context.Background(), Config{
			Spec: spec, Benches: benches(),
			Eval: scriptedEval(&calls, entriesScore),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != 1 {
			t.Fatalf("%s: %d evaluator calls, want 1", strategy, len(calls))
		}
		return res
	}
	h := run(StrategyHalving, 4000)
	g := run(StrategyGrid, 0)
	h.Strategy = g.Strategy
	if !reflect.DeepEqual(h, g) {
		t.Fatalf("degenerate halving differs from grid:\n%+v\nvs\n%+v", h, g)
	}
}

// TestMidRungError: an evaluator failure mid-search aborts the job with
// the rung identified, returning no partial document.
func TestMidRungError(t *testing.T) {
	spec := eightCandidates()
	spec.Strategy = StrategyHalving
	spec.Insts = 4000
	spec.MinInsts = 1000

	boom := errors.New("simulation exploded")
	n := 0
	res, err := Run(context.Background(), Config{
		Spec: spec, Benches: benches(),
		Eval: func(ctx context.Context, cands []Candidate, insts uint64) (*sim.ResultsFile, error) {
			n++
			if n == 2 {
				return nil, boom
			}
			var calls []evalCall
			return scriptedEval(&calls, entriesScore)(ctx, cands, insts)
		},
	})
	if res != nil || !errors.Is(err, boom) {
		t.Fatalf("res %v err %v, want wrapped boom", res, err)
	}
	if !strings.Contains(err.Error(), "rung 1") {
		t.Fatalf("error %q does not identify the failing rung", err)
	}
}

// TestDominationProvenance: with a flat objective the cheapest candidates
// are the whole frontier and every other survivor records the lowest-
// index dominating frontier point.
func TestDominationProvenance(t *testing.T) {
	spec := eightCandidates() // grid: everyone survives to the frontier cut
	spec.Insts = 2000
	var calls []evalCall
	res, err := Run(context.Background(), Config{
		Spec: spec, Benches: benches(),
		Eval: scriptedEval(&calls, func(sim.Scheme) float64 { return 1.0 }),
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Generator = "test"
	// Candidates 0 and 1 (8 entries, both index policies) share the
	// minimum cost and the flat objective: both on the frontier.
	if !reflect.DeepEqual(res.Frontier, []int{0, 1}) {
		t.Fatalf("frontier %v, want [0 1]", res.Frontier)
	}
	for _, p := range res.Points[2:] {
		if p.Status != StatusDominated || p.DominatedBy != 0 {
			t.Errorf("point %d: status %s dominated_by %d, want dominated by 0", p.Index, p.Status, p.DominatedBy)
		}
	}
	if err := ValidateResult(res); err != nil {
		t.Errorf("validator: %v", err)
	}
}

// TestThreadsAxisProvenance: a Threads-axis search carries each
// candidate's context count through to its point record, the evaluator
// sees the per-candidate counts, and the result still satisfies its own
// validator.
func TestThreadsAxisProvenance(t *testing.T) {
	spec := Spec{
		Space: Space{
			Entries: Axis{Values: []int{16, 64}},
			Ways:    Axis{Values: []int{1}},
			Threads: &Axis{Values: []int{1, 4}},
			Ports:   &Axis{Values: []int{0, 2}},
		},
		Insts: 2000,
	}
	var got [][2]interface{}
	res, err := Run(context.Background(), Config{
		Spec: spec, Benches: benches(),
		Eval: func(ctx context.Context, cands []Candidate, insts uint64) (*sim.ResultsFile, error) {
			var runs []sim.RunRecord
			for _, c := range cands {
				got = append(got, [2]interface{}{c.Scheme.Name, c.Threads})
				for _, b := range benches() {
					runs = append(runs, sim.RunRecord{
						Scheme: sim.NewSchemeRecord(c.Scheme), Bench: b, Insts: insts,
						Cycles: 1, Retired: 1, IPC: entriesScore(c.Scheme),
					})
				}
			}
			return &sim.ResultsFile{SchemaVersion: sim.ResultsSchemaVersion, Generator: "test", Runs: runs}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Generator = "test"
	if len(res.Points) != 8 {
		t.Fatalf("%d points, want 8", len(res.Points))
	}
	seen := map[int]int{}
	for _, p := range res.Points {
		seen[p.Threads]++
		wantSuffix := fmt.Sprintf("-t%d", p.Threads)
		if !strings.HasSuffix(p.Scheme.Name, wantSuffix) {
			t.Errorf("point %s carries threads %d without the name suffix", p.Scheme.Name, p.Threads)
		}
	}
	if seen[1] != 4 || seen[4] != 4 {
		t.Fatalf("thread counts %v, want 4 each of {1, 4}", seen)
	}
	for _, e := range got {
		if e[1].(int) != 1 && e[1].(int) != 4 {
			t.Errorf("evaluator saw candidate %v with thread count %v", e[0], e[1])
		}
	}
	if err := ValidateResult(res); err != nil {
		t.Errorf("validator: %v", err)
	}
}

// TestRunDeterminism: two runs of the same search marshal to identical
// bytes — the engine half of the wire-level byte-identity guarantee.
func TestRunDeterminism(t *testing.T) {
	spec := eightCandidates()
	spec.Strategy = StrategyHalving
	spec.Insts = 8000
	spec.MinInsts = 1000
	one := func() []byte {
		var calls []evalCall
		res, err := Run(context.Background(), Config{
			Spec: spec, Benches: benches(),
			Eval: scriptedEval(&calls, entriesScore),
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := one(), one(); string(a) != string(b) {
		t.Fatal("re-running the same search produced different bytes")
	}
}

// TestValidateResultCatchesTampering: the validator must reject documents
// whose provenance or frontier no longer match their own points.
func TestValidateResultCatchesTampering(t *testing.T) {
	spec := eightCandidates()
	spec.Strategy = StrategyHalving
	spec.Insts = 8000
	spec.MinInsts = 1000
	fresh := func() *Result {
		var calls []evalCall
		res, err := Run(context.Background(), Config{
			Spec: spec, Benches: benches(),
			Eval: scriptedEval(&calls, entriesScore),
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Generator = "test"
		return res
	}
	if err := ValidateResult(fresh()); err != nil {
		t.Fatalf("fresh result invalid: %v", err)
	}
	tampers := []struct {
		name string
		mut  func(*Result)
	}{
		{"schema", func(r *Result) { r.SchemaVersion = 99 }},
		{"generator", func(r *Result) { r.Generator = "" }},
		{"non-monotone budgets", func(r *Result) { r.Rungs[1].Insts = r.Rungs[0].Insts }},
		{"last rung below full", func(r *Result) { r.Insts = 16000 }},
		{"broken chain", func(r *Result) { r.Rungs[1].Candidates++ }},
		{"dangling frontier", func(r *Result) { r.Frontier = []int{len(r.Points)} }},
		{"dominated on frontier", func(r *Result) {
			r.Frontier = append(r.Frontier, findStatus(r, StatusEliminated))
		}},
		{"fake dominator", func(r *Result) {
			i := findStatus(r, StatusEliminated)
			r.Points[i].Status = StatusDominated
			r.Points[i].EliminatedAtRung = -1
		}},
		{"provenance mismatch", func(r *Result) {
			r.Points[findStatus(r, StatusEliminated)].EliminatedAtRung = 99
		}},
	}
	for _, tc := range tampers {
		r := fresh()
		tc.mut(r)
		if err := ValidateResult(r); err == nil {
			t.Errorf("%s: tampered result passed validation", tc.name)
		}
	}
}

func findStatus(r *Result, status string) int {
	for i, p := range r.Points {
		if p.Status == status {
			return i
		}
	}
	panic(fmt.Sprintf("no point with status %s", status))
}
