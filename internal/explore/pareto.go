package explore

// The Pareto core: dominance over (objective, cost) pairs where the
// objective is maximized and the cost minimized. This is the part of the
// engine that must be beyond doubt — the property tests in pareto_test.go
// cross-check ParetoFrontier against a quadratic reference on random
// point sets, including ties and exact duplicates.

import "sort"

// Point is one candidate's position in the objective/cost plane.
type Point struct {
	Objective float64 // maximize (harmonic-mean IPC)
	Cost      float64 // minimize (area proxy)
}

// Dominates reports strict Pareto dominance: a is no worse than b on both
// axes and strictly better on at least one. A point never dominates its
// exact duplicate, so equal points coexist on a frontier.
func Dominates(a, b Point) bool {
	return a.Objective >= b.Objective && a.Cost <= b.Cost &&
		(a.Objective > b.Objective || a.Cost < b.Cost)
}

// ParetoFrontier returns the indices of the non-dominated points of ps,
// in ascending index order. O(n log n): a sweep over points sorted by
// cost needs each point compared only against the best objective seen at
// strictly lower cost, plus its own equal-cost group (where the group's
// best objective dominates the rest).
func ParetoFrontier(ps []Point) []int {
	if len(ps) == 0 {
		return nil
	}
	order := make([]int, len(ps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := ps[order[a]], ps[order[b]]
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		if pa.Objective != pb.Objective {
			return pa.Objective > pb.Objective
		}
		return order[a] < order[b]
	})

	var frontier []int
	bestCheaper := false
	var bestCheaperObj float64
	for g := 0; g < len(order); {
		// One equal-cost group at a time: within the group only the best
		// objective survives (duplicates of it included), and the whole
		// group is dead unless that best strictly beats every cheaper point.
		end := g
		cost := ps[order[g]].Cost
		for end < len(order) && ps[order[end]].Cost == cost {
			end++
		}
		groupBest := ps[order[g]].Objective // sorted: first of group is max
		if !bestCheaper || groupBest > bestCheaperObj {
			for _, i := range order[g:end] {
				if ps[i].Objective == groupBest {
					frontier = append(frontier, i)
				}
			}
			bestCheaper, bestCheaperObj = true, groupBest
		}
		g = end
	}
	sort.Ints(frontier)
	return frontier
}
