package explore

import (
	"math/rand"
	"sort"
	"testing"
)

// referenceFrontier is the O(n²) definition: a point is on the frontier
// iff no other point dominates it.
func referenceFrontier(ps []Point) []int {
	var out []int
	for i, p := range ps {
		dominated := false
		for j, q := range ps {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// randomPoints draws points from a small discrete grid so ties and exact
// duplicates are frequent — the cases a naive sweep gets wrong.
func randomPoints(rng *rand.Rand, n int) []Point {
	ps := make([]Point, n)
	for i := range ps {
		ps[i] = Point{
			Objective: float64(rng.Intn(8)) / 4,
			Cost:      float64(rng.Intn(8)) * 100,
		}
	}
	return ps
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParetoFrontierMatchesReference is the core property: on random
// point sets (dense with ties and duplicates) the sweep returns exactly
// the quadratic reference's non-dominated set.
func TestParetoFrontierMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		ps := randomPoints(rng, 1+rng.Intn(60))
		got := ParetoFrontier(ps)
		want := referenceFrontier(ps)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: frontier %v, reference %v, points %v", trial, got, want, ps)
		}
	}
}

// TestParetoFrontierOrderIndependent: shuffling the input permutes the
// returned indices but never changes the selected set of points.
func TestParetoFrontierOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		ps := randomPoints(rng, 2+rng.Intn(40))
		base := ParetoFrontier(ps)

		perm := rng.Perm(len(ps))
		shuffled := make([]Point, len(ps))
		for i, j := range perm {
			shuffled[j] = ps[i] // point i moves to slot perm[i]
		}
		got := ParetoFrontier(shuffled)
		// Map the shuffled indices back to original ones and compare sets.
		back := make([]int, 0, len(got))
		inv := make([]int, len(ps))
		for i, j := range perm {
			inv[j] = i
		}
		for _, j := range got {
			back = append(back, inv[j])
		}
		sort.Ints(back)
		if !equalInts(back, base) {
			t.Fatalf("trial %d: shuffle changed the frontier set: %v vs %v", trial, back, base)
		}
	}
}

// TestParetoFrontierIdempotent: frontier(frontier(S)) == frontier(S).
func TestParetoFrontierIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		ps := randomPoints(rng, 1+rng.Intn(50))
		first := ParetoFrontier(ps)
		sub := make([]Point, len(first))
		for k, i := range first {
			sub[k] = ps[i]
		}
		second := ParetoFrontier(sub)
		if len(second) != len(sub) {
			t.Fatalf("trial %d: frontier of a frontier dropped points: %d of %d", trial, len(second), len(sub))
		}
	}
}

// TestParetoFrontierTies pins the tie semantics explicitly: exact
// duplicates coexist on the frontier, equal-cost points resolve to the
// best objective, equal-objective points to the lowest cost.
func TestParetoFrontierTies(t *testing.T) {
	cases := []struct {
		name string
		ps   []Point
		want []int
	}{
		{"duplicates", []Point{{1, 10}, {1, 10}, {0.5, 10}}, []int{0, 1}},
		{"equal cost", []Point{{1, 10}, {2, 10}, {3, 10}}, []int{2}},
		{"equal objective", []Point{{1, 30}, {1, 10}, {1, 20}}, []int{1}},
		{"single", []Point{{1, 1}}, []int{0}},
		{"chain", []Point{{1, 10}, {2, 20}, {3, 30}}, []int{0, 1, 2}},
		{"reverse chain", []Point{{3, 10}, {2, 20}, {1, 30}}, []int{0}},
		{"empty", nil, nil},
	}
	for _, tc := range cases {
		if got := ParetoFrontier(tc.ps); !equalInts(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDominates pins the strictness of dominance.
func TestDominates(t *testing.T) {
	a := Point{Objective: 2, Cost: 10}
	if Dominates(a, a) {
		t.Error("a point must not dominate its duplicate")
	}
	if !Dominates(a, Point{1, 10}) || !Dominates(a, Point{2, 20}) || !Dominates(a, Point{1, 20}) {
		t.Error("strictly-better-on-one-axis cases must dominate")
	}
	if Dominates(a, Point{3, 5}) || Dominates(a, Point{3, 10}) || Dominates(a, Point{2, 5}) {
		t.Error("a point better on an axis must not be dominated")
	}
}
