package explore

import (
	"context"
	"fmt"
	"sort"

	"regcache/internal/obs"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

// ResultSchemaVersion identifies the Result layout. Bump on any
// incompatible change; checkresults refuses unknown versions.
const ResultSchemaVersion = 1

// ObjectiveName is the engine's (sole, for now) objective: harmonic-mean
// IPC over the requested benchmark set, from the same RunRecords a sweep
// would return.
const ObjectiveName = "hmean_ipc"

// Point statuses in a Result.
const (
	StatusFrontier   = "frontier"   // survived to the full budget, non-dominated
	StatusDominated  = "dominated"  // survived to the full budget, dominated
	StatusEliminated = "eliminated" // cut at an intermediate halving rung
)

// Result is the versioned POST /v1/explore document. Every field is a
// pure function of the request: re-running the same exploration — warm or
// cold, single-node or fleet — must reproduce it byte for byte, so
// non-deterministic observations (store-hit rates, wall time) live in
// metrics and spans, never here.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Generator     string `json:"generator"`
	Strategy      string `json:"strategy"`
	Objective     string `json:"objective"`
	CostModel     string `json:"cost_model"`

	Benches []string `json:"benches"`
	Insts   uint64   `json:"insts"` // full per-candidate budget

	// SkippedInvalid counts space combinations the scheme layer rejected
	// (indivisible geometries and the like) — enumerated, never simulated.
	SkippedInvalid int `json:"skipped_invalid,omitempty"`

	Rungs    []RungRecord  `json:"rungs"`
	Points   []PointRecord `json:"points"`
	Frontier []int         `json:"frontier"` // point indices, cost-ascending
}

// RungRecord is one budget rung's search statistics.
type RungRecord struct {
	Rung       int    `json:"rung"`
	Insts      uint64 `json:"insts"`
	Candidates int    `json:"candidates"` // evaluated at this rung
	Survivors  int    `json:"survivors"`  // advanced to the next rung (or kept, on the last)
}

// PointRecord is one candidate's full provenance: where it ended up and
// why. Objective is measured at the point's last rung (the full budget
// for frontier/dominated points).
type PointRecord struct {
	Index  int              `json:"index"`
	Scheme sim.SchemeRecord `json:"scheme"`
	// Threads is the workload context count the point was evaluated
	// under; 0 (omitted) for spaces without a Threads axis.
	Threads int `json:"threads,omitempty"`

	Cost      float64 `json:"cost"`
	Objective float64 `json:"objective"`

	Status   string `json:"status"`
	LastRung int    `json:"last_rung"`
	// EliminatedAtRung is the rung whose cut removed the candidate
	// (== LastRung), or -1 for points that reached the full budget.
	EliminatedAtRung int `json:"eliminated_at_rung"`
	// DominatedBy is the lowest-index frontier point dominating this one;
	// -1 unless Status is dominated.
	DominatedBy int `json:"dominated_by"`
}

// Evaluator runs one rung's candidates at the given budget and returns
// the sweep document. The serve plane routes it through the runner (or
// the fleet), so rung evaluations inherit memoization, the durable store,
// and coalescing. A rung may mix thread counts (a Threads-axis search);
// the evaluator is responsible for running each candidate under its own
// count. Run order within the file is irrelevant — scoring matches runs
// back to candidates by scheme name.
type Evaluator func(ctx context.Context, cands []Candidate, insts uint64) (*sim.ResultsFile, error)

// Config drives one exploration.
type Config struct {
	Spec    Spec
	Benches []string
	Eval    Evaluator
	Span    *obs.Span // parent span for per-rung children; nil is fine
}

// Plan returns the rung schedule for n candidates under the (defaulted)
// spec: grid is a single full-budget rung; halving multiplies the budget
// by eta per rung while keeping ceil(1/eta) of the field, and the final
// rung always runs at the full budget and never eliminates.
func (s Spec) Plan(n int) []RungRecord {
	var budgets []uint64
	if s.Strategy == StrategyHalving {
		for b := s.MinInsts; b < s.Insts && len(budgets) < maxRungs-1; b *= uint64(s.Eta) {
			budgets = append(budgets, b)
		}
	}
	budgets = append(budgets, s.Insts)

	rungs := make([]RungRecord, len(budgets))
	enter := n
	for i, b := range budgets {
		keep := enter
		if i < len(budgets)-1 {
			keep = (enter + s.Eta - 1) / s.Eta
			if keep < 1 {
				keep = 1
			}
		}
		rungs[i] = RungRecord{Rung: i, Insts: b, Candidates: enter, Survivors: keep}
		enter = keep
	}
	return rungs
}

// TotalEvals returns the simulation-point count a plan submits: the
// admission currency of the serve plane.
func TotalEvals(plan []RungRecord, benches int) int {
	n := 0
	for _, r := range plan {
		n += r.Candidates * benches
	}
	return n
}

// Run executes the search. The spec is re-defaulted and re-validated so
// library callers get the same contract as the wire.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	spec := cfg.Spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	if len(cfg.Benches) == 0 {
		return nil, fmt.Errorf("explore: search needs at least one benchmark")
	}
	if cfg.Eval == nil {
		return nil, fmt.Errorf("explore: no evaluator")
	}
	cands, skipped, err := spec.Candidates()
	if err != nil {
		return nil, err
	}
	plan := spec.Plan(len(cands))

	points := make([]PointRecord, len(cands))
	for i, c := range cands {
		points[i] = PointRecord{
			Index:            i,
			Scheme:           sim.NewSchemeRecord(c.Scheme),
			Threads:          c.Threads,
			Cost:             Cost(c.Scheme),
			LastRung:         -1,
			EliminatedAtRung: -1,
			DominatedBy:      -1,
		}
	}

	alive := make([]int, len(cands))
	for i := range alive {
		alive[i] = i
	}
	for r, rung := range plan {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsp := cfg.Span.StartChild("rung")
		rsp.SetInt("rung", int64(r))
		rsp.SetInt("insts", int64(rung.Insts))
		rsp.SetInt("candidates", int64(len(alive)))
		batch := make([]Candidate, len(alive))
		for k, i := range alive {
			batch[k] = cands[i]
		}
		file, err := cfg.Eval(ctx, batch, rung.Insts)
		if err != nil {
			rsp.SetError(err)
			rsp.End()
			return nil, fmt.Errorf("explore: rung %d (%d insts, %d candidates): %w",
				r, rung.Insts, len(alive), err)
		}
		if err := scoreRung(points, alive, r, file, cfg.Benches); err != nil {
			rsp.SetError(err)
			rsp.End()
			return nil, fmt.Errorf("explore: rung %d: %w", r, err)
		}
		// Cut to the survivor quota: best objective first, candidate index
		// as the deterministic tie-break.
		sort.Slice(alive, func(a, b int) bool {
			pa, pb := points[alive[a]], points[alive[b]]
			if pa.Objective != pb.Objective {
				return pa.Objective > pb.Objective
			}
			return pa.Index < pb.Index
		})
		if rung.Survivors < len(alive) {
			for _, i := range alive[rung.Survivors:] {
				points[i].Status = StatusEliminated
				points[i].EliminatedAtRung = r
			}
			alive = alive[:rung.Survivors]
		}
		sort.Ints(alive) // evaluation order of the next rung is index order
		rsp.SetInt("survivors", int64(len(alive)))
		rsp.End()
	}

	finalizeFrontier(points, alive)
	frontier := make([]int, 0, len(alive))
	for _, i := range alive {
		if points[i].Status == StatusFrontier {
			frontier = append(frontier, i)
		}
	}
	sort.Slice(frontier, func(a, b int) bool {
		pa, pb := points[frontier[a]], points[frontier[b]]
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		return pa.Index < pb.Index
	})

	return &Result{
		SchemaVersion:  ResultSchemaVersion,
		Strategy:       spec.Strategy,
		Objective:      ObjectiveName,
		CostModel:      CostModelName,
		Benches:        append([]string(nil), cfg.Benches...),
		Insts:          spec.Insts,
		SkippedInvalid: skipped,
		Rungs:          plan,
		Points:         points,
		Frontier:       frontier,
	}, nil
}

// scoreRung reads the rung's sweep document and updates every alive
// point's objective. A candidate the sweep did not cover (or covered with
// a non-positive IPC) is an engine invariant violation, not a data point.
func scoreRung(points []PointRecord, alive []int, rung int, file *sim.ResultsFile, benches []string) error {
	ipc := make(map[string]map[string]float64, len(alive))
	for _, run := range file.Runs {
		m := ipc[run.Scheme.Name]
		if m == nil {
			m = make(map[string]float64, len(benches))
			ipc[run.Scheme.Name] = m
		}
		m[run.Bench] = run.IPC
	}
	for _, i := range alive {
		name := points[i].Scheme.Name
		xs := make([]float64, len(benches))
		for k, b := range benches {
			v, ok := ipc[name][b]
			if !ok || v <= 0 {
				return fmt.Errorf("candidate %s: no usable IPC for bench %s", name, b)
			}
			xs[k] = v
		}
		points[i].Objective = stats.HarmonicMean(xs)
		points[i].LastRung = rung
	}
	return nil
}

// finalizeFrontier classifies the full-budget survivors: the Pareto
// frontier over (objective, cost), and for each dominated point the
// lowest-index frontier point that dominates it.
func finalizeFrontier(points []PointRecord, alive []int) {
	ps := make([]Point, len(alive))
	for k, i := range alive {
		ps[k] = Point{Objective: points[i].Objective, Cost: points[i].Cost}
	}
	onFrontier := make(map[int]bool)
	for _, k := range ParetoFrontier(ps) {
		onFrontier[alive[k]] = true
		points[alive[k]].Status = StatusFrontier
	}
	for k, i := range alive {
		if onFrontier[i] {
			continue
		}
		points[i].Status = StatusDominated
		for _, j := range alive {
			if onFrontier[j] && Dominates(Point{points[j].Objective, points[j].Cost}, ps[k]) {
				points[i].DominatedBy = j
				break // alive is index-sorted: first hit is the lowest index
			}
		}
	}
}
