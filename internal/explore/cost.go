package explore

// The hardware cost model: a deliberately simple, documented area proxy
// so frontiers are explainable and stable across engine versions.
//
// A register structure's area scales with entries × ports × bit-width,
// and port count is the quadratic term that motivates register caching in
// the first place: a W-wide machine needs up to 2W read and W write ports
// on whatever structure feeds execution, so we charge the fully-ported
// structure P = 3·IssueWidth ports per entry at 64 bits each.
//
//   - monolithic: the whole physical register file is fully ported —
//     NumPRegs · P · 64.
//   - cache schemes: only the cache is fully ported; the backing file
//     sits behind it with far fewer ports (reads are filtered by the
//     cache, writes drain lazily), charged at P/8 — or, for the
//     port-filtering family, at the scheme's explicit read-port count —
//     Entries · P · 64  +  PRegs · (P/8) · 64,
//     where PRegs is the scheme's decoupled tag space (Cache.MaxPRegs,
//     defaulting to the machine's register count). A larger MaxPRegs
//     buys fewer false-sharing conflicts at the price of a larger
//     backing file — exactly the trade-off the frontier should expose.
//   - two-level: the L1 is the ported structure, the L2 is the backing —
//     L1Entries · P · 64  +  NumPRegs · (P/8) · 64.
//
// The proxy is unitless ("bit-ports"); only ratios matter for dominance.

import (
	"regcache/internal/pipeline"
	"regcache/internal/sim"
)

// CostModelName identifies the cost function a Result was computed with;
// it is recorded in the document so a frontier is never compared across
// incompatible models.
const CostModelName = "bitports-v1"

const (
	costBitWidth        = 64.0
	costBackingPortFrac = 1.0 / 8
)

// Cost returns the area proxy for a scheme. It is positive for every
// scheme the sim layer accepts.
func Cost(s sim.Scheme) float64 {
	mc := pipeline.DefaultConfig()
	ports := 3 * float64(mc.IssueWidth)
	switch s.Kind {
	case pipeline.SchemeCache:
		pregs := s.Cache.MaxPRegs
		if pregs == 0 {
			pregs = mc.NumPRegs
		}
		// A port-filtering scheme makes the backing file's read-port count
		// explicit, so it is charged literally instead of at the P/8
		// default — fewer ports than P/8 genuinely saves area, more cost
		// more, and the frontier exposes exactly that knob.
		backingPorts := ports * costBackingPortFrac
		if s.ReadPorts > 0 {
			backingPorts = float64(s.ReadPorts)
		}
		return float64(s.Cache.Entries)*ports*costBitWidth +
			float64(pregs)*backingPorts*costBitWidth
	case pipeline.SchemeTwoLevel:
		return float64(s.TwoLevel.L1Entries)*ports*costBitWidth +
			float64(mc.NumPRegs)*ports*costBackingPortFrac*costBitWidth
	default: // monolithic
		return float64(mc.NumPRegs) * ports * costBitWidth
	}
}
