package explore

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzExploreSpec fuzzes the explore request parser/validator: any byte
// string either fails to parse, fails validation (with over-budget spaces
// distinguishable via ErrSpaceTooLarge so the wire layer can answer 413
// vs 400 before admission), or yields a space whose enumeration and rung
// schedule uphold every engine invariant. Nothing may panic.
func FuzzExploreSpec(f *testing.F) {
	seeds := []string{
		`{"space":{"entries":{"values":[16,32,64]},"ways":{"values":[1,2,4]},"index":["preg","rr","filtered"]},"strategy":"halving","insts":6000,"min_insts":1500}`,
		`{"space":{"entries":{"min":8,"max":64,"step":8},"ways":{"values":[2]}},"strategy":"grid"}`,
		`{"space":{"entries":{"values":[16]},"ways":{"values":[0]},"kinds":["use","lru","nb"]}}`,
		`{"space":{"entries":{"min":64,"max":16,"step":8},"ways":{"values":[1]}}}`,
		`{"space":{"entries":{"min":8,"max":64},"ways":{"values":[1]}}}`,
		`{"space":{"entries":{"min":1,"max":1048576,"step":1},"ways":{"min":0,"max":63,"step":1}}}`,
		`{"space":{"entries":{"values":[16],"min":8,"max":32,"step":8},"ways":{"values":[1]}}}`,
		`{"space":{"entries":{"values":[16]},"ways":{"values":[1]},"kinds":["use","use"]}}`,
		`{"space":{"entries":{"values":[16]},"ways":{"values":[1]},"max_pregs":{"values":[512,1024]},"max_use":{"values":[3,7,15]}},"strategy":"halving","eta":4}`,
		`{"space":{"entries":{"values":[16,64]},"ways":{"values":[2]},"ports":{"values":[0,2,4]},"threads":{"values":[1,2,4]}}}`,
		`{"space":{"entries":{"values":[16]},"ways":{"values":[1]},"threads":{"values":[9]}}}`,
		`{"space":{"entries":{"values":[16]},"ways":{"values":[1]},"ports":{"min":0,"max":128,"step":16}}}`,
		`{"space":{"entries":{"values":[-3]},"ways":{"values":[1]}}}`,
		`{"strategy":"anneal"}`,
		`{}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		spec = spec.WithDefaults()
		if err := spec.Validate(); err != nil {
			// The one coarse classification the wire layer depends on:
			// every rejection is either malformed (400) or too large
			// (413), and both must precede any enumeration work.
			_ = errors.Is(err, ErrSpaceTooLarge)
			return
		}
		cands, _, err := spec.Candidates()
		if err != nil {
			return // all-invalid spaces and name collisions reject cleanly
		}
		if len(cands) == 0 || len(cands) > MaxCandidates {
			t.Fatalf("validated spec enumerated %d candidates (bound %d)", len(cands), MaxCandidates)
		}
		names := make(map[string]bool, len(cands))
		for _, c := range cands {
			if err := c.Scheme.Validate(); err != nil {
				t.Fatalf("enumerated candidate %s is invalid: %v", c.Scheme.Name, err)
			}
			if names[c.Scheme.Name] {
				t.Fatalf("duplicate candidate name %q", c.Scheme.Name)
			}
			names[c.Scheme.Name] = true
		}
		plan := spec.Plan(len(cands))
		if len(plan) == 0 || len(plan) > maxRungs {
			t.Fatalf("plan has %d rungs", len(plan))
		}
		if plan[0].Candidates != len(cands) {
			t.Fatalf("plan enters %d candidates of %d", plan[0].Candidates, len(cands))
		}
		for i, r := range plan {
			if i > 0 && r.Insts <= plan[i-1].Insts {
				t.Fatalf("non-monotone budgets: %+v", plan)
			}
			if r.Survivors < 1 || r.Survivors > r.Candidates {
				t.Fatalf("rung %d keeps %d of %d", i, r.Survivors, r.Candidates)
			}
			if i > 0 && r.Candidates != plan[i-1].Survivors {
				t.Fatalf("broken chain: %+v", plan)
			}
		}
		last := plan[len(plan)-1]
		if last.Insts != spec.Insts || last.Survivors != last.Candidates {
			t.Fatalf("terminal rung %+v under budget %d", last, spec.Insts)
		}
		if TotalEvals(plan, 1) < len(cands) {
			t.Fatalf("plan evaluates fewer points than candidates")
		}
	})
}
