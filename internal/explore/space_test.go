package explore

import (
	"errors"
	"strings"
	"testing"
)

func listAxis(vs ...int) Axis { return Axis{Values: vs} }

func TestAxisExpansion(t *testing.T) {
	r := Axis{Min: 8, Max: 64, Step: 8}
	if err := r.validate("entries", 1); err != nil {
		t.Fatal(err)
	}
	want := []int{8, 16, 24, 32, 40, 48, 56, 64}
	got := r.expand()
	if len(got) != len(want) || r.count() != len(want) {
		t.Fatalf("range expanded to %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range expanded to %v, want %v", got, want)
		}
	}
	// A range whose step overshoots max still includes min.
	one := Axis{Min: 16, Max: 20, Step: 8}
	if err := one.validate("entries", 1); err != nil {
		t.Fatal(err)
	}
	if got := one.expand(); len(got) != 1 || got[0] != 16 {
		t.Fatalf("overshooting step expanded to %v", got)
	}
}

func TestAxisValidation(t *testing.T) {
	cases := []struct {
		name string
		axis Axis
		min  int
		frag string // expected error fragment; "" = valid
	}{
		{"values ok", listAxis(16, 32), 1, ""},
		{"ways zero ok", listAxis(0, 2), 0, ""},
		{"empty", Axis{}, 1, "needs values or"},
		{"both forms", Axis{Values: []int{8}, Min: 1, Max: 2, Step: 1}, 1, "not both"},
		{"zero step", Axis{Min: 8, Max: 64}, 1, "step must be"},
		{"negative step", Axis{Min: 8, Max: 64, Step: -4}, 1, "step must be"},
		{"inverted", Axis{Min: 64, Max: 8, Step: 8}, 1, "inverted range"},
		{"below min", listAxis(0, 16), 1, "out of range"},
		{"duplicate", listAxis(16, 16), 1, "duplicate value"},
		{"huge range", Axis{Min: 1, Max: 1 << 19, Step: 1}, 1, "bound is"},
	}
	for _, tc := range cases {
		err := tc.axis.validate("ax", tc.min)
		if tc.frag == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %v, want fragment %q", tc.name, err, tc.frag)
		}
	}
	// An over-long axis is an over-budget space, not a malformed request.
	if err := (Axis{Min: 1, Max: 1000, Step: 1}).validate("ax", 1); !errors.Is(err, ErrSpaceTooLarge) {
		t.Errorf("over-long axis: %v, want ErrSpaceTooLarge", err)
	}
}

func TestSpecValidate(t *testing.T) {
	base := Spec{Space: Space{Entries: listAxis(16, 32), Ways: listAxis(1, 2)}}
	if err := base.WithDefaults().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}

	bad := []struct {
		name string
		mut  func(*Spec)
		frag string
	}{
		{"strategy", func(s *Spec) { s.Strategy = "anneal" }, "unknown strategy"},
		{"eta low", func(s *Spec) { s.Strategy = StrategyHalving; s.Eta = 1 }, "eta 1 out of range"},
		{"eta high", func(s *Spec) { s.Strategy = StrategyHalving; s.Eta = 99 }, "eta 99 out of range"},
		{"kind", func(s *Spec) { s.Space.Kinds = []string{"use", "fifo"} }, "unknown policy"},
		{"index", func(s *Spec) { s.Space.Index = []string{"hash"} }, "unknown policy"},
		{"dup kind", func(s *Spec) { s.Space.Kinds = []string{"use", "use"} }, "duplicate policy"},
		{"insts", func(s *Spec) { s.Insts = 1 << 50 }, "budget bound"},
	}
	for _, tc := range bad {
		s := base
		tc.mut(&s)
		err := s.WithDefaults().Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %v, want fragment %q", tc.name, err, tc.frag)
		}
	}

	// The candidate-product bound maps to ErrSpaceTooLarge even when each
	// axis is individually legal.
	big := Spec{Space: Space{
		Entries: Axis{Min: 1, Max: 64, Step: 1},
		Ways:    Axis{Min: 0, Max: 63, Step: 1},
		Kinds:   []string{"use", "lru", "nb"},
	}}
	if err := big.WithDefaults().Validate(); !errors.Is(err, ErrSpaceTooLarge) {
		t.Errorf("oversized product: %v, want ErrSpaceTooLarge", err)
	}
}

func TestCandidatesEnumeration(t *testing.T) {
	s := Spec{Space: Space{
		Entries: listAxis(16, 32),
		Ways:    listAxis(1, 2, 3), // 3 does not divide 16 or 32: skipped
		Kinds:   []string{"use", "lru"},
		Index:   []string{"preg", "filtered"},
	}}.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cands, skipped, err := s.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	// 2 kinds × 2 entries × {1,2} ways × 2 indexes survive; ways=3 is
	// geometry-invalid for both entry counts under both kinds.
	if len(cands) != 16 || skipped != 8 {
		t.Fatalf("got %d candidates, %d skipped; want 16 and 8", len(cands), skipped)
	}
	names := make(map[string]bool)
	for _, c := range cands {
		if err := c.Scheme.Validate(); err != nil {
			t.Errorf("candidate %s invalid: %v", c.Scheme.Name, err)
		}
		if names[c.Scheme.Name] {
			t.Errorf("duplicate candidate %s", c.Scheme.Name)
		}
		names[c.Scheme.Name] = true
	}
	if !names["use-16x2-preg"] || !names["lru-32x1-filtered"] {
		t.Errorf("expected candidates missing from %v", names)
	}

	// Optional axes extend the name so every candidate stays unique, and
	// values below the machine's register count are skipped as invalid.
	s2 := Spec{Space: Space{
		Entries:  listAxis(16),
		Ways:     listAxis(2),
		MaxPRegs: &Axis{Values: []int{256, 512, 1024}},
		MaxUse:   &Axis{Values: []int{3, 7}},
	}}.WithDefaults()
	cands2, skipped2, err := s2.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands2) != 4 || skipped2 != 2 { // 256 < NumPRegs: both max_use variants skipped
		t.Fatalf("got %d candidates, %d skipped; want 4 and 2", len(cands2), skipped2)
	}
	want := "use-16x2-filtered-p512-u3"
	found := false
	for _, c := range cands2 {
		if c.Scheme.Name == want {
			found = true
			if c.Scheme.Cache.MaxPRegs != 512 || c.Scheme.Cache.MaxUse != 3 {
				t.Errorf("%s: axes not applied: %+v", want, c.Scheme.Cache)
			}
		}
	}
	if !found {
		t.Errorf("candidate %q missing", want)
	}

	// An all-invalid space errors rather than returning an empty search.
	bad := Spec{Space: Space{Entries: listAxis(16), Ways: listAxis(5)}}.WithDefaults()
	if _, _, err := bad.Candidates(); err == nil {
		t.Error("all-invalid space did not error")
	}
}

func TestPortsAndThreadsAxes(t *testing.T) {
	s := Spec{Space: Space{
		Entries: listAxis(16),
		Ways:    listAxis(2),
		Ports:   &Axis{Values: []int{0, 2}},
		Threads: &Axis{Values: []int{1, 4}},
	}}.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cands, skipped, err := s.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 || skipped != 0 {
		t.Fatalf("got %d candidates, %d skipped; want 4 and 0", len(cands), skipped)
	}
	byName := make(map[string]Candidate, len(cands))
	for _, c := range cands {
		byName[c.Scheme.Name] = c
	}
	// Port 0 keeps the unsuffixed legacy name; thread counts always
	// suffix when the axis is present (including the T=1 baseline).
	for name, want := range map[string]struct {
		ports, threads int
	}{
		"use-16x2-filtered-t1":    {0, 1},
		"use-16x2-filtered-t4":    {0, 4},
		"use-16x2-filtered-p2-t1": {2, 1},
		"use-16x2-filtered-p2-t4": {2, 4},
	} {
		c, ok := byName[name]
		if !ok {
			t.Errorf("candidate %q missing from %v", name, byName)
			continue
		}
		if c.Scheme.ReadPorts != want.ports || c.Threads != want.threads {
			t.Errorf("%s: ports %d threads %d, want %d and %d",
				name, c.Scheme.ReadPorts, c.Threads, want.ports, want.threads)
		}
	}

	// Out-of-bounds axis values are validation errors, not enumeration
	// surprises.
	for _, tc := range []struct {
		name string
		mut  func(*Spec)
		frag string
	}{
		{"threads over machine bound", func(s *Spec) { s.Space.Threads = &Axis{Values: []int{1, 9}} }, "machine bound"},
		{"threads zero", func(s *Spec) { s.Space.Threads = &Axis{Values: []int{0}} }, "out of range"},
		{"ports over bound", func(s *Spec) { s.Space.Ports = &Axis{Values: []int{128}} }, "port bound"},
	} {
		bad := Spec{Space: Space{Entries: listAxis(16), Ways: listAxis(2)}}
		tc.mut(&bad)
		err := bad.WithDefaults().Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %v, want fragment %q", tc.name, err, tc.frag)
		}
	}
}

func TestCostModel(t *testing.T) {
	small, _, err := (Spec{Space: Space{Entries: listAxis(16), Ways: listAxis(2)}}).WithDefaults().Candidates()
	if err != nil {
		t.Fatal(err)
	}
	large, _, err := (Spec{Space: Space{Entries: listAxis(64), Ways: listAxis(2)}}).WithDefaults().Candidates()
	if err != nil {
		t.Fatal(err)
	}
	cs, cl := Cost(small[0].Scheme), Cost(large[0].Scheme)
	if cs <= 0 || cl <= 0 || cl <= cs {
		t.Fatalf("cost not increasing in entries: %v vs %v", cs, cl)
	}
	// A wider decoupled tag space costs backing-file area.
	wide := small[0].Scheme
	wide.Cache.MaxPRegs = 2048
	if Cost(wide) <= cs {
		t.Error("larger MaxPRegs did not increase cost")
	}
	// A port-filtering scheme is charged its literal backing read-port
	// count: below the P/8 default it is cheaper than the unported
	// baseline, and cost grows monotonically in ports.
	p2, p4 := small[0].Scheme.WithPorts(2), small[0].Scheme.WithPorts(4)
	if Cost(p2) >= cs {
		t.Errorf("2-port backing (%v) not cheaper than unported (%v)", Cost(p2), cs)
	}
	if Cost(p4) <= Cost(p2) {
		t.Errorf("cost not increasing in ports: %v vs %v", Cost(p2), Cost(p4))
	}
}
