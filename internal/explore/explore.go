// Package explore implements the design-space exploration engine behind
// POST /v1/explore: instead of the client enumerating a scheme matrix,
// the service searches a parameter space (cache entries × associativity ×
// index policy × cache kind × MaxPRegs × MaxUse × read-port count ×
// workload thread count) for the Pareto frontier of performance
// (harmonic-mean IPC over a benchmark set) versus hardware cost (a
// documented area proxy, see cost.go).
//
// Two strategies are supported. `grid` evaluates every candidate at the
// full instruction budget. `halving` is successive halving: every
// candidate is simulated at a short budget, the top 1/eta by objective
// survive to the next rung at eta× the budget, and so on until the full
// budget; the final rung never eliminates, so the frontier is always
// computed over full-budget measurements.
//
// The engine never simulates anything itself: every rung is one sweep
// handed to an Evaluator (the serve plane routes it through sim.Runner
// and, when peers are configured, the fleet coordinator), so memoization,
// the durable store, and request coalescing make repeated or overlapping
// explorations cheap by construction. Results are the versioned Result
// schema (engine.go) with full elimination/domination provenance, which
// ValidateResult (validate.go) re-checks from scratch.
package explore

import (
	"errors"
	"fmt"

	"regcache/internal/core"
	"regcache/internal/sim"
)

// Bounds on the search space. Axes are capped per-axis and by the product
// of all axis lengths: a space that cannot fit is rejected up front with
// ErrSpaceTooLarge (the wire layer maps it to 413) before any admission
// or enumeration work.
const (
	// MaxCandidates bounds the candidate count of one exploration.
	MaxCandidates = 4096
	// maxAxisValues bounds one axis's expansion.
	maxAxisValues = 64
	// maxAxisValue bounds any single axis value (entries, ways, pregs…).
	maxAxisValue = 1 << 20
	// maxInsts bounds the per-candidate instruction budget.
	maxInsts = 1 << 40
	// maxRungs bounds the halving schedule length.
	maxRungs = 12
)

// ErrSpaceTooLarge marks a structurally valid request whose candidate
// space exceeds MaxCandidates (or an axis exceeding maxAxisValues): not
// malformed, but never admissible on this server. The serve plane answers
// it with 413 instead of 400.
var ErrSpaceTooLarge = errors.New("candidate space too large")

// Axis is one integer dimension of the search space: either an explicit
// value list or an inclusive min/max/step range, never both.
type Axis struct {
	Values []int `json:"values,omitempty"`
	Min    int   `json:"min,omitempty"`
	Max    int   `json:"max,omitempty"`
	Step   int   `json:"step,omitempty"`
}

// isRange reports whether any range field is set.
func (a Axis) isRange() bool { return a.Min != 0 || a.Max != 0 || a.Step != 0 }

// validate checks the axis shape. minValue is the smallest legal value
// (0 for ways, where 0 means fully associative; 1 elsewhere).
func (a Axis) validate(name string, minValue int) error {
	switch {
	case len(a.Values) > 0 && a.isRange():
		return fmt.Errorf("axis %s: give either values or min/max/step, not both", name)
	case len(a.Values) == 0 && !a.isRange():
		return fmt.Errorf("axis %s: needs values or min/max/step", name)
	case len(a.Values) > 0:
		if len(a.Values) > maxAxisValues {
			return fmt.Errorf("axis %s: %d values exceeds the %d-value axis bound: %w",
				name, len(a.Values), maxAxisValues, ErrSpaceTooLarge)
		}
		seen := make(map[int]bool, len(a.Values))
		for _, v := range a.Values {
			if v < minValue || v > maxAxisValue {
				return fmt.Errorf("axis %s: value %d out of range [%d, %d]", name, v, minValue, maxAxisValue)
			}
			if seen[v] {
				return fmt.Errorf("axis %s: duplicate value %d", name, v)
			}
			seen[v] = true
		}
		return nil
	default:
		if a.Step <= 0 {
			return fmt.Errorf("axis %s: step must be >= 1 (got %d)", name, a.Step)
		}
		if a.Max < a.Min {
			return fmt.Errorf("axis %s: inverted range [%d, %d]", name, a.Min, a.Max)
		}
		if a.Min < minValue || a.Max > maxAxisValue {
			return fmt.Errorf("axis %s: range [%d, %d] out of bounds [%d, %d]",
				name, a.Min, a.Max, minValue, maxAxisValue)
		}
		if n := (a.Max-a.Min)/a.Step + 1; n > maxAxisValues {
			return fmt.Errorf("axis %s: range expands to %d values, bound is %d: %w",
				name, n, maxAxisValues, ErrSpaceTooLarge)
		}
		return nil
	}
}

// expand returns the axis values in ascending enumeration order. Must be
// called only on a validated axis.
func (a Axis) expand() []int {
	if len(a.Values) > 0 {
		return a.Values
	}
	out := make([]int, 0, (a.Max-a.Min)/a.Step+1)
	for v := a.Min; v <= a.Max; v += a.Step {
		out = append(out, v)
	}
	return out
}

// count returns the axis length without materializing it.
func (a Axis) count() int {
	if len(a.Values) > 0 {
		return len(a.Values)
	}
	return (a.Max-a.Min)/a.Step + 1
}

// Space is the searched parameter region. Entries and Ways are required
// axes; Kinds and Index are enumerated policy lists (defaults: use-based
// insertion, decoupled filtered indexing); MaxPRegs and MaxUse are
// optional extra axes over the decoupled physical-register space and the
// use-predictor saturation. Ports and Threads are optional axes over the
// port-filtering and multithreaded-workload planes: Ports enumerates
// backing-file read-port counts (0 = the unported legacy model, so a
// frontier can compare filtered and unfiltered designs in one search),
// Threads enumerates workload context counts in [1, sim.MaxThreads].
type Space struct {
	Entries Axis     `json:"entries"`
	Ways    Axis     `json:"ways"`
	Kinds   []string `json:"kinds,omitempty"` // use | lru | nb; default ["use"]
	Index   []string `json:"index,omitempty"` // preg | rr | min | filtered; default ["filtered"]

	MaxPRegs *Axis `json:"max_pregs,omitempty"` // decoupled PReg space sizes
	MaxUse   *Axis `json:"max_use,omitempty"`   // use-counter saturation values
	Ports    *Axis `json:"ports,omitempty"`     // backing read-port counts; 0 = unported
	Threads  *Axis `json:"threads,omitempty"`   // workload context counts
}

// Spec is the full search request: the space, the strategy, and the
// instruction budgets.
type Spec struct {
	Space    Space  `json:"space"`
	Strategy string `json:"strategy,omitempty"`  // grid (default) | halving
	Insts    uint64 `json:"insts,omitempty"`     // full per-benchmark budget; 0 = sim.DefaultInsts
	MinInsts uint64 `json:"min_insts,omitempty"` // halving first-rung budget; 0 = Insts/8
	Eta      int    `json:"eta,omitempty"`       // halving keep-1/eta factor; 0 = 2
}

// Search strategies.
const (
	StrategyGrid    = "grid"
	StrategyHalving = "halving"
)

// WithDefaults returns the spec with every zero knob resolved, so two
// requests that differ only in explicit-vs-defaulted fields plan the same
// search and produce byte-identical result documents.
func (s Spec) WithDefaults() Spec {
	if s.Strategy == "" {
		s.Strategy = StrategyGrid
	}
	if s.Insts == 0 {
		s.Insts = sim.DefaultInsts
	}
	if s.Strategy == StrategyHalving {
		if s.Eta == 0 {
			s.Eta = 2
		}
		if s.MinInsts == 0 {
			s.MinInsts = s.Insts / 8
			if s.MinInsts == 0 {
				s.MinInsts = s.Insts
			}
		}
	}
	return s
}

// Validate checks a defaulted spec. Structural problems return plain
// errors (wire layer: 400); a space exceeding the server's candidate
// bound wraps ErrSpaceTooLarge (wire layer: 413). Call on the result of
// WithDefaults.
func (s Spec) Validate() error {
	switch s.Strategy {
	case StrategyGrid:
	case StrategyHalving:
		if s.Eta < 2 || s.Eta > 16 {
			return fmt.Errorf("eta %d out of range [2, 16]", s.Eta)
		}
	default:
		return fmt.Errorf("unknown strategy %q (want grid or halving)", s.Strategy)
	}
	if s.Insts > maxInsts {
		return fmt.Errorf("insts %d exceeds budget bound %d", s.Insts, uint64(maxInsts))
	}
	if s.MinInsts > maxInsts {
		return fmt.Errorf("min_insts %d exceeds budget bound %d", s.MinInsts, uint64(maxInsts))
	}
	if err := s.Space.validate(); err != nil {
		return err
	}
	return nil
}

func (sp Space) validate() error {
	if err := sp.Entries.validate("entries", 1); err != nil {
		return err
	}
	// Ways 0 means fully associative (core.Config semantics).
	if err := sp.Ways.validate("ways", 0); err != nil {
		return err
	}
	if err := validatePolicies("kinds", sp.Kinds, map[string]bool{"use": true, "lru": true, "nb": true}); err != nil {
		return err
	}
	if err := validatePolicies("index", sp.Index, map[string]bool{"preg": true, "rr": true, "min": true, "filtered": true}); err != nil {
		return err
	}
	if sp.MaxPRegs != nil {
		if err := sp.MaxPRegs.validate("max_pregs", 1); err != nil {
			return err
		}
	}
	if sp.MaxUse != nil {
		if err := sp.MaxUse.validate("max_use", 1); err != nil {
			return err
		}
	}
	// Ports and Threads are bounded by the simulator's own limits, far
	// below maxAxisValue, so they get an explicit post-check. Both axes
	// are short by construction (<= 65 and <= sim.MaxThreads values).
	if sp.Ports != nil {
		if err := sp.Ports.validate("ports", 0); err != nil {
			return err
		}
		for _, v := range sp.Ports.expand() {
			if v > sim.MaxReadPorts {
				return fmt.Errorf("axis ports: value %d exceeds the %d-port bound", v, sim.MaxReadPorts)
			}
		}
	}
	if sp.Threads != nil {
		if err := sp.Threads.validate("threads", 1); err != nil {
			return err
		}
		for _, v := range sp.Threads.expand() {
			if v > sim.MaxThreads {
				return fmt.Errorf("axis threads: value %d exceeds the %d-context machine bound", v, sim.MaxThreads)
			}
		}
	}
	// The candidate bound is checked on the full product, before any
	// enumeration: each factor is already <= maxAxisValues, so the
	// running product stays far from overflow once capped.
	n := sp.Entries.count() * sp.Ways.count()
	n *= listCount(sp.Kinds)
	n *= listCount(sp.Index)
	if sp.MaxPRegs != nil {
		n *= sp.MaxPRegs.count()
	}
	if n > MaxCandidates {
		return fmt.Errorf("space of %d candidates exceeds the %d-candidate bound: %w", n, MaxCandidates, ErrSpaceTooLarge)
	}
	if sp.MaxUse != nil {
		n *= sp.MaxUse.count()
	}
	if n > MaxCandidates {
		return fmt.Errorf("space of %d candidates exceeds the %d-candidate bound: %w", n, MaxCandidates, ErrSpaceTooLarge)
	}
	if sp.Ports != nil {
		n *= sp.Ports.count()
	}
	if sp.Threads != nil {
		n *= sp.Threads.count()
	}
	if n > MaxCandidates {
		return fmt.Errorf("space of %d candidates exceeds the %d-candidate bound: %w", n, MaxCandidates, ErrSpaceTooLarge)
	}
	return nil
}

func validatePolicies(name string, vals []string, known map[string]bool) error {
	seen := make(map[string]bool, len(vals))
	for _, v := range vals {
		if !known[v] {
			return fmt.Errorf("axis %s: unknown policy %q", name, v)
		}
		if seen[v] {
			return fmt.Errorf("axis %s: duplicate policy %q", name, v)
		}
		seen[v] = true
	}
	return nil
}

func listCount(vals []string) int {
	if len(vals) == 0 {
		return 1 // defaulted single policy
	}
	return len(vals)
}

// Candidate is one enumerated point of the space: a validated scheme
// plus the workload thread count it is evaluated under. Threads is 0 when
// the space has no Threads axis — the classic single-context machine —
// and carries the axis value otherwise (1 included, so a T=1 baseline
// rides the same search as its multithreaded variants). The scheme name
// already carries any -pN port and -tN thread suffixes, so candidate
// names stay unique and sweep runs match back by name alone.
type Candidate struct {
	Scheme  sim.Scheme
	Threads int
}

// Candidates enumerates the space as validated candidates in a fixed
// deterministic order (kind, entries, ways, index, max_pregs, max_use,
// ports, threads). Combinations the scheme layer rejects (indivisible
// geometry, PReg space below the machine's register count, …) are skipped
// and counted, not fatal: a rectangular space legitimately crosses
// validity boundaries. An entirely invalid space is an error.
func (s Spec) Candidates() (cands []Candidate, skipped int, err error) {
	kinds := s.Space.Kinds
	if len(kinds) == 0 {
		kinds = []string{"use"}
	}
	indexNames := s.Space.Index
	if len(indexNames) == 0 {
		indexNames = []string{"filtered"}
	}
	indexes := make([]core.IndexScheme, len(indexNames))
	for i, n := range indexNames {
		ix, perr := sim.ParseIndexScheme(n)
		if perr != nil {
			return nil, 0, perr
		}
		indexes[i] = ix
	}
	pregs := []int{0} // 0: scheme default (machine register count)
	if s.Space.MaxPRegs != nil {
		pregs = s.Space.MaxPRegs.expand()
	}
	uses := []int{0} // 0: scheme default saturation
	if s.Space.MaxUse != nil {
		uses = s.Space.MaxUse.expand()
	}
	ports := []int{0} // 0: unported legacy backing file
	if s.Space.Ports != nil {
		ports = s.Space.Ports.expand()
	}
	threads := []int{0} // 0: single-context workload
	if s.Space.Threads != nil {
		threads = s.Space.Threads.expand()
	}

	names := make(map[string]bool)
	for _, kind := range kinds {
		for _, entries := range s.Space.Entries.expand() {
			for _, ways := range s.Space.Ways.expand() {
				for _, ix := range indexes {
					for _, pr := range pregs {
						for _, mu := range uses {
							for _, po := range ports {
								for _, th := range threads {
									sc := buildCandidate(kind, entries, ways, ix)
									if s.Space.MaxPRegs != nil {
										sc.Cache.MaxPRegs = pr
										sc.Name = fmt.Sprintf("%s-p%d", sc.Name, pr)
									}
									if s.Space.MaxUse != nil {
										sc.Cache.MaxUse = mu
										sc.Name = fmt.Sprintf("%s-u%d", sc.Name, mu)
									}
									// Port 0 stays unsuffixed: it is the
									// legacy model, distinct by name from
									// every -pN filtered variant. (A live
									// MaxPRegs -pN suffix cannot collide: its
									// values validate only at >= the machine
									// register count, far above MaxReadPorts.)
									if po > 0 {
										sc = sc.WithPorts(po)
									}
									if s.Space.Threads != nil {
										sc.Name = fmt.Sprintf("%s-t%d", sc.Name, th)
									}
									if sc.Validate() != nil {
										skipped++
										continue
									}
									if names[sc.Name] {
										return nil, 0, fmt.Errorf("explore: duplicate candidate name %q", sc.Name)
									}
									names[sc.Name] = true
									cands = append(cands, Candidate{Scheme: sc, Threads: th})
								}
							}
						}
					}
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("explore: no valid candidate in the space (%d combinations all rejected)", skipped)
	}
	return cands, skipped, nil
}

func buildCandidate(kind string, entries, ways int, ix core.IndexScheme) sim.Scheme {
	switch kind {
	case "lru":
		return sim.LRU(entries, ways, ix)
	case "nb":
		return sim.NonBypass(entries, ways, ix)
	default:
		return sim.UseBased(entries, ways, ix)
	}
}
