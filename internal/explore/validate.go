package explore

// ValidateResult re-derives everything checkable about a Result from its
// own contents: checkresults runs it over the smoke artifact, and any
// consumer can run it over an archived frontier before trusting it.

import (
	"fmt"
	"sort"

	"regcache/internal/sim"
)

// ValidateResult checks a Result document for internal consistency:
// monotone rung budgets with exact survivor chaining, per-point
// provenance that refers to real points, and a Frontier that is exactly
// the non-dominated set over the full-budget survivors (recomputed here,
// not trusted).
func ValidateResult(r *Result) error {
	if r.SchemaVersion != ResultSchemaVersion {
		return fmt.Errorf("schema version %d, want %d", r.SchemaVersion, ResultSchemaVersion)
	}
	if r.Generator == "" {
		return fmt.Errorf("missing generator")
	}
	if r.Strategy != StrategyGrid && r.Strategy != StrategyHalving {
		return fmt.Errorf("unknown strategy %q", r.Strategy)
	}
	if r.Objective != ObjectiveName {
		return fmt.Errorf("unknown objective %q", r.Objective)
	}
	if r.CostModel != CostModelName {
		return fmt.Errorf("unknown cost model %q", r.CostModel)
	}
	if len(r.Benches) == 0 {
		return fmt.Errorf("no benches")
	}
	if len(r.Points) == 0 {
		return fmt.Errorf("no points")
	}
	if len(r.Rungs) == 0 {
		return fmt.Errorf("no rungs")
	}
	if r.Strategy == StrategyGrid && len(r.Rungs) != 1 {
		return fmt.Errorf("grid strategy with %d rungs", len(r.Rungs))
	}

	// Rung schedule: numbered consecutively, strictly increasing budgets
	// ending at the full budget, survivors chained rung to rung, the last
	// rung never eliminating.
	for i, rg := range r.Rungs {
		if rg.Rung != i {
			return fmt.Errorf("rung %d: numbered %d", i, rg.Rung)
		}
		if i > 0 && rg.Insts <= r.Rungs[i-1].Insts {
			return fmt.Errorf("rung %d: budget %d not above rung %d's %d", i, rg.Insts, i-1, r.Rungs[i-1].Insts)
		}
		if rg.Survivors < 1 || rg.Survivors > rg.Candidates {
			return fmt.Errorf("rung %d: %d survivors of %d candidates", i, rg.Survivors, rg.Candidates)
		}
		if i > 0 && rg.Candidates != r.Rungs[i-1].Survivors {
			return fmt.Errorf("rung %d: %d candidates but rung %d kept %d", i, rg.Candidates, i-1, r.Rungs[i-1].Survivors)
		}
	}
	last := len(r.Rungs) - 1
	if r.Rungs[last].Insts != r.Insts {
		return fmt.Errorf("last rung budget %d != full budget %d", r.Rungs[last].Insts, r.Insts)
	}
	if r.Rungs[0].Candidates != len(r.Points) {
		return fmt.Errorf("rung 0 has %d candidates, document has %d points", r.Rungs[0].Candidates, len(r.Points))
	}
	if r.Rungs[last].Survivors != r.Rungs[last].Candidates {
		return fmt.Errorf("last rung eliminated candidates (%d -> %d)", r.Rungs[last].Candidates, r.Rungs[last].Survivors)
	}

	// Per-point provenance.
	names := make(map[string]bool, len(r.Points))
	frontierSet := make(map[int]bool, len(r.Frontier))
	for _, i := range r.Frontier {
		if i < 0 || i >= len(r.Points) {
			return fmt.Errorf("frontier refers to point %d of %d", i, len(r.Points))
		}
		frontierSet[i] = true
	}
	eliminatedAt := make([]int, len(r.Rungs))
	var survivors []int
	for i, p := range r.Points {
		if p.Index != i {
			return fmt.Errorf("point %d: indexed %d", i, p.Index)
		}
		if p.Scheme.Name == "" {
			return fmt.Errorf("point %d: unnamed scheme", i)
		}
		if names[p.Scheme.Name] {
			return fmt.Errorf("point %d: duplicate scheme name %q", i, p.Scheme.Name)
		}
		names[p.Scheme.Name] = true
		if p.Cost <= 0 || p.Objective <= 0 {
			return fmt.Errorf("point %d (%s): non-positive cost/objective", i, p.Scheme.Name)
		}
		if p.Threads < 0 || p.Threads > sim.MaxThreads {
			return fmt.Errorf("point %d (%s): thread count %d outside [0, %d]", i, p.Scheme.Name, p.Threads, sim.MaxThreads)
		}
		switch p.Status {
		case StatusEliminated:
			if p.LastRung < 0 || p.LastRung >= last {
				return fmt.Errorf("point %d: eliminated at terminal rung %d", i, p.LastRung)
			}
			if p.EliminatedAtRung != p.LastRung {
				return fmt.Errorf("point %d: eliminated at rung %d but last evaluated at %d", i, p.EliminatedAtRung, p.LastRung)
			}
			if p.DominatedBy != -1 {
				return fmt.Errorf("point %d: eliminated yet dominated by %d", i, p.DominatedBy)
			}
			eliminatedAt[p.LastRung]++
		case StatusFrontier, StatusDominated:
			if p.LastRung != last {
				return fmt.Errorf("point %d: status %s but last rung %d of %d", i, p.Status, p.LastRung, last)
			}
			if p.EliminatedAtRung != -1 {
				return fmt.Errorf("point %d: surviving point carries elimination rung %d", i, p.EliminatedAtRung)
			}
			if (p.Status == StatusFrontier) != frontierSet[i] {
				return fmt.Errorf("point %d: status %s disagrees with frontier list", i, p.Status)
			}
			if p.Status == StatusFrontier && p.DominatedBy != -1 {
				return fmt.Errorf("point %d: frontier point dominated by %d", i, p.DominatedBy)
			}
			if p.Status == StatusDominated {
				d := p.DominatedBy
				if d < 0 || d >= len(r.Points) || !frontierSet[d] {
					return fmt.Errorf("point %d: dominated_by %d is not a frontier point", i, d)
				}
				dp := r.Points[d]
				if !Dominates(Point{dp.Objective, dp.Cost}, Point{p.Objective, p.Cost}) {
					return fmt.Errorf("point %d: claimed dominator %d does not dominate it", i, d)
				}
			}
			survivors = append(survivors, i)
		default:
			return fmt.Errorf("point %d: unknown status %q", i, p.Status)
		}
	}

	// Eliminations must account exactly for each rung's cut.
	for i, rg := range r.Rungs {
		if cut := rg.Candidates - rg.Survivors; eliminatedAt[i] != cut {
			return fmt.Errorf("rung %d: %d points eliminated, schedule cut %d", i, eliminatedAt[i], cut)
		}
	}
	if len(survivors) != r.Rungs[last].Survivors {
		return fmt.Errorf("%d surviving points, last rung kept %d", len(survivors), r.Rungs[last].Survivors)
	}

	// The frontier must be exactly the recomputed non-dominated set over
	// the survivors, listed in cost-ascending (then index) order.
	ps := make([]Point, len(survivors))
	for k, i := range survivors {
		ps[k] = Point{Objective: r.Points[i].Objective, Cost: r.Points[i].Cost}
	}
	want := make(map[int]bool, len(survivors))
	for _, k := range ParetoFrontier(ps) {
		want[survivors[k]] = true
	}
	if len(want) != len(r.Frontier) {
		return fmt.Errorf("frontier lists %d points, recomputation finds %d", len(r.Frontier), len(want))
	}
	for _, i := range r.Frontier {
		if !want[i] {
			return fmt.Errorf("frontier point %d is dominated on recomputation", i)
		}
	}
	ordered := sort.SliceIsSorted(r.Frontier, func(a, b int) bool {
		pa, pb := r.Points[r.Frontier[a]], r.Points[r.Frontier[b]]
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		return pa.Index < pb.Index
	})
	if !ordered {
		return fmt.Errorf("frontier not in cost-ascending order")
	}
	return nil
}
