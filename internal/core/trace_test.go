package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"regcache/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// traceCache builds a tiny deterministic cache for event-trace tests:
// 4 entries, 2 ways (2 sets), use-based policies, round-robin indexing
// (sets alternate 0,1,0,1,... in allocation order), no shadow.
func traceCache(t obs.Tracer) *Cache {
	c := New(Config{
		Entries: 4, Ways: 2,
		Insert: InsertUseBased, Replace: ReplaceUseBased, Index: IndexRoundRobin,
		MaxPRegs: 8,
	})
	c.SetTracer(t)
	return c
}

// driveTraceScript runs a fixed access sequence covering every cache event
// kind: write, hit, write-filtered, filtered miss, fill, eviction with a
// non-zero remaining-use count, conflict miss, pinned insertion, and
// invalidate-on-free.
func driveTraceScript(c *Cache) {
	s0 := c.Allocate(0, 3) // set 0
	c.Produce(0, s0, 3, false, false, 10)
	c.Read(0, s0, 11) // hit, 2 uses left
	c.Read(0, s0, 12) // hit, 1 use left

	s1 := c.Allocate(1, 2) // set 1
	c.Produce(1, s1, 2, false, false, 13)

	s2 := c.Allocate(2, 1) // set 0
	c.Produce(2, s2, 1, false, false, 14)

	s3 := c.Allocate(3, 0)                // set 1
	c.Produce(3, s3, 0, false, false, 15) // zero remaining uses: filtered
	c.Read(3, s3, 16)                     // miss on the filtered value
	c.Fill(3, s3, 18)                     // backing file supplies it

	s4 := c.Allocate(4, 2) // set 0, now full: evicts p0 with 1 use left
	c.Produce(4, s4, 2, false, false, 20)
	c.NoteBypassUse(4, s4) // stage-2 bypass consumer: resident count drops

	c.Read(0, s0, 21) // p0 was evicted: conflict-class miss

	s5 := c.Allocate(5, 7) // set 1, full: evicts p3 (0 uses); pinned insert
	c.Produce(5, s5, 7, true, false, 22)

	c.Free(1, 23) // invalidate p1's resident entry
}

// TestCacheEventGolden locks the exact NDJSON event stream the script
// produces. Regenerate with go test ./internal/core -run Golden -update.
func TestCacheEventGolden(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewCacheLog(&buf)
	driveTraceScript(traceCache(log))
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "cachelog.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("cache event stream diverged from golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestCacheLogAggregates checks the sink's running aggregates against the
// cache's own statistics for the same run.
func TestCacheLogAggregates(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewCacheLog(&buf)
	c := traceCache(log)
	driveTraceScript(c)

	checks := []struct {
		name string
		kind obs.CacheEventKind
		want uint64
	}{
		{"writes", obs.CacheWrite, c.Stats.InitialWrites},
		{"fills", obs.CacheFill, c.Stats.Fills},
		{"hits", obs.CacheHit, c.Stats.Hits},
		{"misses", obs.CacheMiss, c.Stats.Misses},
		{"evictions", obs.CacheEvict, c.Stats.Evictions},
		{"invalidations", obs.CacheInvalidate, c.Stats.Invalidations},
		{"filtered writes", obs.CacheWriteFiltered, c.Stats.WritesFiltered},
	}
	for _, ck := range checks {
		if got := log.Count(ck.kind); got != ck.want {
			t.Errorf("%s: log saw %d, cache counted %d", ck.name, got, ck.want)
		}
	}
	if got := log.MissCount(int8(MissFiltered)); got != c.Stats.MissBy[MissFiltered] {
		t.Errorf("filtered misses: log %d, cache %d", got, c.Stats.MissBy[MissFiltered])
	}
	if got := log.MissCount(int8(MissConflict)); got != c.Stats.MissBy[MissConflict] {
		t.Errorf("conflict misses: log %d, cache %d", got, c.Stats.MissBy[MissConflict])
	}
	// The script evicts p0 with 1 remaining use and p3 with 0: the evict
	// histogram is the Figure 5 distribution source.
	eu := log.EvictUses()
	if eu.N() != 2 || eu.Count(1) != 1 || eu.Count(0) != 1 {
		t.Errorf("evict remaining-use histogram = %v, want one 0 and one 1", eu)
	}
}

// TestNilTracerAllocs verifies the disabled-tracing fast path adds no
// allocations to any cache operation (the acceptance gate for threading
// trace hooks through the hot loop).
func TestNilTracerAllocs(t *testing.T) {
	c := traceCache(nil)
	p := PReg(0)
	allocs := testing.AllocsPerRun(1000, func() {
		set := c.Allocate(p, 2)
		c.Produce(p, set, 2, false, false, 5)
		c.Read(p, set, 6)
		c.NoteBypassUse(p, set)
		c.Fill(p, set, 7)
		c.Free(p, 8)
		p = (p + 1) % 8
	})
	if allocs != 0 {
		t.Fatalf("cache ops with nil tracer allocate %.1f per run, want 0", allocs)
	}
}

// TestTracedAllocs bounds the cost of the enabled path: the CacheLog sink
// itself must stay allocation-free per event (buffers are reused).
func TestTracedAllocs(t *testing.T) {
	log := obs.NewCacheLog(nopWriter{})
	c := traceCache(log)
	p := PReg(0)
	allocs := testing.AllocsPerRun(1000, func() {
		set := c.Allocate(p, 2)
		c.Produce(p, set, 2, false, false, 5)
		c.Read(p, set, 6)
		c.Free(p, 8)
		p = (p + 1) % 8
	})
	if allocs != 0 {
		t.Fatalf("cache ops with CacheLog tracer allocate %.1f per run, want 0", allocs)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
