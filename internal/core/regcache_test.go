package core

import (
	"testing"
	"testing/quick"
)

// tiny returns a 4-entry, 2-way cache for focused policy tests.
func tiny(insert InsertPolicy, replace ReplacePolicy, index IndexScheme) *Cache {
	return New(Config{Entries: 4, Ways: 2, Insert: insert, Replace: replace, Index: index})
}

func TestConfigDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.Entries != 64 || cfg.Ways != 64 {
		t.Errorf("defaults: entries=%d ways=%d, want 64/64 (fully associative)", cfg.Entries, cfg.Ways)
	}
	if cfg.MaxUse != 7 || cfg.UnknownDefault != 1 || cfg.FillDefault != 0 {
		t.Errorf("defaults: maxuse=%d unknown=%d fill=%d, want 7/1/0", cfg.MaxUse, cfg.UnknownDefault, cfg.FillDefault)
	}
	if cfg.HighUseCutoff != 5 {
		t.Errorf("high-use cutoff = %d, want 5", cfg.HighUseCutoff)
	}
}

func TestUseBasedConfigIsPaperDesignPoint(t *testing.T) {
	cfg := UseBasedConfig()
	c := New(cfg)
	got := c.Config()
	if got.Entries != 64 || got.Ways != 2 || got.Insert != InsertUseBased ||
		got.Replace != ReplaceUseBased || got.Index != IndexFilteredRR {
		t.Errorf("UseBasedConfig = %+v", got)
	}
	if c.NumSets() != 32 {
		t.Errorf("sets = %d, want 32", c.NumSets())
	}
	if got.SetSkipThreshold != 1 {
		t.Errorf("skip threshold = %d, want ways/2 = 1", got.SetSkipThreshold)
	}
}

func TestClampAndPin(t *testing.T) {
	c := New(Config{Entries: 4, Ways: 2})
	if c.ClampUses(100) != 7 || c.ClampUses(-1) != 0 || c.ClampUses(3) != 3 {
		t.Error("ClampUses wrong")
	}
	if !c.Pins(7) || c.Pins(6) {
		t.Error("Pins wrong")
	}
}

func TestBasicHitAndUseDecrement(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 2)
	if !c.Produce(1, set, 2, false, false, 10) {
		t.Fatal("value with remaining uses must be inserted")
	}
	if !c.Read(1, set, 11) {
		t.Fatal("expected hit")
	}
	uses, _, ok := c.Lookup(1, set)
	if !ok || uses != 1 {
		t.Fatalf("after one read: uses=%d ok=%v, want 1", uses, ok)
	}
	c.Read(1, set, 12)
	uses, _, _ = c.Lookup(1, set)
	if uses != 0 {
		t.Fatalf("after two reads: uses=%d, want 0", uses)
	}
	// Zero-use values stay resident until victimized (Section 3.4).
	if !c.Read(1, set, 13) {
		t.Fatal("zero-use resident value must still hit")
	}
}

func TestUseBasedInsertionFilters(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 1)
	// The only predicted consumer was satisfied by bypass stage 1:
	// remaining = 0, so the write is filtered.
	if c.Produce(1, set, 0, false, true, 10) {
		t.Fatal("fully bypassed value must not be inserted")
	}
	if c.Stats.WritesFiltered != 1 {
		t.Fatalf("WritesFiltered = %d, want 1", c.Stats.WritesFiltered)
	}
	// A later read misses and classifies as filtered.
	if c.Read(1, set, 20) {
		t.Fatal("filtered value cannot hit")
	}
	if c.Stats.MissBy[MissFiltered] != 1 {
		t.Fatalf("filtered misses = %d, want 1", c.Stats.MissBy[MissFiltered])
	}
}

func TestUseBasedInsertionKeepsPartiallyBypassed(t *testing.T) {
	// The key advantage over non-bypass (Section 3.1): a multi-use value
	// bypassed to only SOME consumers is still cached.
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 3)
	if !c.Produce(1, set, 2, false, true, 10) {
		t.Fatal("value with remaining uses must be inserted despite bypassing")
	}
}

func TestNonBypassInsertionFiltersOnAnyBypass(t *testing.T) {
	c := tiny(InsertNonBypass, ReplaceLRU, IndexRoundRobin)
	set := c.Allocate(1, 3)
	// Even with 2 uses remaining, any bypass filters the write — the
	// non-bypass heuristic's weakness the paper exploits.
	if c.Produce(1, set, 2, false, true, 10) {
		t.Fatal("non-bypass must filter any bypassed value")
	}
	set2 := c.Allocate(2, 1)
	if !c.Produce(2, set2, 1, false, false, 11) {
		t.Fatal("non-bypassed value must be inserted")
	}
}

func TestAlwaysInsertion(t *testing.T) {
	c := tiny(InsertAlways, ReplaceLRU, IndexRoundRobin)
	set := c.Allocate(1, 0)
	if !c.Produce(1, set, 0, false, true, 10) {
		t.Fatal("LRU design caches every value")
	}
}

func TestUseBasedReplacementPicksFewestUses(t *testing.T) {
	// Single-set cache (2 entries, 2 ways): fill with uses {0, 3}, insert a
	// third value; the zero-use entry must be the victim.
	c := New(Config{Entries: 2, Ways: 2, Insert: InsertAlways, Replace: ReplaceUseBased, Index: IndexRoundRobin})
	c.Allocate(1, 0)
	c.Produce(1, 0, 0, false, false, 10) // zero uses
	c.Allocate(2, 3)
	c.Produce(2, 0, 3, false, false, 11) // three uses
	c.Allocate(3, 1)
	c.Produce(3, 0, 1, false, false, 12)
	if _, _, ok := c.Lookup(1, 0); ok {
		t.Fatal("zero-use entry should have been victimized")
	}
	if _, _, ok := c.Lookup(2, 0); !ok {
		t.Fatal("high-use entry should survive")
	}
	if c.Stats.VictimsZeroUse != 1 || c.Stats.Victims != 1 {
		t.Fatalf("victim stats = %d/%d, want 1/1", c.Stats.VictimsZeroUse, c.Stats.Victims)
	}
}

func TestUseBasedReplacementLRUTiebreak(t *testing.T) {
	c := New(Config{Entries: 2, Ways: 2, Insert: InsertAlways, Replace: ReplaceUseBased, Index: IndexRoundRobin})
	c.Allocate(1, 1)
	c.Produce(1, 0, 1, false, false, 10)
	c.Allocate(2, 1)
	c.Produce(2, 0, 1, false, false, 20) // same uses, younger
	c.Allocate(3, 1)
	c.Produce(3, 0, 1, false, false, 30)
	if _, _, ok := c.Lookup(1, 0); ok {
		t.Fatal("older entry should lose the tie")
	}
	if _, _, ok := c.Lookup(2, 0); !ok {
		t.Fatal("younger entry should survive the tie")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(Config{Entries: 2, Ways: 2, Insert: InsertAlways, Replace: ReplaceLRU, Index: IndexRoundRobin})
	c.Allocate(1, 7)
	c.Produce(1, 0, 7, true, false, 10) // pinned and high-use — LRU ignores that
	c.Allocate(2, 0)
	c.Produce(2, 0, 0, false, false, 20)
	c.Read(1, 0, 25) // touch 1: 2 becomes LRU
	c.Allocate(3, 1)
	c.Produce(3, 0, 1, false, false, 30)
	if _, _, ok := c.Lookup(2, 0); ok {
		t.Fatal("LRU entry (preg 2) should have been evicted")
	}
	if _, _, ok := c.Lookup(1, 0); !ok {
		t.Fatal("recently read entry should survive")
	}
}

func TestPinnedEntriesResistReplacementAndDecrement(t *testing.T) {
	c := New(Config{Entries: 2, Ways: 2, Insert: InsertUseBased, Replace: ReplaceUseBased, Index: IndexRoundRobin})
	c.Allocate(1, 7)
	c.Produce(1, 0, 7, true, false, 10)
	for i := 0; i < 20; i++ {
		c.Read(1, 0, uint64(11+i))
	}
	uses, pinned, ok := c.Lookup(1, 0)
	if !ok || !pinned || uses != 7 {
		t.Fatalf("pinned entry: uses=%d pinned=%v ok=%v, want 7/true/true", uses, pinned, ok)
	}
	// Fill the set and insert more values: the pinned entry must survive.
	c.Allocate(2, 0)
	c.Produce(2, 0, 0, false, false, 40)
	c.Allocate(3, 0)
	c.Produce(3, 0, 0, false, false, 41)
	c.Allocate(4, 0)
	c.Produce(4, 0, 0, false, false, 42)
	if _, _, ok := c.Lookup(1, 0); !ok {
		t.Fatal("pinned entry was evicted")
	}
	// Only invalidate-on-free removes it.
	c.Free(1, 50)
	if _, _, ok := c.Lookup(1, 0); ok {
		t.Fatal("freed pinned entry still resident")
	}
}

func TestFillUsesFillDefault(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 1)
	c.Produce(1, set, 0, false, true, 10) // filtered
	c.Read(1, set, 20)                    // miss
	c.Fill(1, set, 28)
	uses, pinned, ok := c.Lookup(1, set)
	if !ok || uses != 0 || pinned {
		t.Fatalf("fill: uses=%d pinned=%v ok=%v, want 0/false/true", uses, pinned, ok)
	}
	if c.Stats.Fills != 1 {
		t.Fatalf("Fills = %d, want 1", c.Stats.Fills)
	}
	// The filled value hits subsequently.
	if !c.Read(1, set, 30) {
		t.Fatal("filled value should hit")
	}
}

func TestFillAfterFreeIsDropped(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 1)
	c.Produce(1, set, 1, false, false, 10)
	c.Free(1, 20)
	c.Fill(1, set, 25) // in-flight fill completing after squash/free
	if _, _, ok := c.Lookup(1, set); ok {
		t.Fatal("fill after free must not install a stale value")
	}
}

func TestInvalidateOnFreeStats(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 2)
	c.Produce(1, set, 2, false, false, 10)
	c.Free(1, 35)
	if c.Stats.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", c.Stats.Invalidations)
	}
	if c.Stats.Residencies != 1 || c.Stats.ResidencyCycles != 25 {
		t.Fatalf("residency stats = %d/%d, want 1/25", c.Stats.Residencies, c.Stats.ResidencyCycles)
	}
	if c.Stats.CachedNeverRead != 1 {
		t.Fatalf("CachedNeverRead = %d, want 1 (no reads served)", c.Stats.CachedNeverRead)
	}
	// Double free is a no-op.
	c.Free(1, 40)
	if c.Stats.Invalidations != 1 || c.Stats.ValuesFreed != 1 {
		t.Fatal("double free changed statistics")
	}
}

func TestNoteBypassUseDecrementsResident(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 3)
	c.Produce(1, set, 3, false, false, 10)
	c.NoteBypassUse(1, set)
	uses, _, _ := c.Lookup(1, set)
	if uses != 2 {
		t.Fatalf("uses = %d after bypass note, want 2", uses)
	}
	// Pinned entries are not decremented.
	set2 := c.Allocate(2, 7)
	c.Produce(2, set2, 7, true, false, 11)
	c.NoteBypassUse(2, set2)
	uses, _, _ = c.Lookup(2, set2)
	if uses != 7 {
		t.Fatalf("pinned uses = %d after bypass note, want 7", uses)
	}
}

// Regression: NoteBypassUse must forward the decrement to the shadow cache
// (it is the only access path that didn't), or the shadow's use counts —
// and therefore its use-based victim choices and the Figure 8
// conflict/capacity split — drift from the primary's.
func TestNoteBypassUseKeepsShadowAligned(t *testing.T) {
	c := New(Config{Entries: 4, Ways: 2, Insert: InsertUseBased, Replace: ReplaceUseBased,
		Index: IndexRoundRobin, ClassifyMisses: true})
	if c.shadow == nil {
		t.Fatal("set-associative classify cache must have a shadow")
	}
	set := c.Allocate(1, 3)
	c.Produce(1, set, 3, false, false, 10)
	c.NoteBypassUse(1, set)
	pu, _, ok := c.Lookup(1, set)
	if !ok || pu != 2 {
		t.Fatalf("primary uses = %d (ok=%v), want 2", pu, ok)
	}
	su, _, ok := c.shadow.Lookup(1, 0)
	if !ok || su != pu {
		t.Fatalf("shadow uses = %d (ok=%v), want %d (aligned with primary)", su, ok, pu)
	}

	// The divergence case: a value evicted from the primary by a set
	// conflict but still resident in the fully-associative shadow must
	// still see the bypass use, exactly as Read/Fill/Free forward
	// unconditionally. Pregs 0,2,4 all map to set 0 under preg indexing;
	// the 4-entry shadow holds all three.
	c2 := New(Config{Entries: 4, Ways: 2, Insert: InsertAlways, Replace: ReplaceLRU,
		Index: IndexPReg, ClassifyMisses: true})
	for _, p := range []PReg{0, 2, 4} {
		c2.Allocate(p, 3)
		c2.Produce(p, 0, 3, false, false, uint64(10+p))
	}
	if _, _, ok := c2.Lookup(0, 0); ok {
		t.Fatal("preg 0 should have been evicted from the conflicting set")
	}
	if _, _, ok := c2.shadow.Lookup(0, 0); !ok {
		t.Fatal("preg 0 should still be resident in the FA shadow")
	}
	c2.NoteBypassUse(0, 0)
	if su, _, _ := c2.shadow.Lookup(0, 0); su != 2 {
		t.Fatalf("shadow uses = %d after bypass use of an evicted value, want 2", su)
	}
}

// Regression: an in-place refresh (a fill racing a still-resident entry)
// ends the old residency and must finalize it, or Residencies,
// ResidencyCycles, and CachedNeverRead undercount (Table 2 row 4 /
// Figure 10).
func TestFillRefreshFinalizesResidency(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	set := c.Allocate(1, 2)
	c.Produce(1, set, 2, false, false, 10)
	c.Read(1, set, 15)
	c.Fill(1, set, 30) // refreshes the resident entry in place
	if c.Stats.Residencies != 1 || c.Stats.ResidencyCycles != 20 {
		t.Fatalf("after refresh: residencies=%d cycles=%d, want 1/20",
			c.Stats.Residencies, c.Stats.ResidencyCycles)
	}
	if c.Stats.CachedNeverRead != 0 {
		t.Fatalf("CachedNeverRead = %d, want 0 (first residency served a read)", c.Stats.CachedNeverRead)
	}
	// The refreshed residency served no reads; freeing finalizes it too.
	c.Free(1, 40)
	if c.Stats.Residencies != 2 || c.Stats.ResidencyCycles != 30 {
		t.Fatalf("after free: residencies=%d cycles=%d, want 2/30",
			c.Stats.Residencies, c.Stats.ResidencyCycles)
	}
	if c.Stats.CachedNeverRead != 1 {
		t.Fatalf("CachedNeverRead = %d, want 1 (refresh residency unread)", c.Stats.CachedNeverRead)
	}
	// Occupancy must be unperturbed by the refresh (still one residency at
	// a time, zero after the free).
	if c.Occupied() != 0 {
		t.Fatalf("occupied = %d after free, want 0", c.Occupied())
	}
}

// Regression: out-of-range physical registers must panic instead of
// silently aliasing another register's lifecycle state via modulo.
func TestOutOfRangePRegPanics(t *testing.T) {
	c := New(Config{Entries: 4, Ways: 2, MaxPRegs: 16})
	for _, p := range []PReg{16, 100, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PReg %d: expected panic, got none", p)
				}
			}()
			c.Allocate(p, 1)
		}()
	}
	// In-range pregs keep working.
	if set := c.Allocate(15, 1); set < 0 || set >= c.NumSets() {
		t.Fatalf("in-range allocation failed: set %d", set)
	}
}

func TestRoundRobinIndexCyclesSets(t *testing.T) {
	c := New(Config{Entries: 8, Ways: 2, Insert: InsertAlways, Replace: ReplaceLRU, Index: IndexRoundRobin})
	seen := map[int]int{}
	for p := PReg(0); p < 8; p++ {
		seen[c.Allocate(p, 1)]++
	}
	if len(seen) != 4 {
		t.Fatalf("round-robin used %d sets, want all 4", len(seen))
	}
	for s, n := range seen {
		if n != 2 {
			t.Errorf("set %d assigned %d values, want 2", s, n)
		}
	}
}

func TestPRegIndexDerivesFromTag(t *testing.T) {
	c := New(Config{Entries: 8, Ways: 2, Insert: InsertAlways, Replace: ReplaceLRU, Index: IndexPReg})
	if got := c.Allocate(5, 1); got != 1 {
		t.Errorf("preg 5 -> set %d, want 1 (5 mod 4)", got)
	}
	if got := c.Allocate(8, 1); got != 0 {
		t.Errorf("preg 8 -> set %d, want 0", got)
	}
}

func TestMinimumIndexPicksLeastLoaded(t *testing.T) {
	c := New(Config{Entries: 8, Ways: 2, Insert: InsertAlways, Replace: ReplaceLRU, Index: IndexMinimum})
	s1 := c.Allocate(1, 6) // all loads zero: set 0
	if s1 != 0 {
		t.Fatalf("first allocation to set %d, want 0", s1)
	}
	s2 := c.Allocate(2, 1) // set 0 loaded with 6: pick set 1
	if s2 == s1 {
		t.Fatal("minimum policy reused the loaded set")
	}
	// Releasing the big value at retire frees its set again.
	c.Retire(1)
	s3 := c.Allocate(3, 1)
	if s3 != 0 {
		t.Fatalf("after release, allocation to set %d, want 0", s3)
	}
}

func TestFilteredRRSkipsHighUseSets(t *testing.T) {
	// 4 sets, 2 ways, skip threshold 1 (ways/2). A high-use value (>5
	// predicted uses) in a set makes round-robin skip it.
	c := New(Config{Entries: 8, Ways: 2, Insert: InsertAlways, Replace: ReplaceUseBased, Index: IndexFilteredRR})
	s0 := c.Allocate(1, 7) // high-use in set 0
	if s0 != 0 {
		t.Fatalf("first allocation to set %d, want 0", s0)
	}
	// Next allocations cycle 1,2,3 then wrap — skipping set 0.
	want := []int{1, 2, 3, 1, 2, 3}
	for i, w := range want {
		got := c.Allocate(PReg(2+i), 1)
		if got != w {
			t.Fatalf("allocation %d to set %d, want %d", i, got, w)
		}
	}
	// After the high-use value retires, set 0 is assignable again.
	c.Retire(1)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[c.Allocate(PReg(20+i), 1)] = true
	}
	if !seen[0] {
		t.Fatal("set 0 still skipped after high-use release")
	}
}

func TestFilteredRRAllSetsLoadedFallsBack(t *testing.T) {
	// When every set exceeds the threshold the policy must still assign.
	c := New(Config{Entries: 4, Ways: 2, Insert: InsertAlways, Replace: ReplaceUseBased, Index: IndexFilteredRR})
	c.Allocate(1, 7)
	c.Allocate(2, 7)
	set := c.Allocate(3, 1)
	if set != 0 && set != 1 {
		t.Fatalf("fallback assignment to set %d", set)
	}
}

func TestMissClassification(t *testing.T) {
	// 4-entry 2-way with shadow: conflict = miss that the FA shadow hits.
	c := New(Config{Entries: 4, Ways: 2, Insert: InsertAlways, Replace: ReplaceLRU,
		Index: IndexPReg, ClassifyMisses: true})
	// Three values all mapping to set 0 under preg indexing (pregs 0,2,4):
	// the set overflows while the 4-entry FA shadow does not.
	for _, p := range []PReg{0, 2, 4} {
		c.Allocate(p, 1)
		c.Produce(p, int(p)%2, 1, false, false, uint64(10+p))
	}
	if c.Read(0, 0, 20) {
		t.Fatal("preg 0 should have been evicted by the set conflict")
	}
	if c.Stats.MissBy[MissConflict] != 1 {
		t.Fatalf("conflict misses = %d, want 1 (shadow FA still holds it)", c.Stats.MissBy[MissConflict])
	}
	// Now overflow the shadow too: 5 live values > 4 entries.
	for _, p := range []PReg{1, 3, 5, 7, 9, 11} {
		c.Allocate(p, 1)
		c.Produce(p, int(p)%2, 1, false, false, uint64(30+p))
	}
	// preg 1 is long gone from both: capacity miss.
	if c.Read(1, 1, 50) {
		t.Fatal("preg 1 should be evicted everywhere")
	}
	if c.Stats.MissBy[MissCapacity] == 0 {
		t.Fatal("expected a capacity miss")
	}
}

func TestOccupancyIntegral(t *testing.T) {
	c := tiny(InsertAlways, ReplaceLRU, IndexRoundRobin)
	c.Allocate(1, 1)
	c.Produce(1, 0, 1, false, false, 10)
	c.Allocate(2, 1)
	c.Produce(2, 1, 1, false, false, 20) // 10 cycles at occupancy 1
	c.Free(1, 30)                        // 10 cycles at occupancy 2
	c.Free(2, 40)                        // 10 cycles at occupancy 1
	c.FinishSampling(50)                 // 10 cycles at occupancy 0
	// Integral = 10*0 + 10*1 + 10*2 + 10*1 + 10*0 = 40.
	if c.Stats.OccupancyInt != 40 {
		t.Fatalf("occupancy integral = %d, want 40", c.Stats.OccupancyInt)
	}
	if got := c.Stats.MeanOccupancy(50); got != 0.8 {
		t.Fatalf("mean occupancy = %v, want 0.8", got)
	}
}

func TestDerivedStats(t *testing.T) {
	c := tiny(InsertUseBased, ReplaceUseBased, IndexRoundRobin)
	// Value A: cached, read twice, freed.
	sa := c.Allocate(1, 2)
	c.Produce(1, sa, 2, false, false, 10)
	c.Read(1, sa, 11)
	c.Read(1, sa, 12)
	c.Free(1, 20)
	// Value B: filtered, never cached.
	sb := c.Allocate(2, 1)
	c.Produce(2, sb, 0, false, true, 15)
	c.Free(2, 25)
	s := &c.Stats
	if s.ValuesFreed != 2 || s.NeverCached != 1 {
		t.Fatalf("freed=%d neverCached=%d, want 2/1", s.ValuesFreed, s.NeverCached)
	}
	if got := s.FracNeverCached(); got != 0.5 {
		t.Errorf("FracNeverCached = %v, want 0.5", got)
	}
	if got := s.CacheCount(); got != 0.5 {
		t.Errorf("CacheCount = %v, want 0.5 (1 insertion / 2 values)", got)
	}
	if got := s.ReadsPerCachedValue(); got != 2 {
		t.Errorf("ReadsPerCachedValue = %v, want 2", got)
	}
	if got := s.FracWritesFiltered(); got != 0.5 {
		t.Errorf("FracWritesFiltered = %v, want 0.5", got)
	}
	if s.String() == "" {
		t.Error("empty stats render")
	}
}

func TestNonPowerOfTwoSizeWithDecoupledIndexing(t *testing.T) {
	// Section 4.1: decoupled indexing trivially enables non-power-of-two
	// caches. 48 entries, 2 ways = 24 sets.
	c := New(Config{Entries: 48, Ways: 2, Insert: InsertUseBased, Replace: ReplaceUseBased, Index: IndexFilteredRR})
	if c.NumSets() != 24 {
		t.Fatalf("sets = %d, want 24", c.NumSets())
	}
	for p := PReg(0); p < 100; p++ {
		set := c.Allocate(p, int(p)%8)
		if set < 0 || set >= 24 {
			t.Fatalf("set %d out of range", set)
		}
		c.Produce(p, set, 1, false, false, uint64(p))
	}
}

// Property: after any sequence of allocate/produce/read/free operations,
// the number of valid entries never exceeds the capacity, and every
// resident preg is live.
func TestInvariantsUnderRandomOperations(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{Entries: 8, Ways: 2, Insert: InsertUseBased, Replace: ReplaceUseBased, Index: IndexFilteredRR, MaxPRegs: 16})
		sets := map[PReg]int{}
		live := map[PReg]bool{}
		now := uint64(0)
		for _, op := range ops {
			now++
			p := PReg(op % 16)
			switch (op / 16) % 4 {
			case 0:
				if !live[p] {
					sets[p] = c.Allocate(p, int(op)%9)
					live[p] = true
				}
			case 1:
				if live[p] {
					c.Produce(p, sets[p], int(op)%8, op%9 == 8, op%2 == 0, now)
				}
			case 2:
				if live[p] {
					c.Read(p, sets[p], now)
				}
			case 3:
				if live[p] {
					c.Free(p, now)
					live[p] = false
				}
			}
			if c.Occupied() > 8 || c.Occupied() < 0 {
				return false
			}
		}
		// Every resident entry must belong to a live preg.
		for p := PReg(0); p < 16; p++ {
			if _, _, ok := c.Lookup(p, sets[p]); ok && !live[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss classification categories always sum to total misses.
func TestMissCategoriesSumProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{Entries: 8, Ways: 2, Insert: InsertUseBased, Replace: ReplaceUseBased, Index: IndexRoundRobin, MaxPRegs: 32, ClassifyMisses: true})
		sets := map[PReg]int{}
		live := map[PReg]bool{}
		produced := map[PReg]bool{}
		now := uint64(0)
		for _, op := range ops {
			now++
			p := PReg(op % 32)
			switch (op / 32) % 4 {
			case 0:
				if !live[p] {
					sets[p] = c.Allocate(p, int(op)%9)
					live[p], produced[p] = true, false
				}
			case 1:
				if live[p] && !produced[p] {
					c.Produce(p, sets[p], int(op)%8, false, op%2 == 0, now)
					produced[p] = true
				}
			case 2:
				if live[p] && produced[p] {
					if !c.Read(p, sets[p], now) {
						c.Fill(p, sets[p], now+2)
					}
				}
			case 3:
				if live[p] {
					c.Free(p, now)
					live[p] = false
				}
			}
		}
		var sum uint64
		for _, m := range c.Stats.MissBy {
			sum += m
		}
		return sum == c.Stats.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{InsertAlways.String(), "always"},
		{InsertNonBypass.String(), "non-bypass"},
		{InsertUseBased.String(), "use-based"},
		{ReplaceLRU.String(), "lru"},
		{ReplaceUseBased.String(), "use-based"},
		{IndexPReg.String(), "preg"},
		{IndexRoundRobin.String(), "round-robin"},
		{IndexMinimum.String(), "minimum"},
		{IndexFilteredRR.String(), "filtered"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("stringer: got %q want %q", c.got, c.want)
		}
	}
	if IndexPReg.Decoupled() || !IndexFilteredRR.Decoupled() {
		t.Error("Decoupled classification wrong")
	}
}
