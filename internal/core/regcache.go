// Package core implements the paper's primary contribution: a register
// cache with use-based insertion and replacement policies (Section 3) and
// decoupled set indexing (Section 4), alongside the reference policies it
// is evaluated against (LRU and non-bypass caches).
//
// The cache stores physical-register values between the bypass network and
// the backing register file. Each entry carries a remaining-use count
// initialized from a degree-of-use prediction; insertion is skipped when
// the bypass network has already satisfied every predicted consumer, and
// replacement victimizes the entry with the fewest remaining uses.
// Decoupled indexing assigns the cache set at rename time from a policy
// (round-robin, minimum-load, or filtered round-robin) instead of deriving
// it from physical-register tag bits, cutting conflict misses.
package core

import (
	"fmt"

	"regcache/internal/obs"
)

// PReg identifies a physical register (the cache tag under decoupled
// indexing).
type PReg int32

// InsertPolicy selects which produced values are written into the cache.
type InsertPolicy int

// Insertion policies evaluated in the paper.
const (
	InsertAlways    InsertPolicy = iota // LRU reference design: cache everything
	InsertNonBypass                     // Cruz et al.: skip if bypassed to anyone
	InsertUseBased                      // Section 3.1: skip if no predicted uses remain
)

func (p InsertPolicy) String() string {
	switch p {
	case InsertAlways:
		return "always"
	case InsertNonBypass:
		return "non-bypass"
	case InsertUseBased:
		return "use-based"
	}
	return fmt.Sprintf("insert?%d", int(p))
}

// ReplacePolicy selects the victim within a set.
type ReplacePolicy int

// Replacement policies: the two the paper evaluates plus a random baseline
// used by this repo's ablations to calibrate how much LRU itself buys.
const (
	ReplaceLRU      ReplacePolicy = iota // least recently used
	ReplaceUseBased                      // Section 3.2: fewest remaining uses, LRU tiebreak
	ReplaceRandom                        // ablation baseline: arbitrary victim
)

func (p ReplacePolicy) String() string {
	switch p {
	case ReplaceLRU:
		return "lru"
	case ReplaceUseBased:
		return "use-based"
	case ReplaceRandom:
		return "random"
	}
	return fmt.Sprintf("replace?%d", int(p))
}

// IndexScheme selects how values map to cache sets.
type IndexScheme int

// Indexing schemes evaluated in Section 4.2 / Figure 7.
const (
	IndexPReg       IndexScheme = iota // standard: low bits of the physical register tag
	IndexRoundRobin                    // decoupled: sequential set assignment at rename
	IndexMinimum                       // decoupled: set with the fewest total predicted uses
	IndexFilteredRR                    // decoupled: round-robin skipping high-use-loaded sets
)

func (s IndexScheme) String() string {
	switch s {
	case IndexPReg:
		return "preg"
	case IndexRoundRobin:
		return "round-robin"
	case IndexMinimum:
		return "minimum"
	case IndexFilteredRR:
		return "filtered"
	}
	return fmt.Sprintf("index?%d", int(s))
}

// Decoupled reports whether the scheme assigns sets at rename time.
func (s IndexScheme) Decoupled() bool { return s != IndexPReg }

// Config describes one register cache organization and policy set.
type Config struct {
	Entries int // total entries
	Ways    int // associativity; 0 selects fully associative

	Insert  InsertPolicy
	Replace ReplacePolicy
	Index   IndexScheme

	MaxUse         int // saturation point of the remaining-use count; predicted counts at this value pin the entry (default 7)
	UnknownDefault int // remaining uses assumed when the predictor declines (default 1)
	FillDefault    int // remaining uses assumed after a miss fill (default 0)

	HighUseCutoff    int // predicted uses beyond which a value is "high-use" for filtered round-robin (default 5, i.e. >5)
	SetSkipThreshold int // high-use values per set above which filtered round-robin skips the set (default ways/2)

	MaxPRegs int // size of the physical register space (default 512)

	ClassifyMisses bool // maintain a shadow fully-associative cache to split conflict from capacity misses
}

func (c Config) withDefaults() Config {
	if c.Entries == 0 {
		c.Entries = 64
	}
	if c.Ways == 0 || c.Ways > c.Entries {
		c.Ways = c.Entries // fully associative
	}
	if c.MaxUse == 0 {
		c.MaxUse = 7
	}
	if c.UnknownDefault == 0 {
		c.UnknownDefault = 1
	}
	if c.HighUseCutoff == 0 {
		c.HighUseCutoff = 5
	}
	if c.SetSkipThreshold == 0 {
		c.SetSkipThreshold = c.Ways / 2
		if c.SetSkipThreshold < 1 {
			c.SetSkipThreshold = 1
		}
	}
	if c.MaxPRegs == 0 {
		c.MaxPRegs = 512
	}
	return c
}

// UseBasedConfig returns the paper's proposed design point: 64-entry,
// two-way set-associative, use-based insertion and replacement, filtered
// round-robin decoupled indexing, max use 7, unknown default 1, fill
// default 0 (Section 5.3).
func UseBasedConfig() Config {
	return Config{
		Entries: 64, Ways: 2,
		Insert: InsertUseBased, Replace: ReplaceUseBased, Index: IndexFilteredRR,
		ClassifyMisses: true,
	}
}

// LRUConfig returns the Yung & Wilhelm reference design at the given
// geometry: every value cached, LRU replacement.
func LRUConfig(entries, ways int) Config {
	return Config{Entries: entries, Ways: ways, Insert: InsertAlways, Replace: ReplaceLRU, Index: IndexRoundRobin, ClassifyMisses: true}
}

// NonBypassConfig returns the Cruz et al. reference design at the given
// geometry: values bypassed to any consumer are not cached, LRU
// replacement.
func NonBypassConfig(entries, ways int) Config {
	return Config{Entries: entries, Ways: ways, Insert: InsertNonBypass, Replace: ReplaceLRU, Index: IndexRoundRobin, ClassifyMisses: true}
}

// entry is one register cache entry.
type entry struct {
	preg   PReg
	valid  bool
	uses   int    // remaining-use count
	pinned bool   // predicted at MaxUse: count frozen, evicted only by invalidation
	lru    uint64 // last-touch cycle for LRU ordering
	born   uint64 // insertion cycle (entry lifetime statistic)
	reads  uint64 // hits served by this residency
}

// pregState tracks per-value lifecycle information used for statistics and
// miss classification.
type pregState struct {
	live       bool // between Allocate and Free
	produced   bool // value has been written back
	inserted   bool // currently resident in the cache
	everCached bool // resident at any point during this lifetime
	insertions int  // initial writes + fills this lifetime
	reads      uint64
	set        int16 // assigned set (decoupled indexing)
	way        int16 // resident way while inserted (O(1) by-preg lookups)
	predUses   uint8 // prediction recorded at allocate (for index release)
	highUse    bool  // counted in filtered round-robin set loads
	released   bool  // index-policy accounting already released (retire/squash)
}

// Cache is a register cache. It is not safe for concurrent use; the
// simulator is single-threaded per core, as is the hardware it models.
type Cache struct {
	cfg   Config
	nsets int
	sets  [][]entry

	// liveWays counts valid entries per set so a full set (the steady
	// state, especially for the fully-associative shadow) skips the
	// empty-way scan.
	liveWays []int16

	pregs []pregState

	// Decoupled indexing state.
	rrNext     int
	setLoad    []int // minimum: sum of predicted uses assigned per set
	setHighUse []int // filtered round-robin: high-use values per set

	shadow *Cache // fully-associative twin for conflict/capacity split

	rngState uint64 // xorshift state for ReplaceRandom victim selection

	// tracer receives structured cache events when non-nil. The shadow
	// cache never traces: only the primary's events describe the modeled
	// hardware, and a traced shadow would double-count every kind.
	tracer obs.Tracer

	Stats Stats
}

// SetTracer attaches (or with nil detaches) a structured event tracer. The
// nil path adds a single predictable branch per access and no allocation.
func (c *Cache) SetTracer(t obs.Tracer) { c.tracer = t }

// New builds a register cache.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("core: %d entries not divisible by %d ways", cfg.Entries, cfg.Ways))
	}
	nsets := cfg.Entries / cfg.Ways
	sets := make([][]entry, nsets)
	backing := make([]entry, cfg.Entries)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	c := &Cache{
		cfg:        cfg,
		nsets:      nsets,
		sets:       sets,
		liveWays:   make([]int16, nsets),
		pregs:      make([]pregState, cfg.MaxPRegs),
		setLoad:    make([]int, nsets),
		setHighUse: make([]int, nsets),
		rngState:   0x9e3779b97f4a7c15,
	}
	if cfg.ClassifyMisses && cfg.Ways < cfg.Entries {
		sh := cfg
		sh.Ways = 0 // fully associative
		sh.Index = IndexRoundRobin
		sh.ClassifyMisses = false
		c.shadow = New(sh)
	}
	return c
}

// Config returns the (defaulted) configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.nsets }

func (c *Cache) state(p PReg) *pregState {
	// The pipeline wires its NumPRegs into Config.MaxPRegs (the documented
	// contract); wrapping out-of-range tags would silently alias two live
	// registers' lifecycle state, so fail loudly instead.
	if int(p) < 0 || int(p) >= len(c.pregs) {
		panic(fmt.Sprintf("core: PReg %d outside physical register space [0,%d); size Config.MaxPRegs to the pipeline's NumPRegs", p, len(c.pregs)))
	}
	return &c.pregs[p]
}

// ClampUses saturates a raw degree-of-use prediction at MaxUse (the cache
// tracks at most MaxUse remaining uses; saturated predictions pin).
func (c *Cache) ClampUses(pred int) int {
	if pred > c.cfg.MaxUse {
		return c.cfg.MaxUse
	}
	if pred < 0 {
		return 0
	}
	return pred
}

// UnknownDefault returns the remaining-use count assumed when no
// prediction is available.
func (c *Cache) UnknownDefault() int { return c.cfg.UnknownDefault }

// Pins reports whether a (clamped) predicted use count pins the entry.
func (c *Cache) Pins(clamped int) bool { return clamped >= c.cfg.MaxUse }

// ---------------------------------------------------------------------------
// Rename-time interface: set assignment (decoupled indexing).
// ---------------------------------------------------------------------------

// Allocate registers a newly renamed physical register with its clamped
// predicted use count and returns the cache set assigned to it. Under
// standard indexing the set derives from the tag; under decoupled schemes
// it is chosen by the policy and travels with the rename mapping.
func (c *Cache) Allocate(p PReg, predUses int) int {
	st := c.state(p)
	*st = pregState{live: true, predUses: uint8(min(predUses, 255))}
	var set int
	switch c.cfg.Index {
	case IndexPReg:
		set = int(p) % c.nsets
	case IndexRoundRobin:
		set = c.rrNext
		c.rrNext = (c.rrNext + 1) % c.nsets
	case IndexMinimum:
		set = 0
		for s := 1; s < c.nsets; s++ {
			if c.setLoad[s] < c.setLoad[set] {
				set = s
			}
		}
		c.setLoad[set] += predUses
	case IndexFilteredRR:
		set = c.rrNext
		for tries := 0; tries < c.nsets; tries++ {
			if c.setHighUse[set] < c.cfg.SetSkipThreshold {
				break
			}
			set = (set + 1) % c.nsets
		}
		c.rrNext = (set + 1) % c.nsets
		if predUses > c.cfg.HighUseCutoff {
			st.highUse = true
			c.setHighUse[set]++
		}
	}
	st.set = int16(set)
	if c.shadow != nil {
		c.shadow.Allocate(p, predUses)
	}
	return set
}

// releaseIndex undoes the index-policy accounting for p (at retire or
// squash — whichever comes first; idempotent).
func (c *Cache) releaseIndex(st *pregState) {
	if st.released {
		return
	}
	st.released = true
	switch c.cfg.Index {
	case IndexMinimum:
		c.setLoad[st.set] -= int(st.predUses)
		if c.setLoad[st.set] < 0 {
			c.setLoad[st.set] = 0
		}
	case IndexFilteredRR:
		if st.highUse {
			c.setHighUse[st.set]--
			if c.setHighUse[st.set] < 0 {
				c.setHighUse[st.set] = 0
			}
		}
	}
}

// Retire releases the index-policy accounting for p at instruction
// retirement (the paper decrements the minimum and filtered-round-robin
// counters at retire).
func (c *Cache) Retire(p PReg) {
	c.releaseIndex(c.state(p))
	if c.shadow != nil {
		c.shadow.Retire(p)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
