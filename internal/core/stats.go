package core

import (
	"fmt"
	"strings"

	"regcache/internal/obs"
)

// Stats accumulates the register cache metrics reported in Figures 8-10
// and Table 2 of the paper. Counter fields are exported for the experiment
// harness; derived metrics are provided as methods.
type Stats struct {
	// Read stream.
	Reads  uint64 // operand lookups presented to the cache
	Hits   uint64
	Misses uint64
	MissBy [numMissKinds]uint64

	// Write stream.
	Produced       uint64 // values presented at writeback
	WritesFiltered uint64 // initial writes skipped by the insertion policy
	Writes         uint64 // entries actually written (initial + fills)
	InitialWrites  uint64
	Fills          uint64

	// Replacement behaviour.
	Victims        uint64 // replacement decisions taken
	VictimsZeroUse uint64 // victims with zero remaining uses (Section 3.2: 84%)
	Evictions      uint64
	Invalidations  uint64 // invalidate-on-free removals

	// Per-value lifecycle.
	ValuesFreed        uint64 // produced values whose registers were freed
	InsertionsPerValue uint64 // total insertions over those values
	NeverCached        uint64 // values never resident during their lifetime
	CachedNeverRead    uint64 // residencies that served no reads
	Residencies        uint64
	ResidencyCycles    uint64

	// Occupancy integral (entries x cycles).
	OccupancyInt uint64

	occupied     int
	prevOccupied int
	lastOccCycle uint64
}

// Delta returns the counter difference s - prev. The unexported live
// occupancy-sampling fields are carried over from s unchanged: they are
// instantaneous state, not counters, and keeping them makes a delta against
// a zero snapshot exactly equal to s (the interval runner's K=1 guarantee).
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.Reads -= prev.Reads
	d.Hits -= prev.Hits
	d.Misses -= prev.Misses
	for k := range d.MissBy {
		d.MissBy[k] -= prev.MissBy[k]
	}
	d.Produced -= prev.Produced
	d.WritesFiltered -= prev.WritesFiltered
	d.Writes -= prev.Writes
	d.InitialWrites -= prev.InitialWrites
	d.Fills -= prev.Fills
	d.Victims -= prev.Victims
	d.VictimsZeroUse -= prev.VictimsZeroUse
	d.Evictions -= prev.Evictions
	d.Invalidations -= prev.Invalidations
	d.ValuesFreed -= prev.ValuesFreed
	d.InsertionsPerValue -= prev.InsertionsPerValue
	d.NeverCached -= prev.NeverCached
	d.CachedNeverRead -= prev.CachedNeverRead
	d.Residencies -= prev.Residencies
	d.ResidencyCycles -= prev.ResidencyCycles
	d.OccupancyInt -= prev.OccupancyInt
	return d
}

// Merge returns the counter sum s + o (the interval stitcher's per-interval
// cache stats aggregation). Live occupancy-sampling state is dropped: a
// merged Stats describes completed windows, not a running cache.
func (s Stats) Merge(o Stats) Stats {
	m := s
	m.occupied, m.prevOccupied, m.lastOccCycle = 0, 0, 0
	m.Reads += o.Reads
	m.Hits += o.Hits
	m.Misses += o.Misses
	for k := range m.MissBy {
		m.MissBy[k] += o.MissBy[k]
	}
	m.Produced += o.Produced
	m.WritesFiltered += o.WritesFiltered
	m.Writes += o.Writes
	m.InitialWrites += o.InitialWrites
	m.Fills += o.Fills
	m.Victims += o.Victims
	m.VictimsZeroUse += o.VictimsZeroUse
	m.Evictions += o.Evictions
	m.Invalidations += o.Invalidations
	m.ValuesFreed += o.ValuesFreed
	m.InsertionsPerValue += o.InsertionsPerValue
	m.NeverCached += o.NeverCached
	m.CachedNeverRead += o.CachedNeverRead
	m.Residencies += o.Residencies
	m.ResidencyCycles += o.ResidencyCycles
	m.OccupancyInt += o.OccupancyInt
	return m
}

// MissRate returns misses per operand lookup.
func (s *Stats) MissRate() float64 { return ratio(s.Misses, s.Reads) }

// HitRate returns hits per operand lookup.
func (s *Stats) HitRate() float64 { return ratio(s.Hits, s.Reads) }

// MissRateBy returns the given miss category per operand lookup.
func (s *Stats) MissRateBy(k MissKind) float64 { return ratio(s.MissBy[k], s.Reads) }

// ReadsPerCachedValue returns cache read hits per value that was ever
// cached (Table 2, row 1).
func (s *Stats) ReadsPerCachedValue() float64 {
	cached := s.ValuesFreed - s.NeverCached
	return ratio(s.Hits, cached)
}

// CacheCount returns the mean number of times each produced value was
// written into the cache (Table 2, row 2).
func (s *Stats) CacheCount() float64 { return ratio(s.InsertionsPerValue, s.ValuesFreed) }

// MeanOccupancy returns the time-averaged number of valid entries over the
// given simulation length (Table 2, row 3).
func (s *Stats) MeanOccupancy(cycles uint64) float64 { return ratio(s.OccupancyInt, cycles) }

// MeanEntryLifetime returns the mean residency length in cycles (Table 2,
// row 4).
func (s *Stats) MeanEntryLifetime() float64 { return ratio(s.ResidencyCycles, s.Residencies) }

// FracCachedNeverRead returns the fraction of residencies that served no
// read (Figure 10, left group).
func (s *Stats) FracCachedNeverRead() float64 { return ratio(s.CachedNeverRead, s.Residencies) }

// FracWritesFiltered returns the fraction of produced values whose initial
// write was filtered (Figure 10, middle group).
func (s *Stats) FracWritesFiltered() float64 { return ratio(s.WritesFiltered, s.Produced) }

// FracNeverCached returns the fraction of values never cached during their
// lifetime (Figure 10, right group).
func (s *Stats) FracNeverCached() float64 { return ratio(s.NeverCached, s.ValuesFreed) }

// FracVictimsZeroUse returns the fraction of replacement victims that had
// zero remaining uses (the paper reports 84% for use-based replacement).
func (s *Stats) FracVictimsZeroUse() float64 { return ratio(s.VictimsZeroUse, s.Victims) }

// String renders a compact multi-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reads %d (hit %.3f, miss %.4f: filt %.4f cap %.4f conf %.4f)\n",
		s.Reads, s.HitRate(), s.MissRate(),
		s.MissRateBy(MissFiltered), s.MissRateBy(MissCapacity), s.MissRateBy(MissConflict))
	fmt.Fprintf(&b, "writes %d (initial %d, fills %d, filtered %d of %d produced)\n",
		s.Writes, s.InitialWrites, s.Fills, s.WritesFiltered, s.Produced)
	fmt.Fprintf(&b, "victims %d (%.1f%% zero-use), evictions %d, invalidations %d\n",
		s.Victims, 100*s.FracVictimsZeroUse(), s.Evictions, s.Invalidations)
	fmt.Fprintf(&b, "values: freed %d, never-cached %.1f%%, cached-never-read %.1f%%, cache-count %.2f, reads/cached %.2f\n",
		s.ValuesFreed, 100*s.FracNeverCached(), 100*s.FracCachedNeverRead(),
		s.CacheCount(), s.ReadsPerCachedValue())
	return b.String()
}

// Register publishes the live counters and derived rates into a metrics
// registry under prefix (e.g. "cache"). The snapshot func reads s at
// evaluation time, so a registered Stats keeps reporting as the simulation
// advances.
func (s *Stats) Register(r *obs.Registry, prefix string) {
	r.Func(prefix+".counters", func() any { return *s })
	r.Gauge(prefix+".hit_rate", s.HitRate)
	r.Gauge(prefix+".miss_rate", s.MissRate)
	r.Gauge(prefix+".miss_rate_conflict", func() float64 { return s.MissRateBy(MissConflict) })
	r.Gauge(prefix+".miss_rate_capacity", func() float64 { return s.MissRateBy(MissCapacity) })
	r.Gauge(prefix+".miss_rate_filtered", func() float64 { return s.MissRateBy(MissFiltered) })
	r.Gauge(prefix+".frac_victims_zero_use", s.FracVictimsZeroUse)
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
