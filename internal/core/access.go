package core

import "regcache/internal/obs"

// This file implements the access-time behaviour of the register cache:
// produce (insertion policy), read (hit/miss with classification), fill,
// bypass-use accounting, and invalidate-on-free.

// MissKind classifies a register cache miss (Figure 8).
type MissKind int

// Miss classification, per Figure 8: a miss on a value whose initial write
// was filtered; a miss on an evicted value that a fully-associative cache
// of the same size would also have evicted (capacity); or a miss a
// fully-associative cache would have avoided (conflict).
const (
	MissFiltered MissKind = iota
	MissCapacity
	MissConflict
	numMissKinds
)

// NumMissKinds is the number of miss classes (the MissBy array length),
// exported for aggregators that break misses down per class.
const NumMissKinds = int(numMissKinds)

func (k MissKind) String() string {
	switch k {
	case MissFiltered:
		return "filtered"
	case MissCapacity:
		return "capacity"
	case MissConflict:
		return "conflict"
	}
	return "miss?"
}

// Produce presents a just-computed value to the cache at writeback.
// remaining is the use count left after bypass-stage-1 consumers were
// satisfied (only those can affect the write decision, Section 3.1);
// bypassed reports whether any stage-1 consumer was satisfied (the
// non-bypass heuristic's trigger); pinned marks saturated predictions.
// It returns true when the value was written into the cache.
func (c *Cache) Produce(p PReg, set int, remaining int, pinned bool, bypassed bool, now uint64) bool {
	st := c.state(p)
	st.produced = true
	insert := true
	switch c.cfg.Insert {
	case InsertAlways:
	case InsertNonBypass:
		insert = !bypassed
	case InsertUseBased:
		insert = pinned || remaining > 0
	}
	c.Stats.Produced++
	if !insert {
		c.Stats.WritesFiltered++
		if c.tracer != nil {
			c.tracer.TraceCache(obs.CacheEvent{Cycle: now, Kind: obs.CacheWriteFiltered,
				PReg: int32(p), Set: int16(set), Uses: int16(remaining), MissKind: -1, Pinned: pinned})
		}
		if c.shadow != nil {
			c.shadow.Produce(p, 0, remaining, pinned, bypassed, now)
		}
		return false
	}
	c.insert(p, set, remaining, pinned, now, false)
	if c.shadow != nil {
		c.shadow.Produce(p, 0, remaining, pinned, bypassed, now)
	}
	return true
}

// insert places a value into the given set, selecting a victim if needed.
func (c *Cache) insert(p PReg, set int, uses int, pinned bool, now uint64, isFill bool) {
	st := c.state(p)
	ways := c.sets[set]

	// Duplicate insertion of the same preg refreshes in place (a fill
	// racing a still-resident entry). The old residency ends here, so its
	// statistics must be finalized before the slot is overwritten. A value
	// has at most one residency cache-wide, tracked by its way index.
	slot := -1
	if st.inserted {
		if e := &ways[st.way]; e.valid && e.preg == p {
			slot = int(st.way)
			c.finishResidency(e, now)
		}
	}
	if slot < 0 && int(c.liveWays[set]) < len(ways) {
		for i := range ways {
			if !ways[i].valid {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		slot = c.victim(set)
		c.evict(set, slot, now)
	}
	if !ways[slot].valid {
		c.Stats.occupied++
		c.liveWays[set]++
	}
	ways[slot] = entry{preg: p, valid: true, uses: uses, pinned: pinned, lru: now, born: now}
	c.noteOccupancy(now)
	st.inserted = true
	st.way = int16(slot)
	st.everCached = true
	st.insertions++
	c.Stats.Writes++
	if isFill {
		c.Stats.Fills++
	} else {
		c.Stats.InitialWrites++
	}
	if c.tracer != nil {
		kind := obs.CacheWrite
		if isFill {
			kind = obs.CacheFill
		}
		c.tracer.TraceCache(obs.CacheEvent{Cycle: now, Kind: kind,
			PReg: int32(p), Set: int16(set), Uses: int16(uses), MissKind: -1, Pinned: pinned})
		if pinned {
			c.tracer.TraceCache(obs.CacheEvent{Cycle: now, Kind: obs.CachePin,
				PReg: int32(p), Set: int16(set), Uses: int16(uses), MissKind: -1, Pinned: true})
		}
	}
}

// victim selects the replacement way within a full set.
func (c *Cache) victim(set int) int {
	ways := c.sets[set]
	best := 0
	switch c.cfg.Replace {
	case ReplaceLRU:
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[best].lru {
				best = i
			}
		}
	case ReplaceRandom:
		c.rngState ^= c.rngState >> 12
		c.rngState ^= c.rngState << 25
		c.rngState ^= c.rngState >> 27
		best = int((c.rngState * 0x2545f4914f6cdd1d) >> 33 % uint64(len(ways)))
	case ReplaceUseBased:
		for i := 1; i < len(ways); i++ {
			bu, iu := effUses(&ways[best]), effUses(&ways[i])
			if iu < bu || (iu == bu && ways[i].lru < ways[best].lru) {
				best = i
			}
		}
	}
	c.Stats.Victims++
	if effUses(&ways[best]) == 0 {
		c.Stats.VictimsZeroUse++
	}
	return best
}

// effUses is the remaining-use count for victim comparison; pinned entries
// compare as effectively infinite.
func effUses(e *entry) int {
	if e.pinned {
		return 1 << 20
	}
	return e.uses
}

// evict removes the entry at (set, slot), finalizing its statistics.
func (c *Cache) evict(set, slot int, now uint64) {
	e := &c.sets[set][slot]
	if !e.valid {
		return
	}
	st := c.state(e.preg)
	st.inserted = false
	c.finishResidency(e, now)
	c.Stats.Evictions++
	if c.tracer != nil {
		// Uses carries the remaining-use count at eviction: the stream
		// behind the paper's Figure 5 distribution.
		c.tracer.TraceCache(obs.CacheEvent{Cycle: now, Kind: obs.CacheEvict,
			PReg: int32(e.preg), Set: int16(set), Uses: int16(e.uses), MissKind: -1, Pinned: e.pinned})
	}
	e.valid = false
	c.Stats.occupied--
	c.liveWays[set]--
	c.noteOccupancy(now)
}

// finishResidency accumulates the end-of-residency statistics.
func (c *Cache) finishResidency(e *entry, now uint64) {
	c.Stats.ResidencyCycles += now - e.born
	c.Stats.Residencies++
	if e.reads == 0 {
		c.Stats.CachedNeverRead++
	}
}

// Read looks up p in the cache (the set travels with the rename mapping
// under decoupled indexing). On a hit, the remaining-use count is
// decremented (unless pinned) and LRU state updates. On a miss, the miss
// is classified and counted; the caller fetches from the backing file and
// then calls Fill.
func (c *Cache) Read(p PReg, set int, now uint64) bool {
	c.Stats.Reads++
	st := c.state(p)
	if st.inserted {
		e := &c.sets[set][st.way]
		if e.valid && e.preg == p {
			e.lru = now
			e.reads++
			if !e.pinned && e.uses > 0 {
				e.uses--
			}
			st.reads++
			c.Stats.Hits++
			if c.tracer != nil {
				c.tracer.TraceCache(obs.CacheEvent{Cycle: now, Kind: obs.CacheHit,
					PReg: int32(p), Set: int16(set), Uses: int16(e.uses), MissKind: -1, Pinned: e.pinned})
			}
			if c.shadow != nil {
				c.shadow.Read(p, 0, now)
			}
			return true
		}
	}
	c.Stats.Misses++
	kind := c.classifyMiss(p, now)
	if c.tracer != nil {
		c.tracer.TraceCache(obs.CacheEvent{Cycle: now, Kind: obs.CacheMiss,
			PReg: int32(p), Set: int16(set), MissKind: int8(kind)})
	}
	return false
}

// classifyMiss attributes a miss per Figure 8 and returns the kind.
func (c *Cache) classifyMiss(p PReg, now uint64) MissKind {
	st := c.state(p)
	kind := MissConflict
	if !st.everCached || (st.insertions == 0) {
		kind = MissFiltered
	} else if c.shadow != nil {
		// Present in the same-size fully-associative shadow => conflict;
		// absent there too => capacity.
		if c.shadow.Read(p, 0, now) {
			kind = MissConflict
		} else {
			kind = MissCapacity
		}
	}
	if kind == MissFiltered && c.shadow != nil {
		// Keep the shadow's read stream aligned.
		c.shadow.Read(p, 0, now)
	}
	c.Stats.MissBy[kind]++
	return kind
}

// Fill installs a value fetched from the backing file after a miss, with
// FillDefault remaining uses (Section 3.3: the backing file keeps no use
// information, and any given use is most likely the last).
func (c *Cache) Fill(p PReg, set int, now uint64) {
	st := c.state(p)
	if !st.live {
		return // freed (squashed) while the fill was in flight
	}
	c.insert(p, set, c.cfg.FillDefault, false, now, true)
	if c.shadow != nil {
		c.shadow.Fill(p, 0, now)
	}
}

// NoteBypassUse records that a consumer obtained p from the bypass network
// after the value was already written into the cache (bypass stage 2 and
// post-fill bypasses): the resident remaining-use count decrements so the
// cache's view of outstanding uses stays consistent (Section 3.3).
func (c *Cache) NoteBypassUse(p PReg, set int) {
	if st := c.state(p); st.inserted {
		e := &c.sets[set][st.way]
		if e.valid && e.preg == p {
			if !e.pinned && e.uses > 0 {
				e.uses--
			}
			if c.tracer != nil {
				c.tracer.TraceCache(obs.CacheEvent{Kind: obs.CacheBypassUse,
					PReg: int32(p), Set: int16(set), Uses: int16(e.uses), MissKind: -1, Pinned: e.pinned})
			}
		}
	}
	// The bypass use happened regardless of primary residency: the shadow
	// must see the same decrement or its use-based victim choices diverge
	// and skew the conflict/capacity miss split (Figure 8).
	if c.shadow != nil {
		c.shadow.NoteBypassUse(p, 0)
	}
}

// Free invalidates p's entry when the physical register is freed (required
// for correctness: a reallocated register must never hit on a stale value)
// and finalizes the per-value statistics. It also covers squash-freed
// registers from wrong-path renames.
func (c *Cache) Free(p PReg, now uint64) {
	st := c.state(p)
	if !st.live {
		return
	}
	c.releaseIndex(st)
	setIdx := int(st.set)
	if c.cfg.Index == IndexPReg {
		setIdx = int(p) % c.nsets
	}
	if st.inserted {
		e := &c.sets[setIdx][st.way]
		if e.valid && e.preg == p {
			c.finishResidency(e, now)
			if c.tracer != nil {
				c.tracer.TraceCache(obs.CacheEvent{Cycle: now, Kind: obs.CacheInvalidate,
					PReg: int32(p), Set: int16(st.set), Uses: int16(e.uses), MissKind: -1, Pinned: e.pinned})
			}
			e.valid = false
			c.Stats.occupied--
			c.liveWays[setIdx]--
			c.noteOccupancy(now)
			c.Stats.Invalidations++
		}
	}
	if st.produced {
		c.Stats.ValuesFreed++
		c.Stats.InsertionsPerValue += uint64(st.insertions)
		if !st.everCached {
			c.Stats.NeverCached++
		}
	}
	st.live = false
	st.inserted = false
	if c.shadow != nil {
		c.shadow.Free(p, now)
	}
}

// noteOccupancy integrates the occupancy-over-time statistic.
func (c *Cache) noteOccupancy(now uint64) {
	s := &c.Stats
	if now > s.lastOccCycle {
		s.OccupancyInt += uint64(s.prevOccupied) * (now - s.lastOccCycle)
		s.lastOccCycle = now
	}
	s.prevOccupied = s.occupied
}

// FinishSampling closes the occupancy integral at the end of simulation.
func (c *Cache) FinishSampling(now uint64) {
	c.noteOccupancy(now)
	if c.shadow != nil {
		c.shadow.FinishSampling(now)
	}
}

// Occupied returns the current number of valid entries (for tests).
func (c *Cache) Occupied() int { return c.Stats.occupied }

// Lookup probes for p without any side effects (no LRU update, no use
// decrement, no statistics). Used by tests and by the pipeline to model
// the insertion-time bypass check.
func (c *Cache) Lookup(p PReg, set int) (uses int, pinned, ok bool) {
	if c.cfg.Index == IndexPReg {
		set = int(p) % c.nsets
	}
	if st := c.state(p); st.inserted {
		e := &c.sets[set][st.way]
		if e.valid && e.preg == p {
			return e.uses, e.pinned, true
		}
	}
	return 0, false, false
}
