package regfile

import (
	"testing"
	"testing/quick"

	"regcache/internal/core"
	"regcache/internal/isa"
)

func TestFreeListFIFO(t *testing.T) {
	f := NewFreeList(4)
	order := []core.PReg{}
	for {
		p, ok := f.Alloc()
		if !ok {
			break
		}
		order = append(order, p)
	}
	if len(order) != 4 {
		t.Fatalf("allocated %d, want 4", len(order))
	}
	for i, p := range order {
		if p != core.PReg(i) {
			t.Fatalf("allocation order %v not FIFO", order)
		}
	}
	f.Free(2)
	f.Free(0)
	if p, _ := f.Alloc(); p != 2 {
		t.Fatalf("expected FIFO reuse of preg 2, got %d", p)
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d, want 1", f.Len())
	}
}

func TestMapTableRedefineAndRollback(t *testing.T) {
	mt := NewMapTable()
	r := isa.IntR(5)
	orig := mt.Lookup(r)
	tok := mt.Checkpoint()
	old := mt.Redefine(r, Mapping{PReg: 100, Set: 3})
	if old != orig {
		t.Fatal("Redefine returned wrong previous mapping")
	}
	if got := mt.Lookup(r); got.PReg != 100 || got.Set != 3 {
		t.Fatalf("Lookup after redefine = %+v", got)
	}
	mt.Redefine(r, Mapping{PReg: 101, Set: 4})
	mt.Redefine(isa.IntR(6), Mapping{PReg: 102, Set: 5})
	mt.Rollback(tok)
	if got := mt.Lookup(r); got != orig {
		t.Fatalf("rollback failed: %+v", got)
	}
	if got := mt.Lookup(isa.IntR(6)); got.PReg != core.PReg(isa.IntR(6).Index()) {
		t.Fatalf("rollback failed for r6: %+v", got)
	}
}

func TestMapTableCommitKeepsLaterTokens(t *testing.T) {
	mt := NewMapTable()
	mt.Redefine(isa.IntR(1), Mapping{PReg: 100})
	tokA := mt.Checkpoint()
	mt.Redefine(isa.IntR(2), Mapping{PReg: 101})
	tokB := mt.Checkpoint()
	mt.Redefine(isa.IntR(3), Mapping{PReg: 102})
	mt.Commit(tokA)
	mt.Rollback(tokB)
	if got := mt.Lookup(isa.IntR(3)); got.PReg == 102 {
		t.Fatal("rollback after commit failed to undo r3")
	}
	if got := mt.Lookup(isa.IntR(2)); got.PReg != 101 {
		t.Fatal("rollback after commit undid too much")
	}
}

// Property: any interleaving of redefines with one rollback restores the
// exact pre-checkpoint state.
func TestMapTableRollbackProperty(t *testing.T) {
	f := func(pre, post []uint8) bool {
		mt := NewMapTable()
		apply := func(ops []uint8) {
			for i, op := range ops {
				r := isa.IntR(int(op) % 30)
				mt.Redefine(r, Mapping{PReg: core.PReg(64 + i), Set: int16(op)})
			}
		}
		apply(pre)
		var snapshot [isa.NumArchRegs]Mapping
		for i := 0; i < isa.NumArchRegs; i++ {
			snapshot[i] = mt.Lookup(isa.Reg(i + 1))
		}
		tok := mt.Checkpoint()
		apply(post)
		mt.Rollback(tok)
		for i := 0; i < isa.NumArchRegs; i++ {
			if mt.Lookup(isa.Reg(i+1)) != snapshot[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBackingFileWriteInterlock(t *testing.T) {
	b := NewBackingFile(2, 16)
	// Value finishes executing at cycle 10; its RF write completes at 12.
	b.NoteWrite(3, 10)
	// A read at cycle 11 must wait for the write, then take 2 cycles.
	if got := b.Read(3, 11); got != 14 {
		t.Fatalf("read ready at %d, want 14 (wait to 12 + 2)", got)
	}
	// A read of a long-written register goes immediately.
	if got := b.Read(4, 20); got != 22 {
		t.Fatalf("read ready at %d, want 22", got)
	}
}

func TestBackingFilePortArbitration(t *testing.T) {
	b := NewBackingFile(2, 16)
	r1 := b.Read(1, 10)
	r2 := b.Read(2, 10) // same cycle: must be delayed by the single port
	if r1 != 12 || r2 != 13 {
		t.Fatalf("reads ready at %d,%d, want 12,13", r1, r2)
	}
	if b.PortConflicts != 1 {
		t.Fatalf("PortConflicts = %d, want 1", b.PortConflicts)
	}
}

func TestMonolithicCounters(t *testing.T) {
	m := NewMonolithic(3, 16)
	if m.Latency() != 3 {
		t.Fatal("latency wrong")
	}
	m.NoteWrite(1, 5)
	m.NoteRead()
	if m.Writes != 1 || m.Reads != 1 {
		t.Fatal("counters wrong")
	}
}

func TestLifetimePhases(t *testing.T) {
	l := NewLifetimes(8, false)
	l.Alloc(1, 100)
	l.Write(1, 110) // empty = 10
	l.Read(1, 115)
	l.Read(1, 130) // live = 20
	l.Free(1, 150) // dead = 20
	if l.Empty.Mean() != 10 || l.Live.Mean() != 20 || l.Dead.Mean() != 20 {
		t.Fatalf("phases = %v/%v/%v, want 10/20/20", l.Empty.Mean(), l.Live.Mean(), l.Dead.Mean())
	}
}

func TestLifetimeNeverReadAndNeverWritten(t *testing.T) {
	l := NewLifetimes(8, false)
	// Written but never read: live time 0, dead from write.
	l.Alloc(2, 10)
	l.Write(2, 12)
	l.Free(2, 20)
	if l.Live.Count(0) != 1 || l.Dead.Mean() != 8 {
		t.Fatal("never-read lifetime wrong")
	}
	// Never written (squashed writer): not recorded.
	l.Alloc(3, 30)
	l.Free(3, 40)
	if l.Empty.N() != 1 {
		t.Fatal("unwritten register should not be recorded")
	}
}

func TestLifetimeCountDistributions(t *testing.T) {
	l := NewLifetimes(8, true)
	// Two overlapping register lifetimes:
	// preg 1: alloc 0, write 2, reads to 8, free 10.
	// preg 2: alloc 4, write 5, reads to 6, free 12.
	l.Alloc(1, 0)
	l.Write(1, 2)
	l.Read(1, 8)
	l.Alloc(2, 4)
	l.Write(2, 5)
	l.Read(2, 6)
	l.Free(1, 10)
	l.Free(2, 12)
	l.Finish(16)
	alloc := l.AllocatedDist()
	// Allocated count: [0,4)=1, [4,10)=2, [10,12)=1, [12,16)=0.
	if alloc.Count(1) != 4+2 || alloc.Count(2) != 6 || alloc.Count(0) != 4 {
		t.Fatalf("allocated distribution wrong: c0=%d c1=%d c2=%d",
			alloc.Count(0), alloc.Count(1), alloc.Count(2))
	}
	live := l.LiveDist()
	// Live: [2,5)=1, [5,6)=2, [6,8)=1, else 0 over [2,16) window from first event.
	if live.Count(2) != 1 || live.Count(1) != 3+2 {
		t.Fatalf("live distribution wrong: c0=%d c1=%d c2=%d",
			live.Count(0), live.Count(1), live.Count(2))
	}
}
