package regfile

import (
	"testing"

	"regcache/internal/core"
)

// TestLifetimePhaseTable drives single-register lifetimes through a table
// of alloc/write/read/free schedules and checks the three phase histograms
// record exactly the documented intervals: empty = alloc->first write,
// live = first write->last read (clamped at the write for never-read
// values), dead = last read->free.
func TestLifetimePhaseTable(t *testing.T) {
	cases := []struct {
		name                   string
		alloc, write           uint64
		reads                  []uint64
		free                   uint64
		empty, live, dead      int
	}{
		{"read-once", 10, 14, []uint64{20}, 30, 4, 6, 10},
		{"read-many-out-of-order", 0, 5, []uint64{9, 30, 12}, 40, 5, 25, 10},
		{"never-read", 10, 12, nil, 50, 2, 0, 38},
		{"immediate", 7, 7, []uint64{7}, 7, 0, 0, 0},
		{"write-equals-free", 3, 8, []uint64{8}, 8, 5, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLifetimes(4, false)
			const p = core.PReg(1)
			l.Alloc(p, tc.alloc)
			l.Write(p, tc.write)
			for _, r := range tc.reads {
				l.Read(p, r)
			}
			l.Free(p, tc.free)
			if n := l.Empty.N(); n != 1 {
				t.Fatalf("Empty recorded %d lifetimes, want 1", n)
			}
			if got := l.Empty.Max(); got != tc.empty {
				t.Errorf("empty phase = %d, want %d", got, tc.empty)
			}
			if got := l.Live.Max(); got != tc.live {
				t.Errorf("live phase = %d, want %d", got, tc.live)
			}
			if got := l.Dead.Max(); got != tc.dead {
				t.Errorf("dead phase = %d, want %d", got, tc.dead)
			}
			// The three phases partition the written lifetime exactly.
			if sum := tc.empty + tc.live + tc.dead; sum != int(tc.free-tc.alloc) {
				t.Errorf("phase sum %d != lifetime %d (table inconsistency)", sum, tc.free-tc.alloc)
			}
		})
	}
}

// TestLifetimeSquashedWriterNotRecorded: a register freed before its value
// was ever written (a squashed producer) is not an architectural lifetime
// and must leave all three histograms empty.
func TestLifetimeSquashedWriterNotRecorded(t *testing.T) {
	l := NewLifetimes(4, false)
	const p = core.PReg(2)
	l.Alloc(p, 5)
	l.Read(p, 8) // speculative consumer; no write ever happened
	l.Free(p, 10)
	if l.Empty.N() != 0 || l.Live.N() != 0 || l.Dead.N() != 0 {
		t.Fatalf("squashed writer recorded a lifetime: empty=%d live=%d dead=%d",
			l.Empty.N(), l.Live.N(), l.Dead.N())
	}
}

// TestLifetimeReuseResetsState re-allocates the same physical register and
// checks the second lifetime is measured from its own events, not polluted
// by the first (Alloc must clear written/lastRead state).
func TestLifetimeReuseResetsState(t *testing.T) {
	l := NewLifetimes(4, false)
	const p = core.PReg(3)
	l.Alloc(p, 0)
	l.Write(p, 2)
	l.Read(p, 100)
	l.Free(p, 110)

	l.Alloc(p, 200)
	l.Write(p, 203)
	l.Free(p, 210) // never read this time
	if n := l.Live.N(); n != 2 {
		t.Fatalf("Live recorded %d lifetimes, want 2", n)
	}
	// Second lifetime: empty 3, live 0 (never read), dead 7. A leaked
	// lastRead=100 from the first lifetime would have produced garbage.
	if got := l.Empty.Count(3); got != 1 {
		t.Errorf("second empty phase of 3 cycles not recorded")
	}
	if got := l.Live.Count(0); got != 1 {
		t.Errorf("second live phase should be 0 (never read); Live histogram: %v", l.Live)
	}
	if got := l.Dead.Count(7); got != 1 {
		t.Errorf("second dead phase of 7 cycles not recorded")
	}
}

// TestLifetimeCountDistsWindow checks the cycle-weighted occupancy sweep:
// one register allocated for [10,30) and written-live for [15,25) inside a
// [0,40) window must yield exactly those interval weights.
func TestLifetimeCountDistsWindow(t *testing.T) {
	l := NewLifetimes(4, true)
	const p = core.PReg(0)
	l.Alloc(p, 10)
	l.Write(p, 15)
	l.Read(p, 25)
	l.Free(p, 30)
	l.Finish(40)

	alloc := l.AllocatedDist()
	if got := alloc.Count(1); got != 20 {
		t.Errorf("allocated count=1 for %d cycles, want 20", got)
	}
	if got := alloc.Count(0); got != 10 {
		t.Errorf("allocated count=0 for %d cycles, want 10 (tail after free)", got)
	}
	live := l.LiveDist()
	if got := live.Count(1); got != 10 {
		t.Errorf("live count=1 for %d cycles, want 10", got)
	}
}
