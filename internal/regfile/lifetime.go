package regfile

import (
	"sort"

	"regcache/internal/core"
	"regcache/internal/stats"
)

// Lifetimes tracks the three phases of each physical register lifetime
// (Figure 1: empty, live, dead) and, optionally, the per-cycle counts of
// allocated and live registers (Figure 2).
type Lifetimes struct {
	alloc    []uint64
	write    []uint64
	lastRead []uint64
	written  []bool

	Empty *stats.Histogram // allocation -> first write
	Live  *stats.Histogram // first write -> last read (0 when never read)
	Dead  *stats.Histogram // last read (or write) -> free

	trackCounts bool
	events      []countEvent // deferred live-interval events
	allocEvents []countEvent
	endCycle    uint64
}

type countEvent struct {
	cycle uint64
	delta int32
}

// NewLifetimes builds a tracker for npregs physical registers. trackCounts
// additionally records the event streams behind the Figure 2 distributions
// (memory proportional to retired instructions).
func NewLifetimes(npregs int, trackCounts bool) *Lifetimes {
	return &Lifetimes{
		alloc:       make([]uint64, npregs),
		write:       make([]uint64, npregs),
		lastRead:    make([]uint64, npregs),
		written:     make([]bool, npregs),
		Empty:       stats.NewHistogram(),
		Live:        stats.NewHistogram(),
		Dead:        stats.NewHistogram(),
		trackCounts: trackCounts,
	}
}

// Alloc records the rename-time allocation of p.
func (l *Lifetimes) Alloc(p core.PReg, now uint64) {
	l.alloc[p] = now
	l.written[p] = false
	l.lastRead[p] = 0
}

// Write records the value of p becoming available.
func (l *Lifetimes) Write(p core.PReg, now uint64) {
	if !l.written[p] {
		l.write[p] = now
		l.written[p] = true
	}
}

// Read records a consumer obtaining p's value.
func (l *Lifetimes) Read(p core.PReg, now uint64) {
	if now > l.lastRead[p] {
		l.lastRead[p] = now
	}
}

// Free finalizes p's lifetime at the (retirement-time) free. Registers
// freed by squash are not architectural lifetimes and must not be reported
// here; the pipeline only calls Free for retirement frees.
func (l *Lifetimes) Free(p core.PReg, now uint64) {
	if !l.written[p] {
		return // allocated but never written before free (squashed writer)
	}
	a, w, lr := l.alloc[p], l.write[p], l.lastRead[p]
	if lr < w {
		lr = w
	}
	l.Empty.Add(int(w - a))
	l.Live.Add(int(lr - w))
	l.Dead.Add(int(now - lr))
	if l.trackCounts {
		l.allocEvents = append(l.allocEvents, countEvent{a, +1}, countEvent{now, -1})
		if lr > w {
			l.events = append(l.events, countEvent{w, +1}, countEvent{lr, -1})
		}
	}
	l.written[p] = false
}

// Finish closes the sampling window for the count distributions.
func (l *Lifetimes) Finish(now uint64) { l.endCycle = now }

// AllocatedDist returns the distribution of the number of simultaneously
// allocated physical registers over time (cycle-weighted), Figure 2's
// upper curve. Requires trackCounts.
func (l *Lifetimes) AllocatedDist() *stats.Histogram { return sweep(l.allocEvents, l.endCycle) }

// LiveDist returns the distribution of the number of simultaneously live
// values over time, Figure 2's lower curve. Requires trackCounts.
func (l *Lifetimes) LiveDist() *stats.Histogram { return sweep(l.events, l.endCycle) }

// sweep turns a +1/-1 event stream into a cycle-weighted histogram of the
// running count.
func sweep(events []countEvent, end uint64) *stats.Histogram {
	h := stats.NewHistogram()
	if len(events) == 0 {
		return h
	}
	evs := make([]countEvent, len(events))
	copy(evs, events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].cycle < evs[j].cycle })
	count := 0
	last := evs[0].cycle
	for _, e := range evs {
		if e.cycle > last {
			h.AddN(count, e.cycle-last)
			last = e.cycle
		}
		count += int(e.delta)
	}
	if end > last {
		h.AddN(count, end-last)
	}
	return h
}
