// Package regfile provides the physical register infrastructure: the
// freelist, the rename map table (widened with a register cache set index
// for decoupled indexing, Section 4.1), the monolithic register file and
// backing file timing models, and the register lifetime tracker behind
// Figures 1 and 2.
package regfile

import (
	"fmt"

	"regcache/internal/core"
	"regcache/internal/isa"
)

// FreeList hands out physical registers. It is a FIFO, like real rename
// freelists, so register reuse distance is maximal. The FIFO is a fixed
// ring: at most n registers can ever be free at once, so Alloc and Free
// are allocation-free O(1) (the previous slice implementation re-sliced
// the head forward and reallocated on every append once the window
// reached the backing array's end).
type FreeList struct {
	ring  []core.PReg
	head  int // next register to hand out
	count int // registers currently free
}

// NewFreeList builds a freelist holding pregs 0..n-1.
func NewFreeList(n int) *FreeList {
	f := &FreeList{ring: make([]core.PReg, n), count: n}
	for i := range f.ring {
		f.ring[i] = core.PReg(i)
	}
	return f
}

// Alloc removes and returns the next free register, or ok=false when
// exhausted (rename must stall).
func (f *FreeList) Alloc() (core.PReg, bool) {
	if f.count == 0 {
		return -1, false
	}
	p := f.ring[f.head]
	f.head++
	if f.head == len(f.ring) {
		f.head = 0
	}
	f.count--
	return p, true
}

// Free returns a register to the pool.
func (f *FreeList) Free(p core.PReg) {
	if f.count == len(f.ring) {
		panic("regfile: freelist overflow (double free)")
	}
	tail := f.head + f.count
	if tail >= len(f.ring) {
		tail -= len(f.ring)
	}
	f.ring[tail] = p
	f.count++
}

// Len returns the number of free registers.
func (f *FreeList) Len() int { return f.count }

// Mapping is one rename-map entry: the physical register plus the register
// cache set assigned at rename (decoupled indexing widens the map table,
// Section 4.1). Set is meaningless under standard indexing.
type Mapping struct {
	PReg core.PReg
	Set  int16
}

// MapTable is the speculative rename map with undo-log rollback, mirroring
// the executor's checkpoint discipline: the pipeline records a token per
// instruction and rolls the table back on misprediction recovery.
type MapTable struct {
	maps [isa.NumArchRegs]Mapping
	log  []mapUndo
	head int // index of the first uncommitted record in log
	base int // virtual position of log[0]
}

type mapUndo struct {
	reg isa.Reg
	old Mapping
}

// NewMapTable builds a map table with every architectural register mapped
// to an identity physical register (pregs 0..63 hold the initial state).
func NewMapTable() *MapTable {
	t := &MapTable{}
	for i := 0; i < isa.NumArchRegs; i++ {
		t.maps[i] = Mapping{PReg: core.PReg(i), Set: -1}
	}
	return t
}

// Lookup returns the current mapping of r.
func (t *MapTable) Lookup(r isa.Reg) Mapping { return t.maps[r.Index()] }

// Redefine maps r to m and returns the previous mapping (whose physical
// register the defining instruction frees at retirement).
func (t *MapTable) Redefine(r isa.Reg, m Mapping) Mapping {
	old := t.maps[r.Index()]
	t.log = append(t.log, mapUndo{reg: r, old: old})
	t.maps[r.Index()] = m
	return old
}

// Checkpoint returns a rollback token (stable across Commit).
func (t *MapTable) Checkpoint() int { return t.base + len(t.log) }

// Rollback restores the table to the state at the token.
func (t *MapTable) Rollback(token int) {
	idx := token - t.base
	if idx < t.head || idx > len(t.log) {
		panic(fmt.Sprintf("regfile: bad map rollback token %d (base %d, head %d, log %d)", token, t.base, t.head, len(t.log)))
	}
	for i := len(t.log) - 1; i >= idx; i-- {
		u := t.log[i]
		t.maps[u.reg.Index()] = u.old
	}
	t.log = t.log[:idx]
}

// Commit discards undo history up to the token (instruction retired).
// Like Exec.Commit, it advances a head index and compacts amortizedly
// rather than copying the live tail on every retirement.
func (t *MapTable) Commit(token int) {
	idx := token - t.base
	if idx <= t.head {
		return
	}
	if idx > len(t.log) {
		idx = len(t.log)
	}
	t.head = idx
	if t.head >= 64 && t.head >= len(t.log)-t.head {
		n := copy(t.log, t.log[t.head:])
		t.log = t.log[:n]
		t.base += t.head
		t.head = 0
	}
}

// BackingFile models the backing register file behind a register cache:
// full write bandwidth, a single read port (shared with a write port), and
// a multi-cycle latency for both reads and writes (Section 2.2). Reads are
// interlocked against the in-flight write of the same register.
type BackingFile struct {
	latency   int
	writeDone []uint64 // per-preg cycle at which the RF write completes
	portFree  uint64   // next cycle the read port can accept a request

	Reads         uint64
	Writes        uint64
	PortConflicts uint64
}

// NewBackingFile builds a backing file with the given read/write latency
// and physical register count.
func NewBackingFile(latency, npregs int) *BackingFile {
	return &BackingFile{latency: latency, writeDone: make([]uint64, npregs)}
}

// Latency returns the configured access latency.
func (b *BackingFile) Latency() int { return b.latency }

// NoteWrite records that p's value finished executing at cycle execEnd;
// the register file write occupies the following latency cycles.
func (b *BackingFile) NoteWrite(p core.PReg, execEnd uint64) {
	b.Writes++
	b.writeDone[p] = execEnd + uint64(b.latency)
}

// Read requests p through the single read port at cycle now. It returns
// the cycle at which data is available, accounting for port arbitration
// (one request per cycle) and the write-completion interlock (Section 5.2:
// "the instruction may have to wait to ensure that the desired result has
// finished writing into the register file").
func (b *BackingFile) Read(p core.PReg, now uint64) uint64 {
	start := now
	if b.portFree > start {
		start = b.portFree
		b.PortConflicts++
	}
	if wd := b.writeDone[p]; wd > start {
		start = wd
	}
	b.portFree = start + 1
	b.Reads++
	return start + uint64(b.latency)
}

// ReadPorted requests p at cycle now under explicit multi-port
// arbitration: the pipeline grants at most ReadPorts requests per cycle
// itself (queueing the rest), so this entry point applies only the
// write-completion interlock and the access latency — no portFree
// serialization and no PortConflicts accounting, which would double-count
// the pipeline's port-conflict stalls.
func (b *BackingFile) ReadPorted(p core.PReg, now uint64) uint64 {
	start := now
	if wd := b.writeDone[p]; wd > start {
		start = wd
	}
	b.Reads++
	return start + uint64(b.latency)
}

// Monolithic models the multi-cycle monolithic register file of the
// baseline machine. Its latency shapes the scheduler's operand-availability
// windows; the structure itself only carries the parameters and bandwidth
// statistics.
type Monolithic struct {
	latency   int
	writeDone []uint64

	Reads  uint64
	Writes uint64
}

// NewMonolithic builds a monolithic register file model.
func NewMonolithic(latency, npregs int) *Monolithic {
	return &Monolithic{latency: latency, writeDone: make([]uint64, npregs)}
}

// Latency returns the read (and write) latency in cycles.
func (m *Monolithic) Latency() int { return m.latency }

// NoteWrite records the write of p completing execution at execEnd.
func (m *Monolithic) NoteWrite(p core.PReg, execEnd uint64) {
	m.Writes++
	m.writeDone[p] = execEnd + uint64(m.latency)
}

// NoteRead counts a register file read (bandwidth statistic).
func (m *Monolithic) NoteRead() { m.Reads++ }
