package isa

import (
	"testing"
	"testing/quick"
)

func TestRegClassification(t *testing.T) {
	if !IntZero.IsZeroReg() || !FPZero.IsZeroReg() {
		t.Error("zero registers not recognized")
	}
	if IntR(5).IsZeroReg() {
		t.Error("r5 is not a zero register")
	}
	if !FPR(8).IsFP() || IntR(5).IsFP() {
		t.Error("FP classification wrong")
	}
	if RegNone.Valid() || !FPR(31).Valid() || Reg(65).Valid() {
		t.Error("validity classification wrong")
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{IntR(0): "r0", IntR(31): "r31", FPR(0): "f0", FPR(31): "f31", RegNone: "--"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpClassification(t *testing.T) {
	branches := []Op{OpBranch, OpJump, OpCall, OpRet, OpIndirect}
	for _, o := range branches {
		if !o.IsBranch() {
			t.Errorf("%v should be a branch", o)
		}
	}
	for _, o := range []Op{OpIAlu, OpLoad, OpStore, OpNop} {
		if o.IsBranch() {
			t.Errorf("%v should not be a branch", o)
		}
	}
	if !OpBranch.IsCond() || OpJump.IsCond() {
		t.Error("conditional classification wrong")
	}
	if !OpRet.IsIndirect() || !OpIndirect.IsIndirect() || OpBranch.IsIndirect() {
		t.Error("indirect classification wrong")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpIAlu.IsMem() {
		t.Error("memory classification wrong")
	}
}

func TestLatenciesMatchTable1(t *testing.T) {
	cases := map[Op]int{
		OpIAlu: 1, OpIMul: 4, OpFAlu: 3, OpFMul: 4, OpFDiv: 18,
		OpLoad: 4, OpBranch: 2, OpJump: 2, OpCall: 2, OpRet: 2, OpIndirect: 2,
	}
	for op, want := range cases {
		if got := op.Latency(); got != want {
			t.Errorf("%v latency = %d, want %d", op, got, want)
		}
	}
}

func TestEvalALU(t *testing.T) {
	cases := []struct {
		fn     Fn
		imm    int64
		s1, s2 uint64
		want   uint64
	}{
		{FnAdd, 0, 3, 4, 7},
		{FnSub, 0, 10, 4, 6},
		{FnAnd, 0, 0b1100, 0b1010, 0b1000},
		{FnOr, 0, 0b1100, 0b1010, 0b1110},
		{FnXor, 0, 0b1100, 0b1010, 0b0110},
		{FnShl, 0, 1, 4, 16},
		{FnShr, 0, 16, 4, 1},
		{FnShl, 0, 1, 64, 1}, // shift counts wrap mod 64
		{FnMul, 0, 6, 7, 42},
		{FnLoadImm, -5, 0, 0, ^uint64(0) - 4}, // two's-complement -5
		{FnMov, 0, 99, 0, 99},
		{FnCmpEQ, 0, 5, 5, 1},
		{FnCmpEQ, 0, 5, 6, 0},
		{FnCmpNE, 0, 5, 6, 1},
		{FnCmpLT, 0, ^uint64(0), 0, 1},
		{FnCmpGE, 0, ^uint64(0), 0, 0},
	}
	for _, c := range cases {
		if got := EvalALU(c.fn, c.imm, c.s1, c.s2); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d, %d) = %d, want %d", c.fn, c.imm, c.s1, c.s2, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		fn   Fn
		s1   uint64
		want bool
	}{
		{FnCmpEQ, 0, true},
		{FnCmpEQ, 1, false},
		{FnCmpNE, 1, true},
		{FnCmpNE, 0, false},
		{FnCmpLT, ^uint64(0) - 2, true},
		{FnCmpLT, 3, false},
		{FnCmpGE, 0, true},
		{FnCmpGE, ^uint64(0), false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.fn, c.s1); got != c.want {
			t.Errorf("BranchTaken(%v, %d) = %v, want %v", c.fn, c.s1, got, c.want)
		}
	}
}

// Property: CmpEQ and CmpNE are complementary both as values and as branch
// conditions.
func TestCompareComplementProperty(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		eq := EvalALU(FnCmpEQ, 0, s1, s2)
		ne := EvalALU(FnCmpNE, 0, s1, s2)
		return eq+ne == 1 && BranchTaken(FnCmpEQ, s1) != BranchTaken(FnCmpNE, s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CmpLT and CmpGE partition the integers.
func TestOrderingComplementProperty(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		lt := EvalALU(FnCmpLT, 0, s1, s2)
		ge := EvalALU(FnCmpGE, 0, s1, s2)
		return lt+ge == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstHelpers(t *testing.T) {
	in := Inst{Op: OpIAlu, Fn: FnAdd, Dest: IntR(3), Src1: IntR(1), Src2: IntR(2), PC: 0x1000}
	if in.NumSrcs() != 2 || !in.HasDest() {
		t.Error("operand counting wrong")
	}
	if in.FallThrough() != 0x1004 {
		t.Error("fall-through wrong")
	}
	zero := Inst{Op: OpIAlu, Fn: FnAdd, Dest: IntZero, Src1: IntR(1)}
	if zero.HasDest() {
		t.Error("write to zero register should not count as a dest")
	}
	if zero.NumSrcs() != 1 {
		t.Error("single-source count wrong")
	}
	none := Inst{Op: OpJump}
	if none.NumSrcs() != 0 || none.HasDest() {
		t.Error("no-operand instruction misclassified")
	}
}

func TestInstString(t *testing.T) {
	insts := []Inst{
		{Op: OpNop},
		{Op: OpIAlu, Fn: FnAdd, Dest: IntR(1), Src1: IntR(2), Src2: IntR(3)},
		{Op: OpLoad, Dest: IntR(1), Src1: IntR(2), Imm: 8},
		{Op: OpStore, Src1: IntR(2), Src2: IntR(3), Imm: 8},
		{Op: OpBranch, Fn: FnCmpNE, Src1: IntR(1), Target: 0x2000},
		{Op: OpJump, Target: 0x2000},
		{Op: OpCall, Dest: RA, Target: 0x2000},
		{Op: OpRet, Src1: RA},
		{Op: OpIndirect, Src1: IntR(4)},
	}
	for _, in := range insts {
		if in.String() == "" {
			t.Errorf("empty String() for op %v", in.Op)
		}
	}
}
