// Package isa defines the micro-ISA executed by the simulator: a 64-bit
// RISC register machine with 32 integer and 32 floating-point architectural
// registers, two-source/one-destination instructions, displacement-mode
// loads and stores, and a compare-register branch family.
//
// The ISA deliberately models the properties the register-caching study
// consumes — architectural def/use per instruction, branch outcomes, and
// memory addresses — rather than any particular commercial encoding. It is
// the stand-in for the Alpha ISA used in the paper (see DESIGN.md).
package isa

import "fmt"

// Reg names an architectural register operand slot. The zero value is
// RegNone (no operand), so zero-valued Inst fields never create phantom
// dependencies. Integer registers r0..r31 are encoded 1..32 and
// floating-point registers f0..f31 as 33..64; use IntR/FPR to construct
// them and Index for dense array indexing. IntZero and FPZero read as zero
// and discard writes (like Alpha R31/F31).
type Reg uint8

// Architectural register constants.
const (
	NumIntRegs  = 32
	NumFPRegs   = 32
	NumArchRegs = NumIntRegs + NumFPRegs

	RegNone Reg = 0 // unused operand slot (the Reg zero value)
)

// Named registers by software convention.
var (
	IntZero = IntR(31) // integer register that is always zero
	FPZero  = FPR(31)  // floating-point register that is always zero
	SP      = IntR(30) // stack pointer
	RA      = IntR(26) // return address
)

// IntR returns the Reg for integer register i (0..31).
func IntR(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", i))
	}
	return Reg(i + 1)
}

// FPR returns the Reg for floating-point register i (0..31).
func FPR(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", i))
	}
	return Reg(i + 1 + NumIntRegs)
}

// Index returns the dense architectural index 0..63 of a valid register.
func (r Reg) Index() int { return int(r) - 1 }

// IsZeroReg reports whether r is a hardwired-zero register.
func (r Reg) IsZeroReg() bool { return r == IntZero || r == FPZero }

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r >= 1 && r <= NumArchRegs }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r > NumIntRegs && r <= NumArchRegs }

// String renders the register in assembly style (r0..r31, f0..f31).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "--"
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Index()-NumIntRegs)
	case r.Valid():
		return fmt.Sprintf("r%d", r.Index())
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Op is the opcode class of an instruction. The class determines the
// function unit, the execution latency, and the broad functional behaviour;
// the Fn field of an Inst selects the precise operation within the class.
type Op uint8

// Opcode classes (Table 1 execution resources).
const (
	OpNop Op = iota
	OpIAlu     // integer add/sub/logical/shift/compare: 1 cycle
	OpIMul     // integer multiply: 4 cycles
	OpFAlu     // floating-point add/sub/convert/compare: 3 cycles
	OpFMul     // floating-point multiply: 4 cycles
	OpFDiv     // floating-point divide: 18 cycles
	OpLoad     // memory load: 4-cycle load-to-use on an L1 hit
	OpStore    // memory store: executes address+data, writes at retire
	OpBranch   // conditional direct branch: 2-cycle resolution
	OpJump     // unconditional direct jump
	OpCall     // direct call: writes return address, pushes RAS
	OpRet      // indirect jump through the return address: pops RAS
	OpIndirect // computed indirect jump (switch tables, function pointers)
	numOps
)

var opNames = [numOps]string{
	"nop", "ialu", "imul", "falu", "fmul", "fdiv",
	"load", "store", "br", "jmp", "call", "ret", "ijmp",
}

// String returns the mnemonic class name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpBranch, OpJump, OpCall, OpRet, OpIndirect:
		return true
	}
	return false
}

// IsCond reports whether the opcode is a conditional branch.
func (o Op) IsCond() bool { return o == OpBranch }

// IsIndirect reports whether the branch target comes from a register.
func (o Op) IsIndirect() bool { return o == OpRet || o == OpIndirect }

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Latency returns the execution latency in cycles for the opcode class,
// matching Table 1 of the paper. Loads return the L1-hit load-to-use
// latency; the memory system adds miss penalties.
func (o Op) Latency() int {
	switch o {
	case OpIAlu, OpNop:
		return 1
	case OpIMul:
		return 4
	case OpFAlu:
		return 3
	case OpFMul:
		return 4
	case OpFDiv:
		return 18
	case OpLoad:
		return 4
	case OpStore:
		return 1 // address generation; data is written at retirement
	case OpBranch, OpJump, OpCall, OpRet, OpIndirect:
		return 2 // branch resolution unit
	}
	return 1
}

// Fn selects the precise operation within an opcode class.
type Fn uint8

// Integer and floating-point function selectors. Branch classes reuse the
// comparison selectors to decide taken/not-taken from SrcVal1.
// For every two-operand selector the effective second operand is the Src2
// register value when Src2 is a real register, and the immediate otherwise
// (register-or-literal form, as on Alpha).
const (
	FnAdd Fn = iota // dest = s1 + s2eff
	FnSub           // dest = s1 - s2eff
	FnAnd           // dest = s1 & s2eff
	FnOr            // dest = s1 | s2eff
	FnXor           // dest = s1 ^ s2eff
	FnShl           // dest = s1 << (s2eff & 63)
	FnShr           // dest = s1 >> (s2eff & 63)
	FnMul           // dest = s1 * s2eff (also the FMul/FDiv behaviour stand-in)
	FnLoadImm       // dest = imm
	FnMov           // dest = s1
	FnCmpEQ         // dest = 1 if s1 == s2eff else 0; branch: taken if s1 == 0
	FnCmpNE         // dest = 1 if s1 != s2eff else 0; branch: taken if s1 != 0
	FnCmpLT         // dest = 1 if int64(s1) <  int64(s2eff); branch: s1 < 0
	FnCmpGE         // dest = 1 if int64(s1) >= int64(s2eff); branch: s1 >= 0
	numFns
)

var fnNames = [numFns]string{
	"add", "sub", "and", "or", "xor", "shl", "shr", "mul",
	"li", "mov", "cmpeq", "cmpne", "cmplt", "cmpge",
}

// String returns the selector mnemonic.
func (f Fn) String() string {
	if int(f) < len(fnNames) {
		return fnNames[f]
	}
	return fmt.Sprintf("fn?%d", uint8(f))
}

// Inst is one static instruction. Instructions are 4 bytes for PC
// arithmetic purposes (InstBytes).
type Inst struct {
	PC     uint64
	Op     Op
	Fn     Fn
	Dest   Reg    // RegNone when the instruction produces no register value
	Src1   Reg    // RegNone when unused
	Src2   Reg    // RegNone when unused
	Imm    int64  // displacement for memory ops, literal for ALU ops
	Target uint64 // taken target for direct branches, calls, jumps
}

// InstBytes is the architectural size of one instruction.
const InstBytes = 4

// NumSrcs returns how many register source operands the instruction reads
// (zero registers still count as operand slots but create no dependency).
func (in *Inst) NumSrcs() int {
	n := 0
	if in.Src1 != RegNone {
		n++
	}
	if in.Src2 != RegNone {
		n++
	}
	return n
}

// HasDest reports whether the instruction writes a (non-zero) architectural
// register.
func (in *Inst) HasDest() bool {
	return in.Dest != RegNone && !in.Dest.IsZeroReg()
}

// FallThrough returns the next sequential PC.
func (in *Inst) FallThrough() uint64 { return in.PC + InstBytes }

// String renders the instruction in a readable assembly-like form.
func (in *Inst) String() string {
	switch in.Op {
	case OpNop:
		return fmt.Sprintf("%08x: nop", in.PC)
	case OpLoad:
		return fmt.Sprintf("%08x: load %s, %d(%s)", in.PC, in.Dest, in.Imm, in.Src1)
	case OpStore:
		return fmt.Sprintf("%08x: store %s, %d(%s)", in.PC, in.Src2, in.Imm, in.Src1)
	case OpBranch:
		return fmt.Sprintf("%08x: br.%s %s, %08x", in.PC, in.Fn, in.Src1, in.Target)
	case OpJump:
		return fmt.Sprintf("%08x: jmp %08x", in.PC, in.Target)
	case OpCall:
		return fmt.Sprintf("%08x: call %08x", in.PC, in.Target)
	case OpRet:
		return fmt.Sprintf("%08x: ret %s", in.PC, in.Src1)
	case OpIndirect:
		return fmt.Sprintf("%08x: ijmp %s", in.PC, in.Src1)
	default:
		return fmt.Sprintf("%08x: %s.%s %s, %s, %s, #%d",
			in.PC, in.Op, in.Fn, in.Dest, in.Src1, in.Src2, in.Imm)
	}
}

// EvalALU computes the result of a non-memory, non-branch instruction given
// its first source value and the *effective* second operand (Src2 register
// value, or the immediate when Src2 is RegNone — see the Fn constants).
// Memory and branch behaviour live in the functional executor (package
// prog), which owns architectural memory and the PC.
func EvalALU(fn Fn, imm int64, s1, s2 uint64) uint64 {
	switch fn {
	case FnAdd:
		return s1 + s2
	case FnSub:
		return s1 - s2
	case FnAnd:
		return s1 & s2
	case FnOr:
		return s1 | s2
	case FnXor:
		return s1 ^ s2
	case FnShl:
		return s1 << (s2 & 63)
	case FnShr:
		return s1 >> (s2 & 63)
	case FnMul:
		return s1 * s2
	case FnLoadImm:
		return uint64(imm)
	case FnMov:
		return s1
	case FnCmpEQ:
		if s1 == s2 {
			return 1
		}
		return 0
	case FnCmpNE:
		if s1 != s2 {
			return 1
		}
		return 0
	case FnCmpLT:
		if int64(s1) < int64(s2) {
			return 1
		}
		return 0
	case FnCmpGE:
		if int64(s1) >= int64(s2) {
			return 1
		}
		return 0
	}
	return 0
}

// BranchTaken decides a conditional branch outcome from the first source
// value, Alpha-style (compare against zero).
func BranchTaken(fn Fn, s1 uint64) bool {
	switch fn {
	case FnCmpEQ:
		return s1 == 0
	case FnCmpNE:
		return s1 != 0
	case FnCmpLT:
		return int64(s1) < 0
	case FnCmpGE:
		return int64(s1) >= 0
	}
	return false
}
