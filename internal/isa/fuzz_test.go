package isa

import "testing"

// FuzzExec exercises the two pure evaluation entry points with arbitrary
// selector bytes and operand values. The executor and the timing pipeline
// both assume these never panic and are pure functions of their arguments;
// the harness also pins the algebraic identities the pipeline relies on
// (the compare family produces 0/1, branch compares complement, and
// out-of-range selectors degrade to zero instead of trapping).
func FuzzExec(f *testing.F) {
	f.Add(byte(0), int64(0), uint64(0), uint64(0))
	f.Add(byte(FnAdd), int64(7), uint64(1), uint64(2))
	f.Add(byte(FnShl), int64(-1), uint64(0xffffffffffffffff), uint64(200))
	f.Add(byte(FnLoadImm), int64(-9223372036854775808), uint64(5), uint64(6))
	f.Add(byte(FnCmpLT), int64(0), uint64(0x8000000000000000), uint64(0))
	f.Add(byte(numFns), int64(1), uint64(2), uint64(3))
	f.Add(byte(255), int64(123), uint64(456), uint64(789))
	f.Fuzz(func(t *testing.T, fnb byte, imm int64, s1, s2 uint64) {
		fn := Fn(fnb)
		got := EvalALU(fn, imm, s1, s2) // must not panic for any selector
		if again := EvalALU(fn, imm, s1, s2); again != got {
			t.Fatalf("EvalALU(%v, %d, %#x, %#x) nondeterministic: %#x then %#x",
				fn, imm, s1, s2, got, again)
		}
		taken := BranchTaken(fn, s1)
		if again := BranchTaken(fn, s1); again != taken {
			t.Fatalf("BranchTaken(%v, %#x) nondeterministic", fn, s1)
		}

		switch fn {
		case FnCmpEQ, FnCmpNE, FnCmpLT, FnCmpGE:
			if got != 0 && got != 1 {
				t.Fatalf("compare %v produced %#x, want 0 or 1", fn, got)
			}
		case FnMov:
			if got != s1 {
				t.Fatalf("mov produced %#x, want s1 %#x", got, s1)
			}
		case FnLoadImm:
			if got != uint64(imm) {
				t.Fatalf("li produced %#x, want %#x", got, uint64(imm))
			}
		case FnShl, FnShr:
			if s2&63 == 0 && got != s1 {
				t.Fatalf("shift by 0 produced %#x, want s1 %#x", got, s1)
			}
		}
		if fn >= numFns {
			if got != 0 {
				t.Fatalf("out-of-range selector %d produced %#x, want 0", fnb, got)
			}
			if taken {
				t.Fatalf("out-of-range selector %d taken, want not-taken", fnb)
			}
		}

		// The branch compare pairs partition outcomes: eq/ne and lt/ge are
		// complements for every s1.
		if BranchTaken(FnCmpEQ, s1) == BranchTaken(FnCmpNE, s1) {
			t.Fatalf("eq/ne branches agree on %#x", s1)
		}
		if BranchTaken(FnCmpLT, s1) == BranchTaken(FnCmpGE, s1) {
			t.Fatalf("lt/ge branches agree on %#x", s1)
		}
		// Their ALU forms match the branch decision applied to s1-s2... for
		// the degenerate s2=0 case the two entry points must agree exactly.
		if (EvalALU(FnCmpLT, 0, s1, 0) == 1) != BranchTaken(FnCmpLT, s1) {
			t.Fatalf("cmplt ALU and branch disagree on %#x vs 0", s1)
		}
		if (EvalALU(FnCmpEQ, 0, s1, 0) == 1) != BranchTaken(FnCmpEQ, s1) {
			t.Fatalf("cmpeq ALU and branch disagree on %#x vs 0", s1)
		}
	})
}
