// Package experiments defines one reproducible experiment per figure and
// table of the paper's evaluation (Section 5). Each experiment runs the
// relevant schemes over the benchmark suite and renders the same rows or
// series the paper reports, so the paper's claims can be checked against
// this implementation (EXPERIMENTS.md records the comparison).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"regcache/internal/sim"
)

// Options scales an experiment run.
type Options struct {
	Insts   uint64   // per-benchmark instruction budget (0 = sim.DefaultInsts)
	Benches []string // benchmark subset (nil = full suite)
}

func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = sim.DefaultInsts
	}
	if len(o.Benches) == 0 {
		o.Benches = sim.Benchmarks()
	}
	return o
}

// Quick returns a fast configuration: four representative benchmarks at a
// reduced instruction budget.
func Quick() Options {
	return Options{Insts: 60_000, Benches: sim.QuickBenchmarks()}
}

// Report is the output of one experiment.
type Report struct {
	ID    string
	Title string
	Paper string // the paper's claim this experiment checks
	Body  []string
	Notes []string
}

// Section appends a block of preformatted text to the report.
func (r *Report) Section(s string) { r.Body = append(r.Body, s) }

// Sectionf appends a formatted line.
func (r *Report) Sectionf(format string, args ...interface{}) {
	r.Body = append(r.Body, fmt.Sprintf(format, args...))
}

// Note appends an observation comparing measured behaviour to the paper.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "Paper: %s\n", r.Paper)
	}
	for _, s := range r.Body {
		b.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// All lists every experiment in paper order.
var All = []Experiment{
	{"fig1", "Register lifetime phases", Fig1},
	{"fig2", "Allocated vs live registers", Fig2},
	{"fig6", "Cache size and organization", Fig6},
	{"fig7", "Decoupled indexing algorithms", Fig7},
	{"fig8", "Register cache miss breakdown", Fig8},
	{"fig9", "Average access bandwidth", Fig9},
	{"fig10", "Filtering effects", Fig10},
	{"table2", "Register cache metrics", Table2},
	{"fig11", "Performance versus cache/L1 size", Fig11},
	{"fig12", "Performance versus backing file latency", Fig12},
	{"sec3", "Use-based management vital statistics", Sec3},
	{"sec52", "Register cache miss model cost", Sec52},
	{"sec53", "Design-point ablations", Sec53},
	{"oracle", "Perfect-use-knowledge spectrum (extension)", Oracle},
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, len(All))
	for i, e := range All {
		out[i] = e.ID
	}
	return out
}

// prefetch submits every scheme×benchmark simulation of an experiment to
// the shared run layer (internal/sim's memoizing worker pool) before the
// serial collection loops, so the pool overlaps the work and any triple
// another experiment already ran — the monolithic baselines especially —
// is a cache hit instead of a re-simulation.
func prefetch(o Options, schemes ...sim.Scheme) {
	sim.Prefetch(o.Benches, schemes, sim.Options{Insts: o.Insts})
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct renders a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
