package experiments

import (
	"fmt"

	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

// Sec53 reproduces the Section 5.3 parameter tuning that the paper reports
// in text: the maximum tracked use count (knee near 7, sharp fall-off
// below), the unknown-prediction default (1 is best: most values are used
// once), and the fill default (0 is best: any given use is most likely the
// last). These are the ablations behind the chosen design point.
func Sec53(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "sec53",
		Title: "Design-point ablations: max use, unknown default, fill default",
		Paper: "performance falls off rapidly for max-use limits below six with a knee near 7; an unknown default of one use is best; a fill default of zero is best (Section 5.3)",
	}
	base := sim.UseBased(64, 2, core.IndexFilteredRR)
	mkScheme := func(maxUse, unknown, fill int) sim.Scheme {
		s := base
		s.Name = fmt.Sprintf("use-m%d-u%d-f%d", maxUse, unknown, fill)
		s.Cache.MaxUse = maxUse
		s.Cache.UnknownDefault = unknown
		s.Cache.FillDefault = fill
		return s
	}
	all := []sim.Scheme{base}
	for _, m := range []int{2, 3, 5, 7, 12} {
		all = append(all, mkScheme(m, 1, 0))
	}
	for _, u := range []int{1, 2, 3} {
		all = append(all, mkScheme(7, u, 0))
	}
	for _, f := range []int{0, 1, 2} {
		all = append(all, mkScheme(7, 1, f))
	}
	prefetch(o, all...)
	ref, err := sim.RunSuite(o.Benches, base, sim.Options{Insts: o.Insts})
	if err != nil {
		return nil, err
	}

	// Max-use sweep, with unknown=1 and fill=0 held at their defaults.
	tb := stats.NewTable("max use", "speedup vs maxuse=7", "miss rate")
	for _, m := range []int{2, 3, 5, 7, 12} {
		sr, err := sim.RunSuite(o.Benches, mkScheme(m, 1, 0), sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprint(m), fmt.Sprintf("%+.2f%%", 100*(sr.RelIPC(ref)-1)), fmtF(sr.MeanMissRate()))
	}
	r.Section("maximum tracked use count (values predicted at the limit pin):")
	r.Section(tb.String())

	tb2 := stats.NewTable("unknown default", "speedup vs default=1", "miss rate")
	for _, u := range []int{1, 2, 3} {
		sr, err := sim.RunSuite(o.Benches, mkScheme(7, u, 0), sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		tb2.AddRow(fmt.Sprint(u), fmt.Sprintf("%+.2f%%", 100*(sr.RelIPC(ref)-1)), fmtF(sr.MeanMissRate()))
	}
	r.Section("unknown default (remaining uses assumed without a prediction):")
	r.Section(tb2.String())

	tb3 := stats.NewTable("fill default", "speedup vs default=0", "miss rate")
	for _, f := range []int{0, 1, 2} {
		sr, err := sim.RunSuite(o.Benches, mkScheme(7, 1, f), sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		tb3.AddRow(fmt.Sprint(f), fmt.Sprintf("%+.2f%%", 100*(sr.RelIPC(ref)-1)), fmtF(sr.MeanMissRate()))
	}
	r.Section("fill default (remaining uses assumed after a miss fill):")
	r.Section(tb3.String())
	return r, nil
}

// Sec52 quantifies the miss model of Section 5.2: register cache miss
// events per 1k instructions, backing port conflicts, and the sensitivity
// of the design point to the backing file latency — the modeling detail
// the paper credits for its lower register-caching advantage versus prior
// work.
func Sec52(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "sec52",
		Title: "Register cache miss model cost",
		Paper: "the miss penalty (issue-group replay, port arbitration, write interlock) makes the register cache advantage smaller than prior work suggested (Section 5.2)",
	}
	var all []sim.Scheme
	for _, lat := range []int{1, 2, 3, 4} {
		all = append(all, sim.UseBased(64, 2, core.IndexFilteredRR).WithBacking(lat))
	}
	prefetch(o, all...)
	tb := stats.NewTable("backing latency", "speedup vs 1-cycle backing", "miss events/1k insts", "port conflicts/1k insts", "suppressed issue cycles/1k")
	var ref *sim.SuiteResult
	for _, lat := range []int{1, 2, 3, 4} {
		sc := sim.UseBased(64, 2, core.IndexFilteredRR).WithBacking(lat)
		sr, err := sim.RunSuite(o.Benches, sc, sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		if ref == nil {
			ref = sr
		}
		perK := func(f func(p pipeline.Result) uint64) float64 {
			return sr.Mean(func(p pipeline.Result) float64 {
				return 1000 * float64(f(p)) / float64(p.Stats.Retired)
			})
		}
		tb.AddRow(fmt.Sprint(lat),
			fmt.Sprintf("%+.2f%%", 100*(sr.RelIPC(ref)-1)),
			fmtF(perK(func(p pipeline.Result) uint64 { return p.Stats.RCMissEvents })),
			fmtF(perK(func(p pipeline.Result) uint64 { return p.BackingPortConflicts })),
			fmtF(perK(func(p pipeline.Result) uint64 { return p.Stats.SuppressedIssueCycles })))
	}
	r.Section(tb.String())
	return r, nil
}

// Oracle extends the paper: the full management-policy spectrum from a
// random-replacement cache to perfect a priori use knowledge (the paper's
// Section 3 motivation). It bounds how much of the remaining miss rate is
// predictor error versus structural (wrong-path uses, fill defaults).
func Oracle(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "oracle",
		Title: "Management-policy spectrum up to perfect use knowledge",
		Paper: "extension: the paper motivates use-based management with perfect a-priori use knowledge (Section 3); this ablation measures how close the 97%-accurate predictor gets",
	}
	random := sim.LRU(64, 2, core.IndexRoundRobin)
	random.Name = "random-64x2"
	random.Cache.Replace = core.ReplaceRandom
	schemes := []struct {
		name string
		sc   sim.Scheme
	}{
		{"random replacement", random},
		{"LRU", sim.LRU(64, 2, core.IndexRoundRobin)},
		{"non-bypass", sim.NonBypass(64, 2, core.IndexRoundRobin)},
		{"use-based (predicted)", sim.UseBased(64, 2, core.IndexFilteredRR)},
		{"use-based (oracle)", sim.UseBased(64, 2, core.IndexFilteredRR).WithOracle()},
	}
	all := make([]sim.Scheme, 0, len(schemes))
	for _, s := range schemes {
		all = append(all, s.sc)
	}
	prefetch(o, all...)
	base, err := sim.RunSuite(o.Benches, sim.LRU(64, 2, core.IndexRoundRobin), sim.Options{Insts: o.Insts})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("management", "speedup vs LRU", "miss rate", "cached-never-read")
	for _, s := range schemes {
		sr, err := sim.RunSuite(o.Benches, s.sc, sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		rel := fmt.Sprintf("%+.2f%%", 100*(sr.RelIPC(base)-1))
		tb.AddRow(s.name, rel, fmtF(sr.MeanMissRate()),
			fmtPct(sr.Mean(func(p pipeline.Result) float64 { return p.Cache.FracCachedNeverRead() })))
	}
	r.Section(tb.String())
	r.Note("the gap between predicted and oracle use-based rows is predictor error; the oracle's remaining misses are structural (wrong-path consumption, zero-use fill defaults)")
	return r, nil
}
