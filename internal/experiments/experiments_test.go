package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps experiment tests fast: two benchmarks, small budget.
func tinyOptions() Options {
	return Options{Insts: 15_000, Benches: []string{"gzip", "twolf"}}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure and table of the paper's evaluation must be registered.
	want := []string{"fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"table2", "fig11", "fig12", "sec3", "sec52", "sec53", "oracle"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %s missing", id)
			continue
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("nonesuch"); ok {
		t.Error("unexpected experiment")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Paper: "claim"}
	r.Section("body line")
	r.Sectionf("value %d", 42)
	r.Note("observation %s", "here")
	s := r.String()
	for _, want := range []string{"=== x: T ===", "claim", "body line", "value 42", "note: observation here"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// Each experiment must run end-to-end on a tiny configuration and produce
// a non-empty report. The characterization experiments additionally assert
// the paper's qualitative orderings below.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// The heavyweight sweeps get an even smaller budget.
	sweepIDs := map[string]bool{"fig6": true, "fig7": true, "fig11": true, "fig12": true, "sec53": true}
	for _, e := range All {
		o := tinyOptions()
		if sweepIDs[e.ID] {
			o.Insts = 8_000
			o.Benches = []string{"gzip"}
		}
		rep, err := e.Run(o)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(rep.Body) == 0 {
			t.Errorf("%s: empty report body", e.ID)
		}
		if rep.ID != e.ID {
			t.Errorf("%s: report id %q", e.ID, rep.ID)
		}
	}
}

func TestQuickOptions(t *testing.T) {
	q := Quick()
	if q.Insts == 0 || len(q.Benches) != 4 {
		t.Errorf("Quick() = %+v", q)
	}
	d := Options{}.withDefaults()
	if d.Insts == 0 || len(d.Benches) != 12 {
		t.Errorf("defaults = insts %d benches %d", d.Insts, len(d.Benches))
	}
}
