package experiments

import (
	"strings"
	"testing"

	"regcache/internal/sim"
)

// tinyOptions keeps experiment tests fast: two benchmarks, small budget.
func tinyOptions() Options {
	return Options{Insts: 15_000, Benches: []string{"gzip", "twolf"}}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure and table of the paper's evaluation must be registered.
	want := []string{"fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"table2", "fig11", "fig12", "sec3", "sec52", "sec53", "oracle"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %s missing", id)
			continue
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("nonesuch"); ok {
		t.Error("unexpected experiment")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Paper: "claim"}
	r.Section("body line")
	r.Sectionf("value %d", 42)
	r.Note("observation %s", "here")
	s := r.String()
	for _, want := range []string{"=== x: T ===", "claim", "body line", "value 42", "note: observation here"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// Each experiment must run end-to-end on a tiny configuration and produce
// a non-empty report. The characterization experiments additionally assert
// the paper's qualitative orderings below.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// The heavyweight sweeps get an even smaller budget.
	sweepIDs := map[string]bool{"fig6": true, "fig7": true, "fig11": true, "fig12": true, "sec53": true}
	for _, e := range All {
		o := tinyOptions()
		if sweepIDs[e.ID] {
			o.Insts = 8_000
			o.Benches = []string{"gzip"}
		}
		rep, err := e.Run(o)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(rep.Body) == 0 {
			t.Errorf("%s: empty report body", e.ID)
		}
		if rep.ID != e.ID {
			t.Errorf("%s: report id %q", e.ID, rep.ID)
		}
	}
}

// Running the same experiment twice in-process must serve the second run
// entirely from the shared run layer's memo — at least one cache hit per
// repeated (scheme, bench, insts) triple, zero new simulations — and
// produce a byte-identical Report.
func TestExperimentRerunIsMemoizedAndIdentical(t *testing.T) {
	o := tinyOptions()
	e, ok := ByID("fig8")
	if !ok {
		t.Fatal("fig8 missing")
	}
	r1, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	mid := sim.DefaultRunner().Stats()
	r2, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	delta := sim.DefaultRunner().Stats().Sub(mid)
	if delta.JobsRun != 0 {
		t.Errorf("second run re-simulated %d jobs, want 0", delta.JobsRun)
	}
	// fig8 runs 6 schemes over the benches: every triple must hit.
	if want := uint64(6 * len(o.Benches)); delta.CacheHits < want {
		t.Errorf("second run cache hits = %d, want >= %d (one per repeated triple)", delta.CacheHits, want)
	}
	if r1.String() != r2.String() {
		t.Errorf("memoized rerun produced a different report:\n--- first\n%s\n--- second\n%s", r1, r2)
	}
}

// Experiments that share schemes (fig9/fig10/table2/sec3 all use the
// Section 5.4 characterization design points) must share simulations: the
// baseline is computed once per process, not once per figure.
func TestExperimentsShareSimulations(t *testing.T) {
	o := tinyOptions()
	for _, id := range []string{"fig9", "fig10", "table2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		before := sim.DefaultRunner().Stats()
		if _, err := e.Run(o); err != nil {
			t.Fatal(err)
		}
		if id == "fig9" {
			continue // first of the group may simulate
		}
		if delta := sim.DefaultRunner().Stats().Sub(before); delta.JobsRun != 0 {
			t.Errorf("%s re-simulated %d jobs despite fig9 having run the same schemes", id, delta.JobsRun)
		}
	}
}

func TestQuickOptions(t *testing.T) {
	q := Quick()
	if q.Insts == 0 || len(q.Benches) != 4 {
		t.Errorf("Quick() = %+v", q)
	}
	d := Options{}.withDefaults()
	if d.Insts == 0 || len(d.Benches) != 12 {
		t.Errorf("defaults = insts %d benches %d", d.Insts, len(d.Benches))
	}
}
