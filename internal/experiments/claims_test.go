package experiments

import (
	"testing"

	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
)

// The paper's headline claims, asserted as regression tests at a moderate
// budget over contrasting benchmarks. These are the properties EXPERIMENTS.md
// tracks; a change that silently breaks one of the reproduced orderings
// fails here.

func claimBenches() []string { return []string{"gzip", "vpr", "crafty", "twolf"} }

func claimOpts() sim.Options { return sim.Options{Insts: 80_000} }

func suite(t *testing.T, s sim.Scheme) *sim.SuiteResult {
	t.Helper()
	sr, err := sim.RunSuite(claimBenches(), s, claimOpts())
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// Claim (Figures 6/11, abstract): the 64-entry two-way use-based cache
// with decoupled indexing outperforms the 3-cycle monolithic register file.
func TestClaimDesignPointBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	base := suite(t, sim.Monolithic(3))
	use := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR))
	if rel := use.RelIPC(base); rel <= 1.0 {
		t.Errorf("use-based 64x2 vs RF-3cyc speedup = %.4f, want > 1", rel)
	}
}

// Claim (Figure 6 baselines): register file latency costs performance
// monotonically.
func TestClaimRFLatencyMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	l1 := suite(t, sim.Monolithic(1))
	l3 := suite(t, sim.Monolithic(3))
	if rel := l1.RelIPC(l3); rel <= 1.0 {
		t.Errorf("RF-1cyc vs RF-3cyc speedup = %.4f, want > 1", rel)
	}
}

// Claim (Figures 8/11): use-based management beats both reference caching
// policies at the design point, and non-bypass trails LRU at 64 entries.
func TestClaimPolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	lru := suite(t, sim.LRU(64, 2, core.IndexRoundRobin))
	nb := suite(t, sim.NonBypass(64, 2, core.IndexRoundRobin))
	use := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR))
	if rel := use.RelIPC(lru); rel <= 1.0 {
		t.Errorf("use-based vs LRU speedup = %.4f, want > 1", rel)
	}
	if rel := nb.RelIPC(lru); rel >= 1.0 {
		t.Errorf("non-bypass vs LRU speedup = %.4f, want < 1 at 64 entries", rel)
	}
	if use.MeanMissRate() >= nb.MeanMissRate() {
		t.Errorf("use-based miss rate (%.4f) should be below non-bypass (%.4f)",
			use.MeanMissRate(), nb.MeanMissRate())
	}
}

// Claim (Section 3.2): most use-based replacement victims have zero
// remaining uses (the paper reports 84%).
func TestClaimZeroUseVictims(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	use := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR))
	frac := use.Mean(func(p pipeline.Result) float64 { return p.Cache.FracVictimsZeroUse() })
	if frac < 0.7 {
		t.Errorf("zero-use victim fraction %.2f, want >= 0.7 (paper: 0.84)", frac)
	}
}

// Claim (Figure 8 / Section 4): decoupled indexing removes a large share
// of conflict misses on a two-way cache (the paper reports 30-40%).
func TestClaimDecoupledIndexingCutsConflicts(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	std := suite(t, sim.UseBased(64, 2, core.IndexPReg))
	dec := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR))
	stdConf := std.MeanMissRateBy(core.MissConflict)
	decConf := dec.MeanMissRateBy(core.MissConflict)
	if stdConf == 0 {
		t.Skip("no conflict misses at this budget")
	}
	if reduction := 1 - decConf/stdConf; reduction < 0.15 {
		t.Errorf("decoupled indexing removed only %.0f%% of conflict misses, want >= 15%% (paper: 30-40%%)",
			100*reduction)
	}
}

// Claim (Table 2): the per-value cache metrics order as the paper's table:
// reads per cached value and entry lifetime rise from LRU to use-based;
// cache count and occupancy fall.
func TestClaimTable2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	lru := suite(t, sim.LRU(64, 2, core.IndexRoundRobin))
	use := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR))
	get := func(sr *sim.SuiteResult, f func(core.Stats) float64) float64 {
		return sr.Mean(func(p pipeline.Result) float64 { return f(p.Cache) })
	}
	if l, u := get(lru, func(c core.Stats) float64 { return c.ReadsPerCachedValue() }),
		get(use, func(c core.Stats) float64 { return c.ReadsPerCachedValue() }); u <= l {
		t.Errorf("reads/cached value: use-based %.2f <= LRU %.2f", u, l)
	}
	if l, u := get(lru, func(c core.Stats) float64 { return c.CacheCount() }),
		get(use, func(c core.Stats) float64 { return c.CacheCount() }); u >= l {
		t.Errorf("cache count: use-based %.2f >= LRU %.2f", u, l)
	}
	if l, u := get(lru, func(c core.Stats) float64 { return c.MeanEntryLifetime() }),
		get(use, func(c core.Stats) float64 { return c.MeanEntryLifetime() }); u <= l {
		t.Errorf("entry lifetime: use-based %.1f <= LRU %.1f", u, l)
	}
}

// Claim (Figure 12): use-based caching degrades more slowly with backing
// file latency than LRU caching.
func TestClaimBackingLatencyRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	use1 := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR).WithBacking(1))
	use6 := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR).WithBacking(6))
	lru1 := suite(t, sim.LRU(64, 2, core.IndexRoundRobin).WithBacking(1))
	lru6 := suite(t, sim.LRU(64, 2, core.IndexRoundRobin).WithBacking(6))
	useDeg := 1 - use6.RelIPC(use1)
	lruDeg := 1 - lru6.RelIPC(lru1)
	if useDeg >= lruDeg {
		t.Errorf("use-based degradation %.3f should be below LRU %.3f", useDeg, lruDeg)
	}
}

// Claim (Section 3): the degree-of-use predictor is highly accurate and
// the bypass network supplies the majority of operands.
func TestClaimVitalStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	use := suite(t, sim.UseBased(64, 2, core.IndexFilteredRR))
	if acc := use.Mean(func(p pipeline.Result) float64 { return p.UsePredAccuracy }); acc < 0.90 {
		t.Errorf("use predictor accuracy %.3f, want >= 0.90 (paper: 0.97)", acc)
	}
	if byp := use.Mean(func(p pipeline.Result) float64 { return p.BypassFrac }); byp < 0.45 || byp > 0.85 {
		t.Errorf("bypass fraction %.2f outside [0.45, 0.85] (paper: 0.57)", byp)
	}
}
