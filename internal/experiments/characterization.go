package experiments

import (
	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

// The three caching schemes characterized in Section 5.4, at the 64-entry
// two-way design point. Reference designs use round-robin decoupled
// indexing (no use information needed); the use-based design uses filtered
// round-robin, exactly as the paper specifies.
func charSchemes() []sim.Scheme {
	return []sim.Scheme{
		sim.LRU(64, 2, core.IndexRoundRobin),
		sim.NonBypass(64, 2, core.IndexRoundRobin),
		sim.UseBased(64, 2, core.IndexFilteredRR),
	}
}

var charNames = []string{"LRU", "non-bypass", "use-based"}

// Fig8 reproduces Figure 8: per-operand miss rates broken into filtered
// (initial write avoided), capacity, and conflict components, under
// standard indexing and under decoupled (filtered round-robin) indexing.
func Fig8(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig8",
		Title: "Register cache miss breakdown (per operand, 64-entry 2-way)",
		Paper: "write filtering trades eviction misses for filtered-value misses: non-bypass exceeds LRU overall, use-based is substantially lower; decoupled indexing removes 30-40% of conflict misses (Figure 8)",
	}
	std := []sim.Scheme{
		sim.LRU(64, 2, core.IndexPReg),
		sim.NonBypass(64, 2, core.IndexPReg),
		sim.UseBased(64, 2, core.IndexPReg),
	}
	dec := []sim.Scheme{
		sim.LRU(64, 2, core.IndexFilteredRR),
		sim.NonBypass(64, 2, core.IndexFilteredRR),
		sim.UseBased(64, 2, core.IndexFilteredRR),
	}
	prefetch(o, append(append([]sim.Scheme{}, std...), dec...)...)
	tb := stats.NewTable("scheme", "indexing", "filtered", "capacity", "conflict", "total")
	conflicts := map[string][2]float64{}
	for i := range charNames {
		var conf [2]float64
		for j, sc := range []sim.Scheme{std[i], dec[i]} {
			sr, err := sim.RunSuite(o.Benches, sc, sim.Options{Insts: o.Insts})
			if err != nil {
				return nil, err
			}
			idxName := "standard"
			if j == 1 {
				idxName = "filtered-RR"
			}
			tb.AddRow(charNames[i], idxName,
				fmtF(sr.MeanMissRateBy(core.MissFiltered)),
				fmtF(sr.MeanMissRateBy(core.MissCapacity)),
				fmtF(sr.MeanMissRateBy(core.MissConflict)),
				fmtF(sr.MeanMissRate()))
			conf[j] = sr.MeanMissRateBy(core.MissConflict)
		}
		conflicts[charNames[i]] = conf
	}
	r.Section(tb.String())
	for _, n := range charNames {
		c := conflicts[n]
		if c[0] > 0 {
			r.Note("%s: decoupled indexing removes %.0f%% of conflict misses (paper: 30-40%%)",
				n, 100*(1-c[1]/c[0]))
		}
	}
	return r, nil
}

// Fig9 reproduces Figure 9: average accesses per cycle by type and
// structure for the three caching schemes.
func Fig9(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig9",
		Title: "Average access bandwidth (per cycle, 64-entry 2-way)",
		Paper: "write filtering lowers cache write bandwidth versus LRU; register file read bandwidth is proportional to the miss rate; the file sees all writes (Figure 9)",
	}
	prefetch(o, charSchemes()...)
	tb := stats.NewTable("scheme", "cache-read", "cache-write", "file-read", "file-write")
	for i, sc := range charSchemes() {
		sr, err := sim.RunSuite(o.Benches, sc, sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		tb.AddRow(charNames[i],
			fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.CacheReadBW })),
			fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.CacheWriteBW })),
			fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.RFReadBW })),
			fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.RFWriteBW })))
	}
	r.Section(tb.String())
	r.Note("file-read bandwidth equals the fill bandwidth: the cache filters reads from the backing file, which is why a single read port suffices (Section 2.2)")
	return r, nil
}

// Fig10 reproduces Figure 10: the fractions of cached values never read,
// of initial writes filtered, and of values never cached at all.
func Fig10(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig10",
		Title: "Filtering effects (64-entry 2-way)",
		Paper: "use-based filtering caches fewer dead values than LRU while filtering a larger share of initial writes than non-bypass; use-based shows the lowest cached-never-read fraction (Figure 10)",
	}
	prefetch(o, charSchemes()...)
	tb := stats.NewTable("scheme", "cached-never-read", "writes-filtered", "never-cached")
	vals := map[string][3]float64{}
	for i, sc := range charSchemes() {
		sr, err := sim.RunSuite(o.Benches, sc, sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		v := [3]float64{
			sr.Mean(func(p pipeline.Result) float64 { return p.Cache.FracCachedNeverRead() }),
			sr.Mean(func(p pipeline.Result) float64 { return p.Cache.FracWritesFiltered() }),
			sr.Mean(func(p pipeline.Result) float64 { return p.Cache.FracNeverCached() }),
		}
		vals[charNames[i]] = v
		tb.AddRow(charNames[i], fmtPct(v[0]), fmtPct(v[1]), fmtPct(v[2]))
	}
	r.Section(tb.String())
	if vals["use-based"][1] > vals["non-bypass"][1] {
		r.Note("use-based filters a HIGHER share of initial writes than non-bypass (paper: same), with a lower miss rate — better filtering decisions, not less aggressive ones")
	}
	return r, nil
}

// Table2 reproduces Table 2: reads per cached value, times each value is
// cached, mean cache occupancy, and mean cache entry lifetime.
func Table2(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "table2",
		Title: "Register cache metrics (64-entry 2-way)",
		Paper: "LRU 0.67 reads/cached value, 1.09 cache count, 36.7 occupancy, 25.2-cycle lifetime; use-based 1.67, 0.44, 26.6, 43.6 (Table 2)",
	}
	prefetch(o, charSchemes()...)
	tb := stats.NewTable("metric", "LRU", "non-bypass", "use-based")
	rows := [4][]string{
		{"reads per cached value"},
		{"times each value is cached"},
		{"cache occupancy (entries)"},
		{"cache entry lifetime (cycles)"},
	}
	for _, sc := range charSchemes() {
		sr, err := sim.RunSuite(o.Benches, sc, sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		rows[0] = append(rows[0], fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.Cache.ReadsPerCachedValue() })))
		rows[1] = append(rows[1], fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.Cache.CacheCount() })))
		rows[2] = append(rows[2], fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.Cache.MeanOccupancy(p.Stats.Cycles) })))
		rows[3] = append(rows[3], fmtF(sr.Mean(func(p pipeline.Result) float64 { return p.Cache.MeanEntryLifetime() })))
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	r.Section(tb.String())
	r.Note("expected ordering: reads/cached value and entry lifetime increase LRU -> non-bypass -> use-based; cache count and occupancy decrease")
	return r, nil
}

// Sec3 checks the in-text statistics of Section 3: the fraction of
// operands supplied by the bypass network (57%), the fraction of
// replacement victims with zero remaining uses (84%), and the degree-of-use
// predictor accuracy (97%).
func Sec3(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "sec3",
		Title: "Use-based management vital statistics",
		Paper: "bypass supplies 57% of operands; 84% of use-based victims have zero remaining uses; degree-of-use prediction is 97% accurate (Section 3)",
	}
	sr, err := sim.RunSuite(o.Benches, sim.UseBased(64, 2, core.IndexFilteredRR), sim.Options{Insts: o.Insts})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("metric", "measured", "paper")
	tb.AddRow("bypass fraction of operand reads",
		fmtPct(sr.Mean(func(p pipeline.Result) float64 { return p.BypassFrac })), "57%")
	tb.AddRow("victims with zero remaining uses",
		fmtPct(sr.Mean(func(p pipeline.Result) float64 { return p.Cache.FracVictimsZeroUse() })), "84%")
	tb.AddRow("degree-of-use predictor accuracy",
		fmtPct(sr.Mean(func(p pipeline.Result) float64 { return p.UsePredAccuracy })), "97%")
	tb.AddRow("degree-of-use predictor coverage",
		fmtPct(sr.Mean(func(p pipeline.Result) float64 { return p.UsePredCoverage })), "(finite predictor)")
	r.Section(tb.String())
	return r, nil
}
