package experiments

import (
	"fmt"

	"regcache/internal/core"
	"regcache/internal/isa"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

// fig11Sizes are the cache/L1 capacities swept in Figure 11.
var fig11Sizes = []int{16, 24, 32, 48, 64, 96, 128}

// twoLevelMinL1 is the smallest workable L1 file: the paper notes the L1
// "must contain at least one more register than the number of architected
// registers; in practice, an even larger number is required".
const twoLevelMinL1 = isa.NumArchRegs + 8

// Fig11 reproduces Figure 11: performance versus cache/L1 size for the
// three caching schemes (two-way), a four-way use-based cache, and the
// two-level register file whose L1 holds the cache size plus 32 entries.
func Fig11(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig11",
		Title: "Performance vs cache/L1 size (geomean speedup over 3-cycle RF)",
		Paper: "use-based outperforms the other caches across capacities, with a growing edge at small sizes; LRU and non-bypass break even near 20 entries; a 4-way use-based cache matches the 64-entry 2-way at 48 entries; the two-level file trails due to rename stalls (Figure 11)",
	}
	mk := []struct {
		name string
		sc   func(size int) (sim.Scheme, bool)
	}{
		{"LRU 2-way", func(s int) (sim.Scheme, bool) { return sim.LRU(s, 2, core.IndexRoundRobin), true }},
		{"non-bypass 2-way", func(s int) (sim.Scheme, bool) { return sim.NonBypass(s, 2, core.IndexRoundRobin), true }},
		{"use-based 2-way", func(s int) (sim.Scheme, bool) { return sim.UseBased(s, 2, core.IndexFilteredRR), true }},
		{"use-based 4-way", func(s int) (sim.Scheme, bool) { return sim.UseBased(s, 4, core.IndexFilteredRR), s%4 == 0 }},
		{"two-level (+32)", func(s int) (sim.Scheme, bool) { return sim.TwoLevel(s+32, 2), s+32 >= twoLevelMinL1 }},
	}
	all := []sim.Scheme{sim.Monolithic(3), sim.Monolithic(1), sim.Monolithic(2)}
	for _, size := range fig11Sizes {
		for _, m := range mk {
			if sc, ok := m.sc(size); ok {
				all = append(all, sc)
			}
		}
	}
	prefetch(o, all...)

	base, err := sim.RunSuite(o.Benches, sim.Monolithic(3), sim.Options{Insts: o.Insts})
	if err != nil {
		return nil, err
	}
	for _, lat := range []int{1, 2} {
		sr, err := sim.RunSuite(o.Benches, sim.Monolithic(lat), sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		r.Sectionf("no-cache RF %d-cycle: %+.1f%% vs 3-cycle file", lat, 100*(sr.RelIPC(base)-1))
	}

	tb := stats.NewTable("entries", "LRU 2-way", "non-bypass 2-way", "use-based 2-way", "use-based 4-way", "two-level (+32)")
	curves := map[string]map[int]float64{}
	for _, m := range mk {
		curves[m.name] = map[int]float64{}
	}
	for _, size := range fig11Sizes {
		row := []string{fmt.Sprint(size)}
		for _, m := range mk {
			sc, ok := m.sc(size)
			if !ok {
				row = append(row, "-")
				continue
			}
			sr, err := sim.RunSuite(o.Benches, sc, sim.Options{Insts: o.Insts})
			if err != nil {
				return nil, err
			}
			rel := sr.RelIPC(base)
			curves[m.name][size] = rel
			row = append(row, fmt.Sprintf("%+.1f%%", 100*(rel-1)))
		}
		tb.AddRow(row...)
	}
	r.Section(tb.String())
	u, l, n := curves["use-based 2-way"], curves["LRU 2-way"], curves["non-bypass 2-way"]
	r.Note("use-based vs LRU at 64: %+.1f%%; at 16: %+.1f%% (paper: advantage grows as the cache shrinks)",
		100*(u[64]/l[64]-1), 100*(u[16]/l[16]-1))
	r.Note("non-bypass vs LRU at 64: %+.1f%%; at 16: %+.1f%% (paper: break even near 20 entries)",
		100*(n[64]/l[64]-1), 100*(n[16]/l[16]-1))
	if c4 := curves["use-based 4-way"]; c4[48] > 0 {
		r.Note("4-way at 48 entries vs 2-way at 64: %+.1f%% (paper: equivalent)",
			100*(c4[48]/u[64]-1))
	}
	if tl := curves["two-level (+32)"]; tl[64] > 0 {
		r.Note("two-level (96-entry L1) vs use-based at 64: %+.1f%% (paper: two-level trails)",
			100*(tl[64]/u[64]-1))
	}
	return r, nil
}

// Fig12 reproduces Figure 12: performance versus the backing file latency
// (L2 latency for the two-level scheme), 64-entry caches and a 96-entry
// two-level L1.
func Fig12(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig12",
		Title: "Performance vs backing file / L2 latency (geomean speedup over 3-cycle RF)",
		Paper: "use-based degrades far more slowly with backing latency than LRU or non-bypass; it beats the 3-cycle file through backing latencies up to five cycles; with a 2-cycle backing file it is 6% faster than the 3-cycle file (Figure 12)",
	}
	lats := []int{1, 2, 3, 4, 5, 6}
	all := []sim.Scheme{sim.Monolithic(3), sim.Monolithic(1), sim.Monolithic(2)}
	for _, lat := range lats {
		all = append(all,
			sim.LRU(64, 2, core.IndexRoundRobin).WithBacking(lat),
			sim.NonBypass(64, 2, core.IndexRoundRobin).WithBacking(lat),
			sim.UseBased(64, 2, core.IndexFilteredRR).WithBacking(lat),
			sim.TwoLevel(96, lat))
	}
	prefetch(o, all...)

	base, err := sim.RunSuite(o.Benches, sim.Monolithic(3), sim.Options{Insts: o.Insts})
	if err != nil {
		return nil, err
	}
	for _, lat := range []int{1, 2} {
		sr, err := sim.RunSuite(o.Benches, sim.Monolithic(lat), sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		r.Sectionf("no-cache RF %d-cycle: %+.1f%% vs 3-cycle file", lat, 100*(sr.RelIPC(base)-1))
	}

	tb := stats.NewTable("latency", "LRU", "non-bypass", "use-based", "two-level(96)")
	curves := map[string]map[int]float64{"LRU": {}, "non-bypass": {}, "use-based": {}, "two-level(96)": {}}
	for _, lat := range lats {
		row := []string{fmt.Sprint(lat)}
		schemes := []struct {
			name string
			sc   sim.Scheme
		}{
			{"LRU", sim.LRU(64, 2, core.IndexRoundRobin).WithBacking(lat)},
			{"non-bypass", sim.NonBypass(64, 2, core.IndexRoundRobin).WithBacking(lat)},
			{"use-based", sim.UseBased(64, 2, core.IndexFilteredRR).WithBacking(lat)},
			{"two-level(96)", sim.TwoLevel(96, lat)},
		}
		for _, s := range schemes {
			sr, err := sim.RunSuite(o.Benches, s.sc, sim.Options{Insts: o.Insts})
			if err != nil {
				return nil, err
			}
			rel := sr.RelIPC(base)
			curves[s.name][lat] = rel
			row = append(row, fmt.Sprintf("%+.1f%%", 100*(rel-1)))
		}
		tb.AddRow(row...)
	}
	r.Section(tb.String())
	u := curves["use-based"]
	r.Note("use-based degradation from backing 1 to 6: %.1f%%; LRU: %.1f%% (paper: use-based degrades less)",
		100*(1-u[6]/u[1]), 100*(1-curves["LRU"][6]/curves["LRU"][1]))
	r.Note("use-based with 2-cycle backing vs 3-cycle file: %+.1f%% (paper: +6%%)", 100*(u[2]-1))
	return r, nil
}
