package experiments

import (
	"fmt"

	"regcache/internal/core"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

// fig6Sizes are the cache capacities swept in Figure 6.
var fig6Sizes = []int{16, 24, 32, 48, 64, 96, 128}

// Fig6 reproduces Figure 6: mean performance of use-based register caches
// versus size and associativity under standard (physical-register)
// indexing, with the no-cache baselines at register file latencies 1-3
// superimposed.
func Fig6(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig6",
		Title: "IPC vs register cache size and associativity (standard indexing)",
		Paper: "two-way associativity is the minimum for reasonable performance; direct-mapped caches fail to beat the 3-cycle register file even when large; a 64-entry two-way cache is the chosen design point (Figure 6)",
	}
	assocs := []struct {
		name string
		ways func(entries int) int
	}{
		{"direct", func(int) int { return 1 }},
		{"2-way", func(int) int { return 2 }},
		{"4-way", func(int) int { return 4 }},
		{"full", func(e int) int { return e }},
	}
	all := []sim.Scheme{sim.Monolithic(3), sim.Monolithic(1), sim.Monolithic(2)}
	for _, size := range fig6Sizes {
		for _, a := range assocs {
			all = append(all, sim.UseBased(size, a.ways(size), core.IndexPReg))
		}
	}
	prefetch(o, all...)

	base, err := sim.RunSuite(o.Benches, sim.Monolithic(3), sim.Options{Insts: o.Insts})
	if err != nil {
		return nil, err
	}
	for _, lat := range []int{1, 2} {
		sr, err := sim.RunSuite(o.Benches, sim.Monolithic(lat), sim.Options{Insts: o.Insts})
		if err != nil {
			return nil, err
		}
		r.Sectionf("no-cache RF %d-cycle: %+.1f%% vs 3-cycle file", lat, 100*(sr.RelIPC(base)-1))
	}
	tb := stats.NewTable("entries", "direct", "2-way", "4-way", "full")
	results := map[string]map[int]float64{}
	for _, a := range assocs {
		results[a.name] = map[int]float64{}
	}
	for _, size := range fig6Sizes {
		row := []string{fmt.Sprint(size)}
		for _, a := range assocs {
			sc := sim.UseBased(size, a.ways(size), core.IndexPReg)
			sr, err := sim.RunSuite(o.Benches, sc, sim.Options{Insts: o.Insts})
			if err != nil {
				return nil, err
			}
			rel := sr.RelIPC(base)
			results[a.name][size] = rel
			row = append(row, fmt.Sprintf("%+.1f%%", 100*(rel-1)))
		}
		tb.AddRow(row...)
	}
	r.Section(tb.String())
	r.Sectionf("(cells: geomean speedup over the 3-cycle register file)")
	dm128, tw64 := results["direct"][128], results["2-way"][64]
	r.Note("direct-mapped at 128 entries vs RF-3cyc: %+.1f%% (paper: fails to break even)",
		100*(dm128-1))
	r.Note("64-entry 2-way vs RF-3cyc: %+.1f%% (paper design point)", 100*(tw64-1))
	r.Note("associativity gain at 64 entries: 2-way %+.1f%%, 4-way %+.1f%%, full %+.1f%% over direct",
		100*(results["2-way"][64]/results["direct"][64]-1),
		100*(results["4-way"][64]/results["direct"][64]-1),
		100*(results["full"][64]/results["direct"][64]-1))
	return r, nil
}

// Fig7 reproduces Figure 7: the decoupled indexing policies (round-robin,
// minimum, filtered round-robin) against standard preg indexing on
// use-based caches of one to four ways.
func Fig7(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig7",
		Title: "Decoupled indexing algorithms (64-entry use-based cache)",
		Paper: "filtered round-robin improves a two-way cache by 1.9%; minimum performs nearly as well; even round-robin helps; advantages grow as associativity falls (Figure 7)",
	}
	indexes := []core.IndexScheme{core.IndexPReg, core.IndexRoundRobin, core.IndexMinimum, core.IndexFilteredRR}
	var all []sim.Scheme
	for _, ways := range []int{1, 2, 4} {
		for _, idx := range indexes {
			all = append(all, sim.UseBased(64, ways, idx))
		}
	}
	prefetch(o, all...)
	tb := stats.NewTable("ways", "preg", "round-robin", "minimum", "filtered")
	gains := map[int]map[core.IndexScheme]float64{}
	for _, ways := range []int{1, 2, 4} {
		row := []string{fmt.Sprint(ways)}
		gains[ways] = map[core.IndexScheme]float64{}
		var base *sim.SuiteResult
		for _, idx := range indexes {
			sr, err := sim.RunSuite(o.Benches, sim.UseBased(64, ways, idx), sim.Options{Insts: o.Insts})
			if err != nil {
				return nil, err
			}
			if idx == core.IndexPReg {
				base = sr
				gains[ways][idx] = 1
				row = append(row, "1.000")
			} else {
				rel := sr.RelIPC(base)
				gains[ways][idx] = rel
				row = append(row, fmt.Sprintf("%+.2f%%", 100*(rel-1)))
			}
		}
		tb.AddRow(row...)
	}
	r.Section(tb.String())
	r.Note("filtered round-robin gain on 2-way: %+.2f%% (paper: +1.9%%)",
		100*(gains[2][core.IndexFilteredRR]-1))
	r.Note("gain on direct-mapped: %+.2f%%; on 4-way: %+.2f%% (paper: larger gains at lower associativity)",
		100*(gains[1][core.IndexFilteredRR]-1),
		100*(gains[4][core.IndexFilteredRR]-1))
	return r, nil
}
