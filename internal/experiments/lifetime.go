package experiments

import (
	"fmt"

	"regcache/internal/core"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

// lifetimeScheme is the machine used for the lifetime characterization
// (Figures 1-2): the paper measures on its baseline out-of-order machine;
// the register storage scheme does not change the architectural lifetimes
// materially, so the use-based design point is used here.
//
// These two experiments read lifetime histograms off the pipeline object
// after the run, which a memoized pipeline.Result cannot carry, so they
// deliberately bypass the shared run layer (sim.RunPipeline, not sim.Run).
func lifetimeScheme() sim.Scheme {
	return sim.UseBased(64, 2, core.IndexFilteredRR)
}

// Fig1 reproduces Figure 1: the median lengths of the empty, live, and
// dead phases of physical register lifetimes, averaged over the suite.
func Fig1(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig1",
		Title: "Register lifetime phases (cycles)",
		Paper: "live time is a small fraction of the total lifetime; dead time dominates (Figure 1)",
	}
	tb := stats.NewTable("bench", "empty(med)", "live(med)", "dead(med)")
	var em, lv, dd []float64
	for _, b := range o.Benches {
		pl, err := sim.RunPipeline(b, lifetimeScheme(), sim.Options{Insts: o.Insts, TrackLifetimes: true})
		if err != nil {
			return nil, err
		}
		pl.Run(o.Insts)
		lt := pl.Lifetimes()
		e, l, d := lt.Empty.Median(), lt.Live.Median(), lt.Dead.Median()
		em = append(em, float64(e))
		lv = append(lv, float64(l))
		dd = append(dd, float64(d))
		tb.AddRow(b, fmt.Sprint(e), fmt.Sprint(l), fmt.Sprint(d))
	}
	tb.AddRow("MEAN", fmtF(stats.Mean(em)), fmtF(stats.Mean(lv)), fmtF(stats.Mean(dd)))
	r.Section(tb.String())
	r.Note("live/dead ratio %.3f (paper: live time is a small fraction of the lifetime)",
		stats.Mean(lv)/maxf(stats.Mean(dd), 1))
	return r, nil
}

// Fig2 reproduces Figure 2: cumulative distributions of simultaneously
// allocated physical registers and simultaneously live values, with the
// 90th-percentile live count the paper highlights (56 for SPECint 2000).
func Fig2(o Options) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "fig2",
		Title: "Allocated vs live registers (distribution over cycles)",
		Paper: "median live values < 20% of allocated registers; 90% of the time 56 locations hold all live values (Figure 2)",
	}
	alloc := stats.NewHistogram()
	live := stats.NewHistogram()
	tb := stats.NewTable("bench", "alloc p50", "alloc p90", "live p50", "live p90")
	for _, b := range o.Benches {
		pl, err := sim.RunPipeline(b, lifetimeScheme(), sim.Options{Insts: o.Insts, TrackLifetimes: true, TrackLive: true})
		if err != nil {
			return nil, err
		}
		pl.Run(o.Insts)
		lt := pl.Lifetimes()
		a, l := lt.AllocatedDist(), lt.LiveDist()
		alloc.Merge(a)
		live.Merge(l)
		tb.AddRow(b, fmt.Sprint(a.Median()), fmt.Sprint(a.Percentile(0.9)),
			fmt.Sprint(l.Median()), fmt.Sprint(l.Percentile(0.9)))
	}
	tb.AddRow("SUITE", fmt.Sprint(alloc.Median()), fmt.Sprint(alloc.Percentile(0.9)),
		fmt.Sprint(live.Median()), fmt.Sprint(live.Percentile(0.9)))
	r.Section(tb.String())
	ratio := float64(live.Median()) / maxf(float64(alloc.Median()), 1)
	r.Note("suite median live = %d = %.0f%% of median allocated (%d); live P90 = %d",
		live.Median(), 100*ratio, alloc.Median(), live.Percentile(0.9))
	return r, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
