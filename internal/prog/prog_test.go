package prog

import (
	"testing"

	"regcache/internal/isa"
)

// buildTinyLoop assembles: r1 = 5; L: r2 = r2 + 1; r1 = r1 - 1; bne r1, L;
// then an infinite self-loop so execution never falls off the code.
func buildTinyLoop(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("tiny", 1)
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: isa.IntR(1), Imm: 5})
	b.Label("L")
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: isa.IntR(2), Src1: isa.IntR(2), Imm: 1})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: isa.IntR(1), Src1: isa.IntR(1), Imm: -1})
	b.EmitBranch(isa.Inst{Op: isa.OpBranch, Fn: isa.FnCmpNE, Src1: isa.IntR(1)}, "L")
	b.Label("End")
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, "End")
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderAndLoopExecution(t *testing.T) {
	p := buildTinyLoop(t)
	e := NewExec(p)
	steps := 0
	for e.PC() != p.Entry()+4*isa.InstBytes && steps < 100 {
		e.Step()
		steps++
	}
	// 1 init + 5 iterations * 3 insts = 16 steps to reach the End label.
	if steps != 16 {
		t.Fatalf("loop took %d steps, want 16", steps)
	}
	if got := e.Reg(isa.IntR(2)); got != 5 {
		t.Fatalf("r2 = %d, want 5 (one increment per iteration)", got)
	}
	if got := e.Reg(isa.IntR(1)); got != 0 {
		t.Fatalf("r1 = %d, want 0", got)
	}
}

func TestBuilderUnresolvedLabel(t *testing.T) {
	b := NewBuilder("bad", 1)
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, "nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected error for unresolved label")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate label")
		}
	}()
	b := NewBuilder("dup", 1)
	b.Label("x")
	b.Label("x")
}

func TestValidateCatchesBadBranchTarget(t *testing.T) {
	b := NewBuilder("bad", 1)
	b.Emit(isa.Inst{Op: isa.OpBranch, Fn: isa.FnCmpNE, Src1: isa.IntR(1), Target: 0x99999})
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected validation error for out-of-code branch target")
	}
}

func TestInstAtBounds(t *testing.T) {
	p := buildTinyLoop(t)
	if p.InstAt(CodeBase-isa.InstBytes) != nil {
		t.Error("InstAt below code should be nil")
	}
	if p.InstAt(CodeBase+1) != nil {
		t.Error("misaligned InstAt should be nil")
	}
	if p.InstAt(CodeBase+uint64(p.NumInsts())*isa.InstBytes) != nil {
		t.Error("InstAt past end should be nil")
	}
	if p.InstAt(CodeBase) == nil {
		t.Error("InstAt entry should not be nil")
	}
}

func TestExecMemoryLayers(t *testing.T) {
	b := NewBuilder("mem", 42)
	b.Data(0x1234_5678, 123) // globals region: exempt from jump-table validation
	b.Label("E")
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, "E")
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p)
	if got := e.Load(0x1234_5678); got != 123 {
		t.Fatalf("static image read = %d, want 123", got)
	}
	// Procedural memory: deterministic and non-zero with high probability.
	v1 := e.Load(0x1000_0000)
	v2 := e.Load(0x1000_0000)
	if v1 != v2 {
		t.Fatal("procedural memory not deterministic")
	}
	if v1 != HashMem(42, 0x1000_0000) {
		t.Fatal("procedural memory does not match HashMem")
	}
	// Stores overlay both layers.
	e.store(0x1234_5678, 7)
	if e.Load(0x1234_5678) != 7 {
		t.Fatal("store overlay not visible")
	}
}

func TestExecRollback(t *testing.T) {
	p := buildTinyLoop(t)
	e := NewExec(p)
	e.Step() // r1 = 5
	tok := e.Checkpoint()
	pcBefore := e.PC()
	r1, r2 := e.Reg(isa.IntR(1)), e.Reg(isa.IntR(2))
	for i := 0; i < 7; i++ {
		e.Step()
	}
	e.Rollback(tok)
	if e.PC() != pcBefore || e.Reg(isa.IntR(1)) != r1 || e.Reg(isa.IntR(2)) != r2 {
		t.Fatalf("rollback did not restore state: pc=%#x r1=%d r2=%d", e.PC(), e.Reg(isa.IntR(1)), e.Reg(isa.IntR(2)))
	}
	// Execution after rollback proceeds identically.
	s := e.Step()
	if s.Inst.PC != pcBefore {
		t.Fatal("step after rollback executed wrong instruction")
	}
}

func TestExecRollbackMemory(t *testing.T) {
	b := NewBuilder("memroll", 9)
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: isa.IntR(1), Imm: int64(GlobalBase)})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: isa.IntR(2), Imm: 77})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: isa.IntR(1), Src2: isa.IntR(2)})
	b.Label("E")
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, "E")
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p)
	e.Step()
	e.Step()
	orig := e.Load(GlobalBase)
	tok := e.Checkpoint()
	e.Step() // store
	if e.Load(GlobalBase) != 77 {
		t.Fatal("store not applied")
	}
	e.Rollback(tok)
	if e.Load(GlobalBase) != orig {
		t.Fatal("memory rollback failed: overlay entry not removed")
	}
}

func TestExecCommitBoundsLog(t *testing.T) {
	p := buildTinyLoop(t)
	e := NewExec(p)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	n := e.LogLen()
	if n == 0 {
		t.Fatal("expected undo entries")
	}
	e.Commit(n)
	if e.LogLen() != 0 {
		t.Fatalf("commit left %d entries", e.LogLen())
	}
	// State is unaffected by commit.
	if e.Reg(isa.IntR(2)) == 0 {
		t.Fatal("commit corrupted register state")
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("call", 3)
	// main: sp init is implicit; call f; then spin.
	b.EmitBranch(isa.Inst{Op: isa.OpCall, Dest: isa.RA}, "f")
	b.Label("E")
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, "E")
	b.Label("f")
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: isa.IntR(5), Imm: 99})
	b.Emit(isa.Inst{Op: isa.OpRet, Src1: isa.RA})
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e := NewExec(p)
	s := e.Step() // call
	if !s.Taken || e.Reg(isa.RA) != p.Entry()+isa.InstBytes {
		t.Fatal("call did not record return address")
	}
	e.Step() // li in f
	s = e.Step() // ret
	if s.NextPC != p.Entry()+isa.InstBytes {
		t.Fatalf("ret went to %#x, want %#x", s.NextPC, p.Entry()+isa.InstBytes)
	}
	if e.Reg(isa.IntR(5)) != 99 {
		t.Fatal("function body did not execute")
	}
}

func TestGenerateAllProfilesValid(t *testing.T) {
	for _, prof := range SPECProfiles {
		p, err := Generate(prof)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if p.NumInsts() < 200 {
			t.Errorf("%s: suspiciously small program (%d insts)", prof.Name, p.NumInsts())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(SPECProfiles[0])
	b := MustGenerate(SPECProfiles[0])
	if a.NumInsts() != b.NumInsts() {
		t.Fatal("same profile generated different program sizes")
	}
	for i := 0; i < a.NumInsts(); i++ {
		pc := CodeBase + uint64(i)*isa.InstBytes
		if *a.InstAt(pc) != *b.InstAt(pc) {
			t.Fatalf("instruction %d differs between identical generations", i)
		}
	}
}

func TestGeneratedProgramsRun(t *testing.T) {
	const steps = 50_000
	for _, prof := range SPECProfiles {
		p := MustGenerate(prof)
		e := NewExec(p)
		for i := 0; i < steps; i++ {
			in := p.InstAt(e.PC())
			if in == nil {
				t.Fatalf("%s: execution fell off code at %#x after %d steps", prof.Name, e.PC(), i)
			}
			e.StepInst(in)
		}
	}
}

func TestCharacterizationShape(t *testing.T) {
	// The statistical properties the paper's mechanisms rely on must hold
	// for the generated suite: most values single-use, moderate load
	// fraction, branches present, calls balanced.
	for _, name := range []string{"gzip", "mcf", "gcc"} {
		prof, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		c := Characterize(MustGenerate(prof), 200_000)
		if c.Insts < 100_000 {
			t.Fatalf("%s: executed only %d insts", name, c.Insts)
		}
		if su := c.SingleUseFrac(); su < 0.35 || su > 0.85 {
			t.Errorf("%s: single-use fraction %.2f outside [0.35, 0.85]", name, su)
		}
		if lf := c.OpFrac(isa.OpLoad); lf < 0.05 || lf > 0.45 {
			t.Errorf("%s: load fraction %.2f outside [0.05, 0.45]", name, lf)
		}
		if bf := c.OpFrac(isa.OpBranch); bf < 0.02 || bf > 0.35 {
			t.Errorf("%s: branch fraction %.2f outside [0.02, 0.35]", name, bf)
		}
		calls, rets := c.OpCounts[isa.OpCall], c.OpCounts[isa.OpRet]
		if diff := int64(calls) - int64(rets); diff < -2 || diff > int64(calls)/2+40 {
			t.Errorf("%s: calls %d vs rets %d wildly unbalanced", name, calls, rets)
		}
		if c.String() == "" {
			t.Error("empty characterization report")
		}
	}
}

func TestProfileLookup(t *testing.T) {
	if _, ok := ProfileByName("nonesuch"); ok {
		t.Error("unexpected profile hit")
	}
	names := ProfileNames()
	if len(names) != 12 {
		t.Fatalf("expected 12 profiles, got %d", len(names))
	}
	for _, n := range names {
		if _, ok := ProfileByName(n); !ok {
			t.Errorf("ProfileByName(%q) failed", n)
		}
	}
}

func TestRNGDeterminismAndRanges(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(3, 5); v < 3 || v > 5 {
			t.Fatalf("Range out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if g := r.Geometric(5, 20); g < 1 || g > 20 {
			t.Fatalf("Geometric out of range: %d", g)
		}
	}
}

func TestRNGWeighted(t *testing.T) {
	r := NewRNG(2)
	counts := [3]int{}
	for i := 0; i < 30_000; i++ {
		counts[r.Weighted([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Error("zero-weight bucket selected")
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weighted ratio %.2f, want ~3", ratio)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(3)
	var sum int
	const n = 20_000
	for i := 0; i < n; i++ {
		sum += r.Geometric(8, 1000)
	}
	mean := float64(sum) / n
	if mean < 7 || mean > 9 {
		t.Errorf("geometric mean %.2f, want ~8", mean)
	}
}

func TestCheckpointTokensSurviveCommit(t *testing.T) {
	p := buildTinyLoop(t)
	e := NewExec(p)
	e.Step()
	tokA := e.Checkpoint()
	e.Step()
	tokB := e.Checkpoint()
	e.Step()
	e.Step()
	// Commit up to tokA; tokB must remain a valid rollback target.
	e.Commit(tokA)
	e.Rollback(tokB)
	if e.LogLen() != tokB-tokA {
		t.Fatalf("log length = %d, want %d", e.LogLen(), tokB-tokA)
	}
	// Rolling back before the commit point must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic rolling back past commit point")
		}
	}()
	e.Rollback(tokA - 1)
}

func TestForcePCIsUndone(t *testing.T) {
	p := buildTinyLoop(t)
	e := NewExec(p)
	e.Step()
	tok := e.Checkpoint()
	correct := e.PC()
	e.ForcePC(0x9999)
	if e.PC() != 0x9999 {
		t.Fatal("ForcePC did not redirect")
	}
	e.Rollback(tok)
	if e.PC() != correct {
		t.Fatalf("rollback restored pc=%#x, want %#x", e.PC(), correct)
	}
}
