package prog

// SPECProfiles are twelve built-in workload profiles named after the
// SPECint 2000 suite the paper evaluates. Each profile stresses the axes
// the corresponding benchmark is known for: mcf's pointer-chasing cache
// misses, gcc's large static footprint and call density, perlbmk's indirect
// dispatch, bzip2/gzip's tight predictable loops, twolf/vpr's data-dependent
// branches, and so on. The absolute numbers are synthetic; the *spread* of
// behaviours across the suite is what the evaluation needs.
var SPECProfiles = []Profile{
	{
		Name: "gzip", Seed: 0x67a1,
		Funcs: 8, MeanTrip: 24, MaxTrip: 96, MaxLoopDepth: 2,
		WStraight: 3, WLoop: 3, WDiamond: 1.5, WCall: 0.8, WSwitch: 0.05,
		RandomCond: 0.12, PointerChase: 0.02, FootprintLog2: 16,
		VarTripFrac: 0.2,
	},
	{
		Name: "vpr", Seed: 0x7632,
		Funcs: 12, MeanTrip: 10, MaxTrip: 48, MaxLoopDepth: 2,
		WStraight: 3, WLoop: 2, WDiamond: 2.5, WCall: 1, WSwitch: 0.1,
		RandomCond: 0.35, PointerChase: 0.08, FootprintLog2: 18,
		VarTripFrac: 0.35,
	},
	{
		Name: "gcc", Seed: 0x9cc3,
		Funcs: 28, SegMin: 4, SegMax: 9, MeanTrip: 5, MaxTrip: 24, MaxLoopDepth: 2,
		WStraight: 3, WLoop: 1.2, WDiamond: 2.5, WCall: 2.2, WSwitch: 0.5,
		RandomCond: 0.25, PointerChase: 0.10, FootprintLog2: 19,
		VarTripFrac: 0.4, BlockMin: 3, BlockMax: 9,
	},
	{
		Name: "mcf", Seed: 0x3cf4,
		Funcs: 7, MeanTrip: 16, MaxTrip: 64, MaxLoopDepth: 2,
		WStraight: 2.5, WLoop: 2.5, WDiamond: 2, WCall: 0.6, WSwitch: 0,
		RandomCond: 0.30, PointerChase: 0.45, FootprintLog2: 22,
		VarTripFrac: 0.3, WLoad: 3.2, WStore: 0.9, WIAlu: 5, WIMul: 0.05, WFp: 0.05,
	},
	{
		Name: "crafty", Seed: 0xc4a5,
		Funcs: 14, MeanTrip: 8, MaxTrip: 32, MaxLoopDepth: 2,
		WStraight: 4, WLoop: 1.8, WDiamond: 2.2, WCall: 1.2, WSwitch: 0.1,
		RandomCond: 0.18, PointerChase: 0.03, FootprintLog2: 17,
		VarTripFrac: 0.25, WLoad: 2.0, WStore: 0.8, WIAlu: 7, WIMul: 0.1, WFp: 0.05,
	},
	{
		Name: "parser", Seed: 0xa456,
		Funcs: 18, MeanTrip: 7, MaxTrip: 32, MaxLoopDepth: 2,
		WStraight: 3, WLoop: 1.5, WDiamond: 2.5, WCall: 2, WSwitch: 0.15,
		RandomCond: 0.30, PointerChase: 0.15, FootprintLog2: 19,
		VarTripFrac: 0.4,
	},
	{
		Name: "eon", Seed: 0xe077,
		Funcs: 16, MeanTrip: 9, MaxTrip: 40, MaxLoopDepth: 2,
		WStraight: 3.5, WLoop: 2, WDiamond: 1.8, WCall: 1.8, WSwitch: 0.1,
		RandomCond: 0.15, PointerChase: 0.04, FootprintLog2: 17,
		VarTripFrac: 0.2, WLoad: 2.2, WStore: 1.2, WIAlu: 5.2, WIMul: 0.2, WFp: 0.35,
	},
	{
		Name: "perlbmk", Seed: 0xbe58,
		Funcs: 20, MeanTrip: 6, MaxTrip: 24, MaxLoopDepth: 2,
		WStraight: 3, WLoop: 1.3, WDiamond: 2.2, WCall: 2.2, WSwitch: 1.0,
		RandomCond: 0.28, PointerChase: 0.12, FootprintLog2: 18,
		VarTripFrac: 0.35, SwitchWays: 8,
	},
	{
		Name: "gap", Seed: 0x6a99,
		Funcs: 12, MeanTrip: 14, MaxTrip: 56, MaxLoopDepth: 3,
		WStraight: 3, WLoop: 2.6, WDiamond: 1.6, WCall: 1, WSwitch: 0.1,
		RandomCond: 0.18, PointerChase: 0.06, FootprintLog2: 18,
		VarTripFrac: 0.25, WLoad: 2.4, WStore: 1.0, WIAlu: 5.5, WIMul: 0.5, WFp: 0.1,
	},
	{
		Name: "vortex", Seed: 0x0b1a,
		Funcs: 22, MeanTrip: 6, MaxTrip: 24, MaxLoopDepth: 2,
		WStraight: 3.2, WLoop: 1.4, WDiamond: 2, WCall: 2.4, WSwitch: 0.2,
		RandomCond: 0.20, PointerChase: 0.10, FootprintLog2: 19,
		VarTripFrac: 0.3, WLoad: 2.6, WStore: 1.6, WIAlu: 5.2, WIMul: 0.1, WFp: 0.05,
	},
	{
		Name: "bzip2", Seed: 0xb21b,
		Funcs: 9, MeanTrip: 28, MaxTrip: 128, MaxLoopDepth: 2,
		WStraight: 3, WLoop: 3.2, WDiamond: 1.4, WCall: 0.7, WSwitch: 0,
		RandomCond: 0.15, PointerChase: 0.03, FootprintLog2: 20,
		VarTripFrac: 0.2,
	},
	{
		Name: "twolf", Seed: 0x201c,
		Funcs: 13, MeanTrip: 9, MaxTrip: 40, MaxLoopDepth: 2,
		WStraight: 3, WLoop: 2, WDiamond: 2.8, WCall: 1, WSwitch: 0.1,
		RandomCond: 0.40, PointerChase: 0.12, FootprintLog2: 19,
		VarTripFrac: 0.4,
	},
}

// ProfileByName returns the built-in profile with the given name, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range SPECProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames lists the built-in benchmark names in suite order.
func ProfileNames() []string {
	names := make([]string, len(SPECProfiles))
	for i, p := range SPECProfiles {
		names[i] = p.Name
	}
	return names
}
