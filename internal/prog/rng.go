package prog

// RNG is a deterministic xorshift64* pseudo-random generator. Every source
// of randomness in the workload generator flows through one of these so a
// (profile, seed) pair always produces the identical program and therefore
// identical simulation results.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped so the
// stream is never degenerate).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("prog: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a pseudo-random int in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with the given
// mean (>= 1), clamped to [1, cap].
func (r *RNG) Geometric(mean float64, max int) int {
	if mean < 1 {
		mean = 1
	}
	p := 1 / mean
	n := 1
	for n < max && !r.Bool(p) {
		n++
	}
	return n
}

// Weighted returns an index into weights chosen with probability
// proportional to the weight values. Non-positive total weight panics.
func (r *RNG) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("prog: Weighted with non-positive total")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// HashMem is the procedural initial-memory function: the first read of an
// address that was never stored to and is not in the program's static image
// returns HashMem(seed, addr). It is a 64-bit mix (splitmix64 finalizer) so
// "uninitialized" data looks random but is fully deterministic.
func HashMem(seed, addr uint64) uint64 {
	x := addr + seed + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
