package prog

import (
	"fmt"

	"regcache/internal/isa"
)

// Step describes the functional outcome of executing one instruction: the
// source values read, the result produced, the branch decision, and the
// memory address touched. The timing simulator records Steps at rename time
// (execute-at-fetch style) and uses them to drive branch resolution and the
// memory system.
type Step struct {
	Inst    *isa.Inst
	S1, S2  uint64 // source values (0 for unused slots)
	Result  uint64 // destination value (loads: loaded value)
	Taken   bool   // conditional branches only
	NextPC  uint64 // actual next PC
	MemAddr uint64 // word-aligned effective address for loads/stores
}

// Exec is the functional executor: architectural registers plus sparse
// memory with three layers — the store overlay, the program's static image,
// and the procedural initial-memory hash. It supports speculative execution
// with undo-log rollback so the timing pipeline can run down mispredicted
// paths and recover exactly.
type Exec struct {
	prog *Program
	regs [isa.NumArchRegs]uint64
	mem  map[uint64]memCell
	pc   uint64
	log  []undoRec
	head int // index of the first uncommitted record in log
	base int // virtual position of log[0]; tokens are base-relative
}

// memCell is one word of the store overlay.
type memCell struct {
	val uint64
}

// undoRec reverses one architectural state change.
type undoRec struct {
	isMem   bool
	isPC    bool
	addrReg uint64 // memory address, register number, or old PC
	oldVal  uint64
	hadVal  bool // memory only: whether the overlay held a value before
}

// NewExec creates an executor positioned at the program entry with the
// stack pointer initialized.
func NewExec(p *Program) *Exec {
	e := &Exec{
		prog: p,
		mem:  make(map[uint64]memCell, 1024),
		pc:   p.Entry(),
	}
	e.regs[isa.SP] = StackBase
	return e
}

// ExecState is a portable snapshot of the committed architectural state:
// registers, the store overlay, and the program counter. It is the whole
// checkpoint needed to resume functional execution — everything else in an
// Exec (the undo log) is speculation bookkeeping that an architectural
// boundary by definition has none of.
type ExecState struct {
	Regs [isa.NumArchRegs]uint64
	Mem  map[uint64]uint64
	PC   uint64
}

// State deep-copies the current architectural state. It must be taken at a
// committed point (no uncommitted undo-log entries); interval checkpointing
// takes it from a purely functional pre-pass, which never speculates.
func (e *Exec) State() ExecState {
	if e.LogLen() != 0 {
		panic("prog: State taken with uncommitted speculative work")
	}
	st := ExecState{Regs: e.regs, PC: e.pc, Mem: make(map[uint64]uint64, len(e.mem))}
	for a, c := range e.mem {
		st.Mem[a] = c.val
	}
	return st
}

// NewExecAt creates an executor positioned at a previously captured state.
// The state is copied, so one snapshot can seed any number of executors
// (the interval runner starts K pipelines from shared checkpoints).
func NewExecAt(p *Program, st ExecState) *Exec {
	e := &Exec{
		prog: p,
		regs: st.Regs,
		mem:  make(map[uint64]memCell, len(st.Mem)+1024),
		pc:   st.PC,
	}
	for a, v := range st.Mem {
		e.mem[a] = memCell{val: v}
	}
	return e
}

// PC returns the current program counter.
func (e *Exec) PC() uint64 { return e.pc }

// Reg returns the architectural value of r (zero registers read as zero).
func (e *Exec) Reg(r isa.Reg) uint64 {
	if r == isa.RegNone || r.IsZeroReg() {
		return 0
	}
	return e.regs[r.Index()]
}

// Load returns the 64-bit word at addr, consulting the store overlay, then
// the static image, then the procedural initial-memory function.
func (e *Exec) Load(addr uint64) uint64 {
	addr &^= 7
	if c, ok := e.mem[addr]; ok {
		return c.val
	}
	if v, ok := e.prog.Image[addr]; ok {
		return v
	}
	return HashMem(e.prog.MemSeed, addr)
}

// store writes a word, recording an undo entry.
func (e *Exec) store(addr, val uint64) {
	addr &^= 7
	old, had := e.mem[addr]
	e.log = append(e.log, undoRec{isMem: true, addrReg: addr, oldVal: old.val, hadVal: had})
	e.mem[addr] = memCell{val: val}
}

// setReg writes a register, recording an undo entry. Writes to zero
// registers are discarded (no undo entry needed).
func (e *Exec) setReg(r isa.Reg, val uint64) {
	if r == isa.RegNone || r.IsZeroReg() {
		return
	}
	e.log = append(e.log, undoRec{addrReg: uint64(r.Index()), oldVal: e.regs[r.Index()]})
	e.regs[r.Index()] = val
}

// setPC moves the program counter, recording an undo entry.
func (e *Exec) setPC(pc uint64) {
	e.log = append(e.log, undoRec{isPC: true, addrReg: e.pc})
	e.pc = pc
}

// Checkpoint returns a token capturing the current speculative depth.
// Rolling back to the token undoes every architectural change made since.
// Tokens are virtual positions: they remain valid across Commit calls.
func (e *Exec) Checkpoint() int { return e.base + len(e.log) }

// Rollback undoes all changes made after the checkpoint token was taken.
// The token must not predate the last Commit.
func (e *Exec) Rollback(token int) {
	idx := token - e.base
	if idx < e.head || idx > len(e.log) {
		panic(fmt.Sprintf("prog: bad rollback token %d (base %d, head %d, log %d)", token, e.base, e.head, len(e.log)))
	}
	for i := len(e.log) - 1; i >= idx; i-- {
		u := e.log[i]
		switch {
		case u.isMem:
			if u.hadVal {
				e.mem[u.addrReg] = memCell{val: u.oldVal}
			} else {
				delete(e.mem, u.addrReg)
			}
		case u.isPC:
			e.pc = u.addrReg
		default:
			e.regs[u.addrReg] = u.oldVal
		}
	}
	e.log = e.log[:idx]
}

// Commit discards undo history older than the checkpoint token, declaring
// everything before it architecturally final. Later tokens remain valid;
// rolling back past the commit point becomes impossible. The timing
// simulator commits at retirement to keep the undo log bounded.
//
// Commit only advances a head index; the retained tail is compacted to
// the front of the buffer when the dead prefix dominates, so per-retire
// cost is amortized O(1) instead of an O(live-window) copy.
func (e *Exec) Commit(token int) {
	idx := token - e.base
	if idx <= e.head {
		return
	}
	if idx > len(e.log) {
		idx = len(e.log)
	}
	e.head = idx
	if e.head >= 64 && e.head >= len(e.log)-e.head {
		n := copy(e.log, e.log[e.head:])
		e.log = e.log[:n]
		e.base += e.head
		e.head = 0
	}
}

// LogLen returns the current uncommitted undo-log length (exported for
// tests and for the pipeline's token bookkeeping).
func (e *Exec) LogLen() int { return len(e.log) - e.head }

// ForcePC redirects the program counter, recording an undo entry. The
// timing pipeline uses this to steer execution down the *predicted* path
// after a functionally resolved branch disagrees with the prediction;
// rollback at recovery restores the correct-path PC.
func (e *Exec) ForcePC(pc uint64) { e.setPC(pc) }

// Step executes the instruction at the current PC and advances. It panics
// if the PC does not map to an instruction; callers on speculative paths
// must check InstAt first (the pipeline does).
func (e *Exec) Step() Step {
	in := e.prog.InstAt(e.pc)
	if in == nil {
		panic(fmt.Sprintf("prog: execution fell off code at %#x", e.pc))
	}
	return e.StepInst(in)
}

// StepInst executes in (which must be the instruction at the current PC)
// and advances the PC to the functional next PC. All architectural changes
// are undo-logged.
func (e *Exec) StepInst(in *isa.Inst) Step {
	s := Step{Inst: in, S1: e.Reg(in.Src1), S2: e.Reg(in.Src2)}
	next := in.FallThrough()
	switch in.Op {
	case isa.OpNop:
	case isa.OpIAlu, isa.OpIMul, isa.OpFAlu, isa.OpFMul, isa.OpFDiv:
		s2eff := s.S2
		if in.Src2 == isa.RegNone {
			s2eff = uint64(in.Imm)
		}
		s.Result = isa.EvalALU(in.Fn, in.Imm, s.S1, s2eff)
		e.setReg(in.Dest, s.Result)
	case isa.OpLoad:
		s.MemAddr = (s.S1 + uint64(in.Imm)) &^ 7
		s.Result = e.Load(s.MemAddr)
		e.setReg(in.Dest, s.Result)
	case isa.OpStore:
		s.MemAddr = (s.S1 + uint64(in.Imm)) &^ 7
		e.store(s.MemAddr, s.S2)
	case isa.OpBranch:
		s.Taken = isa.BranchTaken(in.Fn, s.S1)
		if s.Taken {
			next = in.Target
		}
	case isa.OpJump:
		s.Taken = true
		next = in.Target
	case isa.OpCall:
		s.Taken = true
		s.Result = in.FallThrough()
		e.setReg(in.Dest, s.Result)
		next = in.Target
	case isa.OpRet, isa.OpIndirect:
		s.Taken = true
		next = s.S1
	default:
		panic(fmt.Sprintf("prog: unknown opcode %v", in.Op))
	}
	s.NextPC = next
	e.setPC(next)
	return s
}
