package prog

import (
	"fmt"
	"strings"

	"regcache/internal/isa"
	"regcache/internal/stats"
)

// Characterization summarizes the dynamic behaviour of a program over a
// bounded functional execution: operation mix, architectural degree-of-use
// distribution, branch statistics, and code-footprint. It validates that a
// generated workload has the statistical shape the study needs and powers
// cmd/tracegen.
type Characterization struct {
	Name         string
	Insts        uint64
	OpCounts     map[isa.Op]uint64
	DegreeOfUse  *stats.Histogram // reads per architectural definition
	CondBranches uint64
	CondTaken    uint64
	StaticTouched int // distinct static instructions executed
	UniqueAddrs  int  // distinct word addresses touched by loads/stores
}

// Characterize functionally executes the first n dynamic instructions and
// accumulates the summary. Degree of use is measured architecturally: the
// number of reads of each register definition before its redefinition.
func Characterize(p *Program, n uint64) *Characterization {
	c := &Characterization{
		Name:        p.Name,
		OpCounts:    make(map[isa.Op]uint64),
		DegreeOfUse: stats.NewHistogram(),
	}
	e := NewExec(p)
	reads := [isa.NumArchRegs]int{}
	defined := [isa.NumArchRegs]bool{}
	touched := make(map[uint64]struct{})
	addrs := make(map[uint64]struct{})
	for i := uint64(0); i < n; i++ {
		in := p.InstAt(e.PC())
		if in == nil {
			break
		}
		s := e.StepInst(in)
		c.Insts++
		c.OpCounts[in.Op]++
		touched[in.PC] = struct{}{}
		for _, r := range [...]isa.Reg{in.Src1, in.Src2} {
			if r != isa.RegNone && !r.IsZeroReg() {
				reads[r.Index()]++
			}
		}
		if in.HasDest() {
			if defined[in.Dest.Index()] {
				c.DegreeOfUse.Add(reads[in.Dest.Index()])
			}
			reads[in.Dest.Index()] = 0
			defined[in.Dest.Index()] = true
		}
		if in.Op.IsCond() {
			c.CondBranches++
			if s.Taken {
				c.CondTaken++
			}
		}
		if in.Op.IsMem() {
			addrs[s.MemAddr] = struct{}{}
		}
	}
	c.StaticTouched = len(touched)
	c.UniqueAddrs = len(addrs)
	return c
}

// OpFrac returns the fraction of dynamic instructions with the given op.
func (c *Characterization) OpFrac(op isa.Op) float64 {
	if c.Insts == 0 {
		return 0
	}
	return float64(c.OpCounts[op]) / float64(c.Insts)
}

// SingleUseFrac returns the fraction of definitions consumed exactly once.
func (c *Characterization) SingleUseFrac() float64 {
	if c.DegreeOfUse.N() == 0 {
		return 0
	}
	return float64(c.DegreeOfUse.Count(1)) / float64(c.DegreeOfUse.N())
}

// String renders a human-readable report.
func (c *Characterization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d insts, %d static, %d unique words\n",
		c.Name, c.Insts, c.StaticTouched, c.UniqueAddrs)
	fmt.Fprintf(&b, "  mix: load %.1f%% store %.1f%% ialu %.1f%% imul %.1f%% fp %.1f%% br %.1f%% jmp %.1f%% call %.1f%% ret %.1f%% ijmp %.1f%%\n",
		100*c.OpFrac(isa.OpLoad), 100*c.OpFrac(isa.OpStore), 100*c.OpFrac(isa.OpIAlu),
		100*c.OpFrac(isa.OpIMul),
		100*(c.OpFrac(isa.OpFAlu)+c.OpFrac(isa.OpFMul)+c.OpFrac(isa.OpFDiv)),
		100*c.OpFrac(isa.OpBranch), 100*c.OpFrac(isa.OpJump), 100*c.OpFrac(isa.OpCall),
		100*c.OpFrac(isa.OpRet), 100*c.OpFrac(isa.OpIndirect))
	taken := 0.0
	if c.CondBranches > 0 {
		taken = float64(c.CondTaken) / float64(c.CondBranches)
	}
	fmt.Fprintf(&b, "  cond branches: %.1f%% of insts, %.1f%% taken\n",
		100*c.OpFrac(isa.OpBranch), 100*taken)
	fmt.Fprintf(&b, "  degree of use: mean %.2f, P(0)=%.2f P(1)=%.2f P(2)=%.2f P(>=3)=%.2f\n",
		c.DegreeOfUse.Mean(),
		frac(c.DegreeOfUse, 0), frac(c.DegreeOfUse, 1), frac(c.DegreeOfUse, 2),
		tail(c.DegreeOfUse, 3))
	return b.String()
}

func frac(h *stats.Histogram, v int) float64 {
	if h.N() == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.N())
}

func tail(h *stats.Histogram, from int) float64 {
	if h.N() == 0 {
		return 0
	}
	var c uint64
	for v := from; v <= h.Max(); v++ {
		c += h.Count(v)
	}
	return float64(c) / float64(h.N())
}
