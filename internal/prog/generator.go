package prog

import (
	"fmt"

	"regcache/internal/isa"
)

// Profile parameterizes the synthetic benchmark generator on exactly the
// statistical program properties the register-caching study depends on:
// degree-of-use distribution, branch predictability, memory locality,
// call/loop structure, and operation mix. Twelve built-in profiles named
// after the SPECint 2000 suite live in profiles.go.
type Profile struct {
	Name string
	Seed uint64

	Funcs        int     // number of functions including main
	SegMin       int     // min segments per function body
	SegMax       int     // max segments per function body
	BlockMin     int     // min instructions per straight-line chunk
	BlockMax     int     // max instructions per straight-line chunk
	MaxLoopDepth int     // maximum loop nesting inside a function
	MeanTrip     int     // mean inner-loop trip count
	MaxTrip      int     // trip count cap
	VarTripFrac  float64 // fraction of loops with data-dependent trip counts

	// Segment type weights (straight-line, loop, if-diamond, call, switch).
	WStraight, WLoop, WDiamond, WCall, WSwitch float64

	// Operation weights within compute chunks.
	WLoad, WStore, WIAlu, WIMul, WFp float64

	// UseDist[i] is the probability a newly produced value has i planned
	// consumers; the final entry is the tail (>= len-1 uses).
	UseDist []float64

	RandomCond    float64 // probability a diamond condition is data-random
	PointerChase  float64 // fraction of loads that random-walk the heap
	FootprintLog2 int     // log2 of global data region size in bytes
	SwitchWays    int     // jump-table arms for switch segments
}

// normalized fills defaulted fields so profiles can be written tersely.
func (p Profile) normalized() Profile {
	if p.SegMin == 0 {
		p.SegMin = 3
	}
	if p.SegMax < p.SegMin {
		p.SegMax = p.SegMin + 4
	}
	if p.BlockMin == 0 {
		p.BlockMin = 3
	}
	if p.BlockMax < p.BlockMin {
		p.BlockMax = p.BlockMin + 5
	}
	if p.MaxLoopDepth == 0 {
		p.MaxLoopDepth = 2
	}
	if p.MeanTrip == 0 {
		p.MeanTrip = 12
	}
	if p.MaxTrip == 0 {
		p.MaxTrip = 64
	}
	if p.Funcs == 0 {
		p.Funcs = 10
	}
	if p.UseDist == nil {
		p.UseDist = DefaultUseDist
	}
	if p.FootprintLog2 == 0 {
		p.FootprintLog2 = 18
	}
	if p.SwitchWays == 0 {
		p.SwitchWays = 8
	}
	if p.WStraight+p.WLoop+p.WDiamond+p.WCall+p.WSwitch == 0 {
		p.WStraight, p.WLoop, p.WDiamond, p.WCall, p.WSwitch = 3, 2, 2, 1, 0.2
	}
	if p.WLoad+p.WStore+p.WIAlu+p.WIMul+p.WFp == 0 {
		p.WLoad, p.WStore, p.WIAlu, p.WIMul, p.WFp = 2.4, 1.1, 6, 0.15, 0.08
	}
	return p
}

// DefaultUseDist matches the degree-of-use characterization of Butts &
// Sohi [5]: most values are consumed exactly once, a meaningful fraction
// are never read, and a thin tail has many consumers.
var DefaultUseDist = []float64{0.08, 0.64, 0.16, 0.06, 0.03, 0.015, 0.01, 0.005}

// Generate builds the synthetic program for a profile. The same profile
// always yields the identical program.
func Generate(p Profile) (*Program, error) {
	p = p.normalized()
	g := &generator{
		prof: p,
		rng:  NewRNG(p.Seed),
		b:    NewBuilder(p.Name, p.Seed^0xdeadbeefcafef00d),
	}
	return g.run()
}

// ThreadProfile derives the per-context profile for hardware context tid
// of a multithreaded workload: the same statistical program shape, but a
// context-salted seed so each context runs its own deterministic
// instruction stream (the multithreaded analogue of running independent
// copies of a benchmark, SMT-style). Context 0 is the identity — thread 0
// of a multithreaded run executes exactly the single-context program.
func ThreadProfile(p Profile, tid int) Profile {
	if tid <= 0 {
		return p
	}
	p.Seed ^= 0x9e3779b97f4a7c15 * uint64(tid)
	p.Name = fmt.Sprintf("%s#t%d", p.Name, tid)
	return p
}

// MustGenerate is Generate for profiles known to be valid (the built-ins);
// it panics on error.
func MustGenerate(p Profile) *Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}

// generator carries the emission state for one program.
type generator struct {
	prof         Profile
	rng          *RNG
	b            *Builder
	labelSeq     int
	tableOff     uint64    // next free slot in the jump-table region
	funcIdx      int       // function currently being generated
	callsEmitted int       // call segments emitted in the current function
	cursors      []isa.Reg // strided-cursor registers of enclosing loops
}

// label returns a fresh unique label with a readable prefix.
func (g *generator) label(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, g.labelSeq)
}

func funcLabel(i int) string { return fmt.Sprintf("func_%d", i) }

func (g *generator) run() (*Program, error) {
	g.emitMain()
	for i := 1; i < g.prof.Funcs; i++ {
		g.funcIdx = i
		g.emitFunction(i)
	}
	return g.b.Finish()
}

// ---------------------------------------------------------------------------
// Register allocation during generation.
//
// The allocator shapes the static def-use web: sources are drawn from
// values with planned uses remaining, and destinations reuse registers
// whose planned uses are exhausted. Planned-use counts are sampled from the
// profile's degree-of-use distribution, which is what makes the dynamic
// degree-of-use distribution land where the paper's does.
// ---------------------------------------------------------------------------

// Register budget available to the allocator. SP (r30), the zero register
// (r31), RA (r26), and r25/r27..r29 (generator scratch: entropy state,
// global region base, table base, chase pointer) are reserved.
const allocIntRegs = 25 // r0..r24

var (
	regEnt = isa.IntR(25) // entropy state: an LCG evolved by random branches
	regGB  = isa.IntR(27) // global region base (invariant)
	regTB  = isa.IntR(28) // jump-table base (invariant)
	regPtr = isa.IntR(29) // pointer-chase cursor
)

// LCG constants for the entropy register (Knuth's MMIX multiplier). The
// evolving state makes data-dependent branch outcomes genuinely
// unpredictable per dynamic instance, like hash- or input-driven branches
// in real programs — without it, reloaded static data gives periodic
// outcome sequences that a history predictor learns exactly.
const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

type regInfo struct {
	remaining int  // planned uses not yet emitted
	age       int  // generation timestamp of the defining instruction
	reserved  bool // loop counters / cursors: excluded from dest selection
}

type regAlloc struct {
	rng   *RNG
	dist  []float64
	info  [allocIntRegs]regInfo
	fp    [8]regInfo // f0..f7 (arch regs 32..39)
	clock int
}

func newRegAlloc(rng *RNG, dist []float64) *regAlloc {
	return &regAlloc{rng: rng, dist: dist}
}

// sampleUses draws a planned-use count from the profile distribution.
func (a *regAlloc) sampleUses() int { return a.rng.Weighted(a.dist) }

// src picks an integer source register, preferring values with planned uses
// remaining (weighted toward nearly drained values so chains stay tight),
// and decrements the plan. With no live candidates it falls back to the
// global-base invariant, which is always defined.
func (a *regAlloc) src() isa.Reg {
	best := a.pickLive()
	if best < 0 {
		return regGB
	}
	a.info[best].remaining--
	return isa.IntR(best)
}

// pickLive returns a register index with remaining planned uses, or -1.
// Selection is strongly biased toward the most recently defined values:
// real code consumes most results within a few instructions of producing
// them (that is what makes the paper's bypass network satisfy 57% of
// operands and keeps the simultaneously-live value count low). A
// geometric walk from the newest live value gives that shape while the
// planned-use weighting still drains multi-use values over time.
func (a *regAlloc) pickLive() int {
	live := make([]int, 0, len(a.info))
	for i := range a.info {
		if a.info[i].remaining > 0 {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	// Sort live candidates by definition age, newest first (insertion sort
	// over a handful of entries).
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && a.info[live[j]].age > a.info[live[j-1]].age; j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	k := 0
	for k < len(live)-1 && !a.rng.Bool(0.7) {
		k++
	}
	return live[k]
}

// dest picks an integer destination register — the oldest register whose
// planned uses are exhausted — and assigns it a fresh planned-use count.
// If every register still has uses planned, the least-recently-defined
// non-reserved register is stolen (its remaining uses never materialize,
// which is one source of the degree-of-use mispredictions the paper's
// Section 3.4 discusses).
func (a *regAlloc) dest() isa.Reg {
	a.clock++
	best, bestAge := -1, int(^uint(0)>>1)
	for i := range a.info {
		ri := &a.info[i]
		if ri.reserved {
			continue
		}
		if ri.remaining == 0 && ri.age < bestAge {
			best, bestAge = i, ri.age
		}
	}
	if best < 0 {
		for i := range a.info {
			ri := &a.info[i]
			if ri.reserved {
				continue
			}
			if ri.age < bestAge {
				best, bestAge = i, ri.age
			}
		}
	}
	if best < 0 {
		panic("prog: register allocator exhausted (all reserved)")
	}
	a.info[best] = regInfo{remaining: a.sampleUses(), age: a.clock}
	return isa.IntR(best)
}

// reserve claims a specific register for structural use (loop counter,
// cursor); it will not be chosen as a destination until released.
func (a *regAlloc) reserve(r isa.Reg) {
	a.clock++
	a.info[r.Index()] = regInfo{remaining: 0, age: a.clock, reserved: true}
}

// release returns a structural register to the pool.
func (a *regAlloc) release(r isa.Reg) {
	a.info[r.Index()].reserved = false
	a.info[r.Index()].remaining = 0
}

// srcFP picks a floating-point source with planned uses, or -1 semantics
// identical to src (falls back to f0).
func (a *regAlloc) srcFP() isa.Reg {
	var total int
	for i := range a.fp {
		total += a.fp[i].remaining
	}
	if total == 0 {
		return isa.FPR(0)
	}
	x := a.rng.Intn(total)
	for i := range a.fp {
		r := a.fp[i].remaining
		if r <= 0 {
			continue
		}
		if x < r {
			a.fp[i].remaining--
			return isa.FPR(i)
		}
		x -= r
	}
	return isa.FPR(0)
}

// destFP picks a floating-point destination.
func (a *regAlloc) destFP() isa.Reg {
	a.clock++
	best, bestAge := 0, int(^uint(0)>>1)
	for i := range a.fp {
		if a.fp[i].remaining == 0 && a.fp[i].age < bestAge {
			best, bestAge = i, a.fp[i].age
		}
	}
	if bestAge == int(^uint(0)>>1) {
		for i := range a.fp {
			if a.fp[i].age < bestAge {
				best, bestAge = i, a.fp[i].age
			}
		}
	}
	a.fp[best] = regInfo{remaining: a.sampleUses(), age: a.clock}
	return isa.FPR(best)
}

// ---------------------------------------------------------------------------
// Function emission.
// ---------------------------------------------------------------------------

const frameSize = 64 // bytes; slot 0 holds the return address

// emitMain generates function 0: setup plus an infinite outer loop calling
// into the rest of the program. The simulator bounds execution by dynamic
// instruction count, so the outer loop never exits.
func (g *generator) emitMain() {
	b, p := g.b, g.prof
	b.Label(funcLabel(0))
	// Establish the stack and the invariant bases.
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: isa.SP, Imm: int64(StackBase)})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: regGB, Imm: int64(GlobalBase)})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: regTB, Imm: int64(TableBase)})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: regPtr, Imm: int64(GlobalBase)})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: regEnt, Imm: int64(g.rng.Uint64() >> 1)})
	outer := g.label("outer")
	b.Label(outer)
	// Call every top-level function, interleaved with a little compute so
	// main itself contributes to the instruction stream.
	alloc := newRegAlloc(g.rng, p.UseDist)
	g.emitCompute(alloc, g.rng.Range(p.BlockMin, p.BlockMax))
	for i := 1; i < p.Funcs; i++ {
		if g.rng.Bool(0.8) {
			b.EmitBranch(isa.Inst{Op: isa.OpCall, Dest: isa.RA}, funcLabel(i))
			g.emitCompute(alloc, g.rng.Range(2, p.BlockMin+2))
		}
	}
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, outer)
}

// emitFunction generates one callable function: prologue (frame + RA spill
// + invariant setup), a body of segments, and an epilogue that restores RA
// and returns.
func (g *generator) emitFunction(idx int) {
	b, p := g.b, g.prof
	b.Label(funcLabel(idx))
	// Prologue.
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: isa.SP, Src1: isa.SP, Imm: -frameSize})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: isa.SP, Src2: isa.RA, Imm: 0})
	// Function-local view of the globals (distinct offsets give different
	// functions different working sets).
	off := int64(g.rng.Intn(1<<uint(p.FootprintLog2-3))) * 8 / 4
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: regGB, Src1: regGB, Imm: off &^ 7})
	alloc := newRegAlloc(g.rng, p.UseDist)
	// Seed the value pool so sources exist from the first compute chunk.
	for i := 0; i < 3; i++ {
		d := alloc.dest()
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: d, Imm: int64(g.rng.Intn(1 << 16))})
	}
	g.callsEmitted = 0
	segs := g.rng.Range(p.SegMin, p.SegMax)
	for s := 0; s < segs; s++ {
		g.emitSegment(alloc, 0)
	}
	// Epilogue.
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: regGB, Src1: regGB, Imm: -(off &^ 7)})
	b.Emit(isa.Inst{Op: isa.OpLoad, Dest: isa.RA, Src1: isa.SP, Imm: 0})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: isa.SP, Src1: isa.SP, Imm: frameSize})
	b.Emit(isa.Inst{Op: isa.OpRet, Src1: isa.RA})
}

// emitSegment emits one body segment chosen by the profile weights.
func (g *generator) emitSegment(alloc *regAlloc, loopDepth int) {
	p := g.prof
	wLoop := p.WLoop
	if loopDepth >= p.MaxLoopDepth {
		wLoop = 0
	}
	wCall := p.WCall
	if g.funcIdx >= p.Funcs-1 || loopDepth > 0 || g.callsEmitted >= 2 {
		// Calls are emitted only at segment top level and at most twice per
		// function so one outer-loop pass of main stays bounded (calls
		// inside loops multiply the callee's dynamic weight by the trip
		// count, starving the rest of the program of coverage).
		wCall = 0
	}
	switch g.rng.Weighted([]float64{p.WStraight, wLoop, p.WDiamond, wCall, p.WSwitch}) {
	case 0:
		g.emitCompute(alloc, g.rng.Range(p.BlockMin, p.BlockMax))
	case 1:
		g.emitLoop(alloc, loopDepth)
	case 2:
		g.emitDiamond(alloc, loopDepth)
	case 3:
		g.emitCall(alloc)
	case 4:
		g.emitSwitch(alloc, loopDepth)
	}
}

// emitCompute emits n instructions of straight-line work following the
// profile's operation mix.
func (g *generator) emitCompute(alloc *regAlloc, n int) {
	p := g.prof
	for i := 0; i < n; i++ {
		switch g.rng.Weighted([]float64{p.WLoad, p.WStore, p.WIAlu, p.WIMul, p.WFp}) {
		case 0:
			g.emitLoad(alloc)
		case 1:
			g.emitStore(alloc)
		case 2:
			g.emitIAlu(alloc)
		case 3:
			d := alloc.dest()
			g.b.Emit(isa.Inst{Op: isa.OpIMul, Fn: isa.FnMul, Dest: d, Src1: alloc.src(), Src2: alloc.src()})
		case 4:
			g.emitFPCluster(alloc)
		}
	}
}

// footprintMask masks an arbitrary value into the global data region.
func (g *generator) footprintMask() int64 {
	return int64((uint64(1) << uint(g.prof.FootprintLog2)) - 1)
}

// emitLoad emits one of three load flavours: a pointer-chase step (random
// walk through the heap region, mcf-style), a strided load off the
// innermost loop cursor (array traversal, prefetcher-friendly), or a
// displacement load off a pool-derived address.
func (g *generator) emitLoad(alloc *regAlloc) {
	b := g.b
	if g.rng.Bool(g.prof.PointerChase) {
		// next = GlobalBase + (load(ptr) & mask); ptr = next.
		d := alloc.dest()
		b.Emit(isa.Inst{Op: isa.OpLoad, Dest: d, Src1: regPtr, Imm: 0})
		t := alloc.dest()
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAnd, Dest: t, Src1: d, Imm: g.footprintMask() &^ 7})
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: regPtr, Src1: t, Imm: int64(GlobalBase)})
		return
	}
	if len(g.cursors) > 0 && g.rng.Bool(0.55) {
		// Strided access through the innermost loop's cursor.
		cur := g.cursors[len(g.cursors)-1]
		d := alloc.dest()
		b.Emit(isa.Inst{Op: isa.OpLoad, Dest: d, Src1: cur, Imm: int64(g.rng.Intn(8)) * 8})
		return
	}
	// addr = GB + (src & mask): data-dependent but region-bounded.
	a := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAnd, Dest: a, Src1: alloc.src(), Imm: g.footprintMask() &^ 7})
	a2 := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: a2, Src1: a, Src2: regGB})
	d := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpLoad, Dest: d, Src1: a2, Imm: int64(g.rng.Intn(8)) * 8})
}

// emitStore emits a store of a pool value, either to the frame (spill-like,
// cache-friendly) or to a data-dependent global address.
func (g *generator) emitStore(alloc *regAlloc) {
	b := g.b
	data := alloc.src()
	if g.rng.Bool(0.4) {
		// Frame store: slots 8..56 (slot 0 is the RA save).
		b.Emit(isa.Inst{Op: isa.OpStore, Src1: isa.SP, Src2: data, Imm: int64(g.rng.Range(1, frameSize/8-1)) * 8})
		return
	}
	if len(g.cursors) > 0 && g.rng.Bool(0.5) {
		cur := g.cursors[len(g.cursors)-1]
		b.Emit(isa.Inst{Op: isa.OpStore, Src1: cur, Src2: data, Imm: int64(g.rng.Intn(4)) * 8})
		return
	}
	a := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAnd, Dest: a, Src1: alloc.src(), Imm: g.footprintMask() &^ 7})
	a2 := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: a2, Src1: a, Src2: regGB})
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: a2, Src2: data, Imm: 0})
}

// intFns are the ALU selectors used for generic compute.
var intFns = []isa.Fn{isa.FnAdd, isa.FnSub, isa.FnAnd, isa.FnOr, isa.FnXor, isa.FnShl, isa.FnShr, isa.FnCmpLT, isa.FnCmpEQ}

// emitIAlu emits one integer ALU instruction, register-register or
// register-immediate.
func (g *generator) emitIAlu(alloc *regAlloc) {
	fn := intFns[g.rng.Intn(len(intFns))]
	in := isa.Inst{Op: isa.OpIAlu, Fn: fn, Src1: alloc.src()}
	if fn == isa.FnShl || fn == isa.FnShr {
		in.Imm = int64(g.rng.Range(1, 12))
	} else if g.rng.Bool(0.5) {
		in.Src2 = alloc.src()
	} else {
		in.Imm = int64(g.rng.Intn(1 << 10))
	}
	in.Dest = alloc.dest()
	g.b.Emit(in)
}

// emitFPCluster emits a short floating-point chain: load, two or three FP
// ops, store — SPECint's sparse FP usage.
func (g *generator) emitFPCluster(alloc *regAlloc) {
	b := g.b
	fd := alloc.destFP()
	b.Emit(isa.Inst{Op: isa.OpLoad, Dest: fd, Src1: regGB, Imm: int64(g.rng.Intn(64)) * 8})
	n := g.rng.Range(2, 3)
	for i := 0; i < n; i++ {
		op := isa.OpFAlu
		fn := isa.FnAdd
		switch g.rng.Intn(8) {
		case 0:
			op, fn = isa.OpFDiv, isa.FnMul
		case 1, 2:
			op, fn = isa.OpFMul, isa.FnMul
		}
		b.Emit(isa.Inst{Op: op, Fn: fn, Dest: alloc.destFP(), Src1: alloc.srcFP(), Src2: alloc.srcFP()})
	}
	b.Emit(isa.Inst{Op: isa.OpStore, Src1: regGB, Src2: alloc.srcFP(), Imm: int64(g.rng.Intn(64)) * 8})
}

// emitLoop emits a counted loop. The counter is a reserved register
// decremented each iteration; a fraction of loops draw their trip count
// from data so the exit is less predictable.
func (g *generator) emitLoop(alloc *regAlloc, loopDepth int) {
	b, p := g.b, g.prof
	// Damp nested trip counts so two-deep nests do not dominate the dynamic
	// instruction stream (and so coverage reaches the rest of the program).
	meanTrip := p.MeanTrip >> uint(2*loopDepth)
	if meanTrip < 2 {
		meanTrip = 2
	}
	ctr := alloc.dest()
	alloc.reserve(ctr)
	if g.rng.Bool(p.VarTripFrac) {
		// trip = (load & mask) + 1
		tmp := alloc.dest()
		b.Emit(isa.Inst{Op: isa.OpLoad, Dest: tmp, Src1: regGB, Imm: int64(g.rng.Intn(32)) * 8})
		mask := int64(nextPow2(meanTrip*2) - 1)
		t2 := alloc.dest()
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAnd, Dest: t2, Src1: tmp, Imm: mask})
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: ctr, Src1: t2, Imm: 1})
	} else {
		trip := g.rng.Geometric(float64(meanTrip), p.MaxTrip)
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: ctr, Imm: int64(trip)})
	}
	// Strided cursor: starts at a per-loop spot in the globals (or follows
	// the chase pointer) and advances by the stride each iteration.
	cur := alloc.dest()
	alloc.reserve(cur)
	if g.rng.Bool(0.3) {
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnMov, Dest: cur, Src1: regPtr})
	} else {
		off := int64(g.rng.Intn(1<<uint(p.FootprintLog2-4))) &^ 7
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: cur, Src1: regGB, Imm: off})
	}
	stride := int64(8 * g.rng.Range(1, 3))
	g.cursors = append(g.cursors, cur)
	top := g.label("loop")
	b.Label(top)
	// Loop body: one or two nested segments.
	nseg := g.rng.Range(1, 2)
	for i := 0; i < nseg; i++ {
		g.emitSegment(alloc, loopDepth+1)
	}
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: cur, Src1: cur, Imm: stride})
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: ctr, Src1: ctr, Imm: -1})
	b.EmitBranch(isa.Inst{Op: isa.OpBranch, Fn: isa.FnCmpNE, Src1: ctr}, top)
	g.cursors = g.cursors[:len(g.cursors)-1]
	alloc.release(cur)
	alloc.release(ctr)
}

// emitDiamond emits an if/then/else. Predictable conditions compare an
// invariant-derived value (always resolves the same way or alternates);
// random conditions hash loaded data, defeating the branch predictor at the
// profile's chosen rate.
func (g *generator) emitDiamond(alloc *regAlloc, loopDepth int) {
	b, p := g.b, g.prof
	cond := alloc.dest()
	if g.rng.Bool(p.RandomCond) {
		// Data-driven: test high-order bits of the *current* entropy value
		// (available immediately, so the branch resolves quickly, like a
		// real branch on already-loaded data), then evolve the register
		// with an LCG step for the next test. Outcomes are genuinely
		// unpredictable per dynamic instance; wider masks bias the branch
		// toward not-taken.
		tmp2 := alloc.dest()
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnShr, Dest: tmp2, Src1: regEnt, Imm: 33})
		mask := []int64{1, 1, 3, 7}[g.rng.Intn(4)]
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAnd, Dest: cond, Src1: tmp2, Imm: mask})
		b.Emit(isa.Inst{Op: isa.OpIMul, Fn: isa.FnMul, Dest: regEnt, Src1: regEnt, Imm: lcgMul})
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: regEnt, Src1: regEnt, Imm: lcgAdd})
	} else {
		// Static: cond = constant — always resolves the same way.
		b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnLoadImm, Dest: cond, Imm: int64(g.rng.Intn(2))})
	}
	elseL, joinL := g.label("else"), g.label("join")
	b.EmitBranch(isa.Inst{Op: isa.OpBranch, Fn: isa.FnCmpEQ, Src1: cond}, elseL)
	g.emitCompute(alloc, g.rng.Range(p.BlockMin, p.BlockMax))
	if g.rng.Bool(0.35) && loopDepth < p.MaxLoopDepth {
		g.emitSegment(alloc, loopDepth)
	}
	b.EmitBranch(isa.Inst{Op: isa.OpJump}, joinL)
	b.Label(elseL)
	g.emitCompute(alloc, g.rng.Range(p.BlockMin, p.BlockMax))
	b.Label(joinL)
}

// emitCall emits a call to a strictly higher-indexed function (the static
// call graph is a DAG, so recursion and unbounded stacks are impossible).
func (g *generator) emitCall(alloc *regAlloc) {
	g.callsEmitted++
	callee := g.funcIdx + 1 + g.rng.Intn(g.prof.Funcs-g.funcIdx-1)
	g.b.EmitBranch(isa.Inst{Op: isa.OpCall, Dest: isa.RA}, funcLabel(callee))
	// Values planned before the call may be clobbered by the callee; that
	// models caller-saved registers whose saves the generator elides and is
	// another natural source of degree-of-use variation.
	g.emitCompute(alloc, g.rng.Range(1, 4))
}

// emitSwitch emits an indirect jump through a freshly allocated jump table
// (perlbmk-style dispatch), exercising the cascading indirect predictor.
func (g *generator) emitSwitch(alloc *regAlloc, loopDepth int) {
	b, p := g.b, g.prof
	ways := p.SwitchWays
	// idx = (load & (ways-1)) << 3; target = load(TB + tableOff + idx)
	v := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpLoad, Dest: v, Src1: regPtr, Imm: int64(g.rng.Intn(8)) * 8})
	i1 := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAnd, Dest: i1, Src1: v, Imm: int64(ways - 1)})
	i2 := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnShl, Dest: i2, Src1: i1, Imm: 3})
	a := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpIAlu, Fn: isa.FnAdd, Dest: a, Src1: i2, Src2: regTB, Imm: 0})
	t := alloc.dest()
	b.Emit(isa.Inst{Op: isa.OpLoad, Dest: t, Src1: a, Imm: int64(g.tableOff)})
	b.Emit(isa.Inst{Op: isa.OpIndirect, Src1: t})
	joinL := g.label("swjoin")
	caseLabels := make([]string, ways)
	for w := 0; w < ways; w++ {
		caseLabels[w] = g.label("case")
	}
	for w := 0; w < ways; w++ {
		b.Label(caseLabels[w])
		g.emitCompute(alloc, g.rng.Range(2, p.BlockMax/2+2))
		if w != ways-1 {
			b.EmitBranch(isa.Inst{Op: isa.OpJump}, joinL)
		}
	}
	b.Label(joinL)
	for w := 0; w < ways; w++ {
		b.DataLabel(TableBase+g.tableOff+uint64(w)*8, caseLabels[w])
	}
	g.tableOff += uint64(ways) * 8
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
