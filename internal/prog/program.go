// Package prog provides static program representation, a label-resolving
// program builder, a functional executor with speculative-rollback support,
// and a deterministic synthetic benchmark generator that stands in for the
// SPECint 2000 workloads of the paper (see DESIGN.md for the substitution
// argument).
package prog

import (
	"fmt"

	"regcache/internal/isa"
)

// CodeBase is the address of the first instruction of every program.
const CodeBase uint64 = 0x1000

// Memory layout constants shared by the generator and the executor.
const (
	GlobalBase uint64 = 0x1000_0000 // global data region
	TableBase  uint64 = 0x2000_0000 // jump tables (live in the static image)
	StackBase  uint64 = 0x7fff_0000 // initial stack pointer, grows down
)

// Program is an immutable static program: a dense instruction array indexed
// by PC, plus the static memory image (jump tables) and the seed for the
// procedural initial-memory function.
type Program struct {
	Name    string
	insts   []isa.Inst
	Image   map[uint64]uint64 // static data (word-aligned addresses)
	MemSeed uint64            // seed for HashMem procedural memory
}

// NumInsts returns the static instruction count.
func (p *Program) NumInsts() int { return len(p.insts) }

// Entry returns the PC of the first instruction.
func (p *Program) Entry() uint64 { return CodeBase }

// InstAt returns the instruction at pc, or nil if pc is outside the code
// region or misaligned. Fetch down a bogus speculative path sees nil and
// stalls until redirect, modeling a fetch into unmapped memory.
func (p *Program) InstAt(pc uint64) *isa.Inst {
	if pc < CodeBase || pc%isa.InstBytes != 0 {
		return nil
	}
	idx := (pc - CodeBase) / isa.InstBytes
	if idx >= uint64(len(p.insts)) {
		return nil
	}
	return &p.insts[idx]
}

// Validate checks structural invariants: every direct branch target lands on
// a real instruction, operand registers are valid, and jump-table entries
// point into the code region. Generator bugs surface here rather than as
// mysterious simulation stalls.
func (p *Program) Validate() error {
	for i := range p.insts {
		in := &p.insts[i]
		if in.Op.IsBranch() && !in.Op.IsIndirect() {
			if p.InstAt(in.Target) == nil {
				return fmt.Errorf("inst %s: branch target %#x outside code", in, in.Target)
			}
		}
		for _, r := range [...]isa.Reg{in.Src1, in.Src2} {
			if r != isa.RegNone && !r.Valid() {
				return fmt.Errorf("inst %s: invalid source register", in)
			}
		}
		if in.Dest != isa.RegNone && !in.Dest.Valid() {
			return fmt.Errorf("inst %s: invalid dest register", in)
		}
	}
	for addr, v := range p.Image {
		if addr >= TableBase && addr < StackBase {
			if p.InstAt(v) == nil {
				return fmt.Errorf("jump table entry at %#x: target %#x outside code", addr, v)
			}
		}
	}
	return nil
}

// Builder assembles a Program instruction by instruction with symbolic
// labels. Branch targets may reference labels defined later; Finish patches
// them all and validates the result.
type Builder struct {
	name    string
	insts   []isa.Inst
	image   map[uint64]uint64
	memSeed uint64
	labels      map[string]uint64
	patches     []patch
	dataPatches []dataPatch
}

type patch struct {
	instIdx int
	label   string
}

// NewBuilder creates an empty program builder.
func NewBuilder(name string, memSeed uint64) *Builder {
	return &Builder{
		name:    name,
		image:   make(map[uint64]uint64),
		memSeed: memSeed,
		labels:  make(map[string]uint64),
	}
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 {
	return CodeBase + uint64(len(b.insts))*isa.InstBytes
}

// Label binds name to the current PC. Binding the same name twice panics —
// that is always a generator bug.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("prog: duplicate label " + name)
	}
	b.labels[name] = b.PC()
}

// Emit appends an instruction, assigning its PC.
func (b *Builder) Emit(in isa.Inst) {
	in.PC = b.PC()
	b.insts = append(b.insts, in)
}

// EmitBranch appends a control-flow instruction whose target is the given
// label, which may be defined later.
func (b *Builder) EmitBranch(in isa.Inst, label string) {
	in.PC = b.PC()
	b.insts = append(b.insts, in)
	b.patches = append(b.patches, patch{instIdx: len(b.insts) - 1, label: label})
}

// Data places one 64-bit word into the static memory image.
func (b *Builder) Data(addr, value uint64) {
	b.image[addr&^7] = value
}

// LabelAddr returns the address bound to label, or panics if undefined.
// Valid only after the label has been bound.
func (b *Builder) LabelAddr(label string) uint64 {
	a, ok := b.labels[label]
	if !ok {
		panic("prog: undefined label " + label)
	}
	return a
}

// DataLabel places the (eventually resolved) address of a label into the
// static image — used for jump tables. The label must be bound by Finish.
func (b *Builder) DataLabel(addr uint64, label string) {
	b.dataPatches = append(b.dataPatches, dataPatch{addr: addr &^ 7, label: label})
}

type dataPatch struct {
	addr  uint64
	label string
}

// Finish resolves all label references and returns the validated program.
func (b *Builder) Finish() (*Program, error) {
	for _, pt := range b.patches {
		addr, ok := b.labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("prog: unresolved label %q", pt.label)
		}
		b.insts[pt.instIdx].Target = addr
	}
	for _, dp := range b.dataPatches {
		addr, ok := b.labels[dp.label]
		if !ok {
			return nil, fmt.Errorf("prog: unresolved data label %q", dp.label)
		}
		b.image[dp.addr] = addr
	}
	p := &Program{
		Name:    b.name,
		insts:   b.insts,
		Image:   b.image,
		MemSeed: b.memSeed,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
