package prog

import (
	"reflect"
	"testing"

	"regcache/internal/isa"
)

// fuzzProfile maps raw fuzz bytes onto a structurally valid Profile. The
// point of the sanitization is to explore the *interesting* space — any
// seed, any weight mix, footprints from 1KiB to 16MiB, degenerate
// single-function programs — while keeping fields inside their documented
// domains (the generator's contract starts at a well-formed profile, not
// arbitrary garbage).
func fuzzProfile(seed uint64, funcs, foot, trip, depth, ways, wsel, randCond, chase byte) Profile {
	w := func(bit uint) float64 {
		if wsel&(1<<bit) != 0 {
			return 1 + float64(bit)
		}
		return 0.1 // keep every segment kind reachable
	}
	return Profile{
		Name: "fuzz", Seed: seed,
		Funcs:         1 + int(funcs%32),
		MeanTrip:      1 + int(trip%48),
		MaxTrip:       4 + 4*int(trip%48),
		MaxLoopDepth:  1 + int(depth%3),
		VarTripFrac:   float64(depth%8) / 8,
		WStraight:     w(0),
		WLoop:         w(1),
		WDiamond:      w(2),
		WCall:         w(3),
		WSwitch:       w(4) / 4,
		RandomCond:    float64(randCond) / 255,
		PointerChase:  float64(chase) / 255,
		FootprintLog2: 10 + int(foot%15),
		SwitchWays:    2 + int(ways%14),
	}
}

// FuzzProgramGenerate drives the program generator with arbitrary profiles
// and asserts the contract every downstream consumer depends on: the
// program validates, the entry instruction exists, functional execution
// stays on the code image for a nontrivial budget, and regeneration from
// the same profile is bit-identical (workload determinism is what makes
// the service plane's request coalescing sound).
func FuzzProgramGenerate(f *testing.F) {
	// Seeds spanning the corners: tiny, default-ish, call-heavy, loop-heavy,
	// maximal footprint, switch-heavy.
	f.Add(uint64(1), byte(0), byte(0), byte(0), byte(0), byte(0), byte(0), byte(0), byte(0))
	f.Add(uint64(0x67a1), byte(7), byte(6), byte(23), byte(1), byte(2), byte(0x0f), byte(30), byte(5))
	f.Add(uint64(0x9cc3), byte(27), byte(9), byte(4), byte(1), byte(6), byte(0x08), byte(64), byte(25))
	f.Add(uint64(0x3cf4), byte(6), byte(12), byte(15), byte(2), byte(0), byte(0x02), byte(76), byte(115))
	f.Add(uint64(0xbe58), byte(19), byte(14), byte(5), byte(0), byte(13), byte(0x10), byte(71), byte(30))
	f.Add(uint64(0xffffffffffffffff), byte(255), byte(255), byte(255), byte(255), byte(255), byte(255), byte(255), byte(255))
	f.Fuzz(func(t *testing.T, seed uint64, funcs, foot, trip, depth, ways, wsel, randCond, chase byte) {
		p := fuzzProfile(seed, funcs, foot, trip, depth, ways, wsel, randCond, chase)
		prog, err := Generate(p)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", p, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("generated program fails validation: %v", err)
		}
		if prog.NumInsts() == 0 {
			t.Fatalf("generated program is empty")
		}
		if prog.InstAt(prog.Entry()) == nil {
			t.Fatalf("no instruction at entry %#x", prog.Entry())
		}

		// Functional execution must stay on the code image: every PC the
		// executor lands on resolves to a real instruction, and every branch
		// lands where the instruction said it would.
		e := NewExec(prog)
		const budget = 4096
		for i := 0; i < budget; i++ {
			in := prog.InstAt(e.PC())
			if in == nil {
				t.Fatalf("step %d: execution fell off code at %#x", i, e.PC())
			}
			s := e.StepInst(in)
			if s.NextPC != e.PC() {
				t.Fatalf("step %d: Step.NextPC %#x disagrees with executor PC %#x", i, s.NextPC, e.PC())
			}
			if in.Op == isa.OpStore && s.MemAddr%8 != 0 {
				t.Fatalf("step %d: unaligned store address %#x", i, s.MemAddr)
			}
		}

		// Regeneration is bit-identical, instruction by instruction.
		again, err := Generate(p)
		if err != nil {
			t.Fatalf("second Generate(%+v): %v", p, err)
		}
		if again.NumInsts() != prog.NumInsts() {
			t.Fatalf("regeneration changed size: %d vs %d insts", prog.NumInsts(), again.NumInsts())
		}
		for pc := prog.Entry(); ; pc += isa.InstBytes {
			a, b := prog.InstAt(pc), again.InstAt(pc)
			if a == nil && b == nil {
				break
			}
			if a == nil || b == nil || *a != *b {
				t.Fatalf("regeneration differs at %#x: %v vs %v", pc, a, b)
			}
		}

		// And so is re-execution: the first steps of a fresh executor replay
		// the same architectural trace.
		e1, e2 := NewExec(prog), NewExec(again)
		for i := 0; i < 256; i++ {
			s1, s2 := e1.Step(), e2.Step()
			s1.Inst, s2.Inst = nil, nil // compare values, not pointers
			if s1 != s2 {
				t.Fatalf("step %d: execution diverged: %+v vs %+v", i, s1, s2)
			}
		}

		// Multithreaded workload derivation: context 0 is the identity, and
		// any other context yields a distinct but equally well-formed and
		// deterministic program (the contract the sweep plane's per-thread
		// stream generation relies on).
		if tp := ThreadProfile(p, 0); !reflect.DeepEqual(tp, p) {
			t.Fatalf("ThreadProfile(p, 0) is not the identity: %+v", tp)
		}
		tid := 1 + int(funcs%3)
		tp := ThreadProfile(p, tid)
		if tp.Seed == p.Seed {
			t.Fatalf("ThreadProfile(p, %d) did not salt the seed", tid)
		}
		tprog, err := Generate(tp)
		if err != nil {
			t.Fatalf("Generate(ThreadProfile(p, %d)): %v", tid, err)
		}
		if err := tprog.Validate(); err != nil {
			t.Fatalf("thread-%d program fails validation: %v", tid, err)
		}
		tagain, err := Generate(ThreadProfile(p, tid))
		if err != nil {
			t.Fatalf("second Generate(ThreadProfile(p, %d)): %v", tid, err)
		}
		if tprog.NumInsts() != tagain.NumInsts() {
			t.Fatalf("thread-%d regeneration changed size: %d vs %d insts",
				tid, tprog.NumInsts(), tagain.NumInsts())
		}
	})
}
