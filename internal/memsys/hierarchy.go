package memsys

// Config describes the full hierarchy. Zero values select Table 1.
type Config struct {
	L1I, L1D CacheConfig
	L2       CacheConfig
	L2Latency     int // cycles for an L1-miss/L2-hit fill
	MemLatency    int // cycles for an L2-miss fill
	StoreBufEntries int
	PrefetchDegree  int // lines fetched ahead by the unit-stride prefetcher
}

// DefaultConfig returns the Table 1 memory system.
func DefaultConfig() Config {
	return Config{
		L1I: CacheConfig{SizeBytes: 32 << 10, Ways: 2, LineBytes: 64, VictimEntries: 64},
		L1D: CacheConfig{SizeBytes: 32 << 10, Ways: 2, LineBytes: 64, VictimEntries: 64},
		L2:  CacheConfig{SizeBytes: 1 << 20, Ways: 4, LineBytes: 128, VictimEntries: 64},
		L2Latency:       12,
		MemLatency:      180,
		StoreBufEntries: 16,
		PrefetchDegree:  2,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.L1I.SizeBytes == 0 {
		c.L1I = d.L1I
	}
	if c.L1D.SizeBytes == 0 {
		c.L1D = d.L1D
	}
	if c.L2.SizeBytes == 0 {
		c.L2 = d.L2
	}
	if c.L2Latency == 0 {
		c.L2Latency = d.L2Latency
	}
	if c.MemLatency == 0 {
		c.MemLatency = d.MemLatency
	}
	if c.StoreBufEntries == 0 {
		c.StoreBufEntries = d.StoreBufEntries
	}
	if c.PrefetchDegree == 0 {
		c.PrefetchDegree = d.PrefetchDegree
	}
	return c
}

// Hierarchy is the full memory system. All methods take the current cycle;
// the model is a latency oracle with tag state (see the package comment).
type Hierarchy struct {
	cfg Config
	l1i *Cache
	l1d *Cache
	l2  *Cache

	sbuf      []sbufEntry
	lastMissLine uint64 // unit-stride detector state (D-side)
	lastFetchLine uint64
	warmClock uint64 // orders functional warm touches (see warm.go)

	// Statistics.
	Loads, Stores   uint64
	StoreBufStalls  uint64
	PrefetchIssued  uint64
}

type sbufEntry struct {
	line  uint64
	ready uint64 // cycle the entry finishes writing through to the L1D
}

// New builds a hierarchy.
func New(cfg Config) *Hierarchy {
	cfg = cfg.withDefaults()
	return &Hierarchy{
		cfg: cfg,
		l1i: NewCache(cfg.L1I),
		l1d: NewCache(cfg.L1D),
		l2:  NewCache(cfg.L2),
	}
}

// L1I, L1D, L2 expose the underlying levels for statistics reporting.
func (h *Hierarchy) L1I() *Cache { return h.l1i }
func (h *Hierarchy) L1D() *Cache { return h.l1d }
func (h *Hierarchy) L2() *Cache  { return h.l2 }

// access walks one L1 level plus the shared L2 and returns the extra
// latency beyond an L1 hit.
func (h *Hierarchy) access(l1 *Cache, addr, now uint64, lastLine *uint64) int {
	hit, ready := l1.Lookup(addr, now)
	if hit {
		return 0
	}
	if ready > now {
		// An earlier miss to this line is already being filled; merge.
		return int(ready - now)
	}
	la := l1.lineAddr(addr)
	// L2 probe.
	var extra int
	if hit, _ := h.l2.Lookup(addr, now); hit {
		extra = h.cfg.L2Latency
	} else if rdy, ok := h.l2.inflight[h.l2.lineAddr(addr)]; ok && rdy > now {
		extra = int(rdy-now) + h.cfg.L2Latency
		// L2 fill already on the way; L1 fill completes L2Latency later.
	} else {
		extra = h.cfg.MemLatency
		h.l2.StartFill(addr, now+uint64(h.cfg.MemLatency))
	}
	l1.StartFill(addr, now+uint64(extra))
	// Opportunistic unit-stride prefetch: on a miss that continues a
	// sequential stream, pull the following lines into the level.
	if la == *lastLine+1 {
		for i := 1; i <= h.cfg.PrefetchDegree; i++ {
			next := (la + uint64(i)) << l1.lineShift
			if !l1.Contains(next) {
				if _, ok := l1.inflight[l1.lineAddr(next)]; !ok {
					lat := h.cfg.L2Latency
					if hit, _ := h.l2.Lookup(next, now); !hit {
						lat = h.cfg.MemLatency
						h.l2.StartFill(next, now+uint64(lat))
					}
					l1.StartFill(next, now+uint64(lat))
					h.PrefetchIssued++
				}
			}
		}
	}
	*lastLine = la
	return extra
}

// LoadLatency returns the extra cycles (beyond the pipelined L1-hit
// load-to-use latency) for a load from addr issued at cycle now. A hit in
// the store buffer forwards at L1 speed.
func (h *Hierarchy) LoadLatency(addr, now uint64) int {
	h.Loads++
	la := h.l1d.lineAddr(addr)
	for i := range h.sbuf {
		if h.sbuf[i].line == la {
			return 0
		}
	}
	return h.access(h.l1d, addr, now, &h.lastMissLine)
}

// FetchLatency returns the extra cycles for an instruction fetch at pc.
func (h *Hierarchy) FetchLatency(pc, now uint64) int {
	return h.access(h.l1i, pc, now, &h.lastFetchLine)
}

// StoreRetire presents a retiring store to the coalescing store buffer.
// It returns false when the buffer is full and cannot accept the store
// (the caller must stall retirement and retry).
func (h *Hierarchy) StoreRetire(addr, now uint64) bool {
	h.Stores++
	la := h.l1d.lineAddr(addr)
	for i := range h.sbuf {
		if h.sbuf[i].line == la {
			return true // coalesced into an existing entry
		}
	}
	h.drain(now)
	if len(h.sbuf) >= h.cfg.StoreBufEntries {
		h.StoreBufStalls++
		return false
	}
	// Write-allocate: the entry completes when the line is in the L1D.
	lat := h.access(h.l1d, addr, now, &h.lastMissLine)
	h.sbuf = append(h.sbuf, sbufEntry{line: la, ready: now + uint64(lat) + 1})
	return true
}

// drain releases store-buffer entries whose writes have completed.
func (h *Hierarchy) drain(now uint64) {
	live := h.sbuf[:0]
	for _, e := range h.sbuf {
		if e.ready > now {
			live = append(live, e)
		}
	}
	h.sbuf = live
}

// StoreBufOccupancy returns the number of in-flight store-buffer entries.
func (h *Hierarchy) StoreBufOccupancy() int { return len(h.sbuf) }
