package memsys

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{SizeBytes: 512, Ways: 2, LineBytes: 64, VictimEntries: 4})
}

func TestCacheHitAfterFill(t *testing.T) {
	c := smallCache()
	if hit, _ := c.Lookup(0x1000, 1); hit {
		t.Fatal("cold cache should miss")
	}
	c.FillNow(0x1000, 1)
	if hit, _ := c.Lookup(0x1000, 2); !hit {
		t.Fatal("filled line should hit")
	}
	// Same line, different word.
	if hit, _ := c.Lookup(0x1038, 3); !hit {
		t.Fatal("same-line access should hit")
	}
	// Next line misses.
	if hit, _ := c.Lookup(0x1040, 4); hit {
		t.Fatal("adjacent line should miss")
	}
}

func TestCacheInflightMerge(t *testing.T) {
	c := smallCache()
	c.Lookup(0x2000, 10)
	c.StartFill(0x2000, 30)
	hit, ready := c.Lookup(0x2000, 15)
	if hit || ready != 30 {
		t.Fatalf("in-flight lookup = %v,%d, want false,30", hit, ready)
	}
	// After the fill completes, the line hits (lazy promotion).
	if hit, _ := c.Lookup(0x2000, 31); !hit {
		t.Fatal("completed fill should hit")
	}
	missesBefore := c.Misses
	c.Lookup(0x2000, 32)
	if c.Misses != missesBefore {
		t.Fatal("post-fill access should not count as miss")
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 512 B / 64 B = 8 lines, 2 ways -> 4 sets. Lines mapping to set 0:
	// line addresses 0, 4, 8 (addr 0x000, 0x100, 0x200).
	c := NewCache(CacheConfig{SizeBytes: 512, Ways: 2, LineBytes: 64})
	c.FillNow(0x000, 1)
	c.FillNow(0x100, 2)
	c.Lookup(0x000, 3) // touch first: 0x100 becomes LRU
	c.FillNow(0x200, 4)
	if hit, _ := c.Lookup(0x000, 5); !hit {
		t.Error("recently used line evicted")
	}
	if hit, _ := c.Lookup(0x100, 6); hit {
		t.Error("LRU line should have been evicted")
	}
}

func TestVictimBufferCatchesEviction(t *testing.T) {
	c := smallCache()
	c.FillNow(0x000, 1)
	c.FillNow(0x100, 2)
	c.FillNow(0x200, 3) // evicts 0x000 into the victim buffer
	hit, _ := c.Lookup(0x000, 4)
	if !hit {
		t.Fatal("victim buffer should supply the evicted line")
	}
	if c.VictimHits != 1 {
		t.Fatalf("VictimHits = %d, want 1", c.VictimHits)
	}
}

func TestFIFOBufferCapacity(t *testing.T) {
	f := newFIFOBuffer(2)
	f.add(1)
	f.add(2)
	f.add(3) // evicts 1
	if f.contains(1) {
		t.Error("oldest entry should have been displaced")
	}
	if !f.contains(2) || !f.contains(3) {
		t.Error("recent entries missing")
	}
	if f.remove(99) {
		t.Error("removing absent entry should return false")
	}
	if !f.remove(2) || f.contains(2) {
		t.Error("remove failed")
	}
}

// Property: a line just filled always hits, regardless of address.
func TestCacheFillThenHitProperty(t *testing.T) {
	f := func(addr uint64) bool {
		c := smallCache()
		c.FillNow(addr, 1)
		hit, _ := c.Lookup(addr, 2)
		return hit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := New(Config{})
	// Cold load: memory latency.
	if lat := h.LoadLatency(0x1000_0000, 100); lat != 180 {
		t.Fatalf("cold load latency = %d, want 180", lat)
	}
	// Second access before the fill completes merges with it.
	if lat := h.LoadLatency(0x1000_0008, 150); lat != 130 {
		t.Fatalf("merged load latency = %d, want 130", lat)
	}
	// After the fill: hit.
	if lat := h.LoadLatency(0x1000_0000, 300); lat != 0 {
		t.Fatalf("post-fill load latency = %d, want 0", lat)
	}
	// Different L1 line, same L2 line (128B L2 lines): L2 hit.
	if lat := h.LoadLatency(0x1000_0040, 301); lat != 12 {
		t.Fatalf("L2-hit load latency = %d, want 12", lat)
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h := New(Config{})
	if lat := h.FetchLatency(0x1000, 1); lat != 180 {
		t.Fatalf("cold fetch latency = %d, want 180", lat)
	}
	if lat := h.FetchLatency(0x1004, 200); lat != 0 {
		t.Fatalf("warm fetch latency = %d, want 0", lat)
	}
}

func TestUnitStridePrefetcher(t *testing.T) {
	h := New(Config{})
	now := uint64(0)
	// Two sequential misses establish a stream; the prefetcher should pull
	// the following lines so later sequential accesses hit or merge early.
	h.LoadLatency(0x2000_0000, now)
	h.LoadLatency(0x2000_0040, now+200) // miss, stride detected, prefetch
	if h.PrefetchIssued == 0 {
		t.Fatal("expected prefetches on a sequential stream")
	}
	// Once the prefetch has had time to complete, the next sequential line
	// hits without a demand miss.
	lat := h.LoadLatency(0x2000_0080, now+600)
	if lat != 0 {
		t.Fatalf("prefetched line latency = %d, want 0", lat)
	}
}

func TestStoreBufferCoalescingAndStalls(t *testing.T) {
	h := New(Config{StoreBufEntries: 2})
	if !h.StoreRetire(0x3000_0000, 1) {
		t.Fatal("first store rejected")
	}
	// Same line coalesces without a new entry.
	if !h.StoreRetire(0x3000_0008, 1) {
		t.Fatal("coalescing store rejected")
	}
	if h.StoreBufOccupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", h.StoreBufOccupancy())
	}
	if !h.StoreRetire(0x3000_1000, 1) {
		t.Fatal("second line rejected")
	}
	// Buffer full with slow (miss) writes: third line must stall.
	if h.StoreRetire(0x3000_2000, 2) {
		t.Fatal("expected store-buffer stall")
	}
	if h.StoreBufStalls != 1 {
		t.Fatalf("StoreBufStalls = %d, want 1", h.StoreBufStalls)
	}
	// Long after the writes complete, the buffer drains and accepts again.
	if !h.StoreRetire(0x3000_2000, 1000) {
		t.Fatal("store rejected after drain")
	}
}

func TestStoreForwardingToLoads(t *testing.T) {
	h := New(Config{})
	h.StoreRetire(0x4000_0000, 1)
	// A load from the buffered line forwards without memory latency even
	// though the line is still being written.
	if lat := h.LoadLatency(0x4000_0010, 2); lat != 0 {
		t.Fatalf("store-buffer forward latency = %d, want 0", lat)
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache()
	c.Lookup(0x0, 1) // miss
	c.FillNow(0x0, 1)
	c.Lookup(0x0, 2) // hit
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}
