// Package memsys models the memory hierarchy of Table 1: split 32 KB
// two-way L1 instruction and data caches with 64-byte lines, a unified
// 1 MB four-way L2 with 128-byte lines and 12-cycle latency, 64-entry
// prefetch/victim buffers on each level, a 16-entry coalescing store
// buffer, an opportunistic unit-stride prefetcher, and a 180-cycle memory.
// TLBs are perfect (not modeled), as in the paper.
//
// The model is a latency oracle: accesses return the number of cycles
// until data is available, tracking tag state, in-flight fills, and
// buffers, without modeling bank conflicts (the paper's evaluation is
// insensitive to them — the register cache is the structure under study).
package memsys

// Cache is one level of set-associative cache with LRU replacement, a
// FIFO victim/prefetch buffer, and in-flight miss tracking (an MSHR-like
// merge of concurrent misses to the same line).
type Cache struct {
	lineShift uint
	sets      [][]line
	victim    *fifoBuffer
	inflight  map[uint64]uint64 // line address -> cycle the fill completes

	// Statistics.
	Accesses uint64
	Misses   uint64
	VictimHits uint64
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
	VictimEntries int // 0 disables the victim/prefetch buffer
}

// NewCache builds a cache level.
func NewCache(cfg CacheConfig) *Cache {
	nlines := cfg.SizeBytes / cfg.LineBytes
	nsets := nlines / cfg.Ways
	sets := make([][]line, nsets)
	backing := make([]line, nlines)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		lineShift: shift,
		sets:      sets,
		// Completed fills are promoted (and deleted) lazily at the line's
		// next access, so entries for never-revisited lines persist; a
		// generous size hint keeps steady-state rehashing negligible.
		inflight: make(map[uint64]uint64, 4096),
	}
	if cfg.VictimEntries > 0 {
		c.victim = newFIFOBuffer(cfg.VictimEntries)
	}
	return c
}

// lineAddr returns the line-granular address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// Lookup probes the cache (and victim buffer) for addr at the given cycle.
// It returns hit=true when data is present; when the line has an in-flight
// fill it returns hit=false with ready set to the fill-completion cycle
// (callers treat max(0, ready-now) as the residual latency and do not
// start a second fill).
func (c *Cache) Lookup(addr, now uint64) (hit bool, ready uint64) {
	c.Accesses++
	la := c.lineAddr(addr)
	set := c.sets[la&uint64(len(c.sets)-1)]
	tag := la / uint64(len(c.sets))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = now
			return true, now
		}
	}
	if c.victim != nil && c.victim.remove(la) {
		c.VictimHits++
		c.install(la, now)
		return true, now
	}
	if rdy, ok := c.inflight[la]; ok {
		if rdy <= now {
			// Fill completed; promote to the array lazily.
			delete(c.inflight, la)
			c.install(la, now)
			return true, now
		}
		return false, rdy
	}
	c.Misses++
	return false, 0
}

// Contains probes without updating LRU or statistics (used by shadow
// structures and tests).
func (c *Cache) Contains(addr uint64) bool {
	la := c.lineAddr(addr)
	set := c.sets[la&uint64(len(c.sets)-1)]
	tag := la / uint64(len(c.sets))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// StartFill records that a fill for addr's line completes at ready. The
// line becomes visible to Lookup at that cycle.
func (c *Cache) StartFill(addr, ready uint64) {
	c.inflight[c.lineAddr(addr)] = ready
}

// FillNow immediately installs addr's line (prefetch-buffer promotion or
// test setup), evicting the set's LRU line into the victim buffer.
func (c *Cache) FillNow(addr, now uint64) { c.install(c.lineAddr(addr), now) }

func (c *Cache) install(la, now uint64) {
	set := c.sets[la&uint64(len(c.sets)-1)]
	tag := la / uint64(len(c.sets))
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if c.victim != nil && set[victim].valid {
		evicted := set[victim].tag*uint64(len(c.sets)) + la&uint64(len(c.sets)-1)
		c.victim.add(evicted)
	}
place:
	set[victim] = line{tag: tag, valid: true, lru: now}
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// fifoBuffer is a fixed-capacity FIFO set of line addresses (the combined
// prefetch/victim buffer of Table 1). At the modeled capacity (64) a
// linear scan over a flat slice beats the map+slice pair it replaces and
// allocates nothing after construction.
type fifoBuffer struct {
	order []uint64
	cap   int
}

func newFIFOBuffer(capacity int) *fifoBuffer {
	return &fifoBuffer{order: make([]uint64, 0, capacity), cap: capacity}
}

func (f *fifoBuffer) add(la uint64) {
	if f.contains(la) {
		return
	}
	if len(f.order) == f.cap {
		copy(f.order, f.order[1:])
		f.order = f.order[:f.cap-1]
	}
	f.order = append(f.order, la)
}

// remove returns true and deletes la if present (preserving FIFO order).
func (f *fifoBuffer) remove(la uint64) bool {
	for i, v := range f.order {
		if v == la {
			copy(f.order[i:], f.order[i+1:])
			f.order = f.order[:len(f.order)-1]
			return true
		}
	}
	return false
}

func (f *fifoBuffer) contains(la uint64) bool {
	for _, v := range f.order {
		if v == la {
			return true
		}
	}
	return false
}
