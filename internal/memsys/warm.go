package memsys

// Functional warming for interval-parallel simulation. The hierarchy's
// dominant history-dependent state is its tag arrays: a 1 MB L2 takes on
// the order of 100k instructions of detailed simulation to stream a
// working set in, far longer than the predictors a short warm-up window
// re-converges. The capture pre-pass therefore replays the correct-path
// access stream (fetch PCs, load/store addresses) through a timing-free
// warmer and snapshots the resulting tag state at each checkpoint; an
// interval pipeline restores the snapshot and starts with the caches
// holding what the serial machine would hold, modulo wrong-path pollution
// and fill-timing effects, which the normal warm-up window covers.
//
// Warm touches advance tag, LRU, victim-buffer, and prefetch-stream state
// exactly as an immediately-completing access would; they do not touch
// statistics or the in-flight fill maps, which belong to the measured
// machine. Snapshots normalize LRU timestamps to per-set ranks so that
// restored recency ordering is preserved while every access the measured
// run makes outranks the warmed history almost immediately.

import (
	"fmt"
	"sort"
)

// WarmFetch functionally warms the instruction side with a fetch at pc.
func (h *Hierarchy) WarmFetch(pc uint64) {
	h.warmClock++
	h.warm(h.l1i, pc, &h.lastFetchLine)
}

// WarmLoad functionally warms the data side with a load from addr.
func (h *Hierarchy) WarmLoad(addr uint64) {
	h.warmClock++
	h.warm(h.l1d, addr, &h.lastMissLine)
}

// WarmStore functionally warms the data side with a store to addr (the
// store buffer write-allocates, so the tag-state effect equals a load's).
func (h *Hierarchy) WarmStore(addr uint64) {
	h.warmClock++
	h.warm(h.l1d, addr, &h.lastMissLine)
}

// warm mirrors Hierarchy.access without timing or statistics: L1 probe,
// L2 probe on miss, immediate fills, and the unit-stride prefetcher.
func (h *Hierarchy) warm(l1 *Cache, addr uint64, lastLine *uint64) {
	now := h.warmClock
	if l1.touch(addr, now) {
		return
	}
	la := l1.lineAddr(addr)
	h.l2.touch(addr, now)
	if la == *lastLine+1 {
		for i := 1; i <= h.cfg.PrefetchDegree; i++ {
			next := (la + uint64(i)) << l1.lineShift
			if !l1.Contains(next) {
				l1.install(l1.lineAddr(next), now)
				if !h.l2.Contains(next) {
					h.l2.install(h.l2.lineAddr(next), now)
				}
			}
		}
	}
	*lastLine = la
}

// touch is a timing-free functional access: a tag hit refreshes LRU, a
// victim-buffer hit promotes, and a miss installs the line immediately.
// It reports whether the line was already present (array or victim) and
// leaves statistics and in-flight tracking untouched.
func (c *Cache) touch(addr, now uint64) bool {
	la := c.lineAddr(addr)
	set := c.sets[la&uint64(len(c.sets)-1)]
	tag := la / uint64(len(c.sets))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = now
			return true
		}
	}
	if c.victim != nil && c.victim.remove(la) {
		c.install(la, now)
		return true
	}
	c.install(la, now)
	return false
}

// WarmState is a functional snapshot of the hierarchy's tag state: the
// three cache levels (lines with per-set LRU ranks), their victim
// buffers, and the prefetch stream detectors. It is immutable once taken
// and safe to restore into any number of hierarchies with the same
// geometry.
type WarmState struct {
	l1i, l1d, l2 cacheState
	lastMiss     uint64
	lastFetch    uint64
}

type cacheState struct {
	nsets, ways int
	lines       []line   // nsets*ways, lru = rank within its set
	victim      []uint64 // FIFO order, oldest first; nil when disabled
}

// Snapshot captures the hierarchy's functional tag state.
func (h *Hierarchy) Snapshot() *WarmState {
	return &WarmState{
		l1i:       snapshotCache(h.l1i),
		l1d:       snapshotCache(h.l1d),
		l2:        snapshotCache(h.l2),
		lastMiss:  h.lastMissLine,
		lastFetch: h.lastFetchLine,
	}
}

func snapshotCache(c *Cache) cacheState {
	ways := len(c.sets[0])
	st := cacheState{nsets: len(c.sets), ways: ways, lines: make([]line, len(c.sets)*ways)}
	idx := make([]int, 0, ways)
	for si, set := range c.sets {
		out := st.lines[si*ways : (si+1)*ways]
		copy(out, set)
		// Normalize LRU to the line's recency rank within its set so the
		// restored ordering survives the jump from the warm clock to the
		// measured machine's cycle clock.
		idx = idx[:0]
		for i := range out {
			if out[i].valid {
				idx = append(idx, i)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return out[idx[a]].lru < out[idx[b]].lru })
		for rank, i := range idx {
			out[i].lru = uint64(rank)
		}
	}
	if c.victim != nil {
		st.victim = append([]uint64(nil), c.victim.order...)
	}
	return st
}

// Restore overwrites the hierarchy's tag state with the snapshot. The
// geometries must match (same configuration); in-flight fills, the store
// buffer, and statistics are left untouched (fresh hierarchies have none).
func (h *Hierarchy) Restore(ws *WarmState) {
	restoreCache(h.l1i, ws.l1i)
	restoreCache(h.l1d, ws.l1d)
	restoreCache(h.l2, ws.l2)
	h.lastMissLine = ws.lastMiss
	h.lastFetchLine = ws.lastFetch
}

func restoreCache(c *Cache, st cacheState) {
	if len(c.sets) != st.nsets || len(c.sets[0]) != st.ways {
		panic(fmt.Sprintf("memsys: restore into %dx%d cache from %dx%d snapshot",
			len(c.sets), len(c.sets[0]), st.nsets, st.ways))
	}
	for si := range c.sets {
		copy(c.sets[si], st.lines[si*st.ways:(si+1)*st.ways])
	}
	if c.victim != nil && st.victim != nil {
		c.victim.order = append(c.victim.order[:0], st.victim...)
	}
}
