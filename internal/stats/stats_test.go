package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.N() != 0 || h.Mean() != 0 || h.Median() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int{5, 1, 3, 3, 8} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if h.Min() != 1 || h.Max() != 8 {
		t.Fatalf("min/max = %d/%d, want 1/8", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("mean = %v, want 4", got)
	}
	if h.Median() != 3 {
		t.Fatalf("median = %d, want 3", h.Median())
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		p    float64
		want int
	}{{0.01, 1}, {0.5, 50}, {0.9, 90}, {1.0, 100}}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %d, want %d", c.p*100, got, c.want)
		}
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	h.AddN(2, 2)
	h.AddN(5, 2)
	pts := h.CDF()
	if len(pts) != 2 {
		t.Fatalf("CDF has %d points, want 2", len(pts))
	}
	if pts[0].Value != 2 || math.Abs(pts[0].Fraction-0.5) > 1e-12 {
		t.Errorf("first point = %+v, want {2 0.5}", pts[0])
	}
	if pts[1].Value != 5 || math.Abs(pts[1].Fraction-1.0) > 1e-12 {
		t.Errorf("second point = %+v, want {5 1}", pts[1])
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(1)
	b.Add(3)
	b.Add(3)
	a.Merge(b)
	if a.N() != 3 || a.Count(3) != 2 {
		t.Fatalf("merge failed: n=%d count3=%d", a.N(), a.Count(3))
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative value")
		}
	}()
	NewHistogram().Add(-1)
}

// Property: percentile is monotone in p and bounded by min/max.
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int(v))
		}
		prev := h.Min()
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			q := h.Percentile(p)
			if q < prev || q < h.Min() || q > h.Max() {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram mean equals direct mean.
func TestHistogramMeanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		var sum float64
		for _, v := range vals {
			h.Add(int(v))
			sum += float64(v)
		}
		return math.Abs(h.Mean()-sum/float64(len(vals))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", r.Mean())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", r.StdDev())
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if got := Mean(xs); math.Abs(got-7.0/3) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := HarmonicMean(xs); math.Abs(got-12.0/7) > 1e-12 {
		t.Errorf("HarmonicMean = %v, want 12/7", got)
	}
	if GeoMean([]float64{1, 0}) != 0 || HarmonicMean([]float64{-1}) != 0 {
		t.Error("non-positive inputs should yield 0")
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 || HarmonicMean(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
}

// Property: harmonic mean <= geometric mean <= arithmetic mean for
// positive inputs.
func TestMeanInequalityProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, float64(v)+1)
		}
		if len(xs) == 0 {
			return true
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return h <= g+1e-9 && g <= a+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianSlice(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22", "dropped-extra")
	s := tb.String()
	if s == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"name", "longer-name", "22"} {
		if !contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	if contains(s, "dropped-extra") {
		t.Error("extra cell should have been dropped")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestHistogramCumulativeLE(t *testing.T) {
	h := NewHistogram()
	// Empty: every query is 0, including large v.
	if h.CumulativeLE(-1) != 0 || h.CumulativeLE(0) != 0 || h.CumulativeLE(1000) != 0 {
		t.Fatal("empty histogram should report 0 everywhere")
	}
	for _, v := range []int{0, 3, 3, 7, 100} {
		h.Add(v)
	}
	cases := []struct {
		v    int
		want uint64
	}{
		{-5, 0}, // below zero: nothing
		{0, 1},  // the zero observation
		{2, 1},  // between observations
		{3, 3},  // inclusive of both 3s
		{7, 4},
		{99, 4},      // below the max
		{100, 5},     // at the max: everything
		{1 << 30, 5}, // far beyond: still everything
	}
	for _, c := range cases {
		if got := h.CumulativeLE(c.v); got != c.want {
			t.Errorf("CumulativeLE(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Monotone non-decreasing over the whole range.
	prev := uint64(0)
	for v := -1; v <= 101; v++ {
		cur := h.CumulativeLE(v)
		if cur < prev {
			t.Fatalf("CumulativeLE not monotone at %d: %d < %d", v, cur, prev)
		}
		prev = cur
	}
}
