// Package stats provides the statistical primitives used throughout the
// simulator: integer histograms, cumulative distributions, percentiles,
// running moments, and the mean variants used to aggregate per-benchmark
// results (arithmetic, geometric, harmonic).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts integer-valued observations. It grows on demand and
// tracks totals so percentile queries are O(buckets).
type Histogram struct {
	counts []uint64
	n      uint64
	sum    float64
	min    int
	max    int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt, max: math.MinInt}
}

// Add records one observation of value v. Negative values are not
// supported (register counts, cycle counts, and use counts are all
// non-negative) and panic to surface modeling bugs early.
func (h *Histogram) Add(v int) { h.AddN(v, 1) }

// AddN records n observations of value v.
func (h *Histogram) AddN(v int, n uint64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	if n == 0 {
		return
	}
	if v >= len(h.counts) {
		grown := make([]uint64, v+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v] += n
	h.n += n
	h.sum += float64(v) * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observed value, or 0 if empty.
func (h *Histogram) Min() int {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed value, or 0 if empty.
func (h *Histogram) Max() int {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Count returns the number of observations with value v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Percentile returns the smallest value v such that at least p (0 < p <= 1)
// of the observations are <= v. An empty histogram yields 0.
func (h *Histogram) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p > 1 {
		p = 1
	}
	threshold := uint64(math.Ceil(p * float64(h.n)))
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= threshold {
			return v
		}
	}
	return h.max
}

// Median returns the 50th percentile.
func (h *Histogram) Median() int { return h.Percentile(0.5) }

// CumulativeLE returns the number of observations with value <= v (the
// cumulative-bucket form Prometheus histogram exposition needs). v < 0
// yields 0; v >= the largest observed value yields N.
func (h *Histogram) CumulativeLE(v int) uint64 {
	if v < 0 || h.n == 0 {
		return 0
	}
	if v >= h.max {
		return h.n
	}
	var cum uint64
	for x := 0; x <= v && x < len(h.counts); x++ {
		cum += h.counts[x]
	}
	return cum
}

// CDF returns (value, cumulative fraction) pairs for every value with a
// non-zero count, in increasing value order.
func (h *Histogram) CDF() []CDFPoint {
	pts := make([]CDFPoint, 0, 64)
	var cum uint64
	for v, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		pts = append(pts, CDFPoint{Value: v, Fraction: float64(cum) / float64(h.n)})
	}
	return pts
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    int
	Fraction float64
}

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, c := range other.counts {
		if c > 0 {
			h.AddN(v, c)
		}
	}
}

// String renders a compact summary for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%d p50=%d p90=%d max=%d",
		h.n, h.Mean(), h.Min(), h.Median(), h.Percentile(0.9), h.Max())
}

// Running accumulates a stream of float64 samples and reports mean and
// standard deviation without storing the samples (Welford's algorithm).
type Running struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean, or 0 if empty.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.mean
}

// Variance returns the population variance, or 0 for fewer than 2 samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Mean returns the arithmetic mean of xs, or 0 if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values make the result 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs. All values must be
// positive; non-positive values make the result 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// Median returns the median of xs (average of the two middle elements for
// even lengths). It does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// Ratio returns a/b, or 0 when b is 0, avoiding NaN in reports.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Table is a minimal fixed-width text table builder used by the experiment
// harness to print paper-shaped rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
