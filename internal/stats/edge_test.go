package stats

import (
	"math"
	"testing"
)

// TestEmptyHistogramEdges pins every accessor's behaviour on a histogram
// with no observations — results aggregation runs these on schemes that
// produce no cache traffic, so "empty" must mean zeros, not sentinels or
// NaNs leaking out of the MaxInt/MinInt initialisation.
func TestEmptyHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if h.N() != 0 || h.Sum() != 0 {
		t.Errorf("empty N/Sum = %d/%v", h.N(), h.Sum())
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", h.Mean())
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty Min/Max = %d/%d, want 0/0", h.Min(), h.Max())
	}
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %d, want 0", p, got)
		}
	}
	if got := h.Median(); got != 0 {
		t.Errorf("empty Median = %d, want 0", got)
	}
	if pts := h.CDF(); len(pts) != 0 {
		t.Errorf("empty CDF has %d points", len(pts))
	}
	if h.Count(0) != 0 || h.Count(-5) != 0 || h.Count(1000) != 0 {
		t.Errorf("empty Count nonzero")
	}
}

// TestSingleBucketCDF: one distinct value must produce exactly one CDF
// point at fraction 1.0, whatever its count.
func TestSingleBucketCDF(t *testing.T) {
	for _, n := range []uint64{1, 7, 1 << 40} {
		h := NewHistogram()
		h.AddN(13, n)
		pts := h.CDF()
		if len(pts) != 1 {
			t.Fatalf("n=%d: CDF has %d points, want 1", n, len(pts))
		}
		if pts[0].Value != 13 || pts[0].Fraction != 1.0 {
			t.Errorf("n=%d: CDF point = %+v, want {13 1}", n, pts[0])
		}
		if h.Percentile(0.0001) != 13 || h.Percentile(1) != 13 {
			t.Errorf("n=%d: single-bucket percentiles not 13", n)
		}
	}
}

// TestPercentileClamping: out-of-domain p values clamp to the extremes
// rather than indexing garbage.
func TestPercentileClamping(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(5)
	h.Add(9)
	cases := []struct {
		p    float64
		want int
	}{
		{-3, 1}, {0, 1}, // p <= 0 -> min
		{1, 9}, {2.5, 9}, {math.Inf(1), 9}, // p >= 1 -> max
		{0.34, 5}, {0.99, 9}, {1e-9, 1},
	}
	for _, tc := range cases {
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

// TestAddNLargeCounts exercises counts big enough that a float32 or an
// int32 intermediate would corrupt them: cycle-weighted occupancy
// histograms accumulate counts of this order on long runs.
func TestAddNLargeCounts(t *testing.T) {
	h := NewHistogram()
	const big = uint64(1) << 50
	h.AddN(2, big)
	h.AddN(4, big)
	if h.N() != 2*big {
		t.Fatalf("N = %d, want %d", h.N(), 2*big)
	}
	if got := h.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := h.Percentile(0.5); got != 2 {
		t.Errorf("p50 = %d, want 2", got)
	}
	if got := h.Percentile(0.51); got != 4 {
		t.Errorf("p51 = %d, want 4", got)
	}
	pts := h.CDF()
	if len(pts) != 2 || pts[0].Fraction != 0.5 || pts[1].Fraction != 1.0 {
		t.Errorf("CDF = %+v, want fractions 0.5 and 1.0", pts)
	}
}

// TestAddNZeroIsNoOp: a zero-count add must not grow buckets or disturb
// min/max.
func TestAddNZeroIsNoOp(t *testing.T) {
	h := NewHistogram()
	h.AddN(1000, 0)
	if h.N() != 0 || h.Max() != 0 || h.Count(1000) != 0 {
		t.Fatalf("AddN(v, 0) mutated the histogram: %v", h)
	}
	h.Add(3)
	h.AddN(7, 0)
	if h.Max() != 3 {
		t.Errorf("Max = %d after zero-count AddN(7), want 3", h.Max())
	}
}

// TestMergeEdges: merging an empty histogram is a no-op in both directions,
// and merge totals are exact.
func TestMergeEdges(t *testing.T) {
	a, b, empty := NewHistogram(), NewHistogram(), NewHistogram()
	a.AddN(1, 10)
	b.AddN(1, 5)
	b.AddN(8, 5)

	a.Merge(empty)
	if a.N() != 10 || a.Max() != 1 {
		t.Fatalf("merging empty changed a: %v", a)
	}
	empty2 := NewHistogram()
	empty2.Merge(a)
	if empty2.N() != 10 || empty2.Min() != 1 || empty2.Max() != 1 {
		t.Fatalf("merge into empty lost data: %v", empty2)
	}
	a.Merge(b)
	if a.N() != 20 || a.Max() != 8 || a.Count(1) != 15 {
		t.Errorf("merge totals wrong: n=%d max=%d count1=%d", a.N(), a.Max(), a.Count(1))
	}
}

// TestMeansEdges pins the aggregate-mean helpers on empty and singleton
// inputs, plus the geometric mean's zero handling.
func TestMeansEdges(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 || HarmonicMean(nil) != 0 {
		t.Errorf("empty-slice means nonzero: %v %v %v", Mean(nil), GeoMean(nil), HarmonicMean(nil))
	}
	one := []float64{4.2}
	if Mean(one) != 4.2 || HarmonicMean(one) != 4.2 {
		t.Errorf("singleton mean/harmean = %v/%v, want 4.2", Mean(one), HarmonicMean(one))
	}
	if g := GeoMean(one); math.Abs(g-4.2) > 1e-12 {
		t.Errorf("singleton geomean = %v, want 4.2", g)
	}
}
