package twolevel

import (
	"testing"

	"regcache/internal/core"
)

func small() *File {
	return New(Config{L1Entries: 4, L2Latency: 2, CopyBandwidth: 2, FreeThreshold: 2, RefillSlack: 1}, 16)
}

func TestProductionFillsL1(t *testing.T) {
	f := small()
	for p := core.PReg(0); p < 4; p++ {
		if !f.CanAllocate() {
			t.Fatalf("allocation %d refused", p)
		}
		f.Allocate(p)
	}
	// Slots are claimed at production, not rename.
	if f.Occupied() != 0 {
		t.Fatalf("occupied = %d before production, want 0", f.Occupied())
	}
	for p := core.PReg(0); p < 4; p++ {
		f.Produced(p)
	}
	if f.Occupied() != 4 || f.CanAllocate() {
		t.Fatal("full L1 should refuse allocation")
	}
	// Double production is idempotent.
	f.Produced(0)
	if f.Occupied() != 4 {
		t.Fatal("double production changed occupancy")
	}
	f.Free(0)
	if !f.CanAllocate() {
		t.Fatal("free should enable allocation")
	}
}

func TestMigrationRequiresDeadness(t *testing.T) {
	f := small()
	for p := core.PReg(0); p < 3; p++ { // free=1 < threshold=2: migration active
		f.Allocate(p)
		f.Produced(p)
	}
	// preg 0: produced but still has a pending consumer -> not migratable.
	f.Remapped(0)
	f.AddConsumer(0)
	f.Tick()
	if f.Migrations != 0 {
		t.Fatal("value with pending consumer migrated")
	}
	// Consumer executes: now migratable.
	f.ConsumerDone(0)
	f.Tick()
	if f.Migrations != 1 || f.Occupied() != 2 {
		t.Fatalf("migrations=%d occupied=%d, want 1/2", f.Migrations, f.Occupied())
	}
}

func TestMigrationRequiresRemap(t *testing.T) {
	f := small()
	for p := core.PReg(0); p < 3; p++ {
		f.Allocate(p)
		f.Produced(p)
	}
	f.Tick()
	if f.Migrations != 0 {
		t.Fatal("un-remapped value migrated")
	}
	f.Remapped(1)
	f.Unremapped(1) // squash of the redefining instruction
	f.Tick()
	if f.Migrations != 0 {
		t.Fatal("unremapped value migrated")
	}
}

func TestMigrationOnlyBelowThreshold(t *testing.T) {
	f := small()
	f.Allocate(0) // free = 3 >= threshold 2: no migration pressure
	f.Produced(0)
	f.Remapped(0)
	f.Tick()
	if f.Migrations != 0 {
		t.Fatal("migrated with ample free registers")
	}
}

func TestMigrationBandwidthCap(t *testing.T) {
	f := small()
	for p := core.PReg(0); p < 4; p++ {
		f.Allocate(p)
		f.Produced(p)
		f.Remapped(p)
	}
	f.Tick()
	if f.Migrations != 2 {
		t.Fatalf("migrations = %d, want bandwidth cap 2", f.Migrations)
	}
}

func TestRecoverCopiesAndStall(t *testing.T) {
	f := small()
	for p := core.PReg(0); p < 3; p++ {
		f.Allocate(p)
		f.Produced(p)
		f.Remapped(p)
	}
	f.Tick() // migrates 2 values to L2
	if f.Occupied() != 1 {
		t.Fatalf("occupied = %d, want 1", f.Occupied())
	}
	// Recovery makes pregs 0 and 1 visible again: 2 copies at bw 2 = 1
	// cycle + L2 latency 2 = 3 cycles, minus 1 slack = 2 stall cycles.
	stall := f.Recover([]core.PReg{0, 1, 2})
	if stall != 2 {
		t.Fatalf("recovery stall = %d, want 2", stall)
	}
	if f.Occupied() != 3 || f.RecoveredValues != 2 {
		t.Fatalf("occupied=%d recovered=%d, want 3/2", f.Occupied(), f.RecoveredValues)
	}
	// Idempotent: values now in L1, nothing to recover.
	if f.Recover([]core.PReg{0, 1}) != 0 {
		t.Fatal("second recovery should be free")
	}
}

func TestRecoverNothingInL2(t *testing.T) {
	f := small()
	f.Allocate(0)
	f.Produced(0)
	if f.Recover([]core.PReg{0}) != 0 {
		t.Fatal("recovery with no L2 values should not stall")
	}
	if f.RecoveryEvents != 0 {
		t.Fatal("empty recovery counted as event")
	}
}

func TestFreeFromL2(t *testing.T) {
	f := small()
	for p := core.PReg(0); p < 3; p++ {
		f.Allocate(p)
		f.Produced(p)
		f.Remapped(p)
	}
	f.Tick()
	// preg 0 migrated; freeing it must not touch L1 occupancy.
	occ := f.Occupied()
	f.Free(0)
	if f.Occupied() != occ {
		t.Fatal("freeing an L2-resident value changed L1 occupancy")
	}
	// Double free is a no-op.
	f.Free(0)
}

func TestDefaults(t *testing.T) {
	f := New(Config{}, 8)
	cfg := f.Config()
	if cfg.L1Entries != 96 || cfg.CopyBandwidth != 4 || cfg.RefillSlack != 6 {
		t.Errorf("defaults = %+v", cfg)
	}
}
