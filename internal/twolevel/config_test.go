package twolevel

import (
	"fmt"
	"testing"

	"regcache/internal/core"
)

// TestConfigDefaultsTable pins the zero-value defaulting rules the sweep
// configs and the service's scheme records depend on: any explicitly set
// field survives defaulting, any zero field takes the documented default.
func TestConfigDefaultsTable(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{"all-zero", Config{},
			Config{L1Entries: 96, L2Latency: 2, CopyBandwidth: 4, FreeThreshold: 12, RefillSlack: 6}},
		{"l1-only", Config{L1Entries: 48},
			Config{L1Entries: 48, L2Latency: 2, CopyBandwidth: 4, FreeThreshold: 12, RefillSlack: 6}},
		{"latency-only", Config{L2Latency: 5},
			Config{L1Entries: 96, L2Latency: 5, CopyBandwidth: 4, FreeThreshold: 12, RefillSlack: 6}},
		{"fully-specified", Config{L1Entries: 64, L2Latency: 3, CopyBandwidth: 2, FreeThreshold: 8, RefillSlack: 4},
			Config{L1Entries: 64, L2Latency: 3, CopyBandwidth: 2, FreeThreshold: 8, RefillSlack: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := New(tc.in, 512)
			if got := f.Config(); got != tc.want {
				t.Errorf("Config() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestOccupancyAccounting drives allocate/free cycles across a table of L1
// sizes and checks the occupancy counter and CanAllocate agree with the
// capacity at every step — the rename-stall decision reads exactly these.
func TestOccupancyAccounting(t *testing.T) {
	for _, entries := range []int{4, 16, 96} {
		entries := entries
		t.Run(fmt.Sprintf("l1-%d", entries), func(t *testing.T) {
			f := New(Config{L1Entries: entries, FreeThreshold: 1}, 512)
			for i := 0; i < entries; i++ {
				if !f.CanAllocate() {
					t.Fatalf("CanAllocate false at occupancy %d/%d", f.Occupied(), entries)
				}
				f.Allocate(core.PReg(i))
				f.Produced(core.PReg(i)) // the L1 slot is claimed at produce
			}
			if f.CanAllocate() {
				t.Fatalf("CanAllocate true at full occupancy %d", f.Occupied())
			}
			if f.Occupied() != entries {
				t.Fatalf("Occupied = %d, want %d", f.Occupied(), entries)
			}
			for i := 0; i < entries; i++ {
				f.Free(core.PReg(i))
			}
			if f.Occupied() != 0 {
				t.Fatalf("Occupied = %d after freeing all, want 0", f.Occupied())
			}
			if !f.CanAllocate() {
				t.Fatalf("CanAllocate false on empty file")
			}
		})
	}
}
