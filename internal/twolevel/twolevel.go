// Package twolevel models the two-level register file of Balasubramonian
// et al. (MICRO 2001) in the optimistic variant the paper compares against
// (Section 5.5): a direct-mapped, single-cycle L1 register file backed by
// an infinite L2, four-registers-per-cycle transfer bandwidth, explicit
// L2->L1 recovery copies on misspeculation overlapped with the pipeline
// refill, and a unified integer/floating-point file.
//
// Values are moved from L1 to L2 when they are "dead": produced, with no
// renamed-but-unexecuted consumers, and with their architectural register
// reassigned. Migration runs only when the number of free L1 registers
// falls below a threshold, bounding the recovery exposure. Rename stalls
// when no L1 register is free — the dominant cost the paper observes.
//
// As one more optimistic concession (in the spirit of the paper's explicit
// list), an L1 slot is occupied from value *production* until migration or
// free, rather than from rename: on a 512-entry-ROB machine the in-flight
// unproduced destinations alone can exceed any plausible L1 capacity, and
// reserving slots at rename would gate rename permanently. Optimism here
// only strengthens the paper's conclusion that the register cache wins.
package twolevel

import (
	"fmt"

	"regcache/internal/core"
)

// Config parameterizes the two-level file.
type Config struct {
	L1Entries     int // capacity of the fast file (the paper uses cache size + 32)
	L2Latency     int // L2 access latency in cycles (Figure 12 sweep)
	CopyBandwidth int // registers per cycle between levels (4 optimistic, 2 realistic)
	FreeThreshold int // migrate when free L1 registers drop below this
	RefillSlack   int // front-end cycles available to overlap recovery copies (fetch+decode)
}

func (c Config) withDefaults() Config {
	if c.L1Entries == 0 {
		c.L1Entries = 96
	}
	if c.L2Latency == 0 {
		c.L2Latency = 2
	}
	if c.CopyBandwidth == 0 {
		c.CopyBandwidth = 4
	}
	if c.FreeThreshold == 0 {
		c.FreeThreshold = 12
	}
	if c.RefillSlack == 0 {
		c.RefillSlack = 6
	}
	return c
}

// File is the two-level register file state machine. The pipeline drives
// it with rename/execute/retire/squash events; the file answers whether
// rename may proceed and how long recoveries stall.
type File struct {
	cfg Config

	inL1     []bool // value resident in L1
	inL2     []bool // value resident in L2 (moved out)
	live     []bool // between Allocate and Free
	produced []bool
	remapped []bool // architectural register has been reassigned
	pending  []int  // renamed-but-unexecuted consumers

	occupied int

	// Statistics.
	Migrations      uint64
	RecoveredValues uint64
	RecoveryEvents  uint64
	RecoveryStalls  uint64 // cycles rename stalled for recovery copies
	RenameStalls    uint64 // cycles rename stalled for lack of L1 registers
	L2Reads         uint64
}

// New builds a two-level file for npregs physical registers.
func New(cfg Config, npregs int) *File {
	cfg = cfg.withDefaults()
	return &File{
		cfg:      cfg,
		inL1:     make([]bool, npregs),
		inL2:     make([]bool, npregs),
		live:     make([]bool, npregs),
		produced: make([]bool, npregs),
		remapped: make([]bool, npregs),
		pending:  make([]int, npregs),
	}
}

// Config returns the (defaulted) configuration.
func (f *File) Config() Config { return f.cfg }

// Occupied returns the number of L1 slots in use.
func (f *File) Occupied() int { return f.occupied }

// CanAllocate reports whether an L1 register is available for rename. When
// false the caller stalls rename and should call NoteRenameStall.
func (f *File) CanAllocate() bool { return f.occupied < f.cfg.L1Entries }

// NoteRenameStall counts one stalled rename cycle.
func (f *File) NoteRenameStall() { f.RenameStalls++ }

// Allocate registers p at rename. The L1 slot itself is claimed when the
// value is produced (see the package comment); the caller must still have
// checked CanAllocate, which gates rename on the file having headroom.
func (f *File) Allocate(p core.PReg) {
	f.inL1[p] = false
	f.inL2[p] = false
	f.live[p] = true
	f.produced[p] = false
	f.remapped[p] = false
	f.pending[p] = 0
}

// AddConsumer records a renamed consumer of p (pending until it executes
// or is squashed).
func (f *File) AddConsumer(p core.PReg) {
	if f.live[p] {
		f.pending[p]++
	}
}

// ConsumerDone records a consumer of p executing (or being squashed before
// executing).
func (f *File) ConsumerDone(p core.PReg) {
	if f.live[p] && f.pending[p] > 0 {
		f.pending[p]--
	}
}

// Produced records p's value being written, claiming its L1 slot.
func (f *File) Produced(p core.PReg) {
	if f.live[p] && !f.produced[p] {
		f.produced[p] = true
		f.inL1[p] = true
		f.occupied++
	}
}

// Remapped records that p's architectural register has been redefined by a
// younger instruction (making p eligible for migration once its consumers
// drain). Unremapped reverses it when that younger instruction is squashed.
func (f *File) Remapped(p core.PReg)   { f.remapped[p] = true }
func (f *File) Unremapped(p core.PReg) { f.remapped[p] = false }

// Free releases p entirely (retirement free or squash of the allocating
// instruction).
func (f *File) Free(p core.PReg) {
	if !f.live[p] {
		return
	}
	if f.inL1[p] {
		f.occupied--
	}
	f.live[p] = false
	f.inL1[p] = false
	f.inL2[p] = false
}

// Tick performs up to CopyBandwidth L1->L2 migrations when free registers
// are scarce. Called once per cycle.
func (f *File) Tick() {
	free := f.cfg.L1Entries - f.occupied
	if free >= f.cfg.FreeThreshold {
		return
	}
	moved := 0
	for p := range f.inL1 {
		if moved >= f.cfg.CopyBandwidth {
			break
		}
		if f.inL1[p] && f.live[p] && f.produced[p] && f.remapped[p] && f.pending[p] == 0 {
			f.inL1[p] = false
			f.inL2[p] = true
			f.occupied--
			f.Migrations++
			moved++
		}
	}
}

// Recover handles a misspeculation: every mapping in the restored rename
// map whose value was migrated to L2 must be copied back before new
// instructions reach rename. visible lists the physical registers of the
// restored mappings. It returns the number of cycles rename must stall
// beyond the pipeline refill (copies run at CopyBandwidth per cycle after
// an L2 read latency, overlapped with RefillSlack front-end cycles).
func (f *File) Recover(visible []core.PReg) int {
	n := 0
	for _, p := range visible {
		if f.live[p] && f.inL2[p] {
			f.inL2[p] = false
			f.inL1[p] = true
			f.occupied++
			f.L2Reads++
			n++
		}
	}
	if n == 0 {
		return 0
	}
	f.RecoveryEvents++
	f.RecoveredValues += uint64(n)
	copyCycles := f.cfg.L2Latency + (n+f.cfg.CopyBandwidth-1)/f.cfg.CopyBandwidth
	stall := copyCycles - f.cfg.RefillSlack
	if stall < 0 {
		stall = 0
	}
	f.RecoveryStalls += uint64(stall)
	return stall
}

// DebugEligibility summarizes why L1-resident values are not migratable —
// a diagnostic for rename-stall investigations.
func (f *File) DebugEligibility() string {
	var inL1, notProduced, notRemapped, pending, eligible int
	for p := range f.inL1 {
		if !f.inL1[p] || !f.live[p] {
			continue
		}
		inL1++
		switch {
		case !f.produced[p]:
			notProduced++
		case !f.remapped[p]:
			notRemapped++
		case f.pending[p] > 0:
			pending++
		default:
			eligible++
		}
	}
	return fmt.Sprintf("inL1=%d notProduced=%d notRemapped=%d pendingConsumers=%d eligible=%d",
		inL1, notProduced, notRemapped, pending, eligible)
}
