package sim

// This file is the run layer's contribution to the distributed sweep
// fabric (internal/fleet): the canonical point fingerprint the fabric
// consistent-hashes to pick an owner node, the point/run identity strings
// scatter/gather uses to match partial results back to their sweep slots,
// the merge that reassembles partial ResultsFiles into one byte-stable
// document, and the wire codec for peer store lookups (GET /v1/store/{key}
// serves the same payload ResultStore persists on disk).
//
// Decoupled on purpose: the fingerprint is exactly the durable store key
// (fingerprintJob under the current SimulatorVersion), so a point's ring
// owner is also the node whose store shard holds its cached result — the
// fleet's "store as L3 shard" property falls out of reusing one
// canonicalization.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"regcache/internal/pipeline"
	"regcache/internal/store"
)

// Fingerprint returns the canonical content-addressed key for a job under
// the current SimulatorVersion — the same key the durable result store
// files the job's result under. The fleet layer consistent-hashes it to
// partition sweeps, so a point's owner node and its store shard coincide.
func Fingerprint(j Job) store.Key {
	return fingerprintJob(SimulatorVersion, j)
}

// FingerprintPoint is Fingerprint for an unassembled (bench, scheme,
// options) triple.
func FingerprintPoint(bench string, s Scheme, o Options) store.Key {
	return Fingerprint(Job{Scheme: s, Bench: bench, Opts: o})
}

// PointIdentity names one sweep point for matching gathered runs back to
// their canonical slots. It is intentionally coarser than Fingerprint: it
// ignores fields that cannot differ within one sweep (interval options,
// tracking flags, simulator version), so a RunRecord produced by a remote
// node matches the identity computed by the gateway from the request. The
// thread count is part of the identity: an explore over the Threads axis
// evaluates the same scheme at several counts, and results files may mix
// thread counts, so (bench, insts, scheme) alone would collide.
func PointIdentity(bench string, s Scheme, o Options) string {
	o = o.withDefaults()
	return runIdentity(NewSchemeRecord(s), bench, o.Insts, o.Threads)
}

// RunIdentity is PointIdentity computed from a serialized run — the form
// duplicate detection (cmd/checkresults) and gather matching use.
func RunIdentity(r RunRecord) string {
	return runIdentity(r.Scheme, r.Bench, r.Insts, r.Threads)
}

func runIdentity(sr SchemeRecord, bench string, insts uint64, threads int) string {
	data, err := json.Marshal(sr)
	if err != nil {
		// SchemeRecord is a plain value struct; marshalling cannot fail.
		panic(fmt.Sprintf("sim: run identity %s/%s: %v", sr.Name, bench, err))
	}
	if threads > 1 {
		// Appended only for multithreaded points so single-context
		// identities keep their historical form.
		return fmt.Sprintf("%s|%d|t%d|%s", bench, insts, threads, data)
	}
	return fmt.Sprintf("%s|%d|%s", bench, insts, data)
}

// MergeResultsFiles reassembles partial results files gathered from a
// fleet into one canonical document: runs are reordered to the given
// identity order (the gateway's scheme-outer × bench-inner expansion of
// the original request), so the merged body is byte-identical to what a
// single node would have produced for the whole sweep. Every identity in
// order must be resolved by exactly one distinct run; duplicates across
// partials (a hedge that raced its primary to completion) are tolerated
// only if their serialized forms agree — disagreement means two nodes
// simulated the same point differently, which is a determinism violation
// worth failing loudly over.
func MergeResultsFiles(generator string, order []string, parts []*ResultsFile) (*ResultsFile, error) {
	type slot struct {
		rec RunRecord
		raw []byte
	}
	byID := make(map[string]slot, len(order))
	want := make(map[string]bool, len(order))
	for _, id := range order {
		want[id] = true
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.SchemaVersion != ResultsSchemaVersion {
			return nil, fmt.Errorf("sim: merge: partial has schema version %d, want %d",
				p.SchemaVersion, ResultsSchemaVersion)
		}
		for _, r := range p.Runs {
			id := RunIdentity(r)
			if !want[id] {
				return nil, fmt.Errorf("sim: merge: unexpected run %s/%s not in the requested matrix",
					r.Scheme.Name, r.Bench)
			}
			raw, err := json.Marshal(r)
			if err != nil {
				return nil, fmt.Errorf("sim: merge: marshal run %s/%s: %w", r.Scheme.Name, r.Bench, err)
			}
			if prev, ok := byID[id]; ok {
				if !bytes.Equal(prev.raw, raw) {
					return nil, fmt.Errorf("sim: merge: divergent duplicate for %s/%s (two nodes disagree)",
						r.Scheme.Name, r.Bench)
				}
				continue
			}
			byID[id] = slot{rec: r, raw: raw}
		}
	}
	runs := make([]RunRecord, 0, len(order))
	for _, id := range order {
		s, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("sim: merge: point %s unresolved by any partial", shortIdentity(id))
		}
		runs = append(runs, s.rec)
	}
	// CreatedAt and WallSeconds stay zero for the same reason the service
	// plane zeroes them: the body must be a pure function of the request.
	return &ResultsFile{
		SchemaVersion: ResultsSchemaVersion,
		Generator:     generator,
		Runs:          runs,
	}, nil
}

// shortIdentity trims the scheme JSON off an identity string for error
// messages (bench|insts is enough to locate the hole).
func shortIdentity(id string) string {
	if i := bytes.IndexByte([]byte(id), '{'); i > 0 {
		return id[:i] + "..."
	}
	return id
}

// EncodeStoredPayload encodes one completed point in the durable store's
// payload form — the bytes GET /v1/store/{key} serves, identical to what
// ResultStore.Put appends on disk.
func EncodeStoredPayload(bench string, s Scheme, o Options, res pipeline.Result) ([]byte, error) {
	o = o.withDefaults()
	data, err := json.Marshal(storedResult{
		PayloadVersion: StorePayloadVersion,
		Record:         NewRunRecord(bench, s, o, res),
		Result:         res,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: encode stored payload: %w", err)
	}
	return data, nil
}

// DecodeStoredPayload decodes a /v1/store payload into the full
// pipeline.Result (plus the curated record), so a peer store hit is
// indistinguishable from a local one.
func DecodeStoredPayload(data []byte) (RunRecord, pipeline.Result, error) {
	var sr storedResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return RunRecord{}, pipeline.Result{}, fmt.Errorf("sim: decode stored payload: %w", err)
	}
	if sr.PayloadVersion != StorePayloadVersion {
		return RunRecord{}, pipeline.Result{}, fmt.Errorf("sim: stored payload version %d, want %d",
			sr.PayloadVersion, StorePayloadVersion)
	}
	return sr.Record, sr.Result, nil
}
