package sim

// This file implements the shared workload layer: a process-wide cache of
// pre-decoded benchmark programs and oracle degree-of-use tables (the
// functional pre-pass behind the -oracle schemes). Both artifacts are
// immutable once built and depend only on the workload — programs on the
// benchmark name, oracle tables on (benchmark, instruction budget) — never
// on the machine configuration, so every pipeline in the process can share
// one copy instead of regenerating them per run.
//
// Construction is single-flight per key: concurrent requesters of the same
// program (the worker pool fans a suite out) block on one builder instead
// of serializing behind a global lock or duplicating the generation work.

import (
	"fmt"
	"sync"

	"regcache/internal/memsys"
	"regcache/internal/pipeline"
	"regcache/internal/prog"
)

// WorkloadCache memoizes generated benchmark programs and oracle tables.
// The zero value is not usable; call NewWorkloadCache. All methods are safe
// for concurrent use.
type WorkloadCache struct {
	mu      sync.Mutex
	progs   map[string]*progEntry
	oracles map[oracleKey]*oracleEntry
	ckpts   map[ckptKey]*ckptEntry
	stats   WorkloadStats
}

// oracleKey identifies one oracle pre-pass: the table contents depend on
// the program and on how far the pre-pass ran.
type oracleKey struct {
	bench string
	insts uint64
}

// ckptKey identifies one interval checkpoint set: the capture points are a
// pure function of (budget, interval count, warm-up), and the functional
// warm image baked into each checkpoint depends on the memory-hierarchy
// geometry, so the set is keyed by all four plus the benchmark. Schemes
// share sets (they almost always share the default memory system).
type ckptKey struct {
	bench  string
	insts  uint64
	k      int
	warmup uint64
	mem    memsys.Config
}

// progEntry and oracleEntry are single-flight slots: the once runs the
// build, everyone else blocks on it.
type progEntry struct {
	once sync.Once
	p    *prog.Program
	err  error
}

type oracleEntry struct {
	once sync.Once
	t    *pipeline.OracleTable
	err  error
}

type ckptEntry struct {
	once sync.Once
	cks  []pipeline.Checkpoint
	err  error
}

// WorkloadStats counts what the cache did: builds are generation work
// actually performed, hits are requests served from (or joined onto) an
// existing entry.
type WorkloadStats struct {
	ProgramBuilds    uint64
	ProgramHits      uint64
	OracleBuilds     uint64
	OracleHits       uint64
	CheckpointBuilds uint64
	CheckpointHits   uint64
}

func (s WorkloadStats) String() string {
	out := fmt.Sprintf("%d programs built (%d hits), %d oracle tables built (%d hits)",
		s.ProgramBuilds, s.ProgramHits, s.OracleBuilds, s.OracleHits)
	if s.CheckpointBuilds != 0 || s.CheckpointHits != 0 {
		out += fmt.Sprintf(", %d checkpoint sets built (%d hits)", s.CheckpointBuilds, s.CheckpointHits)
	}
	return out
}

// NewWorkloadCache builds an empty workload cache.
func NewWorkloadCache() *WorkloadCache {
	return &WorkloadCache{
		progs:   make(map[string]*progEntry),
		oracles: make(map[oracleKey]*oracleEntry),
		ckpts:   make(map[ckptKey]*ckptEntry),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *WorkloadCache) Stats() WorkloadStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Program returns the named built-in benchmark, generating and decoding it
// on first request and returning the shared immutable copy thereafter.
func (c *WorkloadCache) Program(name string) (*prog.Program, error) {
	c.mu.Lock()
	e, ok := c.progs[name]
	if !ok {
		e = &progEntry{}
		c.progs[name] = e
		c.stats.ProgramBuilds++
	} else {
		c.stats.ProgramHits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		prof, ok := prog.ProfileByName(name)
		if !ok {
			e.err = fmt.Errorf("sim: unknown benchmark %q", name)
			return
		}
		e.p, e.err = prog.Generate(prof)
	})
	return e.p, e.err
}

// ThreadProgram returns hardware context tid's instruction stream for a
// multithreaded run of the named benchmark: context 0 is the benchmark
// itself (shared with single-context runs), higher contexts are the same
// profile regenerated under a context-salted seed (prog.ThreadProfile).
// Each distinct (bench, tid) builds once and is shared thereafter.
func (c *WorkloadCache) ThreadProgram(name string, tid int) (*prog.Program, error) {
	if tid <= 0 {
		return c.Program(name)
	}
	key := fmt.Sprintf("%s#t%d", name, tid)
	c.mu.Lock()
	e, ok := c.progs[key]
	if !ok {
		e = &progEntry{}
		c.progs[key] = e
		c.stats.ProgramBuilds++
	} else {
		c.stats.ProgramHits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		prof, ok := prog.ProfileByName(name)
		if !ok {
			e.err = fmt.Errorf("sim: unknown benchmark %q", name)
			return
		}
		e.p, e.err = prog.Generate(prog.ThreadProfile(prof, tid))
	})
	return e.p, e.err
}

// Oracle returns the oracle degree-of-use table for (bench, insts), running
// the functional pre-pass once per distinct budget and sharing the table
// across every oracle-scheme pipeline thereafter.
func (c *WorkloadCache) Oracle(bench string, insts uint64) (*pipeline.OracleTable, error) {
	k := oracleKey{bench: bench, insts: insts}
	c.mu.Lock()
	e, ok := c.oracles[k]
	if !ok {
		e = &oracleEntry{}
		c.oracles[k] = e
		c.stats.OracleBuilds++
	} else {
		c.stats.OracleHits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		p, err := c.Program(bench)
		if err != nil {
			e.err = err
			return
		}
		e.t = pipeline.BuildOracle(p, insts)
	})
	return e.t, e.err
}

// Checkpoints returns the interval checkpoint set for (bench, insts, k,
// warmup, mem), running the functional capture pass once per distinct
// split and sharing the immutable set across every interval-parallel run
// thereafter (each pipeline copies the state it starts from).
func (c *WorkloadCache) Checkpoints(bench string, insts uint64, k int, warmup uint64, mem memsys.Config) ([]pipeline.Checkpoint, error) {
	key := ckptKey{bench: bench, insts: insts, k: k, warmup: warmup, mem: mem}
	c.mu.Lock()
	e, ok := c.ckpts[key]
	if !ok {
		e = &ckptEntry{}
		c.ckpts[key] = e
		c.stats.CheckpointBuilds++
	} else {
		c.stats.CheckpointHits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		p, err := c.Program(bench)
		if err != nil {
			e.err = err
			return
		}
		e.cks = pipeline.CaptureCheckpoints(p, pipeline.CapturePoints(pipeline.IntervalStarts(insts, k), warmup), mem)
	})
	return e.cks, e.err
}

// The process-wide workload cache shared by Execute, the default runner,
// and both binaries.
var (
	defaultWorkloadsOnce sync.Once
	defaultWorkloads     *WorkloadCache
)

// DefaultWorkloads returns the shared process-wide workload cache.
func DefaultWorkloads() *WorkloadCache {
	defaultWorkloadsOnce.Do(func() { defaultWorkloads = NewWorkloadCache() })
	return defaultWorkloads
}
