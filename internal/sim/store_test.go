package sim

// Tests for the durable result store integration: fingerprint hygiene,
// warm restarts across runner generations, simulator-version staleness,
// corrupt-entry fallback, and the ResetStats counter boundary.

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"regcache/internal/core"
	"regcache/internal/store"
)

func testStoreJob() Job {
	return Job{
		Scheme: UseBased(16, 2, core.IndexFilteredRR),
		Bench:  "gzip",
		Opts:   Options{Insts: 2000},
	}
}

func openTestStore(t *testing.T, dir string) *ResultStore {
	t.Helper()
	rs, err := OpenResultStore(dir, store.Options{})
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	return rs
}

func TestFingerprintCanonicalization(t *testing.T) {
	j := testStoreJob()
	base := fingerprintJob(SimulatorVersion, j)

	// Defaulted options and their explicit spellings hash identically.
	jd := j
	jd.Opts = j.Opts.withDefaults()
	if fingerprintJob(SimulatorVersion, jd) != base {
		t.Error("defaulted options must not change the fingerprint")
	}
	zero := j
	zero.Opts.Insts = 0 // defaults to DefaultInsts, a different budget
	if fingerprintJob(SimulatorVersion, zero) == base {
		t.Error("different defaulted budget must change the fingerprint")
	}

	// One interval is the bit-identical guard mode, but it still routes
	// through the interval executor, so it is honestly a distinct key.
	// Warm-up instructions only matter (and are only normalized to a
	// nonzero default) when intervals > 1.
	for name, alt := range map[string]Job{
		"bench":     {Scheme: j.Scheme, Bench: "mcf", Opts: j.Opts},
		"insts":     {Scheme: j.Scheme, Bench: j.Bench, Opts: Options{Insts: 2001}},
		"scheme":    {Scheme: UseBased(32, 2, core.IndexFilteredRR), Bench: j.Bench, Opts: j.Opts},
		"track":     {Scheme: j.Scheme, Bench: j.Bench, Opts: Options{Insts: 2000, TrackLifetimes: true}},
		"intervals": {Scheme: j.Scheme, Bench: j.Bench, Opts: Options{Insts: 2000, Intervals: 2}},
		"warmup":    {Scheme: j.Scheme, Bench: j.Bench, Opts: Options{Insts: 2000, Intervals: 2, WarmupInsts: 500}},
	} {
		if fingerprintJob(SimulatorVersion, alt) == base {
			t.Errorf("changing %s must change the fingerprint", name)
		}
	}
	if fingerprintJob(SimulatorVersion+1, j) == base {
		t.Error("bumping the simulator version must change the fingerprint")
	}

	// Interval-option normalization folds equivalent spellings together:
	// warm-up is meaningless (and zeroed) for serial and K=1 runs, and an
	// explicit default warm-up spells the same run as an implicit one.
	k1 := j
	k1.Opts.Intervals = 1
	k1Noise := k1
	k1Noise.Opts.WarmupInsts = 999
	if fingerprintJob(SimulatorVersion, k1Noise) != fingerprintJob(SimulatorVersion, k1) {
		t.Error("warm-up must not perturb a K=1 fingerprint (it is normalized away)")
	}
	k2 := j
	k2.Opts.Intervals = 2
	k2Explicit := k2
	k2Explicit.Opts.WarmupInsts = DefaultWarmupInsts
	if fingerprintJob(SimulatorVersion, k2Explicit) != fingerprintJob(SimulatorVersion, k2) {
		t.Error("explicit default warm-up must hash like the implicit default")
	}
}

// TestRunnerWarmRestart is the store's core contract: a second runner
// generation on the same directory replays finished jobs from disk —
// zero simulations, identical results.
func TestRunnerWarmRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	j := testStoreJob()

	r1 := NewRunnerWith(2, NewWorkloadCache())
	rs1 := openTestStore(t, dir)
	if err := r1.UseStore(rs1); err != nil {
		t.Fatalf("UseStore: %v", err)
	}
	cold, err := r1.Run(context.Background(), j.Bench, j.Scheme, j.Opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	r1.Close() // drains the flush queue
	if st := r1.Stats(); st.JobsRun != 1 || st.StoreHits != 0 || st.StoreWrites != 1 {
		t.Fatalf("cold generation stats: %+v", st)
	}
	if err := rs1.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	r2 := NewRunnerWith(2, NewWorkloadCache())
	defer r2.Close()
	rs2 := openTestStore(t, dir)
	defer rs2.Close()
	if err := r2.UseStore(rs2); err != nil {
		t.Fatalf("UseStore: %v", err)
	}
	warm, err := r2.Run(context.Background(), j.Bench, j.Scheme, j.Opts)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if st := r2.Stats(); st.JobsRun != 0 || st.StoreHits != 1 {
		t.Fatalf("warm generation must not simulate: %+v", st)
	}
	// The store's fidelity contract is the serialized surface: every
	// document built from a replayed result is byte-identical to one built
	// from the fresh result. (core.Stats carries unexported mid-run
	// scratch fields that deliberately do not persist.)
	coldJSON, _ := json.Marshal(cold)
	warmJSON, _ := json.Marshal(warm)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("store round trip changed the result:\ncold %s\nwarm %s", coldJSON, warmJSON)
	}
	if !reflect.DeepEqual(NewRunRecord(j.Bench, j.Scheme, j.Opts, cold), NewRunRecord(j.Bench, j.Scheme, j.Opts, warm)) {
		t.Error("store round trip changed the curated run record")
	}
}

// TestStoreVersionBump proves staleness safety: entries written under one
// simulator version never match under another.
func TestStoreVersionBump(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	j := testStoreJob()

	rs := openTestStore(t, dir)
	r1 := NewRunnerWith(1, NewWorkloadCache())
	if err := r1.UseStore(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	r1.Close()

	// Same directory, same job, "newer timing model".
	r2 := NewRunnerWith(1, NewWorkloadCache())
	defer r2.Close()
	if err := r2.UseStore(rs.WithSimulatorVersion(SimulatorVersion + 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.StoreHits != 0 || st.JobsRun != 1 {
		t.Fatalf("version bump must force re-simulation: %+v", st)
	}
	rs.Close()
}

// TestStoreCorruptEntryFallsBackToSimulate plants an undecodable payload
// at the correct key: the runner must count it, re-simulate, and its
// fresh append must supersede the junk for the next generation.
func TestStoreCorruptEntryFallsBackToSimulate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	j := testStoreJob()

	rs := openTestStore(t, dir)
	if err := rs.Store().Put(fingerprintJob(SimulatorVersion, j), []byte("not json")); err != nil {
		t.Fatal(err)
	}
	r := NewRunnerWith(1, NewWorkloadCache())
	if err := r.UseStore(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if st := r.Stats(); st.StoreCorrupt != 1 || st.JobsRun != 1 || st.StoreHits != 0 {
		t.Fatalf("corrupt entry handling: %+v", st)
	}
	rs.Close()

	// The re-simulated result superseded the junk: next generation hits.
	rs2 := openTestStore(t, dir)
	defer rs2.Close()
	r2 := NewRunnerWith(1, NewWorkloadCache())
	defer r2.Close()
	if err := r2.UseStore(rs2); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.StoreHits != 1 || st.JobsRun != 0 {
		t.Fatalf("superseding append did not take: %+v", st)
	}
}

func TestUseStoreAfterStartRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	j := testStoreJob()
	r := NewRunnerWith(1, NewWorkloadCache())
	defer r.Close()
	if _, err := r.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	rs := openTestStore(t, dir)
	defer rs.Close()
	if err := r.UseStore(rs); err == nil {
		t.Fatal("UseStore after the pool started must be refused")
	}
}

// TestResetStats: the snapshot returned is the closed generation; the
// live counters restart from zero while the memo cache stays warm.
func TestResetStats(t *testing.T) {
	j := testStoreJob()
	r := NewRunnerWith(1, NewWorkloadCache())
	defer r.Close()
	if _, err := r.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	prev := r.ResetStats()
	if prev.JobsRun != 1 {
		t.Fatalf("snapshot: %+v", prev)
	}
	if st := r.Stats(); st.JobsRun != 0 || st.CacheHits != 0 || st.SimWall != 0 {
		t.Fatalf("counters must restart from zero: %+v", st)
	}
	// The memo survives the counter reset: a rerun is a cache hit in the
	// new generation, not a new simulation mixed into old totals.
	if _, err := r.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.JobsRun != 0 || st.CacheHits != 1 {
		t.Fatalf("post-reset generation: %+v", st)
	}
}
