package sim

import (
	"testing"

	"regcache/internal/core"
	"regcache/internal/pipeline"
)

func TestSchemeConstructors(t *testing.T) {
	m := Monolithic(3)
	if m.Kind != pipeline.SchemeMonolithic || m.RFLatency != 3 || m.Name != "rf-3cyc" {
		t.Errorf("Monolithic: %+v", m)
	}
	u := UseBased(64, 2, core.IndexFilteredRR)
	if u.Cache.Insert != core.InsertUseBased || u.Cache.Replace != core.ReplaceUseBased {
		t.Errorf("UseBased: %+v", u.Cache)
	}
	l := LRU(32, 4, core.IndexRoundRobin)
	if l.Cache.Insert != core.InsertAlways || l.Cache.Ways != 4 || l.Cache.Entries != 32 {
		t.Errorf("LRU: %+v", l.Cache)
	}
	nb := NonBypass(64, 2, core.IndexPReg)
	if nb.Cache.Insert != core.InsertNonBypass || nb.Cache.Index != core.IndexPReg {
		t.Errorf("NonBypass: %+v", nb.Cache)
	}
	tl := TwoLevel(96, 2)
	if tl.Kind != pipeline.SchemeTwoLevel || tl.TwoLevel.L1Entries != 96 {
		t.Errorf("TwoLevel: %+v", tl)
	}
	wb := u.WithBacking(4)
	if wb.BackingLatency != 4 || u.BackingLatency != 0 {
		t.Error("WithBacking must copy, not mutate")
	}
}

func TestWorkloadCacheAndErrors(t *testing.T) {
	a, err := Workload("gzip")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Workload("gzip")
	if a != b {
		t.Error("workload cache returned different programs")
	}
	if _, err := Workload("nonesuch"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	if _, err := Run("nonesuch", Monolithic(1), Options{Insts: 1000}); err == nil {
		t.Error("Run must propagate workload errors")
	}
}

func TestRunAndSuite(t *testing.T) {
	benches := []string{"gzip", "twolf"}
	sr, err := RunSuite(benches, UseBased(64, 2, core.IndexFilteredRR), Options{Insts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.PerBench) != 2 {
		t.Fatalf("suite has %d results", len(sr.PerBench))
	}
	ipcs := sr.IPCs()
	if len(ipcs) != 2 || ipcs[0] <= 0 || ipcs[1] <= 0 {
		t.Fatalf("bad IPCs: %v", ipcs)
	}
	if h := sr.HMeanIPC(); h <= 0 || h > 8 {
		t.Fatalf("hmean IPC %v implausible", h)
	}
	if mr := sr.MeanMissRate(); mr < 0 || mr > 1 {
		t.Fatalf("miss rate %v out of range", mr)
	}
	var catSum float64
	for _, k := range []core.MissKind{core.MissFiltered, core.MissCapacity, core.MissConflict} {
		catSum += sr.MeanMissRateBy(k)
	}
	if diff := catSum - sr.MeanMissRate(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("miss categories (%v) do not sum to total (%v)", catSum, sr.MeanMissRate())
	}
}

func TestRelIPC(t *testing.T) {
	benches := []string{"gzip"}
	a, err := RunSuite(benches, Monolithic(1), Options{Insts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	// Relative to itself: exactly 1.
	if rel := a.RelIPC(a); rel != 1 {
		t.Fatalf("self-relative IPC = %v, want 1", rel)
	}
	b, err := RunSuite(benches, Monolithic(3), Options{Insts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	// A 1-cycle file is at least as fast as a 3-cycle file.
	if rel := a.RelIPC(b); rel < 1 {
		t.Errorf("RF-1cyc vs RF-3cyc speedup = %v, want >= 1", rel)
	}
}

func TestDeterministicAcrossSuiteRuns(t *testing.T) {
	// Concurrent suite execution must not perturb results.
	s := UseBased(64, 2, core.IndexFilteredRR)
	a, _ := RunSuite([]string{"gzip", "mcf"}, s, Options{Insts: 15_000})
	b, _ := RunSuite([]string{"gzip", "mcf"}, s, Options{Insts: 15_000})
	for _, bench := range a.Order {
		if a.PerBench[bench].Stats.Cycles != b.PerBench[bench].Stats.Cycles {
			t.Fatalf("%s: non-deterministic cycles", bench)
		}
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 12 {
		t.Errorf("suite has %d benchmarks, want 12", len(Benchmarks()))
	}
	for _, q := range QuickBenchmarks() {
		if _, err := Workload(q); err != nil {
			t.Errorf("quick benchmark %s unavailable: %v", q, err)
		}
	}
}
