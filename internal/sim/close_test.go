package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRunnerClose checks the shutdown contract: workers exit, new
// submissions fail fast with ErrClosed, and already-memoized results stay
// readable.
func TestRunnerClose(t *testing.T) {
	r := NewRunner(2)
	s := Monolithic(3)
	res, err := r.Run(context.Background(), "gzip", s, Options{Insts: 10_000})
	if err != nil {
		t.Fatal(err)
	}

	r.Close()
	r.Close() // idempotent

	// Memoized results survive the close.
	res2, err := r.Run(context.Background(), "gzip", s, Options{Insts: 10_000})
	if err != nil {
		t.Fatalf("memoized read after close: %v", err)
	}
	if res2.IPC != res.IPC {
		t.Errorf("memoized result changed after close")
	}

	// New work is refused.
	if _, err := r.Run(context.Background(), "mcf", s, Options{Insts: 10_000}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submission after close: err = %v, want ErrClosed", err)
	}
	if r.Open() != 0 {
		t.Errorf("%d jobs still open after close", r.Open())
	}
}

// TestRunnerCloseDrainsQueue floods a single-worker runner and closes it
// mid-flight: every submission must settle (completed or ErrClosed), no
// waiter may hang, and the pool must not execute jobs after the drain.
func TestRunnerCloseDrainsQueue(t *testing.T) {
	r := NewRunner(1)
	s := Monolithic(3)

	var wg sync.WaitGroup
	errs := make([]error, 24)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct budgets make distinct jobs: no memo joining.
			_, errs[i] = r.Run(context.Background(), "gzip", s, Options{Insts: uint64(20_000 + i)})
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let some submissions land
	r.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("waiters hung after Close")
	}

	var completed, failed int
	for _, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrClosed):
			failed++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if completed+failed != len(errs) {
		t.Errorf("completed %d + failed %d != %d", completed, failed, len(errs))
	}
	if failed == 0 {
		t.Logf("note: all %d jobs outran Close on this machine", completed)
	}
	if r.Open() != 0 {
		t.Errorf("%d jobs still open after drain", r.Open())
	}
}

// TestSubmitRespectsContext cancels a submitter blocked on a full queue:
// it must return the context error instead of blocking until space frees,
// and the failed entry must not poison later requests for the same job.
func TestSubmitRespectsContext(t *testing.T) {
	r := NewRunner(1)
	defer r.Close()
	s := Monolithic(3)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	const n = 40 // worker capacity 1, queue capacity 16: most of these block
	errs := make([]error, n)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Run(ctx, "gzip", s, Options{Insts: uint64(30_000 + i)})
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled submitters hung")
	}

	var cancelled int
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		} else if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if cancelled == 0 {
		t.Log("note: every submission beat the cancellation on this machine")
	}

	// A job whose submission was cancelled must be retryable afterwards.
	if _, err := r.Run(context.Background(), "gzip", s, Options{Insts: 30_000 + n - 1}); err != nil {
		t.Fatalf("retry after cancelled submission: %v", err)
	}
}
