package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"regcache/internal/core"
)

// TestResultsRoundTrip writes a real run's results file and reads it back:
// the -json schema must survive a decode with its semantic fields intact.
func TestResultsRoundTrip(t *testing.T) {
	r := NewRunner(2)
	defer r.Close()
	s := UseBased(64, 2, core.IndexFilteredRR)
	res, err := r.Run(t.Context(), "gzip", s, Options{Insts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRunRecord("gzip", s, Options{Insts: 20_000}, res)
	f := NewResultsFile("test", []RunRecord{rec}, r, 3*time.Second)

	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteResults(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != ResultsSchemaVersion || got.Generator != "test" {
		t.Errorf("header mangled: %+v", got)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(got.Runs))
	}
	rr := got.Runs[0]
	if rr.Bench != "gzip" || rr.Scheme.Name != s.Name || rr.Scheme.Kind != "cache" {
		t.Errorf("run identity mangled: %+v", rr)
	}
	if rr.IPC != res.IPC || rr.Cycles != res.Stats.Cycles || rr.Retired != res.Stats.Retired {
		t.Errorf("performance fields mangled: %+v", rr)
	}
	if rr.Cache == nil {
		t.Fatal("cache record missing for a cache scheme")
	}
	if rr.Cache.Misses != res.Cache.Misses ||
		rr.Cache.MissFiltered+rr.Cache.MissCapacity+rr.Cache.MissConflict != res.Cache.Misses {
		t.Errorf("miss split inconsistent: %+v vs %+v", rr.Cache, res.Cache)
	}
	if rr.Scheme.Cache == nil || rr.Scheme.Cache.Entries != 64 {
		t.Errorf("scheme config not serialized: %+v", rr.Scheme)
	}
	if got.Runner == nil || got.Runner.JobsRun == 0 {
		t.Errorf("runner record missing: %+v", got.Runner)
	}
}

// TestReadResultsRejectsUnknownSchema guards the version gate downstream
// tooling relies on.
func TestReadResultsRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	doc := map[string]any{"schema_version": ResultsSchemaVersion + 99, "runs": []any{}}
	data, _ := json.Marshal(doc)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResults(path); err == nil {
		t.Fatal("unknown schema version accepted")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResults(path); err == nil {
		t.Fatal("malformed file accepted")
	}
}

// TestRunnerRecords checks the everything-this-process-simulated export:
// records come back deterministically ordered and only for successes.
func TestRunnerRecords(t *testing.T) {
	r := NewRunner(2)
	defer r.Close()
	s := Monolithic(3)
	for _, b := range []string{"gzip", "mcf"} {
		if _, err := r.Run(t.Context(), b, s, Options{Insts: 10_000}); err != nil {
			t.Fatal(err)
		}
	}
	// A failing job must not appear in the export.
	if _, err := r.Run(t.Context(), "no-such-bench", s, Options{Insts: 10_000}); err == nil {
		t.Fatal("bogus benchmark succeeded")
	}

	recs := RunnerRecords(r)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	for _, rec := range recs {
		if rec.IPC <= 0 || rec.Scheme.Kind != "monolithic" {
			t.Errorf("bad record %+v", rec)
		}
	}
	if recs[0].Bench == recs[1].Bench {
		t.Errorf("duplicate benches in export: %+v", recs)
	}
}
