package sim

// Fault-injection regression tests for the runner's store path: failed
// appends must be counted and surfaced (not silently dropped), and
// ResetStats must fence against the asynchronous flusher so counter
// generations never mix.

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoreAppendFailureCounted pins the fix for silently dropped store
// appends: a failed Put must increment StoreErrors (surfaced through
// Stats, RegisterMetrics, and the results schema) instead of vanishing,
// and must not count as a write.
func TestStoreAppendFailureCounted(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	j := testStoreJob()

	rs := openTestStore(t, dir)
	defer rs.Close()
	rs.Store().SetWriteHook(func([]byte) (int, error) {
		return 0, errors.New("injected: disk full")
	})

	r := NewRunnerWith(1, NewWorkloadCache())
	if err := r.UseStore(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatalf("a failed append must not fail the job: %v", err)
	}
	r.Close() // drains the flush queue, so the append has settled

	st := r.Stats()
	if st.StoreErrors != 1 {
		t.Errorf("StoreErrors = %d, want 1", st.StoreErrors)
	}
	if st.StoreWrites != 0 {
		t.Errorf("StoreWrites = %d, want 0 (the append failed)", st.StoreWrites)
	}
	if got := rs.Store().Stats().AppendErrors; got != 1 {
		t.Errorf("store-level AppendErrors = %d, want 1", got)
	}
}

// TestResetStatsWaitsForFlush pins the flush fence: an append already
// handed to the asynchronous flusher when ResetStats is called must land
// in the returned (pre-reset) snapshot, even if the write is still in
// flight — not leak into the new generation.
func TestResetStatsWaitsForFlush(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	j := testStoreJob()

	rs := openTestStore(t, dir)
	defer rs.Close()
	gate := make(chan struct{})
	var wrote atomic.Bool
	rs.Store().SetWriteHook(func(b []byte) (int, error) {
		<-gate // hold the append in flight until the test releases it
		wrote.Store(true)
		return len(b), nil
	})

	r := NewRunnerWith(1, NewWorkloadCache())
	defer r.Close()
	if err := r.UseStore(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), j.Bench, j.Scheme, j.Opts); err != nil {
		t.Fatal(err)
	}
	// Run returns when the job settles, which happens just before its
	// result is registered with the flush fence; wait for the handoff.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		seq := r.flushSeq
		r.mu.Unlock()
		if seq == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("append never handed to the flush path")
		}
		time.Sleep(time.Millisecond)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	prev := r.ResetStats() // must block until the gated append lands
	if !wrote.Load() {
		t.Fatal("ResetStats returned before the in-flight append landed")
	}
	if prev.StoreWrites != 1 {
		t.Errorf("pre-reset snapshot StoreWrites = %d, want 1 (in-flight append belongs to the closed generation)", prev.StoreWrites)
	}
	if st := r.Stats(); st.StoreWrites != 0 || st.JobsRun != 0 {
		t.Errorf("new generation must start from zero: %+v", st)
	}
}
