package sim

// Invariants for the multithreaded workload plane and the port-filtering
// scheme family (ISSUE 10). Like invariants_test.go these assert accounting
// identities rather than exact counter values: per-thread counters must
// reconcile with the machine totals, and port-conflict stalls may only
// appear on schemes that actually configure a bounded backing read-port
// count.

import (
	"context"
	"fmt"
	"testing"

	"regcache/internal/core"
	"regcache/internal/pipeline"
)

// mtInvariantInsts keeps the T=4 sweep fast; each context still retires
// thousands of instructions so the per-thread counters are non-trivial.
const mtInvariantInsts = 12_000

// mtSchemes pairs an unported scheme with two port-filtered variants of
// the same geometry. Two read ports on an 8-wide machine is starved enough
// to force arbitration queueing on real miss traffic.
func mtSchemes() []Scheme {
	base := UseBased(64, 2, core.IndexFilteredRR)
	return []Scheme{
		base,
		base.WithPorts(2),
		base.WithPorts(1),
	}
}

func TestMultithreadInvariants(t *testing.T) {
	r := NewRunnerWith(0, NewWorkloadCache())
	defer r.Close()
	benches := []string{"gzip", "mcf"}
	for _, threads := range []int{2, 4} {
		o := Options{Insts: mtInvariantInsts, Threads: threads}
		for _, s := range mtSchemes() {
			for _, b := range benches {
				s, b, threads := s, b, threads
				t.Run(fmt.Sprintf("t%d/%s/%s", threads, s.Name, b), func(t *testing.T) {
					res, err := r.Run(context.Background(), b, s, o)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					checkThreadInvariants(t, threads, res)
					checkPortInvariants(t, s, res)
				})
			}
		}
	}
}

// checkThreadInvariants asserts the per-context counter blocks partition
// the machine totals: nothing retired, read, or stalled escapes attribution
// to exactly one hardware context.
func checkThreadInvariants(t *testing.T, threads int, res pipeline.Result) {
	t.Helper()
	if len(res.Threads) != threads {
		t.Fatalf("got %d thread blocks, want %d", len(res.Threads), threads)
	}
	var retired, fetched, reads, hits, misses, stalls uint64
	for i, ts := range res.Threads {
		if ts.Thread != i {
			t.Errorf("thread block %d labelled %d", i, ts.Thread)
		}
		if ts.Retired == 0 {
			t.Errorf("thread %d retired nothing: round-robin fetch starved a context", i)
		}
		if ts.Retired > ts.Fetched {
			t.Errorf("thread %d: Retired %d > Fetched %d", i, ts.Retired, ts.Fetched)
		}
		// Read stream, per context: every lookup hits or misses.
		if ts.CacheReads != ts.CacheHits+ts.CacheMisses {
			t.Errorf("thread %d: CacheReads %d != Hits %d + Misses %d",
				i, ts.CacheReads, ts.CacheHits, ts.CacheMisses)
		}
		retired += ts.Retired
		fetched += ts.Fetched
		reads += ts.CacheReads
		hits += ts.CacheHits
		misses += ts.CacheMisses
		stalls += ts.PortConflictStalls
	}
	if retired != res.Stats.Retired {
		t.Errorf("per-thread Retired sums to %d, machine retired %d", retired, res.Stats.Retired)
	}
	if fetched != res.Stats.Fetched {
		t.Errorf("per-thread Fetched sums to %d, machine fetched %d", fetched, res.Stats.Fetched)
	}
	if reads != res.Cache.Reads {
		t.Errorf("per-thread CacheReads sums to %d, shared cache saw %d", reads, res.Cache.Reads)
	}
	if hits != res.Cache.Hits {
		t.Errorf("per-thread CacheHits sums to %d, shared cache saw %d", hits, res.Cache.Hits)
	}
	if misses != res.Cache.Misses {
		t.Errorf("per-thread CacheMisses sums to %d, shared cache saw %d", misses, res.Cache.Misses)
	}
	if stalls != res.Stats.PortConflictStalls {
		t.Errorf("per-thread PortConflictStalls sums to %d, machine counted %d",
			stalls, res.Stats.PortConflictStalls)
	}
}

// checkPortInvariants asserts port-conflict stalls appear only on schemes
// that bound the backing read-port count.
func checkPortInvariants(t *testing.T, s Scheme, res pipeline.Result) {
	t.Helper()
	if s.ReadPorts == 0 && res.Stats.PortConflictStalls != 0 {
		t.Errorf("unported scheme %s charged %d port-conflict stalls",
			s.Name, res.Stats.PortConflictStalls)
	}
}

// TestPortStarvationStalls pins down that a starved port configuration
// actually queues: one read port under a 4-context miss stream must charge
// stall cycles, and widening the port count must not increase them.
func TestPortStarvationStalls(t *testing.T) {
	r := NewRunnerWith(0, NewWorkloadCache())
	defer r.Close()
	base := UseBased(16, 1, core.IndexFilteredRR) // tiny cache: plenty of misses
	o := Options{Insts: mtInvariantInsts, Threads: 4}
	stalls := make(map[int]uint64)
	for _, ports := range []int{1, 8} {
		res, err := r.Run(context.Background(), "mcf", base.WithPorts(ports), o)
		if err != nil {
			t.Fatalf("run p%d: %v", ports, err)
		}
		stalls[ports] = res.Stats.PortConflictStalls
	}
	if stalls[1] == 0 {
		t.Errorf("one backing read port under 4 contexts never queued a fill request")
	}
	if stalls[8] > stalls[1] {
		t.Errorf("8 ports stall more than 1 port (%d > %d)", stalls[8], stalls[1])
	}
}

// TestSingleContextPortInvariants covers the T=1 port path: stalls must
// reconcile with zero thread blocks (the machine counter stands alone) and
// the RunRecord conversion must carry them.
func TestSingleContextPortInvariants(t *testing.T) {
	r := NewRunnerWith(0, NewWorkloadCache())
	defer r.Close()
	s := UseBased(16, 1, core.IndexFilteredRR).WithPorts(1)
	res, err := r.Run(context.Background(), "mcf", s, Options{Insts: mtInvariantInsts})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Threads) != 0 {
		t.Errorf("single-context run produced %d thread blocks", len(res.Threads))
	}
	rec := NewRunRecord("mcf", s, Options{Insts: mtInvariantInsts}, res)
	if rec.PortConflictStalls != res.Stats.PortConflictStalls {
		t.Errorf("RunRecord stalls %d != pipeline stalls %d",
			rec.PortConflictStalls, res.Stats.PortConflictStalls)
	}
	if rec.Threads != 0 || len(rec.ThreadStats) != 0 {
		t.Errorf("single-context RunRecord carries thread fields: Threads=%d, %d blocks",
			rec.Threads, len(rec.ThreadStats))
	}
}
