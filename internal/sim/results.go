package sim

// This file defines the versioned machine-readable results schema both
// binaries emit with -json and that benchmark-trajectory tooling consumes
// (BENCH_*.json). The schema is curated rather than a raw dump of
// pipeline.Result so its field set — and therefore every downstream
// consumer — survives internal refactors; bump ResultsSchemaVersion on any
// incompatible change.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/twolevel"
)

// ResultsSchemaVersion identifies the RunRecord/ResultsFile layout.
//
// v2: RunRecord gains an optional per-job timing block (queue wait, store
// lookup, simulate, stitch — the telemetry plane's latency breakdown) and
// RunnerRecord gains the store-corrupt counter. The durable result store
// fingerprints this version, so bumping it invalidates old store entries
// automatically.
//
// v3: multithreaded workloads and the port-filtering scheme family.
// SchemeRecord gains read_ports; RunRecord gains threads (the requested
// context count), a per-context thread_stats block, and the
// port_conflict_stalls counter. All additions are omitempty, so a
// single-context run of a portless scheme serializes byte-identically to
// v2 (the golden-fingerprint guard pins this); ReadResults accepts any
// version in [1, current].
const ResultsSchemaVersion = 3

// SchemeRecord serializes a scheme's full configuration.
type SchemeRecord struct {
	Name           string           `json:"name"`
	Kind           string           `json:"kind"` // monolithic, cache, two-level
	RFLatency      int              `json:"rf_latency,omitempty"`
	BackingLatency int              `json:"backing_latency,omitempty"`
	OracleUses     bool             `json:"oracle_uses,omitempty"`
	Cache          *core.Config     `json:"cache,omitempty"`
	TwoLevel       *twolevel.Config `json:"two_level,omitempty"`
	ReadPorts      int              `json:"read_ports,omitempty"` // port-filtering family (cache kind)
}

// CacheRecord serializes the register cache's behaviour in one run: the
// counters behind the Figure 8 miss split, the Figure 10 filtering
// fractions, and the Table 2 residency metrics.
type CacheRecord struct {
	Reads          uint64  `json:"reads"`
	Hits           uint64  `json:"hits"`
	Misses         uint64  `json:"misses"`
	MissRate       float64 `json:"miss_rate"`
	MissFiltered   uint64  `json:"miss_filtered"`
	MissCapacity   uint64  `json:"miss_capacity"`
	MissConflict   uint64  `json:"miss_conflict"`
	Writes         uint64  `json:"writes"`
	InitialWrites  uint64  `json:"initial_writes"`
	Fills          uint64  `json:"fills"`
	WritesFiltered uint64  `json:"writes_filtered"`
	Evictions      uint64  `json:"evictions"`
	Invalidations  uint64  `json:"invalidations"`
	Victims        uint64  `json:"victims"`
	VictimsZeroUse uint64  `json:"victims_zero_use"`
	Residencies    uint64  `json:"residencies"`
	MeanLifetime   float64 `json:"mean_entry_lifetime_cycles"`
	MeanOccupancy  float64 `json:"mean_occupancy_entries"`
}

// RunRecord is one (scheme, benchmark) simulation's results.
type RunRecord struct {
	Scheme SchemeRecord `json:"scheme"`
	Bench  string       `json:"bench"`
	Insts  uint64       `json:"insts"`

	Cycles  uint64  `json:"cycles"`
	Retired uint64  `json:"retired"`
	IPC     float64 `json:"ipc"`

	BypassFrac      float64 `json:"bypass_frac"`
	Mispredicts     uint64  `json:"mispredicts"`
	Replays         uint64  `json:"replays"`
	RCMissEvents    uint64  `json:"rc_miss_events"`
	UsePredAccuracy float64 `json:"use_pred_accuracy"`
	UsePredCoverage float64 `json:"use_pred_coverage"`

	BackingReads  uint64 `json:"backing_reads,omitempty"`
	BackingWrites uint64 `json:"backing_writes,omitempty"`

	Cache *CacheRecord `json:"cache,omitempty"`

	// Threads is the requested hardware-context count for multithreaded
	// workloads (absent = single-context), ThreadStats the per-context
	// counter block, and PortConflictStalls the port-filtering scheme
	// family's stall counter. All schema v3; absent before.
	Threads            int            `json:"threads,omitempty"`
	ThreadStats        []ThreadRecord `json:"thread_stats,omitempty"`
	PortConflictStalls uint64         `json:"port_conflict_stalls,omitempty"`

	Intervals *IntervalRecord `json:"intervals,omitempty"`

	// Timing is the service-side latency breakdown for this point (schema
	// v2, present only when the requester asked for timings). It describes
	// where wall-clock went, never what was computed — two runs of the same
	// point differ here while agreeing everywhere else.
	Timing *TimingRecord `json:"timing,omitempty"`
}

// TimingRecord serializes one point's PointTiming.
type TimingRecord struct {
	Outcome       string  `json:"outcome"` // simulated, store, coalesced
	QueueWaitMS   float64 `json:"queue_wait_ms"`
	StoreLookupMS float64 `json:"store_lookup_ms,omitempty"`
	SimMS         float64 `json:"sim_ms,omitempty"`
	StitchMS      float64 `json:"stitch_ms,omitempty"`
}

// NewTimingRecord serializes t.
func NewTimingRecord(t PointTiming) *TimingRecord {
	return &TimingRecord{
		Outcome:       t.Outcome,
		QueueWaitMS:   t.QueueWaitMS,
		StoreLookupMS: t.StoreLookupMS,
		SimMS:         t.SimMS,
		StitchMS:      t.StitchMS,
	}
}

// ThreadRecord serializes one hardware context's counters in a
// multithreaded run (schema v3). The per-context blocks must reconcile
// with the machine totals — cmd/checkresults enforces retired summing to
// the run total and reads = hits + misses per context.
type ThreadRecord struct {
	Thread             int    `json:"thread"`
	Fetched            uint64 `json:"fetched"`
	Retired            uint64 `json:"retired"`
	Squashed           uint64 `json:"squashed"`
	Mispredicts        uint64 `json:"mispredicts"`
	CacheReads         uint64 `json:"cache_reads,omitempty"`
	CacheHits          uint64 `json:"cache_hits,omitempty"`
	CacheMisses        uint64 `json:"cache_misses,omitempty"`
	PortConflictStalls uint64 `json:"port_conflict_stalls,omitempty"`
}

// IntervalRecord serializes how an interval-parallel run was stitched: the
// split, the discarded warm-up work, and the load-balance spread. Serial
// runs (and K=1 guard runs, which are bit-identical to serial) omit it.
type IntervalRecord struct {
	K             int     `json:"k"`
	WarmupInsts   uint64  `json:"warmup_insts"`
	WarmupRetired uint64  `json:"warmup_retired"`
	WarmupCycles  uint64  `json:"warmup_cycles"`
	WarmupFrac    float64 `json:"warmup_frac"`
	Skew          float64 `json:"skew"`
}

// RunnerRecord serializes the run layer's counters for one process.
type RunnerRecord struct {
	Workers        int     `json:"workers"`
	JobsRun        uint64  `json:"jobs_run"`
	CacheHits      uint64  `json:"cache_hits"`
	StoreHits      uint64  `json:"store_hits,omitempty"`
	StoreWrites    uint64  `json:"store_writes,omitempty"`
	StoreErrors    uint64  `json:"store_errors,omitempty"`
	StoreCorrupt   uint64  `json:"store_corrupt,omitempty"`
	IntervalRuns   uint64  `json:"interval_runs,omitempty"`
	Errors         uint64  `json:"errors"`
	SimWallSeconds float64 `json:"sim_wall_seconds"`
}

// ResultsFile is the top-level -json document.
type ResultsFile struct {
	SchemaVersion int           `json:"schema_version"`
	Generator     string        `json:"generator"` // regsim, experiments
	CreatedAt     string        `json:"created_at,omitempty"`
	WallSeconds   float64       `json:"wall_seconds"`
	Runner        *RunnerRecord `json:"runner,omitempty"`
	Runs          []RunRecord   `json:"runs"`
}

// NewSchemeRecord serializes s.
func NewSchemeRecord(s Scheme) SchemeRecord {
	rec := SchemeRecord{
		Name:           s.Name,
		Kind:           s.Kind.String(),
		RFLatency:      s.RFLatency,
		BackingLatency: s.BackingLatency,
		OracleUses:     s.OracleUses,
	}
	switch s.Kind {
	case pipeline.SchemeCache:
		c := s.Cache
		rec.Cache = &c
		rec.ReadPorts = s.ReadPorts
	case pipeline.SchemeTwoLevel:
		t := s.TwoLevel
		rec.TwoLevel = &t
	}
	return rec
}

// NewRunRecord serializes one run's results.
func NewRunRecord(bench string, s Scheme, o Options, r pipeline.Result) RunRecord {
	o = o.withDefaults()
	rec := RunRecord{
		Scheme:          NewSchemeRecord(s),
		Bench:           bench,
		Insts:           o.Insts,
		Cycles:          r.Stats.Cycles,
		Retired:         r.Stats.Retired,
		IPC:             r.IPC,
		BypassFrac:      r.BypassFrac,
		Mispredicts:     r.Stats.Mispredicts,
		Replays:         r.Stats.Replays,
		RCMissEvents:    r.Stats.RCMissEvents,
		UsePredAccuracy: r.UsePredAccuracy,
		UsePredCoverage: r.UsePredCoverage,
		BackingReads:    r.BackingReads,
		BackingWrites:   r.BackingWrites,
	}
	if o.Threads > 1 {
		rec.Threads = o.Threads
	}
	rec.PortConflictStalls = r.Stats.PortConflictStalls
	for _, ts := range r.Threads {
		rec.ThreadStats = append(rec.ThreadStats, ThreadRecord{
			Thread:             ts.Thread,
			Fetched:            ts.Fetched,
			Retired:            ts.Retired,
			Squashed:           ts.Squashed,
			Mispredicts:        ts.Mispredicts,
			CacheReads:         ts.CacheReads,
			CacheHits:          ts.CacheHits,
			CacheMisses:        ts.CacheMisses,
			PortConflictStalls: ts.PortConflictStalls,
		})
	}
	if iv := r.Intervals; iv != nil {
		rec.Intervals = &IntervalRecord{
			K:             iv.K,
			WarmupInsts:   iv.WarmupInsts,
			WarmupRetired: iv.WarmupRetired,
			WarmupCycles:  iv.WarmupCycles,
			WarmupFrac:    iv.WarmupFrac(),
			Skew:          iv.Skew(),
		}
	}
	if s.Kind == pipeline.SchemeCache {
		cs := r.Cache
		rec.Cache = &CacheRecord{
			Reads:          cs.Reads,
			Hits:           cs.Hits,
			Misses:         cs.Misses,
			MissRate:       cs.MissRate(),
			MissFiltered:   cs.MissBy[core.MissFiltered],
			MissCapacity:   cs.MissBy[core.MissCapacity],
			MissConflict:   cs.MissBy[core.MissConflict],
			Writes:         cs.Writes,
			InitialWrites:  cs.InitialWrites,
			Fills:          cs.Fills,
			WritesFiltered: cs.WritesFiltered,
			Evictions:      cs.Evictions,
			Invalidations:  cs.Invalidations,
			Victims:        cs.Victims,
			VictimsZeroUse: cs.VictimsZeroUse,
			Residencies:    cs.Residencies,
			MeanLifetime:   cs.MeanEntryLifetime(),
			MeanOccupancy:  cs.MeanOccupancy(r.Stats.Cycles),
		}
	}
	return rec
}

// Records serializes the suite's per-benchmark results in suite order
// (benchmarks that failed are absent).
func (sr *SuiteResult) Records(o Options) []RunRecord {
	out := make([]RunRecord, 0, len(sr.Order))
	for _, b := range sr.Order {
		r, ok := sr.PerBench[b]
		if !ok {
			continue
		}
		out = append(out, NewRunRecord(b, sr.Scheme, o, r))
	}
	return out
}

// NewResultsFile assembles the top-level document. runner may be nil.
func NewResultsFile(generator string, runs []RunRecord, runner *Runner, wall time.Duration) *ResultsFile {
	f := &ResultsFile{
		SchemaVersion: ResultsSchemaVersion,
		Generator:     generator,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		WallSeconds:   wall.Seconds(),
		Runs:          runs,
	}
	if runner != nil {
		st := runner.Stats()
		f.Runner = &RunnerRecord{
			Workers:        runner.Workers(),
			JobsRun:        st.JobsRun,
			CacheHits:      st.CacheHits,
			StoreHits:      st.StoreHits,
			StoreWrites:    st.StoreWrites,
			StoreErrors:    st.StoreErrors,
			StoreCorrupt:   st.StoreCorrupt,
			IntervalRuns:   st.IntervalRuns,
			Errors:         st.Errors,
			SimWallSeconds: st.SimWall.Seconds(),
		}
	}
	return f
}

// RunnerRecords serializes every successfully memoized job of a runner —
// the "everything this process simulated" export cmd/experiments -json
// writes.
func RunnerRecords(r *Runner) []RunRecord {
	jobs := r.CompletedJobs()
	out := make([]RunRecord, 0, len(jobs))
	for _, jr := range jobs {
		out = append(out, NewRunRecord(jr.Job.Bench, jr.Job.Scheme, jr.Job.Opts, jr.Result))
	}
	return out
}

// WriteResults writes the document to path as indented JSON.
func WriteResults(path string, f *ResultsFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("sim: marshal results: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("sim: write results: %w", err)
	}
	return nil
}

// ReadResults reads and validates a -json document: it must parse and
// carry a known schema version (the CI round-trip check).
func ReadResults(path string) (*ResultsFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: read results: %w", err)
	}
	var f ResultsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sim: parse results %s: %w", path, err)
	}
	if f.SchemaVersion < 1 || f.SchemaVersion > ResultsSchemaVersion {
		return nil, fmt.Errorf("sim: results %s: schema version %d outside [1,%d]", path, f.SchemaVersion, ResultsSchemaVersion)
	}
	return &f, nil
}
