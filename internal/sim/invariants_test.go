package sim

// Cross-cutting invariant/property tests over the default scheme matrix:
// instead of fingerprinting exact counter values (which perf refactors
// legitimately change), these assert the accounting *identities* that any
// correct simulation must satisfy — conservation laws between the read,
// write, and residency streams, bounded rates, and sane aggregate shapes.
// A hot-loop rewrite that breaks bookkeeping fails here with a named
// identity rather than an opaque fingerprint mismatch.

import (
	"context"
	"fmt"
	"testing"

	"regcache/internal/core"
	"regcache/internal/pipeline"
)

// invariantInsts keeps the matrix sweep fast while leaving every counter
// far from trivial (tens of thousands of events per stream).
const invariantInsts = 20_000

func TestMatrixInvariants(t *testing.T) {
	r := NewRunnerWith(0, NewWorkloadCache())
	defer r.Close()
	schemes := append(DefaultMatrix(), UseBased(64, 2, core.IndexFilteredRR).WithOracle())
	benches := QuickBenchmarks()
	o := Options{Insts: invariantInsts}
	r.Prefetch(benches, schemes, o)
	for _, s := range schemes {
		for _, b := range benches {
			s, b := s, b
			t.Run(fmt.Sprintf("%s/%s", s.Name, b), func(t *testing.T) {
				res, err := r.Run(context.Background(), b, s, o)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				checkPipelineInvariants(t, s, res)
				if s.Kind == pipeline.SchemeCache {
					checkCacheInvariants(t, s, res)
				} else {
					checkNoCacheStats(t, res)
				}
			})
		}
	}
}

// checkPipelineInvariants asserts the scheme-independent identities.
func checkPipelineInvariants(t *testing.T, s Scheme, res pipeline.Result) {
	t.Helper()
	st := res.Stats
	if st.Cycles == 0 {
		t.Fatalf("Cycles = 0")
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v, want > 0", res.IPC)
	}
	if st.Retired < invariantInsts {
		t.Errorf("Retired = %d, want >= the %d budget", st.Retired, invariantInsts)
	}
	if st.Retired > st.Fetched {
		t.Errorf("Retired %d > Fetched %d: instructions retired that were never fetched", st.Retired, st.Fetched)
	}
	if ipc := float64(st.Retired) / float64(st.Cycles); !closeTo(res.IPC, ipc) {
		t.Errorf("IPC %v inconsistent with Retired/Cycles = %v", res.IPC, ipc)
	}
	inUnit(t, "BypassFrac", res.BypassFrac)
	inUnit(t, "UsePredAccuracy", res.UsePredAccuracy)
	inUnit(t, "UsePredCoverage", res.UsePredCoverage)
	if st.BypassReads > st.SrcOperands {
		t.Errorf("BypassReads %d > SrcOperands %d", st.BypassReads, st.SrcOperands)
	}
	if st.Mispredicts > st.PredictedWrong {
		t.Errorf("Mispredicts %d > PredictedWrong %d: recovered more mispredictions than were fetched wrong", st.Mispredicts, st.PredictedWrong)
	}
}

// checkCacheInvariants asserts the register cache conservation laws.
func checkCacheInvariants(t *testing.T, s Scheme, res pipeline.Result) {
	t.Helper()
	c := res.Cache
	if c.Reads == 0 || c.Writes == 0 {
		t.Fatalf("cache saw no traffic (reads %d, writes %d)", c.Reads, c.Writes)
	}

	// Read stream: every lookup is a hit or exactly one class of miss.
	if c.Reads != c.Hits+c.Misses {
		t.Errorf("Reads %d != Hits %d + Misses %d", c.Reads, c.Hits, c.Misses)
	}
	var missSum uint64
	for _, m := range c.MissBy {
		missSum += m
	}
	if c.Misses != missSum {
		t.Errorf("Misses %d != sum of miss classes %d", c.Misses, missSum)
	}
	inUnit(t, "MissRate", c.MissRate())
	inUnit(t, "HitRate", c.HitRate())

	// Write stream: every produced value is either written initially or
	// filtered, and every write is an initial write or a fill.
	if c.Writes != c.InitialWrites+c.Fills {
		t.Errorf("Writes %d != InitialWrites %d + Fills %d", c.Writes, c.InitialWrites, c.Fills)
	}
	if c.Produced != c.InitialWrites+c.WritesFiltered {
		t.Errorf("Produced %d != InitialWrites %d + WritesFiltered %d", c.Produced, c.InitialWrites, c.WritesFiltered)
	}

	// Residency accounting: every eviction and invalidation finalizes a
	// residency (in-place fill refreshes finalize extras), and every
	// residency began with a write; the shortfall vs Writes is only the
	// entries still resident at the end of the run.
	if c.Residencies < c.Evictions+c.Invalidations {
		t.Errorf("Residencies %d < Evictions %d + Invalidations %d", c.Residencies, c.Evictions, c.Invalidations)
	}
	if c.Residencies > c.Writes {
		t.Errorf("Residencies %d > Writes %d: a residency must start with a write", c.Residencies, c.Writes)
	}
	if c.CachedNeverRead > c.Residencies {
		t.Errorf("CachedNeverRead %d > Residencies %d", c.CachedNeverRead, c.Residencies)
	}

	// Replacement: zero-use victims are a subset of victims.
	if c.VictimsZeroUse > c.Victims {
		t.Errorf("VictimsZeroUse %d > Victims %d", c.VictimsZeroUse, c.Victims)
	}
	if c.Evictions > c.Victims {
		t.Errorf("Evictions %d > Victims %d", c.Evictions, c.Victims)
	}

	// Per-value lifecycle: cached values were inserted at least once.
	if c.NeverCached > c.ValuesFreed {
		t.Errorf("NeverCached %d > ValuesFreed %d", c.NeverCached, c.ValuesFreed)
	}
	if cached := c.ValuesFreed - c.NeverCached; c.InsertionsPerValue < cached {
		t.Errorf("InsertionsPerValue %d < cached values %d", c.InsertionsPerValue, cached)
	}

	// Occupancy can never exceed the configured capacity.
	if occ := c.MeanOccupancy(res.Stats.Cycles); occ < 0 || occ > float64(s.Cache.Entries) {
		t.Errorf("MeanOccupancy %v outside [0, %d]", occ, s.Cache.Entries)
	}
	if c.MeanEntryLifetime() < 0 {
		t.Errorf("MeanEntryLifetime %v < 0", c.MeanEntryLifetime())
	}
	inUnit(t, "FracVictimsZeroUse", c.FracVictimsZeroUse())
	inUnit(t, "FracCachedNeverRead", c.FracCachedNeverRead())
	inUnit(t, "FracWritesFiltered", c.FracWritesFiltered())
	inUnit(t, "FracNeverCached", c.FracNeverCached())
}

// checkNoCacheStats asserts non-cache schemes leave the cache counters
// untouched (a regression here means a scheme is double-driving the
// register cache model).
func checkNoCacheStats(t *testing.T, res pipeline.Result) {
	t.Helper()
	c := res.Cache
	if c.Reads != 0 || c.Writes != 0 || c.Residencies != 0 {
		t.Errorf("non-cache scheme drove the cache model: reads %d, writes %d, residencies %d",
			c.Reads, c.Writes, c.Residencies)
	}
	if res.Stats.RFReads == 0 {
		t.Errorf("non-cache scheme read nothing from the register file")
	}
}

func inUnit(t *testing.T, name string, v float64) {
	t.Helper()
	if v < 0 || v > 1 || v != v {
		t.Errorf("%s = %v, want within [0,1]", name, v)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
