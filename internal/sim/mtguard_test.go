package sim

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"
)

// goldenRunFingerprints pins the serialized RunRecord of every
// default-matrix scheme at 50k instructions, captured from the
// single-context pipeline immediately before the multithreaded-workload
// refactor. The refactored machine at Threads=1 must reproduce these
// records byte-for-byte: the single-context configuration is the identity
// of the multithreaded generalization (thread-0 address/PC salts are
// no-ops, the round-robin fetch and retire rotors reduce to the classic
// walks, and every new result field is omitempty at its zero value).
//
// If this test fails, the refactor changed single-context timing or the
// results wire format — both are regressions, not re-baselining events.
var goldenRunFingerprints = map[string]map[string]string{
	"gzip": {
		"rf-1cyc":              "09a4ce37d4e9ae68449f7b92d4397e340ea10fc22f6711a2efa4fe46c701fcae",
		"rf-3cyc":              "9e83dd3b62b23de96f43a495a191696ab6675bea74ea0b6651eae785a00232bc",
		"use-64x2-preg":        "249ba3556f7fd1a222af4e5f4fd7bd4e1aede853685b24d3335aa21635f1610a",
		"use-64x2-round-robin": "ee1763c44e478853a50289e19576d91bc6a79c858580b707be6377edf8f90cf7",
		"use-64x2-minimum":     "9f2653d9f97a56b3c84f1228fdfce7c63a7fa8d2134de2ebb84113d8154c9676",
		"use-64x2-filtered":    "a387f846b0b7f7a65954c0a9c6ed6a8fc3a59b8697c91ed9e4c24282b656092b",
		"lru-64x2-round-robin": "bca53789b24e065c2318f9fab24f834e8b1d49a3030d4709821feb9a89da587f",
		"nb-64x2-round-robin":  "07881184aa1453fcf3bef709027c961b9bcc3515b886bd253976e93ab2193b79",
		"twolevel-96":          "5343057366325a0017ebf10e8e9de82b85c259d5587d549bcad75165720df6d7",
	},
	"mcf": {
		"rf-1cyc":              "75a8167d3138d9bf1ddb7b0707790d8ece4485b964641a83b6e5f51256cb5c67",
		"rf-3cyc":              "2106697bcebb7a9882cb8634985f3170f55571e771bab1bcac48a75eb5a7ace0",
		"use-64x2-preg":        "5793211e7703b643d49cec336827acbf5f194fe7cddb9cf10861c729f7cf0c2f",
		"use-64x2-round-robin": "49c95685fe68fedde99ea9cb774b6b9b162e2cbca52a070220570f3493708b80",
		"use-64x2-minimum":     "9fe8dc9dbd27e03dac49858d0432aeaeaa957b3261642e9f5de05dff2e930da8",
		"use-64x2-filtered":    "fb83b81e7570f8b3a0b5251197d37c206f7093a9209cb677f25e43f81015ee64",
		"lru-64x2-round-robin": "170637a6c7dfbea4ae7adc466d794362566bec7a1dc9c39674f6dba41bdfe59d",
		"nb-64x2-round-robin":  "d69251600b65b24fe855714c0ba1218a0cf9f0073ce290f0d3c9bd81edd02bc5",
		"twolevel-96":          "fdd84dd24b3da184ef3b1b9756b53a0af87651dc59d9c63a643df9a960916fe7",
	},
}

// TestSingleContextGoldenFingerprints: the multithreaded pipeline at
// Threads=1 is bit-identical — timing and serialized results — to the
// pre-refactor single-context machine, for every default-matrix scheme.
func TestSingleContextGoldenFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("18 x 50k-inst runs")
	}
	o := Options{Insts: 50_000}
	for bench, want := range goldenRunFingerprints {
		for _, sc := range DefaultMatrix() {
			exp, ok := want[sc.Name]
			if !ok {
				t.Errorf("%s/%s: no pinned fingerprint for matrix scheme (update the table deliberately)", bench, sc.Name)
				continue
			}
			res, err := Execute(bench, sc, o)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, sc.Name, err)
			}
			data, err := json.Marshal(NewRunRecord(bench, sc, o, res))
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", bench, sc.Name, err)
			}
			got := fmt.Sprintf("%x", sha256.Sum256(data))
			if got != exp {
				t.Errorf("%s/%s: RunRecord fingerprint drifted from the pre-multithreading pipeline:\n got %s\nwant %s",
					bench, sc.Name, got, exp)
			}
		}
	}
}
