// Package sim binds workloads to machine configurations and runs them:
// named register-storage schemes (the paper's design points and reference
// designs), per-benchmark runs, and suite-level aggregation. The experiment
// harness (internal/experiments) is built on top of it.
package sim

import (
	"context"
	"errors"
	"fmt"

	"regcache/internal/core"
	"regcache/internal/obs"
	"regcache/internal/pipeline"
	"regcache/internal/prog"
	"regcache/internal/stats"
	"regcache/internal/twolevel"
)

// Scheme is a named register-storage configuration.
type Scheme struct {
	Name           string
	Kind           pipeline.Scheme
	RFLatency      int // monolithic file latency
	BackingLatency int // backing file latency behind a cache
	Cache          core.Config
	TwoLevel       twolevel.Config
	OracleUses     bool // perfect degree-of-use knowledge (ablation)

	// ReadPorts > 0 selects the port-filtering scheme family (cache kind
	// only): the backing file exposes that many read ports per cycle and
	// fills beyond them queue, charging port-conflict stalls. 0 is the
	// legacy single-serialized-port backing file.
	ReadPorts int
}

// WithOracle returns a copy of s using perfect degree-of-use knowledge
// from a functional pre-pass instead of the history-based predictor.
func (s Scheme) WithOracle() Scheme {
	s.OracleUses = true
	s.Name = s.Name + "-oracle"
	return s
}

// WithPorts returns a copy of s as a port-filtering design point: the
// backing file behind the cache exposes n read ports per cycle, with
// explicit arbitration and port-conflict stall accounting. Only valid on
// cache-kind schemes (Validate rejects the rest).
func (s Scheme) WithPorts(n int) Scheme {
	s.ReadPorts = n
	s.Name = fmt.Sprintf("%s-p%d", s.Name, n)
	return s
}

// PortFiltered returns the port-filtering family's canonical member: the
// paper's use-based cache with the backing file constrained to n read
// ports. Cache hits bypass the backing file entirely, so the cache acts as
// a port filter — the fewer the ports, the more the hit rate matters.
func PortFiltered(entries, ways int, index core.IndexScheme, ports int) Scheme {
	s := UseBased(entries, ways, index)
	s.Name = fmt.Sprintf("port-%dx%d-%s-p%d", entries, ways, index, ports)
	s.ReadPorts = ports
	return s
}

// Monolithic returns the baseline machine with an L-cycle register file.
func Monolithic(latency int) Scheme {
	return Scheme{
		Name:      fmt.Sprintf("rf-%dcyc", latency),
		Kind:      pipeline.SchemeMonolithic,
		RFLatency: latency,
	}
}

// UseBased returns the paper's register cache with use-based insertion and
// replacement at the given geometry and index scheme.
func UseBased(entries, ways int, index core.IndexScheme) Scheme {
	return Scheme{
		Name: fmt.Sprintf("use-%dx%d-%s", entries, ways, index),
		Kind: pipeline.SchemeCache,
		Cache: core.Config{
			Entries: entries, Ways: ways,
			Insert: core.InsertUseBased, Replace: core.ReplaceUseBased,
			Index: index, ClassifyMisses: true,
		},
	}
}

// LRU returns the Yung & Wilhelm reference cache.
func LRU(entries, ways int, index core.IndexScheme) Scheme {
	return Scheme{
		Name: fmt.Sprintf("lru-%dx%d-%s", entries, ways, index),
		Kind: pipeline.SchemeCache,
		Cache: core.Config{
			Entries: entries, Ways: ways,
			Insert: core.InsertAlways, Replace: core.ReplaceLRU,
			Index: index, ClassifyMisses: true,
		},
	}
}

// NonBypass returns the Cruz et al. reference cache.
func NonBypass(entries, ways int, index core.IndexScheme) Scheme {
	return Scheme{
		Name: fmt.Sprintf("nb-%dx%d-%s", entries, ways, index),
		Kind: pipeline.SchemeCache,
		Cache: core.Config{
			Entries: entries, Ways: ways,
			Insert: core.InsertNonBypass, Replace: core.ReplaceLRU,
			Index: index, ClassifyMisses: true,
		},
	}
}

// TwoLevel returns the optimistic two-level register file with the given
// L1 capacity and L2 latency.
func TwoLevel(l1Entries, l2Latency int) Scheme {
	return Scheme{
		Name:     fmt.Sprintf("twolevel-%d", l1Entries),
		Kind:     pipeline.SchemeTwoLevel,
		TwoLevel: twolevel.Config{L1Entries: l1Entries, L2Latency: l2Latency},
	}
}

// WithBacking returns a copy of s with the backing file latency overridden
// (Figure 12 sweeps it).
func (s Scheme) WithBacking(latency int) Scheme {
	s.BackingLatency = latency
	s.Name = fmt.Sprintf("%s-b%d", s.Name, latency)
	return s
}

// Options controls a run.
type Options struct {
	Insts          uint64 // dynamic instructions per benchmark
	TrackLifetimes bool
	TrackLive      bool

	// Intervals > 1 splits the run into that many checkpointed intervals
	// simulated in parallel (see internal/pipeline interval.go): exact
	// architectural stream, bounded warm-up error on timing counters,
	// reported in Result.Intervals. Intervals == 1 routes through the
	// interval executor with a single interval — bit-identical to serial,
	// the guard mode the tests pin. <= 0 is the serial path. Lifetime/live
	// tracking needs one pipeline spanning the whole run, so those runs
	// stay serial regardless.
	Intervals int
	// WarmupInsts is the per-interval warm-up budget when Intervals > 1
	// (0 selects DefaultWarmupInsts). Ignored when serial.
	WarmupInsts uint64

	// Threads > 1 runs a multithreaded workload: that many deterministic
	// per-context instruction streams (context 0 is the benchmark itself,
	// higher contexts are context-salted regenerations of the same
	// profile) interleaved over one shared physical file, register cache,
	// and memory hierarchy. Threads <= 1 canonicalizes to 0, the classic
	// single-context machine. Multithreaded runs are always serial:
	// interval checkpoints capture a single-context stream, so Intervals
	// and WarmupInsts are forced to zero.
	Threads int
	// Interleave is the round-robin fetch quantum in instructions for
	// multithreaded runs (0 selects the pipeline default, 8). Zeroed when
	// single-context so memo and store keys stay canonical.
	Interleave int
}

// MaxThreads bounds wire-supplied thread counts. The pipeline requires
// 64 architectural registers of identity physical state per context plus
// headroom to rename (Threads*64 + 64 <= NumPRegs = 512), and the service
// plane wants a hard ceiling on per-request cost; 4 contexts covers the
// documented experiments with margin below the structural limit of 7.
const MaxThreads = 4

// DefaultInsts is the per-benchmark instruction budget used when an
// Options.Insts is zero. The paper simulates 2 B instructions per
// benchmark; register cache behaviour reaches steady state within tens of
// thousands of cycles, so a scaled-down budget preserves the comparisons
// (see DESIGN.md).
const DefaultInsts = 200_000

// DefaultWarmupInsts is the per-interval warm-up budget when interval
// parallelism is requested without one. The slow-warming state (memory
// hierarchy tags) is functionally warmed by the checkpoint capture pass,
// so the window only has to re-converge predictors, register cache
// contents, and fill timing, which settle within a few thousand
// instructions; the measured stats delta against serial runs is
// documented in DESIGN.md.
const DefaultWarmupInsts = 5_000

func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = DefaultInsts
	}
	if o.Intervals < 0 {
		o.Intervals = 0
	}
	if o.Threads <= 1 {
		o.Threads = 0
		o.Interleave = 0
	} else {
		// Multithreaded runs are serial (see Threads doc); canonicalize
		// the interval knobs away so they never fork memo or store keys.
		o.Intervals = 0
		if o.Interleave < 1 {
			o.Interleave = 8
		}
	}
	if o.Intervals <= 1 {
		// Serial and single-interval runs have no warm-up window; zeroing
		// the knob keeps memo and store keys canonical.
		o.WarmupInsts = 0
	} else if o.WarmupInsts == 0 {
		o.WarmupInsts = DefaultWarmupInsts
	}
	return o
}

// Workload returns the named built-in benchmark program from the shared
// workload cache (see workload.go).
func Workload(name string) (*prog.Program, error) {
	return DefaultWorkloads().Program(name)
}

// config assembles the pipeline configuration for a scheme.
func (s Scheme) config(o Options) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = s.Kind
	if s.RFLatency != 0 {
		cfg.RFLatency = s.RFLatency
	}
	if s.BackingLatency != 0 {
		cfg.BackingLatency = s.BackingLatency
	}
	if s.Kind == pipeline.SchemeCache {
		cfg.CacheCfg = s.Cache
		cfg.ReadPorts = s.ReadPorts
	}
	if s.Kind == pipeline.SchemeTwoLevel {
		cfg.TwoLevelCfg = s.TwoLevel
	}
	cfg.OracleUses = s.OracleUses
	cfg.TrackLifetimes = o.TrackLifetimes
	cfg.TrackLiveCounts = o.TrackLive
	if o.Threads > 1 {
		cfg.Threads = o.Threads
		cfg.InterleaveGranularity = o.Interleave
	}
	return cfg
}

// Execute simulates one benchmark under one scheme directly, bypassing the
// memoizing run layer but sharing the process-wide workload cache. Use it
// when the simulation itself is the thing being measured (throughput
// benchmarks); everything else should call Run.
func Execute(bench string, s Scheme, o Options) (pipeline.Result, error) {
	return ExecuteWith(DefaultWorkloads(), bench, s, o)
}

// ExecuteWith simulates one benchmark under one scheme using the given
// workload cache for the pre-decoded program and (for oracle schemes) the
// shared functional pre-pass table.
func ExecuteWith(wc *WorkloadCache, bench string, s Scheme, o Options) (pipeline.Result, error) {
	res, _, err := executeTraced(wc, bench, s, o, nil)
	return res, err
}

// executeTraced is ExecuteWith with request-scoped tracing: a non-nil sp
// gains per-interval warm-up/measured child spans and a stitch span, and
// the returned stitchNS reports the merge cost for the per-point timing
// breakdown. A nil sp (every caller outside the service runner) is the
// zero-overhead path.
func executeTraced(wc *WorkloadCache, bench string, s Scheme, o Options, sp *obs.Span) (res pipeline.Result, stitchNS int64, err error) {
	o = o.withDefaults()
	if o.Intervals >= 1 && !o.TrackLifetimes && !o.TrackLive {
		return executeIntervals(wc, bench, s, o, sp)
	}
	pl, err := buildPipeline(wc, bench, s, o)
	if err != nil {
		return pipeline.Result{}, 0, err
	}
	return pl.RunWindowSpans(0, o.Insts, sp), 0, nil
}

// executeIntervals runs one benchmark as Options.Intervals checkpointed
// parallel intervals, drawing the program, checkpoint set and (for oracle
// schemes) pre-pass table from the workload cache so repeated interval
// runs against the same workload share one functional pass.
func executeIntervals(wc *WorkloadCache, bench string, s Scheme, o Options, sp *obs.Span) (pipeline.Result, int64, error) {
	p, err := wc.Program(bench)
	if err != nil {
		return pipeline.Result{}, 0, err
	}
	cfg := s.config(o)
	cks, err := wc.Checkpoints(bench, o.Insts, o.Intervals, o.WarmupInsts, cfg.Mem)
	if err != nil {
		return pipeline.Result{}, 0, err
	}
	var tm pipeline.IntervalTiming
	io := pipeline.IntervalOptions{
		K: o.Intervals, Warmup: o.WarmupInsts, Checkpoints: cks,
		Span: sp, Timing: &tm,
	}
	if s.OracleUses {
		if io.Oracle, err = wc.Oracle(bench, o.Insts); err != nil {
			return pipeline.Result{}, 0, err
		}
	}
	res := pipeline.RunIntervals(cfg, p, o.Insts, io)
	return res, tm.StitchNS, nil
}

// buildPipeline constructs (but does not run) a pipeline with every shared
// workload artifact injected.
func buildPipeline(wc *WorkloadCache, bench string, s Scheme, o Options) (*pipeline.Pipeline, error) {
	if o.Threads > 1 {
		if o.Threads > MaxThreads {
			return nil, fmt.Errorf("sim: %d threads exceeds the limit of %d", o.Threads, MaxThreads)
		}
		progs := make([]*prog.Program, o.Threads)
		for tid := range progs {
			p, err := wc.ThreadProgram(bench, tid)
			if err != nil {
				return nil, err
			}
			progs[tid] = p
		}
		pl := pipeline.NewMulti(s.config(o), progs)
		if s.OracleUses {
			// Context 0's table is the shared single-context pre-pass;
			// higher contexts build theirs lazily on first run (their
			// programs are not shared outside this thread count).
			t, err := wc.Oracle(bench, o.Insts)
			if err != nil {
				return nil, err
			}
			pl.SetOracle(t)
		}
		return pl, nil
	}
	p, err := wc.Program(bench)
	if err != nil {
		return nil, err
	}
	pl := pipeline.New(s.config(o), p)
	if s.OracleUses {
		t, err := wc.Oracle(bench, o.Insts)
		if err != nil {
			return nil, err
		}
		pl.SetOracle(t)
	}
	return pl, nil
}

// Run simulates one benchmark under one scheme through the shared
// memoizing runner: a repeated (scheme, benchmark, options) triple
// simulates once per process.
func Run(bench string, s Scheme, o Options) (pipeline.Result, error) {
	return DefaultRunner().Run(context.Background(), bench, s, o)
}

// RunPipeline builds (but does not run) a pipeline for callers that need
// access to internal structures after the run (lifetime tracking, tracers).
// The shared workload cache supplies the program and any oracle table.
func RunPipeline(bench string, s Scheme, o Options) (*pipeline.Pipeline, error) {
	o = o.withDefaults()
	return buildPipeline(DefaultWorkloads(), bench, s, o)
}

// SuiteResult aggregates one scheme's results over a benchmark suite.
type SuiteResult struct {
	Scheme   Scheme
	PerBench map[string]pipeline.Result
	Order    []string
}

// RunSuite simulates every named benchmark under the scheme on the shared
// worker pool (each pipeline is independent and deterministic). On error
// it still returns the partial SuiteResult alongside every benchmark's
// error, joined.
func RunSuite(benches []string, s Scheme, o Options) (*SuiteResult, error) {
	return RunSuiteCtx(context.Background(), benches, s, o)
}

// RunSuiteCtx is RunSuite with cancellation: a cancelled context abandons
// the waits (in-flight simulations finish and stay memoized for later
// requesters).
func RunSuiteCtx(ctx context.Context, benches []string, s Scheme, o Options) (*SuiteResult, error) {
	sr := &SuiteResult{Scheme: s, PerBench: make(map[string]pipeline.Result), Order: benches}
	r := DefaultRunner()
	// Submit everything up front so the pool can run benchmarks in
	// parallel, then collect in order, draining every result: one bad
	// benchmark must not discard the others' work. Submission itself
	// honours the context (a full queue no longer strands a cancelled
	// caller).
	entries := make([]*memoEntry, len(benches))
	var errs []error
	for i, b := range benches {
		e, _, err := r.submit(ctx, Job{Scheme: s, Bench: b, Opts: o})
		if err != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", s.Name, b, err))
			continue
		}
		entries[i] = e
	}
	for i, b := range benches {
		if entries[i] == nil {
			continue
		}
		res, err := r.wait(ctx, entries[i])
		if err != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", s.Name, b, err))
			continue
		}
		sr.PerBench[b] = res
	}
	return sr, errors.Join(errs...)
}

// Prefetch enqueues every scheme×benchmark simulation on the shared runner
// without waiting. Experiments call it before their serial collection
// loops so the pool overlaps the work.
func Prefetch(benches []string, schemes []Scheme, o Options) {
	DefaultRunner().Prefetch(benches, schemes, o)
}

// RelIPC returns the geometric-mean speedup of this suite result over a
// baseline run of the same benchmarks — the aggregate used for the
// performance figures, where a per-benchmark normalization keeps
// memory-bound outliers from drowning the register-storage effects.
func (sr *SuiteResult) RelIPC(base *SuiteResult) float64 {
	var ratios []float64
	for _, b := range sr.Order {
		bb, ok := base.PerBench[b]
		if !ok || bb.IPC == 0 {
			continue
		}
		ratios = append(ratios, sr.PerBench[b].IPC/bb.IPC)
	}
	return stats.GeoMean(ratios)
}

// IPCs returns per-benchmark IPCs in suite order.
func (sr *SuiteResult) IPCs() []float64 {
	out := make([]float64, 0, len(sr.Order))
	for _, b := range sr.Order {
		out = append(out, sr.PerBench[b].IPC)
	}
	return out
}

// HMeanIPC returns the harmonic mean IPC over the suite (the conventional
// aggregate for rate metrics).
func (sr *SuiteResult) HMeanIPC() float64 { return stats.HarmonicMean(sr.IPCs()) }

// MeanMissRate returns the arithmetic mean per-operand register cache miss
// rate (zero for non-cache schemes).
func (sr *SuiteResult) MeanMissRate() float64 {
	var xs []float64
	for _, b := range sr.Order {
		r := sr.PerBench[b]
		xs = append(xs, r.Cache.MissRate())
	}
	return stats.Mean(xs)
}

// MeanMissRateBy returns the mean per-operand miss rate of one category.
func (sr *SuiteResult) MeanMissRateBy(k core.MissKind) float64 {
	var xs []float64
	for _, b := range sr.Order {
		r := sr.PerBench[b]
		xs = append(xs, r.Cache.MissRateBy(k))
	}
	return stats.Mean(xs)
}

// Mean applies f per benchmark and returns the arithmetic mean.
func (sr *SuiteResult) Mean(f func(pipeline.Result) float64) float64 {
	var xs []float64
	for _, b := range sr.Order {
		xs = append(xs, f(sr.PerBench[b]))
	}
	return stats.Mean(xs)
}

// Benchmarks returns the full built-in suite.
func Benchmarks() []string { return prog.ProfileNames() }

// QuickBenchmarks returns a 4-benchmark subset spanning the behaviour space
// (predictable loops, call-heavy, memory-bound, branchy) for fast sweeps.
func QuickBenchmarks() []string { return []string{"gzip", "gcc", "mcf", "twolf"} }
