package sim

// Run-layer tests for interval-parallel execution: the K=1 bit-identity
// guard across the full default scheme matrix, the documented stats
// epsilon for K>1, determinism of stitched runs, and the runner-level
// accounting (IntervalRuns, checkpoint-set sharing).

import (
	"context"
	"encoding/json"
	"testing"

	"regcache/internal/core"
)

// TestIntervalK1BitIdentical is the guard mode's contract at the run
// layer: Intervals=1 routes through the interval executor (checkpoint
// capture, NewAt, RunWindow) and must reproduce the serial path bit for
// bit — serialized RunRecords compare equal across the whole default
// scheme matrix.
func TestIntervalK1BitIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("determinism sweep; TestWorkloadCacheRaceHammer covers the racy paths")
	}
	benches := []string{"gzip", "mcf"}
	wc := NewWorkloadCache()
	for _, s := range workloadMatrix() {
		for _, b := range benches {
			serial, err := ExecuteWith(wc, b, s, Options{Insts: 20_000})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", s.Name, b, err)
			}
			guard, err := ExecuteWith(wc, b, s, Options{Insts: 20_000, Intervals: 1})
			if err != nil {
				t.Fatalf("%s/%s K=1: %v", s.Name, b, err)
			}
			sj, err := json.Marshal(NewRunRecord(b, s, Options{Insts: 20_000}, serial))
			if err != nil {
				t.Fatal(err)
			}
			gj, err := json.Marshal(NewRunRecord(b, s, Options{Insts: 20_000, Intervals: 1}, guard))
			if err != nil {
				t.Fatal(err)
			}
			if string(sj) != string(gj) {
				t.Errorf("%s/%s: K=1 diverged from serial:\nserial: %s\nK=1:    %s", s.Name, b, sj, gj)
			}
		}
	}
}

// TestIntervalStatsEpsilon pins the documented bounded error of stitched
// K>1 runs against their serial reference. The bound is set at roughly 2x
// the worst observed divergence across the full default matrix (~3.7% of
// IPC at this budget; see DESIGN.md, interval-parallel simulation) so the
// test fails on a regression of the warming/stitching machinery, not on
// noise. The architectural stream must stay exact: retired instructions
// match the budget to within retire-width overshoot per window boundary.
func TestIntervalStatsEpsilon(t *testing.T) {
	if raceEnabled {
		t.Skip("simulation-heavy accuracy sweep, no concurrency under test")
	}
	const insts = 60_000
	const epsilon = 0.08
	benches := []string{"gzip", "mcf"}
	schemes := []Scheme{
		Monolithic(3),
		UseBased(64, 2, core.IndexFilteredRR),
		UseBased(64, 2, core.IndexFilteredRR).WithBacking(4),
		UseBased(32, 4, core.IndexMinimum),
		UseBased(64, 2, core.IndexFilteredRR).WithOracle(),
		TwoLevel(96, 2),
	}
	wc := NewWorkloadCache()
	for _, k := range []int{2, 4} {
		for _, s := range schemes {
			for _, b := range benches {
				serial, err := ExecuteWith(wc, b, s, Options{Insts: insts})
				if err != nil {
					t.Fatalf("%s/%s serial: %v", s.Name, b, err)
				}
				par, err := ExecuteWith(wc, b, s, Options{Insts: insts, Intervals: k})
				if err != nil {
					t.Fatalf("%s/%s K=%d: %v", s.Name, b, k, err)
				}
				rel := (par.IPC - serial.IPC) / serial.IPC
				if rel < 0 {
					rel = -rel
				}
				if rel > epsilon {
					t.Errorf("%s/%s K=%d: IPC %.4f vs serial %.4f (%.2f%% off, documented epsilon %.0f%%)",
						s.Name, b, k, par.IPC, serial.IPC, 100*rel, 100*epsilon)
				}
				slack := uint64(8 * k)
				if par.Stats.Retired < insts-slack || par.Stats.Retired > insts+slack {
					t.Errorf("%s/%s K=%d: retired %d, want %d +/- %d (exact architectural stream)",
						s.Name, b, k, par.Stats.Retired, insts, slack)
				}
				iv := par.Intervals
				if iv == nil || iv.K != k {
					t.Fatalf("%s/%s K=%d: missing or wrong IntervalStats: %+v", s.Name, b, k, iv)
				}
			}
		}
	}
}

// TestIntervalDeterministic pins that interval-parallel runs are a pure
// function of their inputs at the run layer: two executions through two
// independent workload caches (fresh checkpoint captures) serialize
// identically.
func TestIntervalDeterministic(t *testing.T) {
	if raceEnabled {
		t.Skip("determinism sweep, no concurrency under test")
	}
	s := UseBased(64, 2, core.IndexFilteredRR)
	o := Options{Insts: 30_000, Intervals: 4}
	var got []string
	for i := 0; i < 2; i++ {
		r, err := ExecuteWith(NewWorkloadCache(), "gzip", s, o)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(data))
	}
	if got[0] != got[1] {
		t.Errorf("repeated interval runs diverged:\nfirst:  %s\nsecond: %s", got[0], got[1])
	}
}

// TestRunnerIntervalAccounting drives interval jobs through the memoizing
// runner and checks the layer's bookkeeping: IntervalRuns counts each
// simulated (not memoized) interval run, checkpoint sets are captured
// once per (workload, split) and shared, and serial runs are untouched.
func TestRunnerIntervalAccounting(t *testing.T) {
	wc := NewWorkloadCache()
	r := NewRunnerWith(4, wc)
	defer r.Close()

	o := Options{Insts: 8_000, Intervals: 2}
	schemes := []Scheme{UseBased(64, 2, core.IndexFilteredRR), Monolithic(3)}
	for _, s := range schemes {
		if _, err := r.Run(context.Background(), "gzip", s, o); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	// Memoized replay must not recount.
	if _, err := r.Run(context.Background(), "gzip", schemes[0], o); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), "gzip", schemes[0], Options{Insts: 8_000}); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.IntervalRuns != 2 {
		t.Errorf("IntervalRuns = %d, want 2 (one per simulated interval job)", st.IntervalRuns)
	}
	ws := wc.Stats()
	if ws.CheckpointBuilds != 1 {
		t.Errorf("CheckpointBuilds = %d, want 1 (both schemes share the default memory system)", ws.CheckpointBuilds)
	}
	if ws.CheckpointHits == 0 {
		t.Errorf("CheckpointHits = 0, want the second scheme to join the shared set")
	}
}
