package sim

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"regcache/internal/core"
)

func TestRunnerMemoizesAndSingleFlights(t *testing.T) {
	r := NewRunner(2)
	s := UseBased(16, 2, core.IndexFilteredRR)
	o := Options{Insts: 10_000}

	// Concurrent identical requests must simulate exactly once.
	const requesters = 8
	var wg sync.WaitGroup
	results := make([]float64, requesters)
	for i := 0; i < requesters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(context.Background(), "gzip", s, o)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.IPC
		}(i)
	}
	wg.Wait()
	st := r.Stats()
	if st.JobsRun != 1 {
		t.Errorf("jobs run = %d, want 1 (single flight)", st.JobsRun)
	}
	if st.CacheHits != requesters-1 {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, requesters-1)
	}
	for i := 1; i < requesters; i++ {
		if results[i] != results[0] {
			t.Fatalf("requester %d saw IPC %v, requester 0 saw %v", i, results[i], results[0])
		}
	}

	// A different budget is a different job.
	if _, err := r.Run(context.Background(), "gzip", s, Options{Insts: 12_000}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.JobsRun != 2 {
		t.Errorf("jobs run = %d after distinct-budget request, want 2", st.JobsRun)
	}
	if st := r.Stats(); st.SimWall <= 0 {
		t.Errorf("sim wall = %v, want > 0", st.SimWall)
	}
}

func TestRunnerMemoKeyNormalizesDefaults(t *testing.T) {
	r := NewRunner(1)
	s := Monolithic(1)
	// Insts 0 and DefaultInsts are the same job after normalization.
	if _, err := r.Run(context.Background(), "gzip", s, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), "gzip", s, Options{Insts: DefaultInsts}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.JobsRun != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 job / 1 hit (defaulted options collide)", st)
	}
}

func TestRunnerMemoizesErrors(t *testing.T) {
	r := NewRunner(1)
	s := Monolithic(1)
	o := Options{Insts: 1_000}
	if _, err := r.Run(context.Background(), "nonesuch", s, o); err == nil {
		t.Fatal("expected unknown-benchmark error")
	}
	if _, err := r.Run(context.Background(), "nonesuch", s, o); err == nil {
		t.Fatal("expected memoized error")
	}
	st := r.Stats()
	if st.JobsRun != 1 || st.Errors != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 job / 1 error / 1 hit", st)
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Run(ctx, "gzip", Monolithic(1), Options{Insts: 5_000})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The job itself still completes and is memoized for later callers.
	if _, err := r.Run(context.Background(), "gzip", Monolithic(1), Options{Insts: 5_000}); err != nil {
		t.Fatalf("post-cancel request failed: %v", err)
	}
}

func TestRunnerReset(t *testing.T) {
	r := NewRunner(1)
	o := Options{Insts: 5_000}
	if _, err := r.Run(context.Background(), "gzip", Monolithic(1), o); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if _, err := r.Run(context.Background(), "gzip", Monolithic(1), o); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.JobsRun != 2 {
		t.Errorf("jobs run = %d after reset, want 2", st.JobsRun)
	}
}

// RunSuite must surface an unknown-benchmark error without losing the
// other benchmarks' results (partial results + joined errors).
func TestRunSuitePartialResultsOnError(t *testing.T) {
	sr, err := RunSuite([]string{"gzip", "nonesuch", "twolf"}, UseBased(16, 2, core.IndexFilteredRR), Options{Insts: 10_000})
	if err == nil {
		t.Fatal("expected an error for the unknown benchmark")
	}
	if !strings.Contains(err.Error(), "nonesuch") {
		t.Errorf("error %q does not name the failing benchmark", err)
	}
	if sr == nil {
		t.Fatal("partial SuiteResult dropped")
	}
	if len(sr.PerBench) != 2 {
		t.Fatalf("partial results = %d benchmarks, want 2", len(sr.PerBench))
	}
	for _, b := range []string{"gzip", "twolf"} {
		if res, ok := sr.PerBench[b]; !ok || res.IPC <= 0 {
			t.Errorf("%s result missing or empty from partial suite", b)
		}
	}
}

// The memoized pool must reproduce exactly what direct serial execution
// produces, and a repeated suite must be served entirely from the memo.
func TestRunnerMatchesSerialExecution(t *testing.T) {
	benches := []string{"gzip", "mcf"}
	s := UseBased(64, 2, core.IndexFilteredRR)
	o := Options{Insts: 15_000}
	r := NewRunner(4)

	before := r.Stats()
	for _, b := range benches {
		serial, err := Execute(b, s, o)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := r.Run(context.Background(), b, s, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pooled, serial) {
			t.Fatalf("%s: pooled result differs from serial execution", b)
		}
	}
	// Second pass: all hits, identical results.
	mid := r.Stats().Sub(before)
	if mid.JobsRun != uint64(len(benches)) {
		t.Fatalf("first pass ran %d jobs, want %d", mid.JobsRun, len(benches))
	}
	for _, b := range benches {
		if _, err := r.Run(context.Background(), b, s, o); err != nil {
			t.Fatal(err)
		}
	}
	after := r.Stats().Sub(before)
	if after.JobsRun != mid.JobsRun {
		t.Errorf("second pass re-ran jobs: %d -> %d", mid.JobsRun, after.JobsRun)
	}
	if hits := after.CacheHits - mid.CacheHits; hits != uint64(len(benches)) {
		t.Errorf("second pass cache hits = %d, want %d", hits, len(benches))
	}
}

func TestPrefetchWarmsTheMemo(t *testing.T) {
	r := NewRunner(2)
	benches := []string{"gzip", "twolf"}
	schemes := []Scheme{Monolithic(1), Monolithic(3)}
	o := Options{Insts: 8_000}
	r.Prefetch(benches, schemes, o)
	for _, s := range schemes {
		for _, b := range benches {
			if _, err := r.Run(context.Background(), b, s, o); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := r.Stats()
	if st.JobsRun != 4 {
		t.Errorf("jobs run = %d, want 4 (one per scheme×bench)", st.JobsRun)
	}
	if st.CacheHits != 4 {
		t.Errorf("cache hits = %d, want 4 (every Run joined a prefetched job)", st.CacheHits)
	}
}

func TestRunnerConfiguration(t *testing.T) {
	if NewRunner(0).Workers() <= 0 {
		t.Error("defaulted worker count must be positive")
	}
	if NewRunner(3).Workers() != 3 {
		t.Error("explicit worker count ignored")
	}
	// The default runner exists after first use, and reconfiguring a live
	// pool is rejected.
	if DefaultRunner() == nil {
		t.Fatal("no default runner")
	}
	if err := ConfigureDefaultRunner(8); err == nil {
		t.Error("ConfigureDefaultRunner must fail after the default runner started")
	}
}

func TestJobKeyDistinguishesConfigs(t *testing.T) {
	a := UseBased(64, 2, core.IndexFilteredRR)
	b := a
	b.Cache.MaxUse = 3 // same name, different config (Sec53-style ablation)
	ka := Job{Scheme: a, Bench: "gzip", Opts: Options{Insts: 1000}}.Key()
	kb := Job{Scheme: b, Bench: "gzip", Opts: Options{Insts: 1000}}.Key()
	if ka == kb {
		t.Error("job keys must distinguish schemes that differ only in config")
	}
	if !strings.Contains(ka, "gzip") {
		t.Errorf("key %q missing benchmark", ka)
	}
}

// TestRunnerRecoversPanickedJob: a configuration that panics deep inside
// the simulator (here a geometry core.New rejects, built directly so it
// bypasses Scheme.Validate) must settle as a job error — the worker pool,
// and with it the daemon, survives and keeps executing other jobs.
func TestRunnerRecoversPanickedJob(t *testing.T) {
	r := NewRunnerWith(1, NewWorkloadCache())
	defer r.Close()

	bad := UseBased(64, 2, core.IndexFilteredRR)
	bad.Cache.Ways = 3 // 64 % 3 != 0: core.New panics
	_, err := r.Run(context.Background(), "gzip", bad, Options{Insts: 1000})
	if err == nil {
		t.Fatal("panicking job returned nil error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error %q does not mention the panic", err)
	}
	if st := r.Stats(); st.Errors != 1 {
		t.Errorf("runner errors = %d, want 1", st.Errors)
	}

	// The single worker that ran the panicking job still serves new work.
	res, err := r.Run(context.Background(), "gzip", Monolithic(1), Options{Insts: 1000})
	if err != nil {
		t.Fatalf("run after panicked job: %v", err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v after panicked job, want > 0", res.IPC)
	}
}
