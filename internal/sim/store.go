package sim

// This file binds the run layer to internal/store, the durable
// content-addressed result store that acts as the L2 of the cache
// hierarchy (memo → store → simulate). It supplies the two things the
// generic store deliberately does not know about: how a job is
// fingerprinted into a key, and how a completed result is encoded into a
// durable payload.
//
// Keys are a canonical SHA-256 over the versioned SchemeRecord, the
// benchmark, the defaulted Options, the ResultsFile schema version, and a
// simulator-version stamp. The stamp is the staleness guard: any change
// that alters timing behaviour must bump SimulatorVersion, after which
// every existing store entry simply stops matching — stale results are
// never served, they just age out (or are GC'd/compacted away).

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"

	"regcache/internal/pipeline"
	"regcache/internal/store"
)

// SimulatorVersion stamps every stored result with the timing model that
// produced it. Bump it whenever a change alters simulated behaviour —
// cycle counts, stats, default configuration — so a durable store never
// serves results from an older model. Pure performance work that keeps
// results bit-identical (verified by the fingerprint tests of PR 3) does
// not bump it. The ResultsFile schema version is fingerprinted alongside
// it, so a payload-layout change invalidates entries the same way.
// Version history:
//
//	1 — initial durable store.
//	2 — pipeline.Result gained use-predictor raw counters and the optional
//	    Intervals block; interval options joined the fingerprint.
//	3 — multithreaded workloads (thread/interleave options joined the
//	    fingerprint; Result gained the per-context stats block) and the
//	    port-filtering scheme family (read_ports in SchemeRecord,
//	    port-conflict stalls in Stats).
const SimulatorVersion = 3

// StorePayloadVersion versions the stored value encoding (storedResult).
const StorePayloadVersion = 1

// storeKey is the canonical key encoding hashed into a store fingerprint.
// Field order is fixed by the struct, so json.Marshal is deterministic.
type storeKey struct {
	SimVersion     int          `json:"sim_version"`
	SchemaVersion  int          `json:"schema_version"`
	Scheme         SchemeRecord `json:"scheme"`
	Bench          string       `json:"bench"`
	Insts          uint64       `json:"insts"`
	TrackLifetimes bool         `json:"track_lifetimes"`
	TrackLive      bool         `json:"track_live"`
	Intervals      int          `json:"intervals"`
	WarmupInsts    uint64       `json:"warmup_insts"`
	Threads        int          `json:"threads"`
	Interleave     int          `json:"interleave"`
}

// fingerprintJob derives the content-addressed store key for a job under
// the given simulator version.
func fingerprintJob(version int, j Job) store.Key {
	j.Opts = j.Opts.withDefaults()
	data, err := json.Marshal(storeKey{
		SimVersion:     version,
		SchemaVersion:  ResultsSchemaVersion,
		Scheme:         NewSchemeRecord(j.Scheme),
		Bench:          j.Bench,
		Insts:          j.Opts.Insts,
		TrackLifetimes: j.Opts.TrackLifetimes,
		TrackLive:      j.Opts.TrackLive,
		Intervals:      j.Opts.Intervals,
		WarmupInsts:    j.Opts.WarmupInsts,
		Threads:        j.Opts.Threads,
		Interleave:     j.Opts.Interleave,
	})
	if err != nil {
		// The key structs are plain value types; marshalling cannot fail.
		panic(fmt.Sprintf("sim: fingerprint job %s: %v", j.Key(), err))
	}
	return store.Key(sha256.Sum256(data))
}

// storedResult is the durable payload: the full pipeline.Result (so a
// store hit is indistinguishable from a fresh simulation, down to the
// bytes of the response documents built from it) plus the curated
// RunRecord for admin tooling that wants to display entries without
// knowing pipeline internals.
type storedResult struct {
	PayloadVersion int             `json:"payload_version"`
	Record         RunRecord       `json:"record"`
	Result         pipeline.Result `json:"result"`
}

// DecodeStoredResult decodes a store payload into its curated RunRecord —
// the admin CLI's `ls` view of an entry.
func DecodeStoredResult(data []byte) (RunRecord, error) {
	var sr storedResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return RunRecord{}, fmt.Errorf("sim: decode stored result: %w", err)
	}
	if sr.PayloadVersion != StorePayloadVersion {
		return RunRecord{}, fmt.Errorf("sim: stored result payload version %d, want %d",
			sr.PayloadVersion, StorePayloadVersion)
	}
	return sr.Record, nil
}

// StoreGetStatus classifies a result-store lookup.
type StoreGetStatus int

const (
	StoreGetMiss    StoreGetStatus = iota
	StoreGetHit                    // decoded result served
	StoreGetCorrupt                // entry present but CRC-bad or undecodable
)

// ResultStore adapts a generic store.Store into the run layer's durable
// result cache. It is safe for concurrent use (the underlying store
// serializes access internally).
type ResultStore struct {
	st      *store.Store
	version int
}

// NewResultStore wraps an open store with the current SimulatorVersion.
func NewResultStore(st *store.Store) *ResultStore {
	return &ResultStore{st: st, version: SimulatorVersion}
}

// OpenResultStore opens (creating if needed) the store directory and wraps
// it with the current SimulatorVersion.
func OpenResultStore(dir string, opt store.Options) (*ResultStore, error) {
	st, err := store.Open(dir, opt)
	if err != nil {
		return nil, err
	}
	return NewResultStore(st), nil
}

// WithSimulatorVersion returns a view of the same store keyed under a
// different simulator version — the hook version-bump tests and migration
// tooling use to prove that entries written under one model never match
// under another.
func (rs *ResultStore) WithSimulatorVersion(v int) *ResultStore {
	return &ResultStore{st: rs.st, version: v}
}

// Store returns the underlying generic store (for stats and admin ops).
func (rs *ResultStore) Store() *store.Store { return rs.st }

// Get looks a job up. A key that is present but fails its CRC check or
// does not decode as a current-version payload reports StoreGetCorrupt;
// the caller treats it as a miss and re-simulates (the fresh result's
// append then supersedes the bad entry).
func (rs *ResultStore) Get(j Job) (pipeline.Result, StoreGetStatus) {
	data, err := rs.st.Get(fingerprintJob(rs.version, j))
	switch {
	case errors.Is(err, store.ErrNotFound):
		return pipeline.Result{}, StoreGetMiss
	case err != nil:
		return pipeline.Result{}, StoreGetCorrupt
	}
	var sr storedResult
	if err := json.Unmarshal(data, &sr); err != nil || sr.PayloadVersion != StorePayloadVersion {
		return pipeline.Result{}, StoreGetCorrupt
	}
	return sr.Result, StoreGetHit
}

// Put appends one completed job's result.
func (rs *ResultStore) Put(j Job, res pipeline.Result) error {
	j.Opts = j.Opts.withDefaults()
	data, err := json.Marshal(storedResult{
		PayloadVersion: StorePayloadVersion,
		Record:         NewRunRecord(j.Bench, j.Scheme, j.Opts, res),
		Result:         res,
	})
	if err != nil {
		return fmt.Errorf("sim: encode stored result: %w", err)
	}
	return rs.st.Put(fingerprintJob(rs.version, j), data)
}

// Close closes the underlying store.
func (rs *ResultStore) Close() error { return rs.st.Close() }
