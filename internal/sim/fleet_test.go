package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"regcache/internal/pipeline"
)

// fleetTestMatrix builds a small scheme × bench matrix plus the canonical
// identity order a gateway would compute for it.
func fleetTestMatrix(t *testing.T) (schemes []Scheme, benches []string, opts Options, order []string) {
	t.Helper()
	for _, spec := range []string{"use:16x2:filtered", "mono:3"} {
		sc, err := ParseSchemeSpec(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		schemes = append(schemes, sc)
	}
	benches = []string{"gzip", "mcf"}
	opts = Options{Insts: 2000}
	for _, sc := range schemes {
		for _, b := range benches {
			order = append(order, PointIdentity(b, sc, opts))
		}
	}
	return schemes, benches, opts, order
}

// fleetRun synthesizes a deterministic run record for one point.
func fleetRun(bench string, sc Scheme, o Options, ipc float64) RunRecord {
	return NewRunRecord(bench, sc, o, pipeline.Result{IPC: ipc, Stats: pipeline.Stats{Cycles: 100, Retired: uint64(ipc * 100)}})
}

func partial(runs ...RunRecord) *ResultsFile {
	return &ResultsFile{SchemaVersion: ResultsSchemaVersion, Generator: "node", Runs: runs}
}

// TestMergeReordersToCanonicalOrder: partials arriving in arbitrary order
// with arbitrarily ordered runs merge into the exact identity order, with
// zero timestamps — a pure function of the request.
func TestMergeReordersToCanonicalOrder(t *testing.T) {
	schemes, benches, opts, order := fleetTestMatrix(t)
	// Scatter the four runs across two partials in scrambled order.
	a := partial(
		fleetRun(benches[1], schemes[1], opts, 2),
		fleetRun(benches[0], schemes[0], opts, 1),
	)
	b := partial(
		fleetRun(benches[0], schemes[1], opts, 2),
		fleetRun(benches[1], schemes[0], opts, 1),
	)
	merged, err := MergeResultsFiles("regsimd", order, []*ResultsFile{a, b, nil})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(merged.Runs) != len(order) {
		t.Fatalf("merged %d runs, want %d", len(merged.Runs), len(order))
	}
	for i, id := range order {
		if got := RunIdentity(merged.Runs[i]); got != id {
			t.Errorf("slot %d: identity %s, want %s", i, got, id)
		}
	}
	if merged.CreatedAt != "" || merged.WallSeconds != 0 {
		t.Errorf("merged document carries wall-clock state: created_at=%q wall=%v", merged.CreatedAt, merged.WallSeconds)
	}
	if merged.Generator != "regsimd" {
		t.Errorf("generator %q, want regsimd", merged.Generator)
	}

	// Byte stability: merging the same partials in the opposite order
	// yields the identical serialized document.
	merged2, err := MergeResultsFiles("regsimd", order, []*ResultsFile{b, a})
	if err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	d1, _ := json.Marshal(merged)
	d2, _ := json.Marshal(merged2)
	if string(d1) != string(d2) {
		t.Error("merge result depends on partial arrival order")
	}
}

// TestMergeToleratesIdenticalDuplicates: a hedge that raced its primary
// to completion delivers the same run twice; identical copies merge
// cleanly, divergent copies fail loudly.
func TestMergeDuplicates(t *testing.T) {
	schemes, benches, opts, order := fleetTestMatrix(t)
	full := []RunRecord{
		fleetRun(benches[0], schemes[0], opts, 1),
		fleetRun(benches[1], schemes[0], opts, 1),
		fleetRun(benches[0], schemes[1], opts, 2),
		fleetRun(benches[1], schemes[1], opts, 2),
	}
	dup := fleetRun(benches[0], schemes[0], opts, 1)
	merged, err := MergeResultsFiles("regsimd", order, []*ResultsFile{partial(full...), partial(dup)})
	if err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if len(merged.Runs) != len(order) {
		t.Fatalf("merged %d runs, want %d (duplicate must not double-count)", len(merged.Runs), len(order))
	}

	diverged := fleetRun(benches[0], schemes[0], opts, 9) // different IPC: a determinism violation
	_, err = MergeResultsFiles("regsimd", order, []*ResultsFile{partial(full...), partial(diverged)})
	if err == nil || !strings.Contains(err.Error(), "divergent") {
		t.Errorf("divergent duplicate: err = %v, want divergent-duplicate error", err)
	}
}

// TestMergeRejectsBadPartials: runs outside the matrix, unresolved
// points, and schema drift all fail the merge.
func TestMergeRejectsBadPartials(t *testing.T) {
	schemes, benches, opts, order := fleetTestMatrix(t)
	full := []RunRecord{
		fleetRun(benches[0], schemes[0], opts, 1),
		fleetRun(benches[1], schemes[0], opts, 1),
		fleetRun(benches[0], schemes[1], opts, 2),
		fleetRun(benches[1], schemes[1], opts, 2),
	}

	stranger := fleetRun("twolf", schemes[0], opts, 1)
	if _, err := MergeResultsFiles("g", order, []*ResultsFile{partial(full...), partial(stranger)}); err == nil ||
		!strings.Contains(err.Error(), "unexpected run") {
		t.Errorf("run outside matrix: err = %v, want unexpected-run error", err)
	}

	if _, err := MergeResultsFiles("g", order, []*ResultsFile{partial(full[:3]...)}); err == nil ||
		!strings.Contains(err.Error(), "unresolved") {
		t.Errorf("missing point: err = %v, want unresolved error", err)
	}

	drifted := partial(full...)
	drifted.SchemaVersion = ResultsSchemaVersion + 1
	if _, err := MergeResultsFiles("g", order, []*ResultsFile{drifted}); err == nil ||
		!strings.Contains(err.Error(), "schema version") {
		t.Errorf("schema drift: err = %v, want schema-version error", err)
	}
}

// TestPointIdentityMatchesRunIdentity: the gateway computes identities
// from the request (PointIdentity), nodes from serialized runs
// (RunIdentity); scatter/gather only works if they agree.
func TestPointIdentityMatchesRunIdentity(t *testing.T) {
	schemes, benches, opts, _ := fleetTestMatrix(t)
	for _, sc := range schemes {
		for _, b := range benches {
			rec := fleetRun(b, sc, opts, 1)
			if p, r := PointIdentity(b, sc, opts), RunIdentity(rec); p != r {
				t.Errorf("%s/%s: PointIdentity %q != RunIdentity %q", sc.Name, b, p, r)
			}
		}
	}
}

// TestFingerprintMatchesStoreKey: the fleet's ring key must be exactly
// the durable store key, so a point's ring owner and its store shard
// coincide (the property peer store lookup depends on).
func TestFingerprintMatchesStoreKey(t *testing.T) {
	schemes, benches, opts, _ := fleetTestMatrix(t)
	j := Job{Scheme: schemes[0], Bench: benches[0], Opts: opts}
	if Fingerprint(j) != fingerprintJob(SimulatorVersion, j) {
		t.Error("Fingerprint diverges from the store's fingerprintJob")
	}
	if FingerprintPoint(benches[0], schemes[0], opts) != Fingerprint(j) {
		t.Error("FingerprintPoint diverges from Fingerprint")
	}
	// Distinct points get distinct keys.
	if FingerprintPoint(benches[0], schemes[0], opts) == FingerprintPoint(benches[1], schemes[0], opts) {
		t.Error("different benches collide")
	}
}

// TestStoredPayloadRoundTrip: EncodeStoredPayload → DecodeStoredPayload
// preserves both the curated record and the full pipeline result, and the
// encoding matches what ResultStore.Put persists (the /v1/store wire
// contract).
func TestStoredPayloadRoundTrip(t *testing.T) {
	schemes, benches, opts, _ := fleetTestMatrix(t)
	res := pipeline.Result{IPC: 1.5, Stats: pipeline.Stats{Cycles: 200, Retired: 300}}
	data, err := EncodeStoredPayload(benches[0], schemes[0], opts, res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	rec, got, err := DecodeStoredPayload(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec.Bench != benches[0] || rec.Scheme.Name != schemes[0].Name {
		t.Errorf("record identity %s/%s, want %s/%s", rec.Scheme.Name, rec.Bench, schemes[0].Name, benches[0])
	}
	want, _ := json.Marshal(res)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Errorf("result did not round-trip:\nwant %s\nhave %s", want, have)
	}

	// A run record synthesized from the decoded result is byte-identical
	// to one built from the original — the hedge path's byte-stability.
	r1, _ := json.Marshal(NewRunRecord(benches[0], schemes[0], opts, res))
	r2, _ := json.Marshal(NewRunRecord(benches[0], schemes[0], opts, got))
	if string(r1) != string(r2) {
		t.Error("run record from decoded payload differs from original")
	}

	if _, _, err := DecodeStoredPayload([]byte(`{"payload_version":99}`)); err == nil {
		t.Error("future payload version accepted")
	}
	if _, _, err := DecodeStoredPayload([]byte(`not json`)); err == nil {
		t.Error("garbage payload accepted")
	}
}
