package sim

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"regcache/internal/core"
)

// workloadMatrix is the default scheme matrix the sharing tests sweep: every
// register-storage kind, both reference caches, the paper's design points
// across index schemes, and the oracle ablation (which additionally
// exercises the shared functional pre-pass).
func workloadMatrix() []Scheme {
	return []Scheme{
		Monolithic(1),
		Monolithic(3),
		LRU(64, 2, core.IndexRoundRobin),
		NonBypass(64, 2, core.IndexRoundRobin),
		UseBased(64, 2, core.IndexFilteredRR),
		UseBased(64, 2, core.IndexPReg),
		UseBased(32, 4, core.IndexMinimum),
		UseBased(64, 2, core.IndexFilteredRR).WithOracle(),
		UseBased(32, 4, core.IndexMinimum).WithOracle(), // same oracle table as above: keyed by workload, not scheme
		UseBased(64, 2, core.IndexFilteredRR).WithBacking(4),
		TwoLevel(96, 2),
	}
}

// TestWorkloadSharingBitIdentical runs the full default scheme matrix twice
// — first fully cold (a fresh WorkloadCache per run, so every run
// regenerates its program and oracle table) and then with one shared cache
// — and asserts the serialized ResultsFile records are bit-identical.
// Sharing pre-decoded workloads must be invisible in every simulated
// number.
func TestWorkloadSharingBitIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("determinism sweep, no concurrency; TestWorkloadCacheRaceHammer covers the racy paths")
	}
	benches := []string{"gzip", "mcf"}
	o := Options{Insts: 20_000}
	matrix := workloadMatrix()

	records := func(wc func() *WorkloadCache) []RunRecord {
		var out []RunRecord
		for _, s := range matrix {
			for _, b := range benches {
				r, err := ExecuteWith(wc(), b, s, o)
				if err != nil {
					t.Fatalf("%s/%s: %v", s.Name, b, err)
				}
				out = append(out, NewRunRecord(b, s, o, r))
			}
		}
		return out
	}

	cold := records(NewWorkloadCache) // new cache per run: nothing shared
	shared := NewWorkloadCache()
	warm := records(func() *WorkloadCache { return shared })

	coldJSON, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(coldJSON) != string(warmJSON) {
		t.Errorf("shared workload cache changed simulated results:\ncold: %s\nshared: %s", coldJSON, warmJSON)
	}

	st := shared.Stats()
	if st.ProgramBuilds != uint64(len(benches)) {
		t.Errorf("shared cache built %d programs, want %d (one per benchmark)", st.ProgramBuilds, len(benches))
	}
	if st.OracleBuilds != uint64(len(benches)) {
		t.Errorf("shared cache built %d oracle tables, want %d (one per benchmark at this budget)", st.OracleBuilds, len(benches))
	}
	if st.ProgramHits == 0 || st.OracleHits == 0 {
		t.Errorf("shared cache saw no hits (%+v); the matrix should rerequest every workload", st)
	}
}

// TestWorkloadCacheRaceHammer drives one WorkloadCache from parallel runner
// workers (plus direct concurrent Program/Oracle requesters) and checks the
// results against serial references. Run under -race, this is the
// concurrency gate for the single-flight construction paths.
func TestWorkloadCacheRaceHammer(t *testing.T) {
	benches := []string{"gzip", "gcc", "mcf", "twolf"}
	schemes := []Scheme{
		UseBased(64, 2, core.IndexFilteredRR),
		UseBased(64, 2, core.IndexFilteredRR).WithOracle(),
		Monolithic(3),
	}
	o := Options{Insts: 10_000}
	if raceEnabled {
		o.Insts = 4_000 // the detector costs ~10× per simulated instruction
	}

	wc := NewWorkloadCache()
	r := NewRunnerWith(8, wc)
	defer r.Close()

	// Direct hammer: many goroutines demand every program and oracle table
	// while the pool is also simulating.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				for _, b := range benches {
					if _, err := wc.Program(b); err != nil {
						t.Errorf("Program(%s): %v", b, err)
					}
					if _, err := wc.Oracle(b, o.Insts); err != nil {
						t.Errorf("Oracle(%s): %v", b, err)
					}
				}
			}
		}()
	}

	type res struct {
		key  string
		json string
	}
	results := make(chan res, len(schemes)*len(benches))
	for _, s := range schemes {
		for _, b := range benches {
			wg.Add(1)
			go func(s Scheme, b string) {
				defer wg.Done()
				rr, err := r.Run(context.Background(), b, s, o)
				if err != nil {
					t.Errorf("%s/%s: %v", s.Name, b, err)
					return
				}
				data, err := json.Marshal(NewRunRecord(b, s, o, rr))
				if err != nil {
					t.Errorf("%s/%s: %v", s.Name, b, err)
					return
				}
				results <- res{key: s.Name + "/" + b, json: string(data)}
			}(s, b)
		}
	}
	wg.Wait()
	close(results)

	got := map[string]string{}
	for rr := range results {
		got[rr.key] = rr.json
	}
	for _, s := range schemes {
		for _, b := range benches {
			ref, err := ExecuteWith(NewWorkloadCache(), b, s, o)
			if err != nil {
				t.Fatalf("reference %s/%s: %v", s.Name, b, err)
			}
			refJSON, err := json.Marshal(NewRunRecord(b, s, o, ref))
			if err != nil {
				t.Fatal(err)
			}
			key := s.Name + "/" + b
			if got[key] != string(refJSON) {
				t.Errorf("%s diverged under the hammered cache:\ngot:  %s\nwant: %s", key, got[key], refJSON)
			}
		}
	}

	if st := wc.Stats(); st.ProgramBuilds != uint64(len(benches)) || st.OracleBuilds != uint64(len(benches)) {
		t.Errorf("hammered cache rebuilt workloads: %+v (want %d program and %d oracle builds)",
			st, len(benches), len(benches))
	}
}

// TestWorkloadCacheUnknownBench checks the error path stays an error on
// repeat requests (a failed build must not be memoized as success).
func TestWorkloadCacheUnknownBench(t *testing.T) {
	wc := NewWorkloadCache()
	for i := 0; i < 2; i++ {
		if _, err := wc.Program("no-such-bench"); err == nil {
			t.Fatalf("request %d: expected error for unknown benchmark", i)
		}
		if _, err := wc.Oracle("no-such-bench", 1000); err == nil {
			t.Fatalf("request %d: expected oracle error for unknown benchmark", i)
		}
	}
}
