package sim

import (
	"strconv"
	"strings"
	"testing"

	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/twolevel"
)

func TestParseSchemeSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Scheme
	}{
		{"mono", Monolithic(3)},
		{"mono:1", Monolithic(1)},
		{"monolithic:5", Monolithic(5)},
		{"rf:3", Monolithic(3)},
		{"use:64x2", UseBased(64, 2, core.IndexFilteredRR)},
		{"use:64x2:filtered", UseBased(64, 2, core.IndexFilteredRR)},
		{"use:64x2:frr", UseBased(64, 2, core.IndexFilteredRR)},
		{"use:32x4:preg", UseBased(32, 4, core.IndexPReg)},
		{"use:16x0:min", UseBased(16, 0, core.IndexMinimum)},
		{"use:64x2:rr", UseBased(64, 2, core.IndexRoundRobin)},
		{"use:64x2:round-robin", UseBased(64, 2, core.IndexRoundRobin)},
		{"lru:64x2", LRU(64, 2, core.IndexRoundRobin)},
		{"lru:64x2:minimum", LRU(64, 2, core.IndexMinimum)},
		{"nb:64x2", NonBypass(64, 2, core.IndexRoundRobin)},
		{"twolevel:96", TwoLevel(96, 2)},
		{"twolevel:96:4", TwoLevel(96, 4)},
		{"two-level:48:2", TwoLevel(48, 2)},
		{"use:64x2:oracle", UseBased(64, 2, core.IndexFilteredRR).WithOracle()},
		{"use:64x2:preg:oracle", UseBased(64, 2, core.IndexPReg).WithOracle()},
		{"use:64x2:b5", UseBased(64, 2, core.IndexFilteredRR).WithBacking(5)},
		{"use:64x2:oracle:b5", UseBased(64, 2, core.IndexFilteredRR).WithBacking(5).WithOracle()},
		{"use:64x2:b5:oracle", UseBased(64, 2, core.IndexFilteredRR).WithBacking(5).WithOracle()},
		{"mono:2:oracle", Monolithic(2).WithOracle()},
		{"port:64x2", PortFiltered(64, 2, core.IndexFilteredRR, 2)},
		{"port:64x2:p4", PortFiltered(64, 2, core.IndexFilteredRR, 4)},
		{"port:64x2:preg:p1", PortFiltered(64, 2, core.IndexPReg, 1)},
		{"port:32x4:rr:p2:b5", PortFiltered(32, 4, core.IndexRoundRobin, 2).WithBacking(5)},
		{"port:64x2:oracle", PortFiltered(64, 2, core.IndexFilteredRR, 2).WithOracle()},
		{"use:64x2:p2", UseBased(64, 2, core.IndexFilteredRR).WithPorts(2)},
		{"lru:64x2:rr:p3", LRU(64, 2, core.IndexRoundRobin).WithPorts(3)},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			got, err := ParseSchemeSpec(tc.spec)
			if err != nil {
				t.Fatalf("ParseSchemeSpec(%q): %v", tc.spec, err)
			}
			if got != tc.want {
				t.Errorf("ParseSchemeSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
			}
		})
	}
}

func TestParseSchemeSpecErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr string // substring of the error message
	}{
		{"", "unknown scheme kind"},
		{"bogus", "unknown scheme kind"},
		{"mono:zero", "bad monolithic latency"},
		{"mono:0", "bad monolithic latency"},
		{"mono:3:junk", "trailing fields"},
		{"use", "needs a geometry"},
		{"use:64", "bad geometry"},
		{"use:x2", "bad entry count"},
		{"use:64x", "bad way count"},
		{"use:0x2", "bad entry count"},
		{"use:64x-1", "bad way count"},
		{"use:64x2:bogusindex", "unknown index scheme"},
		// A geometry whose ways don't divide entries must be rejected at
		// parse time: core.New panics on it, and the service plane feeds
		// client-supplied specs straight here.
		{"use:64x3", "not divisible"},
		{"lru:10x4", "not divisible"},
		{"use:4x8", "more ways than entries"},
		{"use:1000000x2", "exceeds"},
		{"mono:100000", "latency"},
		{"use:64x2:rr:extra", "trailing fields"},
		{"use:64x2:b0", "backing latency must be >= 1"},
		{"lru", "needs a geometry"},
		{"nb:64x2:junk", "unknown index scheme"},
		{"twolevel", "needs an L1 size"},
		{"twolevel:big", "bad two-level L1 size"},
		{"twolevel:96:slow", "bad two-level L2 latency"},
		{"twolevel:96:2:junk", "trailing fields"},
		// Port-filtering family.
		{"port", "needs a geometry"},
		{"port:64x2:p0", "read-port count must be >= 1"},
		{"use:64x2:p999", "read ports"},        // Validate bound
		{"mono:3:p2", "requires a cache kind"}, // ports on a portless kind
		{"twolevel:96:p2", "requires a cache kind"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			s, err := ParseSchemeSpec(tc.spec)
			if err == nil {
				t.Fatalf("ParseSchemeSpec(%q) = %+v, want error containing %q", tc.spec, s, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSchemeSpec(%q) error %q, want substring %q", tc.spec, err, tc.wantErr)
			}
		})
	}
}

// TestParseSchemeSpecErrorPositions: parse errors name the offending token
// and its 1-based field position, so a bad spec inside a large sweep
// request pinpoints its own typo.
func TestParseSchemeSpecErrorPositions(t *testing.T) {
	cases := []struct {
		spec    string
		wantLoc string // the `field N ("tok")` fragment
	}{
		{"mono:zero", `field 2 ("zero")`},
		{"mono:3:junk", `field 3 ("junk")`},
		{"use:64y2", `field 2 ("64y2")`},
		{"use:64x2:bogusindex", `field 3 ("bogusindex")`},
		{"use:64x2:rr:extra", `field 4 ("extra")`},
		{"twolevel:big", `field 2 ("big")`},
		{"twolevel:96:slow", `field 3 ("slow")`},
		{"twolevel:96:2:junk", `field 4 ("junk")`},
		{"port:64x2:p0", `field 3 ("p0")`},
		{"use:64x2:preg:b0", `field 4 ("b0")`},
		{"bogus", `field 1 ("bogus")`},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			_, err := ParseSchemeSpec(tc.spec)
			if err == nil {
				t.Fatalf("ParseSchemeSpec(%q): want error locating %s", tc.spec, tc.wantLoc)
			}
			if !strings.Contains(err.Error(), tc.wantLoc) {
				t.Errorf("ParseSchemeSpec(%q) error %q, want location %s", tc.spec, err, tc.wantLoc)
			}
		})
	}
}

func TestParseIndexSchemeAliases(t *testing.T) {
	for name, want := range map[string]core.IndexScheme{
		"preg":        core.IndexPReg,
		"rr":          core.IndexRoundRobin,
		"round-robin": core.IndexRoundRobin,
		"roundrobin":  core.IndexRoundRobin,
		"min":         core.IndexMinimum,
		"minimum":     core.IndexMinimum,
		"filtered":    core.IndexFilteredRR,
		"frr":         core.IndexFilteredRR,
	} {
		got, err := ParseIndexScheme(name)
		if err != nil {
			t.Errorf("ParseIndexScheme(%q): %v", name, err)
		} else if got != want {
			t.Errorf("ParseIndexScheme(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseIndexScheme("lru"); err == nil {
		t.Errorf("ParseIndexScheme(\"lru\") succeeded, want error")
	}
}

// TestSchemeRecordRoundTrip proves a results file's scheme block can be
// resubmitted verbatim: Scheme -> NewSchemeRecord -> ToScheme must be the
// identity for every scheme in the default matrix (plus modifiers).
func TestSchemeRecordRoundTrip(t *testing.T) {
	schemes := append(DefaultMatrix(),
		UseBased(64, 2, core.IndexFilteredRR).WithOracle(),
		UseBased(64, 2, core.IndexRoundRobin).WithBacking(7),
	)
	for _, s := range schemes {
		got, err := NewSchemeRecord(s).ToScheme()
		if err != nil {
			t.Fatalf("%s: ToScheme: %v", s.Name, err)
		}
		if got != s {
			t.Errorf("%s: round-trip = %+v, want %+v", s.Name, got, s)
		}
	}
}

func TestSchemeRecordToSchemeErrors(t *testing.T) {
	cacheKind := pipeline.SchemeCache.String()
	twoKind := pipeline.SchemeTwoLevel.String()
	cacheRec := func(c core.Config) SchemeRecord {
		return SchemeRecord{Name: "x", Kind: cacheKind, Cache: &c}
	}
	cases := []struct {
		name string
		rec  SchemeRecord
	}{
		{"unknown kind", SchemeRecord{Name: "x", Kind: "hybrid"}},
		{"cache without config", SchemeRecord{Name: "x", Kind: cacheKind}},
		{"two-level without config", SchemeRecord{Name: "x", Kind: twoKind}},
		{"empty name", SchemeRecord{Kind: pipeline.SchemeMonolithic.String()}},
		// Records arrive from arbitrary clients; configurations that would
		// panic core.New or the pipeline must be rejected here.
		{"negative entries", cacheRec(core.Config{Entries: -8, Ways: 2})},
		{"entries not divisible by ways", cacheRec(core.Config{Entries: 64, Ways: 3})},
		{"oversized entries", cacheRec(core.Config{Entries: 1 << 30, Ways: 2})},
		{"undersized preg space", cacheRec(core.Config{Entries: 64, Ways: 2, MaxPRegs: 4})},
		{"oversized preg space", cacheRec(core.Config{Entries: 64, Ways: 2, MaxPRegs: 1 << 30})},
		{"negative max use", cacheRec(core.Config{Entries: 64, Ways: 2, MaxUse: -1})},
		{"max use overflows uint8", cacheRec(core.Config{Entries: 64, Ways: 2, MaxUse: 300})},
		{"unknown insert policy", cacheRec(core.Config{Entries: 64, Ways: 2, Insert: 99})},
		{"unknown replace policy", cacheRec(core.Config{Entries: 64, Ways: 2, Replace: 99})},
		{"unknown index scheme", cacheRec(core.Config{Entries: 64, Ways: 2, Index: 99})},
		{"negative rf latency", SchemeRecord{Name: "x", Kind: pipeline.SchemeMonolithic.String(), RFLatency: -3}},
		{"negative backing latency", SchemeRecord{Name: "x", Kind: cacheKind, BackingLatency: -1,
			Cache: &core.Config{Entries: 64, Ways: 2}}},
		{"negative two-level L1", SchemeRecord{Name: "x", Kind: twoKind,
			TwoLevel: &twolevel.Config{L1Entries: -96}}},
		{"negative two-level latency", SchemeRecord{Name: "x", Kind: twoKind,
			TwoLevel: &twolevel.Config{L1Entries: 96, L2Latency: -2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if s, err := tc.rec.ToScheme(); err == nil {
				t.Errorf("ToScheme(%+v) = %+v, want error", tc.rec, s)
			}
		})
	}
}

// TestValidateAcceptsBuilders pins that every scheme the package's own
// builders produce (the whole default matrix plus modifiers) passes
// Validate — the wire-side check must never reject legitimate sweeps.
func TestValidateAcceptsBuilders(t *testing.T) {
	schemes := append(DefaultMatrix(),
		UseBased(16, 0, core.IndexMinimum), // fully associative
		UseBased(64, 2, core.IndexFilteredRR).WithOracle().WithBacking(5),
	)
	for _, s := range schemes {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", s.Name, err)
		}
	}
}

// TestDefaultMatrixDistinctNames guards the sweep matrix itself: names are
// the identity the service reports, so duplicates would silently merge
// sweep rows.
func TestDefaultMatrixDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range DefaultMatrix() {
		if s.Name == "" {
			t.Errorf("scheme %+v has no name", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scheme name %q in DefaultMatrix", s.Name)
		}
		seen[s.Name] = true
		if spec, err := ParseSchemeSpec(specFor(t, s)); err == nil && spec != s {
			t.Errorf("spec round-trip for %q = %+v, want %+v", s.Name, spec, s)
		}
	}
}

// specFor reconstructs a compact spec for the matrix schemes (all of which
// are expressible in the grammar).
func specFor(t *testing.T, s Scheme) string {
	t.Helper()
	switch s.Kind {
	case pipeline.SchemeMonolithic:
		return "mono:" + itoa(s.RFLatency)
	case pipeline.SchemeTwoLevel:
		return "twolevel:" + itoa(s.TwoLevel.L1Entries) + ":" + itoa(s.TwoLevel.L2Latency)
	case pipeline.SchemeCache:
		kind := "use"
		if strings.HasPrefix(s.Name, "lru") {
			kind = "lru"
		} else if strings.HasPrefix(s.Name, "nb") || strings.HasPrefix(s.Name, "nonbypass") {
			kind = "nb"
		}
		idx := map[core.IndexScheme]string{
			core.IndexPReg:       "preg",
			core.IndexRoundRobin: "rr",
			core.IndexMinimum:    "min",
			core.IndexFilteredRR: "filtered",
		}[s.Cache.Index]
		return kind + ":" + itoa(s.Cache.Entries) + "x" + itoa(s.Cache.Ways) + ":" + idx
	}
	t.Fatalf("unexpected scheme kind %v", s.Kind)
	return ""
}

func itoa(n int) string { return strconv.Itoa(n) }
