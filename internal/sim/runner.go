package sim

// This file implements the shared simulation-run layer every evaluation in
// the repo executes through: a memoizing result cache keyed by the full
// (scheme, benchmark, options) triple with single-flight deduplication, and
// a bounded worker pool that schedules scheme×benchmark jobs across all
// experiments instead of per-suite goroutine bursts. Baselines that many
// figures share (e.g. the 3-cycle monolithic file) therefore simulate once
// per process; every later request is a cache hit.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"regcache/internal/core"
	"regcache/internal/obs"
	"regcache/internal/pipeline"
)

// ErrClosed is returned for submissions to (or drained from) a closed
// runner.
var ErrClosed = errors.New("sim: runner closed")

// Job identifies one memoizable simulation. Scheme and Options are plain
// value structs (the scheme name plus its full configuration, the
// benchmark, the instruction budget, and the tracking flags), so the Job
// itself is the memoization key — two jobs collide exactly when they would
// produce identical Results.
type Job struct {
	Scheme Scheme
	Bench  string
	Opts   Options
}

// Key renders the job as a stable human-readable cache key (for metrics
// and debugging; the map key is the Job value itself).
func (j Job) Key() string {
	return fmt.Sprintf("%s|%+v|%s|n=%d,k=%d,w=%d,lt=%v,lv=%v",
		j.Scheme.Name, j.Scheme, j.Bench, j.Opts.Insts, j.Opts.Intervals, j.Opts.WarmupInsts,
		j.Opts.TrackLifetimes, j.Opts.TrackLive)
}

// RunnerStats counts what the run layer did. Snapshots are values; use Sub
// to get the delta attributable to one experiment.
type RunnerStats struct {
	JobsRun      uint64        // simulations actually executed by the pool
	CacheHits    uint64        // requests served from the memo (incl. single-flight joins)
	StoreHits    uint64        // memo misses served from the durable result store
	StoreWrites  uint64        // completed results appended to the store
	StoreErrors  uint64        // store appends that failed (durability lost for that result)
	StoreCorrupt uint64        // store lookups that hit a corrupt/undecodable entry
	IntervalRuns uint64        // jobs executed through the interval-parallel path
	Errors       uint64        // jobs that finished with an error
	SimWall      time.Duration // cumulative wall time spent inside simulations
}

// Sub returns the counter delta s - prev.
func (s RunnerStats) Sub(prev RunnerStats) RunnerStats {
	return RunnerStats{
		JobsRun:      s.JobsRun - prev.JobsRun,
		CacheHits:    s.CacheHits - prev.CacheHits,
		StoreHits:    s.StoreHits - prev.StoreHits,
		StoreWrites:  s.StoreWrites - prev.StoreWrites,
		StoreErrors:  s.StoreErrors - prev.StoreErrors,
		StoreCorrupt: s.StoreCorrupt - prev.StoreCorrupt,
		IntervalRuns: s.IntervalRuns - prev.IntervalRuns,
		Errors:       s.Errors - prev.Errors,
		SimWall:      s.SimWall - prev.SimWall,
	}
}

func (s RunnerStats) String() string {
	out := fmt.Sprintf("%d jobs run, %d cache hits, %.1fs sim wall", s.JobsRun, s.CacheHits, s.SimWall.Seconds())
	if s.StoreHits != 0 || s.StoreWrites != 0 {
		out += fmt.Sprintf(", %d store hits, %d store writes", s.StoreHits, s.StoreWrites)
	}
	if s.StoreErrors != 0 {
		out += fmt.Sprintf(", %d store errors", s.StoreErrors)
	}
	return out
}

// PointTiming breaks down where one point's latency went — the per-job
// timing block of the v2 results schema. For a fresh submission the
// fields describe the actual execution; a requester that joined an
// in-flight or memoized entry gets Outcome "coalesced" with its own
// wait, since the execution cost was paid (and is reported) elsewhere.
type PointTiming struct {
	Outcome       string  // "simulated", "store", "coalesced"
	QueueWaitMS   float64 // submission -> worker pickup (or requester wait when coalesced)
	StoreLookupMS float64 // durable-store probe on the memo miss path
	SimMS         float64 // wall time inside the simulation
	StitchMS      float64 // interval-merge share of SimMS (interval runs)
}

// memoEntry is one single-flight memoization slot: the first requester
// owns it and enqueues the job; everyone waits on done.
type memoEntry struct {
	done   chan struct{}
	res    pipeline.Result
	err    error
	timing PointTiming // written by the executing worker before done closes
}

// queued is one queue item: run executes the simulation, fail settles the
// entry without simulating (runner closed while the job was still queued).
type queued struct {
	run  func()
	fail func(error)
}

// Runner executes simulation jobs on a bounded worker pool and memoizes
// their results. The zero value is not usable; call NewRunner. Jobs are
// leaf computations — they must not submit further jobs, which keeps the
// fixed-size pool deadlock-free. Close shuts the pool down; a closed
// runner fails new submissions with ErrClosed but still serves memoized
// results.
type Runner struct {
	workers   int
	workloads *WorkloadCache // shared pre-decoded programs + oracle tables
	queue     chan queued
	start     sync.Once
	closing   chan struct{} // closed by Close; unblocks submitters and workers
	closeMu   sync.Once
	wg        sync.WaitGroup

	mu      sync.Mutex
	memo    map[Job]*memoEntry
	stats   RunnerStats
	open    int // memo entries not yet settled (queued or executing)
	pending int // queue items sent (or committed to send) and not yet received
	closed  bool
	started bool // worker pool launched (UseStore must precede this)

	// Durable result store (nil unless UseStore attached one): the L2 of
	// the cache hierarchy. Completed jobs append asynchronously through
	// the bounded flush queue; Close drains it.
	store   *ResultStore
	flushQ  chan flushItem
	flushWG sync.WaitGroup

	// Flush-generation fence (under mu): flushSeq counts results handed to
	// the store path, flushDone counts appends that finished (success or
	// error). ResetStats waits on flushCond until the appends in flight at
	// its entry have landed, so counter generations never mix.
	flushSeq       uint64
	flushDone      uint64
	flushCond      *sync.Cond
	storeErrLogged bool // first store-append failure logged (never reset)

	jobWall      *obs.HistogramVar // per-job sim wall time, milliseconds (nil until RegisterMetrics)
	queueWait    *obs.HistogramVar // per-job queue wait, milliseconds
	intervalSkew *obs.HistogramVar // per-interval-run cycle skew, percent (nil until RegisterMetrics)
	intervalWarm *obs.HistogramVar // per-interval-run warm-up overhead, percent of cycles

	// aggMissBy accumulates the register-cache miss-class split over every
	// simulated job (indexed by core.MissKind), so the per-class breakdown
	// the paper's Figure 8 is built from is a first-class scrape target
	// instead of being buried in individual RunRecords. Replayed work
	// (memo/store hits) does not re-count.
	aggMissBy [core.NumMissKinds]uint64

	// flight receives panic/error events from job execution (nil = off).
	flight *obs.FlightRecorder
}

// flushItem is one completed job awaiting its asynchronous store append.
// sp is the executing request's point span: the append is asynchronous,
// so its span lands under the point that produced the result (and is
// simply dropped if that trace has already been dumped).
type flushItem struct {
	j   Job
	res pipeline.Result
	sp  *obs.Span
}

// NewRunner builds a runner with the given pool size; workers <= 0 selects
// runtime.NumCPU(). The runner shares the process-wide workload cache.
func NewRunner(workers int) *Runner {
	return NewRunnerWith(workers, DefaultWorkloads())
}

// NewRunnerWith builds a runner whose jobs draw pre-decoded programs and
// oracle tables from the given workload cache (nil selects the process-wide
// cache). Tests use a private cache to observe sharing in isolation.
func NewRunnerWith(workers int, wc *WorkloadCache) *Runner {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if wc == nil {
		wc = DefaultWorkloads()
	}
	r := &Runner{
		workers:   workers,
		workloads: wc,
		// The buffer only decouples submission from execution; correctness
		// does not depend on its size (submitters may block, workers never
		// submit).
		queue:   make(chan queued, 16*workers),
		closing: make(chan struct{}),
		memo:    make(map[Job]*memoEntry),
	}
	r.flushCond = sync.NewCond(&r.mu)
	return r
}

// Workloads returns the workload cache this runner's jobs share.
func (r *Runner) Workloads() *WorkloadCache { return r.workloads }

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Stats returns a snapshot of the runner counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Open returns the number of submitted jobs not yet settled (queued or
// executing) — the progress heartbeat's remaining-work estimate.
func (r *Runner) Open() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.open
}

// Reset drops every memoized result (the pool keeps running). Used by
// benchmarks that measure cold-cache throughput. Counters are NOT cleared:
// call ResetStats alongside Reset when hit-rates must describe only the
// post-Reset generation.
func (r *Runner) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.memo = make(map[Job]*memoEntry)
}

// ResetStats zeroes the runner counters and returns the pre-reset
// snapshot. Without it, a Reset leaves CacheHits/JobsRun mixing memo
// generations, so hit-rates derived from the expvar counters after a
// Reset would be misleading.
//
// The reset is fenced against the asynchronous store flusher: appends
// already handed to the store path when ResetStats is called count toward
// the returned snapshot, not the new generation, so the caller may have to
// wait for those writes to land. Appends enqueued afterwards belong to the
// new generation as expected.
func (r *Runner) ResetStats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	for target := r.flushSeq; r.flushDone < target; {
		r.flushCond.Wait()
	}
	prev := r.stats
	r.stats = RunnerStats{}
	return prev
}

// UseStore attaches a durable result store as the L2 of the cache
// hierarchy: a memo miss consults the store before simulating (a hit
// promotes into the memo via the normal single-flight entry), and every
// completed simulation is appended asynchronously through a bounded flush
// queue that Close drains. It must be called before the first submission
// starts the worker pool.
func (r *Runner) UseStore(rs *ResultStore) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.started {
		return errors.New("sim: UseStore called after the runner started")
	}
	r.store = rs
	if r.flushQ == nil {
		r.flushQ = make(chan flushItem, 4*r.workers)
		r.flushWG.Add(1)
		go r.flusher()
	}
	return nil
}

// flusher is the store-append goroutine: it serializes the asynchronous
// writes so simulation workers never block on store I/O.
func (r *Runner) flusher() {
	defer r.flushWG.Done()
	for it := range r.flushQ {
		sp := it.sp.StartChild("store-append")
		r.storePut(it.j, it.res)
		sp.End()
		r.flushDoneOne()
	}
}

// flushDoneOne marks one flush-path append as landed and wakes any
// ResetStats fenced on it.
func (r *Runner) flushDoneOne() {
	r.mu.Lock()
	r.flushDone++
	r.mu.Unlock()
	r.flushCond.Broadcast()
}

// UseFlight attaches a flight recorder: job panics and store-append
// failures become recorded events (GET /debug/flight). Unlike UseStore
// it may be attached or swapped at any time; nil detaches.
func (r *Runner) UseFlight(f *obs.FlightRecorder) {
	r.mu.Lock()
	r.flight = f
	r.mu.Unlock()
}

func (r *Runner) flightRecorder() *obs.FlightRecorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}

func (r *Runner) storePut(j Job, res pipeline.Result) {
	r.mu.Lock()
	rs := r.store
	r.mu.Unlock()
	if rs == nil {
		return
	}
	if err := rs.Put(j, res); err != nil {
		// A failed append loses durability for this result, not
		// correctness (the memo still has it); count it so the loss is
		// visible, and log the first one so the cause is too.
		r.mu.Lock()
		r.stats.StoreErrors++
		logIt := !r.storeErrLogged
		r.storeErrLogged = true
		fl := r.flight
		r.mu.Unlock()
		fl.Event("store-error", "", "store append failed (job %s): %v", j.Key(), err)
		if logIt {
			obs.Logger().Error("store append failed", "job", j.Key(), "err", err.Error())
		}
		return
	}
	r.mu.Lock()
	r.stats.StoreWrites++
	r.mu.Unlock()
}

// storeLookup consults the durable store on a memo miss.
func (r *Runner) storeLookup(j Job) (pipeline.Result, bool) {
	r.mu.Lock()
	rs := r.store
	r.mu.Unlock()
	if rs == nil {
		return pipeline.Result{}, false
	}
	res, st := rs.Get(j)
	switch st {
	case StoreGetHit:
		return res, true
	case StoreGetCorrupt:
		r.mu.Lock()
		r.stats.StoreCorrupt++
		r.mu.Unlock()
	}
	return pipeline.Result{}, false
}

// storeEnqueue hands a completed result to the flush queue. When the
// queue is full the append degrades to a synchronous write on the calling
// worker rather than dropping durability on the floor. Either way the
// append is registered with the flush fence before this returns, so a
// ResetStats that observes the completed job also waits for its write.
func (r *Runner) storeEnqueue(j Job, res pipeline.Result, sp *obs.Span) {
	r.mu.Lock()
	rs := r.store
	q := r.flushQ
	if rs != nil {
		r.flushSeq++
	}
	r.mu.Unlock()
	if rs == nil {
		return
	}
	select {
	case q <- flushItem{j: j, res: res, sp: sp}:
	default:
		ssp := sp.StartChild("store-append")
		ssp.SetBool("sync_fallback", true)
		r.storePut(j, res)
		ssp.End()
		r.flushDoneOne()
	}
}

// RegisterMetrics publishes the runner's counters, an open-jobs gauge, and
// a per-job wall-time histogram into a metrics registry under prefix
// (e.g. "runner").
func (r *Runner) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Func(prefix+".workers", func() any { return r.workers })
	reg.Func(prefix+".jobs_run", func() any { return r.Stats().JobsRun })
	reg.Func(prefix+".cache_hits", func() any { return r.Stats().CacheHits })
	reg.Func(prefix+".errors", func() any { return r.Stats().Errors })
	reg.Gauge(prefix+".sim_wall_seconds", func() float64 { return r.Stats().SimWall.Seconds() })
	reg.Func(prefix+".open_jobs", func() any { return r.Open() })
	reg.Func(prefix+".store_hits", func() any { return r.Stats().StoreHits })
	reg.Func(prefix+".store_writes", func() any { return r.Stats().StoreWrites })
	reg.Func(prefix+".store_errors", func() any { return r.Stats().StoreErrors })
	reg.Func(prefix+".store_corrupt", func() any { return r.Stats().StoreCorrupt })
	reg.Func(prefix+".interval_runs", func() any { return r.Stats().IntervalRuns })
	reg.Gauge(prefix+".store_hit_rate", func() float64 {
		st := r.Stats()
		if total := st.JobsRun + st.StoreHits; total > 0 {
			return float64(st.StoreHits) / float64(total)
		}
		return 0
	})
	reg.Func(prefix+".store", func() any {
		r.mu.Lock()
		rs := r.store
		r.mu.Unlock()
		if rs == nil {
			return nil
		}
		return rs.Store().Stats()
	})
	reg.CounterFunc(prefix+".miss_filtered", func() uint64 { return r.MissByClass()[core.MissFiltered] })
	reg.CounterFunc(prefix+".miss_capacity", func() uint64 { return r.MissByClass()[core.MissCapacity] })
	reg.CounterFunc(prefix+".miss_conflict", func() uint64 { return r.MissByClass()[core.MissConflict] })
	r.mu.Lock()
	if r.jobWall == nil {
		r.jobWall = reg.Histogram(prefix + ".job_wall_ms")
		r.queueWait = reg.Histogram(prefix + ".queue_wait_ms")
		r.intervalSkew = reg.Histogram(prefix + ".interval_skew_pct")
		r.intervalWarm = reg.Histogram(prefix + ".interval_warmup_frac_pct")
	}
	r.mu.Unlock()
}

// MissByClass returns the cumulative register-cache miss-class split over
// every simulation this runner executed (replayed memo/store hits do not
// re-count), indexed by core.MissKind.
func (r *Runner) MissByClass() [core.NumMissKinds]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aggMissBy
}

func (r *Runner) ensureStarted() {
	r.start.Do(func() {
		r.mu.Lock()
		r.started = true
		r.mu.Unlock()
		r.wg.Add(r.workers)
		for i := 0; i < r.workers; i++ {
			go func() {
				defer r.wg.Done()
				for {
					// Prefer shutdown over draining more work; Close fails
					// whatever remains queued.
					select {
					case <-r.closing:
						return
					default:
					}
					select {
					case q := <-r.queue:
						r.decPending()
						q.run()
					case <-r.closing:
						return
					}
				}
			}()
		}
	})
}

func (r *Runner) decPending() {
	r.mu.Lock()
	r.pending--
	r.mu.Unlock()
}

// submit returns the memo entry for j, enqueueing the simulation if this
// call is the first to request it (single flight); fresh reports whether
// this call created the entry (false = joined an in-flight or memoized
// one). Submission blocks only while the queue is full; a cancelled
// context or a concurrent Close abandons the submission and settles the
// entry with the corresponding error so joined waiters are not stranded.
//
// The first submitter's request span (carried in ctx) traces the
// execution: the worker opens store-lookup / simulate children under it.
// Joiners contribute no spans — their cost is a wait, reported per
// requester as Outcome "coalesced" by RunTimed.
func (r *Runner) submit(ctx context.Context, j Job) (e *memoEntry, fresh bool, err error) {
	j.Opts = j.Opts.withDefaults()
	r.mu.Lock()
	if e, ok := r.memo[j]; ok {
		r.stats.CacheHits++
		r.mu.Unlock()
		return e, false, nil
	}
	if r.closed {
		r.mu.Unlock()
		return nil, false, ErrClosed
	}
	e = &memoEntry{done: make(chan struct{})}
	r.memo[j] = e
	r.open++
	r.pending++ // committed to send (or to settle and decrement ourselves)
	r.mu.Unlock()

	settle := func(err error) {
		r.mu.Lock()
		if cur, ok := r.memo[j]; ok && cur == e {
			delete(r.memo, j) // a later submit may retry
		}
		r.open--
		r.mu.Unlock()
		e.err = err
		close(e.done)
	}

	submitTime := time.Now()
	execSp := obs.SpanFromContext(ctx)

	q := queued{
		run: func() {
			queueWait := time.Since(submitTime)
			if qh := r.queueWaitHist(); qh != nil {
				qh.Add(int(queueWait.Milliseconds()))
			}
			e.timing.QueueWaitMS = durMS(queueWait)
			// L2 lookup: a durable-store hit settles the entry without
			// simulating (and without touching JobsRun/SimWall — the
			// counters distinguish real work from replayed work).
			lsp := execSp.StartChild("store-lookup")
			lookStart := time.Now()
			res, ok := r.storeLookup(j)
			e.timing.StoreLookupMS = durMS(time.Since(lookStart))
			lsp.SetBool("hit", ok)
			lsp.End()
			if ok {
				e.res = res
				e.timing.Outcome = "store"
				r.mu.Lock()
				r.stats.StoreHits++
				r.open--
				r.mu.Unlock()
				close(e.done)
				return
			}
			ssp := execSp.StartChild("simulate")
			ssp.SetString("bench", j.Bench)
			ssp.SetString("scheme", j.Scheme.Name)
			start := time.Now()
			var stitch time.Duration
			e.res, stitch, e.err = r.runJob(j, ssp)
			wall := time.Since(start)
			ssp.SetError(e.err)
			ssp.End()
			e.timing.Outcome = "simulated"
			e.timing.SimMS = durMS(wall)
			e.timing.StitchMS = durMS(stitch)
			r.mu.Lock()
			r.stats.JobsRun++
			r.stats.SimWall += wall
			if e.err != nil {
				r.stats.Errors++
			}
			if e.err == nil && e.res.Intervals != nil {
				r.stats.IntervalRuns++
			}
			if e.err == nil {
				for k, n := range e.res.Cache.MissBy {
					r.aggMissBy[k] += n
				}
			}
			r.open--
			wallHist := r.jobWall
			skewHist, warmHist := r.intervalSkew, r.intervalWarm
			r.mu.Unlock()
			if wallHist != nil {
				wallHist.Add(int(wall.Milliseconds()))
			}
			if iv := e.res.Intervals; e.err == nil && iv != nil {
				if skewHist != nil {
					skewHist.Add(int(100 * iv.Skew()))
				}
				if warmHist != nil {
					warmHist.Add(int(100 * iv.WarmupFrac()))
				}
			}
			close(e.done)
			if e.err == nil {
				r.storeEnqueue(j, e.res, execSp)
			}
		},
		fail: settle,
	}

	r.ensureStarted()
	select {
	case r.queue <- q:
		return e, true, nil
	case <-ctx.Done():
		r.decPending()
		settle(ctx.Err())
		return nil, false, ctx.Err()
	case <-r.closing:
		r.decPending()
		settle(ErrClosed)
		return nil, false, ErrClosed
	}
}

func (r *Runner) queueWaitHist() *obs.HistogramVar {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queueWait
}

// durMS renders a duration as fractional milliseconds (timing blocks are
// human-facing; sub-ms store probes should not flatten to zero).
func durMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// runJob executes one simulation, converting a panic into an ordinary job
// error. Workers run on bare goroutines with no recover above them, so
// without this a single pathological configuration (e.g. one that slipped
// past Scheme.Validate) would crash the whole process — fatal for the
// daemon, whose jobs originate from remote clients. A panic additionally
// lands in the flight recorder so GET /debug/flight shows it after the
// fact.
func (r *Runner) runJob(j Job, sp *obs.Span) (res pipeline.Result, stitch time.Duration, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, stitch, err = pipeline.Result{}, 0, fmt.Errorf("sim: job %s panicked: %v", j.Key(), p)
			r.flightRecorder().Event("panic", sp.RequestID(), "job %s panicked: %v", j.Key(), p)
			obs.Logger().Error("job panicked", "job", j.Key(), "panic", fmt.Sprint(p))
		}
	}()
	var stitchNS int64
	res, stitchNS, err = executeTraced(r.workloads, j.Bench, j.Scheme, j.Opts, sp)
	return res, time.Duration(stitchNS), err
}

// Close shuts the worker pool down: workers exit after their in-flight
// job, still-queued jobs are settled with ErrClosed, and subsequent
// submissions fail fast. Memoized results remain readable. Close is
// idempotent and safe to call concurrently with submissions.
func (r *Runner) Close() {
	r.closeMu.Do(func() {
		r.mu.Lock()
		r.closed = true
		r.mu.Unlock()
		close(r.closing)
		r.start.Do(func() {}) // a never-started pool has no workers to wait for
		r.wg.Wait()
		// Drain and fail whatever is still queued, including sends that
		// were committed before the close flag landed.
		for {
			r.mu.Lock()
			p := r.pending
			r.mu.Unlock()
			if p == 0 {
				break
			}
			select {
			case q := <-r.queue:
				r.decPending()
				q.fail(ErrClosed)
			case <-time.After(time.Millisecond):
				// A submitter committed (pending incremented) but has not
				// sent yet; give it a beat and re-check.
			}
		}
		// Workers have exited, so no new flush items can arrive: drain
		// the store flush queue so every completed result is durable
		// before Close returns (the daemon's graceful-drain guarantee).
		r.mu.Lock()
		q := r.flushQ
		r.mu.Unlock()
		if q != nil {
			close(q)
			r.flushWG.Wait()
		}
	})
}

// wait blocks until the entry completes or the context is cancelled. A
// cancelled wait does not cancel the underlying job: other requesters may
// be joined on the same entry, and the memoized result stays valid.
func (r *Runner) wait(ctx context.Context, e *memoEntry) (pipeline.Result, error) {
	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		return pipeline.Result{}, ctx.Err()
	}
}

// Run simulates one benchmark under one scheme through the memoizing pool:
// repeated requests for the same (scheme, benchmark, options) triple
// execute once and share the result. The context covers both queue
// submission and the wait for the result.
func (r *Runner) Run(ctx context.Context, bench string, s Scheme, o Options) (pipeline.Result, error) {
	e, _, err := r.submit(ctx, Job{Scheme: s, Bench: bench, Opts: o})
	if err != nil {
		return pipeline.Result{}, err
	}
	return r.wait(ctx, e)
}

// RunTimed is Run plus a per-request timing breakdown. A fresh submission
// reports where the execution's latency went (queue wait, store lookup,
// simulate, stitch); a requester that joined an in-flight or memoized
// entry gets Outcome "coalesced" with only its own wait, since the
// execution cost is attributed to the first submitter.
func (r *Runner) RunTimed(ctx context.Context, bench string, s Scheme, o Options) (pipeline.Result, PointTiming, error) {
	submitTime := time.Now()
	e, fresh, err := r.submit(ctx, Job{Scheme: s, Bench: bench, Opts: o})
	if err != nil {
		return pipeline.Result{}, PointTiming{}, err
	}
	res, err := r.wait(ctx, e)
	if err != nil {
		return pipeline.Result{}, PointTiming{}, err
	}
	if fresh {
		return res, e.timing, nil // timing written before done closed (happens-before via the channel)
	}
	return res, PointTiming{
		Outcome:     "coalesced",
		QueueWaitMS: durMS(time.Since(submitTime)),
	}, nil
}

// Prefetch enqueues every scheme×benchmark pair without waiting, so the
// pool can overlap simulations that a caller will collect serially later.
// Already-memoized pairs are no-ops.
func (r *Runner) Prefetch(benches []string, schemes []Scheme, o Options) {
	for _, s := range schemes {
		for _, b := range benches {
			r.submit(context.Background(), Job{Scheme: s, Bench: b, Opts: o}) //nolint:errcheck,dogsled // best-effort warmup
		}
	}
}

// JobResult pairs a completed job with its result (for machine-readable
// results export).
type JobResult struct {
	Job    Job
	Result pipeline.Result
}

// CompletedJobs returns every successfully memoized (job, result) pair in
// deterministic (key-sorted) order: the substrate for -json results files
// that record everything a process simulated.
func (r *Runner) CompletedJobs() []JobResult {
	r.mu.Lock()
	entries := make(map[Job]*memoEntry, len(r.memo))
	for j, e := range r.memo {
		entries[j] = e
	}
	r.mu.Unlock()
	out := make([]JobResult, 0, len(entries))
	for j, e := range entries {
		select {
		case <-e.done:
			if e.err == nil {
				out = append(out, JobResult{Job: j, Result: e.res})
			}
		default: // still in flight
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Job.Key() < out[k].Job.Key() })
	return out
}

// The process-wide runner used by Run and RunSuite. Its pool size can be
// configured once, before first use, via ConfigureDefaultRunner.
var (
	defaultMu      sync.Mutex
	defaultWorkers int
	defaultRunner  *Runner
)

// DefaultRunner returns the shared process-wide runner, creating it on
// first use.
func DefaultRunner() *Runner {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRunner == nil {
		defaultRunner = NewRunner(defaultWorkers)
	}
	return defaultRunner
}

// ConfigureDefaultRunner sets the default runner's pool size (<= 0 selects
// runtime.NumCPU()). It must be called before the first DefaultRunner use;
// later calls return an error instead of silently resizing a live pool.
func ConfigureDefaultRunner(workers int) error {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRunner != nil {
		return fmt.Errorf("sim: default runner already started with %d workers", defaultRunner.workers)
	}
	defaultWorkers = workers
	return nil
}
