package sim

// This file implements the shared simulation-run layer every evaluation in
// the repo executes through: a memoizing result cache keyed by the full
// (scheme, benchmark, options) triple with single-flight deduplication, and
// a bounded worker pool that schedules scheme×benchmark jobs across all
// experiments instead of per-suite goroutine bursts. Baselines that many
// figures share (e.g. the 3-cycle monolithic file) therefore simulate once
// per process; every later request is a cache hit.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"regcache/internal/pipeline"
)

// Job identifies one memoizable simulation. Scheme and Options are plain
// value structs (the scheme name plus its full configuration, the
// benchmark, the instruction budget, and the tracking flags), so the Job
// itself is the memoization key — two jobs collide exactly when they would
// produce identical Results.
type Job struct {
	Scheme Scheme
	Bench  string
	Opts   Options
}

// Key renders the job as a stable human-readable cache key (for metrics
// and debugging; the map key is the Job value itself).
func (j Job) Key() string {
	return fmt.Sprintf("%s|%+v|%s|n=%d,lt=%v,lv=%v",
		j.Scheme.Name, j.Scheme, j.Bench, j.Opts.Insts, j.Opts.TrackLifetimes, j.Opts.TrackLive)
}

// RunnerStats counts what the run layer did. Snapshots are values; use Sub
// to get the delta attributable to one experiment.
type RunnerStats struct {
	JobsRun   uint64        // simulations actually executed by the pool
	CacheHits uint64        // requests served from the memo (incl. single-flight joins)
	Errors    uint64        // jobs that finished with an error
	SimWall   time.Duration // cumulative wall time spent inside simulations
}

// Sub returns the counter delta s - prev.
func (s RunnerStats) Sub(prev RunnerStats) RunnerStats {
	return RunnerStats{
		JobsRun:   s.JobsRun - prev.JobsRun,
		CacheHits: s.CacheHits - prev.CacheHits,
		Errors:    s.Errors - prev.Errors,
		SimWall:   s.SimWall - prev.SimWall,
	}
}

func (s RunnerStats) String() string {
	return fmt.Sprintf("%d jobs run, %d cache hits, %.1fs sim wall", s.JobsRun, s.CacheHits, s.SimWall.Seconds())
}

// memoEntry is one single-flight memoization slot: the first requester
// owns it and enqueues the job; everyone waits on done.
type memoEntry struct {
	done chan struct{}
	res  pipeline.Result
	err  error
}

// Runner executes simulation jobs on a bounded worker pool and memoizes
// their results. The zero value is not usable; call NewRunner. Jobs are
// leaf computations — they must not submit further jobs, which keeps the
// fixed-size pool deadlock-free.
type Runner struct {
	workers int
	queue   chan func()
	start   sync.Once

	mu    sync.Mutex
	memo  map[Job]*memoEntry
	stats RunnerStats
}

// NewRunner builds a runner with the given pool size; workers <= 0 selects
// runtime.NumCPU().
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Runner{
		workers: workers,
		// The buffer only decouples submission from execution; correctness
		// does not depend on its size (submitters may block, workers never
		// submit).
		queue: make(chan func(), 16*workers),
		memo:  make(map[Job]*memoEntry),
	}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Stats returns a snapshot of the runner counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Reset drops every memoized result (the pool keeps running). Used by
// benchmarks that measure cold-cache throughput.
func (r *Runner) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.memo = make(map[Job]*memoEntry)
}

func (r *Runner) ensureStarted() {
	r.start.Do(func() {
		for i := 0; i < r.workers; i++ {
			go func() {
				for job := range r.queue {
					job()
				}
			}()
		}
	})
}

// submit returns the memo entry for j, enqueueing the simulation if this
// call is the first to request it (single flight).
func (r *Runner) submit(j Job) *memoEntry {
	j.Opts = j.Opts.withDefaults()
	r.mu.Lock()
	if e, ok := r.memo[j]; ok {
		r.stats.CacheHits++
		r.mu.Unlock()
		return e
	}
	e := &memoEntry{done: make(chan struct{})}
	r.memo[j] = e
	r.mu.Unlock()

	r.ensureStarted()
	r.queue <- func() {
		start := time.Now()
		e.res, e.err = Execute(j.Bench, j.Scheme, j.Opts)
		wall := time.Since(start)
		r.mu.Lock()
		r.stats.JobsRun++
		r.stats.SimWall += wall
		if e.err != nil {
			r.stats.Errors++
		}
		r.mu.Unlock()
		close(e.done)
	}
	return e
}

// wait blocks until the entry completes or the context is cancelled. A
// cancelled wait does not cancel the underlying job: other requesters may
// be joined on the same entry, and the memoized result stays valid.
func (r *Runner) wait(ctx context.Context, e *memoEntry) (pipeline.Result, error) {
	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		return pipeline.Result{}, ctx.Err()
	}
}

// Run simulates one benchmark under one scheme through the memoizing pool:
// repeated requests for the same (scheme, benchmark, options) triple
// execute once and share the result.
func (r *Runner) Run(ctx context.Context, bench string, s Scheme, o Options) (pipeline.Result, error) {
	return r.wait(ctx, r.submit(Job{Scheme: s, Bench: bench, Opts: o}))
}

// Prefetch enqueues every scheme×benchmark pair without waiting, so the
// pool can overlap simulations that a caller will collect serially later.
// Already-memoized pairs are no-ops.
func (r *Runner) Prefetch(benches []string, schemes []Scheme, o Options) {
	for _, s := range schemes {
		for _, b := range benches {
			r.submit(Job{Scheme: s, Bench: b, Opts: o})
		}
	}
}

// The process-wide runner used by Run and RunSuite. Its pool size can be
// configured once, before first use, via ConfigureDefaultRunner.
var (
	defaultMu      sync.Mutex
	defaultWorkers int
	defaultRunner  *Runner
)

// DefaultRunner returns the shared process-wide runner, creating it on
// first use.
func DefaultRunner() *Runner {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRunner == nil {
		defaultRunner = NewRunner(defaultWorkers)
	}
	return defaultRunner
}

// ConfigureDefaultRunner sets the default runner's pool size (<= 0 selects
// runtime.NumCPU()). It must be called before the first DefaultRunner use;
// later calls return an error instead of silently resizing a live pool.
func ConfigureDefaultRunner(workers int) error {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultRunner != nil {
		return fmt.Errorf("sim: default runner already started with %d workers", defaultRunner.workers)
	}
	defaultWorkers = workers
	return nil
}
