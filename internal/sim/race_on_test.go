//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in; heavyweight
// determinism sweeps scale down or skip under it (the detector multiplies
// simulation time ~10×, and those sweeps exercise no concurrency).
const raceEnabled = true
