package sim

// This file gives the service plane (internal/serve, cmd/regsimd,
// cmd/regsimc) two ways to name a scheme over the wire: a compact
// colon-separated spec string for humans ("use:64x2:filtered"), and a
// reverse mapping from the versioned SchemeRecord JSON so a results file's
// scheme block can be resubmitted verbatim as a sweep request.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/twolevel"
)

// Bounds on wire-supplied scheme parameters. They sit far beyond any
// physically meaningful design point; their job is to keep a hostile or
// corrupted request from driving the simulator into panics or absurd
// allocations (the service plane feeds client JSON straight into these
// configurations).
const (
	maxCacheEntries  = 1 << 16 // the paper's largest sweep point is 128
	maxLatencyCycles = 1 << 10
	maxPRegSpace     = 1 << 20
)

// MaxReadPorts bounds a scheme's backing-file read-port count. An 8-wide
// machine reads at most 16 operands per cycle, so anything above this is
// indistinguishable from unported; exported so the explore layer can
// bound its Ports axis with the same constant the scheme validator uses.
const MaxReadPorts = 64

// ParseIndexScheme parses an index scheme name. It accepts both the
// String() forms and the short CLI aliases.
func ParseIndexScheme(name string) (core.IndexScheme, error) {
	switch name {
	case "preg":
		return core.IndexPReg, nil
	case "rr", "round-robin", "roundrobin":
		return core.IndexRoundRobin, nil
	case "min", "minimum":
		return core.IndexMinimum, nil
	case "filtered", "frr":
		return core.IndexFilteredRR, nil
	}
	return 0, fmt.Errorf("sim: unknown index scheme %q", name)
}

// ParseSchemeSpec parses a compact scheme spec:
//
//	mono[:latency]          monolithic register file (default latency 3)
//	use:ExW[:index]         use-based cache, e.g. use:64x2:filtered
//	lru:ExW[:index]         LRU reference cache (default index rr)
//	nb:ExW[:index]          non-bypass reference cache (default index rr)
//	port:ExW[:index][:pN]   port-filtering use-based cache (default 2 ports)
//	twolevel:L1[:l2lat]     two-level file, e.g. twolevel:96:2
//
// Cache specs default the index to the kind's conventional choice
// (filtered for use and port, round-robin otherwise). Any spec may append
// the modifiers ":oracle" (perfect degree-of-use knowledge), ":bN"
// (backing-file latency override), and — on cache kinds — ":pN"
// (backing-file read-port count, turning the scheme into a port-filtering
// design point), in any order.
//
// Errors name the offending field by 1-based position within the spec so
// a bad sweep request pinpoints its own typo ("field 2 (\"64y2\"): ...").
func ParseSchemeSpec(spec string) (Scheme, error) {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	rest := parts[1:]
	// base tracks how many leading fields of the original rest have been
	// consumed, so rest[i] is field base+i+2 of the spec (1-based, with
	// the kind as field 1). Modifiers peel off the end and do not shift
	// front positions.
	base := 0
	// badField formats an error naming the offending token and position.
	badField := func(i int, tok, msg string) error {
		return fmt.Errorf("sim: scheme spec %q: field %d (%q): %s", spec, base+i+2, tok, msg)
	}

	// Peel trailing modifiers off rest.
	oracle := false
	backing, ports := 0, 0
	for len(rest) > 0 {
		i := len(rest) - 1
		last := rest[i]
		if last == "oracle" {
			oracle = true
			rest = rest[:i]
			continue
		}
		if len(last) > 1 && last[0] == 'b' {
			if n, err := strconv.Atoi(last[1:]); err == nil {
				if n < 1 {
					return Scheme{}, badField(i, last, "backing latency must be >= 1")
				}
				backing = n
				rest = rest[:i]
				continue
			}
		}
		if len(last) > 1 && last[0] == 'p' {
			if n, err := strconv.Atoi(last[1:]); err == nil {
				if n < 1 {
					return Scheme{}, badField(i, last, "read-port count must be >= 1")
				}
				ports = n
				rest = rest[:i]
				continue
			}
		}
		break
	}

	var s Scheme
	switch kind {
	case "mono", "monolithic", "rf":
		lat := 3
		if len(rest) > 0 {
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 1 {
				return Scheme{}, badField(0, rest[0], "bad monolithic latency (want a cycle count >= 1)")
			}
			lat = n
			rest, base = rest[1:], base+1
		}
		s = Monolithic(lat)
	case "use", "lru", "nb", "port":
		if len(rest) == 0 {
			return Scheme{}, fmt.Errorf("sim: scheme spec %q: %q needs a geometry, e.g. %s:64x2", spec, kind, kind)
		}
		entries, ways, err := parseGeometry(rest[0])
		if err != nil {
			return Scheme{}, badField(0, rest[0], err.Error())
		}
		rest, base = rest[1:], base+1
		idx := core.IndexRoundRobin
		if kind == "use" || kind == "port" {
			idx = core.IndexFilteredRR
		}
		if len(rest) > 0 {
			idx, err = ParseIndexScheme(rest[0])
			if err != nil {
				return Scheme{}, badField(0, rest[0], "unknown index scheme")
			}
			rest, base = rest[1:], base+1
		}
		switch kind {
		case "use":
			s = UseBased(entries, ways, idx)
		case "lru":
			s = LRU(entries, ways, idx)
		case "nb":
			s = NonBypass(entries, ways, idx)
		case "port":
			if ports == 0 {
				ports = 2
			}
			s = PortFiltered(entries, ways, idx, ports)
			ports = 0 // consumed into the name; don't re-apply below
		}
	case "twolevel", "two-level":
		if len(rest) == 0 {
			return Scheme{}, fmt.Errorf("sim: scheme spec %q: twolevel needs an L1 size, e.g. twolevel:96", spec)
		}
		l1, err := strconv.Atoi(rest[0])
		if err != nil || l1 < 1 {
			return Scheme{}, badField(0, rest[0], "bad two-level L1 size (want an entry count >= 1)")
		}
		rest, base = rest[1:], base+1
		l2 := 2
		if len(rest) > 0 {
			l2, err = strconv.Atoi(rest[0])
			if err != nil || l2 < 1 {
				return Scheme{}, badField(0, rest[0], "bad two-level L2 latency (want a cycle count >= 1)")
			}
			rest, base = rest[1:], base+1
		}
		s = TwoLevel(l1, l2)
	default:
		return Scheme{}, fmt.Errorf("sim: scheme spec %q: field 1 (%q): unknown scheme kind", spec, kind)
	}
	if len(rest) > 0 {
		return Scheme{}, badField(0, rest[0], fmt.Sprintf("trailing fields %v", rest))
	}
	if ports != 0 {
		s = s.WithPorts(ports)
	}
	if backing != 0 {
		s = s.WithBacking(backing)
	}
	if oracle {
		s = s.WithOracle()
	}
	if err := s.Validate(); err != nil {
		return Scheme{}, err
	}
	return s, nil
}

// parseGeometry parses "ExW" ("64x2"). Ways 0 means fully associative, as
// in core.Config.
func parseGeometry(g string) (entries, ways int, err error) {
	e, w, ok := strings.Cut(g, "x")
	if !ok {
		return 0, 0, fmt.Errorf("bad geometry %q (want ExW, e.g. 64x2)", g)
	}
	entries, err = strconv.Atoi(e)
	if err != nil || entries < 1 {
		return 0, 0, fmt.Errorf("bad entry count in geometry %q", g)
	}
	ways, err = strconv.Atoi(w)
	if err != nil || ways < 0 {
		return 0, 0, fmt.Errorf("bad way count in geometry %q", g)
	}
	if entries > maxCacheEntries {
		return 0, 0, fmt.Errorf("entry count %d in geometry %q exceeds %d", entries, g, maxCacheEntries)
	}
	if ways > entries {
		return 0, 0, fmt.Errorf("geometry %q has more ways than entries", g)
	}
	if ways > 0 && entries%ways != 0 {
		return 0, 0, fmt.Errorf("geometry %q: %d entries not divisible by %d ways", g, entries, ways)
	}
	return entries, ways, nil
}

// Validate rejects schemes the simulator cannot run safely. Builders in
// this package always produce valid schemes; the check exists for
// configurations that arrive over the wire (sweep requests carrying
// arbitrary SchemeRecord JSON), where a bad geometry or register-space
// size would otherwise panic deep inside core or pipeline.
func (s Scheme) Validate() error {
	if s.Name == "" {
		return errors.New("sim: scheme needs a name")
	}
	if s.RFLatency < 0 || s.RFLatency > maxLatencyCycles {
		return fmt.Errorf("sim: scheme %q: register file latency %d outside [0,%d]", s.Name, s.RFLatency, maxLatencyCycles)
	}
	if s.BackingLatency < 0 || s.BackingLatency > maxLatencyCycles {
		return fmt.Errorf("sim: scheme %q: backing latency %d outside [0,%d]", s.Name, s.BackingLatency, maxLatencyCycles)
	}
	if s.ReadPorts < 0 || s.ReadPorts > MaxReadPorts {
		return fmt.Errorf("sim: scheme %q: read ports %d outside [0,%d]", s.Name, s.ReadPorts, MaxReadPorts)
	}
	if s.ReadPorts > 0 && s.Kind != pipeline.SchemeCache {
		return fmt.Errorf("sim: scheme %q: read-port filtering requires a cache kind, got %s", s.Name, s.Kind)
	}
	switch s.Kind {
	case pipeline.SchemeMonolithic:
		return nil
	case pipeline.SchemeCache:
		return validateCacheConfig(s.Name, s.Cache)
	case pipeline.SchemeTwoLevel:
		return validateTwoLevelConfig(s.Name, s.TwoLevel)
	}
	return fmt.Errorf("sim: scheme %q: unknown kind %d", s.Name, int(s.Kind))
}

// validateCacheConfig checks a core.Config against the constraints core.New
// and the pipeline enforce by panicking: a set-divisible geometry and a
// physical register space at least as large as the machine's.
func validateCacheConfig(name string, c core.Config) error {
	if c.Entries < 1 || c.Entries > maxCacheEntries {
		return fmt.Errorf("sim: scheme %q: cache entries %d outside [1,%d]", name, c.Entries, maxCacheEntries)
	}
	if c.Ways < 0 || c.Ways > c.Entries {
		return fmt.Errorf("sim: scheme %q: %d ways outside [0,%d] (0 = fully associative)", name, c.Ways, c.Entries)
	}
	if c.Ways > 0 && c.Entries%c.Ways != 0 {
		return fmt.Errorf("sim: scheme %q: %d entries not divisible by %d ways", name, c.Entries, c.Ways)
	}
	switch c.Insert {
	case core.InsertAlways, core.InsertNonBypass, core.InsertUseBased:
	default:
		return fmt.Errorf("sim: scheme %q: unknown insert policy %d", name, int(c.Insert))
	}
	switch c.Replace {
	case core.ReplaceLRU, core.ReplaceUseBased, core.ReplaceRandom:
	default:
		return fmt.Errorf("sim: scheme %q: unknown replace policy %d", name, int(c.Replace))
	}
	switch c.Index {
	case core.IndexPReg, core.IndexRoundRobin, core.IndexMinimum, core.IndexFilteredRR:
	default:
		return fmt.Errorf("sim: scheme %q: unknown index scheme %d", name, int(c.Index))
	}
	// Remaining-use counts saturate into a uint8 in the pipeline's
	// per-preg state; negatives break the pin/saturation arithmetic.
	for _, f := range []struct {
		what string
		v    int
	}{
		{"max use", c.MaxUse},
		{"unknown-default uses", c.UnknownDefault},
		{"fill-default uses", c.FillDefault},
	} {
		if f.v < 0 || f.v > 255 {
			return fmt.Errorf("sim: scheme %q: %s %d outside [0,255]", name, f.what, f.v)
		}
	}
	if c.HighUseCutoff < 0 {
		return fmt.Errorf("sim: scheme %q: negative high-use cutoff %d", name, c.HighUseCutoff)
	}
	if c.SetSkipThreshold < 0 {
		return fmt.Errorf("sim: scheme %q: negative set-skip threshold %d", name, c.SetSkipThreshold)
	}
	// Zero defaults to the machine's NumPRegs; an explicit value must
	// cover it, or core panics on the first out-of-range tag.
	if npregs := pipeline.DefaultConfig().NumPRegs; c.MaxPRegs != 0 && (c.MaxPRegs < npregs || c.MaxPRegs > maxPRegSpace) {
		return fmt.Errorf("sim: scheme %q: MaxPRegs %d outside [%d,%d]", name, c.MaxPRegs, npregs, maxPRegSpace)
	}
	return nil
}

// validateTwoLevelConfig checks a twolevel.Config: a non-positive L1
// capacity gates rename forever (deadlock), and negative latencies or
// bandwidths break the timing wheel and migration loops.
func validateTwoLevelConfig(name string, c twolevel.Config) error {
	if c.L1Entries < 0 || c.L1Entries > maxCacheEntries {
		return fmt.Errorf("sim: scheme %q: two-level L1 entries %d outside [0,%d]", name, c.L1Entries, maxCacheEntries)
	}
	if c.L2Latency < 0 || c.L2Latency > maxLatencyCycles {
		return fmt.Errorf("sim: scheme %q: two-level L2 latency %d outside [0,%d]", name, c.L2Latency, maxLatencyCycles)
	}
	if c.CopyBandwidth < 0 {
		return fmt.Errorf("sim: scheme %q: negative two-level copy bandwidth %d", name, c.CopyBandwidth)
	}
	if c.FreeThreshold < 0 {
		return fmt.Errorf("sim: scheme %q: negative two-level free threshold %d", name, c.FreeThreshold)
	}
	if c.RefillSlack < 0 {
		return fmt.Errorf("sim: scheme %q: negative two-level refill slack %d", name, c.RefillSlack)
	}
	return nil
}

// ToScheme is the inverse of NewSchemeRecord: it rebuilds the runnable
// Scheme a record serializes, so a sweep request can carry full-fidelity
// scheme configurations (including ones no compact spec can express).
// The result is validated: a record may come from an arbitrary client,
// not only from a results file this process wrote.
func (r SchemeRecord) ToScheme() (Scheme, error) {
	s := Scheme{
		Name:           r.Name,
		RFLatency:      r.RFLatency,
		BackingLatency: r.BackingLatency,
		OracleUses:     r.OracleUses,
		ReadPorts:      r.ReadPorts,
	}
	switch r.Kind {
	case pipeline.SchemeMonolithic.String():
		s.Kind = pipeline.SchemeMonolithic
	case pipeline.SchemeCache.String():
		s.Kind = pipeline.SchemeCache
		if r.Cache == nil {
			return Scheme{}, fmt.Errorf("sim: scheme record %q: cache kind without cache config", r.Name)
		}
		s.Cache = *r.Cache
	case pipeline.SchemeTwoLevel.String():
		s.Kind = pipeline.SchemeTwoLevel
		if r.TwoLevel == nil {
			return Scheme{}, fmt.Errorf("sim: scheme record %q: two-level kind without config", r.Name)
		}
		s.TwoLevel = *r.TwoLevel
	default:
		return Scheme{}, fmt.Errorf("sim: scheme record %q: unknown kind %q", r.Name, r.Kind)
	}
	if err := s.Validate(); err != nil {
		return Scheme{}, err
	}
	return s, nil
}

// DefaultMatrix returns the canonical scheme matrix the evaluation sweeps:
// the monolithic baselines, the paper's use-based cache under every index
// scheme, both reference caches, and the two-level file. Service sweeps
// and the invariant suite both iterate it.
func DefaultMatrix() []Scheme {
	return []Scheme{
		Monolithic(1),
		Monolithic(3),
		UseBased(64, 2, core.IndexPReg),
		UseBased(64, 2, core.IndexRoundRobin),
		UseBased(64, 2, core.IndexMinimum),
		UseBased(64, 2, core.IndexFilteredRR),
		LRU(64, 2, core.IndexRoundRobin),
		NonBypass(64, 2, core.IndexRoundRobin),
		TwoLevel(96, 2),
	}
}
