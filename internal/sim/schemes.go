package sim

// This file gives the service plane (internal/serve, cmd/regsimd,
// cmd/regsimc) two ways to name a scheme over the wire: a compact
// colon-separated spec string for humans ("use:64x2:filtered"), and a
// reverse mapping from the versioned SchemeRecord JSON so a results file's
// scheme block can be resubmitted verbatim as a sweep request.

import (
	"fmt"
	"strconv"
	"strings"

	"regcache/internal/core"
	"regcache/internal/pipeline"
)

// ParseIndexScheme parses an index scheme name. It accepts both the
// String() forms and the short CLI aliases.
func ParseIndexScheme(name string) (core.IndexScheme, error) {
	switch name {
	case "preg":
		return core.IndexPReg, nil
	case "rr", "round-robin", "roundrobin":
		return core.IndexRoundRobin, nil
	case "min", "minimum":
		return core.IndexMinimum, nil
	case "filtered", "frr":
		return core.IndexFilteredRR, nil
	}
	return 0, fmt.Errorf("sim: unknown index scheme %q", name)
}

// ParseSchemeSpec parses a compact scheme spec:
//
//	mono[:latency]          monolithic register file (default latency 3)
//	use:ExW[:index]         use-based cache, e.g. use:64x2:filtered
//	lru:ExW[:index]         LRU reference cache (default index rr)
//	nb:ExW[:index]          non-bypass reference cache (default index rr)
//	twolevel:L1[:l2lat]     two-level file, e.g. twolevel:96:2
//
// Cache specs default the index to the kind's conventional choice
// (filtered for use, round-robin otherwise). Any spec may append the
// modifiers ":oracle" (perfect degree-of-use knowledge) and ":bN"
// (backing-file latency override), in any order.
func ParseSchemeSpec(spec string) (Scheme, error) {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	rest := parts[1:]

	// Peel trailing modifiers off rest.
	oracle := false
	backing := 0
	for len(rest) > 0 {
		last := rest[len(rest)-1]
		if last == "oracle" {
			oracle = true
			rest = rest[:len(rest)-1]
			continue
		}
		if len(last) > 1 && last[0] == 'b' {
			if n, err := strconv.Atoi(last[1:]); err == nil && n > 0 {
				backing = n
				rest = rest[:len(rest)-1]
				continue
			}
		}
		break
	}

	var s Scheme
	switch kind {
	case "mono", "monolithic", "rf":
		lat := 3
		if len(rest) > 0 {
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 1 {
				return Scheme{}, fmt.Errorf("sim: bad monolithic latency in %q", spec)
			}
			lat = n
			rest = rest[1:]
		}
		s = Monolithic(lat)
	case "use", "lru", "nb":
		if len(rest) == 0 {
			return Scheme{}, fmt.Errorf("sim: %q needs a geometry, e.g. %s:64x2", spec, kind)
		}
		entries, ways, err := parseGeometry(rest[0])
		if err != nil {
			return Scheme{}, fmt.Errorf("sim: %q: %w", spec, err)
		}
		rest = rest[1:]
		idx := core.IndexRoundRobin
		if kind == "use" {
			idx = core.IndexFilteredRR
		}
		if len(rest) > 0 {
			idx, err = ParseIndexScheme(rest[0])
			if err != nil {
				return Scheme{}, err
			}
			rest = rest[1:]
		}
		switch kind {
		case "use":
			s = UseBased(entries, ways, idx)
		case "lru":
			s = LRU(entries, ways, idx)
		case "nb":
			s = NonBypass(entries, ways, idx)
		}
	case "twolevel", "two-level":
		if len(rest) == 0 {
			return Scheme{}, fmt.Errorf("sim: %q needs an L1 size, e.g. twolevel:96", spec)
		}
		l1, err := strconv.Atoi(rest[0])
		if err != nil || l1 < 1 {
			return Scheme{}, fmt.Errorf("sim: bad two-level L1 size in %q", spec)
		}
		rest = rest[1:]
		l2 := 2
		if len(rest) > 0 {
			l2, err = strconv.Atoi(rest[0])
			if err != nil || l2 < 1 {
				return Scheme{}, fmt.Errorf("sim: bad two-level L2 latency in %q", spec)
			}
			rest = rest[1:]
		}
		s = TwoLevel(l1, l2)
	default:
		return Scheme{}, fmt.Errorf("sim: unknown scheme kind %q in %q", kind, spec)
	}
	if len(rest) > 0 {
		return Scheme{}, fmt.Errorf("sim: trailing fields %v in scheme spec %q", rest, spec)
	}
	if backing != 0 {
		s = s.WithBacking(backing)
	}
	if oracle {
		s = s.WithOracle()
	}
	return s, nil
}

// parseGeometry parses "ExW" ("64x2"). Ways 0 means fully associative, as
// in core.Config.
func parseGeometry(g string) (entries, ways int, err error) {
	e, w, ok := strings.Cut(g, "x")
	if !ok {
		return 0, 0, fmt.Errorf("bad geometry %q (want ExW, e.g. 64x2)", g)
	}
	entries, err = strconv.Atoi(e)
	if err != nil || entries < 1 {
		return 0, 0, fmt.Errorf("bad entry count in geometry %q", g)
	}
	ways, err = strconv.Atoi(w)
	if err != nil || ways < 0 {
		return 0, 0, fmt.Errorf("bad way count in geometry %q", g)
	}
	return entries, ways, nil
}

// ToScheme is the inverse of NewSchemeRecord: it rebuilds the runnable
// Scheme a record serializes, so a sweep request can carry full-fidelity
// scheme configurations (including ones no compact spec can express).
func (r SchemeRecord) ToScheme() (Scheme, error) {
	s := Scheme{
		Name:           r.Name,
		RFLatency:      r.RFLatency,
		BackingLatency: r.BackingLatency,
		OracleUses:     r.OracleUses,
	}
	switch r.Kind {
	case pipeline.SchemeMonolithic.String():
		s.Kind = pipeline.SchemeMonolithic
	case pipeline.SchemeCache.String():
		s.Kind = pipeline.SchemeCache
		if r.Cache == nil {
			return Scheme{}, fmt.Errorf("sim: scheme record %q: cache kind without cache config", r.Name)
		}
		s.Cache = *r.Cache
	case pipeline.SchemeTwoLevel.String():
		s.Kind = pipeline.SchemeTwoLevel
		if r.TwoLevel == nil {
			return Scheme{}, fmt.Errorf("sim: scheme record %q: two-level kind without config", r.Name)
		}
		s.TwoLevel = *r.TwoLevel
	default:
		return Scheme{}, fmt.Errorf("sim: scheme record %q: unknown kind %q", r.Name, r.Kind)
	}
	if s.Name == "" {
		return Scheme{}, fmt.Errorf("sim: scheme record needs a name")
	}
	return s, nil
}

// DefaultMatrix returns the canonical scheme matrix the evaluation sweeps:
// the monolithic baselines, the paper's use-based cache under every index
// scheme, both reference caches, and the two-level file. Service sweeps
// and the invariant suite both iterate it.
func DefaultMatrix() []Scheme {
	return []Scheme{
		Monolithic(1),
		Monolithic(3),
		UseBased(64, 2, core.IndexPReg),
		UseBased(64, 2, core.IndexRoundRobin),
		UseBased(64, 2, core.IndexMinimum),
		UseBased(64, 2, core.IndexFilteredRR),
		LRU(64, 2, core.IndexRoundRobin),
		NonBypass(64, 2, core.IndexRoundRobin),
		TwoLevel(96, 2),
	}
}
