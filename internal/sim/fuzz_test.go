package sim

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzSchemeSpec fuzzes the compact scheme-spec grammar. Any string either
// fails to parse with a diagnostic that names its spec, or yields a scheme
// that survives Validate and round-trips through the wire record form
// (SchemeRecord → ToScheme) unchanged. Nothing may panic: the parser runs
// on operator input via regsim -scheme and on every sweep-request scheme
// string the daemon admits.
func FuzzSchemeSpec(f *testing.F) {
	seeds := []string{
		// One of each kind, defaults exercised.
		"mono",
		"mono:1",
		"use:64x2",
		"use:64x2:preg",
		"lru:64x2",
		"nb:64x2:rr",
		"twolevel:96",
		"twolevel:96:2",
		// Port-filtering family (ISSUE 10): dedicated kind, default ports,
		// explicit :pN, and the modifier applied to other cache kinds.
		"port:64x2",
		"port:64x2:p4",
		"port:64x2:min:p1",
		"use:64x2:p2",
		"use:64x2:p4:b5",
		"lru:128x4:rr:p8:oracle",
		// Modifier soup: order-independence and stacking.
		"use:64x2:oracle:b2:p2",
		"use:64x2:p2:oracle:b2",
		// Errors: each should name the offending token and position.
		"port",
		"port:64x2:p0",
		"use:64x2:p999",
		"mono:3:p2",
		"twolevel:96:p2",
		"use:64y2",
		"use:64x2:frontal",
		"bogus:64x2",
		"use:64x2:rr:extra",
		"mono:0",
		"use:0x0",
		"use:64x3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchemeSpec(spec)
		if err != nil {
			// Every diagnostic carries the spec so batch sweep errors
			// self-identify.
			if !strings.Contains(err.Error(), "sim:") {
				t.Fatalf("error without package prefix: %v", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed scheme %q fails validation: %v", spec, err)
		}
		if s.Name == "" {
			t.Fatalf("parsed scheme %q has no name", spec)
		}
		rt, err := NewSchemeRecord(s).ToScheme()
		if err != nil {
			t.Fatalf("scheme %q does not round-trip its record: %v", spec, err)
		}
		if !reflect.DeepEqual(s, rt) {
			t.Fatalf("record round-trip changed scheme %q:\n  parsed %+v\n  rebuilt %+v", spec, s, rt)
		}
	})
}
