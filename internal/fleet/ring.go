// Package fleet implements the distributed sweep fabric: consistent-hash
// scatter of a sweep's points across a fleet of regsimd backends, gather
// and byte-stable merge of the partial results, hedged re-dispatch of
// straggler partitions, and fleet-wide durable-store lookup (a point's
// ring owner is also the node whose store shard holds its cached result,
// because both use the same sim.Fingerprint canonicalization).
//
// The package is used from two places: internal/serve layers it behind
// POST /v1/sweep when regsimd runs with -peers (a node executes its owned
// points locally and proxies the rest), and cmd/regsimc uses it directly
// when given multiple -server endpoints.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"regcache/internal/store"
)

// DefaultReplicas is the virtual-node count per endpoint. 64 vnodes keep
// the expected ownership imbalance across a handful of nodes in the low
// single-digit percent while the ring stays a few-KiB sorted slice.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over endpoint URLs. Ownership
// depends only on the set of endpoint strings (not their order), so every
// node and client configured with the same fleet computes the same owner
// for every point.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct endpoints, sorted (for deterministic iteration)
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given endpoints with the given vnode
// count per endpoint (<= 0 selects DefaultReplicas). Duplicate endpoints
// collapse. An empty endpoint list yields a ring that owns nothing.
func NewRing(endpoints []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(endpoints))
	r := &Ring{}
	for _, ep := range endpoints {
		if ep == "" || seen[ep] {
			continue
		}
		seen[ep] = true
		r.nodes = append(r.nodes, ep)
	}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*replicas)
	var buf [8]byte
	for _, ep := range r.nodes {
		for i := 0; i < replicas; i++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			h := sha256.Sum256(append([]byte(ep+"#"), buf[:]...))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(h[:8]), node: ep})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		return r.points[i].node < r.points[k].node
	})
	return r
}

// Nodes returns the distinct endpoints on the ring, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// keyHash positions a store fingerprint on the ring. The fingerprint is
// already a SHA-256, so its leading bytes are uniform.
func keyHash(k store.Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Owner returns the endpoint owning key: the first vnode clockwise from
// the key's position. An empty ring returns "".
func (r *Ring) Owner(k store.Key) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Successors returns up to n distinct endpoints in clockwise ring order
// starting at the key's owner — the dispatch preference order for the
// key's partition (owner first, then the hedge/failover candidates).
func (r *Ring) Successors(k store.Key, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
