package fleet_test

// BenchmarkFleetScatterGather measures the fabric, not the simulator: a
// synthetic backend sleeps a fixed per-point cost behind a small worker
// semaphore, so aggregate throughput scales with fleet width even on a
// single-core CI runner (the nodes sleep in parallel; they do not
// compute). cold models a store-miss sweep (every point pays the full
// simulation cost), warm a store-hit sweep (points are nearly free and
// the measurement is dominated by scatter/gather overhead itself).
//
// The committed BENCH_fleet.json baseline pins the tentpole claim: a
// 3-node fleet sustains at least ~2x the cold aggregate throughput of a
// single node on the same sweep.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"regcache/internal/pipeline"
	"regcache/internal/serve"
	"regcache/internal/sim"
)

// benchBody is a 6-scheme × all-benchmarks matrix — wide enough that
// consistent-hash placement is reasonably balanced at 3 nodes.
const benchBody = `{"benches":["all"],"schemes":["use:16x2:filtered","use:32x2:filtered","use:16x2:minimum","lru:16x2","mono:1","mono:3"],"insts":2000}`

// sleepyBackend is a serve.Backend whose per-point cost is pure wall
// time, bounded by a worker semaphore like a real pool.
type sleepyBackend struct {
	delay time.Duration
	sem   chan struct{}
	runs  atomic.Uint64
}

func newSleepyBackend(workers int, delay time.Duration) *sleepyBackend {
	return &sleepyBackend{delay: delay, sem: make(chan struct{}, workers)}
}

func (s *sleepyBackend) Run(ctx context.Context, bench string, sc sim.Scheme, o sim.Options) (pipeline.Result, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return pipeline.Result{}, ctx.Err()
	}
	defer func() { <-s.sem }()
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return pipeline.Result{}, ctx.Err()
	}
	s.runs.Add(1)
	return pipeline.Result{IPC: 1}, nil
}

func (s *sleepyBackend) Stats() sim.RunnerStats { return sim.RunnerStats{JobsRun: s.runs.Load()} }
func (s *sleepyBackend) Close()                 {}

// startSleepyFleet boots n nodes (2 sleepy workers each) and returns the
// gateway URL. n == 1 is a plain standalone server — the baseline a fleet
// must beat.
func startSleepyFleet(b *testing.B, n int, delay time.Duration) string {
	b.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		cfg := serve.Config{
			Backend:         newSleepyBackend(2, delay),
			MaxQueuedPoints: 1024,
			MaxSyncPoints:   128,
		}
		if n > 1 {
			for j, u := range urls {
				if j != i {
					cfg.Peers = append(cfg.Peers, u)
				}
			}
			cfg.SelfURL = urls[i]
		}
		srv := serve.New(cfg)
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		b.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
		})
	}
	return urls[0]
}

func BenchmarkFleetScatterGather(b *testing.B) {
	benchPoints := 6 * len(sim.Benchmarks())
	modes := []struct {
		name  string
		delay time.Duration
	}{
		{"cold", 5 * time.Millisecond},
		{"warm", 100 * time.Microsecond},
	}
	for _, mode := range modes {
		for _, nodes := range []int{1, 3} {
			b.Run(fmt.Sprintf("%s-%dnode", mode.name, nodes), func(b *testing.B) {
				gw := startSleepyFleet(b, nodes, mode.delay)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := http.Post(gw+"/v1/sweep", "application/json", strings.NewReader(benchBody))
					if err != nil {
						b.Fatalf("sweep: %v", err)
					}
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("sweep status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
				b.StopTimer()
				b.ReportMetric(float64(benchPoints*b.N)/b.Elapsed().Seconds(), "points/sec")
			})
		}
	}
}
