// Explore-over-fleet E2E: POST /v1/explore on a gateway node scatters
// every rung across the ring, and the gathered exploration document is
// byte-identical to a standalone server's — with each candidate
// evaluation simulated exactly once fleet-wide and warm repeats answered
// entirely from memo.
package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"regcache/internal/explore"
	"regcache/internal/serve"
)

// exploreClusterBody is a 4-candidate halving search over two benchmarks:
// rungs of 4, 2, and 1 candidates (budgets 1000, 2000, 4000) for
// (4+2+1)×2 = 14 evaluations — sync-sized at the cluster's MaxSyncPoints.
const exploreClusterBody = `{
	"benches": ["gzip", "mcf"],
	"space": {
		"entries": {"values": [8, 16]},
		"ways": {"values": [1]},
		"index": ["preg", "filtered"]
	},
	"strategy": "halving",
	"insts": 4000,
	"min_insts": 1000
}`

const exploreClusterEvals = (4 + 2 + 1) * 2

func postExplore(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/explore: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read explore body: %v", err)
	}
	return resp.StatusCode, data
}

func TestClusterExploreByteStable(t *testing.T) {
	c := startCluster(t, 3, clusterOpts{})

	status, fleetBody := postExplore(t, c.gateway().url, exploreClusterBody)
	if status != http.StatusOK {
		t.Fatalf("fleet explore status %d: %s", status, fleetBody)
	}
	var res explore.Result
	if err := json.Unmarshal(fleetBody, &res); err != nil {
		t.Fatalf("parse fleet document: %v", err)
	}
	if err := explore.ValidateResult(&res); err != nil {
		t.Fatalf("fleet document fails validation: %v\n%s", err, fleetBody)
	}
	if got := c.jobsRun(); got != exploreClusterEvals {
		t.Errorf("fleet-wide jobs run = %d, want %d (each evaluation exactly once)", got, exploreClusterEvals)
	}

	// Reference: the same exploration on a standalone server.
	single := serve.New(serve.Config{Workers: 2, MaxSyncPoints: 64})
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = single.Drain(ctx)
	}()
	status, singleBody := postExplore(t, ts.URL, exploreClusterBody)
	if status != http.StatusOK {
		t.Fatalf("single-node explore status %d: %s", status, singleBody)
	}
	if !bytes.Equal(fleetBody, singleBody) {
		t.Errorf("fleet document differs from single-node document:\nfleet:  %s\nsingle: %s", fleetBody, singleBody)
	}

	// Warm repeat through the gateway: byte-identical, zero re-simulation
	// anywhere in the fleet — later rungs of the cold run already memoized
	// every (scheme, bench, budget) point the warm run revisits.
	status, again := postExplore(t, c.gateway().url, exploreClusterBody)
	if status != http.StatusOK {
		t.Fatalf("warm fleet explore status %d: %s", status, again)
	}
	if !bytes.Equal(fleetBody, again) {
		t.Error("warm fleet exploration not byte-identical to cold run")
	}
	if got := c.jobsRun(); got != exploreClusterEvals {
		t.Errorf("fleet-wide jobs run after warm repeat = %d, want still %d", got, exploreClusterEvals)
	}
}
