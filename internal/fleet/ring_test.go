package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"regcache/internal/store"
)

// testKey derives a distinct, deterministic store.Key from an index.
func testKey(i int) store.Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i))
	return sha256.Sum256(buf[:])
}

func TestRingOwnerIgnoresEndpointOrder(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b"}, 0)
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owner differs by construction order: %q vs %q", i, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingOwnerStableAcrossRebuilds(t *testing.T) {
	eps := []string{"http://a", "http://b", "http://c"}
	a, b := NewRing(eps, 64), NewRing(eps, 64)
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: nondeterministic ownership", i)
		}
	}
}

func TestRingDedupesAndSortsNodes(t *testing.T) {
	r := NewRing([]string{"http://b", "http://a", "http://b", ""}, 0)
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0] != "http://a" || nodes[1] != "http://b" {
		t.Fatalf("nodes = %v, want deduped sorted [http://a http://b]", nodes)
	}
}

func TestRingBalance(t *testing.T) {
	eps := []string{"http://a", "http://b", "http://c"}
	r := NewRing(eps, DefaultReplicas)
	counts := make(map[string]int)
	const keys = 12000
	for i := 0; i < keys; i++ {
		counts[r.Owner(testKey(i))]++
	}
	// With 64 vnodes per node, shares should sit near keys/3; accept a
	// generous 2x band so the test pins gross imbalance, not variance.
	lo, hi := keys/6, keys/3*2
	for _, ep := range eps {
		if c := counts[ep]; c < lo || c > hi {
			t.Errorf("node %s owns %d of %d keys, want within [%d, %d]", ep, c, keys, lo, hi)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	eps := []string{"http://a", "http://b", "http://c"}
	r := NewRing(eps, 0)
	for i := 0; i < 200; i++ {
		k := testKey(i)
		succ := r.Successors(k, len(eps))
		if len(succ) != len(eps) {
			t.Fatalf("key %d: %d successors, want %d", i, len(succ), len(eps))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %d: successors[0] = %q, owner = %q", i, succ[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %d: duplicate successor %q", i, s)
			}
			seen[s] = true
		}
	}
	// Asking for more nodes than exist clamps; asking for fewer truncates.
	if got := r.Successors(testKey(0), 10); len(got) != 3 {
		t.Fatalf("over-ask: %d successors, want 3", len(got))
	}
	if got := r.Successors(testKey(0), 1); len(got) != 1 || got[0] != r.Owner(testKey(0)) {
		t.Fatalf("n=1: %v, want just the owner", got)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner(testKey(1)); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := r.Successors(testKey(1), 3); got != nil {
		t.Fatalf("empty ring successors = %v, want nil", got)
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r := NewRing([]string{"http://only"}, 0)
	for i := 0; i < 100; i++ {
		if got := r.Owner(testKey(i)); got != "http://only" {
			t.Fatalf("key %d owned by %q", i, got)
		}
	}
}
