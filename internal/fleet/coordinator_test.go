package fleet

// Coordinator tests against scripted leaf nodes: canonical scatter/gather
// ordering, Retry-After-honouring busy retries, drain re-dispatch, hedged
// stragglers, peer store resolution, and permanent-rejection abort. The
// nodes execute sub-sweeps synthetically (zero-result run records), which
// is all the merge layer needs — identity and byte-stability are
// functions of (scheme, bench, options), not of simulation output.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"regcache/internal/pipeline"
	"regcache/internal/sim"
)

// testNode is one scripted fleet member. Its behaviour is swappable per
// test via setHandler; the default executes leaf sub-sweeps synthetically.
type testNode struct {
	t       *testing.T
	ts      *httptest.Server
	url     string
	posts   atomic.Int32 // POST /v1/sweep requests received
	points  atomic.Int32 // points executed across those posts
	handler atomic.Value // http.HandlerFunc
}

func (n *testNode) setHandler(h http.HandlerFunc) { n.handler.Store(h) }

// execLeaf is the default node behaviour: validate the leaf marker, parse
// the sub-sweep, and answer with deterministic synthetic run records.
func (n *testNode) execLeaf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != "/v1/sweep" {
		http.NotFound(w, r)
		return
	}
	if r.Header.Get(LeafHeader) != LeafValue {
		n.t.Errorf("node %s: sub-sweep missing %s: %s header", n.url, LeafHeader, LeafValue)
	}
	var req subSweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.SchemeRecords) != 1 {
		http.Error(w, "want exactly one scheme per sub-sweep", http.StatusBadRequest)
		return
	}
	sc, err := req.SchemeRecords[0].ToScheme()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	o := sim.Options{Insts: req.Insts, Intervals: req.Intervals, WarmupInsts: req.WarmupInsts}
	runs := make([]sim.RunRecord, 0, len(req.Benches))
	for _, b := range req.Benches {
		runs = append(runs, sim.NewRunRecord(b, sc, o, pipeline.Result{}))
	}
	n.points.Add(int32(len(runs)))
	data, err := json.Marshal(&sim.ResultsFile{
		SchemaVersion: sim.ResultsSchemaVersion,
		Generator:     "regsimd",
		Runs:          runs,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func newTestNode(t *testing.T) *testNode {
	n := &testNode{t: t}
	n.handler.Store(http.HandlerFunc(n.execLeaf))
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sweep" {
			n.posts.Add(1)
		}
		n.handler.Load().(http.HandlerFunc)(w, r)
	}))
	n.url = n.ts.URL
	t.Cleanup(n.ts.Close)
	return n
}

func newTestFleet(t *testing.T, n int, cfg Config) ([]*testNode, *Coordinator) {
	nodes := make([]*testNode, n)
	for i := range nodes {
		nodes[i] = newTestNode(t)
		cfg.Endpoints = append(cfg.Endpoints, nodes[i].url)
	}
	return nodes, New(cfg)
}

// nodeByURL finds the test node behind an endpoint URL.
func nodeByURL(t *testing.T, nodes []*testNode, url string) *testNode {
	t.Helper()
	for _, n := range nodes {
		if n.url == url {
			return n
		}
	}
	t.Fatalf("no test node with url %q", url)
	return nil
}

var testSchemes = mustSchemes("use:16x2:filtered", "mono:3")

func mustSchemes(specs ...string) []sim.Scheme {
	out := make([]sim.Scheme, len(specs))
	for i, s := range specs {
		sc, err := sim.ParseSchemeSpec(s)
		if err != nil {
			panic(err)
		}
		out[i] = sc
	}
	return out
}

func TestCoordinatorScatterGatherCanonicalOrder(t *testing.T) {
	nodes, co := newTestFleet(t, 3, Config{})
	spec := SweepSpec{
		Schemes: testSchemes,
		Benches: []string{"gzip", "gcc", "mcf", "twolf"},
		Opts:    sim.Options{Insts: 2000},
	}
	file, err := co.Run(context.Background(), spec, "r-test")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(file.Runs) != spec.Points() {
		t.Fatalf("%d runs, want %d", len(file.Runs), spec.Points())
	}
	// The merged document must follow the canonical scheme-outer ×
	// bench-inner order, exactly like a single node's response.
	i := 0
	for _, sc := range spec.Schemes {
		for _, b := range spec.Benches {
			r := file.Runs[i]
			if r.Scheme.Name != sc.Name || r.Bench != b {
				t.Fatalf("run %d = %s/%s, want %s/%s", i, r.Scheme.Name, r.Bench, sc.Name, b)
			}
			i++
		}
	}
	// Each point executed exactly once, fleet-wide.
	var total int32
	for _, n := range nodes {
		total += n.points.Load()
	}
	if total != int32(spec.Points()) {
		t.Fatalf("fleet executed %d points, want exactly %d", total, spec.Points())
	}
	// And a second, identical run must produce byte-identical output.
	again, err := co.Run(context.Background(), spec, "r-test-2")
	if err != nil {
		t.Fatalf("Run again: %v", err)
	}
	a, _ := json.Marshal(file)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatalf("merged documents differ across identical runs:\n%s\n%s", a, b)
	}
}

// singlePointSpec returns a one-partition spec (one scheme, one bench).
func singlePointSpec() SweepSpec {
	return SweepSpec{
		Schemes: testSchemes[:1],
		Benches: []string{"gzip"},
		Opts:    sim.Options{Insts: 2000},
	}
}

func TestCoordinatorBusyRetryHonorsRetryAfter(t *testing.T) {
	nodes, co := newTestFleet(t, 1, Config{})
	node := nodes[0]
	var calls atomic.Int32
	var firstShed, retried time.Time
	exec := http.HandlerFunc(node.execLeaf)
	node.setHandler(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			firstShed = time.Now()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		retried = time.Now()
		exec(w, r)
	})
	if _, err := co.Run(context.Background(), singlePointSpec(), ""); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := co.Stats().BusyRetries; got != 1 {
		t.Fatalf("BusyRetries = %d, want 1", got)
	}
	if gap := retried.Sub(firstShed); gap < 700*time.Millisecond {
		t.Fatalf("retry arrived after %v, want >= ~1s (Retry-After honoured)", gap)
	}
}

func TestCoordinatorRedispatchOnDrain503(t *testing.T) {
	nodes, co := newTestFleet(t, 2, Config{})
	spec := singlePointSpec()
	owner := nodeByURL(t, nodes, co.OwnerOf(spec.Benches[0], spec.Schemes[0], spec.Opts))
	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
	})
	start := time.Now()
	file, err := co.Run(context.Background(), spec, "")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(file.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(file.Runs))
	}
	st := co.Stats()
	if st.Redispatches != 1 {
		t.Fatalf("Redispatches = %d, want 1", st.Redispatches)
	}
	// Draining advances to the next ring node immediately — it must not
	// burn the same-node busy-retry budget or wait out the Retry-After.
	if st.BusyRetries != 0 {
		t.Fatalf("BusyRetries = %d, want 0 for a drain 503", st.BusyRetries)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("drain re-dispatch took %v, want immediate advance", elapsed)
	}
}

func TestCoordinatorHedgesStraggler(t *testing.T) {
	nodes, co := newTestFleet(t, 2, Config{HedgeAfter: 50 * time.Millisecond})
	spec := singlePointSpec()
	owner := nodeByURL(t, nodes, co.OwnerOf(spec.Benches[0], spec.Schemes[0], spec.Opts))
	// The owner hangs on sub-sweeps (until the winner cancels it) but
	// still answers store probes with a miss — the killed-node-but-
	// reachable-disk case is covered separately. The body must be drained
	// before blocking: Go's HTTP server only watches for client
	// disconnect (cancelling r.Context) once the request body hits EOF.
	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			http.NotFound(w, r)
			return
		}
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	})
	start := time.Now()
	file, err := co.Run(context.Background(), spec, "")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(file.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(file.Runs))
	}
	st := co.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("Hedges = %d, HedgeWins = %d, want 1/1", st.Hedges, st.HedgeWins)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged completion took %v, want well under the stuck primary's lifetime", elapsed)
	}
}

func TestCoordinatorPeerStoreResolvesPoints(t *testing.T) {
	nodes, co := newTestFleet(t, 2, Config{})
	sc := testSchemes[0]
	benches := []string{"gzip", "gcc", "mcf", "twolf"}
	opts := sim.Options{Insts: 2000}

	// Split the benches by ring owner; give the "down" node a populated
	// store shard for every point it owns.
	var downNode *testNode
	stored := make(map[string][]byte)
	var ownedByDown, ownedByLive int
	for _, b := range benches {
		ownerURL := co.OwnerOf(b, sc, opts)
		if downNode == nil && ownerURL != "" {
			downNode = nodeByURL(t, nodes, ownerURL)
		}
		if downNode != nil && ownerURL == downNode.url {
			ownedByDown++
			payload, err := sim.EncodeStoredPayload(b, sc, opts, pipeline.Result{})
			if err != nil {
				t.Fatalf("EncodeStoredPayload: %v", err)
			}
			stored[sim.FingerprintPoint(b, sc, opts).String()] = payload
		} else {
			ownedByLive++
		}
	}
	if ownedByDown == 0 {
		t.Fatal("test setup: the down node owns no points")
	}
	downNode.setHandler(func(w http.ResponseWriter, r *http.Request) {
		// Sub-sweeps are refused (node draining), but the store shard
		// still serves GETs — a restarting node's disk outlives its pool.
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/store/") {
			if payload, ok := stored[strings.TrimPrefix(r.URL.Path, "/v1/store/")]; ok {
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write(payload)
				return
			}
			http.NotFound(w, r)
			return
		}
		http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
	})

	spec := SweepSpec{Schemes: []sim.Scheme{sc}, Benches: benches, Opts: opts}
	file, err := co.Run(context.Background(), spec, "")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(file.Runs) != len(benches) {
		t.Fatalf("%d runs, want %d", len(file.Runs), len(benches))
	}
	st := co.Stats()
	if int(st.StoreHits) != ownedByDown || int(st.PointsResolved) != ownedByDown {
		t.Fatalf("StoreHits = %d, PointsResolved = %d, want both %d (down node's points answered from its shard)",
			st.StoreHits, st.PointsResolved, ownedByDown)
	}
	// Zero duplicate simulations: the live node executed only its own
	// points — the down node's points came purely from the store probes.
	live := nodes[0]
	if live == downNode {
		live = nodes[1]
	}
	if got := int(live.points.Load()); got != ownedByLive {
		t.Fatalf("live node executed %d points, want %d (no re-simulation of store-resident points)",
			got, ownedByLive)
	}
}

func TestCoordinatorPermanentRejectionAborts(t *testing.T) {
	nodes, co := newTestFleet(t, 2, Config{})
	spec := singlePointSpec()
	owner := nodeByURL(t, nodes, co.OwnerOf(spec.Benches[0], spec.Schemes[0], spec.Opts))
	owner.setHandler(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown benchmark"}`, http.StatusBadRequest)
	})
	_, err := co.Run(context.Background(), spec, "")
	if err == nil {
		t.Fatal("Run succeeded, want a permanent rejection")
	}
	if !strings.Contains(err.Error(), "rejected permanently") {
		t.Fatalf("error %q does not mark the rejection permanent", err)
	}
	// A 400 means the request itself is bad — trying other nodes would
	// just spread it.
	if st := co.Stats(); st.Redispatches != 0 {
		t.Fatalf("Redispatches = %d, want 0 after a permanent rejection", st.Redispatches)
	}
}

func TestCoordinatorExhaustsRingThenFails(t *testing.T) {
	nodes, co := newTestFleet(t, 2, Config{BusyRetries: 1, MaxBusyWait: 10 * time.Millisecond})
	for _, n := range nodes {
		n.setHandler(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		})
	}
	_, err := co.Run(context.Background(), singlePointSpec(), "")
	if err == nil {
		t.Fatal("Run succeeded with every node draining")
	}
	if !strings.Contains(err.Error(), "no node could run the partition") {
		t.Fatalf("error %q, want ErrUnavailable wrapping", err)
	}
}

func TestParseRetryAfterFleet(t *testing.T) {
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	cases := []struct {
		in     string
		ok     bool
		lo, hi time.Duration
	}{
		{"", false, 0, 0},
		{"garbage", false, 0, 0},
		{"-3", false, 0, 0},
		{"0", true, 0, 0},
		{"7", true, 7 * time.Second, 7 * time.Second},
		{future, true, 8 * time.Second, 10 * time.Second},
		{past, true, 0, 0},
	}
	for _, c := range cases {
		d, ok := ParseRetryAfter(c.in)
		if ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (d < c.lo || d > c.hi) {
			t.Errorf("ParseRetryAfter(%q) = %v, want in [%v, %v]", c.in, d, c.lo, c.hi)
		}
	}
}

func TestCoordinatorRejectsEmptySweep(t *testing.T) {
	_, co := newTestFleet(t, 1, Config{})
	if _, err := co.Run(context.Background(), SweepSpec{}, ""); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestHedgeDelayLearnsFromLatency(t *testing.T) {
	_, co := newTestFleet(t, 1, Config{HedgeAfter: 5 * time.Second})
	// Below the sample floor the configured fallback applies.
	if d := co.hedgeDelay(4); d != 5*time.Second {
		t.Fatalf("cold hedge delay = %v, want the 5s fallback", d)
	}
	for i := 0; i < 16; i++ {
		co.recordLatency(20*time.Millisecond, 1) // 20ms per point
	}
	// p99 ≈ 20ms × mult 3 × 4 points = 240ms.
	d := co.hedgeDelay(4)
	if d < 100*time.Millisecond || d > time.Second {
		t.Fatalf("learned hedge delay = %v, want ≈240ms", d)
	}
	// The floor stops an all-warm history collapsing into a hedge storm.
	for i := 0; i < 100; i++ {
		co.recordLatency(0, 1) // clamps to 1ms
	}
	if d := co.hedgeDelay(1); d < minHedgeDelay {
		t.Fatalf("hedge delay %v under the %v floor", d, minHedgeDelay)
	}
}
