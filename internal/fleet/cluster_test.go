// Cluster E2E: three real regsimd servers wired into a fleet over
// loopback HTTP, exercised through the public surface only (POST
// /v1/sweep on a gateway node). The external test package keeps the
// serve → fleet import direction honest.
package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regcache/internal/serve"
	"regcache/internal/sim"
	"regcache/internal/store"
)

// clusterBody is the 2×4 = 8-point matrix every cluster test sweeps. The
// insts budget matches the store E2E tests: big enough to exercise the
// real pipeline, small enough to keep a 3-node cluster test fast.
const clusterBody = `{"benches":["gzip","gcc","mcf","twolf"],"schemes":["use:16x2:filtered","mono:3"],"insts":2000}`

const clusterPoints = 8

func clusterMatrix(t *testing.T) (benches []string, schemes []sim.Scheme, opts sim.Options) {
	t.Helper()
	benches = []string{"gzip", "gcc", "mcf", "twolf"}
	for _, spec := range []string{"use:16x2:filtered", "mono:3"} {
		sc, err := sim.ParseSchemeSpec(spec)
		if err != nil {
			t.Fatalf("parse scheme %q: %v", spec, err)
		}
		schemes = append(schemes, sc)
	}
	return benches, schemes, sim.Options{Insts: 2000}
}

type clusterNode struct {
	url     string
	srv     *serve.Server
	ts      *httptest.Server
	backend *sim.Runner
	store   *sim.ResultStore

	drainOnce sync.Once
}

// drain gracefully drains the node exactly once (serve.Drain closes the
// backend, which is not safe to do twice).
func (n *clusterNode) drain(tb testing.TB) {
	n.drainOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := n.srv.Drain(ctx); err != nil {
			tb.Errorf("drain %s: %v", n.url, err)
		}
	})
}

type cluster struct {
	nodes []*clusterNode
}

func (c *cluster) gateway() *clusterNode { return c.nodes[0] }

// jobsRun sums simulations actually executed across the whole fleet —
// the "no duplicate work" ledger.
func (c *cluster) jobsRun() uint64 {
	var total uint64
	for _, n := range c.nodes {
		total += n.backend.Stats().JobsRun
	}
	return total
}

// resetStats zeroes every node's runner ledger. ResetStats fences against
// the asynchronous store flusher, so on return every append from work
// completed so far is durable — which the hedge test needs before it can
// rely on peer store shards.
func (c *cluster) resetStats() {
	for _, n := range c.nodes {
		n.backend.ResetStats()
	}
}

type clusterOpts struct {
	stores     bool
	hedgeAfter time.Duration
	// wrap, when set, intercepts node i's handler (the node pointer is
	// live but its ts field is not yet populated at wrap time).
	wrap func(i int, node *clusterNode, h http.Handler) http.Handler
}

// startCluster boots n fleet members on pre-bound loopback listeners (so
// every node knows the full peer list before any server starts) sharing
// one workload cache. Node 0 is the conventional gateway, but any node
// can front a sweep.
func startCluster(t *testing.T, n int, opts clusterOpts) *cluster {
	t.Helper()
	wc := sim.NewWorkloadCache()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	// A generous straggler fallback keeps cold runs hedge-free even under
	// -race (a spurious hedge duplicates simulations and breaks the
	// exactly-once ledger assertions); once the cold run has fed the
	// latency histogram, the learned deadline takes over and adapts to
	// actual machine speed.
	if opts.hedgeAfter == 0 {
		opts.hedgeAfter = 10 * time.Second
	}
	c := &cluster{}
	for i := 0; i < n; i++ {
		node := &clusterNode{url: urls[i]}
		node.backend = sim.NewRunnerWith(2, wc)
		if opts.stores {
			rs, err := sim.OpenResultStore(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			if err := node.backend.UseStore(rs); err != nil {
				t.Fatalf("attach store: %v", err)
			}
			node.store = rs
		}
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		node.srv = serve.New(serve.Config{
			Backend:         node.backend,
			MaxQueuedPoints: 256,
			MaxSyncPoints:   64,
			Peers:           peers,
			SelfURL:         urls[i],
			Store:           node.store,
			FleetHedgeAfter: opts.hedgeAfter,
		})
		h := node.srv.Handler()
		if opts.wrap != nil {
			h = opts.wrap(i, node, h)
		}
		ts := httptest.NewUnstartedServer(h)
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		node.ts = ts
		c.nodes = append(c.nodes, node)
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			node.ts.Close()
			node.drain(t)
			if node.store != nil {
				if err := node.store.Close(); err != nil {
					t.Errorf("close store %s: %v", node.url, err)
				}
			}
		}
	})
	return c
}

// postSweep submits a sweep to one node and returns status + body.
func postSweep(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read sweep body: %v", err)
	}
	return resp.StatusCode, data
}

// pickVictim returns the index of a non-gateway node owning at least one
// of the matrix's points (preferring the one owning most), plus the
// number of points it owns. Ownership follows the live coordinator ring,
// so the choice adapts to the randomly assigned listener ports.
func pickVictim(t *testing.T, c *cluster) (victim, owned int) {
	t.Helper()
	benches, schemes, opts := clusterMatrix(t)
	co := c.gateway().srv.Fleet()
	if co == nil {
		t.Fatal("gateway has no fleet coordinator")
	}
	byNode := make(map[string]int)
	for _, sc := range schemes {
		for _, b := range benches {
			byNode[co.OwnerOf(b, sc, opts)]++
		}
	}
	victim = -1
	for i, node := range c.nodes {
		if i == 0 {
			continue // the gateway executes its share in-process, not over HTTP
		}
		if byNode[node.url] > owned {
			victim, owned = i, byNode[node.url]
		}
	}
	if victim < 0 {
		t.Skip("ring placed every point on the gateway for these ports; nothing to intercept")
	}
	return victim, owned
}

// TestClusterByteStable runs the same sweep through a 3-node fleet
// gateway and a plain single-node server: the gathered document must be
// byte-identical, each point simulated exactly once fleet-wide, and a
// repeat sweep answered entirely from memo (no extra simulations).
func TestClusterByteStable(t *testing.T) {
	c := startCluster(t, 3, clusterOpts{})

	status, fleetBody := postSweep(t, c.gateway().url, clusterBody)
	if status != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", status, fleetBody)
	}
	if got := c.jobsRun(); got != clusterPoints {
		t.Errorf("fleet-wide jobs run = %d, want %d (each point exactly once)", got, clusterPoints)
	}

	// Reference: one standalone server, same request, shared workload
	// cache via its own runner (results are deterministic regardless).
	single := serve.New(serve.Config{Workers: 2, MaxSyncPoints: 64})
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = single.Drain(ctx)
	}()
	status, singleBody := postSweep(t, ts.URL, clusterBody)
	if status != http.StatusOK {
		t.Fatalf("single-node sweep status %d: %s", status, singleBody)
	}
	if !bytes.Equal(fleetBody, singleBody) {
		t.Errorf("fleet document differs from single-node document:\nfleet:  %s\nsingle: %s", fleetBody, singleBody)
	}

	// Warm repeat through the gateway: byte-identical again, and the memo
	// layer means not one additional simulation anywhere in the fleet.
	status, again := postSweep(t, c.gateway().url, clusterBody)
	if status != http.StatusOK {
		t.Fatalf("warm fleet sweep status %d: %s", status, again)
	}
	if !bytes.Equal(fleetBody, again) {
		t.Errorf("warm fleet sweep not byte-identical to cold run")
	}
	if got := c.jobsRun(); got != clusterPoints {
		t.Errorf("fleet-wide jobs run after warm repeat = %d, want still %d", got, clusterPoints)
	}

	// CI consumes the gathered document with checkresults to pin matrix
	// coverage (full cross product, no duplicates, no extras).
	if path := os.Getenv("REGSIM_FLEET_ARTIFACT"); path != "" {
		if err := os.WriteFile(path, fleetBody, 0o644); err != nil {
			t.Fatalf("write fleet artifact: %v", err)
		}
		t.Logf("wrote fleet artifact to %s", path)
	}
}

// TestClusterKilledNodeHedge kills a node mid-sweep (its sub-sweep POSTs
// hang forever, as a wedged or partitioned process would) after a cold
// run has populated every node's durable store shard. The repeat sweep
// must still complete byte-identically: the straggler deadline hedges the
// dead node's partitions to the next ring node, which resolves every
// store-resident point over GET /v1/store/{key} instead of re-simulating.
func TestClusterKilledNodeHedge(t *testing.T) {
	var (
		victimIdx atomic.Int32 // -1 until armed
		held      atomic.Int32 // sub-sweep POSTs currently hanging
	)
	victimIdx.Store(-1)
	// No explicit hedgeAfter: the cold run feeds the latency histogram,
	// and the hedged re-run must fire off the learned deadline (p99 x
	// multiplier x partition size), which scales with the machine.
	c := startCluster(t, 3, clusterOpts{
		stores: true,
		wrap: func(i int, node *clusterNode, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if int32(i) == victimIdx.Load() && r.Method == http.MethodPost && r.URL.Path == "/v1/sweep" {
					// Hold the request until the coordinator gives up on
					// us. The body must be drained first: the HTTP server
					// only watches for client disconnect (cancelling
					// r.Context) once the request body hits EOF.
					_, _ = io.Copy(io.Discard, r.Body)
					held.Add(1)
					<-r.Context().Done()
					return
				}
				h.ServeHTTP(w, r)
			})
		},
	})

	// Cold run: populates each node's store shard with its owned points.
	status, cold := postSweep(t, c.gateway().url, clusterBody)
	if status != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", status, cold)
	}
	if got := c.jobsRun(); got != clusterPoints {
		t.Fatalf("cold run jobs = %d, want %d", got, clusterPoints)
	}

	// ResetStats both waits for every cold-run store append to land (the
	// hedge path depends on the victim's shard being durable) and zeroes
	// the ledger so "no re-simulation" below is an exact == 0 assertion.
	c.resetStats()
	victim, owned := pickVictim(t, c)
	before := c.gateway().srv.Fleet().Stats()
	victimIdx.Store(int32(victim))
	t.Logf("victim %s owns %d/%d points", c.nodes[victim].url, owned, clusterPoints)

	status, hedged := postSweep(t, c.gateway().url, clusterBody)
	if status != http.StatusOK {
		t.Fatalf("hedged sweep status %d: %s", status, hedged)
	}
	victimIdx.Store(-1)
	if !bytes.Equal(cold, hedged) {
		t.Errorf("hedged sweep not byte-identical to cold run:\ncold:   %s\nhedged: %s", cold, hedged)
	}
	if got := c.jobsRun(); got != 0 {
		t.Errorf("jobs run during hedged sweep = %d, want 0 (store shards must prevent re-simulation)", got)
	}
	after := c.gateway().srv.Fleet().Stats()
	if after.Hedges == before.Hedges {
		t.Errorf("no hedges launched (before %+v, after %+v)", before, after)
	}
	if after.HedgeWins == before.HedgeWins {
		t.Errorf("no hedge won the dead node's partition (before %+v, after %+v)", before, after)
	}
	if resolved := after.PointsResolved - before.PointsResolved; resolved < uint64(owned) {
		t.Errorf("points resolved from peer store = %d, want >= %d (the victim's share)", resolved, owned)
	}
	if h := held.Load(); h == 0 {
		t.Error("victim never received a held sub-sweep POST")
	}
}

// TestClusterDrainRedispatch races a graceful drain against an in-flight
// scattered sweep: the victim starts draining the moment the gateway's
// first sub-sweep POST arrives, so that partition is shed with 503 — and
// the coordinator must re-dispatch it to the next ring node rather than
// lose or duplicate it.
func TestClusterDrainRedispatch(t *testing.T) {
	var (
		victimIdx atomic.Int32
		drainHit  atomic.Int32
		nodesRef  atomic.Pointer[cluster]
	)
	victimIdx.Store(-1)
	var drainTrigger sync.Once
	c := startCluster(t, 3, clusterOpts{
		wrap: func(i int, node *clusterNode, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if int32(i) == victimIdx.Load() && r.Method == http.MethodPost && r.URL.Path == "/v1/sweep" {
					// Flip the node into draining before admission sees
					// this request. Drain waits for in-flight sweeps and
					// closes the backend, so route it through the node's
					// once-guarded drain.
					drainTrigger.Do(func() {
						drainHit.Add(1)
						if cl := nodesRef.Load(); cl != nil {
							cl.nodes[i].drain(t)
						}
					})
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	nodesRef.Store(c)

	victim, owned := pickVictim(t, c)
	victimIdx.Store(int32(victim))
	t.Logf("victim %s owns %d/%d points", c.nodes[victim].url, owned, clusterPoints)

	status, body := postSweep(t, c.gateway().url, clusterBody)
	if status != http.StatusOK {
		t.Fatalf("sweep racing drain: status %d: %s", status, body)
	}
	var f sim.ResultsFile
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("parse gathered document: %v", err)
	}
	if len(f.Runs) != clusterPoints {
		t.Fatalf("gathered %d runs, want %d", len(f.Runs), clusterPoints)
	}
	seen := make(map[string]bool, len(f.Runs))
	for _, r := range f.Runs {
		id := sim.RunIdentity(r)
		if seen[id] {
			t.Errorf("duplicate point %s/%s in gathered document", r.Scheme.Name, r.Bench)
		}
		seen[id] = true
	}
	if drainHit.Load() == 0 {
		t.Fatal("victim never saw a sub-sweep POST; drain race not exercised")
	}
	st := c.gateway().srv.Fleet().Stats()
	if st.Redispatches == 0 {
		t.Errorf("no re-dispatches recorded racing a drain (stats %+v)", st)
	}
}

// TestClusterStoreEndpointServesShard pins the peer-lookup wire format:
// after a sweep, the owner of a point must serve its stored payload at
// GET /v1/store/{key}, decodable into the exact run record the gathered
// document carries.
func TestClusterStoreEndpointServesShard(t *testing.T) {
	c := startCluster(t, 3, clusterOpts{stores: true})
	status, body := postSweep(t, c.gateway().url, clusterBody)
	if status != http.StatusOK {
		t.Fatalf("sweep status %d: %s", status, body)
	}
	c.resetStats() // fence: wait for the asynchronous store appends
	benches, schemes, opts := clusterMatrix(t)
	co := c.gateway().srv.Fleet()
	checked := 0
	for _, sc := range schemes {
		for _, b := range benches {
			owner := co.OwnerOf(b, sc, opts)
			key := sim.FingerprintPoint(b, sc, opts)
			resp, err := http.Get(fmt.Sprintf("%s/v1/store/%s", owner, key.String()))
			if err != nil {
				t.Fatalf("GET store shard: %v", err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("read shard payload: %v", err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("owner %s has no shard entry for %s/%s: status %d", owner, sc.Name, b, resp.StatusCode)
				continue
			}
			rec, _, err := sim.DecodeStoredPayload(data)
			if err != nil {
				t.Fatalf("decode shard payload for %s/%s: %v", sc.Name, b, err)
			}
			if rec.Bench != b || rec.Scheme.Name != sc.Name {
				t.Errorf("shard payload identity %s/%s, want %s/%s", rec.Scheme.Name, rec.Bench, sc.Name, b)
			}
			checked++
		}
	}
	if checked != clusterPoints {
		t.Errorf("resolved %d/%d points from owner shards", checked, clusterPoints)
	}
}
