package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"regcache/internal/obs"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
	"regcache/internal/stats"
	"regcache/internal/store"
)

// LeafHeader marks a sub-sweep dispatched by the fabric. A node receiving
// it executes the request entirely locally — never re-scatters (so peer
// meshes cannot recurse) and always answers synchronously (the dispatching
// coordinator is the one holding the client connection or job).
const LeafHeader = "X-Regsim-Fleet"

// LeafValue is the LeafHeader value for sub-sweeps.
const LeafValue = "leaf"

// requestIDHeader mirrors serve.RequestIDHeader (fleet cannot import serve)
// so one request ID traces the whole fan-out across every node's logs,
// metrics, and flight recorder.
const requestIDHeader = "X-Request-Id"

// Sentinel errors classifying why a node could not take a partition.
var (
	// ErrUnavailable wraps a partition failure after every candidate node
	// was tried; the gateway maps it to 502.
	ErrUnavailable = errors.New("fleet: no node could run the partition")
	// ErrDraining is a node refusing work because it is shutting down; the
	// partition advances to the next node on the ring.
	ErrDraining = errors.New("fleet: node is draining")
	// errPermanent is a rejection retrying elsewhere cannot fix (the leaf
	// judged the request itself invalid — version skew between nodes).
	errPermanent = errors.New("fleet: request rejected permanently")
)

// BusyError is a node shedding load (HTTP 429, or a gateway's own full
// admission queue): the partition retries the same node after RetryAfter
// before advancing along the ring.
type BusyError struct{ RetryAfter time.Duration }

func (e *BusyError) Error() string {
	return fmt.Sprintf("fleet: node busy (retry after %s)", e.RetryAfter)
}

// LocalExec executes one leaf partition in-process — the gateway's own
// share of a sweep, with the same admission accounting a remote sub-sweep
// would get. Return *BusyError or ErrDraining to make the coordinator
// treat the local node exactly like a shedding or draining peer.
type LocalExec func(ctx context.Context, benches []string, scheme sim.Scheme, o sim.Options, timings bool) (*sim.ResultsFile, error)

// Config sizes a Coordinator. Zero values select the defaults.
type Config struct {
	Endpoints []string  // every node of the fleet (identical strings on every member)
	Self      string    // endpoint executed via Local instead of HTTP ("" = pure client)
	Local     LocalExec // in-process executor for Self's partitions

	Replicas int // vnodes per endpoint; default DefaultReplicas

	// HedgeAfter is the straggler deadline used until the latency
	// histogram has enough samples to derive one; default 2s.
	HedgeAfter time.Duration
	// HedgeQuantile (default 0.99) and HedgeMult (default 3) derive the
	// learned deadline: quantile of observed per-point partition latency,
	// times the partition's point count, times the multiplier.
	HedgeQuantile float64
	HedgeMult     float64

	BusyRetries int           // same-node retries on a 429 before advancing; default 2
	MaxBusyWait time.Duration // cap on an honored Retry-After; default 5s

	StoreProbeTimeout time.Duration // per-point peer store GET budget; default 1s

	Client    *http.Client // default http.DefaultClient
	Generator string       // merged document's generator field; default "regsimd"
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 2 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.99
	}
	if c.HedgeMult <= 0 {
		c.HedgeMult = 3
	}
	if c.BusyRetries <= 0 {
		c.BusyRetries = 2
	}
	if c.MaxBusyWait <= 0 {
		c.MaxBusyWait = 5 * time.Second
	}
	if c.StoreProbeTimeout <= 0 {
		c.StoreProbeTimeout = time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Generator == "" {
		c.Generator = "regsimd"
	}
	return c
}

// SweepSpec is a validated sweep to scatter: the same scheme-outer ×
// bench-inner expansion a single node would execute.
type SweepSpec struct {
	Schemes []sim.Scheme
	Benches []string
	Opts    sim.Options
	Timings bool
}

// Points returns the sweep's point count.
func (s SweepSpec) Points() int { return len(s.Schemes) * len(s.Benches) }

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	Partitions     uint64 // partitions dispatched across all sweeps
	SubSweeps      uint64 // sub-sweep attempts launched (HTTP or local)
	Hedges         uint64 // attempts launched by the straggler deadline
	HedgeWins      uint64 // partitions won by a hedge, primary cancelled
	Redispatches   uint64 // attempts launched because a prior one failed
	BusyRetries    uint64 // same-node retries after a 429 Retry-After wait
	StoreProbes    uint64 // peer store GETs issued before re-dispatch
	StoreHits      uint64 // peer store GETs that resolved a point
	PointsResolved uint64 // points answered purely from a peer's store shard
}

// Coordinator scatters sweeps across a fleet and gathers the partials
// into one byte-stable document. Safe for concurrent use.
type Coordinator struct {
	cfg  Config
	ring *Ring

	histMu sync.Mutex
	lat    *stats.Histogram // per-point partition latency, milliseconds

	partitions, subsweeps, hedges, hedgeWins obs.Counter
	redispatches, busyRetries                obs.Counter
	storeProbes, storeHits, pointsResolved   obs.Counter

	partWall *obs.HistogramVar // nil until RegisterMetrics
}

// New builds a coordinator over the configured fleet. Self (when set) is
// added to the endpoint set automatically.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	eps := cfg.Endpoints
	if cfg.Self != "" {
		eps = append(append([]string(nil), eps...), cfg.Self)
	}
	return &Coordinator{
		cfg:  cfg,
		ring: NewRing(eps, cfg.Replicas),
		lat:  stats.NewHistogram(),
	}
}

// Endpoints returns the fleet's distinct endpoints, sorted.
func (c *Coordinator) Endpoints() []string { return c.ring.Nodes() }

// OwnerOf returns the endpoint owning one point — the node whose durable
// store shard holds (or will hold) its result.
func (c *Coordinator) OwnerOf(bench string, s sim.Scheme, o sim.Options) string {
	return c.ring.Owner(sim.FingerprintPoint(bench, s, o))
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Partitions:     c.partitions.Value(),
		SubSweeps:      c.subsweeps.Value(),
		Hedges:         c.hedges.Value(),
		HedgeWins:      c.hedgeWins.Value(),
		Redispatches:   c.redispatches.Value(),
		BusyRetries:    c.busyRetries.Value(),
		StoreProbes:    c.storeProbes.Value(),
		StoreHits:      c.storeHits.Value(),
		PointsResolved: c.pointsResolved.Value(),
	}
}

// RegisterMetrics publishes the fabric counters and the per-partition
// latency histogram under prefix (e.g. "serve.fleet").
func (c *Coordinator) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.Func(prefix+".endpoints", func() any { return len(c.ring.Nodes()) })
	reg.CounterFunc(prefix+".partitions", c.partitions.Value)
	reg.CounterFunc(prefix+".subsweeps", c.subsweeps.Value)
	reg.CounterFunc(prefix+".hedges", c.hedges.Value)
	reg.CounterFunc(prefix+".hedge_wins", c.hedgeWins.Value)
	reg.CounterFunc(prefix+".redispatches", c.redispatches.Value)
	reg.CounterFunc(prefix+".busy_retries", c.busyRetries.Value)
	reg.CounterFunc(prefix+".peer_store_probes", c.storeProbes.Value)
	reg.CounterFunc(prefix+".peer_store_hits", c.storeHits.Value)
	reg.CounterFunc(prefix+".points_store_resolved", c.pointsResolved.Value)
	c.histMu.Lock()
	if c.partWall == nil {
		c.partWall = reg.Histogram(prefix + ".partition_wall_ms")
	}
	c.histMu.Unlock()
}

// point is one expanded sweep point in canonical order.
type point struct {
	index     int // position in the canonical scheme-outer × bench-inner order
	bench     string
	schemeIdx int
	key       store.Key
}

// partition is one (owner node, scheme) group of points — the unit of
// dispatch, retry, and hedging. Its benches stay in canonical request
// order so a leaf's response maps back positionally.
type partition struct {
	owner     string
	schemeIdx int
	benches   []string
	points    []point
}

// expand lists the sweep's points in canonical order alongside their
// identity strings (the merge order).
func expand(spec SweepSpec) ([]point, []string) {
	pts := make([]point, 0, spec.Points())
	order := make([]string, 0, spec.Points())
	i := 0
	for si, sc := range spec.Schemes {
		for _, b := range spec.Benches {
			pts = append(pts, point{
				index:     i,
				bench:     b,
				schemeIdx: si,
				key:       sim.FingerprintPoint(b, sc, spec.Opts),
			})
			order = append(order, sim.PointIdentity(b, sc, spec.Opts))
			i++
		}
	}
	return pts, order
}

// partitionPoints groups points by (ring owner, scheme), preserving
// canonical bench order inside each group. Deterministic: iteration
// follows point order and group keys are first-seen ordered.
func (c *Coordinator) partitionPoints(pts []point) []*partition {
	type gkey struct {
		owner     string
		schemeIdx int
	}
	byKey := make(map[gkey]*partition)
	var out []*partition
	for _, p := range pts {
		k := gkey{owner: c.ring.Owner(p.key), schemeIdx: p.schemeIdx}
		g, ok := byKey[k]
		if !ok {
			g = &partition{owner: k.owner, schemeIdx: p.schemeIdx}
			byKey[k] = g
			out = append(out, g)
		}
		g.benches = append(g.benches, p.bench)
		g.points = append(g.points, p)
	}
	return out
}

// Run scatters the sweep across the fleet, gathers the partial results,
// and merges them into one canonical document — byte-identical to what a
// single node would return for the same request. reqID (optional) is
// propagated to every sub-sweep as X-Request-Id so one ID traces the
// whole fan-out.
func (c *Coordinator) Run(ctx context.Context, spec SweepSpec, reqID string) (*sim.ResultsFile, error) {
	if len(c.ring.Nodes()) == 0 {
		return nil, errors.New("fleet: no endpoints configured")
	}
	if spec.Points() == 0 {
		return nil, errors.New("fleet: empty sweep")
	}
	sp := obs.SpanFromContext(ctx)
	pts, order := expand(spec)
	parts := c.partitionPoints(pts)
	c.partitions.Add(uint64(len(parts)))

	ssp := sp.StartChild("scatter")
	ssp.SetInt("partitions", int64(len(parts)))
	ssp.SetInt("points", int64(len(pts)))
	partials := make([]*sim.ResultsFile, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			psp := ssp.StartChild("partition")
			psp.SetString("node", p.owner)
			psp.SetInt("points", int64(len(p.points)))
			start := time.Now()
			partials[i], errs[i] = c.runPartition(obs.ContextWithSpan(ctx, psp), p, spec, reqID)
			c.observePartition(time.Since(start))
			psp.SetError(errs[i])
			psp.End()
		}()
	}
	wg.Wait()
	ssp.End()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	msp := sp.StartChild("merge")
	file, err := sim.MergeResultsFiles(c.cfg.Generator, order, partials)
	msp.SetError(err)
	msp.End()
	return file, err
}

func (c *Coordinator) observePartition(wall time.Duration) {
	c.histMu.Lock()
	h := c.partWall
	c.histMu.Unlock()
	if h != nil {
		h.Add(int(wall.Milliseconds()))
	}
}

// hedgeMinSamples gates the learned deadline: below it the configured
// HedgeAfter fallback applies.
const hedgeMinSamples = 8

// minHedgeDelay floors the learned deadline so an all-warm latency
// history cannot collapse it into a hedge storm.
const minHedgeDelay = 25 * time.Millisecond

// maxHedgeDelay caps the learned deadline (a few pathological samples
// must not disable hedging entirely).
const maxHedgeDelay = 30 * time.Second

// hedgeDelay derives the straggler deadline for a partition of n points
// from the observed per-point latency distribution.
func (c *Coordinator) hedgeDelay(n int) time.Duration {
	c.histMu.Lock()
	defer c.histMu.Unlock()
	if c.lat.N() < hedgeMinSamples {
		return c.cfg.HedgeAfter
	}
	per := c.lat.Percentile(c.cfg.HedgeQuantile)
	d := time.Duration(float64(per) * c.cfg.HedgeMult * float64(n) * float64(time.Millisecond))
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// recordLatency feeds a completed partition into the per-point latency
// histogram: one sample per point, so a partition's weight in the learned
// deadline matches the work it represents (and one small sweep is enough
// to cross the hedgeMinSamples gate).
func (c *Coordinator) recordLatency(wall time.Duration, n int) {
	if n <= 0 {
		return
	}
	ms := int(wall.Milliseconds()) / n
	if ms < 1 {
		ms = 1
	}
	c.histMu.Lock()
	for i := 0; i < n; i++ {
		c.lat.Add(ms)
	}
	c.histMu.Unlock()
}

// runPartition drives one partition to completion: dispatch to the owner,
// hedge to ring successors past the straggler deadline, advance on
// failure, first success wins and cancels the rest.
func (c *Coordinator) runPartition(ctx context.Context, p *partition, spec SweepSpec, reqID string) (*sim.ResultsFile, error) {
	candidates := c.ring.Successors(p.points[0].key, len(c.ring.Nodes()))
	pctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	type outcome struct {
		file   *sim.ResultsFile
		err    error
		node   string
		hedged bool
		wall   time.Duration
	}
	resc := make(chan outcome, len(candidates))
	launch := func(node string, hedged bool) {
		c.subsweeps.Add(1)
		go func() {
			start := time.Now()
			f, err := c.attempt(pctx, node, p, spec, reqID)
			resc <- outcome{file: f, err: err, node: node, hedged: hedged, wall: time.Since(start)}
		}()
	}

	next := 0
	launch(candidates[next], false)
	next++
	outstanding := 1
	delay := c.hedgeDelay(len(p.points))
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var failures []error
	for {
		select {
		case out := <-resc:
			outstanding--
			if out.err == nil {
				c.recordLatency(out.wall, len(p.points))
				if out.hedged {
					c.hedgeWins.Add(1)
				}
				return out.file, nil
			}
			if pctx.Err() != nil {
				// The sweep context expired; report that, not the
				// attempt's secondary cancellation error.
				return nil, ctx.Err()
			}
			failures = append(failures, fmt.Errorf("%s: %w", out.node, out.err))
			if errors.Is(out.err, errPermanent) {
				return nil, errors.Join(failures...)
			}
			if next < len(candidates) {
				c.redispatches.Add(1)
				launch(candidates[next], false)
				next++
				outstanding++
			} else if outstanding == 0 {
				return nil, fmt.Errorf("%w (%d points, %d nodes tried): %w",
					ErrUnavailable, len(p.points), len(candidates), errors.Join(failures...))
			}
		case <-timer.C:
			if next < len(candidates) {
				c.hedges.Add(1)
				launch(candidates[next], true)
				next++
				outstanding++
				timer.Reset(delay)
			}
		case <-pctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt runs the partition once against one node. A non-owner target
// first probes the owner's durable store shard for each point (the
// fleet-wide store lookup), so hedged and re-dispatched partitions never
// re-simulate store-resident points while the owner can still serve GETs.
// A 429 (or local BusyError) retries the same node after its Retry-After
// hint, up to BusyRetries times.
func (c *Coordinator) attempt(ctx context.Context, node string, p *partition, spec SweepSpec, reqID string) (*sim.ResultsFile, error) {
	sp := obs.SpanFromContext(ctx)
	asp := sp.StartChild("attempt")
	asp.SetString("node", node)
	defer asp.End()

	resolved := []sim.RunRecord(nil)
	benches := p.benches
	if node != p.owner {
		resolved, benches = c.probeOwnerStore(ctx, p, spec)
		asp.SetInt("store_resolved", int64(len(resolved)))
		if len(benches) == 0 {
			c.pointsResolved.Add(uint64(len(resolved)))
			return &sim.ResultsFile{
				SchemaVersion: sim.ResultsSchemaVersion,
				Generator:     c.cfg.Generator,
				Runs:          resolved,
			}, nil
		}
	}

	for try := 0; ; try++ {
		file, err := c.dispatch(ctx, node, benches, spec, p.schemeIdx, reqID)
		var busy *BusyError
		if errors.As(err, &busy) && try < c.cfg.BusyRetries {
			c.busyRetries.Add(1)
			wait := busy.RetryAfter
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			if wait > c.cfg.MaxBusyWait {
				wait = c.cfg.MaxBusyWait
			}
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err != nil {
			asp.SetError(err)
			return nil, err
		}
		c.pointsResolved.Add(uint64(len(resolved)))
		file.Runs = append(file.Runs, resolved...)
		return file, nil
	}
}

// probeOwnerStore GETs each point's fingerprint from the owner's
// /v1/store shard with a short per-point budget, returning the resolved
// runs and the benches still needing simulation. Any probe failure simply
// leaves the point unresolved — the fabric degrades to re-simulation.
func (c *Coordinator) probeOwnerStore(ctx context.Context, p *partition, spec SweepSpec) (resolved []sim.RunRecord, remaining []string) {
	sc := spec.Schemes[p.schemeIdx]
	for _, pt := range p.points {
		res, ok := c.storeGet(ctx, p.owner, pt.key)
		if !ok {
			remaining = append(remaining, pt.bench)
			continue
		}
		resolved = append(resolved, sim.NewRunRecord(pt.bench, sc, spec.Opts, res))
	}
	return resolved, remaining
}

// storeGet is one peer store probe.
func (c *Coordinator) storeGet(ctx context.Context, node string, key store.Key) (res pipeline.Result, ok bool) {
	c.storeProbes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, c.cfg.StoreProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, node+"/v1/store/"+key.String(), nil)
	if err != nil {
		return res, false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return res, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return res, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return res, false
	}
	_, result, err := sim.DecodeStoredPayload(data)
	if err != nil {
		return res, false
	}
	c.storeHits.Add(1)
	return result, true
}

// subSweepRequest is the leaf sub-sweep body — the subset of the
// /v1/sweep wire schema the fabric uses (full-fidelity scheme records, so
// the leaf reconstructs exactly the scheme the gateway parsed).
type subSweepRequest struct {
	Benches       []string           `json:"benches"`
	SchemeRecords []sim.SchemeRecord `json:"scheme_records"`
	Insts         uint64             `json:"insts,omitempty"`
	Intervals     int                `json:"intervals,omitempty"`
	WarmupInsts   uint64             `json:"warmup_insts,omitempty"`
	DeadlineMS    int64              `json:"deadline_ms,omitempty"`
	Timings       bool               `json:"timings,omitempty"`
}

// dispatch executes one sub-sweep on one node: in-process for Self,
// HTTP POST /v1/sweep (marked leaf) for everyone else.
func (c *Coordinator) dispatch(ctx context.Context, node string, benches []string, spec SweepSpec, schemeIdx int, reqID string) (*sim.ResultsFile, error) {
	if node == c.cfg.Self && c.cfg.Local != nil {
		return c.cfg.Local(ctx, benches, spec.Schemes[schemeIdx], spec.Opts, spec.Timings)
	}
	body := subSweepRequest{
		Benches:       benches,
		SchemeRecords: []sim.SchemeRecord{sim.NewSchemeRecord(spec.Schemes[schemeIdx])},
		Insts:         spec.Opts.Insts,
		Intervals:     spec.Opts.Intervals,
		WarmupInsts:   spec.Opts.WarmupInsts,
		Timings:       spec.Timings,
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			body.DeadlineMS = ms
		}
	}
	data, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("fleet: marshal sub-sweep: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/sweep", bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("fleet: build sub-sweep: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(LeafHeader, LeafValue)
	if reqID != "" {
		req.Header.Set(requestIDHeader, reqID)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: sub-sweep to %s: %w", node, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: reading sub-sweep response from %s: %w", node, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var f sim.ResultsFile
		if err := json.Unmarshal(payload, &f); err != nil {
			return nil, fmt.Errorf("fleet: parse sub-sweep response from %s: %w", node, err)
		}
		return &f, nil
	case http.StatusTooManyRequests:
		ra, _ := ParseRetryAfter(resp.Header.Get("Retry-After"))
		return nil, &BusyError{RetryAfter: ra}
	case http.StatusServiceUnavailable:
		return nil, fmt.Errorf("%w: %s", ErrDraining, errBody(payload))
	case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		return nil, fmt.Errorf("%w: %s: %s", errPermanent, resp.Status, errBody(payload))
	default:
		return nil, fmt.Errorf("fleet: sub-sweep to %s: %s: %s", node, resp.Status, errBody(payload))
	}
}

// errBody extracts the service's {"error": ...} message, falling back to
// the raw body.
func errBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// ParseRetryAfter interprets a Retry-After header per RFC 9110: either a
// non-negative decimal number of seconds or an HTTP-date. A date in the
// past reports a zero duration with ok=true, distinct from the !ok of an
// absent or malformed header.
func ParseRetryAfter(ra string) (time.Duration, bool) {
	if ra == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(ra); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
