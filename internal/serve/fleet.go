package serve

// Fleet plane: when regsimd runs with -peers, the server fronts the
// distributed sweep fabric (internal/fleet). A client-facing sweep is
// scattered across the fleet — this node executes only the partitions it
// owns on the consistent-hash ring (via leafExec, with normal admission
// accounting) and proxies the rest as leaf-marked sub-sweeps. Leaf
// requests from peer gateways are never re-scattered and always answered
// synchronously. Two more routes serve the fabric: GET /v1/store/{key}
// exposes this node's durable store shard for peer lookups (so a hedged
// partition never re-simulates a store-resident point), and GET /v1/peers
// reports fleet membership and drain state.

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"regcache/internal/fleet"
	"regcache/internal/obs"
	"regcache/internal/sim"
	"regcache/internal/store"
)

// fleetEnabled reports whether this server fronts a fleet.
func (s *Server) fleetEnabled() bool { return s.fleet != nil }

// Fleet returns the server's coordinator (nil without -peers) — used by
// cmd/regsimd for metric wiring and by the cluster tests for ring
// introspection.
func (s *Server) Fleet() *fleet.Coordinator { return s.fleet }

// execSweep routes an admitted sweep: scattered across the fleet for
// client-facing requests on a fleet member, executed on the local backend
// otherwise (single-node servers and leaf sub-sweeps).
func (s *Server) execSweep(ctx context.Context, sw *sweep, viaFleet bool, reqID string) (*sim.ResultsFile, error) {
	if !viaFleet {
		return s.runSweep(ctx, sw)
	}
	return s.fleet.Run(ctx, fleet.SweepSpec{
		Schemes: sw.schemes,
		Benches: sw.benches,
		Opts:    sw.opts,
		Timings: sw.timings,
	}, reqID)
}

// leafExec is the coordinator's in-process executor for the partitions
// this node owns. It runs the same admission accounting a leaf HTTP
// request would get, translated to the fabric's error vocabulary: a full
// queue becomes a BusyError carrying the load-scaled Retry-After hint
// (retry here), draining becomes ErrDraining (re-dispatch to a peer).
func (s *Server) leafExec(ctx context.Context, benches []string, sc sim.Scheme, o sim.Options, timings bool) (*sim.ResultsFile, error) {
	n := len(benches)
	ok, draining := s.admit(n)
	if draining {
		return nil, fleet.ErrDraining
	}
	if !ok {
		s.rejectedBusy.Add(1)
		return nil, &fleet.BusyError{RetryAfter: s.retryAfterHint()}
	}
	defer s.release(n)
	s.pointsSubmitted.Add(uint64(n))
	return s.runSweep(ctx, &sweep{
		schemes: []sim.Scheme{sc},
		benches: benches,
		opts:    o,
		points:  n,
		timings: timings,
	})
}

// retryAfterHint scales the 429 back-off hint with queue pressure so
// fleet peers (and polite clients) back off proportionally: an empty
// queue returns the configured base hint, a full queue 8× that, linear in
// between.
func (s *Server) retryAfterHint() time.Duration {
	frac := float64(s.QueuedPoints()) / float64(s.cfg.MaxQueuedPoints)
	if frac > 1 {
		frac = 1
	}
	return s.cfg.RetryAfter + time.Duration(frac*7*float64(s.cfg.RetryAfter))
}

// setRetryAfter renders a duration as the Retry-After header, rounded up
// to whole seconds (the header's coarsest portable unit).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(d.Seconds()))))
}

// handleStoreGet serves this node's durable store shard to the fleet:
// GET /v1/store/{key} returns the raw stored payload for a fingerprint
// (the bytes sim.DecodeStoredPayload parses). Peers probe it before
// re-simulating a point whose owner cannot take the sub-sweep. It keeps
// answering during drain — a draining node's shard is exactly what the
// surviving nodes need.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		httpError(w, http.StatusNotFound, "no durable store configured")
		return
	}
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	data, err := s.cfg.Store.Store().Get(key)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	case errors.Is(err, store.ErrNotFound), errors.Is(err, store.ErrCorrupt):
		// A corrupt record is a miss from the fleet's point of view: the
		// prober falls back to simulation, which re-puts a good record.
		httpError(w, http.StatusNotFound, "not found")
	case errors.Is(err, store.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "store closed")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// peersResponse is the GET /v1/peers body.
type peersResponse struct {
	Self         string   `json:"self,omitempty"`
	Endpoints    []string `json:"endpoints"`
	Draining     bool     `json:"draining"`
	QueuedPoints int      `json:"queued_points"`
	Store        bool     `json:"store"`
}

// handlePeers reports fleet membership and this node's health — the
// fabric's discovery/health endpoint. On a single-node server it reports
// an empty fleet, so clients can always ask.
func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	resp := peersResponse{
		Endpoints:    []string{},
		Draining:     s.Draining(),
		QueuedPoints: s.QueuedPoints(),
		Store:        s.cfg.Store != nil,
	}
	if s.fleet != nil {
		resp.Self = s.cfg.SelfURL
		resp.Endpoints = s.fleet.Endpoints()
	}
	writeJSON(w, resp)
}

// registerFleetMetrics publishes the coordinator's counters next to the
// service metrics.
func (s *Server) registerFleetMetrics(reg *obs.Registry, prefix string) {
	if s.fleet != nil {
		s.fleet.RegisterMetrics(reg, prefix+".fleet")
	}
}

// isLeaf reports whether the request is a fabric sub-sweep (dispatched by
// a peer gateway or a multi-endpoint client): executed locally, answered
// synchronously, never re-scattered.
func isLeaf(r *http.Request) bool {
	return r.Header.Get(fleet.LeafHeader) == fleet.LeafValue
}
