package serve

// End-to-end tests of POST /v1/explore: sync grid search over the real
// runner, async halving with job polling, the replay guarantees (warm
// memo and warm store re-submissions are byte-identical and simulate
// nothing), wire validation (400/413 before admission), and failure
// hygiene (an erroring candidate fails the job drain-clean).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"regcache/internal/explore"
	"regcache/internal/obs"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
	"regcache/internal/store"
)

func postExplore(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/explore: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

// exploreBody is an 8-candidate halving search small enough for the sync
// path at the default MaxSyncPoints.
const exploreBody = `{
	"benches": ["gzip"],
	"space": {
		"entries": {"values": [8, 16, 32, 64]},
		"ways": {"values": [1]},
		"index": ["preg", "filtered"]
	},
	"strategy": "halving",
	"insts": 4000,
	"min_insts": 1000
}`

// exploreEvals is the schedule size of exploreBody: rungs of 8, 4, and 2
// candidates (budgets 1000, 2000, 4000) over one benchmark.
const exploreEvals = 8 + 4 + 2

// TestExploreSyncHalving: the sync path returns a validated document, and
// an identical re-submission is answered entirely from the runner memo —
// zero new simulations, byte-identical body (the warm-memo half of the
// determinism/replay satellite).
func TestExploreSyncHalving(t *testing.T) {
	runner := sim.NewRunnerWith(2, sim.NewWorkloadCache())
	srv := New(Config{Backend: runner})
	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg, "serve")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer runner.Close()

	resp, cold := postExplore(t, ts, exploreBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, cold)
	}
	var res explore.Result
	if err := json.Unmarshal(cold, &res); err != nil {
		t.Fatalf("parse result: %v", err)
	}
	if err := explore.ValidateResult(&res); err != nil {
		t.Fatalf("document fails validation: %v\n%s", err, cold)
	}
	if res.Generator != "regsimd" || res.Strategy != "halving" {
		t.Errorf("generator %q strategy %q", res.Generator, res.Strategy)
	}
	if len(res.Points) != 8 || len(res.Rungs) != 3 {
		t.Errorf("%d points, %d rungs; want 8 and 3", len(res.Points), len(res.Rungs))
	}
	if len(res.Frontier) == 0 {
		t.Error("empty frontier")
	}
	jobsAfterCold := runner.Stats().JobsRun
	if jobsAfterCold == 0 {
		t.Fatal("cold exploration simulated nothing")
	}

	resp, warm := postExplore(t, ts, exploreBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, warm)
	}
	if string(warm) != string(cold) {
		t.Error("warm re-submission body differs from cold")
	}
	if d := runner.Stats().JobsRun - jobsAfterCold; d != 0 {
		t.Errorf("warm re-submission ran %d simulations, want 0", d)
	}

	// The explore counters moved.
	snap := reg.Snapshot()
	if snap["serve.explore.accepted"] != uint64(2) {
		t.Errorf("explore.accepted = %v, want 2", snap["serve.explore.accepted"])
	}
	if snap["serve.explore.candidates"] != uint64(16) {
		t.Errorf("explore.candidates = %v, want 16", snap["serve.explore.candidates"])
	}
}

// TestExploreAsyncJob: async explorations run the job machinery —
// 202 + job ID, long-poll to settlement, results document fetchable and
// identical to a fresh submission's.
func TestExploreAsyncJob(t *testing.T) {
	runner := sim.NewRunnerWith(2, sim.NewWorkloadCache())
	srv := New(Config{Backend: runner})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer runner.Close()

	async := strings.Replace(exploreBody, `"benches"`, `"async": true, "benches"`, 1)
	resp, data := postExplore(t, ts, async)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != "explore" || st.Status != "running" || st.Points != exploreEvals {
		t.Fatalf("job status %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.Status == "running" {
		if time.Now().After(deadline) {
			t.Fatal("job did not settle")
		}
		resp, data = get(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=5s")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.Status != "done" {
		t.Fatalf("job settled as %+v", st)
	}
	resp, asyncDoc := get(t, ts.URL+"/v1/jobs/"+st.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status %d: %s", resp.StatusCode, asyncDoc)
	}
	var res explore.Result
	if err := json.Unmarshal(asyncDoc, &res); err != nil {
		t.Fatal(err)
	}
	if err := explore.ValidateResult(&res); err != nil {
		t.Fatalf("async document fails validation: %v", err)
	}

	// A sync submission of the same search returns the same bytes.
	resp, syncDoc := postExplore(t, ts, exploreBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d: %s", resp.StatusCode, syncDoc)
	}
	if string(syncDoc) != string(asyncDoc) {
		t.Error("async and sync documents differ")
	}
}

// TestExploreWarmStoreReplay is the cold-vs-warm-store half of the
// determinism/replay satellite: a fresh process over the same durable
// store reproduces the document byte-identically with JobsRun == 0 and
// every candidate evaluation answered by the store.
func TestExploreWarmStoreReplay(t *testing.T) {
	dir := t.TempDir()
	wc := sim.NewWorkloadCache()

	run := func() ([]byte, sim.RunnerStats) {
		rs, err := sim.OpenResultStore(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		runner := sim.NewRunnerWith(2, wc)
		if err := runner.UseStore(rs); err != nil {
			t.Fatal(err)
		}
		srv := New(Config{Backend: runner})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, body := postExplore(t, ts, exploreBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		stats := runner.Stats()
		if err := srv.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := rs.Close(); err != nil {
			t.Fatal(err)
		}
		return body, stats
	}

	cold, coldStats := run()
	warm, warmStats := run()
	if string(cold) != string(warm) {
		t.Error("cold and warm documents differ")
	}
	if coldStats.JobsRun != exploreEvals {
		t.Errorf("cold process ran %d jobs, want %d", coldStats.JobsRun, exploreEvals)
	}
	if warmStats.JobsRun != 0 {
		t.Errorf("warm process ran %d jobs, want 0", warmStats.JobsRun)
	}
	if warmStats.StoreHits != exploreEvals {
		t.Errorf("warm process had %d store hits, want %d (one per evaluation)", warmStats.StoreHits, exploreEvals)
	}
}

// TestExploreValidation: malformed requests answer 400, never-admissible
// ones 413, all before any admission or simulation.
func TestExploreValidation(t *testing.T) {
	fb := &fakeBackend{}
	srv := New(Config{Backend: fb, MaxQueuedPoints: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"not json", `nope`, http.StatusBadRequest},
		{"no benches", `{"space":{"entries":{"values":[16]},"ways":{"values":[1]}}}`, http.StatusBadRequest},
		{"unknown bench", `{"benches":["quake"],"space":{"entries":{"values":[16]},"ways":{"values":[1]}}}`, http.StatusBadRequest},
		{"no axes", `{"benches":["gzip"],"space":{}}`, http.StatusBadRequest},
		{"inverted range", `{"benches":["gzip"],"space":{"entries":{"min":64,"max":16,"step":8},"ways":{"values":[1]}}}`, http.StatusBadRequest},
		{"zero step", `{"benches":["gzip"],"space":{"entries":{"min":8,"max":64},"ways":{"values":[1]}}}`, http.StatusBadRequest},
		{"bad strategy", `{"benches":["gzip"],"strategy":"anneal","space":{"entries":{"values":[16]},"ways":{"values":[1]}}}`, http.StatusBadRequest},
		{"bad eta", `{"benches":["gzip"],"strategy":"halving","eta":1,"space":{"entries":{"values":[16]},"ways":{"values":[1]}}}`, http.StatusBadRequest},
		{"all invalid", `{"benches":["gzip"],"space":{"entries":{"values":[16]},"ways":{"values":[5]}}}`, http.StatusBadRequest},
		{"space too large", `{"benches":["gzip"],"space":{"entries":{"min":1,"max":64,"step":1},"ways":{"min":0,"max":63,"step":1},"kinds":["use","lru"]}}`, http.StatusRequestEntityTooLarge},
		{"over capacity", `{"benches":["gzip","mcf","gcc"],"space":{"entries":{"values":[16,32,64]},"ways":{"values":[1]}}}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, data := postExplore(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, data)
		}
	}
	if fb.Stats().JobsRun != 0 {
		t.Errorf("rejected requests reached the backend (%d runs)", fb.Stats().JobsRun)
	}
	if srv.QueuedPoints() != 0 {
		t.Errorf("rejected requests leaked %d queued points", srv.QueuedPoints())
	}
}

// erroringBackend fails every point of one scheme, so an exploration dies
// mid-rung while its other points succeed.
type erroringBackend struct {
	mu   sync.Mutex
	fail string // scheme-name substring that errors
	runs int
}

func (e *erroringBackend) Run(ctx context.Context, bench string, s sim.Scheme, o sim.Options) (pipeline.Result, error) {
	e.mu.Lock()
	e.runs++
	e.mu.Unlock()
	if strings.Contains(s.Name, e.fail) {
		return pipeline.Result{}, fmt.Errorf("point %s/%s exploded", s.Name, bench)
	}
	return pipeline.Result{IPC: 1}, nil
}

func (e *erroringBackend) Stats() sim.RunnerStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return sim.RunnerStats{JobsRun: uint64(e.runs)}
}

func (e *erroringBackend) Close() {}

// TestExploreErrorFailsJobDrainClean: a candidate erroring mid-rung fails
// the async job with the rung identified, releases every admitted point,
// and leaves the server able to drain immediately (nothing orphaned).
func TestExploreErrorFailsJobDrainClean(t *testing.T) {
	eb := &erroringBackend{fail: "use-32x1"}
	srv := New(Config{Backend: eb})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	async := strings.Replace(exploreBody, `"benches"`, `"async": true, "benches"`, 1)
	resp, data := postExplore(t, ts, async)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	resp, data = get(t, ts.URL+"/v1/jobs/"+st.ID+"?wait=10s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "failed" || !strings.Contains(st.Error, "rung 0") || !strings.Contains(st.Error, "exploded") {
		t.Fatalf("job settled as %+v, want failure naming rung 0", st)
	}
	resp, _ = get(t, ts.URL+"/v1/jobs/"+st.ID+"/results")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("failed job results status %d, want 500", resp.StatusCode)
	}

	waitFor(t, func() bool { return srv.QueuedPoints() == 0 }, "queued points released")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain after failed job: %v", err)
	}
}
