package serve

// End-to-end service tests over net/http/httptest: coalescing of
// concurrent identical sweeps (one simulation, byte-identical bodies),
// prompt deadline-exceeded returns, bounded-queue load shedding with 429,
// and graceful drain that completes in-flight jobs. All of it runs under
// `go test -race` in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"regcache/internal/obs"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
)

// fakeBackend is a controllable Backend: Run blocks on gate (when set)
// until release() or context expiry.
type fakeBackend struct {
	mu     sync.Mutex
	gate   chan struct{}
	runs   int
	closed bool
}

func newBlockingBackend() *fakeBackend {
	return &fakeBackend{gate: make(chan struct{})}
}

func (f *fakeBackend) Run(ctx context.Context, bench string, s sim.Scheme, o sim.Options) (pipeline.Result, error) {
	f.mu.Lock()
	f.runs++
	gate := f.gate
	f.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return pipeline.Result{}, ctx.Err()
		}
	}
	return pipeline.Result{IPC: 1}, nil
}

func (f *fakeBackend) release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gate != nil {
		close(f.gate)
		f.gate = nil
	}
}

func (f *fakeBackend) Stats() sim.RunnerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return sim.RunnerStats{JobsRun: uint64(f.runs)}
}

func (f *fakeBackend) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
}

func (f *fakeBackend) wasClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

// TestConcurrentIdenticalSweepsCoalesce is the tentpole proof: N
// concurrent identical sweep requests produce exactly one simulation
// (coalesce counter = N-1 on the run layer) and byte-identical bodies.
func TestConcurrentIdenticalSweepsCoalesce(t *testing.T) {
	runner := sim.NewRunnerWith(2, sim.NewWorkloadCache())
	srv := New(Config{Backend: runner})
	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg, "serve")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer runner.Close()

	const n = 6
	body := `{"benches":["gzip"],"schemes":["use:16x2:filtered"],"insts":5000}`
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postSweep(t, ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = data
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var f sim.ResultsFile
	if err := json.Unmarshal(bodies[0], &f); err != nil {
		t.Fatalf("parsing results: %v", err)
	}
	if f.SchemaVersion != sim.ResultsSchemaVersion || len(f.Runs) != 1 {
		t.Fatalf("results file: schema %d, %d runs", f.SchemaVersion, len(f.Runs))
	}
	if f.Runs[0].IPC <= 0 {
		t.Fatalf("run IPC = %v, want > 0", f.Runs[0].IPC)
	}

	st := runner.Stats()
	if st.JobsRun != 1 {
		t.Fatalf("jobs run = %d, want 1 (identical sweeps must coalesce)", st.JobsRun)
	}
	if st.CacheHits != n-1 {
		t.Fatalf("coalesce counter = %d, want %d", st.CacheHits, n-1)
	}

	// The service metrics reflect the coalescing and the drained queue.
	snap := reg.Snapshot()
	if got := snap["serve.coalesced_points"]; got != uint64(n-1) {
		t.Fatalf("serve.coalesced_points = %v, want %d", got, n-1)
	}
	if got := snap["serve.points_run"]; got != uint64(1) {
		t.Fatalf("serve.points_run = %v, want 1", got)
	}
	if got := snap["serve.queued_points"]; got != 0 {
		t.Fatalf("serve.queued_points = %v, want 0 after completion", got)
	}

	// And they are visible on the expvar endpoint the mux serves.
	obs.Default().Publish("regcache")
	resp, data := get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	if !bytes.Contains(data, []byte(`"regcache"`)) {
		t.Fatalf("/debug/vars does not expose the regcache registry")
	}
}

// TestDeadlineExceededReturnsPromptly: a sweep whose deadline expires
// while its points are still executing returns 504 quickly instead of
// hanging for the full simulation.
func TestDeadlineExceededReturnsPromptly(t *testing.T) {
	be := newBlockingBackend()
	defer be.release()
	srv := New(Config{Backend: be})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	resp, data := postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"],"deadline_ms":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, data)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("deadline-exceeded response took %v", el)
	}
	if !bytes.Contains(data, []byte("deadline")) {
		t.Fatalf("error body %s does not mention the deadline", data)
	}
	if srv.QueuedPoints() != 0 {
		t.Fatalf("queued points = %d after deadline, want 0", srv.QueuedPoints())
	}
}

// TestFullQueueShedsLoad: once admitted-but-unfinished points reach the
// bound, further sweeps get 429 + Retry-After; capacity admits again
// after the queue drains.
func TestFullQueueShedsLoad(t *testing.T) {
	be := newBlockingBackend()
	srv := New(Config{Backend: be, MaxQueuedPoints: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Fill the queue: async so the handler returns while points block.
	resp, data := postSweep(t, ts, `{"benches":["gzip","mcf"],"schemes":["mono:3"],"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("filler sweep: status %d: %s", resp.StatusCode, data)
	}
	var job JobStatus
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatalf("parsing job: %v", err)
	}

	resp, data = postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota sweep: status %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}

	// Drain the queue and verify admission recovers.
	be.release()
	resp, data = get(t, fmt.Sprintf("%s/v1/jobs/%s?wait=10s", ts.URL, job.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status: %d: %s", resp.StatusCode, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil || st.Status != "done" {
		t.Fatalf("job status = %s (err %v), want done", data, err)
	}
	resp, data = postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain sweep: status %d, want 200: %s", resp.StatusCode, data)
	}
}

// TestOversizedSweepRejectedPermanently: a sweep larger than the whole
// queue bound can never be admitted, so even an idle server answers 413
// without a Retry-After — a 429 would have well-behaved clients retry a
// permanently failing request forever.
func TestOversizedSweepRejectedPermanently(t *testing.T) {
	be := &fakeBackend{}
	srv := New(Config{Backend: be, MaxQueuedPoints: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postSweep(t, ts, `{"benches":["gzip","mcf","twolf"],"schemes":["mono:3"]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatalf("413 carries Retry-After %q; the rejection is permanent", resp.Header.Get("Retry-After"))
	}
	if srv.QueuedPoints() != 0 {
		t.Fatalf("queued points = %d after rejection, want 0", srv.QueuedPoints())
	}
	// A sweep that fits the bound still runs on the idle server.
	resp, data = postSweep(t, ts, `{"benches":["gzip","mcf"],"schemes":["mono:3"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fitting sweep: status %d, want 200: %s", resp.StatusCode, data)
	}
}

// TestHostileSchemeConfigsRejected: scheme specs and full SchemeRecord
// blocks that would panic the simulator (non-divisible geometries,
// negative sizes, an undersized physical register space) must bounce with
// 400 at parse time instead of crashing a worker goroutine.
func TestHostileSchemeConfigsRejected(t *testing.T) {
	be := &fakeBackend{}
	srv := New(Config{Backend: be})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"non-divisible spec geometry", `{"benches":["gzip"],"schemes":["use:64x3"]}`},
		{"record with negative entries", `{"benches":["gzip"],"scheme_records":[{"name":"x","kind":"cache","cache":{"Entries":-8,"Ways":2}}]}`},
		{"record with non-divisible geometry", `{"benches":["gzip"],"scheme_records":[{"name":"x","kind":"cache","cache":{"Entries":64,"Ways":3}}]}`},
		{"record with tiny preg space", `{"benches":["gzip"],"scheme_records":[{"name":"x","kind":"cache","cache":{"Entries":64,"Ways":2,"MaxPRegs":4}}]}`},
		{"record with huge entries", `{"benches":["gzip"],"scheme_records":[{"name":"x","kind":"cache","cache":{"Entries":1073741824,"Ways":2}}]}`},
		{"record with negative two-level L1", `{"benches":["gzip"],"scheme_records":[{"name":"x","kind":"two-level","two_level":{"L1Entries":-96}}]}`},
	}
	for _, tc := range cases {
		resp, data := postSweep(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, data)
		}
	}
	be.mu.Lock()
	runs := be.runs
	be.mu.Unlock()
	if runs != 0 {
		t.Errorf("backend ran %d points for hostile configs, want 0", runs)
	}
}

// TestSettledJobsEvicted: the job map is capped at MaxJobs — sustained
// async load evicts the oldest settled jobs (and their results documents)
// instead of growing without bound.
func TestSettledJobsEvicted(t *testing.T) {
	be := &fakeBackend{}
	srv := New(Config{Backend: be, MaxJobs: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		resp, data := postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"],"async":true}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async sweep %d: status %d: %s", i, resp.StatusCode, data)
		}
		var job JobStatus
		if err := json.Unmarshal(data, &job); err != nil {
			t.Fatalf("parsing job: %v", err)
		}
		ids = append(ids, job.ID)
		// Settle before submitting the next: only settled jobs are evictable.
		resp, data = get(t, fmt.Sprintf("%s/v1/jobs/%s?wait=10s", ts.URL, job.ID))
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil || st.Status != "done" {
			t.Fatalf("job %s = %s (err %v), want done", job.ID, data, err)
		}
	}

	// The oldest job was evicted to admit the third; the newest survives.
	resp, _ := get(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, ids[0]))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job %s: status %d, want 404", ids[0], resp.StatusCode)
	}
	resp, data := get(t, fmt.Sprintf("%s/v1/jobs/%s/results", ts.URL, ids[2]))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("newest job %s results: status %d, want 200: %s", ids[2], resp.StatusCode, data)
	}
}

// TestDrainCompletesInFlight: Drain (the SIGTERM path) refuses new work
// with 503, waits for in-flight jobs, closes the backend, and keeps
// completed results fetchable.
func TestDrainCompletesInFlight(t *testing.T) {
	be := newBlockingBackend()
	srv := New(Config{Backend: be})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"],"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async sweep: status %d: %s", resp.StatusCode, data)
	}
	var job JobStatus
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatalf("parsing job: %v", err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Draining refuses new sweeps with 503.
	waitFor(t, srv.Draining, "server to start draining")
	resp, data = postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep during drain: status %d, want 503: %s", resp.StatusCode, data)
	}

	// The in-flight job completes; Drain returns and closes the backend.
	be.release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !be.wasClosed() {
		t.Fatalf("drain did not close the backend runner")
	}

	// The drained job's results were not lost.
	resp, data = get(t, fmt.Sprintf("%s/v1/jobs/%s/results", ts.URL, job.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain results: status %d: %s", resp.StatusCode, data)
	}
	var f sim.ResultsFile
	if err := json.Unmarshal(data, &f); err != nil || len(f.Runs) != 1 {
		t.Fatalf("post-drain results body %s (err %v)", data, err)
	}
}

// TestLargeSweepGoesAsync: sweeps above MaxSyncPoints are answered with
// 202 + a job ID even without async:true; the job completes and its
// document is fetchable.
func TestLargeSweepGoesAsync(t *testing.T) {
	runner := sim.NewRunnerWith(2, sim.NewWorkloadCache())
	srv := New(Config{Backend: runner, MaxSyncPoints: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer runner.Close()

	resp, data := postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:1","mono:3"],"insts":5000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202: %s", resp.StatusCode, data)
	}
	var job JobStatus
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatalf("parsing job: %v", err)
	}
	if job.Points != 2 {
		t.Fatalf("job points = %d, want 2", job.Points)
	}

	resp, data = get(t, fmt.Sprintf("%s/v1/jobs/%s?wait=10s", ts.URL, job.ID))
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil || st.Status != "done" {
		t.Fatalf("job after wait = %s (err %v), want done", data, err)
	}
	resp, data = get(t, fmt.Sprintf("%s/v1/jobs/%s/results", ts.URL, job.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d: %s", resp.StatusCode, data)
	}
	var f sim.ResultsFile
	if err := json.Unmarshal(data, &f); err != nil || len(f.Runs) != 2 {
		t.Fatalf("results body has %d runs (err %v), want 2", len(f.Runs), err)
	}
	// The job list knows about it too.
	resp, data = get(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte(job.ID)) {
		t.Fatalf("/v1/jobs (%d): %s", resp.StatusCode, data)
	}
}

// TestBadRequests exercises the 400/404 surfaces.
func TestBadRequests(t *testing.T) {
	be := &fakeBackend{}
	srv := New(Config{Backend: be})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"benches":`},
		{"no schemes", `{"benches":["gzip"]}`},
		{"unknown bench", `{"benches":["nope"],"schemes":["mono:3"]}`},
		{"bad scheme spec", `{"benches":["gzip"],"schemes":["warp:9"]}`},
		{"bad geometry", `{"benches":["gzip"],"schemes":["use:64y2"]}`},
	}
	for _, tc := range cases {
		resp, data := postSweep(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, data)
		}
	}

	resp, _ := get(t, ts.URL+"/v1/jobs/j-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/jobs/j-999/results")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job results: status %d, want 404", resp.StatusCode)
	}

	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", resp.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
