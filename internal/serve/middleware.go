package serve

// Request-ID middleware: every request through the service — including
// ones shed at admission, rejected as oversized, or failed inside a
// handler — is tagged with an X-Request-Id that appears on the response,
// in every structured log line, and on the request's flight-recorder
// trace. Clients may supply their own ID (propagated from an upstream
// system); absent or malformed ones are replaced server-side.

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"regcache/internal/obs"
)

// RequestIDHeader is the request-correlation header the service reads
// and always sets on responses.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds an inbound ID so a hostile client cannot stuff
// kilobytes into every log line and trace of its request.
const maxRequestIDLen = 64

// sanitizeRequestID accepts an inbound ID if it is non-empty, bounded,
// and printable-ASCII without spaces; anything else returns "" (caller
// assigns a fresh one). Header injection is already impossible through
// net/http, so the filter is about keeping logs and traces greppable.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' || c == '"' {
			return ""
		}
	}
	return id
}

// ridCtxKey carries the request ID through a context (independently of
// any span: rejected requests have an ID but never get a trace).
type ridCtxKey struct{}

// RequestIDFrom returns the request ID assigned by the middleware, or ""
// outside a request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridCtxKey{}).(string)
	return id
}

// statusWriter captures the response status for the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// withRequestID wraps next so every request carries an ID: inbound
// X-Request-Id is honoured (after sanitizing), otherwise one is
// assigned. The response header is set before the handler runs, so
// every exit path — 2xx, 413, 429, 503, panics recovered upstream —
// returns the ID the logs and flight recorder filed the request under.
// Each request also emits one structured log line.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), ridCtxKey{}, id))
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		level := slog.LevelInfo
		if status >= 500 {
			level = slog.LevelError
		} else if status >= 400 {
			level = slog.LevelWarn
		}
		s.logger.LogAttrs(r.Context(), level, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("elapsed_ms", float64(time.Since(start).Microseconds())/1e3),
			slog.String("request_id", id),
		)
	})
}
