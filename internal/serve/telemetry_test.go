package serve

// End-to-end telemetry-plane tests: X-Request-Id round-trips on every
// response path (success, 413, bad request), the flight recorder retains
// the full span tree of a traced sweep (admission -> point ->
// store-or-simulate -> intervals), /metrics deltas agree with the run
// layer's own counters, and repeat sweeps report the coalesced outcome
// in their timing blocks.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"regcache/internal/obs"
	"regcache/internal/sim"
)

// telemetryServer builds a served Server over a real 2-worker runner with
// a private flight recorder and registry.
func telemetryServer(t *testing.T, cfg Config) (*Server, *sim.Runner, *obs.FlightRecorder, *obs.Registry, *httptest.Server) {
	t.Helper()
	runner := sim.NewRunnerWith(2, sim.NewWorkloadCache())
	fr := obs.NewFlightRecorder(16, 32)
	cfg.Backend = runner
	cfg.Flight = fr
	srv := New(cfg)
	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg, "serve")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(runner.Close)
	return srv, runner, fr, reg, ts
}

func TestRequestIDRoundTrip(t *testing.T) {
	_, _, _, _, ts := telemetryServer(t, Config{MaxQueuedPoints: 2})

	do := func(id, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Client-supplied ID echoed on a successful response.
	ok := `{"benches":["gzip"],"schemes":["mono:3"],"insts":2000}`
	if got := do("client-id-1", ok).Header.Get(RequestIDHeader); got != "client-id-1" {
		t.Errorf("client ID not echoed: got %q", got)
	}

	// No inbound ID: server assigns one.
	if got := do("", ok).Header.Get(RequestIDHeader); !strings.HasPrefix(got, "r-") {
		t.Errorf("server-assigned ID = %q, want r-... form", got)
	}

	// A malformed inbound ID (control characters) is replaced, not echoed.
	if got := do("bad id with spaces", ok).Header.Get(RequestIDHeader); !strings.HasPrefix(got, "r-") {
		t.Errorf("malformed ID not replaced: got %q", got)
	}

	// The header rides on rejections too: a sweep too large for the queue
	// bound (413) and a parse failure (400).
	big := `{"benches":["gzip","mcf","twolf"],"schemes":["mono:3"]}`
	resp := do("shed-id", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized sweep: status %d, want 413", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "shed-id" {
		t.Errorf("413 response lost the request ID: got %q", got)
	}
	resp = do("bad-json-id", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "bad-json-id" {
		t.Errorf("400 response lost the request ID: got %q", got)
	}

	// Non-sweep endpoints carry it as well.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if got := hresp.Header.Get(RequestIDHeader); got == "" {
		t.Error("/healthz response has no request ID")
	}
}

// TestSweepTraceInFlightRecorder is the tentpole acceptance test: one
// traced interval sweep leaves a span tree in /debug/flight covering
// admission -> point -> simulate -> per-interval warm-up and measured
// windows, filed under the client's request ID.
func TestSweepTraceInFlightRecorder(t *testing.T) {
	_, _, fr, _, ts := telemetryServer(t, Config{})

	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep",
		strings.NewReader(`{"benches":["gzip"],"schemes":["use:16x2:filtered"],"insts":20000,"intervals":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}

	d := fr.Dump()
	var trace *obs.TraceDump
	for i := range d.Traces {
		if d.Traces[i].RequestID == "trace-me" {
			trace = &d.Traces[i]
			break
		}
	}
	if trace == nil {
		t.Fatalf("no trace for request trace-me (%d traces recorded)", len(d.Traces))
	}
	if trace.Root.Name != "sweep" {
		t.Fatalf("root span %q, want sweep", trace.Root.Name)
	}
	adm := trace.Root.Find("admission")
	if adm == nil || adm.Attrs["outcome"] != "admitted" {
		t.Fatalf("admission span missing or not admitted: %+v", adm)
	}
	point := trace.Root.Find("point")
	if point == nil {
		t.Fatal("point span missing")
	}
	if sc, _ := point.Attrs["scheme"].(string); sc == "" || point.Attrs["bench"] != "gzip" {
		t.Errorf("point attrs = %v", point.Attrs)
	}
	simSp := point.Find("simulate")
	if simSp == nil {
		t.Fatal("simulate span missing under point")
	}
	if point.Find("store-lookup") == nil {
		t.Error("store-lookup span missing under point (decision must be visible even with no store)")
	}
	// Two intervals, each with a measured window (the first interval has
	// no warm-up), plus the stitch.
	var intervals, measured, warmups int
	var walk func(s *obs.SpanDump)
	walk = func(s *obs.SpanDump) {
		switch s.Name {
		case "interval":
			intervals++
		case "measured":
			measured++
		case "warmup":
			warmups++
		}
		for i := range s.Children {
			walk(&s.Children[i])
		}
	}
	walk(simSp)
	if intervals != 2 || measured != 2 || warmups < 1 {
		t.Errorf("interval spans: %d interval, %d measured, %d warmup; want 2, 2, >=1", intervals, measured, warmups)
	}
	if simSp.Find("stitch") == nil {
		t.Error("stitch span missing under simulate")
	}
	// The trace is what /debug/flight serves.
	hresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	body := json.NewDecoder(hresp.Body)
	var served obs.FlightDump
	if err := body.Decode(&served); err != nil {
		t.Fatalf("/debug/flight not a flight dump: %v", err)
	}
	hresp.Body.Close()
	found := false
	for _, tr := range served.Traces {
		if tr.RequestID == "trace-me" {
			found = true
		}
	}
	if !found {
		t.Error("/debug/flight does not serve the recorded trace")
	}
}

// TestMetricsEndpointDeltas scrapes /metrics before and after a sweep
// and checks the deltas agree with the run layer's own counters.
func TestMetricsEndpointDeltas(t *testing.T) {
	_, runner, _, _, ts := telemetryServer(t, Config{})

	scrape := func() map[string]float64 {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("/metrics content type %q", ct)
		}
		out := make(map[string]float64)
		buf := new(strings.Builder)
		if _, err := io.Copy(buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			var v float64
			if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil {
				out[fields[0]] = v
			}
		}
		return out
	}

	before := scrape()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"benches":["gzip"],"schemes":["mono:3"],"insts":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	after := scrape()

	st := runner.Stats()
	if got := after["serve_runner_jobs_run"] - before["serve_runner_jobs_run"]; got != float64(st.JobsRun) {
		t.Errorf("serve_runner_jobs_run delta %v, runner counter %d", got, st.JobsRun)
	}
	if got := after["serve_sweeps_accepted"] - before["serve_sweeps_accepted"]; got != 1 {
		t.Errorf("serve_sweeps_accepted delta %v, want 1", got)
	}
	if got := after["serve_points_run"] - before["serve_points_run"]; got != float64(st.JobsRun) {
		t.Errorf("serve_points_run delta %v, want %d", got, st.JobsRun)
	}
}

// TestTimingsBlock: with "timings" set, each run carries a schema-v2
// timing block; a repeated identical sweep reports outcome "coalesced"
// (the memo served it), and without the flag the block is absent so the
// default body stays a pure function of the request.
func TestTimingsBlock(t *testing.T) {
	_, _, _, _, ts := telemetryServer(t, Config{})

	post := func(body string) *sim.ResultsFile {
		t.Helper()
		resp, data := postSweep(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var f sim.ResultsFile
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatal(err)
		}
		if len(f.Runs) != 1 {
			t.Fatalf("%d runs", len(f.Runs))
		}
		return &f
	}

	first := post(`{"benches":["gzip"],"schemes":["mono:3"],"insts":2000,"timings":true}`)
	tm := first.Runs[0].Timing
	if tm == nil {
		t.Fatal("timings requested but no timing block")
	}
	if tm.Outcome != "simulated" {
		t.Errorf("first run outcome %q, want simulated", tm.Outcome)
	}
	if tm.SimMS <= 0 {
		t.Errorf("first run sim_ms = %v, want > 0", tm.SimMS)
	}

	second := post(`{"benches":["gzip"],"schemes":["mono:3"],"insts":2000,"timings":true}`)
	tm2 := second.Runs[0].Timing
	if tm2 == nil || tm2.Outcome != "coalesced" {
		t.Fatalf("repeat run timing = %+v, want outcome coalesced", tm2)
	}

	plain := post(`{"benches":["gzip"],"schemes":["mono:3"],"insts":2000}`)
	if plain.Runs[0].Timing != nil {
		t.Error("timing block present without the timings flag")
	}
}
