// Package serve implements the regsimd service plane: an HTTP front end
// that accepts sweep jobs (scheme × benchmark matrices), shards their
// points across the sim.Runner worker pool, coalesces identical in-flight
// and memoized points through the run layer's single-flight cache, and
// returns curated sim.ResultsFile documents — synchronously for small
// sweeps, via polled/long-polled job IDs for large ones.
//
// The service is production-shaped:
//
//   - Admission is bounded in units of sweep points (one point = one
//     scheme × benchmark simulation). When the admitted-but-unfinished
//     point count would exceed the configured bound, the request is shed
//     with 429 and a Retry-After hint instead of queueing unboundedly.
//   - Every request carries a deadline (client-chosen, capped) that is
//     propagated as a context into the runner, so a stuck sweep returns
//     promptly with 504 while the underlying simulations stay memoized
//     for the next requester.
//   - Drain stops admission (503), waits for every in-flight sweep, and
//     then closes the runner via Runner.Close — the SIGTERM path of
//     cmd/regsimd. Results of jobs that finished during the drain remain
//     fetchable.
//   - Metrics (queue depth, coalesce counters, per-sweep latency
//     histogram) register into the obs.Registry served on the expvar
//     endpoint, and the API mux mounts /debug/ (expvar + pprof) itself.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"regcache/internal/fleet"
	"regcache/internal/obs"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
)

// Backend executes sweep points. *sim.Runner satisfies it directly; tests
// substitute controllable fakes.
type Backend interface {
	Run(ctx context.Context, bench string, s sim.Scheme, o sim.Options) (pipeline.Result, error)
	Stats() sim.RunnerStats
	Close()
}

// TimedBackend is the optional extension a backend implements to report
// per-point latency breakdowns. *sim.Runner implements it; plain Backend
// fakes keep working (their points simply carry no timing block).
type TimedBackend interface {
	RunTimed(ctx context.Context, bench string, s sim.Scheme, o sim.Options) (pipeline.Result, sim.PointTiming, error)
}

// Config sizes the service. Zero values select the defaults.
type Config struct {
	Backend Backend // nil: a fresh sim.NewRunner(Workers)
	Workers int     // runner pool size when Backend is nil; <=0 selects NumCPU

	MaxQueuedPoints int           // admission bound on unfinished points; default 4096
	MaxSyncPoints   int           // larger sweeps are answered async (202 + job); default 64
	MaxJobs         int           // settled async jobs retained for polling; default 1024
	DefaultTimeout  time.Duration // per-request deadline when the client sets none; default 60s
	MaxTimeout      time.Duration // cap on client-chosen deadlines; default 10m
	MaxBodyBytes    int64         // request body limit; default 1 MiB
	RetryAfter      time.Duration // base Retry-After hint; scaled with queue depth, see retryAfterHint

	// Peers + SelfURL enable the fleet plane: client-facing sweeps are
	// scattered across Peers ∪ {SelfURL} by consistent-hashing each
	// point's store fingerprint; this node executes only the partitions it
	// owns and proxies the rest (internal/serve/fleet.go). SelfURL must be
	// the URL peers reach this node at — it selects in-process execution
	// over a loopback HTTP hop.
	Peers   []string
	SelfURL string

	// Store, when the backend runner uses a durable result store, lets
	// GET /v1/store/{key} serve this node's shard to fleet peers.
	Store *sim.ResultStore

	// FleetHedgeAfter overrides the fabric's straggler-deadline fallback
	// (used until the latency histogram has samples); default 2s.
	FleetHedgeAfter time.Duration

	// Flight receives every request's span tree and the error/panic/shed
	// event stream (GET /debug/flight). Nil selects the process-wide
	// recorder; tracing cannot be disabled — the rings are bounded, so
	// always-on costs a constant.
	Flight *obs.FlightRecorder

	// Logger is the structured logger for request/drain/error lines. Nil
	// selects obs.Logger() at call time (a discard until the binary calls
	// obs.SetLogger), so library use stays silent.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxQueuedPoints <= 0 {
		c.MaxQueuedPoints = 4096
	}
	if c.MaxSyncPoints <= 0 {
		c.MaxSyncPoints = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the regsimd service. Create with New; serve Handler().
type Server struct {
	cfg     Config
	backend Backend
	flight  *obs.FlightRecorder
	logger  *slog.Logger
	fleet   *fleet.Coordinator // nil without Config.Peers

	regMu sync.Mutex
	reg   *obs.Registry // registry /metrics renders (set by RegisterMetrics)

	mu       sync.Mutex
	queued   int // admitted, not yet finished points
	draining bool
	jobs     map[string]*job
	seq      int

	// wg carries one count per in-flight sweep (sync and async). Add runs
	// inside admit, under mu: Drain flips draining under the same lock, so
	// it can never observe a zero counter between a sweep's admission and
	// its Add (which would both violate the drain contract and race Add
	// against Wait).
	wg sync.WaitGroup

	sweepsAccepted   obs.Counter
	rejectedBusy     obs.Counter
	rejectedDrain    obs.Counter
	rejectedTooLarge obs.Counter
	pointsSubmitted  obs.Counter
	pointErrors      obs.Counter

	exploresAccepted  obs.Counter
	exploreCandidates obs.Counter
	exploreRungs      obs.Counter
	lastFrontierSize  atomic.Int64

	histMu         sync.Mutex
	sweepWall      *obs.HistogramVar // nil until RegisterMetrics
	exploreRungHit *obs.HistogramVar // per-rung percentage of points not re-simulated
}

// New builds a server. If cfg.Backend is nil the server owns a fresh
// runner sized by cfg.Workers; either way Drain closes the backend.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, backend: cfg.Backend, jobs: make(map[string]*job)}
	if s.backend == nil {
		s.backend = sim.NewRunner(cfg.Workers)
	}
	s.flight = cfg.Flight
	if s.flight == nil {
		s.flight = obs.DefaultFlight()
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = obs.Logger()
	}
	// A runner backend reports its panics and store failures into the same
	// recorder the service serves, so /debug/flight is one coherent stream.
	if r, ok := s.backend.(*sim.Runner); ok {
		r.UseFlight(s.flight)
	}
	if len(cfg.Peers) > 0 && cfg.SelfURL != "" {
		s.fleet = fleet.New(fleet.Config{
			Endpoints:  cfg.Peers,
			Self:       cfg.SelfURL,
			Local:      s.leafExec,
			HedgeAfter: cfg.FleetHedgeAfter,
		})
	}
	return s
}

// Backend returns the point executor (for tests and metric wiring).
func (s *Server) Backend() Backend { return s.backend }

// QueuedPoints returns the number of admitted-but-unfinished points.
func (s *Server) QueuedPoints() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RegisterMetrics publishes the service counters, queue gauges, coalesce
// counters derived from the backend's run-layer stats, and a per-sweep
// latency histogram under prefix (e.g. "serve"). When the backend is a
// *sim.Runner its own metrics register under prefix+".runner".
func (s *Server) RegisterMetrics(reg *obs.Registry, prefix string) {
	s.regMu.Lock()
	s.reg = reg
	s.regMu.Unlock()
	reg.Func(prefix+".queued_points", func() any { return s.QueuedPoints() })
	reg.Func(prefix+".draining", func() any { return s.Draining() })
	reg.Func(prefix+".sweeps_accepted", func() any { return s.sweepsAccepted.Value() })
	reg.Func(prefix+".sweeps_rejected_busy", func() any { return s.rejectedBusy.Value() })
	reg.Func(prefix+".sweeps_rejected_draining", func() any { return s.rejectedDrain.Value() })
	reg.Func(prefix+".sweeps_rejected_too_large", func() any { return s.rejectedTooLarge.Value() })
	reg.Func(prefix+".points_submitted", func() any { return s.pointsSubmitted.Value() })
	reg.Func(prefix+".point_errors", func() any { return s.pointErrors.Value() })
	// The run layer's single-flight memo is the coalescing mechanism:
	// cache hits are exactly the points this process did not re-simulate.
	reg.Func(prefix+".coalesced_points", func() any { return s.backend.Stats().CacheHits })
	reg.Func(prefix+".points_run", func() any { return s.backend.Stats().JobsRun })
	reg.Gauge(prefix+".coalesce_hit_rate", func() float64 {
		st := s.backend.Stats()
		total := st.JobsRun + st.CacheHits
		if total == 0 {
			return 0
		}
		return float64(st.CacheHits) / float64(total)
	})
	reg.Func(prefix+".jobs", func() any { return s.jobCounts() })
	s.registerExploreMetrics(reg, prefix)
	s.histMu.Lock()
	if s.sweepWall == nil {
		s.sweepWall = reg.Histogram(prefix + ".sweep_wall_ms")
	}
	s.histMu.Unlock()
	if r, ok := s.backend.(*sim.Runner); ok {
		r.RegisterMetrics(reg, prefix+".runner")
	}
	s.registerFleetMetrics(reg, prefix)
}

func (s *Server) observeSweep(wall time.Duration) {
	s.histMu.Lock()
	h := s.sweepWall
	s.histMu.Unlock()
	if h != nil {
		h.Add(int(wall.Milliseconds()))
	}
}

// Handler returns the service mux: the /v1 API, /healthz, Prometheus
// text exposition at /metrics, the flight recorder at /debug/flight, and
// /debug/ (expvar + pprof, registered on the default mux by package
// obs). Every route is wrapped in the request-ID middleware, so every
// response — including sheds and parse failures — carries X-Request-Id.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/explore", s.handleExplore)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	mux.HandleFunc("GET /v1/store/{key}", s.handleStoreGet)
	mux.HandleFunc("GET /v1/peers", s.handlePeers)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		obs.WritePrometheus(w, s.registry())
	})
	mux.Handle("GET /debug/flight", s.flight.Handler())
	mux.Handle("/debug/", http.DefaultServeMux)
	return s.withRequestID(mux)
}

// registry returns the registry /metrics renders: the one handed to
// RegisterMetrics, or the process default before that.
func (s *Server) registry() *obs.Registry {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.reg != nil {
		return s.reg
	}
	return obs.Default()
}

// admit reserves n points of queue budget and a sweep WaitGroup count, or
// reports why it cannot. Every admitted sweep must be balanced by exactly
// one release.
func (s *Server) admit(n int) (ok, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, true
	}
	if s.queued+n > s.cfg.MaxQueuedPoints {
		return false, false
	}
	s.queued += n
	s.wg.Add(1)
	return true, false
}

func (s *Server) release(n int) {
	s.mu.Lock()
	s.queued -= n
	s.mu.Unlock()
	s.wg.Done()
}

// Drain stops admission (new sweeps get 503), waits for every in-flight
// sweep to finish — bounded by ctx — and closes the backend runner.
// Completed job results remain fetchable afterwards. Drain is what the
// SIGTERM handler of cmd/regsimd calls.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	queued := s.queued
	s.mu.Unlock()
	s.logger.InfoContext(ctx, "drain started", "queued_points", queued)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.backend.Close()
		s.logger.InfoContext(ctx, "drain complete",
			"elapsed_ms", float64(time.Since(start).Microseconds())/1e3)
		return nil
	case <-ctx.Done():
		s.logger.ErrorContext(ctx, "drain interrupted", "err", ctx.Err().Error())
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// SweepRequest is the POST /v1/sweep body. Schemes may be given as
// compact specs (sim.ParseSchemeSpec grammar) and/or as full-fidelity
// SchemeRecord objects copied from a results file.
type SweepRequest struct {
	Benches       []string           `json:"benches"`                  // benchmark names, or ["all"]
	Schemes       []string           `json:"schemes,omitempty"`        // compact specs, e.g. "use:64x2:filtered"
	SchemeRecords []sim.SchemeRecord `json:"scheme_records,omitempty"` // full-fidelity configurations
	Insts         uint64             `json:"insts,omitempty"`          // per-benchmark budget; 0 = sim.DefaultInsts
	Intervals     int                `json:"intervals,omitempty"`      // checkpointed intervals per run; 0/1 = serial semantics
	WarmupInsts   uint64             `json:"warmup_insts,omitempty"`   // per-interval warm-up; 0 = sim default when intervals > 1
	Threads       int                `json:"threads,omitempty"`        // workload contexts per run; 0/1 = single-context
	Interleave    int                `json:"interleave,omitempty"`     // fetch-interleave granularity; 0 = sim default
	Async         bool               `json:"async,omitempty"`          // force job-ID response
	DeadlineMS    int64              `json:"deadline_ms,omitempty"`    // per-request deadline

	// Timings attaches a per-point latency breakdown (schema v2 timing
	// block) to each run. Off by default: timing varies run to run, and
	// the default response body must stay a pure function of the request
	// (coalesced identical sweeps return byte-identical documents).
	Timings bool `json:"timings,omitempty"`
}

// sweep is a validated, expanded request.
type sweep struct {
	schemes []sim.Scheme
	benches []string
	opts    sim.Options
	timeout time.Duration
	points  int
	timings bool
}

func (s *Server) parseSweep(req *SweepRequest) (*sweep, error) {
	if req.Intervals < 0 {
		return nil, errors.New("intervals must be >= 0")
	}
	if req.Threads < 0 || req.Threads > sim.MaxThreads {
		return nil, fmt.Errorf("threads must be in [0, %d]", sim.MaxThreads)
	}
	if req.Interleave < 0 {
		return nil, errors.New("interleave must be >= 0")
	}
	if req.Interleave > 0 && req.Threads <= 1 {
		return nil, errors.New("interleave requires threads > 1")
	}
	// Interval checkpointing snapshots a single-context stream; the two
	// modes are mutually exclusive rather than silently reconciled.
	if req.Threads > 1 && req.Intervals > 1 {
		return nil, errors.New("intervals cannot be combined with threads > 1")
	}
	sw := &sweep{opts: sim.Options{
		Insts:       req.Insts,
		Intervals:   req.Intervals,
		WarmupInsts: req.WarmupInsts,
		Threads:     req.Threads,
		Interleave:  req.Interleave,
	}}
	for _, spec := range req.Schemes {
		sc, err := sim.ParseSchemeSpec(spec)
		if err != nil {
			return nil, err
		}
		sw.schemes = append(sw.schemes, sc)
	}
	for _, rec := range req.SchemeRecords {
		sc, err := rec.ToScheme()
		if err != nil {
			return nil, err
		}
		sw.schemes = append(sw.schemes, sc)
	}
	if len(sw.schemes) == 0 {
		return nil, errors.New("sweep needs at least one scheme")
	}
	benches, err := resolveBenches(req.Benches)
	if err != nil {
		return nil, err
	}
	sw.benches = benches
	sw.timeout = s.timeoutFor(req.DeadlineMS)
	sw.points = len(sw.schemes) * len(sw.benches)
	sw.timings = req.Timings
	return sw, nil
}

// resolveBenches validates a request's benchmark list against the
// built-in suite, expanding the ["all"] shorthand.
func resolveBenches(names []string) ([]string, error) {
	if len(names) == 1 && names[0] == "all" {
		return sim.Benchmarks(), nil
	}
	known := make(map[string]bool)
	for _, b := range sim.Benchmarks() {
		known[b] = true
	}
	for _, b := range names {
		if !known[b] {
			return nil, fmt.Errorf("unknown benchmark %q", b)
		}
	}
	if len(names) == 0 {
		return nil, errors.New("request needs at least one benchmark")
	}
	return names, nil
}

// timeoutFor maps a client deadline_ms onto the configured default/cap.
func (s *Server) timeoutFor(deadlineMS int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if deadlineMS > 0 {
		timeout = time.Duration(deadlineMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFrom(r.Context())
	// Every sweep submission — even one shed at admission — gets a trace:
	// the span tree is the postmortem record of what the service decided.
	root := s.flight.StartTrace("sweep", reqID)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		root.SetError(err)
		root.End()
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad sweep request: %v", err))
		return
	}
	sw, err := s.parseSweep(&req)
	if err != nil {
		root.SetError(err)
		root.End()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	root.SetInt("points", int64(sw.points))

	// A leaf request is a sub-sweep dispatched by a peer gateway (or a
	// multi-endpoint client): it executes locally and synchronously, never
	// re-scattered. Everything else on a fleet member scatters across the
	// ring — the gateway reserves no local points itself (leafExec admits
	// this node's share per partition), but still holds a WaitGroup count
	// so Drain waits for the gather.
	leaf := isLeaf(r)
	viaFleet := s.fleetEnabled() && !leaf
	admitPoints := sw.points
	capacity := s.cfg.MaxQueuedPoints
	if viaFleet {
		admitPoints = 0
		capacity = s.cfg.MaxQueuedPoints * len(s.fleet.Endpoints())
		root.SetBool("fleet", true)
	}

	adm := root.StartChild("admission")
	// A sweep larger than the whole queue bound (fleet-wide on a gateway)
	// can never be admitted, even on an idle server — answer 413 (no
	// Retry-After) rather than a 429 that well-behaved clients would retry
	// forever.
	if sw.points > capacity {
		s.rejectedTooLarge.Add(1)
		adm.SetString("outcome", "too-large")
		adm.End()
		root.End()
		s.flight.Event("shed", reqID, "sweep of %d points exceeds queue bound %d", sw.points, capacity)
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("sweep of %d points exceeds the server's queue bound %d; split the request",
				sw.points, capacity))
		return
	}
	ok, draining := s.admit(admitPoints)
	if !ok {
		if draining {
			s.rejectedDrain.Add(1)
			adm.SetString("outcome", "shed-drain")
			adm.End()
			root.End()
			s.flight.Event("shed", reqID, "sweep of %d points rejected: draining", sw.points)
			// A drain 503 carries the same load-scaled hint as a 429 so
			// clients and fleet peers that retry against this endpoint
			// (e.g. behind a restarting node) pace themselves.
			setRetryAfter(w, s.retryAfterHint())
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.rejectedBusy.Add(1)
		adm.SetString("outcome", "shed-busy")
		adm.End()
		root.End()
		s.flight.Event("shed", reqID, "sweep of %d points rejected: queue full (%d queued, bound %d)",
			sw.points, s.QueuedPoints(), s.cfg.MaxQueuedPoints)
		setRetryAfter(w, s.retryAfterHint())
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full: %d points queued, %d requested, bound %d",
				s.QueuedPoints(), sw.points, s.cfg.MaxQueuedPoints))
		return
	}
	adm.SetString("outcome", "admitted")
	adm.End()
	s.sweepsAccepted.Add(1)
	if !viaFleet {
		s.pointsSubmitted.Add(uint64(sw.points))
	}

	if (req.Async || sw.points > s.cfg.MaxSyncPoints) && !leaf {
		j := s.newJob("sweep", sw.points)
		root.SetString("job", j.id)
		root.SetBool("async", true)
		go func() {
			defer s.release(admitPoints)
			start := time.Now()
			// The async trace outlives the HTTP exchange: the root span
			// stays open until the job settles, then the tree is recorded.
			ctx, cancel := context.WithTimeout(context.Background(), sw.timeout)
			defer cancel()
			jsp := root.StartChild("job")
			file, err := s.execSweep(obs.ContextWithSpan(ctx, jsp), sw, viaFleet, reqID)
			jsp.SetError(err)
			jsp.End()
			root.SetError(err)
			root.End()
			s.observeSweep(time.Since(start))
			s.finishJob(j, file, err)
			s.logger.InfoContext(ctx, "async sweep settled",
				"request_id", reqID, "job", j.id, "points", sw.points,
				"elapsed_ms", float64(time.Since(start).Microseconds())/1e3,
				"failed", err != nil)
		}()
		writeJSONStatus(w, http.StatusAccepted, s.jobStatus(j))
		return
	}

	defer s.release(admitPoints)
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), sw.timeout)
	defer cancel()
	file, err := s.execSweep(obs.ContextWithSpan(ctx, root), sw, viaFleet, reqID)
	s.observeSweep(time.Since(start))
	root.SetError(err)
	root.End()
	if err != nil {
		s.flight.Event("error", reqID, "sweep failed: %v", err)
		httpError(w, errStatus(err), err.Error())
		return
	}
	writeJSON(w, file)
}

// runSweep executes every point of the sweep concurrently (the backend
// pool bounds actual parallelism; identical and already-memoized points
// coalesce in the run layer) and assembles a deterministic results file:
// identical requests produce byte-identical documents, so response bodies
// are cache- and diff-friendly.
func (s *Server) runSweep(ctx context.Context, sw *sweep) (*sim.ResultsFile, error) {
	n := sw.points
	sp := obs.SpanFromContext(ctx)
	tb, timed := s.backend.(TimedBackend)
	results := make([]pipeline.Result, n)
	timings := make([]sim.PointTiming, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	idx := 0
	for _, sc := range sw.schemes {
		for _, b := range sw.benches {
			i, sc, b := idx, sc, b
			idx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				psp := sp.StartChild("point")
				psp.SetString("scheme", sc.Name)
				psp.SetString("bench", b)
				pctx := obs.ContextWithSpan(ctx, psp)
				if timed {
					results[i], timings[i], errs[i] = tb.RunTimed(pctx, b, sc, sw.opts)
					psp.SetString("outcome", timings[i].Outcome)
				} else {
					results[i], errs[i] = s.backend.Run(pctx, b, sc, sw.opts)
				}
				psp.SetError(errs[i])
				psp.End()
			}()
		}
	}
	wg.Wait()

	runs := make([]sim.RunRecord, 0, n)
	var failed []error
	idx = 0
	for _, sc := range sw.schemes {
		for _, b := range sw.benches {
			if err := errs[idx]; err != nil {
				s.pointErrors.Add(1)
				failed = append(failed, fmt.Errorf("%s/%s: %w", sc.Name, b, err))
			} else {
				rec := sim.NewRunRecord(b, sc, sw.opts, results[idx])
				if sw.timings && timed {
					rec.Timing = sim.NewTimingRecord(timings[idx])
				}
				runs = append(runs, rec)
			}
			idx++
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	// CreatedAt and WallSeconds are deliberately zero: the body must be a
	// pure function of the request for coalesced responses to be
	// byte-identical.
	return &sim.ResultsFile{
		SchemaVersion: sim.ResultsSchemaVersion,
		Generator:     "regsimd",
		Runs:          runs,
	}, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "queued_points": s.QueuedPoints()})
}

// errStatus maps sweep errors onto HTTP statuses: deadline overruns are
// the caller's budget expiring (504), a closed runner means shutdown
// (503), a partition no fleet node could take is an upstream failure
// (502), anything else is a simulation failure (500).
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	case errors.Is(err, sim.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, fleet.ErrUnavailable):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}
