package serve

// Async job tracking: large (or explicitly async) sweeps are answered
// with a job ID immediately; clients poll GET /v1/jobs/{id} (optionally
// long-polling with ?wait=duration) and fetch the results document from
// GET /v1/jobs/{id}/results once the job completes. Retention is bounded:
// when the job map outgrows Config.MaxJobs, the oldest settled jobs (and
// their results documents) are evicted to make room — running jobs never
// are. Eviction happens only when a new job is admitted, which drain mode
// refuses, so results of drained jobs stay fetchable until shutdown.

import (
	"fmt"
	"net/http"
	"sort"
	"time"
)

type jobState int

const (
	jobRunning jobState = iota
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	}
	return "state?"
}

// job is one async request — a sweep or an exploration. Mutable fields
// are guarded by Server.mu; done closes when the job settles (the
// long-poll signal). doc is the kind-specific results document
// (*sim.ResultsFile for sweeps, *explore.Result for explorations).
type job struct {
	id      string
	kind    string // "sweep" or "explore"
	points  int
	created time.Time
	done    chan struct{}

	state   jobState
	settled time.Time // when the job left jobRunning (eviction order)
	doc     any
	err     error
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind,omitempty"`
	Status string `json:"status"`
	Points int    `json:"points"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) newJob(kind string, points int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictSettledLocked(s.cfg.MaxJobs - 1)
	s.seq++
	j := &job{
		id:      fmt.Sprintf("j-%d", s.seq),
		kind:    kind,
		points:  points,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	return j
}

// evictSettledLocked drops the oldest settled jobs until at most max
// remain, bounding a long-running daemon's memory under sustained async
// load. Running jobs are never evicted (their count is already bounded by
// the admission budget), so the map may transiently exceed max when the
// backlog is all in flight.
func (s *Server) evictSettledLocked(max int) {
	over := len(s.jobs) - max
	if over <= 0 {
		return
	}
	settled := make([]*job, 0, over)
	for _, j := range s.jobs {
		if j.state != jobRunning {
			settled = append(settled, j)
		}
	}
	sort.Slice(settled, func(i, k int) bool { return settled[i].settled.Before(settled[k].settled) })
	if over > len(settled) {
		over = len(settled)
	}
	for _, j := range settled[:over] {
		delete(s.jobs, j.id)
	}
}

func (s *Server) finishJob(j *job, doc any, err error) {
	s.mu.Lock()
	j.settled = time.Now()
	if err != nil {
		j.state, j.err = jobFailed, err
	} else {
		j.state, j.doc = jobDone, doc
	}
	s.mu.Unlock()
	close(j.done)
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) jobStatus(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{ID: j.id, Kind: j.kind, Status: j.state.String(), Points: j.points}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (s *Server) jobCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := make(map[string]int, 3)
	for _, j := range s.jobs {
		counts[j.state.String()]++
	}
	return counts
}

// maxLongPoll caps ?wait= so a stuck client cannot pin a handler forever.
const maxLongPoll = 30 * time.Second

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad wait duration: %v", err))
			return
		}
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-j.done:
		case <-timer.C:
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, s.jobStatus(j))
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	state, doc, err := j.state, j.doc, j.err
	s.mu.Unlock()
	switch state {
	case jobRunning:
		// Not ready yet: report the status with 202 so clients can poll
		// the same URL until it yields the document.
		writeJSONStatus(w, http.StatusAccepted, s.jobStatus(j))
	case jobFailed:
		httpError(w, errStatus(err), err.Error())
	case jobDone:
		writeJSON(w, doc)
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j := s.lookupJob(id); j != nil {
			out = append(out, s.jobStatus(j))
		}
	}
	writeJSON(w, out)
}
