package serve

// POST /v1/explore: the design-space exploration job type. The handler
// validates and sizes the search up front (400 for malformed spaces, 413
// for spaces or schedules that can never be admitted), then runs it
// through the same admission, async-job, and drain machinery as sweeps.
// Every rung of the search is executed as one internal sweep via
// execSweep, so a fleet gateway scatters rung points across the ring and
// a single node runs them on its own pool — and either way memoization,
// the durable store, and coalescing keep repeated explorations from
// re-simulating anything.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"regcache/internal/explore"
	"regcache/internal/obs"
	"regcache/internal/sim"
)

// ExploreRequest is the POST /v1/explore body: the search spec plus the
// service envelope (benchmarks, async, deadline).
type ExploreRequest struct {
	explore.Spec
	Benches    []string `json:"benches"` // benchmark names, or ["all"]
	Async      bool     `json:"async,omitempty"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	reqID := RequestIDFrom(r.Context())
	root := s.flight.StartTrace("explore", reqID)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req ExploreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		root.SetError(err)
		root.End()
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad explore request: %v", err))
		return
	}
	benches, err := resolveBenches(req.Benches)
	if err != nil {
		root.SetError(err)
		root.End()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Spec validation precedes admission: malformed ranges are 400s, a
	// space over the candidate bound is a permanent 413 (never
	// admissible here, retrying is pointless).
	spec := req.Spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		root.SetError(err)
		root.End()
		if errors.Is(err, explore.ErrSpaceTooLarge) {
			s.rejectedTooLarge.Add(1)
			s.flight.Event("shed", reqID, "explore rejected: %v", err)
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	cands, _, err := spec.Candidates()
	if err != nil {
		root.SetError(err)
		root.End()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	plan := spec.Plan(len(cands))
	evals := explore.TotalEvals(plan, len(benches))
	root.SetInt("candidates", int64(len(cands)))
	root.SetInt("rungs", int64(len(plan)))
	root.SetInt("points", int64(evals))

	// Same fleet split as sweeps: a gateway reserves no local points (the
	// rung sub-sweeps admit on their owners), a single node accounts for
	// the whole schedule. Explorations are always client-facing — leaf
	// requests are sweeps by construction.
	viaFleet := s.fleetEnabled()
	admitPoints := evals
	capacity := s.cfg.MaxQueuedPoints
	if viaFleet {
		admitPoints = 0
		capacity = s.cfg.MaxQueuedPoints * len(s.fleet.Endpoints())
		root.SetBool("fleet", true)
	}

	adm := root.StartChild("admission")
	if evals > capacity {
		s.rejectedTooLarge.Add(1)
		adm.SetString("outcome", "too-large")
		adm.End()
		root.End()
		s.flight.Event("shed", reqID, "explore of %d evaluations exceeds queue bound %d", evals, capacity)
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("explore schedule of %d evaluations exceeds the server's queue bound %d; shrink the space or budgets",
				evals, capacity))
		return
	}
	ok, draining := s.admit(admitPoints)
	if !ok {
		if draining {
			s.rejectedDrain.Add(1)
			adm.SetString("outcome", "shed-drain")
			adm.End()
			root.End()
			s.flight.Event("shed", reqID, "explore of %d evaluations rejected: draining", evals)
			setRetryAfter(w, s.retryAfterHint())
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.rejectedBusy.Add(1)
		adm.SetString("outcome", "shed-busy")
		adm.End()
		root.End()
		s.flight.Event("shed", reqID, "explore of %d evaluations rejected: queue full (%d queued, bound %d)",
			evals, s.QueuedPoints(), s.cfg.MaxQueuedPoints)
		setRetryAfter(w, s.retryAfterHint())
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full: %d points queued, %d requested, bound %d",
				s.QueuedPoints(), evals, s.cfg.MaxQueuedPoints))
		return
	}
	adm.SetString("outcome", "admitted")
	adm.End()
	s.exploresAccepted.Add(1)
	s.exploreCandidates.Add(uint64(len(cands)))
	if !viaFleet {
		s.pointsSubmitted.Add(uint64(evals))
	}
	timeout := s.timeoutFor(req.DeadlineMS)

	if req.Async || evals > s.cfg.MaxSyncPoints {
		j := s.newJob("explore", evals)
		root.SetString("job", j.id)
		root.SetBool("async", true)
		go func() {
			defer s.release(admitPoints)
			start := time.Now()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			jsp := root.StartChild("job")
			res, err := s.execExplore(obs.ContextWithSpan(ctx, jsp), spec, benches, viaFleet, reqID)
			jsp.SetError(err)
			jsp.End()
			root.SetError(err)
			root.End()
			s.observeSweep(time.Since(start))
			s.finishJob(j, res, err)
			s.logger.InfoContext(ctx, "async explore settled",
				"request_id", reqID, "job", j.id, "evals", evals,
				"elapsed_ms", float64(time.Since(start).Microseconds())/1e3,
				"failed", err != nil)
		}()
		writeJSONStatus(w, http.StatusAccepted, s.jobStatus(j))
		return
	}

	defer s.release(admitPoints)
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := s.execExplore(obs.ContextWithSpan(ctx, root), spec, benches, viaFleet, reqID)
	s.observeSweep(time.Since(start))
	root.SetError(err)
	root.End()
	if err != nil {
		s.flight.Event("error", reqID, "explore failed: %v", err)
		httpError(w, errStatus(err), err.Error())
		return
	}
	writeJSON(w, res)
}

// execExplore runs the search engine with rung evaluations routed through
// execSweep (local pool or fleet scatter) and updates the explore
// metrics. The returned document is a pure function of the request.
func (s *Server) execExplore(ctx context.Context, spec explore.Spec, benches []string, viaFleet bool, reqID string) (*explore.Result, error) {
	res, err := explore.Run(ctx, explore.Config{
		Spec:    spec,
		Benches: benches,
		Span:    obs.SpanFromContext(ctx),
		Eval:    s.exploreEvaluator(benches, viaFleet, reqID),
	})
	if err != nil {
		return nil, err
	}
	res.Generator = "regsimd"
	s.exploreRungs.Add(uint64(len(res.Rungs)))
	s.lastFrontierSize.Store(int64(len(res.Frontier)))
	return res, nil
}

// exploreEvaluator adapts execSweep into the engine's Evaluator: one rung
// becomes one internal sweep over (survivors × benches) at the rung's
// budget. Sweep options are uniform per sweep while a rung may mix thread
// counts (a Threads-axis search), so candidates are grouped by count and
// run as one sub-sweep per group, in ascending-count order; the engine
// scores runs by scheme name, so concatenation order carries no meaning.
// The before/after runner-stats delta feeds the per-rung store-hit-rate
// histogram — an observation about this process, so it goes to metrics,
// never into the result document.
func (s *Server) exploreEvaluator(benches []string, viaFleet bool, reqID string) explore.Evaluator {
	return func(ctx context.Context, cands []explore.Candidate, insts uint64) (*sim.ResultsFile, error) {
		groups := make(map[int][]sim.Scheme)
		var counts []int
		for _, c := range cands {
			if _, ok := groups[c.Threads]; !ok {
				counts = append(counts, c.Threads)
			}
			groups[c.Threads] = append(groups[c.Threads], c.Scheme)
		}
		sort.Ints(counts)
		before := s.backend.Stats()
		out := &sim.ResultsFile{SchemaVersion: sim.ResultsSchemaVersion}
		points := 0
		for _, tc := range counts {
			sw := &sweep{
				schemes: groups[tc],
				benches: benches,
				opts:    sim.Options{Insts: insts, Threads: tc},
				points:  len(groups[tc]) * len(benches),
			}
			file, err := s.execSweep(ctx, sw, viaFleet, reqID)
			if err != nil {
				return nil, err
			}
			out.Generator = file.Generator
			out.Runs = append(out.Runs, file.Runs...)
			points += sw.points
		}
		if !viaFleet {
			s.observeExploreRung(before, points)
		}
		return out, nil
	}
}

// observeExploreRung records what fraction of a rung's points were
// resolved without a fresh local simulation (memo join or store hit).
func (s *Server) observeExploreRung(before sim.RunnerStats, points int) {
	s.histMu.Lock()
	h := s.exploreRungHit
	s.histMu.Unlock()
	if h == nil || points == 0 {
		return
	}
	d := s.backend.Stats().Sub(before)
	resolved := d.CacheHits + d.StoreHits
	if resolved > uint64(points) {
		resolved = uint64(points) // concurrent sweeps can inflate the delta
	}
	h.Add(int(100 * resolved / uint64(points)))
}

// registerExploreMetrics publishes the exploration counters next to the
// sweep metrics.
func (s *Server) registerExploreMetrics(reg *obs.Registry, prefix string) {
	reg.Func(prefix+".explore.accepted", func() any { return s.exploresAccepted.Value() })
	reg.Func(prefix+".explore.candidates", func() any { return s.exploreCandidates.Value() })
	reg.Func(prefix+".explore.rungs", func() any { return s.exploreRungs.Value() })
	reg.Func(prefix+".explore.frontier_size", func() any { return s.lastFrontierSize.Load() })
	s.histMu.Lock()
	if s.exploreRungHit == nil {
		s.exploreRungHit = reg.Histogram(prefix + ".explore.rung_store_hit_pct")
	}
	s.histMu.Unlock()
}
