package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"regcache/internal/sim"
	"regcache/internal/store"
)

// TestRetryAfterHintScalesWithLoad pins the load-aware back-off contract
// fleet peers rely on: an idle queue hints the configured base, a full
// queue 8x that, linear and monotonic in between, clamped beyond full.
func TestRetryAfterHintScalesWithLoad(t *testing.T) {
	srv := New(Config{Backend: &fakeBackend{}, MaxQueuedPoints: 100, RetryAfter: time.Second})

	if got := srv.retryAfterHint(); got != time.Second {
		t.Errorf("idle hint = %v, want 1s (the base)", got)
	}
	setQueued := func(n int) {
		srv.mu.Lock()
		srv.queued = n
		srv.mu.Unlock()
	}
	setQueued(50)
	if got, want := srv.retryAfterHint(), 4500*time.Millisecond; got != want {
		t.Errorf("half-full hint = %v, want %v", got, want)
	}
	setQueued(100)
	if got, want := srv.retryAfterHint(), 8*time.Second; got != want {
		t.Errorf("full hint = %v, want %v (8x base)", got, want)
	}
	// Transiently over-full (releases lagging admissions) must clamp, not
	// extrapolate.
	setQueued(250)
	if got, want := srv.retryAfterHint(), 8*time.Second; got != want {
		t.Errorf("over-full hint = %v, want clamped %v", got, want)
	}
	// Monotonic in queue depth.
	prev := time.Duration(-1)
	for q := 0; q <= 100; q += 10 {
		setQueued(q)
		h := srv.retryAfterHint()
		if h < prev {
			t.Fatalf("hint not monotonic: %v at depth %d after %v", h, q, prev)
		}
		prev = h
	}
}

// TestShed429CarriesLoadScaledRetryAfter: a sweep shed at a full queue
// answers 429 with the scaled hint — a full queue means the maximum
// back-off, not the base.
func TestShed429CarriesLoadScaledRetryAfter(t *testing.T) {
	be := newBlockingBackend()
	srv := New(Config{Backend: be, MaxQueuedPoints: 1, RetryAfter: time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer be.release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"]}`)
	}()
	waitFor(t, func() bool { return srv.QueuedPoints() == 1 }, "first sweep admitted")

	resp, data := postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "8" {
		t.Errorf("Retry-After = %q, want %q (8x base at a full queue)", got, "8")
	}
	be.release()
	<-done
}

// TestDrain503CarriesRetryAfter: a draining node sheds with 503 plus a
// Retry-After hint, so fleet coordinators (and polite clients) know how
// long to wait before trying a restarted instance.
func TestDrain503CarriesRetryAfter(t *testing.T) {
	srv := New(Config{Backend: &fakeBackend{}, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, data := postSweep(t, ts, `{"benches":["gzip"],"schemes":["mono:3"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q (the idle base hint)", got, "2")
	}
}

// TestPeersEndpointSingleNode: /v1/peers always answers, reporting an
// empty fleet on a standalone server.
func TestPeersEndpointSingleNode(t *testing.T) {
	srv := New(Config{Backend: &fakeBackend{}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := get(t, ts.URL+"/v1/peers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var pr peersResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("parse peers: %v", err)
	}
	if len(pr.Endpoints) != 0 || pr.Draining || pr.Store {
		t.Errorf("standalone peers = %+v, want empty fleet, not draining, no store", pr)
	}
}

// TestStoreGetErrors: GET /v1/store/{key} is a 404 on a storeless node
// (the fleet prober treats it as a miss) and a 400 for a malformed key on
// a node with a store (the caller's error, not a miss).
func TestStoreGetErrors(t *testing.T) {
	srv := New(Config{Backend: &fakeBackend{}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	key := strings.Repeat("a", 64)
	resp, _ := get(t, ts.URL+"/v1/store/"+key)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("storeless GET /v1/store: status %d, want 404", resp.StatusCode)
	}

	rs, err := sim.OpenResultStore(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer rs.Close()
	srv2 := New(Config{Backend: &fakeBackend{}, Store: rs})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	resp, _ = get(t, ts2.URL+"/v1/store/nothex")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad key: status %d, want 400", resp.StatusCode)
	}
	// A well-formed but absent key is a plain miss.
	resp, _ = get(t, ts2.URL+"/v1/store/"+key)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent key: status %d, want 404", resp.StatusCode)
	}
}
