package serve

// End-to-end warm-start proof for the durable result store: a daemon
// generation populates the store through real HTTP sweeps, is drained
// (flushing queued appends), and a second generation on the same
// directory answers the identical sweep byte-for-byte without running a
// single simulation. A third generation under a bumped simulator version
// must ignore every entry.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"regcache/internal/sim"
	"regcache/internal/store"
)

// storeServer builds a Server whose backend runner persists to dir.
func storeServer(t *testing.T, dir string, version int) (*Server, *sim.ResultStore) {
	t.Helper()
	rs, err := sim.OpenResultStore(dir, store.Options{})
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	if version != sim.SimulatorVersion {
		rs = rs.WithSimulatorVersion(version)
	}
	runner := sim.NewRunnerWith(2, sim.NewWorkloadCache())
	if err := runner.UseStore(rs); err != nil {
		t.Fatalf("UseStore: %v", err)
	}
	return New(Config{Backend: runner, MaxSyncPoints: 16}), rs
}

func TestWarmStartServesSweepFromStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	body := `{"benches":["gzip","mcf"],"schemes":["use:16x2:filtered","mono:3"],"insts":2000}`
	const points = 4 // 2 benches x 2 schemes

	// Generation 1: cold. Every point simulates; the drain flushes the
	// appends before the store closes (the regsimd shutdown ordering).
	srv1, rs1 := storeServer(t, dir, sim.SimulatorVersion)
	ts1 := httptest.NewServer(srv1.Handler())
	resp, cold := postSweep(t, ts1, body)
	if resp.StatusCode != 200 {
		t.Fatalf("cold sweep: %d %s", resp.StatusCode, cold)
	}
	st1 := srv1.Backend().Stats()
	if st1.JobsRun != points || st1.StoreHits != 0 {
		t.Fatalf("cold generation stats: %+v", st1)
	}
	if err := srv1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	if got := st1.StoreWrites; got != 0 {
		// StoreWrites may lag the response (appends are asynchronous);
		// only after the drain is the count guaranteed.
		t.Logf("writes before drain: %d", got)
	}
	if st := srv1.Backend().Stats(); st.StoreWrites != points {
		t.Fatalf("drain must flush every append: %+v", st)
	}
	if err := rs1.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// Generation 2: warm restart on the same directory. The identical
	// sweep must not simulate anything and must serve the identical bytes.
	srv2, rs2 := storeServer(t, dir, sim.SimulatorVersion)
	ts2 := httptest.NewServer(srv2.Handler())
	resp, warm := postSweep(t, ts2, body)
	if resp.StatusCode != 200 {
		t.Fatalf("warm sweep: %d %s", resp.StatusCode, warm)
	}
	st2 := srv2.Backend().Stats()
	if st2.JobsRun != 0 {
		t.Fatalf("warm restart simulated %d points, want 0 (%+v)", st2.JobsRun, st2)
	}
	if st2.StoreHits != points {
		t.Fatalf("warm restart store hits = %d, want %d (%+v)", st2.StoreHits, points, st2)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm response differs from cold:\ncold %s\nwarm %s", cold, warm)
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
	ts2.Close()
	rs2.Close()

	// Generation 3: simulator-version bump. A store full of old-model
	// entries must serve zero hits — everything re-simulates.
	srv3, rs3 := storeServer(t, dir, sim.SimulatorVersion+1)
	ts3 := httptest.NewServer(srv3.Handler())
	resp, bumped := postSweep(t, ts3, body)
	if resp.StatusCode != 200 {
		t.Fatalf("bumped sweep: %d %s", resp.StatusCode, bumped)
	}
	st3 := srv3.Backend().Stats()
	if st3.StoreHits != 0 || st3.JobsRun != points {
		t.Fatalf("version bump must invalidate the store: %+v", st3)
	}
	if err := srv3.Drain(context.Background()); err != nil {
		t.Fatalf("drain 3: %v", err)
	}
	ts3.Close()
	rs3.Close()
}
