// Package bpred implements the front-end prediction structures of Table 1:
// a YAGS conditional branch predictor, a cascading indirect-target
// predictor, and a return address stack. The BTB is perfect (the front end
// knows each branch's static target), matching the paper's configuration.
package bpred

// YAGS (Yet Another Global Scheme, Eden & Mudge 1998) splits a choice PHT
// from two small tagged direction caches. The choice table records the
// branch's bias; the direction caches record only the exceptions to that
// bias, tagged to avoid aliasing. The configuration below fits the 12 KB
// budget in Table 1: an 8K-entry choice table (2 KB) plus two 4K-entry
// direction caches with 8-bit tags and 2-bit counters (2×5 KB).
type YAGS struct {
	history uint64
	histBits uint

	choice []uint8 // 2-bit bias counters, indexed by PC

	// Exception caches, indexed by PC^history, tagged by PC low bits.
	takenCache    []dirEntry // consulted when choice says not-taken
	notTakenCache []dirEntry // consulted when choice says taken
}

type dirEntry struct {
	tag   uint16
	ctr   uint8 // 2-bit saturating direction counter
	valid bool
}

// YAGSConfig sizes the predictor. Zero values select the Table 1 defaults.
type YAGSConfig struct {
	ChoiceEntries int  // power of two; default 8192
	CacheEntries  int  // power of two; default 4096
	HistoryBits   uint // default 12
}

// NewYAGS builds a YAGS predictor.
func NewYAGS(cfg YAGSConfig) *YAGS {
	if cfg.ChoiceEntries == 0 {
		cfg.ChoiceEntries = 8192
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = 12
	}
	y := &YAGS{
		histBits:      cfg.HistoryBits,
		choice:        make([]uint8, cfg.ChoiceEntries),
		takenCache:    make([]dirEntry, cfg.CacheEntries),
		notTakenCache: make([]dirEntry, cfg.CacheEntries),
	}
	// Weakly taken initial bias: loop back edges dominate.
	for i := range y.choice {
		y.choice[i] = 2
	}
	return y
}

// pcIndex hashes a PC into a table of the given size.
func pcIndex(pc uint64, size int) int {
	return int((pc >> 2) & uint64(size-1))
}

func (y *YAGS) cacheIndex(pc uint64) int {
	return int(((pc >> 2) ^ y.history) & uint64(len(y.takenCache)-1))
}

func tagOf(pc uint64) uint16 { return uint16(pc>>2) & 0xff }

// Predict returns the predicted direction for a conditional branch at pc.
func (y *YAGS) Predict(pc uint64) bool {
	biasTaken := y.choice[pcIndex(pc, len(y.choice))] >= 2
	idx, tag := y.cacheIndex(pc), tagOf(pc)
	if biasTaken {
		if e := &y.notTakenCache[idx]; e.valid && e.tag == tag {
			return e.ctr >= 2
		}
		return true
	}
	if e := &y.takenCache[idx]; e.valid && e.tag == tag {
		return e.ctr >= 2
	}
	return false
}

// History returns the current global history register (used by the degree
// of use predictor's future-control-flow signature and by checkpointing).
func (y *YAGS) History() uint64 { return y.history }

// SetHistory restores the history register (misprediction recovery).
func (y *YAGS) SetHistory(h uint64) { y.history = h }

// UpdateHistory speculatively shifts a predicted direction into the global
// history. The front end calls this for every conditional branch fetched;
// recovery rewinds it via SetHistory.
func (y *YAGS) UpdateHistory(taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	y.history = ((y.history << 1) | bit) & ((1 << y.histBits) - 1)
}

// Train updates the tables with the resolved direction of the branch at pc.
// histAtPredict must be the global history value observed when the
// prediction was made (the pipeline checkpoints it per branch).
func (y *YAGS) Train(pc uint64, histAtPredict uint64, taken bool) {
	ci := pcIndex(pc, len(y.choice))
	biasTaken := y.choice[ci] >= 2
	idx := int(((pc >> 2) ^ histAtPredict) & uint64(len(y.takenCache)-1))
	tag := tagOf(pc)

	// The exception cache opposite the bias is updated when it hits, or
	// allocated when the bias mispredicts.
	var cache []dirEntry
	if biasTaken {
		cache = y.notTakenCache
	} else {
		cache = y.takenCache
	}
	e := &cache[idx]
	hit := e.valid && e.tag == tag
	if hit {
		e.ctr = bump(e.ctr, taken)
	} else if taken != biasTaken {
		*e = dirEntry{tag: tag, valid: true, ctr: initCtr(taken)}
	}

	// The choice counter trains toward the outcome, except that it is not
	// weakened when the exception cache already covers this branch
	// correctly (standard YAGS partial update).
	if !(hit && (e.ctr >= 2) == taken && taken != biasTaken) {
		y.choice[ci] = bump(y.choice[ci], taken)
	}
}

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func initCtr(taken bool) uint8 {
	if taken {
		return 2
	}
	return 1
}
