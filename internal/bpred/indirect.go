package bpred

// Cascading indirect-target predictor (Driesen & Hölzle): a PC-indexed
// first-stage table backed by a path-history-indexed, tagged second stage.
// Monomorphic indirect branches resolve in the first stage; polymorphic
// ones migrate to the history-indexed stage. The 32 KB budget of Table 1
// comfortably covers 2K + 4K entries of 8-byte targets.
type Indirect struct {
	path uint64

	stage1 []indEntry // indexed by PC
	stage2 []indEntry // indexed by PC ^ path history, tagged
}

type indEntry struct {
	tag    uint16
	target uint64
	valid  bool
}

// IndirectConfig sizes the predictor; zero values select defaults.
type IndirectConfig struct {
	Stage1Entries int // power of two; default 2048
	Stage2Entries int // power of two; default 4096
}

// NewIndirect builds a cascading indirect predictor.
func NewIndirect(cfg IndirectConfig) *Indirect {
	if cfg.Stage1Entries == 0 {
		cfg.Stage1Entries = 2048
	}
	if cfg.Stage2Entries == 0 {
		cfg.Stage2Entries = 4096
	}
	return &Indirect{
		stage1: make([]indEntry, cfg.Stage1Entries),
		stage2: make([]indEntry, cfg.Stage2Entries),
	}
}

// Predict returns the predicted target for the indirect branch at pc, and
// whether any stage produced a prediction. With no prediction the front end
// falls through (and will almost certainly be redirected at resolve).
func (ip *Indirect) Predict(pc uint64) (uint64, bool) {
	if e := &ip.stage2[ip.stage2Index(pc)]; e.valid && e.tag == tagOf(pc) {
		return e.target, true
	}
	if e := &ip.stage1[pcIndex(pc, len(ip.stage1))]; e.valid {
		return e.target, true
	}
	return 0, false
}

func (ip *Indirect) stage2Index(pc uint64) int {
	return int(((pc >> 2) ^ ip.path) & uint64(len(ip.stage2)-1))
}

// Path returns the current path history (checkpointed by the pipeline).
func (ip *Indirect) Path() uint64 { return ip.path }

// SetPath restores the path history after a misprediction.
func (ip *Indirect) SetPath(p uint64) { ip.path = p }

// UpdatePath folds a taken-branch target into the path history. Called
// speculatively at fetch for every taken control transfer.
func (ip *Indirect) UpdatePath(target uint64) {
	ip.path = ((ip.path << 3) ^ (target >> 2)) & 0xffff
}

// Train records the resolved target. pathAtPredict is the path history
// captured when the prediction was made. The second stage is allocated
// only when the first stage mispredicts (cascading filter).
func (ip *Indirect) Train(pc uint64, pathAtPredict uint64, target uint64) {
	e1 := &ip.stage1[pcIndex(pc, len(ip.stage1))]
	s1Wrong := !e1.valid || e1.target != target
	if s1Wrong {
		idx := int(((pc >> 2) ^ pathAtPredict) & uint64(len(ip.stage2)-1))
		ip.stage2[idx] = indEntry{tag: tagOf(pc), target: target, valid: true}
	}
	*e1 = indEntry{target: target, valid: true}
}

// RAS is a fixed-depth return address stack with wrap-around, plus
// checkpoint/restore of the top-of-stack pointer for misprediction
// recovery (the simple recovery scheme: contents are not checkpointed).
type RAS struct {
	stack []uint64
	top   int // index of next push slot
	depth int // current valid depth (capped at len(stack))
}

// NewRAS builds a return address stack with the given capacity (Table 1
// specifies 64 entries; zero selects that default).
func NewRAS(entries int) *RAS {
	if entries == 0 {
		entries = 64
	}
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. An empty stack returns ok=false.
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Mark captures the stack position for later recovery.
func (r *RAS) Mark() (top, depth int) { return r.top, r.depth }

// Restore rewinds the stack position to a previous Mark. Addresses pushed
// by squashed wrong-path calls may leave stale entries, as in hardware.
func (r *RAS) Restore(top, depth int) {
	r.top, r.depth = top, depth
}
