package bpred

import (
	"testing"

	"regcache/internal/prog"
)

// train runs pc through predict+train n times with the given outcome
// pattern function, returning the accuracy over the final quarter.
func measure(t *testing.T, y *YAGS, pc uint64, n int, outcome func(i int) bool) float64 {
	t.Helper()
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		h := y.History()
		pred := y.Predict(pc)
		act := outcome(i)
		y.UpdateHistory(act) // non-speculative harness: perfect history
		y.Train(pc, h, act)
		if i >= 3*n/4 {
			counted++
			if pred == act {
				correct++
			}
		}
	}
	return float64(correct) / float64(counted)
}

func TestYAGSAlwaysTaken(t *testing.T) {
	y := NewYAGS(YAGSConfig{})
	if acc := measure(t, y, 0x1000, 400, func(int) bool { return true }); acc < 0.99 {
		t.Errorf("always-taken accuracy %.2f, want ~1.0", acc)
	}
}

func TestYAGSAlwaysNotTaken(t *testing.T) {
	y := NewYAGS(YAGSConfig{})
	if acc := measure(t, y, 0x1000, 400, func(int) bool { return false }); acc < 0.99 {
		t.Errorf("always-not-taken accuracy %.2f, want ~1.0", acc)
	}
}

func TestYAGSAlternating(t *testing.T) {
	// A strict alternation is trivially captured by 12 bits of history.
	y := NewYAGS(YAGSConfig{})
	if acc := measure(t, y, 0x2000, 2000, func(i int) bool { return i%2 == 0 }); acc < 0.95 {
		t.Errorf("alternating accuracy %.2f, want >= 0.95", acc)
	}
}

func TestYAGSLoopPattern(t *testing.T) {
	// Taken 7 times, not-taken once (8-iteration loop): history-correlated.
	y := NewYAGS(YAGSConfig{})
	if acc := measure(t, y, 0x3000, 4000, func(i int) bool { return i%8 != 7 }); acc < 0.9 {
		t.Errorf("loop-exit accuracy %.2f, want >= 0.9", acc)
	}
}

func TestYAGSHistoryMask(t *testing.T) {
	y := NewYAGS(YAGSConfig{HistoryBits: 4})
	for i := 0; i < 100; i++ {
		y.UpdateHistory(true)
	}
	if y.History() != 0xf {
		t.Errorf("history = %#x, want 0xf after masking", y.History())
	}
	y.SetHistory(0x3)
	if y.History() != 0x3 {
		t.Error("SetHistory failed")
	}
}

func TestYAGSSeparatesAliasedBranches(t *testing.T) {
	// Two branches with opposite fixed behaviour: the tagged exception
	// caches must keep them separate even with shared history.
	y := NewYAGS(YAGSConfig{})
	for i := 0; i < 500; i++ {
		for _, b := range []struct {
			pc    uint64
			taken bool
		}{{0x4000, true}, {0x4004, false}} {
			h := y.History()
			y.UpdateHistory(b.taken)
			y.Train(b.pc, h, b.taken)
		}
	}
	if !y.Predict(0x4000) {
		t.Error("branch at 0x4000 should predict taken")
	}
	if y.Predict(0x4004) {
		t.Error("branch at 0x4004 should predict not-taken")
	}
}

func TestIndirectMonomorphic(t *testing.T) {
	ip := NewIndirect(IndirectConfig{})
	pc, target := uint64(0x5000), uint64(0x9000)
	if _, ok := ip.Predict(pc); ok {
		t.Fatal("cold predictor should not predict")
	}
	ip.Train(pc, ip.Path(), target)
	got, ok := ip.Predict(pc)
	if !ok || got != target {
		t.Fatalf("predict = %#x,%v, want %#x", got, ok, target)
	}
}

func TestIndirectPolymorphic(t *testing.T) {
	// Target alternates with path history: stage 2 should capture it.
	ip := NewIndirect(IndirectConfig{})
	pc := uint64(0x6000)
	targets := []uint64{0x9000, 0x9100}
	// Distinct path histories precede each target.
	correct, total := 0, 0
	for i := 0; i < 3000; i++ {
		which := i % 2
		ip.SetPath(uint64(0x10 + which*0x20))
		want := targets[which]
		got, ok := ip.Predict(pc)
		if i > 2000 {
			total++
			if ok && got == want {
				correct++
			}
		}
		ip.Train(pc, ip.Path(), want)
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("polymorphic accuracy %.2f, want >= 0.95", acc)
	}
}

func TestRASBalanced(t *testing.T) {
	r := NewRAS(64)
	for depth := 1; depth <= 32; depth++ {
		for i := 0; i < depth; i++ {
			r.Push(uint64(0x1000 + i*4))
		}
		for i := depth - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != uint64(0x1000+i*4) {
				t.Fatalf("depth %d: pop %d = %#x,%v", depth, i, got, ok)
			}
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS should not pop")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 6; i++ {
		r.Push(uint64(i))
	}
	// Only the last 4 survive; pops yield 5,4,3,2 then fail.
	for want := 5; want >= 2; want-- {
		got, ok := r.Pop()
		if !ok || got != uint64(want) {
			t.Fatalf("pop = %d,%v, want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS should be empty after wrap-around pops")
	}
}

func TestRASMarkRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0xa)
	top, depth := r.Mark()
	r.Push(0xb)
	r.Push(0xc)
	r.Restore(top, depth)
	got, ok := r.Pop()
	if !ok || got != 0xa {
		t.Fatalf("after restore, pop = %#x,%v, want 0xa", got, ok)
	}
}

// End-to-end sanity: YAGS accuracy on real generated workloads should be
// high (the suite is mostly loop branches plus profile-controlled random
// conditions).
func TestYAGSOnGeneratedWorkload(t *testing.T) {
	for _, name := range []string{"gzip", "twolf"} {
		prof, _ := prog.ProfileByName(name)
		p := prog.MustGenerate(prof)
		e := prog.NewExec(p)
		y := NewYAGS(YAGSConfig{})
		correct, total := 0, 0
		for i := 0; i < 150_000; i++ {
			in := p.InstAt(e.PC())
			if in == nil {
				t.Fatalf("%s: fell off code", name)
			}
			s := e.StepInst(in)
			if in.Op.IsCond() {
				h := y.History()
				pred := y.Predict(in.PC)
				y.UpdateHistory(s.Taken)
				y.Train(in.PC, h, s.Taken)
				total++
				if pred == s.Taken {
					correct++
				}
			}
		}
		acc := float64(correct) / float64(total)
		min := 0.85
		if name == "twolf" {
			min = 0.70 // 40% random conditions
		}
		if acc < min {
			t.Errorf("%s: YAGS accuracy %.3f below %.2f", name, acc, min)
		}
		t.Logf("%s: YAGS accuracy %.3f over %d branches", name, acc, total)
	}
}
