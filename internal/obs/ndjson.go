package obs

import (
	"bufio"
	"io"
	"strconv"

	"regcache/internal/stats"
)

// CacheLog is a Tracer that writes one JSON object per register cache event
// (NDJSON), the offline substrate for the paper's distributional figures:
// remaining-use-at-eviction histograms (Figure 5), residency lifetimes
// (Table 2), and per-category miss streams (Figure 8). Pipeline events are
// ignored. It also aggregates counts per event kind so a run's log can be
// cross-checked against core.Stats without re-parsing the file.
//
// Line shape:
//
//	{"cycle":412,"ev":"evict","preg":87,"set":13,"uses":2,"pinned":false}
//	{"cycle":413,"ev":"miss","preg":19,"set":4,"miss":"conflict"}
type CacheLog struct {
	w   *bufio.Writer
	buf []byte
	err error

	counts [NumCacheEventKinds]uint64
	missBy [3]uint64
	evictUses *stats.Histogram // remaining uses at eviction (Figure 5)
}

// NewCacheLog returns a CacheLog writing NDJSON to w.
func NewCacheLog(w io.Writer) *CacheLog {
	return &CacheLog{
		w:         bufio.NewWriterSize(w, 1<<16),
		buf:       make([]byte, 0, 128),
		evictUses: stats.NewHistogram(),
	}
}

// TraceCache implements Tracer.
func (l *CacheLog) TraceCache(e CacheEvent) {
	if int(e.Kind) < len(l.counts) {
		l.counts[e.Kind]++
	}
	if e.Kind == CacheMiss && e.MissKind >= 0 && int(e.MissKind) < len(l.missBy) {
		l.missBy[e.MissKind]++
	}
	if e.Kind == CacheEvict && e.Uses >= 0 {
		l.evictUses.Add(int(e.Uses))
	}
	if l.err != nil {
		return
	}
	b := l.buf[:0]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendUint(b, e.Cycle, 10)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","preg":`...)
	b = strconv.AppendInt(b, int64(e.PReg), 10)
	b = append(b, `,"set":`...)
	b = strconv.AppendInt(b, int64(e.Set), 10)
	if e.Kind == CacheMiss {
		b = append(b, `,"miss":"`...)
		b = append(b, MissKindName(e.MissKind)...)
		b = append(b, '"')
	} else {
		b = append(b, `,"uses":`...)
		b = strconv.AppendInt(b, int64(e.Uses), 10)
		b = append(b, `,"pinned":`...)
		b = strconv.AppendBool(b, e.Pinned)
	}
	b = append(b, '}', '\n')
	l.buf = b
	if _, err := l.w.Write(b); err != nil {
		l.err = err
	}
}

// TracePipe implements Tracer (pipeline events are not logged here).
func (l *CacheLog) TracePipe(PipeEvent) {}

// Count returns the number of events of the given kind seen so far.
func (l *CacheLog) Count(k CacheEventKind) uint64 {
	if int(k) >= len(l.counts) {
		return 0
	}
	return l.counts[k]
}

// MissCount returns the number of misses of the given classification
// (indexed by core.MissKind).
func (l *CacheLog) MissCount(k int8) uint64 {
	if k < 0 || int(k) >= len(l.missBy) {
		return 0
	}
	return l.missBy[k]
}

// EvictUses returns the histogram of remaining-use counts observed at
// eviction (the Figure 5 distribution).
func (l *CacheLog) EvictUses() *stats.Histogram { return l.evictUses }

// Close flushes buffered output and reports the first write error.
func (l *CacheLog) Close() error {
	if err := l.w.Flush(); l.err == nil {
		l.err = err
	}
	return l.err
}
