package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ChromeTrace is a Tracer that renders each uop's walk through the pipeline
// as a Chrome trace_event JSON timeline, openable in chrome://tracing or
// https://ui.perfetto.dev. One simulated cycle maps to one microsecond of
// trace time.
//
// Layout: every in-flight uop occupies a lane (a trace "thread"); lanes are
// recycled when the uop retires or is squashed, so the lane count equals the
// peak number of uops in flight. Each stage the uop passes through becomes a
// complete ("X") slice spanning the cycles spent in that stage, with the
// seq, PC, and opcode in the slice arguments. Register cache misses and
// evictions appear as instant events on the dedicated cache lane (tid 0).
type ChromeTrace struct {
	w     *bufio.Writer
	buf   []byte
	err   error
	first bool // next event is the first (comma bookkeeping)

	live      map[uint64]*laneRec // by uop seq
	freeLanes []int
	nextLane  int
	lastCycle uint64

	cacheInstants bool
}

type laneRec struct {
	lane  int
	stage PipeStage
	since uint64
	pc    uint64
	op    string
}

// NewChromeTrace returns a ChromeTrace writing to w. Call Close to finish
// the JSON document. withCacheInstants adds instant events for register
// cache misses and evictions on lane 0.
func NewChromeTrace(w io.Writer, withCacheInstants bool) *ChromeTrace {
	t := &ChromeTrace{
		w:             bufio.NewWriterSize(w, 1<<16),
		buf:           make([]byte, 0, 256),
		first:         true,
		live:          make(map[uint64]*laneRec),
		nextLane:      1, // 0 is the cache event lane
		cacheInstants: withCacheInstants,
	}
	t.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	t.meta(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"regcache simulator"}}`)
	t.meta(`{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"register cache"}}`)
	return t
}

func (t *ChromeTrace) raw(s string) {
	if t.err != nil {
		return
	}
	if _, err := t.w.WriteString(s); err != nil {
		t.err = err
	}
}

// meta writes one pre-rendered event object with comma handling.
func (t *ChromeTrace) meta(obj string) {
	if !t.first {
		t.raw(",\n")
	}
	t.first = false
	t.raw(obj)
}

// TracePipe implements Tracer.
func (t *ChromeTrace) TracePipe(e PipeEvent) {
	if e.Cycle > t.lastCycle {
		t.lastCycle = e.Cycle
	}
	rec, ok := t.live[e.Seq]
	if !ok {
		rec = &laneRec{lane: t.allocLane(), stage: e.Stage, since: e.Cycle, pc: e.PC, op: e.Op}
		t.live[e.Seq] = rec
		if e.Stage.Terminal() {
			// Squash of a uop we never saw enter: a zero-length slice.
			t.slice(rec, e.Seq, e.Cycle)
			t.release(e.Seq, rec)
		}
		return
	}
	t.slice(rec, e.Seq, e.Cycle)
	rec.stage = e.Stage
	rec.since = e.Cycle
	if e.Stage.Terminal() {
		// Terminal stages are points: render them as a 1-cycle slice so the
		// retire/squash outcome is visible on the lane.
		t.slice(rec, e.Seq, e.Cycle+1)
		t.release(e.Seq, rec)
	}
}

// TraceCache implements Tracer.
func (t *ChromeTrace) TraceCache(e CacheEvent) {
	if !t.cacheInstants {
		return
	}
	if e.Kind != CacheMiss && e.Kind != CacheEvict {
		return
	}
	if e.Cycle > t.lastCycle {
		t.lastCycle = e.Cycle
	}
	if !t.first {
		t.raw(",\n")
	}
	t.first = false
	b := t.buf[:0]
	b = append(b, `{"name":"`...)
	b = append(b, e.Kind.String()...)
	if e.Kind == CacheMiss {
		b = append(b, ' ')
		b = append(b, MissKindName(e.MissKind)...)
	}
	b = append(b, `","ph":"i","s":"t","pid":0,"tid":0,"ts":`...)
	b = strconv.AppendUint(b, e.Cycle, 10)
	b = append(b, `,"args":{"preg":`...)
	b = strconv.AppendInt(b, int64(e.PReg), 10)
	b = append(b, `,"set":`...)
	b = strconv.AppendInt(b, int64(e.Set), 10)
	b = append(b, `,"uses":`...)
	b = strconv.AppendInt(b, int64(e.Uses), 10)
	b = append(b, `}}`...)
	t.buf = b
	if t.err == nil {
		if _, err := t.w.Write(b); err != nil {
			t.err = err
		}
	}
}

// slice emits the X event for rec's current stage ending at cycle end.
func (t *ChromeTrace) slice(rec *laneRec, seq, end uint64) {
	if end < rec.since {
		end = rec.since // squash can arrive before a scheduled execute start
	}
	if !t.first {
		t.raw(",\n")
	}
	t.first = false
	b := t.buf[:0]
	b = append(b, `{"name":"`...)
	b = append(b, rec.stage.String()...)
	b = append(b, `","ph":"X","pid":0,"tid":`...)
	b = strconv.AppendInt(b, int64(rec.lane), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, rec.since, 10)
	b = append(b, `,"dur":`...)
	b = strconv.AppendUint(b, end-rec.since, 10)
	b = append(b, `,"args":{"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"pc":"`...)
	b = append(b, "0x"...)
	b = strconv.AppendUint(b, rec.pc, 16)
	b = append(b, `","op":"`...)
	b = append(b, rec.op...)
	b = append(b, `"}}`...)
	t.buf = b
	if t.err == nil {
		if _, err := t.w.Write(b); err != nil {
			t.err = err
		}
	}
}

func (t *ChromeTrace) allocLane() int {
	if n := len(t.freeLanes); n > 0 {
		l := t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
		return l
	}
	l := t.nextLane
	t.nextLane++
	return l
}

func (t *ChromeTrace) release(seq uint64, rec *laneRec) {
	t.freeLanes = append(t.freeLanes, rec.lane)
	delete(t.live, seq)
}

// Lanes returns the number of uop lanes allocated so far (peak in-flight).
func (t *ChromeTrace) Lanes() int { return t.nextLane - 1 }

// Close flushes open slices (uops still in flight at the end of the run),
// terminates the JSON document, and reports the first write error.
func (t *ChromeTrace) Close() error {
	for seq, rec := range t.live {
		t.slice(rec, seq, t.lastCycle)
		delete(t.live, seq)
	}
	t.raw("\n]}")
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}

// String summarizes the trace state for diagnostics.
func (t *ChromeTrace) String() string {
	return fmt.Sprintf("chrome trace: %d lanes, last cycle %d", t.Lanes(), t.lastCycle)
}
