// Package obs is the simulator's observability plane: a structured
// event-trace interface threaded through the pipeline stages and the
// register cache, sinks that render those events as a Chrome trace_event
// timeline or an NDJSON analysis log, a unified metrics registry exposed
// over expvar, and an optional HTTP debug server mounting expvar and pprof.
//
// The package sits below every simulator layer (it depends only on the
// standard library and internal/stats), so internal/core, internal/pipeline,
// and internal/sim can all emit into it without import cycles. Tracing is
// strictly opt-in: components hold a nil Tracer by default and guard every
// emission with a nil check, so the untraced hot path costs one predictable
// branch and zero allocations.
package obs

// CacheEventKind identifies one register cache event.
type CacheEventKind uint8

// Register cache events. The stream reconstructs every per-residency
// distribution the paper reports: remaining uses at eviction (Figure 5),
// residency lifetimes (Table 2), and the filtered/capacity/conflict miss
// split (Figure 8).
const (
	CacheWrite         CacheEventKind = iota // initial write at writeback
	CacheFill                                // fill after a backing-file read
	CacheHit                                 // read hit
	CacheMiss                                // read miss (MissKind classifies it)
	CacheEvict                               // replacement victim leaves (Uses = remaining)
	CacheInvalidate                          // invalidate-on-free removal
	CacheWriteFiltered                       // insertion policy skipped the initial write
	CachePin                                 // entry inserted pinned (prediction saturated)
	CacheBypassUse                           // bypass satisfied a use of a resident entry
	NumCacheEventKinds
)

func (k CacheEventKind) String() string {
	switch k {
	case CacheWrite:
		return "write"
	case CacheFill:
		return "fill"
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	case CacheEvict:
		return "evict"
	case CacheInvalidate:
		return "invalidate"
	case CacheWriteFiltered:
		return "write-filtered"
	case CachePin:
		return "pin"
	case CacheBypassUse:
		return "bypass-use"
	}
	return "cache?"
}

// CacheEvent is one register cache event. It is passed by value through the
// Tracer interface so emission never allocates.
type CacheEvent struct {
	Cycle    uint64
	Kind     CacheEventKind
	PReg     int32
	Set      int16
	Uses     int16 // remaining-use count after the event applied
	MissKind int8  // core.MissKind for CacheMiss (0 filtered, 1 capacity, 2 conflict); -1 otherwise
	Pinned   bool
}

// MissKindName names a CacheEvent.MissKind without importing internal/core.
func MissKindName(k int8) string {
	switch k {
	case 0:
		return "filtered"
	case 1:
		return "capacity"
	case 2:
		return "conflict"
	}
	return "none"
}

// PipeStage identifies one pipeline stage transition of a uop.
type PipeStage uint8

// Pipeline stages, in program-flow order. StageRetire and StageSquash are
// terminal: a uop emits no further events after either.
const (
	StageRename    PipeStage = iota // fetched, functionally executed, renamed
	StageDispatch                   // entered the issue window / ROB
	StageIssue                      // selected for execution
	StageWaitFill                   // stalled at register read on a cache miss
	StagePortStall                  // fill deferred by backing-file read-port arbitration
	StageExecute                    // operands acquired; executing
	StageWriteback                  // result produced, presented to register storage
	StageRetire                     // committed (terminal)
	StageSquash                     // cancelled on a misprediction (terminal)
	NumPipeStages
)

func (s PipeStage) String() string {
	switch s {
	case StageRename:
		return "rename"
	case StageDispatch:
		return "dispatch"
	case StageIssue:
		return "issue"
	case StageWaitFill:
		return "waitfill"
	case StagePortStall:
		return "portstall"
	case StageExecute:
		return "execute"
	case StageWriteback:
		return "writeback"
	case StageRetire:
		return "retire"
	case StageSquash:
		return "squash"
	}
	return "stage?"
}

// Terminal reports whether the stage ends the uop's event stream.
func (s PipeStage) Terminal() bool { return s == StageRetire || s == StageSquash }

// PipeEvent is one pipeline stage transition: uop Seq entered Stage at
// Cycle. Passed by value so emission never allocates.
type PipeEvent struct {
	Cycle uint64
	Stage PipeStage
	Seq   uint64
	PC    uint64
	Op    string
}

// Tracer receives simulator events. Implementations must tolerate events
// from a single goroutine in simulation order; they are not required to be
// concurrency-safe (one pipeline is single-threaded). Components hold a nil
// Tracer when tracing is off and skip emission entirely.
type Tracer interface {
	TraceCache(CacheEvent)
	TracePipe(PipeEvent)
}

// MultiTracer fans events out to several tracers in order.
type MultiTracer []Tracer

// TraceCache implements Tracer.
func (m MultiTracer) TraceCache(e CacheEvent) {
	for _, t := range m {
		t.TraceCache(e)
	}
}

// TracePipe implements Tracer.
func (m MultiTracer) TracePipe(e PipeEvent) {
	for _, t := range m {
		t.TracePipe(e)
	}
}

// Combine returns a single Tracer over the non-nil arguments: nil when none
// remain, the tracer itself for one, a MultiTracer otherwise.
func Combine(ts ...Tracer) Tracer {
	var live MultiTracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
