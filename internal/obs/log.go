package obs

// Structured JSON logging for the service plane. Every log record that
// carries a span context is stamped with its request and trace IDs, so
// one grep over the daemon's log stream reconstructs a request's whole
// path across serve -> runner -> store. Components log through Logger()
// (settable once by the binary) rather than the global log package, so
// library code never hijacks a CLI's plain stderr format uninvited.

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
)

// ctxHandler decorates an slog.Handler with span-context stamping.
type ctxHandler struct {
	inner slog.Handler
}

func (h ctxHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := SpanFromContext(ctx); sp != nil {
		if id := sp.RequestID(); id != "" {
			r.AddAttrs(slog.String("request_id", id))
		}
		r.AddAttrs(slog.String("trace_id", sp.Trace().String()))
	}
	return h.inner.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{h.inner.WithGroup(name)}
}

// NewLogger returns a JSON slog.Logger on w that stamps request/trace
// IDs from any span context passed to its context-taking methods.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(ctxHandler{slog.NewJSONHandler(w, nil)})
}

// NewTextLogger is NewLogger with the human-readable text handler (CLI
// binaries that want request stamping without JSON).
func NewTextLogger(w io.Writer) *slog.Logger {
	return slog.New(ctxHandler{slog.NewTextHandler(w, nil)})
}

// discardLogger drops everything (the pre-SetLogger default for library
// code, so importing obs never spams a CLI's stderr).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

var defaultLogger atomic.Pointer[slog.Logger]

// SetLogger installs the process-wide logger returned by Logger (the
// daemon installs a JSON logger at startup; tests install a discard).
func SetLogger(l *slog.Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// Logger returns the process-wide structured logger. Before SetLogger it
// discards, so libraries may log unconditionally.
func Logger() *slog.Logger {
	if l := defaultLogger.Load(); l != nil {
		return l
	}
	return discardLogger()
}
