package obs

// The flight recorder is the postmortem plane: a fixed-size ring of the
// most recently completed span trees plus a ring of the last error,
// panic, and load-shed events. A daemon keeps it always on (the rings
// are bounded, so steady-state cost is constant), and GET /debug/flight
// dumps both rings — so a "what just happened?" question after a bad
// request does not require reproducing the request.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// FlightEvent is one recorded error/panic/shed occurrence.
type FlightEvent struct {
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"` // "error", "panic", "shed", ...
	RequestID string    `json:"request_id,omitempty"`
	Msg       string    `json:"msg"`
}

// FlightDump is the GET /debug/flight document. Traces and Events are
// newest-first; the Seen totals keep ring overflow visible.
type FlightDump struct {
	TracesSeen uint64        `json:"traces_seen"`
	EventsSeen uint64        `json:"events_seen"`
	Traces     []TraceDump   `json:"traces"`
	Events     []FlightEvent `json:"events"`
}

// FlightRecorder retains recent traces and events in fixed-size rings.
// A nil *FlightRecorder is the disabled form: StartTrace returns a nil
// span and Event is a no-op.
type FlightRecorder struct {
	mu         sync.Mutex
	traces     []TraceDump
	traceCap   int
	traceNext  int
	tracesSeen uint64
	events     []FlightEvent
	eventCap   int
	eventNext  int
	eventsSeen uint64
}

// NewFlightRecorder builds a recorder retaining up to traceCap completed
// traces and eventCap events (values <= 0 select 64 and 256).
func NewFlightRecorder(traceCap, eventCap int) *FlightRecorder {
	if traceCap <= 0 {
		traceCap = 64
	}
	if eventCap <= 0 {
		eventCap = 256
	}
	return &FlightRecorder{traceCap: traceCap, eventCap: eventCap}
}

// defaultFlight is the process-wide recorder the debug server serves.
var defaultFlight = NewFlightRecorder(0, 0)

// DefaultFlight returns the process-wide flight recorder.
func DefaultFlight() *FlightRecorder { return defaultFlight }

// StartTrace opens a new trace rooted at a span named name, tagged with
// the given request ID. Ending the returned root span records the tree.
func (f *FlightRecorder) StartTrace(name, requestID string) *Span {
	if f == nil {
		return nil
	}
	shared := &traceShared{
		recorder:  f,
		traceID:   TraceID(randUint64()),
		requestID: requestID,
	}
	root := &Span{
		shared: shared,
		id:     shared.newID(), // always 1
		name:   name,
		start:  time.Now(),
	}
	shared.root = root
	return root
}

// record retains one completed trace (called by the root span's End).
func (f *FlightRecorder) record(td TraceDump) {
	if f == nil {
		return
	}
	td.Recorded = time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracesSeen++
	if len(f.traces) < f.traceCap {
		f.traces = append(f.traces, td)
		return
	}
	f.traces[f.traceNext] = td
	f.traceNext = (f.traceNext + 1) % f.traceCap
}

// Event records one error/panic/shed occurrence.
func (f *FlightRecorder) Event(kind, requestID, format string, args ...any) {
	if f == nil {
		return
	}
	ev := FlightEvent{
		Time:      time.Now(),
		Kind:      kind,
		RequestID: requestID,
		Msg:       fmt.Sprintf(format, args...),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.eventsSeen++
	if len(f.events) < f.eventCap {
		f.events = append(f.events, ev)
		return
	}
	f.events[f.eventNext] = ev
	f.eventNext = (f.eventNext + 1) % f.eventCap
}

// Dump snapshots both rings, newest-first.
func (f *FlightRecorder) Dump() FlightDump {
	if f == nil {
		return FlightDump{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{TracesSeen: f.tracesSeen, EventsSeen: f.eventsSeen}
	d.Traces = make([]TraceDump, 0, len(f.traces))
	for i := len(f.traces) - 1; i >= 0; i-- {
		d.Traces = append(d.Traces, f.traces[(f.traceNext+i)%len(f.traces)])
	}
	d.Events = make([]FlightEvent, 0, len(f.events))
	for i := len(f.events) - 1; i >= 0; i-- {
		d.Events = append(d.Events, f.events[(f.eventNext+i)%len(f.events)])
	}
	return d
}

// Handler serves the dump as JSON (the GET /debug/flight endpoint).
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.Dump())
	})
}
