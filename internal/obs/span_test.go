package obs

// Span/trace model tests: tree shape and sequential IDs, nil-safety of
// the disabled path, bounded fan-out, context propagation, and the
// flight-recorder rings.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

func TestSpanTree(t *testing.T) {
	fr := NewFlightRecorder(4, 8)
	root := fr.StartTrace("sweep", "r-1")
	if root.RequestID() != "r-1" {
		t.Fatalf("RequestID = %q", root.RequestID())
	}
	adm := root.StartChild("admission")
	adm.SetString("outcome", "admitted")
	adm.End()
	p := root.StartChild("point")
	p.SetInt("n", 3)
	p.SetFloat("f", 0.5)
	p.SetBool("b", true)
	p.SetError(errors.New("boom"))
	p.End()
	root.End()

	d := fr.Dump()
	if d.TracesSeen != 1 || len(d.Traces) != 1 {
		t.Fatalf("dump: %d traces seen, %d retained", d.TracesSeen, len(d.Traces))
	}
	tr := d.Traces[0]
	if tr.RequestID != "r-1" || tr.Root.Name != "sweep" {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Root.ID != 1 {
		t.Errorf("root span ID = %d, want 1", tr.Root.ID)
	}
	if len(tr.Root.Children) != 2 {
		t.Fatalf("%d children", len(tr.Root.Children))
	}
	for _, c := range tr.Root.Children {
		if c.Parent != tr.Root.ID {
			t.Errorf("child %q parent = %d, want %d", c.Name, c.Parent, tr.Root.ID)
		}
	}
	got := tr.Root.Find("point")
	if got == nil {
		t.Fatal("Find(point) = nil")
	}
	if got.Attrs["n"] != int64(3) || got.Attrs["b"] != true || got.Attrs["error"] != "boom" {
		t.Errorf("attrs = %v", got.Attrs)
	}
	if tr.Root.Find("nope") != nil {
		t.Error("Find(nope) should be nil")
	}
	// The dump must marshal (it is what /debug/flight serves).
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("dump not marshallable: %v", err)
	}
}

// TestNilSpanSafe: the disabled path is a nil *Span and a nil
// *FlightRecorder; every operation must be a no-op, not a panic —
// components thread spans unconditionally.
func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	c := sp.StartChild("x")
	if c != nil {
		t.Fatal("nil StartChild should stay nil")
	}
	sp.SetString("k", "v")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1.5)
	sp.SetBool("k", true)
	sp.SetError(errors.New("x"))
	sp.End()
	if sp.RequestID() != "" || sp.Trace() != 0 || sp.Duration() != 0 {
		t.Error("nil span accessors should return zero values")
	}

	var fr *FlightRecorder
	if fr.StartTrace("x", "r") != nil {
		t.Error("nil recorder StartTrace should return nil span")
	}
	fr.Event("error", "r", "x")
	if d := fr.Dump(); d.TracesSeen != 0 || d.EventsSeen != 0 {
		t.Error("nil recorder dump should be empty")
	}

	// Context plumbing with no span: StartSpan returns (ctx, nil).
	ctx, s2 := StartSpan(context.Background(), "x")
	if s2 != nil || SpanFromContext(ctx) != nil {
		t.Error("StartSpan without an active span should be disabled")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	fr := NewFlightRecorder(2, 2)
	root := fr.StartTrace("t", "r-ctx")
	ctx := ContextWithSpan(context.Background(), root)
	if SpanFromContext(ctx) != root {
		t.Fatal("SpanFromContext lost the span")
	}
	ctx2, child := StartSpan(ctx, "child")
	if child == nil || SpanFromContext(ctx2) != child {
		t.Fatal("StartSpan did not thread the child")
	}
	child.End()
	root.End()
	if got := fr.Dump().Traces[0].Root.Find("child"); got == nil {
		t.Fatal("child span missing from dump")
	}
}

// TestSpanBounds: attribute and child retention is capped; drops are
// counted, and an over-cap child is still usable (timed) just not
// retained.
func TestSpanBounds(t *testing.T) {
	fr := NewFlightRecorder(2, 2)
	root := fr.StartTrace("t", "")
	for i := 0; i < maxSpanAttrs+10; i++ {
		root.SetInt(fmt.Sprintf("k%d", i), int64(i))
	}
	for i := 0; i < maxSpanChildren+5; i++ {
		c := root.StartChild("c")
		c.End()
	}
	extra := root.StartChild("overflow")
	if extra == nil {
		t.Fatal("over-cap child should still be usable")
	}
	extra.End()
	root.End()
	d := fr.Dump().Traces[0].Root
	if len(d.Attrs) != maxSpanAttrs {
		t.Errorf("%d attrs retained, want %d", len(d.Attrs), maxSpanAttrs)
	}
	if len(d.Children) != maxSpanChildren {
		t.Errorf("%d children retained, want %d", len(d.Children), maxSpanChildren)
	}
	if d.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", d.Dropped)
	}
}

// TestSetAttrReplaces: setting the same key twice keeps one attr with
// the latest value (outcome flips from tentative to final).
func TestSetAttrReplaces(t *testing.T) {
	fr := NewFlightRecorder(2, 2)
	root := fr.StartTrace("t", "")
	root.SetString("outcome", "a")
	root.SetString("outcome", "b")
	root.End()
	d := fr.Dump().Traces[0].Root
	if d.Attrs["outcome"] != "b" || len(d.Attrs) != 1 {
		t.Errorf("attrs = %v", d.Attrs)
	}
}

// TestFlightRings: both rings overflow oldest-first and report totals
// seen; Dump is newest-first.
func TestFlightRings(t *testing.T) {
	fr := NewFlightRecorder(2, 3)
	for i := 0; i < 5; i++ {
		sp := fr.StartTrace(fmt.Sprintf("t%d", i), fmt.Sprintf("r-%d", i))
		sp.End()
	}
	for i := 0; i < 7; i++ {
		fr.Event("error", "", "e%d", i)
	}
	d := fr.Dump()
	if d.TracesSeen != 5 || len(d.Traces) != 2 {
		t.Fatalf("traces: seen %d retained %d", d.TracesSeen, len(d.Traces))
	}
	if d.Traces[0].Root.Name != "t4" || d.Traces[1].Root.Name != "t3" {
		t.Errorf("trace order: %s, %s (want newest first)", d.Traces[0].Root.Name, d.Traces[1].Root.Name)
	}
	if d.EventsSeen != 7 || len(d.Events) != 3 {
		t.Fatalf("events: seen %d retained %d", d.EventsSeen, len(d.Events))
	}
	if d.Events[0].Msg != "e6" || d.Events[2].Msg != "e4" {
		t.Errorf("event order: %q .. %q", d.Events[0].Msg, d.Events[2].Msg)
	}
}

func TestUnfinishedChildMarked(t *testing.T) {
	fr := NewFlightRecorder(2, 2)
	root := fr.StartTrace("t", "")
	_ = root.StartChild("stuck") // never ended
	root.End()
	d := fr.Dump().Traces[0].Root
	stuck := d.Find("stuck")
	if stuck == nil || !stuck.Unfinished {
		t.Fatalf("unfinished child not marked: %+v", stuck)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("two IDs equal: %s", a)
	}
	if len(a) != 18 || a[:2] != "r-" {
		t.Fatalf("ID form: %q", a)
	}
}
