package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"

	"regcache/internal/stats"
)

// Registry is a unified metrics registry: named counters, gauges,
// stats.Histogram-backed histograms, and arbitrary snapshot funcs, all
// readable as one map and publishable as a single expvar variable (which
// the debug server serves at /debug/vars). Components register once and
// update their own variables; reads take a consistent snapshot.
type Registry struct {
	mu    sync.Mutex
	vars  map[string]func() any
	kinds map[string]metricKind     // how /metrics should render each name
	hists map[string]*HistogramVar  // histogram vars, for bucketed exposition
}

// metricKind classifies a registered variable for Prometheus exposition.
// Func-registered variables are untyped; the typed constructors mark
// their kind so /metrics can emit the right family.
type metricKind uint8

const (
	kindUntyped metricKind = iota
	kindCounter
	kindGauge
	kindHistogram
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		vars:  make(map[string]func() any),
		kinds: make(map[string]metricKind),
		hists: make(map[string]*HistogramVar),
	}
}

// defaultRegistry is the process-wide registry the cmd binaries publish.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Func registers a snapshot function under name. The value it returns must
// be JSON-marshalable (expvar renders snapshots as JSON). Re-registering a
// name replaces the previous variable: per-run stats re-register on every
// run.
func (r *Registry) Func(name string, f func() any) {
	r.register(name, f, kindUntyped, nil)
}

func (r *Registry) register(name string, f func() any, k metricKind, h *HistogramVar) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vars[name] = f
	r.kinds[name] = k
	if h != nil {
		r.hists[name] = h
	} else {
		delete(r.hists, name)
	}
}

// Gauge registers a float-valued gauge computed at read time.
func (r *Registry) Gauge(name string, f func() float64) {
	r.register(name, func() any { return f() }, kindGauge, nil)
}

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a new counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(name, func() any { return c.Value() }, kindCounter, nil)
	return c
}

// CounterFunc registers a counter computed at read time, for components
// that already maintain their own monotonic counts. The function must be
// monotonically non-decreasing for the Prometheus exposition to be
// truthful.
func (r *Registry) CounterFunc(name string, f func() uint64) {
	r.register(name, func() any { return f() }, kindCounter, nil)
}

// HistogramVar is a concurrency-safe histogram registered in a Registry.
// Its snapshot reports n, mean, and tail percentiles.
type HistogramVar struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Add records one observation.
func (v *HistogramVar) Add(x int) {
	v.mu.Lock()
	v.h.Add(x)
	v.mu.Unlock()
}

// Snapshot returns the summary map rendered into the registry. On an
// empty histogram (n=0) every field is a plain zero — /metrics and
// /debug/vars scrape continuously from process start, so the pre-first-
// observation snapshot must be valid JSON numbers, never sentinels.
func (v *HistogramVar) Snapshot() map[string]any {
	v.mu.Lock()
	defer v.mu.Unlock()
	return map[string]any{
		"n":    v.h.N(),
		"mean": v.h.Mean(),
		"p50":  v.h.Median(),
		"p90":  v.h.Percentile(0.9),
		"p99":  v.h.Percentile(0.99),
		"max":  v.h.Max(),
	}
}

// Cumulative returns, for each upper bound in bounds (ascending), the
// count of observations <= that bound, plus the total sum and count —
// the Prometheus histogram exposition form.
func (v *HistogramVar) Cumulative(bounds []int) (cum []uint64, sum float64, n uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cum = make([]uint64, len(bounds))
	for i, b := range bounds {
		cum[i] = v.h.CumulativeLE(b)
	}
	return cum, v.h.Sum(), v.h.N()
}

// Histogram registers and returns a new histogram under name.
func (r *Registry) Histogram(name string) *HistogramVar {
	v := &HistogramVar{h: stats.NewHistogram()}
	r.register(name, func() any { return v.Snapshot() }, kindHistogram, v)
	return v
}

// Names returns the registered variable names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.vars))
	for n := range r.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot evaluates every registered variable into one map.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fs := make(map[string]func() any, len(r.vars))
	for n, f := range r.vars {
		fs[n] = f
	}
	r.mu.Unlock()
	out := make(map[string]any, len(fs))
	for n, f := range fs {
		out[n] = f()
	}
	return out
}

var publishMu sync.Mutex

// Publish exposes the registry as a single expvar variable (shown at
// /debug/vars). Publishing the same name twice is a no-op, so multiple
// components may call it defensively.
func (r *Registry) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
