package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"

	"regcache/internal/stats"
)

// Registry is a unified metrics registry: named counters, gauges,
// stats.Histogram-backed histograms, and arbitrary snapshot funcs, all
// readable as one map and publishable as a single expvar variable (which
// the debug server serves at /debug/vars). Components register once and
// update their own variables; reads take a consistent snapshot.
type Registry struct {
	mu   sync.Mutex
	vars map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]func() any)}
}

// defaultRegistry is the process-wide registry the cmd binaries publish.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Func registers a snapshot function under name. The value it returns must
// be JSON-marshalable (expvar renders snapshots as JSON). Re-registering a
// name replaces the previous variable: per-run stats re-register on every
// run.
func (r *Registry) Func(name string, f func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vars[name] = f
}

// Gauge registers a float-valued gauge computed at read time.
func (r *Registry) Gauge(name string, f func() float64) {
	r.Func(name, func() any { return f() })
}

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a new counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.Func(name, func() any { return c.Value() })
	return c
}

// HistogramVar is a concurrency-safe histogram registered in a Registry.
// Its snapshot reports n, mean, and tail percentiles.
type HistogramVar struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Add records one observation.
func (v *HistogramVar) Add(x int) {
	v.mu.Lock()
	v.h.Add(x)
	v.mu.Unlock()
}

// Snapshot returns the summary map rendered into the registry.
func (v *HistogramVar) Snapshot() map[string]any {
	v.mu.Lock()
	defer v.mu.Unlock()
	return map[string]any{
		"n":    v.h.N(),
		"mean": v.h.Mean(),
		"p50":  v.h.Median(),
		"p90":  v.h.Percentile(0.9),
		"p99":  v.h.Percentile(0.99),
		"max":  v.h.Max(),
	}
}

// Histogram registers and returns a new histogram under name.
func (r *Registry) Histogram(name string) *HistogramVar {
	v := &HistogramVar{h: stats.NewHistogram()}
	r.Func(name, func() any { return v.Snapshot() })
	return v
}

// Names returns the registered variable names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.vars))
	for n := range r.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot evaluates every registered variable into one map.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fs := make(map[string]func() any, len(r.vars))
	for n, f := range r.vars {
		fs[n] = f
	}
	r.mu.Unlock()
	out := make(map[string]any, len(fs))
	for n, f := range fs {
		out[n] = f()
	}
	return out
}

var publishMu sync.Mutex

// Publish exposes the registry as a single expvar variable (shown at
// /debug/vars). Publishing the same name twice is a no-op, so multiple
// components may call it defensively.
func (r *Registry) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
