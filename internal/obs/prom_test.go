package obs

// Prometheus exposition tests: family rendering per kind, histogram
// cumulative buckets, name sanitization, the empty-histogram snapshot
// contract, and registry concurrency (Snapshot racing re-registration
// and Publish — run under -race in CI).

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func promText(r *Registry) string {
	var b strings.Builder
	WritePrometheus(&b, r)
	return b.String()
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.runner.jobs_run": "serve_runner_jobs_run",
		"already_fine":          "already_fine",
		"9lives":                "_9lives",
		"a-b c":                 "a_b_c",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("serve.sweeps")
	c.Add(7)
	r.Gauge("serve.rate", func() float64 { return 0.25 })
	r.Func("serve.open", func() any { return 3 })
	r.Func("serve.jobs", func() any { return map[string]int{"done": 2, "running": 1} })
	r.Func("serve.ignored", func() any { return "not numeric" })
	h := r.Histogram("serve.wall_ms")
	h.Add(3)
	h.Add(40)
	h.Add(999)

	text := promText(r)
	for _, want := range []string{
		"# TYPE serve_sweeps counter\nserve_sweeps 7\n",
		"# TYPE serve_rate gauge\nserve_rate 0.25\n",
		"# TYPE serve_open untyped\nserve_open 3\n",
		"serve_jobs{key=\"done\"} 2\n",
		"serve_jobs{key=\"running\"} 1\n",
		"# TYPE serve_wall_ms histogram\n",
		"serve_wall_ms_bucket{le=\"2\"} 0\n",
		"serve_wall_ms_bucket{le=\"5\"} 1\n",
		"serve_wall_ms_bucket{le=\"50\"} 2\n",
		"serve_wall_ms_bucket{le=\"1000\"} 3\n",
		"serve_wall_ms_bucket{le=\"+Inf\"} 3\n",
		"serve_wall_ms_sum 1042\n",
		"serve_wall_ms_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "serve_ignored") {
		t.Error("non-numeric Func should be skipped")
	}
	// Buckets must be cumulative (non-decreasing).
	if strings.Contains(text, "le=\"25\"} 0\n") && strings.Contains(text, "le=\"10\"} 1\n") {
		t.Error("buckets not cumulative")
	}
}

// TestEmptyHistogramSnapshot pins the empty-histogram contract: before
// the first observation every snapshot field is a plain zero — valid
// JSON numbers, never NaN/sentinel — because /metrics and /debug/vars
// scrape from process start.
func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty")
	snap := h.Snapshot()
	for _, k := range []string{"n", "mean", "p50", "p90", "p99", "max"} {
		v, ok := snap[k]
		if !ok {
			t.Fatalf("snapshot missing %q", k)
		}
		f, isNum := promNumber(v)
		if !isNum || f != 0 {
			t.Errorf("empty histogram %s = %v, want plain zero", k, v)
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("empty snapshot not marshallable: %v", err)
	}
	if strings.Contains(string(data), "NaN") {
		t.Fatalf("empty snapshot contains NaN: %s", data)
	}
	// And the exposition form: zero buckets, zero sum/count.
	text := promText(r)
	for _, want := range []string{
		"empty_bucket{le=\"+Inf\"} 0\n", "empty_sum 0\n", "empty_count 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("empty histogram exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines:
// Snapshot and WritePrometheus racing Func re-registration, histogram
// adds, and Publish. Run under -race this is the data-race gate; the
// assertions just prove nothing deadlocked or corrupted.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hist")
	c := r.Counter("count")
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(4)
		go func() { // re-register the same Func name repeatedly
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := i
				r.Func("flappy", func() any { return v })
				r.Gauge("gauge", func() float64 { return float64(v) })
			}
		}()
		go func() { // snapshot + exposition readers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = r.Snapshot()
				_ = promText(r)
				_ = r.Names()
			}
		}()
		go func() { // writers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.Add(i % 100)
				c.Add(1)
			}
		}()
		go func() { // concurrent Publish (idempotent by contract)
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				r.Publish("prom-test-registry")
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), 4*iters)
	}
	snap := r.Snapshot()
	if _, ok := snap["flappy"]; !ok {
		t.Fatal("re-registered Func missing from snapshot")
	}
	hist, ok := snap["hist"].(map[string]any)
	if !ok || hist["n"] != uint64(4*iters) {
		t.Fatalf("histogram snapshot = %v", snap["hist"])
	}
}
