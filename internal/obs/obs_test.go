package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// recorder is a Tracer that captures events for assertions.
type recorder struct {
	cache []CacheEvent
	pipe  []PipeEvent
}

func (r *recorder) TraceCache(e CacheEvent) { r.cache = append(r.cache, e) }
func (r *recorder) TracePipe(e PipeEvent)   { r.pipe = append(r.pipe, e) }

func TestCombine(t *testing.T) {
	if Combine() != nil {
		t.Error("Combine() of nothing should be nil (the disabled path)")
	}
	a := &recorder{}
	if Combine(a) != Tracer(a) {
		t.Error("Combine of one tracer should return it directly")
	}
	b := &recorder{}
	m := Combine(a, b)
	m.TraceCache(CacheEvent{Kind: CacheHit, PReg: 7})
	m.TracePipe(PipeEvent{Stage: StageRetire, Seq: 3})
	for i, r := range []*recorder{a, b} {
		if len(r.cache) != 1 || r.cache[0].PReg != 7 {
			t.Errorf("tracer %d: cache events %v", i, r.cache)
		}
		if len(r.pipe) != 1 || r.pipe[0].Seq != 3 {
			t.Errorf("tracer %d: pipe events %v", i, r.pipe)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := CacheEventKind(0); k < NumCacheEventKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("CacheEventKind(%d).String() = %q", k, s)
		}
	}
	for s := PipeStage(0); s <= StageSquash; s++ {
		if n := s.String(); n == "" || strings.Contains(n, "?") {
			t.Errorf("PipeStage(%d).String() = %q", s, n)
		}
	}
	if !StageRetire.Terminal() || !StageSquash.Terminal() || StageIssue.Terminal() {
		t.Error("Terminal() misclassifies stages")
	}
	if MissKindName(0) != "filtered" || MissKindName(1) != "capacity" || MissKindName(2) != "conflict" {
		t.Error("MissKindName misaligned with core.MissKind values")
	}
}

func TestChromeTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf, true)
	// One uop through a full life; a second squashed mid-flight; one cache
	// instant on the reserved lane.
	ct.TracePipe(PipeEvent{Cycle: 10, Stage: StageRename, Seq: 1, PC: 0x1000, Op: "ialu"})
	ct.TracePipe(PipeEvent{Cycle: 12, Stage: StageDispatch, Seq: 1, PC: 0x1000, Op: "ialu"})
	ct.TracePipe(PipeEvent{Cycle: 11, Stage: StageRename, Seq: 2, PC: 0x1004, Op: "load"})
	ct.TraceCache(CacheEvent{Cycle: 13, Kind: CacheMiss, PReg: 5, MissKind: 2})
	ct.TracePipe(PipeEvent{Cycle: 15, Stage: StageRetire, Seq: 1, PC: 0x1000, Op: "ialu"})
	ct.TracePipe(PipeEvent{Cycle: 14, Stage: StageSquash, Seq: 2, PC: 0x1004, Op: "load"})
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur < 0 {
				t.Errorf("negative-duration slice: %+v", e)
			}
			if e.Tid == 0 {
				t.Errorf("pipeline slice on the reserved cache lane: %+v", e)
			}
		case "i":
			instants++
			if e.Tid != 0 {
				t.Errorf("cache instant off the reserved lane: %+v", e)
			}
		}
	}
	// uop 1: rename, dispatch, retire; uop 2: rename, squash.
	if slices != 5 {
		t.Errorf("got %d X slices, want 5", slices)
	}
	if instants != 1 {
		t.Errorf("got %d instants, want 1", instants)
	}
	// Both uops terminated, so both lanes were recycled: peak is 2.
	if ct.Lanes() != 2 {
		t.Errorf("peak lanes = %d, want 2", ct.Lanes())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Add(3)
	r.Gauge("rate", func() float64 { return 0.5 })
	h := r.Histogram("wall")
	h.Add(10)
	h.Add(20)

	snap := r.Snapshot()
	if snap["jobs"] != uint64(3) {
		t.Errorf("counter snapshot = %v", snap["jobs"])
	}
	if snap["rate"] != 0.5 {
		t.Errorf("gauge snapshot = %v", snap["rate"])
	}
	hs, ok := snap["wall"].(map[string]any)
	if !ok || hs["n"] != uint64(2) {
		t.Errorf("histogram snapshot = %v", snap["wall"])
	}

	// Re-registering a name replaces it rather than panicking (stats
	// objects re-register across runs).
	r.Gauge("rate", func() float64 { return 1.0 })
	if r.Snapshot()["rate"] != 1.0 {
		t.Error("re-registered gauge did not replace")
	}

	// Snapshot must marshal: this is what expvar serves.
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot not marshallable: %v", err)
	}
}

// TestDebugServer starts two debug servers in one process — impossible
// under the old http.DefaultServeMux implementation, which panicked on
// the second route registration — and verifies each serves independently
// and that Close takes down only its own listener.
func TestDebugServer(t *testing.T) {
	a, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("second debug server in one process: %v", err)
	}
	if a.Addr() == b.Addr() {
		t.Fatalf("both servers bound %s", a.Addr())
	}

	get := func(addr, path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", addr, path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	for _, srv := range []*DebugServer{a, b} {
		if code, body := get(srv.Addr(), "/debug/vars"); code != 200 || !strings.HasPrefix(body, "{") {
			t.Errorf("%s/debug/vars: code %d body %q", srv.Addr(), code, body[:min(len(body), 40)])
		}
		if code, _ := get(srv.Addr(), "/metrics"); code != 200 {
			t.Errorf("%s/metrics: code %d", srv.Addr(), code)
		}
		if code, body := get(srv.Addr(), "/debug/flight"); code != 200 || !strings.HasPrefix(body, "{") {
			t.Errorf("%s/debug/flight: code %d body %q", srv.Addr(), code, body[:min(len(body), 40)])
		}
	}

	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + b.Addr() + "/debug/vars"); err == nil {
		t.Error("closed server still accepting connections")
	}
	// The sibling is unaffected.
	if code, _ := get(a.Addr(), "/debug/vars"); code != 200 {
		t.Errorf("sibling server broken by Close: code %d", code)
	}
}
