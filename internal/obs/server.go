package obs

import (
	"fmt"
	"net"
	"net/http"

	// The debug server serves http.DefaultServeMux: these imports register
	// /debug/pprof/* (CPU, heap, goroutine, mutex profiles) and expvar's
	// /debug/vars alongside it.
	_ "expvar"
	_ "net/http/pprof"
)

// StartDebugServer publishes the default registry under "regcache" and
// serves expvar (/debug/vars) and pprof (/debug/pprof/) on addr (e.g.
// ":6060"). It returns the bound address so callers can print it when addr
// uses port 0. The server runs until the process exits.
func StartDebugServer(addr string) (string, error) {
	Default().Publish("regcache")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	go func() {
		// DefaultServeMux carries the expvar and pprof handlers.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
