package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is a self-contained debug/metrics listener: expvar at
// /debug/vars, pprof at /debug/pprof/, Prometheus text exposition at
// /metrics, and the process flight recorder at /debug/flight — all on a
// private mux, so several instances coexist in one binary (tests) and
// Close releases the listener and its serve goroutine.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	addr string
}

// DebugMux returns a fresh mux carrying the standard debug endpoints for
// the given registry and flight recorder (nil selects the defaults).
func DebugMux(reg *Registry, fr *FlightRecorder) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	if fr == nil {
		fr = DefaultFlight()
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", PromHandler(reg))
	mux.Handle("/debug/flight", fr.Handler())
	return mux
}

// StartDebugServer publishes the default registry under "regcache" and
// serves the debug endpoints on addr (e.g. ":6060"). Unlike the earlier
// http.DefaultServeMux version, each call owns a private mux and
// listener, so multiple servers coexist in one process and Close shuts
// one down without affecting the others.
func StartDebugServer(addr string) (*DebugServer, error) {
	Default().Publish("regcache")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	d := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: DebugMux(nil, nil)},
		addr: ln.Addr().String(),
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound address (useful with port 0).
func (d *DebugServer) Addr() string { return d.addr }

// Close stops the listener and the serve goroutine. In-flight requests
// are aborted; debug traffic has no drain contract.
func (d *DebugServer) Close() error { return d.srv.Close() }
