package obs

// Request-scoped tracing for the service plane. A trace is a tree of
// spans rooted at one request (a sweep submission); child spans cover
// admission, per-point memo/store/simulate decisions, interval warm-up
// and measured windows, and store appends. The model is deliberately
// small: spans live in memory, parent links are direct pointers, and a
// finished root hands its whole tree to the FlightRecorder that created
// it — there is no external exporter.
//
// Like the Tracer interface, the disabled path is nil: every method on a
// nil *Span is a no-op, so components thread spans unconditionally and a
// caller that never started a trace pays one nil check per call site.
// Overhead is bounded even when enabled: attribute and child counts are
// capped per span, with drops counted rather than grown.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one trace (one traced request).
type TraceID uint64

// String renders the ID as fixed-width hex (the wire/log form).
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// SpanID identifies one span within its trace. IDs are assigned
// sequentially from the root (which is always 1), so a dump's parent
// links are stable and human-checkable.
type SpanID uint64

// Bounds on per-span fan-out. A sweep of thousands of points would
// otherwise grow one request's trace without limit; beyond the caps the
// recorder keeps counting but stops retaining.
const (
	maxSpanAttrs    = 32
	maxSpanChildren = 512
)

// Attr is one typed span attribute. Value is set only through the typed
// setters, so it is always a string, int64, float64, or bool — every
// one JSON-renderable without reflection surprises.
type Attr struct {
	Key   string
	Value any
}

// traceShared is the per-trace state every span of one tree points at.
type traceShared struct {
	recorder  *FlightRecorder
	traceID   TraceID
	requestID string
	root      *Span
	nextID    SpanID
	mu        sync.Mutex // guards nextID
}

func (ts *traceShared) newID() SpanID {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.nextID++
	return ts.nextID
}

// Span is one timed operation within a trace. Create roots with
// FlightRecorder.StartTrace and children with StartChild; a nil *Span is
// the disabled form and absorbs every call.
type Span struct {
	shared *traceShared
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	ended    bool
	attrs    []Attr
	children []*Span
	dropped  int // children beyond maxSpanChildren
}

// StartChild opens a child span. Safe to call from multiple goroutines
// on the same parent (points of a sweep run concurrently).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		shared: s.shared,
		id:     s.shared.newID(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
	s.mu.Lock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
		s.mu.Unlock()
		return c // still usable (timed, attributed), just not retained
	}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

func (s *Span) setAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	if len(s.attrs) < maxSpanAttrs {
		s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	}
}

// SetString sets a string attribute (replacing any prior value of key).
func (s *Span) SetString(key, v string) { s.setAttr(key, v) }

// SetInt sets an integer attribute.
func (s *Span) SetInt(key string, v int64) { s.setAttr(key, v) }

// SetFloat sets a float attribute.
func (s *Span) SetFloat(key string, v float64) { s.setAttr(key, v) }

// SetBool sets a boolean attribute.
func (s *Span) SetBool(key string, v bool) { s.setAttr(key, v) }

// SetError marks the span failed with the error's message.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.setAttr("error", err.Error())
}

// End finishes the span. Ending the root hands the completed tree to the
// flight recorder; children still running at that point appear in the
// dump marked unfinished. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	if s.shared.root == s {
		s.shared.recorder.record(TraceDump{
			TraceID:   s.shared.traceID.String(),
			RequestID: s.shared.requestID,
			Root:      s.dump(s.end),
		})
	}
}

// RequestID returns the request ID the trace was started with ("" on nil).
func (s *Span) RequestID() string {
	if s == nil {
		return ""
	}
	return s.shared.requestID
}

// Trace returns the span's trace ID (0 on nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.shared.traceID
}

// Duration returns the span's elapsed time: end-start once ended, the
// running duration otherwise (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// SpanDump is the JSON form of one span in a flight-recorder dump.
type SpanDump struct {
	ID         SpanID         `json:"id"`
	Parent     SpanID         `json:"parent,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Unfinished bool           `json:"unfinished,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanDump     `json:"children,omitempty"`
	Dropped    int            `json:"dropped_children,omitempty"`
}

// TraceDump is one completed trace as retained by the flight recorder.
type TraceDump struct {
	TraceID   string    `json:"trace_id"`
	RequestID string    `json:"request_id,omitempty"`
	Root      SpanDump  `json:"root"`
	Recorded  time.Time `json:"recorded"`
}

// dump snapshots the span subtree. at is the dump instant used to report
// running durations of unfinished descendants.
func (s *Span) dump(at time.Time) SpanDump {
	s.mu.Lock()
	d := SpanDump{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Start:   s.start,
		Dropped: s.dropped,
	}
	if s.ended {
		d.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	} else {
		d.Unfinished = true
		d.DurationMS = float64(at.Sub(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.dump(at))
	}
	return d
}

// Find returns the first descendant (or the dump itself) named name, in
// depth-first order, or nil. Test and tooling helper.
func (d *SpanDump) Find(name string) *SpanDump {
	if d.Name == name {
		return d
	}
	for i := range d.Children {
		if f := d.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp (a nil sp returns ctx as-is).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span, or nil when ctx carries none.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's active span and returns a
// context carrying the child. With no active span it returns (ctx, nil):
// the disabled path stays one map lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := SpanFromContext(ctx).StartChild(name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, sp), sp
}

// NewRequestID returns a fresh service request ID ("r-" + 16 hex). Used
// when a request arrives without an X-Request-Id of its own.
func NewRequestID() string {
	return fmt.Sprintf("r-%016x", rand.Uint64())
}

// randUint64 seeds trace IDs (non-cryptographic: IDs only need to be
// unique enough to cross-reference logs).
func randUint64() uint64 { return rand.Uint64() }
