package obs

// Prometheus text exposition (format 0.0.4) over the metrics registry:
// the GET /metrics endpoint. Counters and gauges render as single
// samples, HistogramVars as full histogram families with cumulative
// buckets, _sum and _count. Untyped Func variables render when their
// snapshot is numeric (or a flat map of numerics, which becomes a
// labeled family); anything else is expvar-only and skipped here.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// promBounds are the cumulative bucket upper bounds used for every
// exposed histogram. Registry histograms record small non-negative
// integers (milliseconds, percent), so a fixed 1-2.5-5 ladder spanning
// sub-millisecond to minutes covers them all; +Inf is implicit.
var promBounds = []int{0, 1, 2, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 300_000}

// PromName sanitizes a registry variable name into the Prometheus data
// model: dots (the registry's namespace separator) and every other
// invalid character become underscores, and a leading digit is prefixed.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promNumber converts a snapshot value to a sample value if numeric.
func promNumber(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint64:
		return float64(x), true
	case time.Duration:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// WritePrometheus renders the registry in text exposition format.
func WritePrometheus(w io.Writer, r *Registry) {
	r.mu.Lock()
	names := make([]string, 0, len(r.vars))
	for n := range r.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	type entry struct {
		name string
		f    func() any
		kind metricKind
		hist *HistogramVar
	}
	entries := make([]entry, 0, len(names))
	for _, n := range names {
		entries = append(entries, entry{n, r.vars[n], r.kinds[n], r.hists[n]})
	}
	r.mu.Unlock()

	for _, e := range entries {
		pn := PromName(e.name)
		switch {
		case e.kind == kindHistogram && e.hist != nil:
			writePromHistogram(w, pn, e.hist)
		case e.kind == kindCounter:
			if v, ok := promNumber(e.f()); ok {
				fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", pn, pn, promFloat(v))
			}
		case e.kind == kindGauge:
			if v, ok := promNumber(e.f()); ok {
				fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(v))
			}
		default:
			writePromUntyped(w, pn, e.f())
		}
	}
}

// writePromUntyped renders a Func variable: a bare numeric snapshot
// becomes one untyped sample; a map of numerics becomes a family labeled
// by key. Non-numeric snapshots are skipped.
func writePromUntyped(w io.Writer, pn string, v any) {
	if n, ok := promNumber(v); ok {
		fmt.Fprintf(w, "# TYPE %s untyped\n%s %s\n", pn, pn, promFloat(n))
		return
	}
	switch m := v.(type) {
	case map[string]int:
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			return
		}
		fmt.Fprintf(w, "# TYPE %s untyped\n", pn)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{key=%q} %s\n", pn, k, promFloat(float64(m[k])))
		}
	case map[string]any:
		keys := make([]string, 0, len(m))
		for k := range m {
			if _, ok := promNumber(m[k]); ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			return
		}
		fmt.Fprintf(w, "# TYPE %s untyped\n", pn)
		for _, k := range keys {
			n, _ := promNumber(m[k])
			fmt.Fprintf(w, "%s{key=%q} %s\n", pn, k, promFloat(n))
		}
	}
}

func writePromHistogram(w io.Writer, pn string, h *HistogramVar) {
	cum, sum, n := h.Cumulative(promBounds)
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	for i, b := range promBounds {
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, n)
	fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", pn, n)
}

// PromHandler serves the registry at GET /metrics in Prometheus text
// exposition format.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
}
