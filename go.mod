module regcache

go 1.22
