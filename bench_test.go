// Package regcache's root benchmark harness: one testing.B benchmark per
// figure and table of the paper's evaluation. Each benchmark regenerates
// its experiment's rows (run with -v to see them) at a reduced budget, and
// reports instructions-per-second as the benchmark metric so simulator
// performance regressions are visible too.
//
// The authoritative full-suite regeneration is `go run ./cmd/experiments`;
// these benchmarks exist so `go test -bench=.` exercises every experiment
// end to end.
package regcache

import (
	"context"
	"testing"

	"regcache/internal/core"
	"regcache/internal/experiments"
	"regcache/internal/sim"
)

// benchOptions keeps the per-iteration cost manageable: two contrasting
// benchmarks (cache-friendly gzip, branchy twolf) at a reduced budget.
func benchOptions() experiments.Options {
	return experiments.Options{Insts: 20_000, Benches: []string{"gzip", "twolf"}}
}

// runExperiment drives one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := benchOptions()
	var insts uint64
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		insts += o.Insts * uint64(len(o.Benches))
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}

func BenchmarkFig1Lifetimes(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig2LiveRegisters(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig6SizeAssoc(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig7Indexing(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig8MissBreakdown(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9Bandwidth(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10Filtering(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkTable2Metrics(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkFig11SizeSweep(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12BackingLatency(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkSec3Stats(b *testing.B)           { runExperiment(b, "sec3") }
func BenchmarkSec52MissModel(b *testing.B)      { runExperiment(b, "sec52") }
func BenchmarkSec53Ablations(b *testing.B)      { runExperiment(b, "sec53") }

// BenchmarkSimulatorThroughput measures raw simulation speed on the
// design-point configuration (the number the other benchmarks' budgets are
// tuned around). It uses sim.Execute, the unmemoized path: every iteration
// really simulates.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const insts = 50_000
	s := sim.UseBased(64, 2, core.IndexFilteredRR)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute("gzip", s, sim.Options{Insts: insts}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "sim-insts/s")
}

func BenchmarkOracleSpectrum(b *testing.B) { runExperiment(b, "oracle") }

// benchSchemes is the scheme set the run-layer benchmarks schedule: the
// three Section 5.4 design points plus the shared monolithic baseline.
func benchSchemes() []sim.Scheme {
	return []sim.Scheme{
		sim.Monolithic(3),
		sim.LRU(64, 2, core.IndexRoundRobin),
		sim.NonBypass(64, 2, core.IndexRoundRobin),
		sim.UseBased(64, 2, core.IndexFilteredRR),
	}
}

// BenchmarkRunnerColdSuite measures run-layer throughput with an empty
// memo: every scheme×benchmark job simulates on the worker pool.
func BenchmarkRunnerColdSuite(b *testing.B) {
	o := benchOptions()
	r := sim.NewRunner(0)
	defer r.Close()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r.Reset()
		r.Prefetch(o.Benches, benchSchemes(), sim.Options{Insts: o.Insts})
		for _, s := range benchSchemes() {
			for _, bench := range o.Benches {
				if _, err := r.Run(context.Background(), bench, s, sim.Options{Insts: o.Insts}); err != nil {
					b.Fatal(err)
				}
				insts += o.Insts
			}
		}
	}
	st := r.Stats()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
	b.ReportMetric(float64(st.JobsRun)/float64(b.N), "jobs/op")
}

// BenchmarkRunnerMemoizedSuite measures the warm path: after the first
// iteration every request is a cache hit, so this benchmarks the memo
// lookup and single-flight join overhead the experiments pay on shared
// baselines.
func BenchmarkRunnerMemoizedSuite(b *testing.B) {
	o := benchOptions()
	r := sim.NewRunner(0)
	defer r.Close()
	r.Prefetch(o.Benches, benchSchemes(), sim.Options{Insts: o.Insts})
	warm := sim.RunnerStats{}
	for i := 0; i < b.N; i++ {
		for _, s := range benchSchemes() {
			for _, bench := range o.Benches {
				if _, err := r.Run(context.Background(), bench, s, sim.Options{Insts: o.Insts}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if i == 0 {
			warm = r.Stats()
			b.ResetTimer()
		}
	}
	st := r.Stats().Sub(warm)
	if b.N > 1 && st.JobsRun != 0 {
		b.Fatalf("warm runner re-simulated %d jobs", st.JobsRun)
	}
	b.ReportMetric(float64(st.CacheHits)/float64(max(b.N-1, 1)), "hits/op")
}

// BenchmarkRunSuiteParallel measures a cold single-scheme suite per
// iteration on a private pool — the same prefetch-then-collect pattern
// RunSuite uses on the shared default runner (whose memo must not be
// cleared mid-process, hence the private runner).
func BenchmarkRunSuiteParallel(b *testing.B) {
	o := benchOptions()
	s := sim.UseBased(64, 2, core.IndexFilteredRR)
	r := sim.NewRunner(0)
	defer r.Close()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r.Reset()
		r.Prefetch(o.Benches, []sim.Scheme{s}, sim.Options{Insts: o.Insts})
		for _, bench := range o.Benches {
			if _, err := r.Run(context.Background(), bench, s, sim.Options{Insts: o.Insts}); err != nil {
				b.Fatal(err)
			}
			insts += o.Insts
		}
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}
