// Package regcache's root benchmark harness: one testing.B benchmark per
// figure and table of the paper's evaluation. Each benchmark regenerates
// its experiment's rows (run with -v to see them) at a reduced budget, and
// reports instructions-per-second as the benchmark metric so simulator
// performance regressions are visible too.
//
// The authoritative full-suite regeneration is `go run ./cmd/experiments`;
// these benchmarks exist so `go test -bench=.` exercises every experiment
// end to end.
package regcache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"regcache/internal/core"
	"regcache/internal/experiments"
	"regcache/internal/sim"
	"regcache/internal/store"
)

// benchOptions keeps the per-iteration cost manageable: two contrasting
// benchmarks (cache-friendly gzip, branchy twolf) at a reduced budget.
func benchOptions() experiments.Options {
	return experiments.Options{Insts: 20_000, Benches: []string{"gzip", "twolf"}}
}

// runExperiment drives one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	o := benchOptions()
	var insts uint64
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		insts += o.Insts * uint64(len(o.Benches))
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}

func BenchmarkFig1Lifetimes(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig2LiveRegisters(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig6SizeAssoc(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig7Indexing(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig8MissBreakdown(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9Bandwidth(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10Filtering(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkTable2Metrics(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkFig11SizeSweep(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12BackingLatency(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkSec3Stats(b *testing.B)           { runExperiment(b, "sec3") }
func BenchmarkSec52MissModel(b *testing.B)      { runExperiment(b, "sec52") }
func BenchmarkSec53Ablations(b *testing.B)      { runExperiment(b, "sec53") }

// BenchmarkSimulatorThroughput measures raw simulation speed on the
// design-point configuration (the number the other benchmarks' budgets are
// tuned around). It uses sim.Execute, the unmemoized path: every iteration
// really simulates.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const insts = 50_000
	s := sim.UseBased(64, 2, core.IndexFilteredRR)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute("gzip", s, sim.Options{Insts: insts}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkIntervalThroughput measures the interval-parallel executor
// against the serial path on the design-point configuration at the default
// budget: the serial sub-benchmark is the reference, the k sub-benchmark
// runs one interval per core. The checkpoint capture pass is memoized in
// the shared workload cache (as in real use, where one capture serves a
// whole sweep), so steady-state iterations measure the parallel simulation
// itself.
func BenchmarkIntervalThroughput(b *testing.B) {
	const insts = 200_000
	s := sim.UseBased(64, 2, core.IndexFilteredRR)
	run := func(b *testing.B, o sim.Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Execute("gzip", s, o); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "sim-insts/s")
	}
	b.Run("serial", func(b *testing.B) {
		run(b, sim.Options{Insts: insts})
	})
	b.Run(fmt.Sprintf("k%d", runtime.NumCPU()), func(b *testing.B) {
		run(b, sim.Options{Insts: insts, Intervals: runtime.NumCPU()})
	})
}

func BenchmarkOracleSpectrum(b *testing.B) { runExperiment(b, "oracle") }

// benchSchemes is the scheme set the run-layer benchmarks schedule: the
// three Section 5.4 design points plus the shared monolithic baseline.
func benchSchemes() []sim.Scheme {
	return []sim.Scheme{
		sim.Monolithic(3),
		sim.LRU(64, 2, core.IndexRoundRobin),
		sim.NonBypass(64, 2, core.IndexRoundRobin),
		sim.UseBased(64, 2, core.IndexFilteredRR),
	}
}

// BenchmarkRunnerColdSuite measures run-layer throughput with an empty
// memo: every scheme×benchmark job simulates on the worker pool.
func BenchmarkRunnerColdSuite(b *testing.B) {
	o := benchOptions()
	r := sim.NewRunner(0)
	defer r.Close()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r.Reset()
		r.Prefetch(o.Benches, benchSchemes(), sim.Options{Insts: o.Insts})
		for _, s := range benchSchemes() {
			for _, bench := range o.Benches {
				if _, err := r.Run(context.Background(), bench, s, sim.Options{Insts: o.Insts}); err != nil {
					b.Fatal(err)
				}
				insts += o.Insts
			}
		}
	}
	st := r.Stats()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
	b.ReportMetric(float64(st.JobsRun)/float64(b.N), "jobs/op")
}

// BenchmarkRunnerMemoizedSuite measures the warm path: after the first
// iteration every request is a cache hit, so this benchmarks the memo
// lookup and single-flight join overhead the experiments pay on shared
// baselines.
func BenchmarkRunnerMemoizedSuite(b *testing.B) {
	o := benchOptions()
	r := sim.NewRunner(0)
	defer r.Close()
	r.Prefetch(o.Benches, benchSchemes(), sim.Options{Insts: o.Insts})
	warm := sim.RunnerStats{}
	for i := 0; i < b.N; i++ {
		for _, s := range benchSchemes() {
			for _, bench := range o.Benches {
				if _, err := r.Run(context.Background(), bench, s, sim.Options{Insts: o.Insts}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if i == 0 {
			warm = r.Stats()
			b.ResetTimer()
		}
	}
	st := r.Stats().Sub(warm)
	if b.N > 1 && st.JobsRun != 0 {
		b.Fatalf("warm runner re-simulated %d jobs", st.JobsRun)
	}
	b.ReportMetric(float64(st.CacheHits)/float64(max(b.N-1, 1)), "hits/op")
}

// storeBenchValue is sized like a real stored result payload (~3 KiB of
// JSON for a cache-scheme run).
func storeBenchValue() []byte {
	v := make([]byte, 3<<10)
	for i := range v {
		v[i] = byte(i)
	}
	return v
}

func storeBenchKey(i int) store.Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return store.Key(sha256.Sum256(b[:]))
}

// BenchmarkStoreAppend measures the durable store's append path (framing,
// CRC, write, index update) at a realistic payload size.
func BenchmarkStoreAppend(b *testing.B) {
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := storeBenchValue()
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(storeBenchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreLookup measures the read path: index probe, ReadAt, and
// the per-read CRC re-verification.
func BenchmarkStoreLookup(b *testing.B) {
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const live = 256
	val := storeBenchValue()
	for i := 0; i < live; i++ {
		if err := s.Put(storeBenchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(storeBenchKey(i % live)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerWarmStore measures a warm restart through the run layer:
// the store holds every suite point, the memo is cleared each iteration
// (a fresh process generation), so every request is a store hit — decode,
// CRC check, JSON unmarshal — instead of a simulation.
func BenchmarkRunnerWarmStore(b *testing.B) {
	o := benchOptions()
	opts := sim.Options{Insts: o.Insts}
	dir := b.TempDir()
	rs, err := sim.OpenResultStore(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer rs.Close()
	r := sim.NewRunner(0)
	defer r.Close()
	if err := r.UseStore(rs); err != nil {
		b.Fatal(err)
	}
	points := 0
	for _, s := range benchSchemes() {
		for _, bench := range o.Benches {
			if _, err := r.Run(context.Background(), bench, s, opts); err != nil {
				b.Fatal(err)
			}
			points++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset() // next generation: memo cold, store warm
		r.ResetStats()
		for _, s := range benchSchemes() {
			for _, bench := range o.Benches {
				if _, err := r.Run(context.Background(), bench, s, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
		if st := r.Stats(); st.JobsRun != 0 || st.StoreHits != uint64(points) {
			b.Fatalf("warm store generation simulated: %+v", st)
		}
	}
	b.ReportMetric(float64(points), "points/op")
}

// BenchmarkRunSuiteParallel measures a cold single-scheme suite per
// iteration on a private pool — the same prefetch-then-collect pattern
// RunSuite uses on the shared default runner (whose memo must not be
// cleared mid-process, hence the private runner).
func BenchmarkRunSuiteParallel(b *testing.B) {
	o := benchOptions()
	s := sim.UseBased(64, 2, core.IndexFilteredRR)
	r := sim.NewRunner(0)
	defer r.Close()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r.Reset()
		r.Prefetch(o.Benches, []sim.Scheme{s}, sim.Options{Insts: o.Insts})
		for _, bench := range o.Benches {
			if _, err := r.Run(context.Background(), bench, s, sim.Options{Insts: o.Insts}); err != nil {
				b.Fatal(err)
			}
			insts += o.Insts
		}
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}
