#!/usr/bin/env bash
# telemetry_smoke.sh — end-to-end smoke test of the service telemetry
# plane against a live daemon. Builds regsimd, starts it on a scratch
# port, submits one traced sweep with a known X-Request-Id, then
# validates the three telemetry exits:
#
#   * the response echoes the request ID,
#   * GET /metrics is well-formed Prometheus text exposition carrying the
#     serve/runner families,
#   * GET /debug/flight retains the sweep's span tree (admission ->
#     point -> simulate) under that request ID,
#
# and finally that SIGTERM drains cleanly. The scrape and flight dump are
# left in $OUTDIR for CI to upload as artifacts.
set -euo pipefail

PORT="${PORT:-18742}"
OUTDIR="${OUTDIR:-/tmp/telemetry-smoke}"
REQ_ID="smoke-$$"
BASE="http://127.0.0.1:${PORT}"

mkdir -p "$OUTDIR"
go build -o "$OUTDIR/regsimd" ./cmd/regsimd
go build -o "$OUTDIR/checkresults" ./cmd/checkresults

"$OUTDIR/regsimd" -addr "127.0.0.1:${PORT}" -workers 2 >"$OUTDIR/regsimd.log" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    [ "$i" = 50 ] && { echo "daemon never became healthy"; cat "$OUTDIR/regsimd.log"; exit 1; }
    sleep 0.2
done

echo "== traced sweep (X-Request-Id: $REQ_ID)"
curl -fsS -D "$OUTDIR/sweep-headers.txt" -o "$OUTDIR/sweep.json" \
    -H "X-Request-Id: $REQ_ID" -H 'Content-Type: application/json' \
    -d '{"benches":["gzip"],"schemes":["use:16x2:filtered"],"insts":20000,"intervals":2,"timings":true}' \
    "$BASE/v1/sweep"
grep -i "^x-request-id: $REQ_ID" "$OUTDIR/sweep-headers.txt" >/dev/null \
    || { echo "FAIL: response did not echo X-Request-Id"; cat "$OUTDIR/sweep-headers.txt"; exit 1; }
"$OUTDIR/checkresults" "$OUTDIR/sweep.json"
grep -q '"timing"' "$OUTDIR/sweep.json" \
    || { echo "FAIL: timings requested but no timing block in the response"; exit 1; }

echo "== /metrics"
curl -fsS "$BASE/metrics" >"$OUTDIR/metrics.txt"
"$OUTDIR/checkresults" -prom "$OUTDIR/metrics.txt" \
    -require serve_sweeps_accepted,serve_points_run,serve_sweep_wall_ms,serve_runner_jobs_run,serve_runner_queue_wait_ms

echo "== /debug/flight"
curl -fsS "$BASE/debug/flight" >"$OUTDIR/flight.json"
"$OUTDIR/checkresults" -flight "$OUTDIR/flight.json" \
    -request-id "$REQ_ID" -spans sweep,admission,point,store-lookup,simulate,stitch

echo "== structured log carries the request ID"
grep -q "$REQ_ID" "$OUTDIR/regsimd.log" \
    || { echo "FAIL: request ID absent from the daemon log"; cat "$OUTDIR/regsimd.log"; exit 1; }

echo "== graceful drain"
kill -TERM "$DAEMON"
for i in $(seq 1 50); do
    kill -0 "$DAEMON" 2>/dev/null || break
    [ "$i" = 50 ] && { echo "FAIL: daemon did not drain on SIGTERM"; exit 1; }
    sleep 0.2
done
trap - EXIT
wait "$DAEMON" 2>/dev/null || true

echo "telemetry smoke: ok (artifacts in $OUTDIR)"
